package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync/atomic"
	"time"
)

// Histogram bucket bounds: exponential, base 1µs doubling up to ~8.6s,
// plus +Inf. Doubling buckets keep quantile estimates within a factor of
// two everywhere, which is enough to tell a 100µs in-memory op from a
// 10ms wire op from a 2s overload stall.
var bucketBounds = func() []time.Duration {
	out := make([]time.Duration, 0, 24)
	for b := time.Microsecond; b <= 10*time.Second; b *= 2 {
		out = append(out, b)
	}
	return out
}()

// Histogram is a fixed-bucket latency histogram. Observations are atomic
// adds; readers see a consistent-enough view for monitoring (buckets are
// read individually, not under a lock — the usual Prometheus contract).
type Histogram struct {
	counts []atomic.Int64 // one per bound, cumulative semantics applied at render
	inf    atomic.Int64
	sum    atomic.Int64 // nanoseconds
	count  atomic.Int64
}

func newHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Int64, len(bucketBounds))}
}

// Observe records one latency (recording gate applies).
func (h *Histogram) Observe(d time.Duration) {
	if !enabled.Load() {
		return
	}
	if d < 0 {
		d = 0
	}
	h.sum.Add(int64(d))
	h.count.Add(1)
	// Find the first bound >= d. The bounds double, so a branchless log2
	// would work, but a short loop over 24 entries is just as fast in
	// practice and far clearer.
	for i, b := range bucketBounds {
		if d <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.inf.Add(1)
}

// Since is Observe(time.Since(start)) — the idiomatic deferred form.
func (h *Histogram) Since(start time.Time) { h.Observe(time.Since(start)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile estimates the p-quantile (0 < p < 1) from the bucket counts.
// The estimate interpolates linearly within the winning bucket, and is
// exact at bucket boundaries. Returns 0 when empty.
func (h *Histogram) Quantile(p float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if cum+c >= rank {
			lo := time.Duration(0)
			if i > 0 {
				lo = bucketBounds[i-1]
			}
			hi := bucketBounds[i]
			if c == 0 {
				return hi
			}
			frac := float64(rank-cum) / float64(c)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += c
	}
	// Rank landed in +Inf: report the largest finite bound.
	return bucketBounds[len(bucketBounds)-1]
}

// HistSummary is a point-in-time quantile summary.
type HistSummary struct {
	Count int64         `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// Summary computes the count/mean/p50/p95/p99 view the benchmark report
// and /debug/vars publish.
func (h *Histogram) Summary() HistSummary {
	s := HistSummary{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sum.Load()),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	if s.Count > 0 {
		s.Mean = s.Sum / time.Duration(s.Count)
	}
	return s
}

func (h *Histogram) write(w io.Writer, fq string) {
	// fq arrives as name{labels} or bare name; bucket lines need the le
	// label merged into the existing set.
	name, labels := fq, ""
	if i := strings.IndexByte(fq, '{'); i >= 0 {
		name, labels = fq[:i], fq[i+1:len(fq)-1]
	}
	line := func(suffix, le string, v int64) {
		switch {
		case le == "" && labels == "":
			fmt.Fprintf(w, "%s%s %d\n", name, suffix, v)
		case le == "":
			fmt.Fprintf(w, "%s%s{%s} %d\n", name, suffix, labels, v)
		case labels == "":
			fmt.Fprintf(w, "%s%s{le=%q} %d\n", name, suffix, le, v)
		default:
			fmt.Fprintf(w, "%s%s{%s,le=%q} %d\n", name, suffix, labels, le, v)
		}
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		line("_bucket", formatSeconds(bucketBounds[i]), cum)
	}
	cum += h.inf.Load()
	line("_bucket", "+Inf", cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, time.Duration(h.sum.Load()).Seconds())
		fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, time.Duration(h.sum.Load()).Seconds())
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.count.Load())
	}
}

func (h *Histogram) varValue() any {
	s := h.Summary()
	return map[string]any{
		"count":   s.Count,
		"sum_ms":  float64(s.Sum) / float64(time.Millisecond),
		"mean_ms": float64(s.Mean) / float64(time.Millisecond),
		"p50_ms":  float64(s.P50) / float64(time.Millisecond),
		"p95_ms":  float64(s.P95) / float64(time.Millisecond),
		"p99_ms":  float64(s.P99) / float64(time.Millisecond),
	}
}

func formatSeconds(d time.Duration) string {
	return fmt.Sprintf("%g", d.Seconds())
}
