package obs

import (
	"context"
	"errors"
	"sync"
	"time"

	"gondi/internal/core"
)

// The shared instrumenting wrapper: a ptest-style decorator every
// provider (and the obs middleware) uses to meter a core.Context. Each
// operation increments exactly one op counter and records exactly one
// latency observation; failed operations additionally increment the error
// counter. CannotProceedError continuations are not errors — they are how
// federation hands off to the next hop — so they count as ops only.

// opMetrics is the per-(system, op) instrument triple.
type opMetrics struct {
	ops  *Counter
	errs *Counter
	lat  *Histogram
}

// InstrumentSet holds one system's pre-registered op instruments so the
// per-call path is two pointer chases, no registry lookups.
type InstrumentSet struct {
	byOp map[string]*opMetrics
}

// opNames is the closed set of naming operations the wrapper meters.
var opNames = []string{
	"lookup", "lookupLink", "bind", "rebind", "unbind", "rename",
	"list", "listBindings", "createSubcontext", "destroySubcontext",
	"getAttributes", "modifyAttributes", "search", "watch",
}

// NewInstrumentSet registers (or re-uses) the op instruments for one
// subsystem/system pair in r:
//
//	gondi_<subsystem>_ops_total{system=..., op=...}
//	gondi_<subsystem>_errors_total{system=..., op=...}
//	gondi_<subsystem>_op_seconds{system=..., op=...}
func NewInstrumentSet(r *Registry, subsystem, system string) *InstrumentSet {
	s := &InstrumentSet{byOp: make(map[string]*opMetrics, len(opNames))}
	for _, op := range opNames {
		labels := []Label{{"system", system}, {"op", op}}
		s.byOp[op] = &opMetrics{
			ops:  r.Counter("gondi_"+subsystem+"_ops_total", "naming operations by system and op", labels...),
			errs: r.Counter("gondi_"+subsystem+"_errors_total", "failed naming operations (federation continuations excluded)", labels...),
			lat:  r.Histogram("gondi_"+subsystem+"_op_seconds", "naming operation latency", labels...),
		}
	}
	return s
}

// setCache memoizes instrument sets on the Default registry, so wrapping
// a context per federation hop costs one sync.Map hit, not 14 registry
// registrations.
var setCache sync.Map // "subsystem\x00system" -> *InstrumentSet

func defaultSet(subsystem, system string) *InstrumentSet {
	key := subsystem + "\x00" + system
	if v, ok := setCache.Load(key); ok {
		return v.(*InstrumentSet)
	}
	s := NewInstrumentSet(Default, subsystem, system)
	actual, _ := setCache.LoadOrStore(key, s)
	return actual.(*InstrumentSet)
}

// record meters one finished op and annotates the current trace hop.
func (s *InstrumentSet) record(ctx context.Context, op string, start time.Time, err error) {
	m := s.byOp[op]
	if m == nil {
		return
	}
	m.ops.Inc()
	m.lat.Since(start)
	HopOp(ctx)
	if err != nil {
		var cpe *core.CannotProceedError
		if errors.As(err, &cpe) {
			return // a continuation, not a failure
		}
		m.errs.Inc()
		HopErr(ctx, err)
	}
}

// Instrument wraps inner with per-op metrics under
// gondi_<subsystem>_*{system=...} in the Default registry. The wrapper
// preserves inner's optional capabilities: DirContext and EventContext
// methods fail with core.ErrNotSupported exactly when inner lacks them,
// ContextViewer is implemented only when inner can rebase (so federation
// falls back to Lookup for providers that cannot), and TTL advice (the
// cache's TTLAdvisor) passes through.
func Instrument(inner core.Context, subsystem, system string) core.Context {
	return newInstCtx(inner, defaultSet(subsystem, system))
}

// InstrumentDir is Instrument typed for DirContext call sites.
func InstrumentDir(inner core.DirContext, subsystem, system string) core.DirContext {
	return newInstCtx(inner, defaultSet(subsystem, system)).(core.DirContext)
}

func newInstCtx(inner core.Context, set *InstrumentSet) core.Context {
	switch ic := inner.(type) {
	case *InstCtx:
		if ic.set == set {
			return ic // never double-meter the same system
		}
	case *instViewerCtx:
		if ic.set == set {
			return ic
		}
	}
	w := &InstCtx{inner: inner, set: set}
	if _, ok := inner.(core.ContextViewer); ok {
		return &instViewerCtx{w}
	}
	return w
}

// InstCtx is the instrumented wrapper. It implements the full DirContext
// + EventContext surface and defers capability checks to the inner
// context, mirroring the cache wrapper's contract.
type InstCtx struct {
	inner core.Context
	set   *InstrumentSet
}

// instViewerCtx adds ContextViewer for inner contexts that support
// rebasing (e.g. the cache wrapper). Kept as a separate type so a plain
// InstCtx does NOT satisfy core.ContextViewer — the federation machinery
// type-asserts it and must fall back to Lookup otherwise.
type instViewerCtx struct {
	*InstCtx
}

var (
	_ core.DirContext    = (*InstCtx)(nil)
	_ core.EventContext  = (*InstCtx)(nil)
	_ core.ContextViewer = (*instViewerCtx)(nil)
)

// Unwrap returns the wrapped context (tests and diagnostics).
func (w *InstCtx) Unwrap() core.Context { return w.inner }

// Uninstrument strips instrumentation wrappers (and any other wrapper
// exposing Unwrap), returning the underlying provider context. Tests that
// need the concrete provider type go through this instead of downcasting
// core.OpenURL's result directly.
func Uninstrument(c core.Context) core.Context {
	for {
		w, ok := c.(interface{ Unwrap() core.Context })
		if !ok {
			return c
		}
		c = w.Unwrap()
	}
}

func (w *InstCtx) dir(op, name string) (core.DirContext, error) {
	d, ok := w.inner.(core.DirContext)
	if !ok {
		return nil, core.Errf(op, name, core.ErrNotSupported)
	}
	return d, nil
}

// Lookup implements core.Context.
func (w *InstCtx) Lookup(ctx context.Context, name string) (any, error) {
	start := time.Now()
	v, err := w.inner.Lookup(ctx, name)
	w.set.record(ctx, "lookup", start, err)
	if c, ok := v.(core.Context); ok && err == nil {
		return newInstCtx(c, w.set), nil
	}
	return v, err
}

// LookupLink implements core.Context.
func (w *InstCtx) LookupLink(ctx context.Context, name string) (any, error) {
	start := time.Now()
	v, err := w.inner.LookupLink(ctx, name)
	w.set.record(ctx, "lookupLink", start, err)
	return v, err
}

// Bind implements core.Context.
func (w *InstCtx) Bind(ctx context.Context, name string, obj any) error {
	start := time.Now()
	err := w.inner.Bind(ctx, name, obj)
	w.set.record(ctx, "bind", start, err)
	return err
}

// Rebind implements core.Context.
func (w *InstCtx) Rebind(ctx context.Context, name string, obj any) error {
	start := time.Now()
	err := w.inner.Rebind(ctx, name, obj)
	w.set.record(ctx, "rebind", start, err)
	return err
}

// Unbind implements core.Context.
func (w *InstCtx) Unbind(ctx context.Context, name string) error {
	start := time.Now()
	err := w.inner.Unbind(ctx, name)
	w.set.record(ctx, "unbind", start, err)
	return err
}

// Rename implements core.Context.
func (w *InstCtx) Rename(ctx context.Context, oldName, newName string) error {
	start := time.Now()
	err := w.inner.Rename(ctx, oldName, newName)
	w.set.record(ctx, "rename", start, err)
	return err
}

// List implements core.Context.
func (w *InstCtx) List(ctx context.Context, name string) ([]core.NameClassPair, error) {
	start := time.Now()
	v, err := w.inner.List(ctx, name)
	w.set.record(ctx, "list", start, err)
	return v, err
}

// ListBindings implements core.Context.
func (w *InstCtx) ListBindings(ctx context.Context, name string) ([]core.Binding, error) {
	start := time.Now()
	v, err := w.inner.ListBindings(ctx, name)
	w.set.record(ctx, "listBindings", start, err)
	return v, err
}

// CreateSubcontext implements core.Context.
func (w *InstCtx) CreateSubcontext(ctx context.Context, name string) (core.Context, error) {
	start := time.Now()
	c, err := w.inner.CreateSubcontext(ctx, name)
	w.set.record(ctx, "createSubcontext", start, err)
	if err != nil {
		return nil, err
	}
	return newInstCtx(c, w.set), nil
}

// DestroySubcontext implements core.Context.
func (w *InstCtx) DestroySubcontext(ctx context.Context, name string) error {
	start := time.Now()
	err := w.inner.DestroySubcontext(ctx, name)
	w.set.record(ctx, "destroySubcontext", start, err)
	return err
}

// BindAttrs implements core.DirContext.
func (w *InstCtx) BindAttrs(ctx context.Context, name string, obj any, attrs *core.Attributes) error {
	d, err := w.dir("bind", name)
	if err != nil {
		return err
	}
	start := time.Now()
	err = d.BindAttrs(ctx, name, obj, attrs)
	w.set.record(ctx, "bind", start, err)
	return err
}

// RebindAttrs implements core.DirContext.
func (w *InstCtx) RebindAttrs(ctx context.Context, name string, obj any, attrs *core.Attributes) error {
	d, err := w.dir("rebind", name)
	if err != nil {
		return err
	}
	start := time.Now()
	err = d.RebindAttrs(ctx, name, obj, attrs)
	w.set.record(ctx, "rebind", start, err)
	return err
}

// GetAttributes implements core.DirContext.
func (w *InstCtx) GetAttributes(ctx context.Context, name string, attrIDs ...string) (*core.Attributes, error) {
	d, err := w.dir("getAttributes", name)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	v, err := d.GetAttributes(ctx, name, attrIDs...)
	w.set.record(ctx, "getAttributes", start, err)
	return v, err
}

// ModifyAttributes implements core.DirContext.
func (w *InstCtx) ModifyAttributes(ctx context.Context, name string, mods []core.AttributeMod) error {
	d, err := w.dir("modifyAttributes", name)
	if err != nil {
		return err
	}
	start := time.Now()
	err = d.ModifyAttributes(ctx, name, mods)
	w.set.record(ctx, "modifyAttributes", start, err)
	return err
}

// Search implements core.DirContext.
func (w *InstCtx) Search(ctx context.Context, name, filterStr string, controls *core.SearchControls) ([]core.SearchResult, error) {
	d, err := w.dir("search", name)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	v, err := d.Search(ctx, name, filterStr, controls)
	w.set.record(ctx, "search", start, err)
	return v, err
}

// CreateSubcontextAttrs implements core.DirContext.
func (w *InstCtx) CreateSubcontextAttrs(ctx context.Context, name string, attrs *core.Attributes) (core.DirContext, error) {
	d, err := w.dir("createSubcontext", name)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	c, err := d.CreateSubcontextAttrs(ctx, name, attrs)
	w.set.record(ctx, "createSubcontext", start, err)
	if err != nil {
		return nil, err
	}
	return newInstCtx(c, w.set).(core.DirContext), nil
}

// Watch implements core.EventContext when inner does; the registration is
// metered, the listener's event deliveries are not (they are pushes, not
// ops).
func (w *InstCtx) Watch(ctx context.Context, target string, scope core.SearchScope, l core.Listener) (func(), error) {
	ec, ok := w.inner.(core.EventContext)
	if !ok {
		return nil, core.Errf("watch", target, core.ErrNotSupported)
	}
	start := time.Now()
	cancel, err := ec.Watch(ctx, target, scope, l)
	w.set.record(ctx, "watch", start, err)
	return cancel, err
}

// View implements core.ContextViewer by rebasing inner, keeping the
// rebased view instrumented.
func (w *instViewerCtx) View(rest core.Name) core.Context {
	return newInstCtx(w.inner.(core.ContextViewer).View(rest), w.set)
}

// Reference implements core.Referenceable when inner does.
func (w *InstCtx) Reference() (*core.Reference, error) {
	if rf, ok := w.inner.(core.Referenceable); ok {
		return rf.Reference()
	}
	return nil, core.ErrNotSupported
}

// AdviseTTL forwards the cache's structural TTLAdvisor interface.
func (w *InstCtx) AdviseTTL(name string) (time.Duration, bool) {
	type ttlAdvisor interface {
		AdviseTTL(name string) (time.Duration, bool)
	}
	if a, ok := w.inner.(ttlAdvisor); ok {
		return a.AdviseTTL(name)
	}
	return 0, false
}

// SyncCursor forwards the sync engine's structural CursorSource interface
// (see internal/sync), so delta-pull change checks survive the
// instrumentation wrapper. The (not-supported, nil-error) result for
// inner contexts without a cursor matches the capability contract.
func (w *InstCtx) SyncCursor(ctx context.Context, name string) (string, bool, error) {
	type cursorSource interface {
		SyncCursor(ctx context.Context, name string) (string, bool, error)
	}
	if cs, ok := w.inner.(cursorSource); ok {
		return cs.SyncCursor(ctx, name)
	}
	return "", false, nil
}

// NameInNamespace implements core.Context.
func (w *InstCtx) NameInNamespace() (string, error) { return w.inner.NameInNamespace() }

// Environment implements core.Context.
func (w *InstCtx) Environment() map[string]any { return w.inner.Environment() }

// Close implements core.Context.
func (w *InstCtx) Close() error { return w.inner.Close() }

// LookupMany implements core.BatchContext, metering the batch as one op
// and delegating to inner's native batch (or the per-item fallback) via
// the core helper.
func (w *InstCtx) LookupMany(ctx context.Context, names []string) ([]core.BatchResult, error) {
	start := time.Now()
	out, err := core.LookupMany(ctx, w.inner, names)
	w.set.record(ctx, "lookupMany", start, err)
	return out, err
}

// BindMany implements core.BatchContext.
func (w *InstCtx) BindMany(ctx context.Context, reqs []core.BindRequest) ([]core.BatchResult, error) {
	start := time.Now()
	out, err := core.BindMany(ctx, w.inner, reqs)
	w.set.record(ctx, "bindMany", start, err)
	return out, err
}

// GetAttributesMany implements core.BatchContext.
func (w *InstCtx) GetAttributesMany(ctx context.Context, names []string, attrIDs ...string) ([]core.BatchResult, error) {
	start := time.Now()
	out, err := core.GetAttributesMany(ctx, w.inner, names, attrIDs...)
	w.set.record(ctx, "getAttributesMany", start, err)
	return out, err
}
