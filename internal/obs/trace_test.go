package obs

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTraceTwoHops(t *testing.T) {
	ResetTraces()
	ctx, finish := StartTrace(context.Background(), "lookup", "dns://a/x")
	if TraceFrom(ctx) == nil {
		t.Fatal("trace not carried by ctx")
	}
	StartHop(ctx, "dns", "127.0.0.1:53", "dns")
	HopOp(ctx)
	AddWireRT(ctx)
	CacheEvent(ctx, "miss")
	StartHop(ctx, "hdns", "127.0.0.1:7001", "hdns")
	HopOp(ctx)
	AddWireRT(ctx)
	AddWireRT(ctx)
	AddRetry(ctx, 1, 10*time.Millisecond)
	tr := finish(nil)
	if tr == nil {
		t.Fatal("finish returned nil")
	}
	if len(tr.Hops) != 2 {
		t.Fatalf("hops = %d, want 2", len(tr.Hops))
	}
	h0, h1 := tr.Hops[0], tr.Hops[1]
	if h0.Scheme != "dns" || h0.Ops != 1 || h0.WireRTs != 1 || h0.Cache != "miss" {
		t.Errorf("hop0 = %+v", h0)
	}
	if h1.Scheme != "hdns" || h1.WireRTs != 2 || h1.Retries != 1 || h1.BackoffNs != 10*time.Millisecond {
		t.Errorf("hop1 = %+v", h1)
	}
	// The first hop closed when the second started; both have durations
	// once the trace finished.
	if h0.Duration == 0 || h1.Duration == 0 {
		t.Errorf("hop durations: %v, %v", h0.Duration, h1.Duration)
	}

	recent := RecentTraces(1)
	if len(recent) != 1 || len(recent[0].Hops) != 2 {
		t.Fatalf("recent = %+v", recent)
	}
	line := recent[0].String()
	for _, want := range []string{"lookup", "dns://127.0.0.1:53", "-> hdns://127.0.0.1:7001", "cache=miss", "rt=2"} {
		if !strings.Contains(line, want) {
			t.Errorf("trace line missing %q: %s", want, line)
		}
	}
}

func TestTraceErrAndSyntheticLocalHop(t *testing.T) {
	ResetTraces()
	ctx, finish := StartTrace(context.Background(), "bind", "plain/name")
	// Annotations before any provider hop create a synthetic local hop.
	HopOp(ctx)
	HopErr(ctx, errors.New("boom"))
	tr := finish(errors.New("boom"))
	if tr.Err != "boom" {
		t.Errorf("trace err = %q", tr.Err)
	}
	if len(tr.Hops) != 1 || tr.Hops[0].Scheme != "local" || tr.Hops[0].Err != "boom" {
		t.Fatalf("hops = %+v", tr.Hops)
	}
	if s := RecentTraces(1)[0].String(); !strings.Contains(s, `err="boom"`) {
		t.Errorf("line = %s", s)
	}
}

func TestTraceHelpersNoopWithoutTrace(t *testing.T) {
	ctx := context.Background()
	// Must not panic and must not create state.
	StartHop(ctx, "dns", "a", "dns")
	HopOp(ctx)
	HopErr(ctx, errors.New("x"))
	CacheEvent(ctx, "hit")
	AddRetry(ctx, 1, time.Millisecond)
	AddWireRT(ctx)
	if TraceFrom(ctx) != nil {
		t.Fatal("no trace expected")
	}
}

func TestTraceDisabled(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)
	ctx, finish := StartTrace(context.Background(), "lookup", "x")
	if TraceFrom(ctx) != nil {
		t.Fatal("trace started while disabled")
	}
	if tr := finish(nil); tr != nil {
		t.Fatal("finish returned a trace while disabled")
	}
}

func TestAnnotationsAfterFinishIgnored(t *testing.T) {
	ResetTraces()
	ctx, finish := StartTrace(context.Background(), "lookup", "x")
	StartHop(ctx, "mem", "a", "mem")
	tr := finish(nil)
	HopOp(ctx)
	StartHop(ctx, "mem", "b", "mem")
	if len(tr.Hops) != 1 || tr.Hops[0].Ops != 0 {
		t.Errorf("post-finish annotation mutated trace: %+v", tr.Hops)
	}
}

func TestTraceRingRotation(t *testing.T) {
	ResetTraces()
	for i := 0; i < traceRingSize+10; i++ {
		_, finish := StartTrace(context.Background(), "lookup", "x")
		finish(nil)
	}
	all := RecentTraces(0)
	if len(all) != traceRingSize {
		t.Fatalf("ring size = %d, want %d", len(all), traceRingSize)
	}
	// Newest first.
	if all[0].ID < all[1].ID {
		t.Errorf("not newest-first: %d then %d", all[0].ID, all[1].ID)
	}
	if got := RecentTraces(5); len(got) != 5 {
		t.Errorf("RecentTraces(5) = %d", len(got))
	}
}
