package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_open", "open things")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
}

func TestGetOrCreateIsStable(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", Label{"op", "lookup"}, Label{"system", "mem"})
	// Same labels in a different order must hit the same metric.
	b := r.Counter("x_total", "x", Label{"system", "mem"}, Label{"op", "lookup"})
	if a != b {
		t.Fatal("label order changed metric identity")
	}
	other := r.Counter("x_total", "x", Label{"op", "bind"}, Label{"system", "mem"})
	if a == other {
		t.Fatal("different labels returned the same metric")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("dual_total", "")
}

func TestEnabledGate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("gated_total", "")
	h := r.Histogram("gated_seconds", "")
	g := r.Gauge("gated_open", "")
	SetEnabled(false)
	defer SetEnabled(true)
	if On() {
		t.Fatal("On() after SetEnabled(false)")
	}
	c.Inc()
	h.Observe(time.Millisecond)
	g.Set(3) // gauges track state: the gate must NOT apply
	if c.Value() != 0 {
		t.Error("counter recorded while disabled")
	}
	if h.Count() != 0 {
		t.Error("histogram recorded while disabled")
	}
	if g.Value() != 3 {
		t.Error("gauge must keep working while disabled")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b help", Label{"op", "lookup"}).Add(2)
	r.Counter("b_total", "b help", Label{"op", "bind"}).Add(1)
	r.Gauge("a_open", "a help").Set(9)
	h := r.Histogram("c_seconds", "c help", Label{"op", "lookup"})
	h.Observe(3 * time.Microsecond) // lands in the 4µs bucket
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# HELP a_open a help\n# TYPE a_open gauge\na_open 9\n",
		"# TYPE b_total counter\n",
		`b_total{op="bind"} 1`,
		`b_total{op="lookup"} 2`,
		"# TYPE c_seconds histogram\n",
		`c_seconds_bucket{op="lookup",le="4e-06"} 1`,
		`c_seconds_bucket{op="lookup",le="+Inf"} 1`,
		`c_seconds_count{op="lookup"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// HELP/TYPE must appear once per family even with several label sets.
	if strings.Count(out, "# TYPE b_total") != 1 {
		t.Errorf("TYPE header repeated:\n%s", out)
	}
	// Families must be contiguous: a < b < c.
	if !(strings.Index(out, "a_open") < strings.Index(out, "b_total") &&
		strings.Index(out, "b_total") < strings.Index(out, "c_seconds")) {
		t.Errorf("families out of order:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", Label{"v", `a"b\c` + "\n"}).Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `esc_total{v="a\"b\\c\n"} 1`) {
		t.Errorf("escaping wrong:\n%s", sb.String())
	}
}

func TestVarsAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("v_total", "").Add(3)
	r.Gauge("v_open", "").Set(2)
	r.Histogram("v_seconds", "").Observe(time.Millisecond)
	vars := r.Vars()
	if vars["v_total"] != int64(3) {
		t.Errorf("vars[v_total] = %v", vars["v_total"])
	}
	hv, ok := vars["v_seconds"].(map[string]any)
	if !ok || hv["count"] != int64(1) {
		t.Errorf("vars[v_seconds] = %v", vars["v_seconds"])
	}
	snap := r.Snapshot()
	if snap["v_total"] != 3 || snap["v_open"] != 2 {
		t.Errorf("snapshot = %v", snap)
	}
	if _, ok := snap["v_seconds"]; ok {
		t.Error("snapshot must contain only counters and gauges")
	}
	if hs := r.Histograms(); hs["v_seconds"] == nil {
		t.Error("Histograms() missing v_seconds")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram()
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	// 100 observations at ~1ms: p50 and p99 must land within the
	// enclosing doubling bucket (512µs, 1024µs].
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	for _, p := range []float64{0.5, 0.95, 0.99} {
		q := h.Quantile(p)
		if q < 512*time.Microsecond || q > 1024*time.Microsecond {
			t.Errorf("q%g = %v, want within (512µs, 1024µs]", p, q)
		}
	}
	if got := h.Count(); got != 100 {
		t.Errorf("count = %d", got)
	}
	if got := h.Sum(); got != 100*time.Millisecond {
		t.Errorf("sum = %v", got)
	}
	s := h.Summary()
	if s.Mean != time.Millisecond {
		t.Errorf("mean = %v", s.Mean)
	}
	// An observation beyond the largest bound lands in +Inf and the
	// quantile clamps to the largest finite bound.
	h2 := newHistogram()
	h2.Observe(time.Minute)
	if q := h2.Quantile(0.99); q != bucketBounds[len(bucketBounds)-1] {
		t.Errorf("inf quantile = %v", q)
	}
	// Negative durations clamp to zero rather than corrupting the sum.
	h3 := newHistogram()
	h3.Observe(-time.Second)
	if h3.Sum() != 0 || h3.Count() != 1 {
		t.Errorf("negative observation: sum=%v count=%d", h3.Sum(), h3.Count())
	}
}

func TestConcurrentRegistrationAndRecording(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("conc_total", "", Label{"op", "x"}).Inc()
				r.Histogram("conc_seconds", "").Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("conc_total", "", Label{"op", "x"}).Value(); got != 1600 {
		t.Errorf("count = %d, want 1600", got)
	}
}
