package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Federation tracing: one Trace per InitialContext operation, one Span
// per resolution hop. A hop is one naming system visited — the initial
// provider open plus every CannotProceedError continuation — so a 2-hop
// dns->hdns lookup yields one Trace holding two Spans, in causal order.
//
// The trace rides the context.Context the resolution already threads
// through every layer: the obs middleware starts it, each middleware
// OpenURL appends a hop, and the cache, retry and wire layers annotate
// the current hop via the package-level helpers below (all no-ops when
// the context carries no trace, so lower layers stay decoupled).

// Span records one federation hop.
type Span struct {
	// Scheme and Authority identify the naming system visited; Provider
	// is the scheme's registered provider label (usually the scheme).
	Scheme    string `json:"scheme"`
	Authority string `json:"authority,omitempty"`
	Provider  string `json:"provider"`
	// Cache is the hop's cache disposition: "", "hit", "negative-hit",
	// "miss", "collapsed", or "bypass".
	Cache string `json:"cache,omitempty"`
	// Retries counts retry attempts beyond the first try on this hop;
	// BackoffNs is time spent sleeping between them.
	Retries   int           `json:"retries,omitempty"`
	BackoffNs time.Duration `json:"backoff_ns,omitempty"`
	// WireRTs counts wire round-trips issued while this hop was current
	// (RPC calls, DNS exchanges, LDAP operations).
	WireRTs int `json:"wire_rts,omitempty"`
	// Ops counts naming operations executed against the hop's context.
	Ops int `json:"ops,omitempty"`
	// Batch accumulates the number of operations carried in batched wire
	// frames while this hop was current (0 = no batching happened).
	Batch int `json:"batch,omitempty"`
	// Mirror marks degraded serving from a sync mirror on this hop:
	// "serve" (a read answered from the mirror replica after the origin
	// failed transport-class) or "open" (resolution itself diverted to the
	// mirror). "" means the origin answered. Mirror-serves are never
	// silent — this annotation plus the sync counters are the contract.
	Mirror string `json:"mirror,omitempty"`
	// Repair marks durable-state repair activity touching this hop:
	// "state-transfer" (a corrupted replica re-anchored from the group)
	// or "resync" (a mirror destination rebuilt from its sync source).
	// "" means no repair was involved. Like Mirror, repair is never
	// silent — this annotation plus gondi_store_repairs_total are the
	// contract.
	Repair string `json:"repair,omitempty"`
	// Err is the hop's terminal error, "" on success. A CannotProceed
	// continuation is not an error — it closes the hop and opens the next.
	Err string `json:"err,omitempty"`

	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
}

// Trace is one traced operation: the root op plus its hop spans.
type Trace struct {
	ID   uint64 `json:"id"`
	Op   string `json:"op"`
	Name string `json:"name"`

	mu       sync.Mutex
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Err      string        `json:"err,omitempty"`
	Hops     []*Span       `json:"hops"`
	done     bool
}

var traceID atomic.Uint64

type traceKey struct{}

// newTrace starts a trace for one operation. Callers thread the returned
// context through the operation and call finish exactly once.
func newTrace(ctx context.Context, op, name string) (context.Context, *Trace) {
	t := &Trace{ID: traceID.Add(1), Op: op, Name: name, Start: time.Now()}
	return context.WithValue(ctx, traceKey{}, t), t
}

// TraceFrom returns the trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// StartTrace begins an explicitly managed trace (tools and tests; the obs
// middleware starts one per operation automatically). finish closes the
// trace, records it into the recent-trace ring, and returns it.
func StartTrace(ctx context.Context, op, name string) (tctx context.Context, finish func(err error) *Trace) {
	if !enabled.Load() {
		return ctx, func(error) *Trace { return nil }
	}
	tctx, t := newTrace(ctx, op, name)
	return tctx, func(err error) *Trace {
		t.finish(err)
		recordTrace(t)
		return t
	}
}

// StartHop opens a new span on ctx's trace; a no-op without one. Closing
// is implicit: a hop ends when the next one starts or the trace finishes.
func StartHop(ctx context.Context, scheme, authority, provider string) {
	t := TraceFrom(ctx)
	if t == nil || !enabled.Load() {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	t.closeCurrentLocked(now)
	t.Hops = append(t.Hops, &Span{Scheme: scheme, Authority: authority, Provider: provider, Start: now})
}

// closeCurrentLocked stamps the open hop's duration, if any.
func (t *Trace) closeCurrentLocked(now time.Time) {
	if n := len(t.Hops); n > 0 && t.Hops[n-1].Duration == 0 {
		t.Hops[n-1].Duration = now.Sub(t.Hops[n-1].Start)
	}
}

// annotate runs fn against the current hop, creating a synthetic "local"
// hop for annotations that arrive before any provider hop (e.g. a default
// in-memory context operation).
func (t *Trace) annotate(fn func(*Span)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	if len(t.Hops) == 0 {
		t.Hops = append(t.Hops, &Span{Scheme: "local", Provider: "local", Start: time.Now()})
	}
	fn(t.Hops[len(t.Hops)-1])
}

// HopErr marks the current hop's terminal error.
func HopErr(ctx context.Context, err error) {
	t := TraceFrom(ctx)
	if t == nil || err == nil || !enabled.Load() {
		return
	}
	t.annotate(func(s *Span) { s.Err = err.Error() })
}

// HopOp counts one naming operation against the current hop.
func HopOp(ctx context.Context) {
	t := TraceFrom(ctx)
	if t == nil || !enabled.Load() {
		return
	}
	t.annotate(func(s *Span) { s.Ops++ })
}

// CacheEvent records the current hop's cache disposition ("hit",
// "negative-hit", "miss", "collapsed", "bypass"). The last event on a hop
// wins, which is what a read-through wants: a miss that fills overwrites
// the initial miss marker only if the caller reports again.
func CacheEvent(ctx context.Context, kind string) {
	t := TraceFrom(ctx)
	if t == nil || !enabled.Load() {
		return
	}
	t.annotate(func(s *Span) { s.Cache = kind })
}

// AddRetry accumulates retry attempts and backoff sleep on the current hop.
func AddRetry(ctx context.Context, attempts int, backoff time.Duration) {
	t := TraceFrom(ctx)
	if t == nil || !enabled.Load() {
		return
	}
	t.annotate(func(s *Span) { s.Retries += attempts; s.BackoffNs += backoff })
}

// AddBatch records that a batched wire frame carried n operations on the
// current hop, so one trace span per batch reports its size.
func AddBatch(ctx context.Context, n int) {
	t := TraceFrom(ctx)
	if t == nil || !enabled.Load() {
		return
	}
	t.annotate(func(s *Span) { s.Batch += n })
}

// MirrorEvent marks the current hop as served from a sync mirror ("serve"
// for a diverted read, "open" for diverted resolution). It is how the
// fallback middleware keeps degraded mode visible on every trace.
func MirrorEvent(ctx context.Context, kind string) {
	t := TraceFrom(ctx)
	if t == nil || !enabled.Load() {
		return
	}
	t.annotate(func(s *Span) { s.Mirror = kind })
}

// RepairEvent marks durable-state repair activity on the current hop
// ("state-transfer" for a corrupted replica re-anchoring from the group,
// "resync" for a mirror destination rebuilt from its sync source).
func RepairEvent(ctx context.Context, kind string) {
	t := TraceFrom(ctx)
	if t == nil || !enabled.Load() {
		return
	}
	t.annotate(func(s *Span) { s.Repair = kind })
}

// AddWireRT counts one wire round-trip on the current hop.
func AddWireRT(ctx context.Context) {
	t := TraceFrom(ctx)
	if t == nil || !enabled.Load() {
		return
	}
	t.annotate(func(s *Span) { s.WireRTs++ })
}

// finish closes the trace.
func (t *Trace) finish(err error) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	t.done = true
	t.closeCurrentLocked(now)
	t.Duration = now.Sub(t.Start)
	if err != nil {
		t.Err = err.Error()
	}
}

// snapshot returns a deep copy safe to serialize without holding locks.
func (t *Trace) snapshot() *TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &TraceSnapshot{
		ID: t.ID, Op: t.Op, Name: t.Name,
		Start: t.Start, Duration: t.Duration, Err: t.Err,
	}
	for _, h := range t.Hops {
		hc := *h
		s.Hops = append(s.Hops, &hc)
	}
	return s
}

// TraceSnapshot is an immutable copy of a finished (or in-flight) trace.
type TraceSnapshot struct {
	ID       uint64        `json:"id"`
	Op       string        `json:"op"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Err      string        `json:"err,omitempty"`
	Hops     []*Span       `json:"hops"`
}

// String renders a one-line causal summary: op name [hop -> hop -> hop].
func (s *TraceSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %q %s", s.Op, s.Name, s.Duration.Round(time.Microsecond))
	if s.Err != "" {
		fmt.Fprintf(&b, " err=%q", s.Err)
	}
	for i, h := range s.Hops {
		if i == 0 {
			b.WriteString(" [")
		} else {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "%s://%s", h.Scheme, h.Authority)
		if h.Cache != "" {
			fmt.Fprintf(&b, " cache=%s", h.Cache)
		}
		if h.Mirror != "" {
			fmt.Fprintf(&b, " mirror=%s", h.Mirror)
		}
		if h.WireRTs > 0 {
			fmt.Fprintf(&b, " rt=%d", h.WireRTs)
		}
		if h.Retries > 0 {
			fmt.Fprintf(&b, " retries=%d", h.Retries)
		}
	}
	if len(s.Hops) > 0 {
		b.WriteString("]")
	}
	return b.String()
}

// --- recent-trace ring --------------------------------------------------

const traceRingSize = 128

var traceRing struct {
	mu   sync.Mutex
	buf  [traceRingSize]*TraceSnapshot
	next int
	n    int
}

// recordTrace pushes a finished trace into the recent ring served by
// /debug/vars. Multi-hop traces are what operators diagnose federation
// with, so they are always kept; single-hop traces are kept too (they are
// the common case and show cache behaviour), the ring just rotates faster.
func recordTrace(t *Trace) {
	s := t.snapshot()
	traceRing.mu.Lock()
	traceRing.buf[traceRing.next] = s
	traceRing.next = (traceRing.next + 1) % traceRingSize
	if traceRing.n < traceRingSize {
		traceRing.n++
	}
	traceRing.mu.Unlock()
}

// RecentTraces returns the most recent finished traces, newest first.
func RecentTraces(max int) []*TraceSnapshot {
	traceRing.mu.Lock()
	defer traceRing.mu.Unlock()
	if max <= 0 || max > traceRing.n {
		max = traceRing.n
	}
	out := make([]*TraceSnapshot, 0, max)
	for i := 0; i < max; i++ {
		idx := (traceRing.next - 1 - i + 2*traceRingSize) % traceRingSize
		if traceRing.buf[idx] != nil {
			out = append(out, traceRing.buf[idx])
		}
	}
	return out
}

// ResetTraces clears the recent-trace ring (tests).
func ResetTraces() {
	traceRing.mu.Lock()
	traceRing.next, traceRing.n = 0, 0
	for i := range traceRing.buf {
		traceRing.buf[i] = nil
	}
	traceRing.mu.Unlock()
}
