package obs

import (
	"context"
	"time"

	"gondi/internal/core"
)

// Middleware is the observability resolution middleware. Installed via
// core.Open(core.WithMiddleware(obs.NewMiddleware())) it sits outside the
// cache, so it observes every operation — including ones the cache absorbs:
//
//   - OpObserver: BeginOp starts one federation Trace per InitialContext
//     operation and records resolve-level op/error counters and latency.
//   - ChainedMiddleware: OpenURLNext opens a hop span per URL resolution
//     (the first hop and every CannotProceedError continuation) before
//     delegating to the next layer (cache, then core.OpenURL).
//   - WrapContext instruments the default context so plain-name operations
//     are metered like provider-backed ones.
type Middleware struct {
	reg *Registry
}

// NewMiddleware returns the obs middleware recording into the Default
// registry.
func NewMiddleware() *Middleware { return &Middleware{reg: Default} }

// NewMiddlewareRegistry is NewMiddleware for an explicit registry (tests).
func NewMiddlewareRegistry(r *Registry) *Middleware { return &Middleware{reg: r} }

// BeginOp implements core.OpObserver: it starts a federation trace carried
// by the returned context and meters the operation at the resolve level.
func (m *Middleware) BeginOp(ctx context.Context, op, name string) (context.Context, func(err error)) {
	if !enabled.Load() {
		return ctx, func(error) {}
	}
	start := time.Now()
	ops := m.reg.Counter("gondi_resolve_ops_total",
		"InitialContext operations started, by op.", Label{"op", op})
	errs := m.reg.Counter("gondi_resolve_errors_total",
		"InitialContext operations that returned an error, by op.", Label{"op", op})
	lat := m.reg.Histogram("gondi_resolve_seconds",
		"End-to-end InitialContext operation latency, by op.", Label{"op", op})
	tctx, finish := StartTrace(ctx, op, name)
	return tctx, func(err error) {
		ops.Inc()
		lat.Since(start)
		if err != nil {
			errs.Inc()
		}
		finish(err)
	}
}

// OpenURL implements core.Middleware; resolution always flows through
// OpenURLNext, but a plain-Middleware caller gets the registry default.
func (m *Middleware) OpenURL(ctx context.Context, rawURL string, env map[string]any) (core.Context, core.Name, error) {
	return m.OpenURLNext(ctx, rawURL, env, core.OpenURL)
}

// OpenURLNext implements core.ChainedMiddleware: each call is one
// federation hop, so it opens a span on the operation's trace, counts the
// hop, and delegates resolution to the layer below.
func (m *Middleware) OpenURLNext(ctx context.Context, rawURL string, env map[string]any, next core.OpenURLFunc) (core.Context, core.Name, error) {
	if !enabled.Load() {
		return next(ctx, rawURL, env)
	}
	scheme, authority := splitURL(rawURL)
	StartHop(ctx, scheme, authority, scheme)
	m.reg.Counter("gondi_federation_hops_total",
		"Federation hops resolved, by scheme.", Label{"scheme", scheme}).Inc()
	c, rest, err := next(ctx, rawURL, env)
	if err != nil {
		m.reg.Counter("gondi_federation_hop_errors_total",
			"Federation hops that failed to resolve, by scheme.", Label{"scheme", scheme}).Inc()
		HopErr(ctx, err)
	}
	return c, rest, err
}

// WrapContext instruments the default context under the "federation"
// subsystem so non-URL names are metered too.
func (m *Middleware) WrapContext(c core.Context) core.Context {
	return Instrument(c, "federation", "default")
}

// Close implements core.Middleware; the obs middleware holds no resources.
func (m *Middleware) Close() error { return nil }

// splitURL extracts (scheme, authority) from a URL-form name without a
// full parse: "hdns://h1:7001/a/b" -> ("hdns", "h1:7001").
func splitURL(rawURL string) (scheme, authority string) {
	i := 0
	for i < len(rawURL) && rawURL[i] != ':' {
		i++
	}
	if i == len(rawURL) {
		return rawURL, ""
	}
	scheme, rest := rawURL[:i], rawURL[i+1:]
	if len(rest) >= 2 && rest[0] == '/' && rest[1] == '/' {
		rest = rest[2:]
		for j := 0; j < len(rest); j++ {
			if rest[j] == '/' {
				return scheme, rest[:j]
			}
		}
		return scheme, rest
	}
	return scheme, ""
}
