package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHandlerMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "help", Label{"op", "lookup"}).Add(2)
	r.Histogram("h_seconds", "").Observe(time.Millisecond)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content-type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{`h_total{op="lookup"} 2`, "h_seconds_bucket", "# TYPE h_seconds histogram"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestHandlerDebugVars(t *testing.T) {
	ResetTraces()
	_, finish := StartTrace(context.Background(), "lookup", "dns://a/x")
	finish(nil)
	r := NewRegistry()
	r.Counter("dv_total", "").Add(5)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	metrics, ok := doc["metrics"].(map[string]any)
	if !ok || metrics["dv_total"] != float64(5) {
		t.Errorf("metrics = %v", doc["metrics"])
	}
	traces, ok := doc["traces"].([]any)
	if !ok || len(traces) == 0 {
		t.Errorf("traces = %v", doc["traces"])
	}
	rt, ok := doc["runtime"].(map[string]any)
	if !ok || rt["goroutines"] == nil {
		t.Errorf("runtime = %v", doc["runtime"])
	}
}

func TestHandlerPprof(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %d", resp.StatusCode)
	}
}

func TestServeLifecycle(t *testing.T) {
	// Empty addr: observability off, no server, no error.
	if s, err := Serve(""); s != nil || err != nil {
		t.Fatalf("Serve(\"\") = %v, %v", s, err)
	}
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() == "" {
		t.Error("Addr empty")
	}
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	resp.Body.Close()
	if err := s.Close(); err != nil {
		t.Errorf("Close = %v", err)
	}
	// A second server cannot bind the same port... but more importantly the
	// closed one stops answering.
	if _, err := http.Get("http://" + s.Addr() + "/metrics"); err == nil {
		t.Error("server still answering after Close")
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := ServeRegistry("256.256.256.256:99999", NewRegistry()); err == nil {
		t.Fatal("expected a listen error")
	}
}
