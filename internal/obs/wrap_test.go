package obs

import (
	"context"
	"errors"
	"testing"
	"time"

	"gondi/internal/core"
)

// fakeCtx is a minimal core.Context whose every op returns err.
type fakeCtx struct {
	err    error
	closed bool
}

func (f *fakeCtx) Lookup(ctx context.Context, name string) (any, error) {
	return "v:" + name, f.err
}
func (f *fakeCtx) LookupLink(ctx context.Context, name string) (any, error) { return nil, f.err }
func (f *fakeCtx) Bind(ctx context.Context, name string, obj any) error     { return f.err }
func (f *fakeCtx) Rebind(ctx context.Context, name string, obj any) error   { return f.err }
func (f *fakeCtx) Unbind(ctx context.Context, name string) error            { return f.err }
func (f *fakeCtx) Rename(ctx context.Context, o, n string) error            { return f.err }
func (f *fakeCtx) List(ctx context.Context, name string) ([]core.NameClassPair, error) {
	return nil, f.err
}
func (f *fakeCtx) ListBindings(ctx context.Context, name string) ([]core.Binding, error) {
	return nil, f.err
}
func (f *fakeCtx) CreateSubcontext(ctx context.Context, name string) (core.Context, error) {
	if f.err != nil {
		return nil, f.err
	}
	return &fakeCtx{}, nil
}
func (f *fakeCtx) DestroySubcontext(ctx context.Context, name string) error { return f.err }
func (f *fakeCtx) NameInNamespace() (string, error)                         { return "fake", nil }
func (f *fakeCtx) Environment() map[string]any                              { return map[string]any{"k": 1} }
func (f *fakeCtx) Close() error                                             { f.closed = true; return nil }

// fakeDirCtx adds DirContext, EventContext, Referenceable and TTL advice.
type fakeDirCtx struct {
	fakeCtx
}

func (f *fakeDirCtx) BindAttrs(ctx context.Context, n string, o any, a *core.Attributes) error {
	return f.err
}
func (f *fakeDirCtx) RebindAttrs(ctx context.Context, n string, o any, a *core.Attributes) error {
	return f.err
}
func (f *fakeDirCtx) GetAttributes(ctx context.Context, n string, ids ...string) (*core.Attributes, error) {
	return core.NewAttributes(), f.err
}
func (f *fakeDirCtx) ModifyAttributes(ctx context.Context, n string, m []core.AttributeMod) error {
	return f.err
}
func (f *fakeDirCtx) Search(ctx context.Context, n, fl string, c *core.SearchControls) ([]core.SearchResult, error) {
	return nil, f.err
}
func (f *fakeDirCtx) CreateSubcontextAttrs(ctx context.Context, n string, a *core.Attributes) (core.DirContext, error) {
	if f.err != nil {
		return nil, f.err
	}
	return &fakeDirCtx{}, nil
}
func (f *fakeDirCtx) Watch(ctx context.Context, t string, s core.SearchScope, l core.Listener) (func(), error) {
	return func() {}, f.err
}
func (f *fakeDirCtx) Reference() (*core.Reference, error) {
	return &core.Reference{Class: "fake"}, nil
}
func (f *fakeDirCtx) AdviseTTL(name string) (time.Duration, bool) { return 3 * time.Second, true }

// fakeViewerCtx adds ContextViewer.
type fakeViewerCtx struct {
	fakeCtx
}

func (f *fakeViewerCtx) View(rest core.Name) core.Context { return &fakeCtx{} }

// instCounters reads the Default-registry instrument values for one
// (system, op) pair.
func instCounters(t *testing.T, system, op string) (ops, errs, lat int64) {
	t.Helper()
	labels := []Label{{"system", system}, {"op", op}}
	o := Default.Counter("gondi_test_ops_total", "", labels...).Value()
	e := Default.Counter("gondi_test_errors_total", "", labels...).Value()
	l := Default.Histogram("gondi_test_op_seconds", "", labels...).Count()
	return o, e, l
}

func TestInstrumentMetersExactlyOnce(t *testing.T) {
	inner := &fakeDirCtx{}
	c := Instrument(inner, "test", "once")
	ctx := context.Background()
	if _, err := c.Lookup(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	ops, errs, lat := instCounters(t, "once", "lookup")
	if ops != 1 || errs != 0 || lat != 1 {
		t.Fatalf("lookup: ops=%d errs=%d lat=%d, want 1/0/1", ops, errs, lat)
	}
	// One op counter and one latency observation per operation, across the
	// whole surface.
	d := c.(core.DirContext)
	e := c.(core.EventContext)
	calls := []struct {
		op string
		do func() error
	}{
		{"bind", func() error { return c.Bind(ctx, "a", 1) }},
		{"rebind", func() error { return c.Rebind(ctx, "a", 1) }},
		{"unbind", func() error { return c.Unbind(ctx, "a") }},
		{"rename", func() error { return c.Rename(ctx, "a", "b") }},
		{"list", func() error { _, err := c.List(ctx, ""); return err }},
		{"listBindings", func() error { _, err := c.ListBindings(ctx, ""); return err }},
		{"lookupLink", func() error { _, err := c.LookupLink(ctx, "a"); return err }},
		{"createSubcontext", func() error { _, err := c.CreateSubcontext(ctx, "s"); return err }},
		{"destroySubcontext", func() error { return c.DestroySubcontext(ctx, "s") }},
		{"getAttributes", func() error { _, err := d.GetAttributes(ctx, "a"); return err }},
		{"modifyAttributes", func() error { return d.ModifyAttributes(ctx, "a", nil) }},
		{"search", func() error { _, err := d.Search(ctx, "", "(x=1)", nil); return err }},
		{"watch", func() error { _, err := e.Watch(ctx, "a", core.ScopeSubtree, func(core.NamingEvent) {}); return err }},
	}
	for _, call := range calls {
		before, _, latBefore := instCounters(t, "once", call.op)
		if err := call.do(); err != nil {
			t.Fatalf("%s: %v", call.op, err)
		}
		after, errsAfter, latAfter := instCounters(t, "once", call.op)
		if after != before+1 || latAfter != latBefore+1 || errsAfter != 0 {
			t.Errorf("%s: ops %d->%d lat %d->%d errs=%d", call.op, before, after, latBefore, latAfter, errsAfter)
		}
	}
	// Attr variants meter under the base op name.
	before, _, _ := instCounters(t, "once", "bind")
	if err := d.BindAttrs(ctx, "a2", 1, nil); err != nil {
		t.Fatal(err)
	}
	if after, _, _ := instCounters(t, "once", "bind"); after != before+1 {
		t.Errorf("BindAttrs not metered as bind: %d -> %d", before, after)
	}
	if err := d.RebindAttrs(ctx, "a2", 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateSubcontextAttrs(ctx, "s2", nil); err != nil {
		t.Fatal(err)
	}
}

func TestInstrumentErrorsCounted(t *testing.T) {
	boom := errors.New("boom")
	c := Instrument(&fakeCtx{err: boom}, "test", "err")
	if _, err := c.Lookup(context.Background(), "a"); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	ops, errs, lat := instCounters(t, "err", "lookup")
	if ops != 1 || errs != 1 || lat != 1 {
		t.Fatalf("ops=%d errs=%d lat=%d, want 1/1/1", ops, errs, lat)
	}
}

func TestInstrumentCPEIsNotAnError(t *testing.T) {
	cpe := &core.CannotProceedError{Resolved: "hdns://x/", AltName: "a"}
	c := Instrument(&fakeCtx{err: cpe}, "test", "cpe")
	_, err := c.Lookup(context.Background(), "a")
	var got *core.CannotProceedError
	if !errors.As(err, &got) {
		t.Fatalf("err = %v", err)
	}
	ops, errs, lat := instCounters(t, "cpe", "lookup")
	if ops != 1 || errs != 0 || lat != 1 {
		t.Fatalf("continuation miscounted: ops=%d errs=%d lat=%d, want 1/0/1", ops, errs, lat)
	}
}

func TestInstrumentCapabilityChecks(t *testing.T) {
	// A plain Context gains the Dir/Event surface, but the calls must fail
	// with ErrNotSupported and not be metered.
	c := Instrument(&fakeCtx{}, "test", "plaincap")
	d := c.(core.DirContext)
	ctx := context.Background()
	for op, do := range map[string]func() error{
		"getAttributes":    func() error { _, err := d.GetAttributes(ctx, "a"); return err },
		"modifyAttributes": func() error { return d.ModifyAttributes(ctx, "a", nil) },
		"search":           func() error { _, err := d.Search(ctx, "", "(x=1)", nil); return err },
		"bind":             func() error { return d.BindAttrs(ctx, "a", 1, nil) },
		"rebind":           func() error { return d.RebindAttrs(ctx, "a", 1, nil) },
		"createSubcontext": func() error { _, err := d.CreateSubcontextAttrs(ctx, "a", nil); return err },
		"watch": func() error {
			_, err := c.(core.EventContext).Watch(ctx, "a", core.ScopeSubtree, func(core.NamingEvent) {})
			return err
		},
	} {
		if err := do(); !errors.Is(err, core.ErrNotSupported) {
			t.Errorf("%s: err = %v, want ErrNotSupported", op, err)
		}
		if ops, _, _ := instCounters(t, "plaincap", op); ops != 0 {
			t.Errorf("%s: unsupported call was metered (ops=%d)", op, ops)
		}
	}
}

func TestInstrumentViewerSplit(t *testing.T) {
	// Only inner contexts that rebase expose ContextViewer through the
	// wrapper; the rebased view stays instrumented.
	plain := Instrument(&fakeCtx{}, "test", "view")
	if _, ok := plain.(core.ContextViewer); ok {
		t.Fatal("plain wrapper must not claim ContextViewer")
	}
	viewer := Instrument(&fakeViewerCtx{}, "test", "view")
	v, ok := viewer.(core.ContextViewer)
	if !ok {
		t.Fatal("viewer wrapper lost ContextViewer")
	}
	sub := v.View(core.Name{})
	if _, ok := sub.(*InstCtx); !ok {
		t.Fatalf("rebased view not instrumented: %T", sub)
	}
}

func TestInstrumentNoDoubleWrap(t *testing.T) {
	inner := &fakeCtx{}
	once := Instrument(inner, "test", "dw")
	twice := Instrument(once, "test", "dw")
	if once != twice {
		t.Fatal("same-system re-wrap must be a no-op")
	}
	other := Instrument(once, "test", "dw2")
	if other == once {
		t.Fatal("different system must wrap again")
	}
	if got := Uninstrument(other); got != inner {
		t.Fatalf("Uninstrument = %T, want the original inner", got)
	}
	if got := Uninstrument(inner); got != inner {
		t.Fatal("Uninstrument of an unwrapped context must be identity")
	}
}

func TestInstrumentChildContextsStayInstrumented(t *testing.T) {
	c := Instrument(&fakeCtx{}, "test", "child")
	sub, err := c.CreateSubcontext(context.Background(), "s")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sub.(*InstCtx); !ok {
		t.Fatalf("subcontext not instrumented: %T", sub)
	}
	// Lookup of a context value re-wraps it too (fakeCtx returns a string,
	// so exercise via a nested fake returning a context).
	d := InstrumentDir(&fakeDirCtx{}, "test", "child")
	sd, err := d.CreateSubcontextAttrs(context.Background(), "s", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sd.(*InstCtx); !ok {
		t.Fatalf("attr subcontext not instrumented: %T", sd)
	}
}

func TestInstrumentPassthroughs(t *testing.T) {
	inner := &fakeDirCtx{}
	c := Instrument(inner, "test", "pass").(*InstCtx)
	if n, _ := c.NameInNamespace(); n != "fake" {
		t.Errorf("NameInNamespace = %q", n)
	}
	if env := c.Environment(); env["k"] != 1 {
		t.Errorf("Environment = %v", env)
	}
	if ref, err := c.Reference(); err != nil || ref.Class != "fake" {
		t.Errorf("Reference = %v, %v", ref, err)
	}
	if ttl, ok := c.AdviseTTL("x"); !ok || ttl != 3*time.Second {
		t.Errorf("AdviseTTL = %v, %v", ttl, ok)
	}
	if err := c.Close(); err != nil || !inner.closed {
		t.Errorf("Close not forwarded (err=%v closed=%v)", err, inner.closed)
	}
	// A plain inner: Reference and AdviseTTL degrade gracefully.
	p := Instrument(&fakeCtx{}, "test", "pass2").(*InstCtx)
	if _, err := p.Reference(); !errors.Is(err, core.ErrNotSupported) {
		t.Errorf("Reference on plain inner: %v", err)
	}
	if _, ok := p.AdviseTTL("x"); ok {
		t.Error("AdviseTTL on plain inner must report false")
	}
}
