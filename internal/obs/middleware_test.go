package obs

import (
	"context"
	"errors"
	"testing"

	"gondi/internal/core"
)

func TestMiddlewareBeginOp(t *testing.T) {
	ResetTraces()
	r := NewRegistry()
	m := NewMiddlewareRegistry(r)
	ctx, finish := m.BeginOp(context.Background(), "lookup", "dns://a/x")
	if TraceFrom(ctx) == nil {
		t.Fatal("BeginOp did not start a trace")
	}
	finish(nil)
	if got := r.Counter("gondi_resolve_ops_total", "", Label{"op", "lookup"}).Value(); got != 1 {
		t.Errorf("ops = %d", got)
	}
	if got := r.Counter("gondi_resolve_errors_total", "", Label{"op", "lookup"}).Value(); got != 0 {
		t.Errorf("errs = %d", got)
	}
	if got := r.Histogram("gondi_resolve_seconds", "", Label{"op", "lookup"}).Count(); got != 1 {
		t.Errorf("lat = %d", got)
	}
	if len(RecentTraces(1)) != 1 {
		t.Error("finished trace not in ring")
	}

	_, finish = m.BeginOp(context.Background(), "bind", "x")
	finish(errors.New("boom"))
	if got := r.Counter("gondi_resolve_errors_total", "", Label{"op", "bind"}).Value(); got != 1 {
		t.Errorf("bind errs = %d", got)
	}
}

func TestMiddlewareBeginOpDisabled(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)
	r := NewRegistry()
	m := NewMiddlewareRegistry(r)
	ctx, finish := m.BeginOp(context.Background(), "lookup", "x")
	if TraceFrom(ctx) != nil {
		t.Fatal("trace started while disabled")
	}
	finish(nil)
	if got := r.Counter("gondi_resolve_ops_total", "", Label{"op", "lookup"}).Value(); got != 0 {
		t.Errorf("ops = %d while disabled", got)
	}
}

func TestMiddlewareOpenURLNext(t *testing.T) {
	r := NewRegistry()
	m := NewMiddlewareRegistry(r)
	ctx, finish := StartTrace(context.Background(), "lookup", "hdns://h1:7001/a/b")

	inner := &fakeCtx{}
	next := func(ctx context.Context, rawURL string, env map[string]any) (core.Context, core.Name, error) {
		return inner, core.NewName("a", "b"), nil
	}
	c, rest, err := m.OpenURLNext(ctx, "hdns://h1:7001/a/b", nil, next)
	if err != nil || c != inner || rest.Size() != 2 {
		t.Fatalf("OpenURLNext = %v, %v, %v", c, rest, err)
	}
	if got := r.Counter("gondi_federation_hops_total", "", Label{"scheme", "hdns"}).Value(); got != 1 {
		t.Errorf("hops = %d", got)
	}

	failing := func(ctx context.Context, rawURL string, env map[string]any) (core.Context, core.Name, error) {
		return nil, core.Name{}, errors.New("unreachable")
	}
	if _, _, err := m.OpenURLNext(ctx, "dns://127.0.0.1:53/x", nil, failing); err == nil {
		t.Fatal("error swallowed")
	}
	if got := r.Counter("gondi_federation_hop_errors_total", "", Label{"scheme", "dns"}).Value(); got != 1 {
		t.Errorf("hop errors = %d", got)
	}

	tr := finish(errors.New("unreachable"))
	if len(tr.Hops) != 2 || tr.Hops[0].Scheme != "hdns" || tr.Hops[1].Scheme != "dns" {
		t.Fatalf("hops = %+v", tr.Hops)
	}
	if tr.Hops[1].Err == "" {
		t.Error("failed hop not annotated")
	}
}

func TestMiddlewareOpenURLDisabledPassesThrough(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)
	r := NewRegistry()
	m := NewMiddlewareRegistry(r)
	called := false
	next := func(ctx context.Context, rawURL string, env map[string]any) (core.Context, core.Name, error) {
		called = true
		return &fakeCtx{}, core.Name{}, nil
	}
	if _, _, err := m.OpenURLNext(context.Background(), "mem://x/", nil, next); err != nil || !called {
		t.Fatalf("passthrough broken: err=%v called=%v", err, called)
	}
	if got := r.Counter("gondi_federation_hops_total", "", Label{"scheme", "mem"}).Value(); got != 0 {
		t.Errorf("hop counted while disabled: %d", got)
	}
}

func TestMiddlewareWrapContextAndClose(t *testing.T) {
	m := NewMiddleware()
	w := m.WrapContext(&fakeCtx{})
	if _, ok := w.(*InstCtx); !ok {
		t.Fatalf("WrapContext = %T", w)
	}
	if err := m.Close(); err != nil {
		t.Errorf("Close = %v", err)
	}
	// OpenURL without an explicit next delegates to core.OpenURL; with no
	// registered provider that is a name error, still counted as a hop.
	if _, _, err := m.OpenURL(context.Background(), "nosuch://x/", nil); err == nil {
		t.Error("expected an error for an unregistered scheme")
	}
}

func TestSplitURL(t *testing.T) {
	for _, tc := range []struct {
		in, scheme, authority string
	}{
		{"hdns://h1:7001/a/b", "hdns", "h1:7001"},
		{"dns://127.0.0.1:53", "dns", "127.0.0.1:53"},
		{"mem://", "mem", ""},
		{"file:/tmp/x", "file", ""},
		{"plainname", "plainname", ""},
		{"", "", ""},
	} {
		s, a := splitURL(tc.in)
		if s != tc.scheme || a != tc.authority {
			t.Errorf("splitURL(%q) = %q, %q; want %q, %q", tc.in, s, a, tc.scheme, tc.authority)
		}
	}
}
