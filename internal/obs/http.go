package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"
)

// varsSections holds extra /debug/vars sections registered by other
// subsystems (e.g. internal/sync publishes per-mirror status here so
// `fedctl sync` can read cursor/lag/last-error from a running daemon).
var varsSections struct {
	mu sync.RWMutex
	m  map[string]func() any
}

// RegisterVarsSection publishes fn's result under the given key in every
// /debug/vars document. Re-registering a key replaces it; a nil fn
// removes it. fn must be safe for concurrent use.
func RegisterVarsSection(name string, fn func() any) {
	varsSections.mu.Lock()
	defer varsSections.mu.Unlock()
	if fn == nil {
		delete(varsSections.m, name)
		return
	}
	if varsSections.m == nil {
		varsSections.m = map[string]func() any{}
	}
	varsSections.m[name] = fn
}

func extraVars() map[string]any {
	varsSections.mu.RLock()
	fns := make(map[string]func() any, len(varsSections.m))
	for k, fn := range varsSections.m {
		fns[k] = fn
	}
	varsSections.mu.RUnlock()
	out := make(map[string]any, len(fns))
	for k, fn := range fns {
		out[k] = fn()
	}
	return out
}

// Handler returns the observability HTTP mux for a registry:
//
//	/metrics      Prometheus text exposition (hand-rolled, format 0.0.4)
//	/debug/vars   JSON: metrics, runtime stats, recent federation traces
//	/debug/pprof  the standard net/http/pprof endpoints
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		doc := map[string]any{
			"metrics": r.Vars(),
			"traces":  RecentTraces(32),
			"runtime": map[string]any{
				"goroutines":     runtime.NumGoroutine(),
				"heap_alloc":     ms.HeapAlloc,
				"total_alloc":    ms.TotalAlloc,
				"num_gc":         ms.NumGC,
				"gc_pause_total": time.Duration(ms.PauseTotalNs).String(),
			},
		}
		for k, v := range extraVars() {
			doc[k] = v
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	lis net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts the observability HTTP server on addr, serving the Default
// registry. Every daemon's -obs.addr flag lands here; an empty addr
// returns (nil, nil) so callers can pass the flag through unconditionally.
func Serve(addr string) (*Server, error) {
	return ServeRegistry(addr, Default)
}

// ServeRegistry is Serve for an explicit registry.
func ServeRegistry(addr string, r *Registry) (*Server, error) {
	if addr == "" {
		return nil, nil
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(lis) }()
	return &Server{lis: lis, srv: srv}, nil
}
