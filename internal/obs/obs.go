// Package obs is the stack-wide observability layer: cheap atomic metrics
// (counters, gauges, latency histograms) registered per subsystem,
// federation tracing (one span per resolution hop, threaded through
// context.Context), and the HTTP serving hooks every daemon exposes via
// -obs.addr (/metrics in Prometheus text format, /debug/vars, and
// net/http/pprof).
//
// The package is stdlib-only and always-on by default; a process-global
// kill switch (SetEnabled) turns every record path into a no-op so the
// benchmark harness can measure instrumentation overhead directly. All
// record paths are safe for concurrent use and allocate nothing on the
// hot path beyond the first registration of a metric.
//
// Layering: obs imports only internal/core (for the Middleware and
// DirContext instrumentation decorators); everything else — wire clients,
// servers, cache, retry, providers, daemons — imports obs. core itself
// never imports obs.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// enabled is the process-global record gate. Default on.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled flips the global record gate. Disabling makes every counter
// add, histogram observation and trace annotation a no-op (metric values
// freeze); serving endpoints keep working. The benchmark harness uses it
// to quantify instrumentation overhead.
func SetEnabled(on bool) { enabled.Store(on) }

// On reports whether recording is enabled.
func On() bool { return enabled.Load() }

// Label is one constant metric dimension (rendered {k="v"} in the
// Prometheus exposition).
type Label struct {
	K, V string
}

// metric is the common behaviour the registry needs from every kind.
type metric interface {
	write(w io.Writer, fq string)
	varValue() any
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (recording gate applies).
func (c *Counter) Add(n int64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, fq string) {
	fmt.Fprintf(w, "%s %d\n", fq, c.v.Load())
}

func (c *Counter) varValue() any { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v unconditionally (gauges track state, not events, so the
// recording gate does not apply: a frozen gauge would lie about state).
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) write(w io.Writer, fq string) {
	fmt.Fprintf(w, "%s %d\n", fq, g.v.Load())
}

func (g *Gauge) varValue() any { return g.v.Load() }

// entry is one registered metric plus its exposition metadata.
type entry struct {
	name   string // metric family name, e.g. "gondi_provider_ops_total"
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	labels string // rendered {k="v",...} or ""
	m      metric
}

// Registry holds named metrics. Registration is get-or-create: asking for
// the same (name, labels) twice returns the same metric, so subsystems can
// register at use sites without coordination.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry // keyed by name + rendered labels
	order   []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*entry{}}
}

// Default is the process-global registry every subsystem records into and
// every daemon serves from.
var Default = NewRegistry()

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].K < ls[j].K })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.K)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.V))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// get returns the metric registered under (name, labels), creating it via
// mk when absent. It panics if the name is already registered with a
// different kind — that is a programming error, not a runtime condition.
func (r *Registry) get(name, help, typ string, labels []Label, mk func() metric) metric {
	ls := renderLabels(labels)
	key := name + ls
	r.mu.RLock()
	e, ok := r.entries[key]
	r.mu.RUnlock()
	if ok {
		if e.typ != typ {
			panic(fmt.Sprintf("obs: %s registered as %s, requested as %s", name, e.typ, typ))
		}
		return e.m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		if e.typ != typ {
			panic(fmt.Sprintf("obs: %s registered as %s, requested as %s", name, e.typ, typ))
		}
		return e.m
	}
	e = &entry{name: name, help: help, typ: typ, labels: ls, m: mk()}
	r.entries[key] = e
	r.order = append(r.order, key)
	return e.m
}

// Counter returns the counter registered under (name, labels), creating
// it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.get(name, help, "counter", labels, func() metric { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge registered under (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.get(name, help, "gauge", labels, func() metric { return &Gauge{} }).(*Gauge)
}

// Histogram returns the latency histogram registered under (name, labels).
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.get(name, help, "histogram", labels, func() metric { return newHistogram() }).(*Histogram)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), grouped by family with HELP/TYPE
// headers emitted once per family.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	keys := make([]string, len(r.order))
	copy(keys, r.order)
	entries := make([]*entry, 0, len(keys))
	for _, k := range keys {
		entries = append(entries, r.entries[k])
	}
	r.mu.RUnlock()
	// Families must be contiguous in the exposition; sort by name, then
	// labels, keeping registration order only as a tiebreaker.
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return entries[i].labels < entries[j].labels
	})
	lastFamily := ""
	for _, e := range entries {
		if e.name != lastFamily {
			if e.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help)
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.typ)
			lastFamily = e.name
		}
		e.m.write(w, e.name+e.labels)
	}
}

// Vars returns every metric as a flat map (name+labels -> value) for the
// /debug/vars JSON document. Histograms render as summary objects.
func (r *Registry) Vars() map[string]any {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]any, len(r.entries))
	for k, e := range r.entries {
		out[k] = e.m.varValue()
	}
	return out
}

// Snapshot captures every counter value, keyed by name+labels. The
// benchmark harness diffs two snapshots to report per-window op counts.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := map[string]int64{}
	for k, e := range r.entries {
		switch m := e.m.(type) {
		case *Counter:
			out[k] = m.Value()
		case *Gauge:
			out[k] = m.Value()
		}
	}
	return out
}

// Histograms returns the registered histograms keyed by name+labels.
func (r *Registry) Histograms() map[string]*Histogram {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := map[string]*Histogram{}
	for k, e := range r.entries {
		if h, ok := e.m.(*Histogram); ok {
			out[k] = h
		}
	}
	return out
}
