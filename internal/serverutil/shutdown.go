package serverutil

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gondi/internal/admission"
)

// DefaultDrainTimeout bounds how long shutdown waits for in-flight
// admitted work before closing anyway.
const DefaultDrainTimeout = 5 * time.Second

// AwaitShutdown blocks until SIGINT or SIGTERM, then runs the daemons'
// shared graceful-exit sequence:
//
//  1. announce the shutdown (so operators see why the port died),
//  2. drain the admission queue — wait, bounded by drainTimeout, until
//     admitted work has finished, so requests the server accepted are
//     answered rather than severed mid-flight (new arrivals keep being
//     admitted during the drain; the bound, not a gate, ends it),
//  3. run each closer in order (server close, then state persistence —
//     hdnsd's node.Close syncs the WAL, snapshots, and writes the
//     clean-shutdown marker that lets the next boot skip scrub-on-start).
//
// ctrl may be nil (no admission control; the drain is skipped).
// drainTimeout <= 0 means DefaultDrainTimeout. The first closer error is
// returned after all closers have run.
func AwaitShutdown(name string, ctrl *admission.Controller, drainTimeout time.Duration, closers ...func() error) error {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	signal.Stop(sig)
	fmt.Printf("%s: %v received, shutting down\n", name, s)
	if drainTimeout <= 0 {
		drainTimeout = DefaultDrainTimeout
	}
	if d := ctrl.Depth(); d > 0 {
		fmt.Printf("%s: draining %d admitted ops (up to %v)\n", name, d, drainTimeout)
		deadline := time.Now().Add(drainTimeout)
		for ctrl.Depth() > 0 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if d := ctrl.Depth(); d > 0 {
			fmt.Printf("%s: drain timeout with %d ops still in flight\n", name, d)
		}
	}
	var first error
	for _, c := range closers {
		if err := c(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
