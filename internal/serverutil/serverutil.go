// Package serverutil holds the typed server options shared by the five
// daemons (hdnsd, jinilusd, dnsd, ldapd, jxtad): listen address,
// observability endpoint, and admission control. One flag-binding helper
// maps the daemons' historical flags (-listen, -obs.addr) plus the new
// -admission.* family onto the typed Options, so every daemon gains
// overload protection with identical spelling and defaults.
package serverutil

import (
	"flag"

	"gondi/internal/admission"
)

// Options is the typed configuration shared by every daemon.
type Options struct {
	// ListenAddr is the client-facing listen address.
	ListenAddr string
	// ObsAddr serves /metrics, /debug/vars and /debug/pprof ("" = off).
	ObsAddr string
	// Admission configures the server's admission controller.
	Admission admission.Options
}

// Option mutates Options (the typed-constructor pattern).
type Option func(*Options)

// WithListenAddr sets the client-facing listen address.
func WithListenAddr(addr string) Option {
	return func(o *Options) { o.ListenAddr = addr }
}

// WithObsAddr sets the observability HTTP address.
func WithObsAddr(addr string) Option {
	return func(o *Options) { o.ObsAddr = addr }
}

// WithAdmission sets the admission configuration wholesale.
func WithAdmission(a admission.Options) Option {
	return func(o *Options) { o.Admission = a }
}

// NewOptions applies opts over the zero value.
func NewOptions(opts ...Option) Options {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// Controller builds the admission controller described by the options.
func (o Options) Controller() *admission.Controller {
	return admission.NewController(o.Admission)
}

// Flags carries the parsed shared flags until Options resolves them.
type Flags struct {
	listen     *string
	obsAddr    *string
	admit      *bool
	queue      *int
	readRate   *float64
	writeRate  *float64
	searchRate *float64
}

// BindFlags registers the shared daemon flags on fs. The historical
// spellings are kept: -listen (defaulting per daemon) and -obs.addr mean
// exactly what they always did; the -admission.* family is new.
func BindFlags(fs *flag.FlagSet, defaultListen string) *Flags {
	return &Flags{
		listen: fs.String("listen", defaultListen, "client-facing listen address"),
		obsAddr: fs.String("obs.addr", "",
			"observability HTTP address serving /metrics, /debug/vars and /debug/pprof (empty = off)"),
		admit: fs.Bool("admission", true,
			"shed excess load with typed busy errors instead of queueing without bound"),
		queue: fs.Int("admission.queue", admission.DefaultQueueBound,
			"admission run-queue bound (queued + executing ops)"),
		readRate: fs.Float64("admission.read-rate", 0,
			"read-class rate limit in ops/sec (0 = unlimited)"),
		writeRate: fs.Float64("admission.write-rate", 0,
			"write-class rate limit in ops/sec (0 = unlimited)"),
		searchRate: fs.Float64("admission.search-rate", 0,
			"search-class rate limit in ops/sec (0 = unlimited)"),
	}
}

// Options resolves the parsed flags into typed options; server labels the
// admission metrics ("hdns", "ldap", ...).
func (f *Flags) Options(server string) Options {
	adm := admission.NewOptions(
		admission.WithServer(server),
		admission.WithQueueBound(*f.queue),
		admission.WithRate(admission.Read, *f.readRate, 0),
		admission.WithRate(admission.Write, *f.writeRate, 0),
		admission.WithRate(admission.Search, *f.searchRate, 0),
		admission.WithDisabled(!*f.admit),
	)
	return NewOptions(
		WithListenAddr(*f.listen),
		WithObsAddr(*f.obsAddr),
		WithAdmission(adm),
	)
}
