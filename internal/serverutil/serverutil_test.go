package serverutil

import (
	"flag"
	"testing"

	"gondi/internal/admission"
)

func TestBindFlagsKeepsHistoricalSpellings(t *testing.T) {
	fs := flag.NewFlagSet("d", flag.ContinueOnError)
	f := BindFlags(fs, "127.0.0.1:7001")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	o := f.Options("hdns")
	if o.ListenAddr != "127.0.0.1:7001" {
		t.Errorf("default -listen = %q", o.ListenAddr)
	}
	if o.ObsAddr != "" {
		t.Errorf("default -obs.addr = %q", o.ObsAddr)
	}
	if o.Admission.Disabled {
		t.Error("admission must default on")
	}
	if o.Admission.QueueBound != admission.DefaultQueueBound {
		t.Errorf("default queue bound = %d", o.Admission.QueueBound)
	}
	if o.Admission.Server != "hdns" {
		t.Errorf("admission server label = %q", o.Admission.Server)
	}
}

func TestBindFlagsMapsAdmissionFamily(t *testing.T) {
	fs := flag.NewFlagSet("d", flag.ContinueOnError)
	f := BindFlags(fs, ":4160")
	err := fs.Parse([]string{
		"-listen", ":9999",
		"-obs.addr", "127.0.0.1:8080",
		"-admission=false",
		"-admission.queue", "64",
		"-admission.read-rate", "500",
		"-admission.write-rate", "100",
		"-admission.search-rate", "25",
	})
	if err != nil {
		t.Fatal(err)
	}
	o := f.Options("jini")
	if o.ListenAddr != ":9999" || o.ObsAddr != "127.0.0.1:8080" {
		t.Errorf("addresses = %q / %q", o.ListenAddr, o.ObsAddr)
	}
	a := o.Admission
	if !a.Disabled {
		t.Error("-admission=false did not disable")
	}
	if a.QueueBound != 64 {
		t.Errorf("queue bound = %d", a.QueueBound)
	}
	if a.Read.Rate != 500 || a.Write.Rate != 100 || a.Search.Rate != 25 {
		t.Errorf("rates = %v/%v/%v", a.Read.Rate, a.Write.Rate, a.Search.Rate)
	}
}

func TestOptionsController(t *testing.T) {
	o := NewOptions(WithAdmission(admission.NewOptions(
		admission.WithServer("x"), admission.WithQueueBound(1), admission.WithWeights(1, 0, 0),
	)))
	c := o.Controller()
	rel, err := c.Admit(admission.Read, "ep", "op")
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	defer rel()
	if _, err := c.Admit(admission.Read, "ep", "op"); err == nil {
		t.Fatal("bound of 1 not enforced by built controller")
	}
}
