package core

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// CacheConfig configures the read-through cache middleware (implemented in
// internal/cache; see WithCache). It lives in core so that core can expose
// the typed WithCache option without importing the cache package.
type CacheConfig struct {
	// TTL bounds the staleness of positive entries for providers without
	// event-driven invalidation (and backstops those with it); <=0 uses
	// the cache package's default.
	TTL time.Duration
	// NegativeTTL bounds how long an ErrNotFound result is remembered;
	// <=0 uses the default.
	NegativeTTL time.Duration
	// MaxEntries bounds the per-root entry count (LRU eviction); <=0 uses
	// the default.
	MaxEntries int
	// DisableEvents forces TTL-only coherence even on providers that
	// support Watch.
	DisableEvents bool
	// DisableNegative turns off negative caching of ErrNotFound.
	DisableNegative bool
	// StaleTTL bounds how long past expiry a positive entry may still be
	// served when a refill fails with a transport-class error (backend
	// unreachable, breaker open). <=0 uses the cache package's default.
	StaleTTL time.Duration
	// DisableServeStale turns the degraded serve-stale mode off entirely:
	// a transport failure during refill surfaces to the caller even when an
	// expired entry is available.
	DisableServeStale bool
}

// Middleware intercepts InitialContext resolution. The cache package
// implements it; the obs package layers metrics and federation tracing
// the same way. Multiple middlewares stack: each WrapContext wraps the
// previous wrapper, and URL resolution flows outermost-in (see
// ChainedMiddleware).
type Middleware interface {
	// WrapContext wraps the default (non-URL-name) context.
	WrapContext(c Context) Context
	// OpenURL replaces core.OpenURL during resolution, letting the
	// middleware reuse one wire client per (scheme, authority).
	OpenURL(ctx context.Context, rawURL string, env map[string]any) (Context, Name, error)
	// Close releases everything the middleware holds (cached connections,
	// watch registrations, background goroutines).
	Close() error
}

// OpenURLFunc is the URL-resolution continuation handed to chained
// middleware: the next layer down, ending at core.OpenURL.
type OpenURLFunc func(ctx context.Context, rawURL string, env map[string]any) (Context, Name, error)

// ChainedMiddleware is an optional Middleware extension for layers that
// decorate resolution rather than replace it (observability around the
// cache). When a middleware implements it, the chain calls OpenURLNext
// with the next layer's resolver; plain Middleware terminates the chain
// via its own OpenURL.
type ChainedMiddleware interface {
	Middleware
	OpenURLNext(ctx context.Context, rawURL string, env map[string]any, next OpenURLFunc) (Context, Name, error)
}

// OpObserver is an optional Middleware extension that brackets every
// InitialContext operation: BeginOp runs before resolution starts and may
// derive the context (e.g. to carry a trace); the returned finish runs
// once with the operation's terminal error. Middleware whose BeginOp
// needs no per-op state returns ctx unchanged and a no-op finish.
type OpObserver interface {
	BeginOp(ctx context.Context, op, name string) (context.Context, func(err error))
}

// ContextViewer is implemented by middleware-provided contexts that can
// address a subtree of themselves without a wire round trip. The federation
// machinery uses it when a boundary reference carries a path ("hdns://h/a/b"):
// instead of looking the subtree context up remotely, it asks the wrapper
// for a rebased view, so operations on the next hop stay cacheable.
type ContextViewer interface {
	View(rest Name) Context
}

// CacheFactory builds the cache middleware for one InitialContext. env is
// the context's environment (shared, not a copy).
type CacheFactory func(cfg CacheConfig, env map[string]any) Middleware

var cacheFactoryMu sync.RWMutex
var cacheFactory CacheFactory

// RegisterCacheFactory installs the factory WithCache uses. The cache
// package registers itself via cache.Register(); core holds only this hook
// so the dependency points cache→core, never the reverse.
func RegisterCacheFactory(f CacheFactory) {
	cacheFactoryMu.Lock()
	defer cacheFactoryMu.Unlock()
	cacheFactory = f
}

func lookupCacheFactory() (CacheFactory, bool) {
	cacheFactoryMu.RLock()
	defer cacheFactoryMu.RUnlock()
	return cacheFactory, cacheFactory != nil
}

// FallbackFactory builds the mirror-fallback middleware for one
// InitialContext (see WithMirrorFallback). env is the context's
// environment (shared, not a copy).
type FallbackFactory func(env map[string]any) Middleware

var fallbackFactoryMu sync.RWMutex
var fallbackFactory FallbackFactory

// RegisterFallbackFactory installs the factory WithMirrorFallback uses.
// The sync package registers itself via sync.Register(); core holds only
// this hook so the dependency points sync→core, never the reverse.
func RegisterFallbackFactory(f FallbackFactory) {
	fallbackFactoryMu.Lock()
	defer fallbackFactoryMu.Unlock()
	fallbackFactory = f
}

func lookupFallbackFactory() (FallbackFactory, bool) {
	fallbackFactoryMu.RLock()
	defer fallbackFactoryMu.RUnlock()
	return fallbackFactory, fallbackFactory != nil
}

// openOptions accumulates functional options for Open.
type openOptions struct {
	env      map[string]any
	cache    *CacheConfig
	fallback bool
	mws      []Middleware
}

// Option configures Open.
type Option func(*openOptions)

// WithInitialFactory selects the initial context factory for non-URL names
// (the typed form of env[EnvInitialFactory]).
func WithInitialFactory(name string) Option {
	return func(o *openOptions) { o.env[EnvInitialFactory] = name }
}

// WithProviderURL points the initial factory at its provider (the typed
// form of env[EnvProviderURL]).
func WithProviderURL(url string) Option {
	return func(o *openOptions) { o.env[EnvProviderURL] = url }
}

// WithPrincipal carries authentication data (the typed form of
// env[EnvPrincipal] / env[EnvCredentials]).
func WithPrincipal(principal, credentials string) Option {
	return func(o *openOptions) {
		o.env[EnvPrincipal] = principal
		o.env[EnvCredentials] = credentials
	}
}

// WithPoolID partitions provider connection pools (the typed form of
// env[EnvPoolID]): contexts opened with different pool IDs never share a
// wire connection.
func WithPoolID(id string) Option {
	return func(o *openOptions) { o.env[EnvPoolID] = id }
}

// WithEnv sets an arbitrary environment property, for provider-specific
// keys ("jini.bind", "hdns.secret", ...) that have no typed option.
func WithEnv(key string, value any) Option {
	return func(o *openOptions) { o.env[key] = value }
}

// WithMiddleware stacks a resolution middleware outside any configured
// cache (the first WithMiddleware is outermost). The obs package's
// NewMiddleware is the canonical use: metrics and federation tracing
// wrap the cache, so a cache hit is still observed.
func WithMiddleware(mw Middleware) Option {
	return func(o *openOptions) { o.mws = append(o.mws, mw) }
}

// WithCache enables the read-through federation cache with the given
// configuration (zero value = defaults). It requires the cache middleware
// to be registered — import internal/cache and call cache.Register()
// alongside the provider Register calls — otherwise Open fails.
func WithCache(cfg CacheConfig) Option {
	return func(o *openOptions) { o.cache = &cfg }
}

// WithMirrorFallback enables graceful degradation onto cross-registry
// mirrors: when resolution (or a read) against an origin fails with a
// transport-class error — endpoint dead, breaker open — and an active
// sync mirror (internal/sync) covers the name, the read is served from
// the mirror's materialized replica instead of failing. The fallback is
// never silent: every mirror-serve is counted in obs and annotated on
// the federation trace, and writes never divert (the mirror is a
// read-only degraded mode). It requires the fallback middleware to be
// registered — import gondi/internal/sync and call sync.Register()
// alongside the provider Register calls — otherwise Open fails.
func WithMirrorFallback() Option {
	return func(o *openOptions) { o.fallback = true }
}

// Open creates an initial context from typed functional options — the
// preferred construction path. NewInitialContext remains as the
// SPI-compatible map-based form; Open composes the same environment and
// additionally wires optional middleware (WithCache) into resolution.
func Open(ctx context.Context, opts ...Option) (*InitialContext, error) {
	if err := CtxErr(ctx); err != nil {
		return nil, err
	}
	o := &openOptions{env: make(map[string]any)}
	for _, opt := range opts {
		opt(o)
	}
	ic := NewInitialContext(o.env)
	for _, mw := range o.mws {
		ic.installMiddleware(mw)
	}
	if o.cache != nil {
		f, ok := lookupCacheFactory()
		if !ok {
			return nil, fmt.Errorf("naming: WithCache requires the cache middleware: import gondi/internal/cache and call cache.Register()")
		}
		ic.installMiddleware(f(*o.cache, ic.env))
	}
	if o.fallback {
		f, ok := lookupFallbackFactory()
		if !ok {
			return nil, fmt.Errorf("naming: WithMirrorFallback requires the sync middleware: import gondi/internal/sync and call sync.Register()")
		}
		// Installed after the cache so the fallback sits innermost:
		// a cache fill that reaches a dead origin transparently fills
		// from the mirror, and the filled entry is cached as usual.
		ic.installMiddleware(f(ic.env))
	}
	return ic, nil
}
