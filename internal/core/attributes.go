package core

import (
	"fmt"
	"sort"
	"strings"

	"gondi/internal/filter"
)

// Attribute is a named, multi-valued directory attribute. Values are
// strings; providers that store typed data (e.g. Jini entries) translate
// via their state/object factories. IDs are matched case-insensitively, as
// in LDAP and the JNDI BasicAttributes(ignoreCase=true) convention.
type Attribute struct {
	ID     string
	Values []string
}

// Clone returns a deep copy.
func (a Attribute) Clone() Attribute {
	v := make([]string, len(a.Values))
	copy(v, a.Values)
	return Attribute{ID: a.ID, Values: v}
}

// Contains reports whether the attribute holds val (case-insensitive).
func (a Attribute) Contains(val string) bool {
	for _, v := range a.Values {
		if strings.EqualFold(v, val) {
			return true
		}
	}
	return false
}

func (a Attribute) String() string {
	return fmt.Sprintf("%s=%s", a.ID, strings.Join(a.Values, ","))
}

// Attributes is a case-insensitive set of attributes. The zero value is
// empty and ready to use.
type Attributes struct {
	m map[string]Attribute // key: lowercase ID
}

// NewAttributes builds an attribute set from id/value pairs:
// NewAttributes("cn", "alice", "objectClass", "person").
func NewAttributes(pairs ...string) *Attributes {
	if len(pairs)%2 != 0 {
		panic("core.NewAttributes: odd number of arguments")
	}
	a := &Attributes{}
	for i := 0; i < len(pairs); i += 2 {
		a.Add(pairs[i], pairs[i+1])
	}
	return a
}

func (a *Attributes) init() {
	if a.m == nil {
		a.m = make(map[string]Attribute)
	}
}

// Size returns the number of distinct attribute IDs.
func (a *Attributes) Size() int {
	if a == nil {
		return 0
	}
	return len(a.m)
}

// Put replaces the attribute's values.
func (a *Attributes) Put(id string, values ...string) {
	a.init()
	v := make([]string, len(values))
	copy(v, values)
	a.m[strings.ToLower(id)] = Attribute{ID: id, Values: v}
}

// Add appends values to the attribute, creating it if absent. Duplicate
// values (case-insensitive) are not added twice.
func (a *Attributes) Add(id string, values ...string) {
	a.init()
	key := strings.ToLower(id)
	attr, ok := a.m[key]
	if !ok {
		attr = Attribute{ID: id}
	}
	for _, v := range values {
		if !attr.Contains(v) {
			attr.Values = append(attr.Values, v)
		}
	}
	a.m[key] = attr
}

// Get returns the attribute with the given ID, or ok=false.
func (a *Attributes) Get(id string) (Attribute, bool) {
	if a == nil || a.m == nil {
		return Attribute{}, false
	}
	attr, ok := a.m[strings.ToLower(id)]
	return attr, ok
}

// GetFirst returns the first value of the attribute, or "".
func (a *Attributes) GetFirst(id string) string {
	attr, ok := a.Get(id)
	if !ok || len(attr.Values) == 0 {
		return ""
	}
	return attr.Values[0]
}

// Remove deletes the attribute entirely; it reports whether it existed.
func (a *Attributes) Remove(id string) bool {
	if a == nil || a.m == nil {
		return false
	}
	key := strings.ToLower(id)
	_, ok := a.m[key]
	delete(a.m, key)
	return ok
}

// RemoveValues deletes specific values; the attribute disappears when its
// last value is removed. With no values given, the whole attribute is
// removed (LDAP modify/delete semantics).
func (a *Attributes) RemoveValues(id string, values ...string) {
	if len(values) == 0 {
		a.Remove(id)
		return
	}
	attr, ok := a.Get(id)
	if !ok {
		return
	}
	var keep []string
	for _, v := range attr.Values {
		drop := false
		for _, rm := range values {
			if strings.EqualFold(v, rm) {
				drop = true
				break
			}
		}
		if !drop {
			keep = append(keep, v)
		}
	}
	if len(keep) == 0 {
		a.Remove(id)
		return
	}
	attr.Values = keep
	a.m[strings.ToLower(id)] = attr
}

// All returns all attributes sorted by lowercase ID.
func (a *Attributes) All() []Attribute {
	if a == nil {
		return nil
	}
	keys := make([]string, 0, len(a.m))
	for k := range a.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Attribute, 0, len(keys))
	for _, k := range keys {
		out = append(out, a.m[k].Clone())
	}
	return out
}

// IDs returns all attribute IDs (original case), sorted.
func (a *Attributes) IDs() []string {
	all := a.All()
	ids := make([]string, len(all))
	for i, attr := range all {
		ids[i] = attr.ID
	}
	return ids
}

// Clone deep-copies the set. Clone of nil returns an empty set.
func (a *Attributes) Clone() *Attributes {
	out := &Attributes{}
	if a == nil {
		return out
	}
	for _, attr := range a.m {
		out.Put(attr.ID, attr.Values...)
	}
	return out
}

// Select returns a copy holding only the listed IDs; with no IDs it is
// equivalent to Clone (JNDI getAttributes(name, null) semantics).
func (a *Attributes) Select(ids ...string) *Attributes {
	if len(ids) == 0 {
		return a.Clone()
	}
	out := &Attributes{}
	for _, id := range ids {
		if attr, ok := a.Get(id); ok {
			out.Put(attr.ID, attr.Values...)
		}
	}
	return out
}

// Equal reports whether two sets hold the same IDs and value sequences.
func (a *Attributes) Equal(b *Attributes) bool {
	if a.Size() != b.Size() {
		return false
	}
	for _, attr := range a.All() {
		other, ok := b.Get(attr.ID)
		if !ok || len(other.Values) != len(attr.Values) {
			return false
		}
		for i := range attr.Values {
			if attr.Values[i] != other.Values[i] {
				return false
			}
		}
	}
	return true
}

func (a *Attributes) String() string {
	parts := make([]string, 0, a.Size())
	for _, attr := range a.All() {
		parts = append(parts, attr.String())
	}
	return "{" + strings.Join(parts, "; ") + "}"
}

// Get implements filter.Values so filters can be evaluated directly against
// an attribute set.
func (a *Attributes) GetValues(attr string) []string {
	at, ok := a.Get(attr)
	if !ok {
		return nil
	}
	return at.Values
}

// filterValues adapts Attributes to filter.Values.
type filterValues struct{ a *Attributes }

func (f filterValues) Get(attr string) []string { return f.a.GetValues(attr) }

// MatchesFilter evaluates a parsed filter against the attribute set.
func (a *Attributes) MatchesFilter(n *filter.Node) bool {
	return n.Matches(filterValues{a})
}

// ModOp is an attribute modification operation type.
type ModOp int

// Modification operations, mirroring DirContext.ADD_ATTRIBUTE etc.
const (
	ModAdd ModOp = iota
	ModReplace
	ModRemove
)

func (m ModOp) String() string {
	switch m {
	case ModAdd:
		return "add"
	case ModReplace:
		return "replace"
	case ModRemove:
		return "remove"
	default:
		return "?"
	}
}

// AttributeMod is a single modification in a ModifyAttributes batch.
type AttributeMod struct {
	Op   ModOp
	Attr Attribute
}

// Apply applies a batch of modifications to the set, in order.
func (a *Attributes) Apply(mods []AttributeMod) error {
	for _, m := range mods {
		if m.Attr.ID == "" {
			return fmt.Errorf("%w: empty attribute ID", ErrInvalidAttributes)
		}
		switch m.Op {
		case ModAdd:
			a.Add(m.Attr.ID, m.Attr.Values...)
		case ModReplace:
			if len(m.Attr.Values) == 0 {
				a.Remove(m.Attr.ID)
			} else {
				a.Put(m.Attr.ID, m.Attr.Values...)
			}
		case ModRemove:
			a.RemoveValues(m.Attr.ID, m.Attr.Values...)
		default:
			return fmt.Errorf("%w: unknown op %d", ErrInvalidAttributes, m.Op)
		}
	}
	return nil
}

// ToMap returns a plain map copy, convenient for wire encoding.
func (a *Attributes) ToMap() map[string][]string {
	if a == nil {
		return nil
	}
	out := make(map[string][]string, len(a.m))
	for _, attr := range a.m {
		v := make([]string, len(attr.Values))
		copy(v, attr.Values)
		out[attr.ID] = v
	}
	return out
}

// AttributesFromMap builds an attribute set from a plain map.
func AttributesFromMap(m map[string][]string) *Attributes {
	a := &Attributes{}
	for id, vals := range m {
		a.Put(id, vals...)
	}
	return a
}
