package core

import (
	"context"
	"fmt"
	"sync"
)

// ObjectFactory reconstructs an application object from the data a provider
// retrieved (typically a *Reference, or a provider-specific stub). It
// returns (nil, nil) to decline, letting other factories run — the JNDI
// NamingManager.getObjectInstance contract.
type ObjectFactory func(ctx context.Context, obj any, name Name, env map[string]any) (any, error)

// StateFactory translates an application object into the form a provider
// can store (the dual of ObjectFactory). It returns (nil, nil, nil) to
// decline. The Jini provider uses a state factory to wrap arbitrary
// name/value pairs into fake service items (§5.1 "State and Object
// Factories"); the HDNS provider uses the same pair of abstractions.
type StateFactory func(obj any, name Name, env map[string]any) (any, *Attributes, error)

var factoryMu sync.RWMutex
var objectFactories []namedObjectFactory
var stateFactories []StateFactory

type namedObjectFactory struct {
	name string
	f    ObjectFactory
}

// RegisterObjectFactory registers a named object factory. References whose
// Factory field matches the name are dispatched directly to it; references
// with an empty Factory field, and non-reference provider data, are offered
// to every registered factory in registration order.
func RegisterObjectFactory(name string, f ObjectFactory) {
	factoryMu.Lock()
	defer factoryMu.Unlock()
	for i, nf := range objectFactories {
		if nf.name == name {
			objectFactories[i].f = f
			return
		}
	}
	objectFactories = append(objectFactories, namedObjectFactory{name, f})
}

// RegisterStateFactory registers a state factory, consulted in order by
// GetStateToBind.
func RegisterStateFactory(f StateFactory) {
	factoryMu.Lock()
	defer factoryMu.Unlock()
	stateFactories = append(stateFactories, f)
}

// GetObjectInstance converts provider data into an application object:
//
//  1. A *Reference with a named factory goes to that factory.
//  2. A *Reference carrying a URL address to a context is resolved through
//     the provider registry (federation).
//  3. A *Reference carrying a link address yields a LinkRef.
//  4. Otherwise every registered factory is offered the object.
//  5. If nothing claims it, the object is returned unchanged.
func GetObjectInstance(ctx context.Context, obj any, name Name, env map[string]any) (any, error) {
	ref, isRef := obj.(*Reference)
	if isRef && ref.Factory != "" {
		factoryMu.RLock()
		var f ObjectFactory
		for _, nf := range objectFactories {
			if nf.name == ref.Factory {
				f = nf.f
				break
			}
		}
		factoryMu.RUnlock()
		if f == nil {
			return nil, fmt.Errorf("naming: object factory %q not registered", ref.Factory)
		}
		out, err := f(ctx, obj, name, env)
		if err != nil {
			return nil, err
		}
		if out != nil {
			return out, nil
		}
		// Named factory declined; fall through to generic handling.
	}
	if isRef {
		if url, ok := ref.Get(AddrURL); ok {
			c, remaining, err := OpenURL(ctx, url, env)
			if err != nil {
				return nil, err
			}
			if remaining.IsEmpty() {
				return c, nil
			}
			return c.Lookup(ctx, remaining.String())
		}
		if target, ok := ref.Get(AddrLink); ok {
			return LinkRef{Target: target}, nil
		}
	}
	factoryMu.RLock()
	fs := make([]ObjectFactory, len(objectFactories))
	for i, nf := range objectFactories {
		fs[i] = nf.f
	}
	factoryMu.RUnlock()
	for _, f := range fs {
		out, err := f(ctx, obj, name, env)
		if err != nil {
			return nil, err
		}
		if out != nil {
			return out, nil
		}
	}
	return obj, nil
}

// GetStateToBind converts an application object into storable form:
// Referenceable objects become their Reference; otherwise registered state
// factories are consulted; otherwise the object passes through unchanged.
// The returned attributes, if non-nil, are merged over the caller's.
func GetStateToBind(obj any, name Name, env map[string]any) (any, *Attributes, error) {
	if r, ok := obj.(Referenceable); ok {
		ref, err := r.Reference()
		if err != nil {
			return nil, nil, err
		}
		return ref, nil, nil
	}
	if _, ok := obj.(*Reference); ok {
		return obj, nil, nil
	}
	factoryMu.RLock()
	fs := make([]StateFactory, len(stateFactories))
	copy(fs, stateFactories)
	factoryMu.RUnlock()
	for _, f := range fs {
		out, attrs, err := f(obj, name, env)
		if err != nil {
			return nil, nil, err
		}
		if out != nil {
			return out, attrs, nil
		}
	}
	return obj, nil, nil
}

// resetFactoriesForTest clears factory registrations (tests only).
func resetFactoriesForTest() {
	factoryMu.Lock()
	defer factoryMu.Unlock()
	objectFactories = nil
	stateFactories = nil
}
