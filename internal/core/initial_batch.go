package core

import (
	"context"
	"errors"
	"fmt"
)

// batchGroup collects the batch positions that resolved to one target
// context, so each target sees exactly one batched call.
type batchGroup struct {
	c     Context
	idxs  []int
	rests []Name
}

// groupByTarget resolves every name and buckets the resolvable ones by
// target context (URL names share cached roots, plain names share the
// default context). Unresolvable names fail in place in out.
func (ic *InitialContext) groupByTarget(ctx context.Context, op string, names []string, out []BatchResult) ([]*batchGroup, error) {
	groups := map[Context]*batchGroup{}
	var order []*batchGroup
	for i, name := range names {
		c, rest, err := ic.resolve(ctx, name)
		if err != nil {
			if cerr := CtxErr(ctx); cerr != nil {
				return nil, cerr
			}
			out[i].Err = Errf(op, name, err)
			continue
		}
		g := groups[c]
		if g == nil {
			g = &batchGroup{c: c}
			groups[c] = g
			order = append(order, g)
		}
		g.idxs = append(g.idxs, i)
		g.rests = append(g.rests, rest)
	}
	return order, nil
}

// followCPE resumes one item's federation walk from the continuation its
// batched call returned, using op to run the terminal operation.
func (ic *InitialContext) followCPE(ctx context.Context, cpe *CannotProceedError, op func(Context, Name) error) error {
	next, err := ic.continueCtx(ctx, cpe)
	if err != nil {
		return err
	}
	return ic.withContinuations(ctx, next, cpe.RemainingName, op)
}

// LookupMany resolves every name across the federated name space with one
// batched call per target naming system. Results come back in input
// order; items fail independently, and any item whose answer is a
// federation continuation finishes its walk with unary hops (boundary
// crossings are per item by nature — only the common trunk batches).
func (ic *InitialContext) LookupMany(ctx context.Context, names []string) (_ []BatchResult, rerr error) {
	ctx, finish := ic.begin(ctx, "lookupMany", fmt.Sprintf("[%d names]", len(names)))
	defer func() { finish(rerr) }()
	out := make([]BatchResult, len(names))
	order, err := ic.groupByTarget(ctx, "lookup", names, out)
	if err != nil {
		return nil, err
	}
	for _, g := range order {
		sub := make([]string, len(g.rests))
		for k, r := range g.rests {
			sub[k] = r.String()
		}
		res, err := LookupMany(ctx, g.c, sub)
		if err != nil {
			return nil, err
		}
		for k, i := range g.idxs {
			out[i] = res[k]
			var cpe *CannotProceedError
			if out[i].Err != nil && errors.As(out[i].Err, &cpe) {
				var v any
				ferr := ic.followCPE(ctx, cpe, func(c Context, n Name) error {
					var e error
					v, e = c.Lookup(ctx, n.String())
					return e
				})
				out[i] = BatchResult{Value: v, Err: ferr}
			}
			if out[i].Err == nil {
				out[i].Value, out[i].Err = ic.postProcess(ctx, out[i].Value, names[i], 0)
			}
		}
	}
	return out, nil
}

// BindMany binds every request with one batched call per target naming
// system. State factories run per item exactly as unary Bind runs them;
// per-item failures (already bound, invalid name) land in that item's
// result, and continuations finish with unary hops.
func (ic *InitialContext) BindMany(ctx context.Context, reqs []BindRequest) (_ []BatchResult, rerr error) {
	ctx, finish := ic.begin(ctx, "bindMany", fmt.Sprintf("[%d names]", len(reqs)))
	defer func() { finish(rerr) }()
	out := make([]BatchResult, len(reqs))
	names := make([]string, len(reqs))
	for i, r := range reqs {
		names[i] = r.Name
	}
	order, err := ic.groupByTarget(ctx, "bind", names, out)
	if err != nil {
		return nil, err
	}
	for _, g := range order {
		sub := make([]BindRequest, len(g.idxs))
		skip := make([]bool, len(g.idxs))
		for k, i := range g.idxs {
			r := reqs[i]
			state, extraAttrs, serr := GetStateToBind(r.Obj, g.rests[k], ic.env)
			if serr != nil {
				out[i].Err = Errf("bind", r.Name, serr)
				skip[k] = true
				continue
			}
			attrs := r.Attrs
			if extraAttrs != nil {
				merged := attrs.Clone()
				for _, a := range extraAttrs.All() {
					merged.Put(a.ID, a.Values...)
				}
				attrs = merged
			}
			sub[k] = BindRequest{Name: g.rests[k].String(), Obj: state, Attrs: attrs}
		}
		// Compact out the items whose state factory already failed.
		live := make([]BindRequest, 0, len(sub))
		liveIdx := make([]int, 0, len(sub))
		for k := range sub {
			if !skip[k] {
				live = append(live, sub[k])
				liveIdx = append(liveIdx, k)
			}
		}
		if len(live) == 0 {
			continue
		}
		res, err := BindMany(ctx, g.c, live)
		if err != nil {
			return nil, err
		}
		for m, k := range liveIdx {
			i := g.idxs[k]
			out[i] = res[m]
			var cpe *CannotProceedError
			if out[i].Err != nil && errors.As(out[i].Err, &cpe) {
				req := live[m]
				out[i] = BatchResult{Err: ic.followCPE(ctx, cpe, func(c Context, n Name) error {
					if req.Attrs != nil {
						dc, ok := c.(DirContext)
						if !ok {
							return Errf("bind", reqs[i].Name, ErrNotSupported)
						}
						return dc.BindAttrs(ctx, n.String(), req.Obj, req.Attrs)
					}
					return c.Bind(ctx, n.String(), req.Obj)
				})}
			}
		}
	}
	return out, nil
}

// GetAttributesMany reads attributes for every name with one batched call
// per target naming system; continuations finish with unary hops.
func (ic *InitialContext) GetAttributesMany(ctx context.Context, names []string, attrIDs ...string) (_ []BatchResult, rerr error) {
	ctx, finish := ic.begin(ctx, "getAttributesMany", fmt.Sprintf("[%d names]", len(names)))
	defer func() { finish(rerr) }()
	out := make([]BatchResult, len(names))
	order, err := ic.groupByTarget(ctx, "getAttributes", names, out)
	if err != nil {
		return nil, err
	}
	for _, g := range order {
		sub := make([]string, len(g.rests))
		for k, r := range g.rests {
			sub[k] = r.String()
		}
		res, err := GetAttributesMany(ctx, g.c, sub, attrIDs...)
		if err != nil {
			return nil, err
		}
		for k, i := range g.idxs {
			out[i] = res[k]
			var cpe *CannotProceedError
			if out[i].Err != nil && errors.As(out[i].Err, &cpe) {
				var v *Attributes
				ferr := ic.followCPE(ctx, cpe, func(c Context, n Name) error {
					dc, ok := c.(DirContext)
					if !ok {
						return Errf("getAttributes", names[i], ErrNotSupported)
					}
					var e error
					v, e = dc.GetAttributes(ctx, n.String(), attrIDs...)
					return e
				})
				out[i] = BatchResult{Value: v, Err: ferr}
				if ferr != nil {
					out[i].Value = nil
				}
			}
		}
	}
	return out, nil
}
