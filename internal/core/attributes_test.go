package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"gondi/internal/filter"
)

func TestAttributesBasic(t *testing.T) {
	a := NewAttributes("cn", "alice", "objectClass", "person")
	if a.Size() != 2 {
		t.Fatalf("Size = %d", a.Size())
	}
	if got := a.GetFirst("CN"); got != "alice" {
		t.Errorf("GetFirst(CN) = %q", got)
	}
	a.Add("objectClass", "top")
	attr, ok := a.Get("objectclass")
	if !ok || !reflect.DeepEqual(attr.Values, []string{"person", "top"}) {
		t.Errorf("Get = %+v, %v", attr, ok)
	}
	// Duplicate adds are ignored.
	a.Add("objectClass", "TOP")
	attr, _ = a.Get("objectClass")
	if len(attr.Values) != 2 {
		t.Errorf("dup add changed values: %v", attr.Values)
	}
	a.Put("cn", "bob")
	if got := a.GetFirst("cn"); got != "bob" {
		t.Errorf("after Put, GetFirst = %q", got)
	}
	if !a.Remove("cn") || a.Remove("cn") {
		t.Error("Remove semantics wrong")
	}
}

func TestAttributesRemoveValues(t *testing.T) {
	a := NewAttributes()
	a.Add("x", "1", "2", "3")
	a.RemoveValues("x", "2")
	attr, _ := a.Get("x")
	if !reflect.DeepEqual(attr.Values, []string{"1", "3"}) {
		t.Errorf("values = %v", attr.Values)
	}
	a.RemoveValues("x", "1", "3")
	if _, ok := a.Get("x"); ok {
		t.Error("attribute should disappear when last value removed")
	}
	// Removing from a missing attribute is a no-op.
	a.RemoveValues("missing", "v")
}

func TestAttributesSelectClone(t *testing.T) {
	a := NewAttributes("a", "1", "b", "2", "c", "3")
	s := a.Select("a", "C")
	if s.Size() != 2 || s.GetFirst("c") != "3" {
		t.Errorf("Select = %v", s)
	}
	cl := a.Clone()
	cl.Put("a", "changed")
	if a.GetFirst("a") != "1" {
		t.Error("Clone not deep")
	}
	var nilAttrs *Attributes
	if nilAttrs.Clone().Size() != 0 || nilAttrs.Size() != 0 {
		t.Error("nil Attributes should behave as empty")
	}
}

func TestAttributesApply(t *testing.T) {
	a := NewAttributes("cn", "alice", "dept", "eng")
	mods := []AttributeMod{
		{Op: ModAdd, Attr: Attribute{ID: "mail", Values: []string{"a@x"}}},
		{Op: ModReplace, Attr: Attribute{ID: "dept", Values: []string{"hr"}}},
		{Op: ModRemove, Attr: Attribute{ID: "cn"}},
	}
	if err := a.Apply(mods); err != nil {
		t.Fatal(err)
	}
	if a.GetFirst("mail") != "a@x" || a.GetFirst("dept") != "hr" {
		t.Errorf("after apply: %v", a)
	}
	if _, ok := a.Get("cn"); ok {
		t.Error("cn should be removed")
	}
	// Replace with no values removes.
	if err := a.Apply([]AttributeMod{{Op: ModReplace, Attr: Attribute{ID: "dept"}}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Get("dept"); ok {
		t.Error("replace-with-empty should remove")
	}
	// Invalid mods.
	if err := a.Apply([]AttributeMod{{Op: ModAdd, Attr: Attribute{}}}); err == nil {
		t.Error("empty ID should fail")
	}
	if err := a.Apply([]AttributeMod{{Op: ModOp(99), Attr: Attribute{ID: "x"}}}); err == nil {
		t.Error("unknown op should fail")
	}
}

func TestAttributesEqual(t *testing.T) {
	a := NewAttributes("x", "1", "y", "2")
	b := NewAttributes("Y", "2", "X", "1")
	if !a.Equal(b) {
		t.Error("case-insensitive IDs should compare equal")
	}
	b.Add("y", "3")
	if a.Equal(b) {
		t.Error("different values compare equal")
	}
}

func TestAttributesMapRoundTrip(t *testing.T) {
	f := func(m map[string][]string) bool {
		// Drop empty IDs and normalize duplicate values, which the
		// set semantics collapse.
		in := map[string][]string{}
		for k, vs := range m {
			if k == "" {
				continue
			}
			in[k] = vs
		}
		a := AttributesFromMap(in)
		back := AttributesFromMap(a.ToMap())
		return a.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAttributesMatchesFilter(t *testing.T) {
	a := NewAttributes("cn", "alice", "age", "34")
	n := filter.MustParse("(&(cn=ali*)(age>=30))")
	if !a.MatchesFilter(n) {
		t.Error("filter should match")
	}
	n2 := filter.MustParse("(cn=bob)")
	if a.MatchesFilter(n2) {
		t.Error("filter should not match")
	}
}
