package core

import (
	"fmt"
	"strings"
)

// RefAddr is one address of a Reference: a typed string datum, e.g.
// {Type: "URL", Content: "ldap://host:389/dc=emory"}.
type RefAddr struct {
	Type    string
	Content string
}

// Reference is a serializable pointer to an object that lives outside the
// naming system holding it — the mechanism by which one naming service is
// bound inside another to form a federation (§6). A Reference records the
// class of the referenced object, the object factory able to reconstruct
// it, and a list of addresses.
type Reference struct {
	// Class is the type name of the object the reference points to.
	Class string
	// Factory names the registered ObjectFactory that reconstructs the
	// object; empty means "try all registered factories".
	Factory string
	// Addrs are the reference addresses, in order.
	Addrs []RefAddr
}

// NewReference builds a reference with a single address.
func NewReference(class, factory, addrType, content string) *Reference {
	return &Reference{
		Class:   class,
		Factory: factory,
		Addrs:   []RefAddr{{Type: addrType, Content: content}},
	}
}

// Get returns the content of the first address of the given type, or
// ok=false.
func (r *Reference) Get(addrType string) (string, bool) {
	for _, a := range r.Addrs {
		if strings.EqualFold(a.Type, addrType) {
			return a.Content, true
		}
	}
	return "", false
}

// Add appends an address.
func (r *Reference) Add(addrType, content string) {
	r.Addrs = append(r.Addrs, RefAddr{Type: addrType, Content: content})
}

func (r *Reference) String() string {
	parts := make([]string, len(r.Addrs))
	for i, a := range r.Addrs {
		parts[i] = a.Type + "=" + a.Content
	}
	return fmt.Sprintf("Reference{%s; %s}", r.Class, strings.Join(parts, ", "))
}

// Referenceable is implemented by objects that can produce a Reference to
// themselves for binding into foreign naming systems. Provider contexts
// implement this so that `hdnsCtx.Bind("jiniCtx", jiniCtx)` — the paper's
// federation linking example — stores a reconstructible pointer.
type Referenceable interface {
	Reference() (*Reference, error)
}

// Address types with well-known meaning to the federation machinery.
const (
	// AddrURL holds a URL-form name identifying a foreign context root
	// (e.g. "jini://host1" or "hdns://host2/a/b").
	AddrURL = "URL"
	// AddrLink holds a composite name to be re-resolved from the initial
	// context (symbolic link).
	AddrLink = "LinkAddress"
)

// ContextReferenceClass is the Reference.Class used for references that
// point at naming contexts of another provider.
const ContextReferenceClass = "core.Context"

// NewContextReference builds the standard reference for federating a
// context reachable at the given URL into another naming system.
func NewContextReference(url string) *Reference {
	return NewReference(ContextReferenceClass, "", AddrURL, url)
}

// LinkRef is a symbolic link: a name (optionally a URL name) that is
// re-resolved relative to the initial context on Lookup. LookupLink
// retrieves the LinkRef itself.
type LinkRef struct {
	// Target is the link target name.
	Target string
}

func (l LinkRef) String() string { return "LinkRef{" + l.Target + "}" }

// Reference implements Referenceable for links.
func (l LinkRef) Reference() (*Reference, error) {
	return NewReference("core.LinkRef", "", AddrLink, l.Target), nil
}
