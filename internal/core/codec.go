package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// The codec provides the "any serializable object" minimum conformance
// level the JNDI specification recommends: any gob-encodable value whose
// concrete type has been registered can be bound into any provider and
// retrieved in its original form. Providers marshal values with Marshal
// before putting them on the wire or on disk.

func init() {
	// Types the library itself binds and retrieves.
	gob.Register(&Reference{})
	gob.Register(RefAddr{})
	gob.Register(LinkRef{})
	gob.Register(map[string]string{})
	gob.Register([]string{})
	gob.Register(map[string]any{})
	gob.Register([]any{})
}

// RegisterType registers a concrete type for transport through the codec,
// like gob.Register. Applications call this for their own bound types.
func RegisterType(v any) {
	gob.Register(v)
}

// envelope wraps an arbitrary value so gob records its concrete type.
type envelope struct {
	V any
}

// Marshal encodes any registered value to bytes.
func Marshal(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(envelope{V: v}); err != nil {
		return nil, fmt.Errorf("core: marshal %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes bytes produced by Marshal.
func Unmarshal(b []byte) (any, error) {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&env); err != nil {
		return nil, fmt.Errorf("core: unmarshal: %w", err)
	}
	return env.V, nil
}

// ClassOf returns the class string recorded in NameClassPair/Binding
// results for an object.
func ClassOf(obj any) string {
	if obj == nil {
		return "<nil>"
	}
	if _, ok := obj.(Context); ok {
		return ContextReferenceClass
	}
	return fmt.Sprintf("%T", obj)
}
