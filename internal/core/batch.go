package core

import "context"

// BatchResult is the outcome of one item in a batched operation. Batched
// operations are not all-or-nothing: every item gets its own result, in
// the order it was submitted, and an item's failure is reported here
// rather than failing the whole batch.
type BatchResult struct {
	// Value is the item's result (lookup object, *Attributes, ...); nil
	// for operations without a value and for failed items.
	Value any
	// Err is the item's typed failure, nil on success.
	Err error
}

// BindRequest describes one bind in a BindMany batch.
type BindRequest struct {
	Name string
	Obj  any
	// Attrs, when non-nil, binds with attributes (DirContext.BindAttrs).
	Attrs *Attributes
}

// BatchContext is the optional capability for contexts that can answer
// many operations in one round trip. Callers discover it by type
// assertion; the package-level LookupMany/BindMany/GetAttributesMany
// helpers do that and fall back to a per-item loop, so batching is always
// an optimization, never a semantic change.
//
// Contract: the result slice has exactly one entry per input, in input
// order; per-item failures are reported in BatchResult.Err with the same
// typed errors the unary operation would return. The batch-level error is
// reserved for failures that prevented the batch from running at all
// (context cancellation, connection loss).
type BatchContext interface {
	LookupMany(ctx context.Context, names []string) ([]BatchResult, error)
	BindMany(ctx context.Context, reqs []BindRequest) ([]BatchResult, error)
	GetAttributesMany(ctx context.Context, names []string, attrIDs ...string) ([]BatchResult, error)
}

// LookupMany looks up many names on c, natively batched when c implements
// BatchContext, per-item otherwise. Results are positional: out[i] is
// names[i]'s object or typed error.
func LookupMany(ctx context.Context, c Context, names []string) ([]BatchResult, error) {
	if bc, ok := c.(BatchContext); ok {
		return bc.LookupMany(ctx, names)
	}
	out := make([]BatchResult, len(names))
	for i, name := range names {
		if err := CtxErr(ctx); err != nil {
			return nil, err
		}
		out[i].Value, out[i].Err = c.Lookup(ctx, name)
	}
	return out, nil
}

// BindMany binds many name/object pairs on c, natively batched when c
// implements BatchContext. Each result's Err carries that item's typed
// failure; Value is always nil.
func BindMany(ctx context.Context, c Context, reqs []BindRequest) ([]BatchResult, error) {
	if bc, ok := c.(BatchContext); ok {
		return bc.BindMany(ctx, reqs)
	}
	out := make([]BatchResult, len(reqs))
	for i, r := range reqs {
		if err := CtxErr(ctx); err != nil {
			return nil, err
		}
		out[i].Err = bindOne(ctx, c, r)
	}
	return out, nil
}

// bindOne dispatches one BindRequest to Bind or BindAttrs.
func bindOne(ctx context.Context, c Context, r BindRequest) error {
	if r.Attrs != nil {
		dc, ok := c.(DirContext)
		if !ok {
			return Errf("bind", r.Name, ErrNotSupported)
		}
		return dc.BindAttrs(ctx, r.Name, r.Obj, r.Attrs)
	}
	return c.Bind(ctx, r.Name, r.Obj)
}

// GetAttributesMany fetches attributes for many names on c, natively
// batched when c implements BatchContext. Each success's Value is the
// item's *Attributes.
func GetAttributesMany(ctx context.Context, c Context, names []string, attrIDs ...string) ([]BatchResult, error) {
	if bc, ok := c.(BatchContext); ok {
		return bc.GetAttributesMany(ctx, names, attrIDs...)
	}
	dc, ok := c.(DirContext)
	if !ok {
		return nil, Errf("getAttributes", "", ErrNotSupported)
	}
	out := make([]BatchResult, len(names))
	for i, name := range names {
		if err := CtxErr(ctx); err != nil {
			return nil, err
		}
		attrs, err := dc.GetAttributes(ctx, name, attrIDs...)
		if err != nil {
			out[i].Err = err
			continue
		}
		out[i].Value = attrs
	}
	return out, nil
}
