package core

import (
	"context"
	"errors"
	"testing"
)

func TestReference(t *testing.T) {
	r := NewReference("my.Class", "myFactory", "URL", "jini://host1")
	r.Add("extra", "data")
	if got, ok := r.Get("url"); !ok || got != "jini://host1" {
		t.Errorf("Get(url) = %q, %v", got, ok)
	}
	if _, ok := r.Get("nope"); ok {
		t.Error("Get(nope) should miss")
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestLinkRefReference(t *testing.T) {
	l := LinkRef{Target: "mem://s/a/b"}
	ref, err := l.Reference()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := ref.Get(AddrLink); got != "mem://s/a/b" {
		t.Errorf("link addr = %q", got)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	cases := []any{
		"hello",
		42,
		3.14,
		true,
		[]string{"a", "b"},
		map[string]string{"k": "v"},
		&Reference{Class: "c", Addrs: []RefAddr{{Type: "URL", Content: "x://y"}}},
		LinkRef{Target: "a/b"},
	}
	for _, v := range cases {
		b, err := Marshal(v)
		if err != nil {
			t.Fatalf("Marshal(%v): %v", v, err)
		}
		back, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("Unmarshal(%v): %v", v, err)
		}
		switch want := v.(type) {
		case *Reference:
			got, ok := back.(*Reference)
			if !ok || got.Class != want.Class || len(got.Addrs) != 1 || got.Addrs[0] != want.Addrs[0] {
				t.Errorf("reference round trip: %v -> %v", want, back)
			}
		case []string:
			got, ok := back.([]string)
			if !ok || len(got) != len(want) {
				t.Errorf("slice round trip: %v -> %v", want, back)
			}
		case map[string]string:
			got, ok := back.(map[string]string)
			if !ok || got["k"] != "v" {
				t.Errorf("map round trip: %v -> %v", want, back)
			}
		default:
			if back != v {
				t.Errorf("round trip: %v -> %v", v, back)
			}
		}
	}
}

func TestCodecUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not gob")); err == nil {
		t.Error("expected error")
	}
}

type testRecord struct {
	Host string
	Port int
}

func TestCodecCustomType(t *testing.T) {
	RegisterType(testRecord{})
	b, err := Marshal(testRecord{Host: "h", Port: 8080})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := back.(testRecord); !ok || r.Host != "h" || r.Port != 8080 {
		t.Errorf("got %#v", back)
	}
}

func TestNamingError(t *testing.T) {
	err := Errf("lookup", "a/b", ErrNotFound)
	if !errors.Is(err, ErrNotFound) {
		t.Error("errors.Is failed")
	}
	var ne *NamingError
	if !errors.As(err, &ne) || ne.Op != "lookup" || ne.Name != "a/b" {
		t.Errorf("As failed: %v", err)
	}
	if Errf("x", "y", nil) != nil {
		t.Error("Errf(nil) != nil")
	}
	// CannotProceedError must pass through undecorated.
	cpe := &CannotProceedError{RemainingName: MustParseName("rest")}
	if got := Errf("lookup", "n", cpe); got != cpe {
		t.Errorf("CPE was wrapped: %v", got)
	}
}

type fakeObj struct{ tag string }

func TestObjectFactories(t *testing.T) {
	resetFactoriesForTest()
	defer resetFactoriesForTest()

	RegisterObjectFactory("tagger", func(_ context.Context, obj any, name Name, env map[string]any) (any, error) {
		if r, ok := obj.(*Reference); ok && r.Class == "fake" {
			content, _ := r.Get("tag")
			return fakeObj{tag: content}, nil
		}
		return nil, nil
	})

	// Named factory dispatch.
	ref := NewReference("fake", "tagger", "tag", "hello")
	out, err := GetObjectInstance(context.Background(), ref, Name{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := out.(fakeObj); !ok || f.tag != "hello" {
		t.Errorf("got %#v", out)
	}

	// Unnamed reference offered to all factories.
	ref2 := NewReference("fake", "", "tag", "anon")
	out, err = GetObjectInstance(context.Background(), ref2, Name{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := out.(fakeObj); !ok || f.tag != "anon" {
		t.Errorf("got %#v", out)
	}

	// Unknown named factory fails.
	ref3 := NewReference("fake", "missing", "tag", "x")
	if _, err := GetObjectInstance(context.Background(), ref3, Name{}, nil); err == nil {
		t.Error("expected missing-factory error")
	}

	// Non-reference passes through.
	out, err = GetObjectInstance(context.Background(), "plain", Name{}, nil)
	if err != nil || out != "plain" {
		t.Errorf("got %v, %v", out, err)
	}

	// Link reference resolves to a LinkRef.
	lref := NewReference("core.LinkRef", "", AddrLink, "target/name")
	out, err = GetObjectInstance(context.Background(), lref, Name{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l, ok := out.(LinkRef); !ok || l.Target != "target/name" {
		t.Errorf("got %#v", out)
	}
}

type refble struct{ url string }

func (r refble) Reference() (*Reference, error) {
	return NewContextReference(r.url), nil
}

func TestGetStateToBind(t *testing.T) {
	resetFactoriesForTest()
	defer resetFactoriesForTest()

	// Referenceable becomes its reference.
	st, attrs, err := GetStateToBind(refble{url: "mem://x"}, Name{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, ok := st.(*Reference)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if got, _ := ref.Get(AddrURL); got != "mem://x" {
		t.Errorf("url = %q", got)
	}
	if attrs != nil {
		t.Errorf("attrs = %v", attrs)
	}

	// State factory transformation.
	RegisterStateFactory(func(obj any, name Name, env map[string]any) (any, *Attributes, error) {
		if s, ok := obj.(fakeObj); ok {
			return "tagged:" + s.tag, NewAttributes("kind", "fake"), nil
		}
		return nil, nil, nil
	})
	st, attrs, err = GetStateToBind(fakeObj{tag: "t"}, Name{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st != "tagged:t" || attrs.GetFirst("kind") != "fake" {
		t.Errorf("got %v %v", st, attrs)
	}

	// Plain object passes through.
	st, _, err = GetStateToBind(99, Name{}, nil)
	if err != nil || st != 99 {
		t.Errorf("got %v %v", st, err)
	}
}

func TestProviderRegistry(t *testing.T) {
	resetSPIForTest()
	defer resetSPIForTest()

	called := false
	RegisterProvider("test", ProviderFunc(func(_ context.Context, rawURL string, env map[string]any) (Context, Name, error) {
		called = true
		u, err := ParseURLName(rawURL)
		if err != nil {
			return nil, Name{}, err
		}
		return nil, u.Path, nil
	}))
	if _, ok := LookupProvider("TEST"); !ok {
		t.Error("case-insensitive scheme lookup failed")
	}
	_, rest, err := OpenURL(context.Background(), "test://auth/a/b", nil)
	if err != nil || !called || rest.String() != "a/b" {
		t.Errorf("OpenURL: %v %v %v", rest, called, err)
	}
	if _, _, err := OpenURL(context.Background(), "zzz://x", nil); !errors.Is(err, ErrNoProvider) {
		t.Errorf("want ErrNoProvider, got %v", err)
	}
	if got := Schemes(); len(got) != 1 || got[0] != "test" {
		t.Errorf("Schemes = %v", got)
	}
}

func TestInitialContextNoFactory(t *testing.T) {
	resetSPIForTest()
	defer resetSPIForTest()
	ic := NewInitialContext(nil)
	if _, err := ic.Lookup(context.Background(), "plain/name"); !errors.Is(err, ErrNoInitialContext) {
		t.Errorf("want ErrNoInitialContext, got %v", err)
	}
	ic2 := NewInitialContext(map[string]any{EnvInitialFactory: "ghost"})
	if _, err := ic2.Lookup(context.Background(), "x"); err == nil {
		t.Error("unregistered initial factory should fail")
	}
}
