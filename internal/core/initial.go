package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// maxFederationHops bounds continuation chains to catch reference cycles.
const maxFederationHops = 16

// InitialContext is the client's entry point into the composite name space
// (the analog of javax.naming.InitialDirContext). URL-form names are
// dispatched to the provider registered for their scheme; plain names go to
// the default context configured via EnvInitialFactory. Resolution follows
// federation continuations across naming-system boundaries transparently,
// propagating the caller's context.Context across every hop so a single
// deadline bounds the whole chain.
type InitialContext struct {
	env map[string]any

	mu       sync.Mutex // guards the lazy default-context fields
	defCtx   Context    // lazily created
	defErr   error
	resolved bool

	// mws, when non-empty, intercept resolution (see Middleware), stored
	// outermost first: URL opens route through the composed openFn chain
	// and the default context is wrapped innermost-out. Installed by
	// Open(WithMiddleware(...), WithCache(...)); empty otherwise.
	mws    []Middleware
	openFn OpenURLFunc // composed chain, nil when mws is empty
}

// NewInitialContext creates an initial context with the given environment
// (may be nil). The default context, if configured, is created lazily on
// first use of a non-URL name.
func NewInitialContext(env map[string]any) *InitialContext {
	e := make(map[string]any, len(env))
	for k, v := range env {
		e[k] = v
	}
	return &InitialContext{env: e}
}

// Environment returns the environment map (shared, not a copy).
func (ic *InitialContext) Environment() map[string]any { return ic.env }

// installMiddleware appends a resolution middleware (outermost first) and
// recomposes the URL-open chain; call before first use.
func (ic *InitialContext) installMiddleware(mw Middleware) {
	ic.mws = append(ic.mws, mw)
	// Compose innermost-out: the base resolver is core.OpenURL; a chained
	// middleware decorates the layer below it, a plain middleware
	// terminates the chain with its own OpenURL.
	fn := OpenURLFunc(OpenURL)
	for i := len(ic.mws) - 1; i >= 0; i-- {
		mw := ic.mws[i]
		if cm, ok := mw.(ChainedMiddleware); ok {
			next := fn
			fn = func(ctx context.Context, rawURL string, env map[string]any) (Context, Name, error) {
				return cm.OpenURLNext(ctx, rawURL, env, next)
			}
		} else {
			fn = mw.OpenURL
		}
	}
	ic.openFn = fn
}

// openURL dispatches a URL-form name through the middleware chain, if
// installed, else through the provider registry directly.
func (ic *InitialContext) openURL(ctx context.Context, rawURL string) (Context, Name, error) {
	if ic.openFn != nil {
		return ic.openFn(ctx, rawURL, ic.env)
	}
	return OpenURL(ctx, rawURL, ic.env)
}

// begin runs every middleware's BeginOp hook (outermost first) and
// returns the derived context plus a finish that unwinds them innermost
// first. With no observers it returns ctx and a no-op.
func (ic *InitialContext) begin(ctx context.Context, op, name string) (context.Context, func(error)) {
	var finishes []func(error)
	for _, mw := range ic.mws {
		if o, ok := mw.(OpObserver); ok {
			var fin func(error)
			ctx, fin = o.BeginOp(ctx, op, name)
			if fin != nil {
				finishes = append(finishes, fin)
			}
		}
	}
	if len(finishes) == 0 {
		return ctx, func(error) {}
	}
	return ctx, func(err error) {
		for i := len(finishes) - 1; i >= 0; i-- {
			finishes[i](err)
		}
	}
}

func (ic *InitialContext) defaultContext(ctx context.Context) (Context, error) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if ic.resolved {
		return ic.defCtx, ic.defErr
	}
	ic.resolved = true
	name, _ := ic.env[EnvInitialFactory].(string)
	if name == "" {
		ic.defErr = ErrNoInitialContext
		return nil, ic.defErr
	}
	f, ok := initialFactory(name)
	if !ok {
		ic.defErr = fmt.Errorf("naming: initial context factory %q not registered", name)
		return nil, ic.defErr
	}
	ic.defCtx, ic.defErr = f(ctx, ic.env)
	if ic.defErr == nil {
		// Wrap innermost-out so the outermost middleware observes the
		// whole stack below it (obs outside cache).
		for i := len(ic.mws) - 1; i >= 0; i-- {
			ic.defCtx = ic.mws[i].WrapContext(ic.defCtx)
		}
	}
	return ic.defCtx, ic.defErr
}

// resolve maps a caller name to (context, name-within-context).
func (ic *InitialContext) resolve(ctx context.Context, name string) (Context, Name, error) {
	if err := CtxErr(ctx); err != nil {
		return nil, Name{}, err
	}
	if IsURLName(name) {
		return ic.openURL(ctx, name)
	}
	c, err := ic.defaultContext(ctx)
	if err != nil {
		return nil, Name{}, err
	}
	n, err := ParseName(name)
	if err != nil {
		return nil, Name{}, err
	}
	return c, n, nil
}

// objectFromReference turns a stored Reference into an application object,
// routing plain context references (URL address, no named factory) through
// the resolution middleware so federation hops share cached wire clients.
// wantCtx is set when the caller knows the reference marks a naming-system
// boundary (so the target must be a context): the middleware may then
// return a rebased view instead of a remote lookup.
func (ic *InitialContext) objectFromReference(ctx context.Context, ref *Reference, wantCtx bool) (any, error) {
	if url, ok := ref.Get(AddrURL); ok && ref.Factory == "" && len(ic.mws) > 0 {
		c, rest, err := ic.openURL(ctx, url)
		if err != nil {
			return nil, err
		}
		if rest.IsEmpty() {
			return c, nil
		}
		if v, ok := c.(ContextViewer); ok && wantCtx {
			return v.View(rest), nil
		}
		return c.Lookup(ctx, rest.String())
	}
	return GetObjectInstance(ctx, ref, Name{}, ic.env)
}

// continueCtx turns a CannotProceedError's resolved object into the next
// context to dispatch to.
func (ic *InitialContext) continueCtx(ctx context.Context, cpe *CannotProceedError) (Context, error) {
	switch r := cpe.Resolved.(type) {
	case Context:
		return r, nil
	case *Reference:
		obj, err := ic.objectFromReference(ctx, r, true)
		if err != nil {
			return nil, err
		}
		if c, ok := obj.(Context); ok {
			return c, nil
		}
		if link, ok := obj.(LinkRef); ok {
			target, err := ic.Lookup(ctx, link.Target)
			if err != nil {
				return nil, err
			}
			if c, ok := target.(Context); ok {
				return c, nil
			}
		}
		return nil, fmt.Errorf("naming: federation boundary at %q did not resolve to a context (%T)", cpe.AltName, obj)
	case string:
		c, rest, err := ic.openURL(ctx, r)
		if err != nil {
			return nil, err
		}
		if !rest.IsEmpty() {
			if v, ok := c.(ContextViewer); ok {
				return v.View(rest), nil
			}
			obj, err := c.Lookup(ctx, rest.String())
			if err != nil {
				return nil, err
			}
			if cc, ok := obj.(Context); ok {
				return cc, nil
			}
			return nil, fmt.Errorf("naming: URL %q did not resolve to a context", r)
		}
		return c, nil
	default:
		return nil, fmt.Errorf("naming: cannot continue past %q: unsupported boundary object %T", cpe.AltName, cpe.Resolved)
	}
}

// withContinuations runs op against (c, rest), following federation
// continuations until op succeeds or fails with a non-continuation error.
// The caller's ctx is checked before every hop, so a deadline or cancel
// fires between hops even when each individual hop is fast.
func (ic *InitialContext) withContinuations(ctx context.Context, c Context, rest Name, op func(Context, Name) error) error {
	for hop := 0; ; hop++ {
		if hop > maxFederationHops {
			return fmt.Errorf("naming: too many federation hops (cycle?)")
		}
		if err := CtxErr(ctx); err != nil {
			return err
		}
		err := op(c, rest)
		var cpe *CannotProceedError
		if !errors.As(err, &cpe) {
			return err
		}
		next, cerr := ic.continueCtx(ctx, cpe)
		if cerr != nil {
			return cerr
		}
		c, rest = next, cpe.RemainingName
	}
}

// postProcess converts raw provider results (references, links) into
// application objects. depth counts link-follow steps across nested
// lookups to terminate link cycles.
func (ic *InitialContext) postProcess(ctx context.Context, obj any, name string, depth int) (any, error) {
	if depth > maxFederationHops {
		return nil, fmt.Errorf("naming: reference/link chain too deep (cycle?) at %q after %d hops", name, depth)
	}
	if ref, ok := obj.(*Reference); ok {
		out, err := ic.objectFromReference(ctx, ref, false)
		if err != nil {
			return nil, err
		}
		obj = out
	}
	if link, ok := obj.(LinkRef); ok {
		return ic.lookupDepth(ctx, link.Target, depth+1)
	}
	return obj, nil
}

// Lookup resolves name across the federated name space and returns the
// bound object, running object factories and following links.
func (ic *InitialContext) Lookup(ctx context.Context, name string) (out any, err error) {
	ctx, finish := ic.begin(ctx, "lookup", name)
	defer func() { finish(err) }()
	return ic.lookupDepth(ctx, name, 0)
}

func (ic *InitialContext) lookupDepth(ctx context.Context, name string, depth int) (any, error) {
	if depth > maxFederationHops {
		return nil, fmt.Errorf("naming: reference/link chain too deep (cycle?) at %q after %d hops", name, depth)
	}
	c, rest, err := ic.resolve(ctx, name)
	if err != nil {
		return nil, Errf("lookup", name, err)
	}
	var out any
	err = ic.withContinuations(ctx, c, rest, func(c Context, n Name) error {
		var e error
		out, e = c.Lookup(ctx, n.String())
		return e
	})
	if err != nil {
		return nil, err
	}
	return ic.postProcess(ctx, out, name, depth)
}

// LookupLink is Lookup without following a terminal link.
func (ic *InitialContext) LookupLink(ctx context.Context, name string) (_ any, rerr error) {
	ctx, finish := ic.begin(ctx, "lookupLink", name)
	defer func() { finish(rerr) }()
	c, rest, err := ic.resolve(ctx, name)
	if err != nil {
		return nil, Errf("lookupLink", name, err)
	}
	var out any
	err = ic.withContinuations(ctx, c, rest, func(c Context, n Name) error {
		var e error
		out, e = c.LookupLink(ctx, n.String())
		return e
	})
	if err != nil {
		return nil, err
	}
	// Run object factories (a stored link Reference becomes a LinkRef)
	// but do not follow the link itself.
	if ref, ok := out.(*Reference); ok {
		return GetObjectInstance(ctx, ref, Name{}, ic.env)
	}
	return out, nil
}

// Bind binds name to obj (atomic: fails if bound), applying state
// factories first.
func (ic *InitialContext) Bind(ctx context.Context, name string, obj any) error {
	return ic.bindOp(ctx, "bind", name, obj, nil, false)
}

// Rebind binds name to obj, replacing any existing binding.
func (ic *InitialContext) Rebind(ctx context.Context, name string, obj any) error {
	return ic.bindOp(ctx, "rebind", name, obj, nil, true)
}

// BindAttrs binds with initial attributes (directory providers only).
func (ic *InitialContext) BindAttrs(ctx context.Context, name string, obj any, attrs *Attributes) error {
	return ic.bindOp(ctx, "bind", name, obj, attrs, false)
}

// RebindAttrs rebinds with attributes.
func (ic *InitialContext) RebindAttrs(ctx context.Context, name string, obj any, attrs *Attributes) error {
	return ic.bindOp(ctx, "rebind", name, obj, attrs, true)
}

func (ic *InitialContext) bindOp(ctx context.Context, op, name string, obj any, attrs *Attributes, overwrite bool) (rerr error) {
	ctx, finish := ic.begin(ctx, op, name)
	defer func() { finish(rerr) }()
	c, rest, err := ic.resolve(ctx, name)
	if err != nil {
		return Errf(op, name, err)
	}
	state, extraAttrs, err := GetStateToBind(obj, rest, ic.env)
	if err != nil {
		return Errf(op, name, err)
	}
	if extraAttrs != nil {
		// State-factory attributes merge over the caller's (GetStateToBind
		// contract); Clone is nil-safe, so attrs == nil works too.
		merged := attrs.Clone()
		for _, a := range extraAttrs.All() {
			merged.Put(a.ID, a.Values...)
		}
		attrs = merged
	}
	return ic.withContinuations(ctx, c, rest, func(c Context, n Name) error {
		if attrs != nil {
			dc, ok := c.(DirContext)
			if !ok {
				return Errf(op, name, ErrNotSupported)
			}
			if overwrite {
				return dc.RebindAttrs(ctx, n.String(), state, attrs)
			}
			return dc.BindAttrs(ctx, n.String(), state, attrs)
		}
		if overwrite {
			return c.Rebind(ctx, n.String(), state)
		}
		return c.Bind(ctx, n.String(), state)
	})
}

// Unbind removes a binding.
func (ic *InitialContext) Unbind(ctx context.Context, name string) (rerr error) {
	ctx, finish := ic.begin(ctx, "unbind", name)
	defer func() { finish(rerr) }()
	c, rest, err := ic.resolve(ctx, name)
	if err != nil {
		return Errf("unbind", name, err)
	}
	return ic.withContinuations(ctx, c, rest, func(c Context, n Name) error {
		return c.Unbind(ctx, n.String())
	})
}

// Rename moves a binding; both names must resolve within one naming system.
func (ic *InitialContext) Rename(ctx context.Context, oldName, newName string) (rerr error) {
	ctx, finish := ic.begin(ctx, "rename", oldName)
	defer func() { finish(rerr) }()
	c, rest, err := ic.resolve(ctx, oldName)
	if err != nil {
		return Errf("rename", oldName, err)
	}
	// The new name must live in the same system; for URL names, require
	// the same scheme+authority and use the path part.
	var newRest Name
	if IsURLName(oldName) != IsURLName(newName) {
		return Errf("rename", newName, fmt.Errorf("old and new names in different naming systems"))
	}
	if IsURLName(newName) {
		ou, _ := ParseURLName(oldName)
		nu, err := ParseURLName(newName)
		if err != nil {
			return Errf("rename", newName, err)
		}
		if ou.Scheme != nu.Scheme || ou.Authority != nu.Authority {
			return Errf("rename", newName, fmt.Errorf("cannot rename across naming systems"))
		}
		newRest = nu.Path
	} else {
		newRest, err = ParseName(newName)
		if err != nil {
			return Errf("rename", newName, err)
		}
	}
	return ic.withContinuations(ctx, c, rest, func(c Context, n Name) error {
		return c.Rename(ctx, n.String(), newRest.String())
	})
}

// List enumerates names and classes in the named context.
func (ic *InitialContext) List(ctx context.Context, name string) (_ []NameClassPair, rerr error) {
	ctx, finish := ic.begin(ctx, "list", name)
	defer func() { finish(rerr) }()
	c, rest, err := ic.resolve(ctx, name)
	if err != nil {
		return nil, Errf("list", name, err)
	}
	var out []NameClassPair
	err = ic.withContinuations(ctx, c, rest, func(c Context, n Name) error {
		var e error
		out, e = c.List(ctx, n.String())
		return e
	})
	return out, err
}

// ListBindings enumerates names, classes and objects.
func (ic *InitialContext) ListBindings(ctx context.Context, name string) (_ []Binding, rerr error) {
	ctx, finish := ic.begin(ctx, "listBindings", name)
	defer func() { finish(rerr) }()
	c, rest, err := ic.resolve(ctx, name)
	if err != nil {
		return nil, Errf("listBindings", name, err)
	}
	var out []Binding
	err = ic.withContinuations(ctx, c, rest, func(c Context, n Name) error {
		var e error
		out, e = c.ListBindings(ctx, n.String())
		return e
	})
	return out, err
}

// CreateSubcontext creates a subcontext.
func (ic *InitialContext) CreateSubcontext(ctx context.Context, name string) (_ Context, rerr error) {
	ctx, finish := ic.begin(ctx, "createSubcontext", name)
	defer func() { finish(rerr) }()
	c, rest, err := ic.resolve(ctx, name)
	if err != nil {
		return nil, Errf("createSubcontext", name, err)
	}
	var out Context
	err = ic.withContinuations(ctx, c, rest, func(c Context, n Name) error {
		var e error
		out, e = c.CreateSubcontext(ctx, n.String())
		return e
	})
	return out, err
}

// DestroySubcontext removes an empty subcontext.
func (ic *InitialContext) DestroySubcontext(ctx context.Context, name string) (rerr error) {
	ctx, finish := ic.begin(ctx, "destroySubcontext", name)
	defer func() { finish(rerr) }()
	c, rest, err := ic.resolve(ctx, name)
	if err != nil {
		return Errf("destroySubcontext", name, err)
	}
	return ic.withContinuations(ctx, c, rest, func(c Context, n Name) error {
		return c.DestroySubcontext(ctx, n.String())
	})
}

// GetAttributes returns a name's attributes (directory providers only).
func (ic *InitialContext) GetAttributes(ctx context.Context, name string, attrIDs ...string) (_ *Attributes, rerr error) {
	ctx, finish := ic.begin(ctx, "getAttributes", name)
	defer func() { finish(rerr) }()
	c, rest, err := ic.resolve(ctx, name)
	if err != nil {
		return nil, Errf("getAttributes", name, err)
	}
	var out *Attributes
	err = ic.withContinuations(ctx, c, rest, func(c Context, n Name) error {
		dc, ok := c.(DirContext)
		if !ok {
			return Errf("getAttributes", name, ErrNotSupported)
		}
		var e error
		out, e = dc.GetAttributes(ctx, n.String(), attrIDs...)
		return e
	})
	return out, err
}

// ModifyAttributes applies attribute modifications.
func (ic *InitialContext) ModifyAttributes(ctx context.Context, name string, mods []AttributeMod) (rerr error) {
	ctx, finish := ic.begin(ctx, "modifyAttributes", name)
	defer func() { finish(rerr) }()
	c, rest, err := ic.resolve(ctx, name)
	if err != nil {
		return Errf("modifyAttributes", name, err)
	}
	return ic.withContinuations(ctx, c, rest, func(c Context, n Name) error {
		dc, ok := c.(DirContext)
		if !ok {
			return Errf("modifyAttributes", name, ErrNotSupported)
		}
		return dc.ModifyAttributes(ctx, n.String(), mods)
	})
}

// Search runs a filter search under the named context.
func (ic *InitialContext) Search(ctx context.Context, name, filterStr string, controls *SearchControls) (_ []SearchResult, rerr error) {
	ctx, finish := ic.begin(ctx, "search", name)
	defer func() { finish(rerr) }()
	c, rest, err := ic.resolve(ctx, name)
	if err != nil {
		return nil, Errf("search", name, err)
	}
	var out []SearchResult
	err = ic.withContinuations(ctx, c, rest, func(c Context, n Name) error {
		dc, ok := c.(DirContext)
		if !ok {
			return Errf("search", name, ErrNotSupported)
		}
		var e error
		out, e = dc.Search(ctx, n.String(), filterStr, controls)
		return e
	})
	return out, err
}

// Watch registers a listener on a watchable provider.
func (ic *InitialContext) Watch(ctx context.Context, name string, scope SearchScope, l Listener) (cancel func(), err error) {
	ctx, finish := ic.begin(ctx, "watch", name)
	defer func() { finish(err) }()
	c, rest, err := ic.resolve(ctx, name)
	if err != nil {
		return nil, Errf("watch", name, err)
	}
	err = ic.withContinuations(ctx, c, rest, func(c Context, n Name) error {
		ec, ok := c.(EventContext)
		if !ok {
			return Errf("watch", name, ErrNotSupported)
		}
		var e error
		cancel, e = ec.Watch(ctx, n.String(), scope, l)
		return e
	})
	return cancel, err
}

// Close closes the default context, if one was created, and shuts down any
// installed resolution middleware (cached connections, watches).
func (ic *InitialContext) Close() error {
	ic.mu.Lock()
	defCtx := ic.defCtx
	ic.mu.Unlock()
	var err error
	if defCtx != nil {
		err = defCtx.Close()
	}
	for _, mw := range ic.mws {
		if merr := mw.Close(); err == nil {
			err = merr
		}
	}
	return err
}
