package core

import (
	"errors"
	"fmt"
)

// maxFederationHops bounds continuation chains to catch reference cycles.
const maxFederationHops = 16

// InitialContext is the client's entry point into the composite name space
// (the analog of javax.naming.InitialDirContext). URL-form names are
// dispatched to the provider registered for their scheme; plain names go to
// the default context configured via EnvInitialFactory. Resolution follows
// federation continuations across naming-system boundaries transparently.
type InitialContext struct {
	env      map[string]any
	defCtx   Context // lazily created
	defErr   error
	resolved bool
}

// NewInitialContext creates an initial context with the given environment
// (may be nil). The default context, if configured, is created lazily on
// first use of a non-URL name.
func NewInitialContext(env map[string]any) *InitialContext {
	e := make(map[string]any, len(env))
	for k, v := range env {
		e[k] = v
	}
	return &InitialContext{env: e}
}

// Environment returns the environment map (shared, not a copy).
func (ic *InitialContext) Environment() map[string]any { return ic.env }

func (ic *InitialContext) defaultContext() (Context, error) {
	if ic.resolved {
		return ic.defCtx, ic.defErr
	}
	ic.resolved = true
	name, _ := ic.env[EnvInitialFactory].(string)
	if name == "" {
		ic.defErr = ErrNoInitialContext
		return nil, ic.defErr
	}
	f, ok := initialFactory(name)
	if !ok {
		ic.defErr = fmt.Errorf("naming: initial context factory %q not registered", name)
		return nil, ic.defErr
	}
	ic.defCtx, ic.defErr = f(ic.env)
	return ic.defCtx, ic.defErr
}

// resolve maps a caller name to (context, name-within-context).
func (ic *InitialContext) resolve(name string) (Context, Name, error) {
	if IsURLName(name) {
		return OpenURL(name, ic.env)
	}
	ctx, err := ic.defaultContext()
	if err != nil {
		return nil, Name{}, err
	}
	n, err := ParseName(name)
	if err != nil {
		return nil, Name{}, err
	}
	return ctx, n, nil
}

// continueCtx turns a CannotProceedError's resolved object into the next
// context to dispatch to.
func (ic *InitialContext) continueCtx(cpe *CannotProceedError) (Context, error) {
	switch r := cpe.Resolved.(type) {
	case Context:
		return r, nil
	case *Reference:
		obj, err := GetObjectInstance(r, Name{}, ic.env)
		if err != nil {
			return nil, err
		}
		if ctx, ok := obj.(Context); ok {
			return ctx, nil
		}
		if link, ok := obj.(LinkRef); ok {
			target, err := ic.Lookup(link.Target)
			if err != nil {
				return nil, err
			}
			if ctx, ok := target.(Context); ok {
				return ctx, nil
			}
		}
		return nil, fmt.Errorf("naming: federation boundary at %q did not resolve to a context (%T)", cpe.AltName, obj)
	case string:
		ctx, rest, err := OpenURL(r, ic.env)
		if err != nil {
			return nil, err
		}
		if !rest.IsEmpty() {
			obj, err := ctx.Lookup(rest.String())
			if err != nil {
				return nil, err
			}
			if c, ok := obj.(Context); ok {
				return c, nil
			}
			return nil, fmt.Errorf("naming: URL %q did not resolve to a context", r)
		}
		return ctx, nil
	default:
		return nil, fmt.Errorf("naming: cannot continue past %q: unsupported boundary object %T", cpe.AltName, cpe.Resolved)
	}
}

// withContinuations runs op against (ctx, rest), following federation
// continuations until op succeeds or fails with a non-continuation error.
func (ic *InitialContext) withContinuations(ctx Context, rest Name, op func(Context, Name) error) error {
	for hop := 0; ; hop++ {
		if hop > maxFederationHops {
			return fmt.Errorf("naming: too many federation hops (cycle?)")
		}
		err := op(ctx, rest)
		var cpe *CannotProceedError
		if !errors.As(err, &cpe) {
			return err
		}
		next, cerr := ic.continueCtx(cpe)
		if cerr != nil {
			return cerr
		}
		ctx, rest = next, cpe.RemainingName
	}
}

// postProcess converts raw provider results (references, links) into
// application objects. depth counts link-follow steps across nested
// lookups to terminate link cycles.
func (ic *InitialContext) postProcess(obj any, name string, depth int) (any, error) {
	if depth > maxFederationHops {
		return nil, fmt.Errorf("naming: reference/link chain too deep (cycle?) at %q after %d hops", name, depth)
	}
	if ref, ok := obj.(*Reference); ok {
		out, err := GetObjectInstance(ref, Name{}, ic.env)
		if err != nil {
			return nil, err
		}
		obj = out
	}
	if link, ok := obj.(LinkRef); ok {
		return ic.lookupDepth(link.Target, depth+1)
	}
	return obj, nil
}

// Lookup resolves name across the federated name space and returns the
// bound object, running object factories and following links.
func (ic *InitialContext) Lookup(name string) (any, error) {
	return ic.lookupDepth(name, 0)
}

func (ic *InitialContext) lookupDepth(name string, depth int) (any, error) {
	if depth > maxFederationHops {
		return nil, fmt.Errorf("naming: reference/link chain too deep (cycle?) at %q after %d hops", name, depth)
	}
	ctx, rest, err := ic.resolve(name)
	if err != nil {
		return nil, Errf("lookup", name, err)
	}
	var out any
	err = ic.withContinuations(ctx, rest, func(c Context, n Name) error {
		var e error
		out, e = c.Lookup(n.String())
		return e
	})
	if err != nil {
		return nil, err
	}
	return ic.postProcess(out, name, depth)
}

// LookupLink is Lookup without following a terminal link.
func (ic *InitialContext) LookupLink(name string) (any, error) {
	ctx, rest, err := ic.resolve(name)
	if err != nil {
		return nil, Errf("lookupLink", name, err)
	}
	var out any
	err = ic.withContinuations(ctx, rest, func(c Context, n Name) error {
		var e error
		out, e = c.LookupLink(n.String())
		return e
	})
	if err != nil {
		return nil, err
	}
	// Run object factories (a stored link Reference becomes a LinkRef)
	// but do not follow the link itself.
	if ref, ok := out.(*Reference); ok {
		return GetObjectInstance(ref, Name{}, ic.env)
	}
	return out, nil
}

// Bind binds name to obj (atomic: fails if bound), applying state
// factories first.
func (ic *InitialContext) Bind(name string, obj any) error {
	return ic.bindOp("bind", name, obj, nil, false)
}

// Rebind binds name to obj, replacing any existing binding.
func (ic *InitialContext) Rebind(name string, obj any) error {
	return ic.bindOp("rebind", name, obj, nil, true)
}

// BindAttrs binds with initial attributes (directory providers only).
func (ic *InitialContext) BindAttrs(name string, obj any, attrs *Attributes) error {
	return ic.bindOp("bind", name, obj, attrs, false)
}

// RebindAttrs rebinds with attributes.
func (ic *InitialContext) RebindAttrs(name string, obj any, attrs *Attributes) error {
	return ic.bindOp("rebind", name, obj, attrs, true)
}

func (ic *InitialContext) bindOp(op, name string, obj any, attrs *Attributes, overwrite bool) error {
	ctx, rest, err := ic.resolve(name)
	if err != nil {
		return Errf(op, name, err)
	}
	state, extraAttrs, err := GetStateToBind(obj, rest, ic.env)
	if err != nil {
		return Errf(op, name, err)
	}
	if extraAttrs != nil {
		merged := extraAttrs.Clone()
		for _, a := range attrs.All() {
			merged.Put(a.ID, a.Values...)
		}
		attrs = merged
	}
	return ic.withContinuations(ctx, rest, func(c Context, n Name) error {
		if attrs != nil {
			dc, ok := c.(DirContext)
			if !ok {
				return Errf(op, name, ErrNotSupported)
			}
			if overwrite {
				return dc.RebindAttrs(n.String(), state, attrs)
			}
			return dc.BindAttrs(n.String(), state, attrs)
		}
		if overwrite {
			return c.Rebind(n.String(), state)
		}
		return c.Bind(n.String(), state)
	})
}

// Unbind removes a binding.
func (ic *InitialContext) Unbind(name string) error {
	ctx, rest, err := ic.resolve(name)
	if err != nil {
		return Errf("unbind", name, err)
	}
	return ic.withContinuations(ctx, rest, func(c Context, n Name) error {
		return c.Unbind(n.String())
	})
}

// Rename moves a binding; both names must resolve within one naming system.
func (ic *InitialContext) Rename(oldName, newName string) error {
	ctx, rest, err := ic.resolve(oldName)
	if err != nil {
		return Errf("rename", oldName, err)
	}
	// The new name must live in the same system; for URL names, require
	// the same scheme+authority and use the path part.
	var newRest Name
	if IsURLName(oldName) != IsURLName(newName) {
		return Errf("rename", newName, fmt.Errorf("old and new names in different naming systems"))
	}
	if IsURLName(newName) {
		ou, _ := ParseURLName(oldName)
		nu, err := ParseURLName(newName)
		if err != nil {
			return Errf("rename", newName, err)
		}
		if ou.Scheme != nu.Scheme || ou.Authority != nu.Authority {
			return Errf("rename", newName, fmt.Errorf("cannot rename across naming systems"))
		}
		newRest = nu.Path
	} else {
		newRest, err = ParseName(newName)
		if err != nil {
			return Errf("rename", newName, err)
		}
	}
	return ic.withContinuations(ctx, rest, func(c Context, n Name) error {
		return c.Rename(n.String(), newRest.String())
	})
}

// List enumerates names and classes in the named context.
func (ic *InitialContext) List(name string) ([]NameClassPair, error) {
	ctx, rest, err := ic.resolve(name)
	if err != nil {
		return nil, Errf("list", name, err)
	}
	var out []NameClassPair
	err = ic.withContinuations(ctx, rest, func(c Context, n Name) error {
		var e error
		out, e = c.List(n.String())
		return e
	})
	return out, err
}

// ListBindings enumerates names, classes and objects.
func (ic *InitialContext) ListBindings(name string) ([]Binding, error) {
	ctx, rest, err := ic.resolve(name)
	if err != nil {
		return nil, Errf("listBindings", name, err)
	}
	var out []Binding
	err = ic.withContinuations(ctx, rest, func(c Context, n Name) error {
		var e error
		out, e = c.ListBindings(n.String())
		return e
	})
	return out, err
}

// CreateSubcontext creates a subcontext.
func (ic *InitialContext) CreateSubcontext(name string) (Context, error) {
	ctx, rest, err := ic.resolve(name)
	if err != nil {
		return nil, Errf("createSubcontext", name, err)
	}
	var out Context
	err = ic.withContinuations(ctx, rest, func(c Context, n Name) error {
		var e error
		out, e = c.CreateSubcontext(n.String())
		return e
	})
	return out, err
}

// DestroySubcontext removes an empty subcontext.
func (ic *InitialContext) DestroySubcontext(name string) error {
	ctx, rest, err := ic.resolve(name)
	if err != nil {
		return Errf("destroySubcontext", name, err)
	}
	return ic.withContinuations(ctx, rest, func(c Context, n Name) error {
		return c.DestroySubcontext(n.String())
	})
}

// GetAttributes returns a name's attributes (directory providers only).
func (ic *InitialContext) GetAttributes(name string, attrIDs ...string) (*Attributes, error) {
	ctx, rest, err := ic.resolve(name)
	if err != nil {
		return nil, Errf("getAttributes", name, err)
	}
	var out *Attributes
	err = ic.withContinuations(ctx, rest, func(c Context, n Name) error {
		dc, ok := c.(DirContext)
		if !ok {
			return Errf("getAttributes", name, ErrNotSupported)
		}
		var e error
		out, e = dc.GetAttributes(n.String(), attrIDs...)
		return e
	})
	return out, err
}

// ModifyAttributes applies attribute modifications.
func (ic *InitialContext) ModifyAttributes(name string, mods []AttributeMod) error {
	ctx, rest, err := ic.resolve(name)
	if err != nil {
		return Errf("modifyAttributes", name, err)
	}
	return ic.withContinuations(ctx, rest, func(c Context, n Name) error {
		dc, ok := c.(DirContext)
		if !ok {
			return Errf("modifyAttributes", name, ErrNotSupported)
		}
		return dc.ModifyAttributes(n.String(), mods)
	})
}

// Search runs a filter search under the named context.
func (ic *InitialContext) Search(name, filterStr string, controls *SearchControls) ([]SearchResult, error) {
	ctx, rest, err := ic.resolve(name)
	if err != nil {
		return nil, Errf("search", name, err)
	}
	var out []SearchResult
	err = ic.withContinuations(ctx, rest, func(c Context, n Name) error {
		dc, ok := c.(DirContext)
		if !ok {
			return Errf("search", name, ErrNotSupported)
		}
		var e error
		out, e = dc.Search(n.String(), filterStr, controls)
		return e
	})
	return out, err
}

// Watch registers a listener on a watchable provider.
func (ic *InitialContext) Watch(name string, scope SearchScope, l Listener) (cancel func(), err error) {
	ctx, rest, err := ic.resolve(name)
	if err != nil {
		return nil, Errf("watch", name, err)
	}
	err = ic.withContinuations(ctx, rest, func(c Context, n Name) error {
		ec, ok := c.(EventContext)
		if !ok {
			return Errf("watch", name, ErrNotSupported)
		}
		var e error
		cancel, e = ec.Watch(n.String(), scope, l)
		return e
	})
	return cancel, err
}

// Close closes the default context, if one was created.
func (ic *InitialContext) Close() error {
	if ic.defCtx != nil {
		return ic.defCtx.Close()
	}
	return nil
}
