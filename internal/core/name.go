// Package core implements the paper's primary contribution: a naming and
// directory client API modelled on JNDI, with pluggable service providers,
// object/state factories, and federation of heterogeneous naming systems
// into a single composite name space addressed by URL names.
//
// Data entries are <name, object, attributes> tuples. Contexts are
// hierarchical; a composite name such as
//
//	dns://global/emory/mathcs/dcl/mokey
//
// may span several substrate naming systems (DNS, then HDNS, then LDAP in
// the paper's running example). Clients hold an InitialContext and address
// everything through it; heterogeneity is hidden behind the Context and
// DirContext interfaces, exactly as argued in §3 of the paper.
package core

import (
	"fmt"
	"strings"
)

// Name is a parsed composite name: an ordered sequence of components
// separated by '/' in string form. Components may contain any character;
// '/' '\' and '"' must be escaped with '\' in string form (JNDI composite
// name syntax, simplified to backslash escapes).
//
// The zero value is the empty name.
type Name struct {
	comps []string
}

// NewName builds a name directly from components (no unescaping).
func NewName(components ...string) Name {
	c := make([]string, len(components))
	copy(c, components)
	return Name{comps: c}
}

// ParseName parses the composite name syntax. A leading or trailing '/'
// denotes an empty component only when the whole name is "/" (the root);
// otherwise empty components are dropped, matching the lenient behaviour
// most JNDI providers implement.
func ParseName(s string) (Name, error) {
	if s == "" {
		return Name{}, nil
	}
	var comps []string
	var cur strings.Builder
	escaped := false
	started := false
	flush := func() {
		if started {
			comps = append(comps, cur.String())
			cur.Reset()
			started = false
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if escaped {
			cur.WriteByte(c)
			started = true
			escaped = false
			continue
		}
		switch c {
		case '\\':
			escaped = true
			started = true
		case '/':
			flush()
		default:
			cur.WriteByte(c)
			started = true
		}
	}
	if escaped {
		return Name{}, &InvalidNameError{Name: s, Reason: "trailing escape"}
	}
	flush()
	return Name{comps: comps}, nil
}

// MustParseName is ParseName but panics on error.
func MustParseName(s string) Name {
	n, err := ParseName(s)
	if err != nil {
		panic(err)
	}
	return n
}

// escapeComponent escapes '/', '\' in a component for composite syntax.
func escapeComponent(c string) string {
	if !strings.ContainsAny(c, `/\`) {
		return c
	}
	var b strings.Builder
	for i := 0; i < len(c); i++ {
		if c[i] == '/' || c[i] == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(c[i])
	}
	return b.String()
}

// String renders the name in composite syntax; ParseName(n.String())
// reproduces n.
func (n Name) String() string {
	parts := make([]string, len(n.comps))
	for i, c := range n.comps {
		parts[i] = escapeComponent(c)
	}
	return strings.Join(parts, "/")
}

// Size returns the number of components.
func (n Name) Size() int { return len(n.comps) }

// IsEmpty reports whether the name has no components.
func (n Name) IsEmpty() bool { return len(n.comps) == 0 }

// Get returns the i-th component. It panics if i is out of range.
func (n Name) Get(i int) string { return n.comps[i] }

// First returns the first component, or "" for the empty name.
func (n Name) First() string {
	if len(n.comps) == 0 {
		return ""
	}
	return n.comps[0]
}

// Last returns the final component, or "" for the empty name.
func (n Name) Last() string {
	if len(n.comps) == 0 {
		return ""
	}
	return n.comps[len(n.comps)-1]
}

// Prefix returns the name consisting of the first i components.
func (n Name) Prefix(i int) Name { return Name{comps: n.comps[:i:i]} }

// Suffix returns the name consisting of the components from index i on.
func (n Name) Suffix(i int) Name { return Name{comps: n.comps[i:]} }

// Append returns a new name with the given components appended.
func (n Name) Append(components ...string) Name {
	out := make([]string, 0, len(n.comps)+len(components))
	out = append(out, n.comps...)
	out = append(out, components...)
	return Name{comps: out}
}

// Concat returns the concatenation n + m.
func (n Name) Concat(m Name) Name { return n.Append(m.comps...) }

// Components returns a copy of the component slice.
func (n Name) Components() []string {
	out := make([]string, len(n.comps))
	copy(out, n.comps)
	return out
}

// Equal reports component-wise equality.
func (n Name) Equal(m Name) bool {
	if len(n.comps) != len(m.comps) {
		return false
	}
	for i := range n.comps {
		if n.comps[i] != m.comps[i] {
			return false
		}
	}
	return true
}

// StartsWith reports whether m is a prefix of n.
func (n Name) StartsWith(m Name) bool {
	if len(m.comps) > len(n.comps) {
		return false
	}
	return n.Prefix(len(m.comps)).Equal(m)
}

// URLName is a parsed URL-form composite name: scheme://authority/path.
// The path part is itself a composite name that may span further naming
// systems (federation).
type URLName struct {
	Scheme    string
	Authority string // host[:port], may be empty
	Path      Name
}

// String reassembles the URL name.
func (u URLName) String() string {
	s := u.Scheme + "://" + u.Authority
	if !u.Path.IsEmpty() {
		s += "/" + u.Path.String()
	}
	return s
}

// IsURLName reports whether s looks like a URL-form name: an alphabetic
// scheme followed by "://" or ":".
func IsURLName(s string) bool {
	i := strings.IndexByte(s, ':')
	if i <= 0 {
		return false
	}
	for j := 0; j < i; j++ {
		c := s[j]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' && j > 0 || c == '+' || c == '-' || c == '.') {
			return false
		}
	}
	return true
}

// ParseURLName splits a URL-form name into scheme, authority and path.
func ParseURLName(s string) (URLName, error) {
	i := strings.IndexByte(s, ':')
	if i <= 0 {
		return URLName{}, &InvalidNameError{Name: s, Reason: "no scheme"}
	}
	scheme := strings.ToLower(s[:i])
	rest := s[i+1:]
	if !strings.HasPrefix(rest, "//") {
		return URLName{}, &InvalidNameError{Name: s, Reason: "missing // after scheme"}
	}
	rest = rest[2:]
	var authority, path string
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		authority, path = rest[:j], rest[j+1:]
	} else {
		authority = rest
	}
	p, err := ParseName(path)
	if err != nil {
		return URLName{}, err
	}
	return URLName{Scheme: scheme, Authority: authority, Path: p}, nil
}

// SplitName parses s either as a URL name (returning ok=true and the URL)
// or as a plain composite name.
func SplitName(s string) (u URLName, n Name, isURL bool, err error) {
	if IsURLName(s) {
		u, err = ParseURLName(s)
		return u, Name{}, true, err
	}
	n, err = ParseName(s)
	return URLName{}, n, false, err
}

// ComposeName composes a name relative to a prefix, the JNDI
// Context.composeName analog for providers implementing NameInNamespace.
func ComposeName(name, prefix Name) Name { return prefix.Concat(name) }

// GoString aids debugging output.
func (n Name) GoString() string { return fmt.Sprintf("core.Name%v", n.comps) }
