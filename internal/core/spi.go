package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Well-known environment property keys (the analog of
// javax.naming.Context.PROVIDER_URL and friends). Providers may define
// additional keys in their own namespaces (e.g. "jini.bind").
const (
	// EnvInitialFactory names the initial context factory used for
	// non-URL names; the value is a string previously passed to
	// RegisterInitialFactory.
	EnvInitialFactory = "gondi.factory.initial"
	// EnvProviderURL points the initial factory at its provider.
	EnvProviderURL = "gondi.provider.url"
	// EnvPrincipal and EnvCredentials carry authentication data.
	EnvPrincipal   = "gondi.security.principal"
	EnvCredentials = "gondi.security.credentials"
	// EnvPoolID partitions provider connection pools: contexts opened
	// with different pool IDs never share a connection. Federation-
	// opened contexts default to the shared pool.
	EnvPoolID = "gondi.pool.id"
)

// Provider is the service provider interface: given a URL-form name it
// opens a context rooted at the named service and returns the still
// unresolved remainder of the name. The paper's two new providers (Jini,
// HDNS) and the pre-existing ones (DNS, LDAP, filesystem) all register
// here, keyed by URL scheme.
type Provider interface {
	// OpenURL connects to the service identified by rawURL's authority
	// and returns a context plus the URL's path as remaining name. ctx
	// bounds the dial/handshake; wire providers turn its deadline into a
	// connection deadline.
	OpenURL(ctx context.Context, rawURL string, env map[string]any) (Context, Name, error)
}

// ProviderFunc adapts a function to the Provider interface.
type ProviderFunc func(ctx context.Context, rawURL string, env map[string]any) (Context, Name, error)

// OpenURL implements Provider.
func (f ProviderFunc) OpenURL(ctx context.Context, rawURL string, env map[string]any) (Context, Name, error) {
	return f(ctx, rawURL, env)
}

// InitialFactory creates the default context used to resolve non-URL
// names.
type InitialFactory func(ctx context.Context, env map[string]any) (Context, error)

var spiMu sync.RWMutex
var providers = map[string]Provider{}
var initialFactories = map[string]InitialFactory{}

// RegisterProvider installs a provider for a URL scheme (e.g. "jini",
// "hdns", "dns", "ldap", "file", "mem"). Later registrations replace
// earlier ones.
func RegisterProvider(scheme string, p Provider) {
	spiMu.Lock()
	defer spiMu.Unlock()
	providers[strings.ToLower(scheme)] = p
}

// LookupProvider returns the provider registered for scheme.
func LookupProvider(scheme string) (Provider, bool) {
	spiMu.RLock()
	defer spiMu.RUnlock()
	p, ok := providers[strings.ToLower(scheme)]
	return p, ok
}

// Schemes returns the registered provider schemes, sorted.
func Schemes() []string {
	spiMu.RLock()
	defer spiMu.RUnlock()
	out := make([]string, 0, len(providers))
	for s := range providers {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// RegisterInitialFactory installs a named initial context factory,
// selected via the EnvInitialFactory environment property.
func RegisterInitialFactory(name string, f InitialFactory) {
	spiMu.Lock()
	defer spiMu.Unlock()
	initialFactories[name] = f
}

// OpenURL resolves a URL-form name to a provider context and remaining
// name. It is the entry point the federation machinery uses whenever it
// crosses into another naming system.
func OpenURL(ctx context.Context, rawURL string, env map[string]any) (Context, Name, error) {
	if err := CtxErr(ctx); err != nil {
		return nil, Name{}, err
	}
	u, err := ParseURLName(rawURL)
	if err != nil {
		return nil, Name{}, err
	}
	p, ok := LookupProvider(u.Scheme)
	if !ok {
		return nil, Name{}, fmt.Errorf("%w: %q", ErrNoProvider, u.Scheme)
	}
	return p.OpenURL(ctx, rawURL, env)
}

func initialFactory(name string) (InitialFactory, bool) {
	spiMu.RLock()
	defer spiMu.RUnlock()
	f, ok := initialFactories[name]
	return f, ok
}

// resetSPIForTest clears provider registrations (tests only).
func resetSPIForTest() {
	spiMu.Lock()
	defer spiMu.Unlock()
	providers = map[string]Provider{}
	initialFactories = map[string]InitialFactory{}
}
