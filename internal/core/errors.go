package core

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Sentinel errors returned (usually wrapped in a *NamingError) by contexts.
var (
	// ErrNotFound indicates the name is not bound (NameNotFoundException).
	ErrNotFound = errors.New("name not found")
	// ErrAlreadyBound indicates Bind found an existing binding
	// (NameAlreadyBoundException). JNDI bind has atomic test-and-set
	// semantics; see §5.1 of the paper for the cost of providing this on
	// top of Jini's overwrite-only registration.
	ErrAlreadyBound = errors.New("name already bound")
	// ErrNotContext indicates an intermediate name component resolved to
	// a non-context object (NotContextException).
	ErrNotContext = errors.New("not a context")
	// ErrContextNotEmpty indicates DestroySubcontext on a non-empty context.
	ErrContextNotEmpty = errors.New("context not empty")
	// ErrNotSupported indicates the provider does not implement the
	// operation (OperationNotSupportedException) — e.g. writes on the
	// read-only DNS provider.
	ErrNotSupported = errors.New("operation not supported")
	// ErrInvalidAttributes indicates malformed attribute modifications.
	ErrInvalidAttributes = errors.New("invalid attributes")
	// ErrNoPermission indicates the security layer rejected the operation.
	ErrNoPermission = errors.New("no permission")
	// ErrClosed indicates the context (or underlying connection) is closed.
	ErrClosed = errors.New("context closed")
	// ErrNoInitialContext indicates no initial context factory is
	// configured and a non-URL name was used.
	ErrNoInitialContext = errors.New("no initial context factory configured")
	// ErrNoProvider indicates no provider is registered for a URL scheme.
	ErrNoProvider = errors.New("no provider for scheme")
	// ErrInvalidNameEmpty indicates an operation that requires a
	// non-empty name was given the empty name.
	ErrInvalidNameEmpty = errors.New("empty name")
)

// NamingError decorates a sentinel error with the operation and name, the
// analog of JNDI NamingException subclasses. Use errors.Is against the
// sentinels above.
type NamingError struct {
	Op   string // "lookup", "bind", ...
	Name string // name as given by the caller
	Err  error
}

func (e *NamingError) Error() string {
	return fmt.Sprintf("naming: %s %q: %v", e.Op, e.Name, e.Err)
}

func (e *NamingError) Unwrap() error { return e.Err }

// Errf wraps err in a NamingError for op/name. It returns nil if err is nil
// and leaves CannotProceedError undecorated (federation machinery needs it
// at the top level).
func Errf(op, name string, err error) error {
	if err == nil {
		return nil
	}
	var cpe *CannotProceedError
	if errors.As(err, &cpe) {
		return err
	}
	return &NamingError{Op: op, Name: name, Err: err}
}

// InvalidNameError reports a malformed name.
type InvalidNameError struct {
	Name   string
	Reason string
}

func (e *InvalidNameError) Error() string {
	return fmt.Sprintf("naming: invalid name %q: %s", e.Name, e.Reason)
}

// CannotProceedError is the federation continuation signal
// (CannotProceedException). A provider raises it when resolution reaches an
// object that belongs to a foreign naming system while name components
// remain. The initial context resolves Resolved into a context (via the
// object factories and provider registry) and re-dispatches RemainingName
// to it — the mechanism behind §6 of the paper.
type CannotProceedError struct {
	// Resolved is the object at the federation boundary: a *Reference, a
	// URL string naming a foreign context, or a Context.
	Resolved any
	// RemainingName is the unresolved tail of the composite name.
	RemainingName Name
	// AltName names the boundary object, for diagnostics.
	AltName string
}

func (e *CannotProceedError) Error() string {
	return fmt.Sprintf("naming: cannot proceed at %q, remaining %q", e.AltName, e.RemainingName.String())
}

// LimitExceededError reports a search that hit its count limit; partial
// results are still returned alongside it.
type LimitExceededError struct {
	Limit int
}

func (e *LimitExceededError) Error() string {
	return fmt.Sprintf("naming: search limit of %d entries exceeded", e.Limit)
}

// TimeLimitExceededError reports a search that hit its
// SearchControls.TimeLimit (the analog of LDAP's timeLimitExceeded result,
// javax.naming.TimeLimitExceededException). Partial results gathered
// before the limit fired are returned alongside it.
type TimeLimitExceededError struct {
	Limit time.Duration
}

func (e *TimeLimitExceededError) Error() string {
	return fmt.Sprintf("naming: search time limit of %v exceeded", e.Limit)
}

// CtxErr returns ctx.Err() if ctx is already cancelled or past its
// deadline, else nil. Providers call it at operation entry and inside
// long-running loops; the result is wrapped by Errf so callers see
// context.Canceled / context.DeadlineExceeded through errors.Is while
// still getting the operation and name from the NamingError.
func CtxErr(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// AuthenticationError reports failed authentication with a provider.
type AuthenticationError struct {
	Principal string
	Reason    string
}

func (e *AuthenticationError) Error() string {
	return fmt.Sprintf("naming: authentication of %q failed: %s", e.Principal, e.Reason)
}

// CommunicationError wraps transport-level failures so callers can
// distinguish them from semantic naming errors.
type CommunicationError struct {
	Endpoint string
	Err      error
}

func (e *CommunicationError) Error() string {
	return fmt.Sprintf("naming: communication with %s failed: %v", e.Endpoint, e.Err)
}

func (e *CommunicationError) Unwrap() error { return e.Err }

// ServiceUnavailableError reports that a service could not be reached on
// any of its endpoints — every candidate was down, breaker-open, or
// exhausted its retries (javax.naming.ServiceUnavailableException). It is
// the terminal form of CommunicationError: retrying immediately is
// pointless, failover has already happened.
type ServiceUnavailableError struct {
	// Endpoint is the last endpoint tried (or the whole authority when
	// no endpoint admitted an attempt).
	Endpoint string
	Err      error
}

func (e *ServiceUnavailableError) Error() string {
	return fmt.Sprintf("naming: service unavailable at %s: %v", e.Endpoint, e.Err)
}

func (e *ServiceUnavailableError) Unwrap() error { return e.Err }

// ServerBusyError reports that an endpoint shed a request — the
// transport's credit-based flow control or the server's admission
// controller refused to queue more work. The server is alive (this is an
// answered rejection, not a transport failure), so callers should back
// off and retry rather than fail over. Breakers must not count it as a
// failure.
type ServerBusyError struct {
	// Endpoint is the overloaded endpoint.
	Endpoint string
	// Op is the operation that was shed.
	Op string
	// RetryAfter is the server's hint for when capacity is expected
	// again: the admission controller's drain estimate or the token
	// bucket's refill time. Zero means the server offered no hint.
	// internal/retry honors it in place of exponential backoff.
	RetryAfter time.Duration
}

func (e *ServerBusyError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("naming: server %s busy: %s shed by admission control (retry after %v)", e.Endpoint, e.Op, e.RetryAfter)
	}
	return fmt.Sprintf("naming: server %s busy: %s shed by flow control", e.Endpoint, e.Op)
}

// RetryAfterHint returns the server-supplied backoff hint. It exists so
// packages that cannot import core (internal/retry) can discover the hint
// through an interface assertion.
func (e *ServerBusyError) RetryAfterHint() time.Duration { return e.RetryAfter }

// DataCorruptionError reports that a node's durable state failed
// integrity verification: a WAL segment with a checksum mismatch away
// from the torn-tail crash signature, a snapshot chunk whose CRC does
// not match, or a version chain with a hole. The damaged files have
// been quarantined aside — never silently replayed past — and the node
// starts degraded and repairs from a healthy replica (jgroups state
// transfer) or its sync source (forced resync) instead of refusing to
// start or un-acking history.
type DataCorruptionError struct {
	// Path is the quarantined file (or the first of several).
	Path string
	// Detail says what failed verification.
	Detail string
	// Err is the underlying integrity error, when one exists.
	Err error
}

func (e *DataCorruptionError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("naming: durable state corrupt at %s: %s: %v", e.Path, e.Detail, e.Err)
	}
	return fmt.Sprintf("naming: durable state corrupt at %s: %s", e.Path, e.Detail)
}

func (e *DataCorruptionError) Unwrap() error { return e.Err }

// CrossShardRenameError reports a Rename whose source and destination
// route to different replica groups of a sharded namespace and whose
// subject cannot be moved atomically: leaf renames are emulated
// (lookup + atomic bind + unbind), but a context would have to be
// half-copied, so the router refuses. Callers branch on this error to
// fall back to an explicit copy (or to pick a destination the ring
// routes to the same group) instead of retrying blindly.
type CrossShardRenameError struct {
	// OldName and NewName are the rename's endpoints as the caller gave
	// them.
	OldName, NewName string
}

func (e *CrossShardRenameError) Error() string {
	return fmt.Sprintf("naming: rename %q -> %q crosses shard groups and the subject is a context; cross-shard subtree moves are a rebalance, not a rename", e.OldName, e.NewName)
}
