package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stubCtx is a minimal in-package DirContext for initial-context tests.
type stubCtx struct {
	mu       sync.Mutex
	bound    map[string]any
	lastName string
	lastObj  any
	lastAttr *Attributes
	closed   bool
}

func newStubCtx() *stubCtx { return &stubCtx{bound: map[string]any{}} }

func (s *stubCtx) Lookup(_ context.Context, name string) (any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if obj, ok := s.bound[name]; ok {
		return obj, nil
	}
	return nil, Errf("lookup", name, ErrNotFound)
}

func (s *stubCtx) Bind(ctx context.Context, name string, obj any) error {
	return s.BindAttrs(ctx, name, obj, nil)
}

func (s *stubCtx) BindAttrs(_ context.Context, name string, obj any, attrs *Attributes) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.bound[name]; ok {
		return Errf("bind", name, ErrAlreadyBound)
	}
	s.bound[name] = obj
	s.lastName, s.lastObj, s.lastAttr = name, obj, attrs
	return nil
}

func (s *stubCtx) Rebind(ctx context.Context, name string, obj any) error {
	return s.RebindAttrs(ctx, name, obj, nil)
}

func (s *stubCtx) RebindAttrs(_ context.Context, name string, obj any, attrs *Attributes) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bound[name] = obj
	s.lastName, s.lastObj, s.lastAttr = name, obj, attrs
	return nil
}

func (s *stubCtx) Unbind(_ context.Context, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.bound, name)
	return nil
}

func (s *stubCtx) Rename(_ context.Context, oldName, newName string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bound[newName] = s.bound[oldName]
	delete(s.bound, oldName)
	return nil
}

func (s *stubCtx) List(_ context.Context, _ string) ([]NameClassPair, error) { return nil, nil }
func (s *stubCtx) ListBindings(_ context.Context, _ string) ([]Binding, error) {
	return nil, nil
}
func (s *stubCtx) CreateSubcontext(_ context.Context, _ string) (Context, error) {
	return nil, ErrNotSupported
}
func (s *stubCtx) CreateSubcontextAttrs(_ context.Context, _ string, _ *Attributes) (DirContext, error) {
	return nil, ErrNotSupported
}
func (s *stubCtx) DestroySubcontext(_ context.Context, _ string) error { return ErrNotSupported }
func (s *stubCtx) LookupLink(ctx context.Context, name string) (any, error) {
	return s.Lookup(ctx, name)
}
func (s *stubCtx) GetAttributes(_ context.Context, _ string, _ ...string) (*Attributes, error) {
	return &Attributes{}, nil
}
func (s *stubCtx) ModifyAttributes(_ context.Context, _ string, _ []AttributeMod) error {
	return ErrNotSupported
}
func (s *stubCtx) Search(_ context.Context, _, _ string, _ *SearchControls) ([]SearchResult, error) {
	return nil, nil
}
func (s *stubCtx) NameInNamespace() (string, error) { return "", nil }
func (s *stubCtx) Environment() map[string]any      { return nil }
func (s *stubCtx) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

func TestOpenBuildsTypedEnvironment(t *testing.T) {
	ic, err := Open(context.Background(),
		WithInitialFactory("stub"),
		WithProviderURL("stub://here"),
		WithPrincipal("alice", "s3cret"),
		WithPoolID("p1"),
		WithEnv("jini.bind", "relaxed"),
	)
	if err != nil {
		t.Fatal(err)
	}
	env := ic.Environment()
	want := map[string]any{
		EnvInitialFactory: "stub",
		EnvProviderURL:    "stub://here",
		EnvPrincipal:      "alice",
		EnvCredentials:    "s3cret",
		EnvPoolID:         "p1",
		"jini.bind":       "relaxed",
	}
	for k, v := range want {
		if env[k] != v {
			t.Errorf("env[%q] = %v, want %v", k, env[k], v)
		}
	}
}

func TestOpenWithCacheRequiresRegistration(t *testing.T) {
	RegisterCacheFactory(nil)
	_, err := Open(context.Background(), WithCache(CacheConfig{}))
	if err == nil || !strings.Contains(err.Error(), "cache.Register") {
		t.Fatalf("want registration error, got %v", err)
	}
}

// recordingMW is a Middleware that wraps nothing but records traffic.
type recordingMW struct {
	opens  atomic.Int64
	wraps  atomic.Int64
	closed atomic.Bool
}

func (m *recordingMW) WrapContext(c Context) Context { m.wraps.Add(1); return c }
func (m *recordingMW) OpenURL(ctx context.Context, rawURL string, env map[string]any) (Context, Name, error) {
	m.opens.Add(1)
	return OpenURL(ctx, rawURL, env)
}
func (m *recordingMW) Close() error { m.closed.Store(true); return nil }

func TestOpenWithCacheRoutesResolution(t *testing.T) {
	resetSPIForTest()
	defer resetSPIForTest()
	defer RegisterCacheFactory(nil)

	stub := newStubCtx()
	stub.bound["a"] = 1
	RegisterProvider("stub", ProviderFunc(func(_ context.Context, rawURL string, _ map[string]any) (Context, Name, error) {
		u, err := ParseURLName(rawURL)
		if err != nil {
			return nil, Name{}, err
		}
		return stub, u.Path, nil
	}))
	RegisterInitialFactory("stub", func(_ context.Context, _ map[string]any) (Context, error) {
		return stub, nil
	})

	mw := &recordingMW{}
	RegisterCacheFactory(func(cfg CacheConfig, env map[string]any) Middleware { return mw })

	ic, err := Open(context.Background(), WithInitialFactory("stub"), WithCache(CacheConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ic.Lookup(context.Background(), "stub://host/a"); err != nil {
		t.Fatal(err)
	}
	if got := mw.opens.Load(); got != 1 {
		t.Errorf("middleware OpenURL calls = %d, want 1", got)
	}
	if _, err := ic.Lookup(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if got := mw.wraps.Load(); got != 1 {
		t.Errorf("middleware WrapContext calls = %d, want 1", got)
	}
	if err := ic.Close(); err != nil {
		t.Fatal(err)
	}
	if !mw.closed.Load() {
		t.Error("Close did not reach the middleware")
	}
}

// TestDefaultContextConcurrentFirstUse is the -race regression for the
// formerly unsynchronized lazy init of InitialContext.defaultContext.
func TestDefaultContextConcurrentFirstUse(t *testing.T) {
	resetSPIForTest()
	defer resetSPIForTest()

	stub := newStubCtx()
	stub.bound["x"] = "v"
	var created atomic.Int64
	RegisterInitialFactory("slow", func(_ context.Context, _ map[string]any) (Context, error) {
		created.Add(1)
		time.Sleep(5 * time.Millisecond) // widen the first-use window
		return stub, nil
	})

	ic := NewInitialContext(map[string]any{EnvInitialFactory: "slow"})
	const workers = 16
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = ic.Lookup(context.Background(), "x")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
	if got := created.Load(); got != 1 {
		t.Errorf("initial factory ran %d times, want 1", got)
	}
}

// TestBindWithStateFactoryAttrs covers the bindOp merge when a state
// factory contributes attributes: with a nil caller attribute set (the
// former nil-receiver hazard) and with a caller set the factory's
// attributes must merge over.
func TestBindWithStateFactoryAttrs(t *testing.T) {
	resetSPIForTest()
	resetFactoriesForTest()
	defer resetSPIForTest()
	defer resetFactoriesForTest()

	stub := newStubCtx()
	RegisterInitialFactory("stub", func(_ context.Context, _ map[string]any) (Context, error) {
		return stub, nil
	})
	RegisterStateFactory(func(obj any, _ Name, _ map[string]any) (any, *Attributes, error) {
		if s, ok := obj.(fakeObj); ok {
			return "wrapped:" + s.tag, NewAttributes("kind", "fake", "origin", "factory"), nil
		}
		return nil, nil, nil
	})
	ic := NewInitialContext(map[string]any{EnvInitialFactory: "stub"})
	ctx := context.Background()

	// Caller passes no attributes at all: factory attrs must still land.
	if err := ic.Bind(ctx, "plain", fakeObj{tag: "a"}); err != nil {
		t.Fatal(err)
	}
	if stub.lastObj != "wrapped:a" {
		t.Errorf("state = %v", stub.lastObj)
	}
	if stub.lastAttr.GetFirst("kind") != "fake" || stub.lastAttr.GetFirst("origin") != "factory" {
		t.Errorf("attrs = %v", stub.lastAttr)
	}

	// Caller attributes merge under the factory's (factory wins on clash).
	err := ic.BindAttrs(ctx, "both", fakeObj{tag: "b"},
		NewAttributes("origin", "caller", "color", "blue"))
	if err != nil {
		t.Fatal(err)
	}
	if got := stub.lastAttr.GetFirst("origin"); got != "factory" {
		t.Errorf("origin = %q, want factory attrs merged over the caller's", got)
	}
	if got := stub.lastAttr.GetFirst("color"); got != "blue" {
		t.Errorf("color = %q, caller-only attrs must survive the merge", got)
	}
	if got := stub.lastAttr.GetFirst("kind"); got != "fake" {
		t.Errorf("kind = %q", got)
	}
}

// Guard: a nil middleware never intercepts (plain NewInitialContext path).
func TestNoMiddlewareByDefault(t *testing.T) {
	ic := NewInitialContext(nil)
	if len(ic.mws) != 0 || ic.openFn != nil {
		t.Fatal("NewInitialContext must not install middleware")
	}
	if _, err := ic.Lookup(context.Background(), "nope/x"); !errors.Is(err, ErrNoInitialContext) {
		t.Errorf("got %v", err)
	}
}
