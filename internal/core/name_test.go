package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseNameBasic(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a", []string{"a"}},
		{"a/b/c", []string{"a", "b", "c"}},
		{"a//b", []string{"a", "b"}},
		{"/a", []string{"a"}},
		{"a/", []string{"a"}},
		{`a\/b/c`, []string{"a/b", "c"}},
		{`a\\b`, []string{`a\b`}},
	}
	for _, tc := range tests {
		n, err := ParseName(tc.in)
		if err != nil {
			t.Fatalf("ParseName(%q): %v", tc.in, err)
		}
		got := n.Components()
		if len(got) != len(tc.want) {
			t.Errorf("ParseName(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ParseName(%q)[%d] = %q, want %q", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}

func TestParseNameTrailingEscape(t *testing.T) {
	if _, err := ParseName(`a\`); err == nil {
		t.Error("trailing escape should fail")
	}
}

func TestNameOps(t *testing.T) {
	n := MustParseName("a/b/c/d")
	if n.Size() != 4 || n.First() != "a" || n.Last() != "d" {
		t.Fatalf("basic accessors wrong: %v", n)
	}
	if got := n.Prefix(2).String(); got != "a/b" {
		t.Errorf("Prefix(2) = %q", got)
	}
	if got := n.Suffix(2).String(); got != "c/d" {
		t.Errorf("Suffix(2) = %q", got)
	}
	if !n.StartsWith(MustParseName("a/b")) {
		t.Error("StartsWith(a/b) = false")
	}
	if n.StartsWith(MustParseName("a/x")) {
		t.Error("StartsWith(a/x) = true")
	}
	if got := n.Append("e").String(); got != "a/b/c/d/e" {
		t.Errorf("Append = %q", got)
	}
	if got := n.Concat(MustParseName("x/y")).String(); got != "a/b/c/d/x/y" {
		t.Errorf("Concat = %q", got)
	}
	// Append must not alias the receiver's backing array.
	p := n.Prefix(2)
	a1 := p.Append("z1")
	a2 := p.Append("z2")
	if a1.Get(2) == "z2" || a2.Get(2) == "z1" {
		t.Error("Append aliased backing array")
	}
	var empty Name
	if !empty.IsEmpty() || empty.First() != "" || empty.Last() != "" {
		t.Error("empty name accessors wrong")
	}
}

// Property: components -> String -> ParseName round trips for arbitrary
// component content (including slashes and backslashes).
func TestNameRoundTripProperty(t *testing.T) {
	f := func(comps []string) bool {
		var in []string
		for _, c := range comps {
			if c == "" {
				continue // empty components are dropped by design
			}
			in = append(in, c)
		}
		n := NewName(in...)
		back, err := ParseName(n.String())
		if err != nil {
			return false
		}
		return back.Equal(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIsURLName(t *testing.T) {
	yes := []string{"ldap://host/a", "dns://x", "jini://h:4160", "mem://s", "a+b://x"}
	no := []string{"", "a/b", "/a", "plain", "1ab://x", ":foo", "a b://x"}
	for _, s := range yes {
		if !IsURLName(s) {
			t.Errorf("IsURLName(%q) = false", s)
		}
	}
	for _, s := range no {
		if IsURLName(s) {
			t.Errorf("IsURLName(%q) = true", s)
		}
	}
}

func TestParseURLName(t *testing.T) {
	u, err := ParseURLName("ldap://host.domain:389/n=jiniServer/jxtaGroup/myObject")
	if err != nil {
		t.Fatal(err)
	}
	if u.Scheme != "ldap" || u.Authority != "host.domain:389" {
		t.Fatalf("got %+v", u)
	}
	if u.Path.String() != "n=jiniServer/jxtaGroup/myObject" {
		t.Errorf("path = %q", u.Path.String())
	}
	if u.String() != "ldap://host.domain:389/n=jiniServer/jxtaGroup/myObject" {
		t.Errorf("String = %q", u.String())
	}

	u2, err := ParseURLName("hdns://host2")
	if err != nil {
		t.Fatal(err)
	}
	if u2.Authority != "host2" || !u2.Path.IsEmpty() {
		t.Errorf("got %+v", u2)
	}
	if u2.String() != "hdns://host2" {
		t.Errorf("String = %q", u2.String())
	}

	if _, err := ParseURLName("noscheme"); err == nil {
		t.Error("expected error for missing scheme")
	}
	if _, err := ParseURLName("mailto:foo"); err == nil {
		t.Error("expected error for non-// URL")
	}
}

func TestSplitName(t *testing.T) {
	u, _, isURL, err := SplitName("dns://global/emory/mathcs")
	if err != nil || !isURL || u.Scheme != "dns" {
		t.Fatalf("got %+v %v %v", u, isURL, err)
	}
	_, n, isURL, err := SplitName("a/b")
	if err != nil || isURL || n.String() != "a/b" {
		t.Fatalf("got %v %v %v", n, isURL, err)
	}
}

func TestEscapeRoundTripHard(t *testing.T) {
	cases := [][]string{
		{`a/b`, `c\d`},
		{`//`, `\\`},
		{`plain`},
		{`tricky\/mix/`, `x`},
	}
	for _, comps := range cases {
		n := NewName(comps...)
		back := MustParseName(n.String())
		if !back.Equal(n) {
			t.Errorf("round trip %q -> %q -> %v", comps, n.String(), back.Components())
		}
	}
	if !strings.Contains(NewName("a/b").String(), `\/`) {
		t.Error("slash not escaped")
	}
}

func TestComposeName(t *testing.T) {
	got := ComposeName(MustParseName("c/d"), MustParseName("a/b"))
	if got.String() != "a/b/c/d" {
		t.Errorf("ComposeName = %q", got.String())
	}
	if got := ComposeName(Name{}, MustParseName("a")); got.String() != "a" {
		t.Errorf("empty name compose = %q", got.String())
	}
}

func TestURLNameString(t *testing.T) {
	u := URLName{Scheme: "hdns", Authority: "h:1", Path: MustParseName("x/y")}
	if u.String() != "hdns://h:1/x/y" {
		t.Errorf("String = %q", u.String())
	}
}
