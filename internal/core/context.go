package core

import (
	"context"
	"time"
)

// NameClassPair is a List result: the bound name (single component,
// relative to the listed context) and the class (Go type string) of the
// bound object.
type NameClassPair struct {
	Name  string
	Class string
}

// Binding is a ListBindings result: name, class, and the object itself.
type Binding struct {
	Name   string
	Class  string
	Object any
}

// SearchScope controls how deep a directory search descends.
type SearchScope int

// Search scopes, mirroring SearchControls.OBJECT_SCOPE etc.
const (
	// ScopeObject tests only the named object.
	ScopeObject SearchScope = iota
	// ScopeOneLevel searches direct children of the named context.
	ScopeOneLevel
	// ScopeSubtree searches the whole subtree.
	ScopeSubtree
)

// SearchControls tunes a directory search.
type SearchControls struct {
	Scope SearchScope
	// CountLimit bounds the number of results; 0 means unlimited.
	CountLimit int
	// TimeLimit bounds the server-side search time; 0 means unlimited.
	TimeLimit time.Duration
	// ReturnAttrs selects which attributes each result carries; nil
	// returns all, an empty non-nil slice returns none.
	ReturnAttrs []string
	// ReturnObject asks the provider to return bound objects, not just
	// names and attributes.
	ReturnObject bool
}

// SearchResult is one directory search hit.
type SearchResult struct {
	// Name is relative to the search base.
	Name       string
	Class      string
	Object     any // nil unless SearchControls.ReturnObject
	Attributes *Attributes
}

// Context is the base naming interface, the analog of javax.naming.Context.
// Names are composite name strings (see ParseName); providers receive names
// relative to themselves.
//
// Every operation takes a context.Context first. Its deadline becomes a
// real I/O deadline on wire-backed providers, and cancellation aborts
// in-flight calls with an error wrapping ctx.Err(). Federation
// continuations propagate the caller's ctx across naming-system hops, so
// one deadline bounds a whole multi-hop resolution.
//
// Bind has atomic test-and-set semantics: it fails with ErrAlreadyBound if
// the name is taken. Rebind overwrites unconditionally. This distinction is
// central to §5.1 of the paper: Jini offers only idempotent overwrite, so
// the Jini provider must build atomic Bind out of distributed locking.
type Context interface {
	// Lookup retrieves the object bound to name. Looking up the empty
	// name returns a new context instance sharing this context's state.
	Lookup(ctx context.Context, name string) (any, error)
	// Bind binds name to obj; it fails if name is already bound.
	Bind(ctx context.Context, name string, obj any) error
	// Rebind binds name to obj, replacing any existing binding.
	Rebind(ctx context.Context, name string, obj any) error
	// Unbind removes the binding; unbinding an unbound name succeeds
	// (JNDI semantics), but intermediate contexts must exist.
	Unbind(ctx context.Context, name string) error
	// Rename moves the binding at oldName to newName; newName must not
	// be bound.
	Rename(ctx context.Context, oldName, newName string) error
	// List enumerates the names and classes bound in the named context.
	List(ctx context.Context, name string) ([]NameClassPair, error)
	// ListBindings enumerates names, classes and objects.
	ListBindings(ctx context.Context, name string) ([]Binding, error)
	// CreateSubcontext creates and binds a new context.
	CreateSubcontext(ctx context.Context, name string) (Context, error)
	// DestroySubcontext removes an empty subcontext.
	DestroySubcontext(ctx context.Context, name string) error
	// LookupLink is Lookup but does not follow a terminal link reference.
	LookupLink(ctx context.Context, name string) (any, error)
	// NameInNamespace returns this context's full name within its own
	// naming system (not across federation boundaries).
	NameInNamespace() (string, error)
	// Environment returns the context's environment properties.
	Environment() map[string]any
	// Close releases provider resources (connections, lease renewers).
	Close() error
}

// DirContext adds directory operations: attributes and searches, the analog
// of javax.naming.directory.DirContext.
type DirContext interface {
	Context
	// BindAttrs is Bind plus initial attributes.
	BindAttrs(ctx context.Context, name string, obj any, attrs *Attributes) error
	// RebindAttrs is Rebind plus attributes; nil attrs keeps existing
	// attributes (JNDI semantics), an empty set clears them.
	RebindAttrs(ctx context.Context, name string, obj any, attrs *Attributes) error
	// GetAttributes returns the named object's attributes, optionally
	// restricted to the listed IDs.
	GetAttributes(ctx context.Context, name string, attrIDs ...string) (*Attributes, error)
	// ModifyAttributes applies a batch of modifications atomically.
	ModifyAttributes(ctx context.Context, name string, mods []AttributeMod) error
	// Search evaluates an RFC 4515 filter under the named context.
	// Providers enforce SearchControls.TimeLimit and return partial
	// results alongside a *TimeLimitExceededError when it fires.
	Search(ctx context.Context, name string, filterStr string, controls *SearchControls) ([]SearchResult, error)
	// CreateSubcontextAttrs creates a subcontext with attributes.
	CreateSubcontextAttrs(ctx context.Context, name string, attrs *Attributes) (DirContext, error)
}

// EventType classifies naming events.
type EventType int

// Naming event types, mirroring NamingEvent.OBJECT_ADDED etc.
const (
	EventObjectAdded EventType = iota
	EventObjectRemoved
	EventObjectChanged
	EventObjectRenamed
	// EventWatchLost signals that the event channel behind a Watch died
	// (connection torn, server restarted): no further events will arrive
	// and the listener's view of the subtree can silently go stale.
	// Consumers that cache on the strength of the watch must fall back to
	// time-based expiry until a new Watch succeeds.
	EventWatchLost
)

func (t EventType) String() string {
	switch t {
	case EventObjectAdded:
		return "added"
	case EventObjectRemoved:
		return "removed"
	case EventObjectChanged:
		return "changed"
	case EventObjectRenamed:
		return "renamed"
	case EventWatchLost:
		return "watch-lost"
	default:
		return "?"
	}
}

// NamingEvent notifies a listener of a change in a watched namespace.
type NamingEvent struct {
	Type EventType
	// Name is the affected name relative to the watched context.
	Name string
	// NewValue and OldValue are provider-dependent; they may be nil.
	NewValue any
	OldValue any
}

// Listener receives naming events. Implementations must be safe for
// concurrent invocation.
type Listener func(NamingEvent)

// EventContext is implemented by providers that support the JNDI event
// notification model (both new providers in the paper do: Jini natively,
// HDNS via the H2O event mechanism).
type EventContext interface {
	Context
	// Watch registers a listener for events on target (ScopeObject
	// watches one name, ScopeOneLevel a context's children, ScopeSubtree
	// a whole subtree). The returned cancel function deregisters it.
	// ctx bounds the registration call itself, not the listener's
	// lifetime (deregister via the returned cancel).
	Watch(ctx context.Context, target string, scope SearchScope, l Listener) (cancel func(), err error)
}

// Lease is a time-bound grant of registration validity, the Jini leasing
// abstraction (§5.1 "Handling leases"). JNDI has no expiration concept, so
// providers renew leases internally via a RenewalManager until the entry is
// unbound or the provider is closed.
type Lease interface {
	// Expiration returns the current expiration time.
	Expiration() time.Time
	// Renew extends the lease by the requested duration; the granted
	// duration may be shorter.
	Renew(d time.Duration) (time.Duration, error)
	// Cancel terminates the lease immediately.
	Cancel() error
}
