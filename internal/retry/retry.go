// Package retry implements capped exponential backoff with jitter for the
// wire paths (rpc dials, registrar calls, lease renewal). All waiting is
// ctx-aware: a cancelled or expired context aborts the backoff sleep
// immediately and is never itself retried.
package retry

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"syscall"
	"time"

	"gondi/internal/obs"
)

var (
	mRetries = obs.Default.Counter("gondi_retry_attempts_total",
		"Retry attempts beyond the first try.")
	mBackoff = obs.Default.Counter("gondi_retry_backoff_ns_total",
		"Nanoseconds spent sleeping between retry attempts.")
	mExhausted = obs.Default.Counter("gondi_retry_exhausted_total",
		"Operations that failed after exhausting their retry budget.")
)

// Defaults applied by Policy.withDefaults for zero fields.
const (
	DefaultAttempts   = 4
	DefaultBaseDelay  = 50 * time.Millisecond
	DefaultMaxDelay   = 2 * time.Second
	DefaultMultiplier = 2.0
	DefaultJitter     = 0.2
)

// Policy describes a capped exponential backoff schedule. The zero value
// means "use the defaults above": up to 4 attempts with delays of roughly
// 50ms, 100ms, 200ms (each ±20% jitter), capped at 2s.
type Policy struct {
	// MaxAttempts bounds total tries (first call included); <=0 uses
	// DefaultAttempts. 1 means no retries.
	MaxAttempts int
	// BaseDelay is the pause after the first failure; <=0 uses
	// DefaultBaseDelay.
	BaseDelay time.Duration
	// MaxDelay caps the grown delay; <=0 uses DefaultMaxDelay.
	MaxDelay time.Duration
	// Multiplier grows the delay each attempt; <=1 uses DefaultMultiplier.
	Multiplier float64
	// Jitter is the random fraction (0..1) added/subtracted from each
	// delay to avoid thundering herds; <0 disables, 0 uses DefaultJitter.
	Jitter float64
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.Multiplier <= 1 {
		p.Multiplier = DefaultMultiplier
	}
	if p.Jitter == 0 {
		p.Jitter = DefaultJitter
	}
	return p
}

// RetryAfterHint extracts a server-supplied backoff hint from err or any
// error in its wrap chain. core.ServerBusyError carries one; the check is
// an interface assertion so this package needs no core import. The bool
// reports whether a hint-bearing error was found at all (its hint may
// still be zero).
func RetryAfterHint(err error) (time.Duration, bool) {
	for err != nil {
		if h, ok := err.(interface{ RetryAfterHint() time.Duration }); ok {
			return h.RetryAfterHint(), true
		}
		err = errors.Unwrap(err)
	}
	return 0, false
}

// Transient reports whether err is worth retrying: network timeouts,
// connection refused/reset (a service restarting behind a stable address),
// torn connections (EOF mid-protocol), and answered busy sheds (the
// server is alive and told us when to come back). Context cancellation
// and deadline expiry are never transient — the caller's budget is gone.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if _, ok := RetryAfterHint(err); ok {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	return false
}

// Do runs fn until it succeeds, fails permanently (per Transient), the
// policy's attempts are exhausted, or ctx ends. It returns nil on success,
// ctx.Err() if the context ended first, and otherwise the last error from
// fn.
func Do(ctx context.Context, p Policy, fn func() error) error {
	return DoClassify(ctx, p, Transient, fn)
}

// DoClassify is Do with a custom transient-error classifier.
func DoClassify(ctx context.Context, p Policy, transient func(error) bool, fn func() error) error {
	p = p.withDefaults()
	if transient == nil {
		transient = Transient
	}
	delay := p.BaseDelay
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		err = fn()
		if err == nil {
			return nil
		}
		if attempt >= p.MaxAttempts || !transient(err) {
			if attempt >= p.MaxAttempts && transient(err) {
				mExhausted.Inc()
			}
			return err
		}
		pause := jittered(delay, p.Jitter)
		if hint, ok := RetryAfterHint(err); ok && hint > 0 {
			// The server told us when capacity is expected; honoring
			// the hint beats the blind exponential schedule (which is
			// either too eager — hammering a shedding server — or too
			// lazy, leaving recovered capacity idle). The exponential
			// delay is left untouched for later non-hinted failures.
			pause = jittered(hint, p.Jitter)
		} else {
			delay = time.Duration(float64(delay) * p.Multiplier)
			if delay > p.MaxDelay {
				delay = p.MaxDelay
			}
		}
		if !sleep(ctx, pause) {
			return ctx.Err()
		}
		mRetries.Inc()
		mBackoff.Add(int64(pause))
		obs.AddRetry(ctx, 1, pause)
	}
}

// jittered perturbs d by ±frac (e.g. 0.2 → d*[0.8, 1.2)).
func jittered(d time.Duration, frac float64) time.Duration {
	if frac <= 0 || d <= 0 {
		return d
	}
	span := float64(d) * frac
	return time.Duration(float64(d) - span + rand.Float64()*2*span)
}

// sleep waits d or until ctx is done; it reports whether the full wait
// elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
