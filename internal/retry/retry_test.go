package retry

import (
	"context"
	"errors"
	"fmt"
	"io"
	"syscall"
	"testing"
	"time"

	"gondi/internal/core"
)

func fastPolicy() Policy {
	return Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
}

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := Do(context.Background(), fastPolicy(), func() error {
		calls++
		if calls < 3 {
			return io.EOF
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestDoStopsOnPermanentError(t *testing.T) {
	perm := errors.New("bad request")
	calls := 0
	err := Do(context.Background(), fastPolicy(), func() error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	err := Do(context.Background(), fastPolicy(), func() error {
		calls++
		return syscall.ECONNREFUSED
	})
	if !errors.Is(err, syscall.ECONNREFUSED) || calls != 4 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestDoHonorsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	done := make(chan error, 1)
	go func() {
		done <- Do(ctx, Policy{MaxAttempts: 100, BaseDelay: time.Hour}, func() error {
			calls++
			return io.EOF
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err=%v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Do did not return after cancel")
	}
	if calls != 1 {
		t.Fatalf("calls=%d", calls)
	}
}

func TestDoNeverRetriesContextErrors(t *testing.T) {
	calls := 0
	err := Do(context.Background(), fastPolicy(), func() error {
		calls++
		return context.DeadlineExceeded
	})
	if !errors.Is(err, context.DeadlineExceeded) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{io.EOF, true},
		{io.ErrUnexpectedEOF, true},
		{syscall.ECONNREFUSED, true},
		{syscall.ECONNRESET, true},
		{syscall.EPIPE, true},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{errors.New("semantic error"), false},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("Transient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestJitteredStaysInBand(t *testing.T) {
	d := 100 * time.Millisecond
	for i := 0; i < 100; i++ {
		j := jittered(d, 0.2)
		if j < 80*time.Millisecond || j > 120*time.Millisecond {
			t.Fatalf("jittered out of band: %v", j)
		}
	}
}

func TestBusyErrorsAreTransient(t *testing.T) {
	busy := &core.ServerBusyError{Endpoint: "ep", Op: "lookup", RetryAfter: 40 * time.Millisecond}
	if !Transient(busy) {
		t.Fatal("ServerBusyError must classify transient: the server asked for a retry")
	}
	if !Transient(fmt.Errorf("wrapped: %w", busy)) {
		t.Fatal("wrapped busy error lost its classification")
	}
}

func TestRetryAfterHintExtraction(t *testing.T) {
	busy := &core.ServerBusyError{RetryAfter: 25 * time.Millisecond}
	if hint, ok := RetryAfterHint(fmt.Errorf("x: %w", busy)); !ok || hint != 25*time.Millisecond {
		t.Fatalf("hint = %v, %v", hint, ok)
	}
	if _, ok := RetryAfterHint(io.EOF); ok {
		t.Fatal("EOF must not carry a hint")
	}
}

// Do must pace retries by the server's RetryAfter hint instead of the
// blind exponential schedule: the hint is the drain estimate of the
// very queue that shed us.
func TestDoHonorsRetryAfterHint(t *testing.T) {
	const hint = 60 * time.Millisecond
	p := Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Jitter: -1}
	calls := 0
	start := time.Now()
	err := Do(context.Background(), p, func() error {
		calls++
		if calls == 1 {
			return &core.ServerBusyError{Endpoint: "ep", Op: "op", RetryAfter: hint}
		}
		return nil
	})
	took := time.Since(start)
	if err != nil || calls != 2 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if took < hint {
		t.Fatalf("retried after %v, before the server's %v hint", took, hint)
	}
	// And without a hint the same policy would have retried in ~1ms; a
	// wildly larger pause would mean the hint leaked into the schedule.
	if took > 10*hint {
		t.Fatalf("retry pause %v is not hint-shaped", took)
	}
}
