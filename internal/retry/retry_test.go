package retry

import (
	"context"
	"errors"
	"io"
	"syscall"
	"testing"
	"time"
)

func fastPolicy() Policy {
	return Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
}

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := Do(context.Background(), fastPolicy(), func() error {
		calls++
		if calls < 3 {
			return io.EOF
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestDoStopsOnPermanentError(t *testing.T) {
	perm := errors.New("bad request")
	calls := 0
	err := Do(context.Background(), fastPolicy(), func() error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	err := Do(context.Background(), fastPolicy(), func() error {
		calls++
		return syscall.ECONNREFUSED
	})
	if !errors.Is(err, syscall.ECONNREFUSED) || calls != 4 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestDoHonorsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	done := make(chan error, 1)
	go func() {
		done <- Do(ctx, Policy{MaxAttempts: 100, BaseDelay: time.Hour}, func() error {
			calls++
			return io.EOF
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err=%v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Do did not return after cancel")
	}
	if calls != 1 {
		t.Fatalf("calls=%d", calls)
	}
}

func TestDoNeverRetriesContextErrors(t *testing.T) {
	calls := 0
	err := Do(context.Background(), fastPolicy(), func() error {
		calls++
		return context.DeadlineExceeded
	})
	if !errors.Is(err, context.DeadlineExceeded) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{io.EOF, true},
		{io.ErrUnexpectedEOF, true},
		{syscall.ECONNREFUSED, true},
		{syscall.ECONNRESET, true},
		{syscall.EPIPE, true},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{errors.New("semantic error"), false},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("Transient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestJitteredStaysInBand(t *testing.T) {
	d := 100 * time.Millisecond
	for i := 0; i < 100; i++ {
		j := jittered(d, 0.2)
		if j < 80*time.Millisecond || j > 120*time.Millisecond {
			t.Fatalf("jittered out of band: %v", j)
		}
	}
}
