package admission

import (
	"errors"
	"testing"
	"time"

	"gondi/internal/core"
)

func admitN(t *testing.T, c *Controller, class Class, n int) []func() {
	t.Helper()
	releases := make([]func(), 0, n)
	for i := 0; i < n; i++ {
		rel, err := c.Admit(class, "ep", "op")
		if err != nil {
			t.Fatalf("admit %d/%d (%s): %v", i+1, n, class, err)
		}
		releases = append(releases, rel)
	}
	return releases
}

func wantBusy(t *testing.T, c *Controller, class Class) *core.ServerBusyError {
	t.Helper()
	rel, err := c.Admit(class, "ep", "op")
	if err == nil {
		rel()
		t.Fatalf("admit (%s) succeeded past the bound", class)
	}
	var busy *core.ServerBusyError
	if !errors.As(err, &busy) {
		t.Fatalf("shed error is %T, want *core.ServerBusyError", err)
	}
	return busy
}

func TestWeightsPartitionTheQueue(t *testing.T) {
	// Bound 20 at weights 6/3/1 → hard shares 12/6/2.
	c := NewController(NewOptions(WithQueueBound(20)))
	readRel := admitN(t, c, Read, 12)
	admitN(t, c, Write, 6)
	admitN(t, c, Search, 2)
	if got := c.Depth(); got != 20 {
		t.Fatalf("Depth = %d, want 20", got)
	}

	// Every class is at its share: the next arrival of each sheds.
	for _, class := range []Class{Read, Write, Search} {
		busy := wantBusy(t, c, class)
		if busy.RetryAfter <= 0 {
			t.Errorf("%s shed without a RetryAfter hint", class)
		}
		if busy.Endpoint != "ep" || busy.Op != "op" {
			t.Errorf("%s shed mislabeled: %+v", class, busy)
		}
	}

	// Shares are hard: a saturated read class cannot borrow from an
	// idle write class, and freeing a read slot only helps reads.
	readRel[0]()
	rel, err := c.Admit(Read, "ep", "op")
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	defer rel()
	wantBusy(t, c, Write)
}

func TestZeroWeightClassKeepsOneSlot(t *testing.T) {
	c := NewController(NewOptions(WithQueueBound(10), WithWeights(1, 1, 0)))
	rel, err := c.Admit(Search, "ep", "op")
	if err != nil {
		t.Fatalf("weight-0 class shut out: %v", err)
	}
	defer rel()
	wantBusy(t, c, Search)
}

func TestReleaseIsIdempotent(t *testing.T) {
	c := NewController(NewOptions(WithQueueBound(10), WithWeights(1, 0, 0)))
	rel := admitN(t, c, Write, 1)[0] // write share = min 1 slot
	rel()
	rel() // double release must not free a second slot
	if got := c.Depth(); got != 0 {
		t.Fatalf("Depth after double release = %d, want 0", got)
	}
	rel2 := admitN(t, c, Write, 1)[0]
	defer rel2()
	wantBusy(t, c, Write)
}

func TestRateLimitShedsWithWaitHint(t *testing.T) {
	c := NewController(NewOptions(WithQueueBound(100), WithRate(Read, 10, 1)))
	rel, err := c.Admit(Read, "ep", "op")
	if err != nil {
		t.Fatalf("first op within burst: %v", err)
	}
	rel()
	// Burst of 1 is spent; the next token is 100ms away.
	busy := wantBusy(t, c, Read)
	if busy.RetryAfter < DefaultRetryAfterMin || busy.RetryAfter > 200*time.Millisecond {
		t.Errorf("rate-shed RetryAfter = %v, want ~100ms", busy.RetryAfter)
	}
	// Tokens refill: after a rate period the class admits again.
	deadline := time.Now().Add(2 * time.Second)
	for {
		rel, err := c.Admit(Read, "ep", "op")
		if err == nil {
			rel()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("bucket never refilled")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRetryAfterClamped(t *testing.T) {
	c := NewController(NewOptions(
		WithQueueBound(10), WithWeights(1, 0, 0),
		WithRetryAfterBounds(20*time.Millisecond, 30*time.Millisecond),
	))
	// Saturate reads (share = 10 slots) and shed one.
	rels := admitN(t, c, Read, 10)
	busy := wantBusy(t, c, Read)
	if busy.RetryAfter < 20*time.Millisecond || busy.RetryAfter > 30*time.Millisecond {
		t.Errorf("RetryAfter = %v, want within [20ms, 30ms]", busy.RetryAfter)
	}
	for _, rel := range rels {
		rel()
	}
}

func TestHintTracksResidenceTime(t *testing.T) {
	c := NewController(NewOptions(WithQueueBound(10), WithWeights(1, 0, 0)))
	// Teach the EWMA a ~40ms residence time.
	for i := 0; i < 16; i++ {
		rel, err := c.Admit(Read, "ep", "op")
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
		rel()
	}
	rels := admitN(t, c, Read, 10)
	defer func() {
		for _, rel := range rels {
			rel()
		}
	}()
	busy := wantBusy(t, c, Read)
	// Hint is half the smoothed residence: ~2.5ms clamps to the 5ms
	// floor; the point is it stays in the floor..residence band rather
	// than quoting zero or something unbounded.
	if busy.RetryAfter < DefaultRetryAfterMin || busy.RetryAfter > 100*time.Millisecond {
		t.Errorf("RetryAfter = %v, want within [%v, 100ms]", busy.RetryAfter, DefaultRetryAfterMin)
	}
}

func TestDisabledAndNilAdmitEverything(t *testing.T) {
	for _, c := range []*Controller{
		nil,
		NewController(NewOptions(WithQueueBound(1), WithDisabled(true))),
	} {
		for i := 0; i < 100; i++ {
			rel, err := c.Admit(Write, "ep", "op")
			if err != nil {
				t.Fatalf("no-op gate shed: %v", err)
			}
			rel()
		}
		if got := c.Depth(); got != 0 {
			t.Fatalf("no-op gate Depth = %d", got)
		}
	}
}
