// Package admission implements per-server admission control: a bounded
// run queue partitioned by op class (read / write / search) with
// weight-derived per-class shares, optional token-bucket rate limits, and
// LIFO shedding — under saturation the *newest* arrival is rejected
// immediately with a typed *core.ServerBusyError carrying a RetryAfter
// hint, rather than queued behind work that will time out anyway.
//
// This is the fix for the paper's Figure 5 failure mode: unbounded
// buffers convert overload into collapse (service time grows with
// backlog until goodput approaches zero). Bounding the run queue keeps
// the backlog — and therefore the per-op service time — small, so a
// server at 2x offered load still completes work at its capacity and
// sheds the rest cheaply. Every server in this repository (hdns, jini
// LUS, dnssrv, ldapsrv, jxta rendezvous) gates its dispatch through a
// Controller.
package admission

import (
	"sync"
	"time"

	"gondi/internal/core"
	"gondi/internal/obs"
)

// Class partitions admitted work for weighting and rate limiting.
type Class int

const (
	// Read covers point lookups, lists, lease renewals — cheap ops.
	Read Class = iota
	// Write covers mutations that enter the replication path.
	Write
	// Search covers scan-shaped ops (filter search, zone transfer,
	// discovery queries).
	Search
	numClasses
)

// String returns the obs label value for the class.
func (c Class) String() string {
	switch c {
	case Read:
		return "read"
	case Write:
		return "write"
	case Search:
		return "search"
	}
	return "other"
}

// ClassOptions configures one op class.
type ClassOptions struct {
	// Weight is the class's share of the run queue bound. The class's
	// guaranteed slots are QueueBound * Weight / sum(weights); unused
	// slots from other classes are not borrowed — the shares are hard so
	// a read storm can never starve writes. <=0 means the class is
	// admitted only through the shared remainder (weight 0 with other
	// classes weighted still reserves it one slot, so no class is shut
	// out by misconfiguration).
	Weight int
	// Rate is the class's token-bucket refill rate in ops/sec; 0 means
	// no rate limit for the class.
	Rate float64
	// Burst is the bucket depth; <=0 with Rate>0 defaults to max(1,
	// Rate/10) — a 100ms burst.
	Burst int
}

// Options configures a Controller. The zero value is usable:
// DefaultQueueBound total slots split by the default weights, no rate
// limits.
type Options struct {
	// Server labels the controller's obs metrics ("hdns", "jini", ...).
	Server string
	// QueueBound caps work concurrently inside the server (queued at a
	// cost station + executing). <=0 uses DefaultQueueBound. This is the
	// bounded buffer: everything past it is shed, never queued.
	QueueBound int
	// Read, Write, Search configure the classes. All-zero weights use
	// DefaultWeights.
	Read, Write, Search ClassOptions
	// RetryAfterMin / RetryAfterMax clamp the RetryAfter hint attached
	// to sheds. Zero uses DefaultRetryAfterMin / DefaultRetryAfterMax.
	RetryAfterMin, RetryAfterMax time.Duration
	// Disabled turns the controller into a no-op gate (admit
	// everything). Used by benchmarks to measure the unprotected stack.
	Disabled bool
}

// Defaults for zero Options fields.
const (
	DefaultQueueBound    = 256
	DefaultReadWeight    = 6
	DefaultWriteWeight   = 3
	DefaultSearchWeight  = 1
	DefaultRetryAfterMin = 5 * time.Millisecond
	DefaultRetryAfterMax = 2 * time.Second
)

// Option mutates Options; the typed-constructor pattern shared by the
// daemons through serverutil.
type Option func(*Options)

// WithServer sets the obs label.
func WithServer(name string) Option { return func(o *Options) { o.Server = name } }

// WithQueueBound sets the total run-queue bound.
func WithQueueBound(n int) Option { return func(o *Options) { o.QueueBound = n } }

// WithWeights sets the per-class queue weights.
func WithWeights(read, write, search int) Option {
	return func(o *Options) {
		o.Read.Weight, o.Write.Weight, o.Search.Weight = read, write, search
	}
}

// WithRate sets a token-bucket rate limit for one class.
func WithRate(c Class, rate float64, burst int) Option {
	return func(o *Options) {
		co := o.class(c)
		co.Rate, co.Burst = rate, burst
	}
}

// WithRetryAfterBounds clamps the RetryAfter hint.
func WithRetryAfterBounds(min, max time.Duration) Option {
	return func(o *Options) { o.RetryAfterMin, o.RetryAfterMax = min, max }
}

// WithDisabled turns admission off (benchmark ablation).
func WithDisabled(v bool) Option { return func(o *Options) { o.Disabled = v } }

func (o *Options) class(c Class) *ClassOptions {
	switch c {
	case Write:
		return &o.Write
	case Search:
		return &o.Search
	default:
		return &o.Read
	}
}

// NewOptions applies opts over the zero value.
func NewOptions(opts ...Option) Options {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

func (o Options) withDefaults() Options {
	if o.QueueBound <= 0 {
		o.QueueBound = DefaultQueueBound
	}
	if o.Read.Weight <= 0 && o.Write.Weight <= 0 && o.Search.Weight <= 0 {
		o.Read.Weight, o.Write.Weight, o.Search.Weight = DefaultReadWeight, DefaultWriteWeight, DefaultSearchWeight
	}
	if o.RetryAfterMin <= 0 {
		o.RetryAfterMin = DefaultRetryAfterMin
	}
	if o.RetryAfterMax <= 0 {
		o.RetryAfterMax = DefaultRetryAfterMax
	}
	if o.RetryAfterMax < o.RetryAfterMin {
		o.RetryAfterMax = o.RetryAfterMin
	}
	return o
}

// bucket is a non-blocking token bucket. Unlike costmodel.RateLimiter
// (which blocks — exactly the queue growth admission exists to prevent)
// it refuses immediately and reports how long until a token exists.
type bucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// take consumes a token if available; otherwise it returns the wait
// until one will be.
func (b *bucket) take(now time.Time) (time.Duration, bool) {
	if b.rate <= 0 {
		return 0, true
	}
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	} else {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	return time.Duration((1 - b.tokens) / b.rate * float64(time.Second)), false
}

type classState struct {
	limit    int // guaranteed run-queue slots
	inflight int
	bucket   bucket
	sheds    *obs.Counter
}

// Controller is one server's admission gate. Admit at dispatch, release
// when the op finishes; everything over the bound sheds typed.
type Controller struct {
	opts Options

	mu      sync.Mutex
	classes [numClasses]classState
	// ewmaService tracks smoothed per-op residence time (admit →
	// release) and feeds the RetryAfter drain estimate.
	ewmaService time.Duration

	depth   *obs.Gauge
	waitLat *obs.Histogram
}

// NewController builds a Controller from Options. A nil *Controller is a
// valid no-op gate, so servers can leave admission unconfigured.
func NewController(o Options) *Controller {
	o = o.withDefaults()
	label := obs.Label{K: "server", V: o.Server}
	c := &Controller{
		opts: o,
		depth: obs.Default.Gauge("gondi_admission_queue_depth",
			"Work currently admitted (queued + executing).", label),
		waitLat: obs.Default.Histogram("gondi_admission_wait_seconds",
			"Latency of the admission decision itself.", label),
	}
	total := o.Read.Weight + o.Write.Weight + o.Search.Weight
	if total <= 0 {
		total = 1
	}
	for cl := Class(0); cl < numClasses; cl++ {
		co := *o.class(cl)
		limit := o.QueueBound * co.Weight / total
		if limit < 1 {
			// No class is ever completely shut out: even weight-0
			// classes keep one slot.
			limit = 1
		}
		burst := float64(co.Burst)
		if co.Rate > 0 && co.Burst <= 0 {
			burst = co.Rate / 10
			if burst < 1 {
				burst = 1
			}
		}
		c.classes[cl] = classState{
			limit:  limit,
			bucket: bucket{rate: co.Rate, burst: burst},
			sheds: obs.Default.Counter("gondi_admission_shed_total",
				"Requests shed by admission control.",
				label, obs.Label{K: "class", V: cl.String()}),
		}
	}
	return c
}

// Admit asks to run one op of the given class. On success it returns a
// release func that MUST be called when the op finishes (it frees the
// run-queue slot and updates the drain estimate). On saturation it
// returns a *core.ServerBusyError with a RetryAfter hint — LIFO shed:
// the caller's brand-new op is the one rejected, admitted work is never
// aborted.
func (c *Controller) Admit(class Class, endpoint, op string) (func(), error) {
	if c == nil || c.opts.Disabled {
		return func() {}, nil
	}
	start := time.Now()
	c.mu.Lock()
	cs := &c.classes[class]
	if cs.inflight >= cs.limit {
		hint := c.drainHintLocked(cs)
		c.mu.Unlock()
		cs.sheds.Inc()
		c.waitLat.Since(start)
		return nil, &core.ServerBusyError{Endpoint: endpoint, Op: op, RetryAfter: hint}
	}
	if wait, ok := cs.bucket.take(start); !ok {
		hint := c.clampHint(wait)
		c.mu.Unlock()
		cs.sheds.Inc()
		c.waitLat.Since(start)
		return nil, &core.ServerBusyError{Endpoint: endpoint, Op: op, RetryAfter: hint}
	}
	cs.inflight++
	c.mu.Unlock()
	c.depth.Add(1)
	c.waitLat.Since(start)

	var once sync.Once
	return func() {
		once.Do(func() {
			took := time.Since(start)
			c.mu.Lock()
			cs.inflight--
			// EWMA with alpha 1/8: cheap, integer-only smoothing of the
			// residence time that feeds the shed hint.
			if c.ewmaService == 0 {
				c.ewmaService = took
			} else {
				c.ewmaService += (took - c.ewmaService) / 8
			}
			c.mu.Unlock()
			c.depth.Add(-1)
		})
	}, nil
}

// drainHintLocked estimates when a slot frees: the class's backlog
// divided by its parallelism, at the smoothed per-op residence time.
func (c *Controller) drainHintLocked(cs *classState) time.Duration {
	svc := c.ewmaService
	if svc <= 0 {
		svc = c.opts.RetryAfterMin
	}
	// A full class drains one slot per svc on average; hint half a
	// residence time so retries land as slots open rather than after
	// the whole queue turns over.
	return c.clampHint(svc / 2)
}

func (c *Controller) clampHint(d time.Duration) time.Duration {
	if d < c.opts.RetryAfterMin {
		return c.opts.RetryAfterMin
	}
	if d > c.opts.RetryAfterMax {
		return c.opts.RetryAfterMax
	}
	return d
}

// Depth reports currently admitted work (all classes). Diagnostic.
func (c *Controller) Depth() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for i := range c.classes {
		n += c.classes[i].inflight
	}
	return n
}
