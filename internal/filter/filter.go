// Package filter implements RFC 4515 (LDAP string) search filters: parsing,
// string rendering, and evaluation against attribute sets.
//
// The filter grammar supported is the common subset used by JNDI directory
// searches and LDAP:
//
//	filter     = "(" filtercomp ")"
//	filtercomp = and / or / not / item
//	and        = "&" filterlist
//	or         = "|" filterlist
//	not        = "!" filter
//	item       = simple / present / substring
//	simple     = attr ("=" / "~=" / ">=" / "<=") value
//	present    = attr "=*"
//	substring  = attr "=" [initial] "*" *(any "*") [final]
//
// Values may escape special characters with a backslash followed by two hex
// digits (RFC 4515 §3), e.g. `\2a` for '*'.
package filter

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Op identifies a filter node kind.
type Op int

// Filter node kinds.
const (
	OpAnd Op = iota
	OpOr
	OpNot
	OpEqual
	OpApprox
	OpGreaterEq
	OpLessEq
	OpPresent
	OpSubstring
)

func (o Op) String() string {
	switch o {
	case OpAnd:
		return "&"
	case OpOr:
		return "|"
	case OpNot:
		return "!"
	case OpEqual:
		return "="
	case OpApprox:
		return "~="
	case OpGreaterEq:
		return ">="
	case OpLessEq:
		return "<="
	case OpPresent:
		return "=*"
	case OpSubstring:
		return "=(substr)"
	default:
		return "?"
	}
}

// Node is a parsed filter expression tree node.
type Node struct {
	Op       Op
	Children []*Node // for OpAnd, OpOr, OpNot
	Attr     string  // for leaf ops
	Value    string  // for simple ops
	// Substring pieces: Initial and Final may be empty; Any holds the
	// middle fragments, in order.
	Initial string
	Any     []string
	Final   string
}

// SyntaxError describes a filter parse failure and where it occurred.
type SyntaxError struct {
	Input string
	Pos   int
	Msg   string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("filter: syntax error at %d in %q: %s", e.Pos, e.Input, e.Msg)
}

// Parse parses an RFC 4515 filter string into a Node tree.
func Parse(s string) (*Node, error) {
	p := &parser{in: s}
	p.skipSpace()
	n, err := p.parseFilter()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, p.errf("trailing input")
	}
	return n, nil
}

// MustParse is Parse but panics on error; intended for constant filters.
func MustParse(s string) *Node {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	in  string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Input: p.in, Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) parseFilter() (*Node, error) {
	if p.pos >= len(p.in) || p.in[p.pos] != '(' {
		return nil, p.errf("expected '('")
	}
	p.pos++
	n, err := p.parseComp()
	if err != nil {
		return nil, err
	}
	if p.pos >= len(p.in) || p.in[p.pos] != ')' {
		return nil, p.errf("expected ')'")
	}
	p.pos++
	return n, nil
}

func (p *parser) parseComp() (*Node, error) {
	if p.pos >= len(p.in) {
		return nil, p.errf("unexpected end of filter")
	}
	switch p.in[p.pos] {
	case '&', '|':
		op := OpAnd
		if p.in[p.pos] == '|' {
			op = OpOr
		}
		p.pos++
		var kids []*Node
		for p.pos < len(p.in) && p.in[p.pos] == '(' {
			k, err := p.parseFilter()
			if err != nil {
				return nil, err
			}
			kids = append(kids, k)
		}
		if len(kids) == 0 {
			return nil, p.errf("empty %s list", op)
		}
		return &Node{Op: op, Children: kids}, nil
	case '!':
		p.pos++
		k, err := p.parseFilter()
		if err != nil {
			return nil, err
		}
		return &Node{Op: OpNot, Children: []*Node{k}}, nil
	default:
		return p.parseItem()
	}
}

func isAttrChar(c byte) bool {
	return c == '-' || c == '.' || c == ';' ||
		(c >= '0' && c <= '9') || (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z')
}

func (p *parser) parseItem() (*Node, error) {
	start := p.pos
	for p.pos < len(p.in) && isAttrChar(p.in[p.pos]) {
		p.pos++
	}
	attr := p.in[start:p.pos]
	if attr == "" {
		return nil, p.errf("expected attribute name")
	}
	if p.pos >= len(p.in) {
		return nil, p.errf("expected operator")
	}
	var op Op
	switch p.in[p.pos] {
	case '=':
		op = OpEqual
		p.pos++
	case '~':
		op = OpApprox
		p.pos++
		if p.pos >= len(p.in) || p.in[p.pos] != '=' {
			return nil, p.errf("expected '=' after '~'")
		}
		p.pos++
	case '>':
		op = OpGreaterEq
		p.pos++
		if p.pos >= len(p.in) || p.in[p.pos] != '=' {
			return nil, p.errf("expected '=' after '>'")
		}
		p.pos++
	case '<':
		op = OpLessEq
		p.pos++
		if p.pos >= len(p.in) || p.in[p.pos] != '=' {
			return nil, p.errf("expected '=' after '<'")
		}
		p.pos++
	default:
		return nil, p.errf("expected operator, got %q", p.in[p.pos])
	}

	// Scan the value up to the closing ')', honouring escapes and
	// collecting '*' positions (only meaningful for OpEqual).
	var frag strings.Builder
	var frags []string
	stars := 0
	for p.pos < len(p.in) && p.in[p.pos] != ')' {
		c := p.in[p.pos]
		switch c {
		case '(':
			return nil, p.errf("unescaped '(' in value")
		case '\\':
			if p.pos+2 >= len(p.in) {
				return nil, p.errf("truncated escape")
			}
			v, err := strconv.ParseUint(p.in[p.pos+1:p.pos+3], 16, 8)
			if err != nil {
				return nil, p.errf("bad escape %q", p.in[p.pos:p.pos+3])
			}
			frag.WriteByte(byte(v))
			p.pos += 3
		case '*':
			if op != OpEqual {
				return nil, p.errf("'*' only valid with '='")
			}
			frags = append(frags, frag.String())
			frag.Reset()
			stars++
			p.pos++
		default:
			frag.WriteByte(c)
			p.pos++
		}
	}
	frags = append(frags, frag.String())

	if stars == 0 {
		if op == OpEqual && frags[0] == "" {
			return nil, p.errf("empty value")
		}
		return &Node{Op: op, Attr: attr, Value: frags[0]}, nil
	}
	// Presence: attr=*
	if stars == 1 && frags[0] == "" && frags[1] == "" {
		return &Node{Op: OpPresent, Attr: attr}, nil
	}
	n := &Node{Op: OpSubstring, Attr: attr, Initial: frags[0], Final: frags[len(frags)-1]}
	for _, f := range frags[1 : len(frags)-1] {
		if f == "" {
			continue // consecutive '*' collapse
		}
		n.Any = append(n.Any, f)
	}
	return n, nil
}

// escapeValue escapes RFC 4515 special characters in a literal value.
func escapeValue(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '*', '(', ')', '\\', 0:
			fmt.Fprintf(&b, `\%02x`, c)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// String renders the node back to RFC 4515 filter syntax. Parse(n.String())
// yields a tree equivalent to n.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *Node) render(b *strings.Builder) {
	b.WriteByte('(')
	switch n.Op {
	case OpAnd, OpOr:
		if n.Op == OpAnd {
			b.WriteByte('&')
		} else {
			b.WriteByte('|')
		}
		for _, k := range n.Children {
			k.render(b)
		}
	case OpNot:
		b.WriteByte('!')
		n.Children[0].render(b)
	case OpEqual:
		b.WriteString(n.Attr)
		b.WriteByte('=')
		b.WriteString(escapeValue(n.Value))
	case OpApprox:
		b.WriteString(n.Attr)
		b.WriteString("~=")
		b.WriteString(escapeValue(n.Value))
	case OpGreaterEq:
		b.WriteString(n.Attr)
		b.WriteString(">=")
		b.WriteString(escapeValue(n.Value))
	case OpLessEq:
		b.WriteString(n.Attr)
		b.WriteString("<=")
		b.WriteString(escapeValue(n.Value))
	case OpPresent:
		b.WriteString(n.Attr)
		b.WriteString("=*")
	case OpSubstring:
		b.WriteString(n.Attr)
		b.WriteByte('=')
		b.WriteString(escapeValue(n.Initial))
		b.WriteByte('*')
		for _, a := range n.Any {
			b.WriteString(escapeValue(a))
			b.WriteByte('*')
		}
		b.WriteString(escapeValue(n.Final))
	}
	b.WriteByte(')')
}

// Values supplies attribute values for evaluation. Attribute name matching is
// the caller's concern; implementations should treat names case-insensitively
// to match LDAP semantics.
type Values interface {
	// Get returns the values of the named attribute, or nil if absent.
	Get(attr string) []string
}

// MapValues adapts a map[string][]string to the Values interface with
// case-insensitive attribute names.
type MapValues map[string][]string

// Get implements Values.
func (m MapValues) Get(attr string) []string {
	if v, ok := m[attr]; ok {
		return v
	}
	lower := strings.ToLower(attr)
	for k, v := range m {
		if strings.ToLower(k) == lower {
			return v
		}
	}
	return nil
}

// Matches evaluates the filter against the given attribute values.
// Comparison for >= and <= is numeric when both sides parse as integers,
// otherwise lexicographic (case-insensitive). Approximate match (~=) is a
// case-insensitive, space-insensitive equality.
func (n *Node) Matches(vals Values) bool {
	switch n.Op {
	case OpAnd:
		for _, k := range n.Children {
			if !k.Matches(vals) {
				return false
			}
		}
		return true
	case OpOr:
		for _, k := range n.Children {
			if k.Matches(vals) {
				return true
			}
		}
		return false
	case OpNot:
		return !n.Children[0].Matches(vals)
	case OpPresent:
		return len(vals.Get(n.Attr)) > 0
	case OpEqual:
		for _, v := range vals.Get(n.Attr) {
			if strings.EqualFold(v, n.Value) {
				return true
			}
		}
		return false
	case OpApprox:
		want := normalizeApprox(n.Value)
		for _, v := range vals.Get(n.Attr) {
			if normalizeApprox(v) == want {
				return true
			}
		}
		return false
	case OpGreaterEq:
		for _, v := range vals.Get(n.Attr) {
			if compareOrdered(v, n.Value) >= 0 {
				return true
			}
		}
		return false
	case OpLessEq:
		for _, v := range vals.Get(n.Attr) {
			if compareOrdered(v, n.Value) <= 0 {
				return true
			}
		}
		return false
	case OpSubstring:
		for _, v := range vals.Get(n.Attr) {
			if matchSubstring(v, n.Initial, n.Any, n.Final) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

func normalizeApprox(s string) string {
	return strings.ToLower(strings.Join(strings.Fields(s), " "))
}

func compareOrdered(a, b string) int {
	ai, aerr := strconv.ParseInt(strings.TrimSpace(a), 10, 64)
	bi, berr := strconv.ParseInt(strings.TrimSpace(b), 10, 64)
	if aerr == nil && berr == nil {
		switch {
		case ai < bi:
			return -1
		case ai > bi:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(strings.ToLower(a), strings.ToLower(b))
}

func matchSubstring(v, initial string, any []string, final string) bool {
	lv := strings.ToLower(v)
	if initial != "" {
		li := strings.ToLower(initial)
		if !strings.HasPrefix(lv, li) {
			return false
		}
		lv = lv[len(li):]
	}
	for _, a := range any {
		la := strings.ToLower(a)
		i := strings.Index(lv, la)
		if i < 0 {
			return false
		}
		lv = lv[i+len(la):]
	}
	if final != "" {
		return strings.HasSuffix(lv, strings.ToLower(final))
	}
	return true
}

// Attributes returns the sorted set of attribute names referenced by the
// filter. Useful for providers that pre-fetch attributes.
func (n *Node) Attributes() []string {
	set := map[string]bool{}
	n.walk(func(m *Node) {
		if m.Attr != "" {
			set[strings.ToLower(m.Attr)] = true
		}
	})
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (n *Node) walk(f func(*Node)) {
	f(n)
	for _, k := range n.Children {
		k.walk(f)
	}
}

// Equal reports whether two filter trees are structurally identical.
func (n *Node) Equal(o *Node) bool {
	if n == nil || o == nil {
		return n == o
	}
	if n.Op != o.Op || n.Attr != o.Attr || n.Value != o.Value ||
		n.Initial != o.Initial || n.Final != o.Final ||
		len(n.Any) != len(o.Any) || len(n.Children) != len(o.Children) {
		return false
	}
	for i := range n.Any {
		if n.Any[i] != o.Any[i] {
			return false
		}
	}
	for i := range n.Children {
		if !n.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}
