package filter

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParseSimple(t *testing.T) {
	tests := []struct {
		in   string
		op   Op
		attr string
		val  string
	}{
		{"(cn=alice)", OpEqual, "cn", "alice"},
		{"(cn~=al ice)", OpApprox, "cn", "al ice"},
		{"(age>=30)", OpGreaterEq, "age", "30"},
		{"(age<=5)", OpLessEq, "age", "5"},
		{"(objectClass=*)", OpPresent, "objectClass", ""},
	}
	for _, tc := range tests {
		n, err := Parse(tc.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.in, err)
		}
		if n.Op != tc.op || n.Attr != tc.attr || n.Value != tc.val {
			t.Errorf("Parse(%q) = %+v, want op=%v attr=%q val=%q", tc.in, n, tc.op, tc.attr, tc.val)
		}
	}
}

func TestParseComposite(t *testing.T) {
	n, err := Parse("(&(objectClass=person)(|(cn=a)(cn=b))(!(dept=hr)))")
	if err != nil {
		t.Fatal(err)
	}
	if n.Op != OpAnd || len(n.Children) != 3 {
		t.Fatalf("got %+v", n)
	}
	if n.Children[1].Op != OpOr || len(n.Children[1].Children) != 2 {
		t.Errorf("or branch wrong: %+v", n.Children[1])
	}
	if n.Children[2].Op != OpNot {
		t.Errorf("not branch wrong: %+v", n.Children[2])
	}
}

func TestParseSubstring(t *testing.T) {
	n, err := Parse("(cn=ali*ce*bob)")
	if err != nil {
		t.Fatal(err)
	}
	if n.Op != OpSubstring || n.Initial != "ali" || n.Final != "bob" || !reflect.DeepEqual(n.Any, []string{"ce"}) {
		t.Fatalf("got %+v", n)
	}
	// Leading and trailing stars.
	n, err = Parse("(cn=*mid*)")
	if err != nil {
		t.Fatal(err)
	}
	if n.Op != OpSubstring || n.Initial != "" || n.Final != "" || !reflect.DeepEqual(n.Any, []string{"mid"}) {
		t.Fatalf("got %+v", n)
	}
}

func TestParseEscapes(t *testing.T) {
	n, err := Parse(`(cn=a\2ab)`)
	if err != nil {
		t.Fatal(err)
	}
	if n.Op != OpEqual || n.Value != "a*b" {
		t.Fatalf("got %+v", n)
	}
	n, err = Parse(`(cn=\28paren\29)`)
	if err != nil {
		t.Fatal(err)
	}
	if n.Value != "(paren)" {
		t.Fatalf("got %q", n.Value)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "cn=a", "(cn=a", "(cn=a))", "(=a)", "(cn)", "(&)", "(|)",
		"(cn=a)(cn=b)", "(!(cn=a)(cn=b))", `(cn=\2)`, `(cn=\zz)`,
		"(age>=x*)", "(cn=(a))", "(cn=)",
	}
	for _, s := range bad {
		if n, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded: %+v", s, n)
		}
	}
}

func TestMatches(t *testing.T) {
	vals := MapValues{
		"cn":          {"Alice Smith"},
		"age":         {"34"},
		"objectClass": {"person", "top"},
		"dept":        {"engineering"},
	}
	tests := []struct {
		f    string
		want bool
	}{
		{"(cn=alice smith)", true}, // case-insensitive
		{"(cn=bob)", false},
		{"(cn=Ali*)", true},
		{"(cn=*Smith)", true},
		{"(cn=*ice*Smi*)", true},
		{"(cn=*zzz*)", false},
		{"(age>=30)", true},
		{"(age>=35)", false},
		{"(age<=34)", true},
		{"(age>=9)", true}, // numeric, not lexicographic
		{"(objectClass=*)", true},
		{"(missing=*)", false},
		{"(cn~=ALICE   SMITH)", true},
		{"(&(objectClass=person)(age>=30))", true},
		{"(&(objectClass=person)(age>=99))", false},
		{"(|(cn=bob)(dept=engineering))", true},
		{"(!(dept=hr))", true},
		{"(!(dept=engineering))", false},
	}
	for _, tc := range tests {
		n, err := Parse(tc.f)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.f, err)
		}
		if got := n.Matches(vals); got != tc.want {
			t.Errorf("%q matches = %v, want %v", tc.f, got, tc.want)
		}
	}
}

func TestAttributes(t *testing.T) {
	n := MustParse("(&(A=1)(|(b=2)(a=3))(!(C=*)))")
	got := n.Attributes()
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Attributes() = %v, want %v", got, want)
	}
}

func TestStringRoundTrip(t *testing.T) {
	cases := []string{
		"(cn=alice)",
		"(&(a=1)(b=2))",
		"(|(a=1)(!(b=2)))",
		"(cn=ab*cd*ef)",
		"(cn=*x*)",
		"(objectClass=*)",
		"(age>=10)",
		`(cn=we\28ird\29\2a)`,
	}
	for _, s := range cases {
		n := MustParse(s)
		n2, err := Parse(n.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", s, n.String(), err)
		}
		if !n.Equal(n2) {
			t.Errorf("round trip of %q: %q != %q", s, n.String(), n2.String())
		}
	}
}

// randomNode builds a random filter tree for property testing.
func randomNode(r *rand.Rand, depth int) *Node {
	attrs := []string{"cn", "sn", "age", "dept", "objectClass"}
	randVal := func() string {
		n := r.Intn(6) + 1
		b := make([]byte, n)
		const alphabet = "abcXYZ019 *()\\-"
		for i := range b {
			b[i] = alphabet[r.Intn(len(alphabet))]
		}
		return string(b)
	}
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(5) {
		case 0:
			return &Node{Op: OpEqual, Attr: attrs[r.Intn(len(attrs))], Value: randVal()}
		case 1:
			return &Node{Op: OpPresent, Attr: attrs[r.Intn(len(attrs))]}
		case 2:
			return &Node{Op: OpGreaterEq, Attr: attrs[r.Intn(len(attrs))], Value: randVal()}
		case 3:
			n := &Node{Op: OpSubstring, Attr: attrs[r.Intn(len(attrs))], Initial: randVal()}
			for i := 0; i < r.Intn(3); i++ {
				n.Any = append(n.Any, randVal())
			}
			if r.Intn(2) == 0 {
				n.Final = randVal()
			}
			return n
		default:
			return &Node{Op: OpApprox, Attr: attrs[r.Intn(len(attrs))], Value: randVal()}
		}
	}
	switch r.Intn(3) {
	case 0:
		n := &Node{Op: OpAnd}
		for i := 0; i < r.Intn(3)+1; i++ {
			n.Children = append(n.Children, randomNode(r, depth-1))
		}
		return n
	case 1:
		n := &Node{Op: OpOr}
		for i := 0; i < r.Intn(3)+1; i++ {
			n.Children = append(n.Children, randomNode(r, depth-1))
		}
		return n
	default:
		return &Node{Op: OpNot, Children: []*Node{randomNode(r, depth-1)}}
	}
}

// Property: for any tree, String() parses back to an equal tree.
func TestPropertyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		n := randomNode(r, 4)
		s := n.String()
		n2, err := Parse(s)
		if err != nil {
			t.Fatalf("iter %d: Parse(%q): %v", i, s, err)
		}
		if !n.Equal(n2) {
			t.Fatalf("iter %d: round trip mismatch: %q vs %q", i, s, n2.String())
		}
	}
}

// Property: escaping is invertible for arbitrary byte strings used as equality values.
func TestPropertyEscapeInvertible(t *testing.T) {
	f := func(val []byte) bool {
		if len(val) == 0 {
			return true
		}
		n := &Node{Op: OpEqual, Attr: "a", Value: string(val)}
		n2, err := Parse(n.String())
		if err != nil {
			return false
		}
		return n2.Op == OpEqual && n2.Value == string(val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan — !(a&b) matches iff (!a)|(!b) matches.
func TestPropertyDeMorgan(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	vals := MapValues{"cn": {"abc"}, "age": {"10"}, "dept": {"x y"}}
	for i := 0; i < 300; i++ {
		a, b := randomNode(r, 2), randomNode(r, 2)
		notAnd := &Node{Op: OpNot, Children: []*Node{{Op: OpAnd, Children: []*Node{a, b}}}}
		orNot := &Node{Op: OpOr, Children: []*Node{
			{Op: OpNot, Children: []*Node{a}},
			{Op: OpNot, Children: []*Node{b}},
		}}
		if notAnd.Matches(vals) != orNot.Matches(vals) {
			t.Fatalf("iter %d: De Morgan violated for %s", i, notAnd)
		}
	}
}

func TestMapValuesCaseInsensitive(t *testing.T) {
	m := MapValues{"ObjectClass": {"person"}}
	if got := m.Get("objectclass"); len(got) != 1 || got[0] != "person" {
		t.Errorf("Get(objectclass) = %v", got)
	}
	if got := m.Get("missing"); got != nil {
		t.Errorf("Get(missing) = %v", got)
	}
}

func TestSubstringEdge(t *testing.T) {
	// Overlapping fragments must match in order without reuse.
	n := MustParse("(cn=a*aa*a)")
	if n.Matches(MapValues{"cn": {"aaaa"}}) != true {
		t.Error("aaaa should match a*aa*a")
	}
	if n.Matches(MapValues{"cn": {"aaa"}}) {
		t.Error("aaa should not match a*aa*a")
	}
}

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse("(&(objectClass=person)(|(cn=alice*)(cn=*bob))(age>=30))"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatches(b *testing.B) {
	n := MustParse("(&(objectClass=person)(|(cn=alice*)(cn=*bob))(age>=30))")
	vals := MapValues{"cn": {"alice smith"}, "age": {"34"}, "objectClass": {"person"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !n.Matches(vals) {
			b.Fatal("no match")
		}
	}
}
