package cache

import (
	"context"
	"fmt"
	"strings"

	"gondi/internal/core"
)

// CachedContext is the caching wrapper handed out for a root (and, via
// View, for subtrees of it). All views of one root share its entry table:
// entries are keyed by full root-relative names, so a hit populated
// through one view serves every other.
//
// Read operations (Lookup, List, ListBindings, GetAttributes, Search) are
// cached; write operations pass straight through to the provider and then
// invalidate overlapping entries; LookupLink and Watch pass through
// untouched (links are resolution-sensitive, watches are live channels).
type CachedContext struct {
	r    *root
	base core.Name
}

var (
	_ core.DirContext    = (*CachedContext)(nil)
	_ core.ContextViewer = (*CachedContext)(nil)
)

// View implements core.ContextViewer: it rebases the wrapper onto a
// subtree without a wire round trip, keeping the shared entry table.
func (cc *CachedContext) View(rest core.Name) core.Context {
	if rest.IsEmpty() {
		return cc
	}
	return &CachedContext{r: cc.r, base: cc.base.Concat(rest)}
}

// fullName resolves name against the view base. ok is false for names the
// cache cannot key (URL names, unparseable names); those bypass the cache.
func (cc *CachedContext) fullName(name string) (core.Name, bool) {
	if core.IsURLName(name) {
		return core.Name{}, false
	}
	n, err := core.ParseName(name)
	if err != nil {
		return core.Name{}, false
	}
	return cc.base.Concat(n), true
}

// opKey builds the entry key for one operation kind on one full name.
func opKey(kind byte, full core.Name, extra string) string {
	return string(kind) + "\x00" + full.String() + "\x00" + extra
}

// Lookup implements core.Context with read-through caching.
func (cc *CachedContext) Lookup(ctx context.Context, name string) (any, error) {
	full, ok := cc.fullName(name)
	if !ok {
		return cc.r.getInner().Lookup(ctx, name)
	}
	if name == "" {
		// JNDI: looking up the empty name yields a new context sharing this
		// one's state. The view is exactly that, with caching kept.
		return &CachedContext{r: cc.r, base: cc.base}, nil
	}
	return cc.r.cachedOp(ctx, opKey('l', full, ""), full,
		func(inner core.Context) (any, error) {
			return inner.Lookup(ctx, full.String())
		})
}

// LookupLink passes through uncached: link-sensitive resolution must see
// the provider's current link object.
func (cc *CachedContext) LookupLink(ctx context.Context, name string) (any, error) {
	full, ok := cc.fullName(name)
	if !ok {
		return cc.r.getInner().LookupLink(ctx, name)
	}
	return cc.r.getInner().LookupLink(ctx, full.String())
}

// List implements core.Context with read-through caching.
func (cc *CachedContext) List(ctx context.Context, name string) ([]core.NameClassPair, error) {
	full, ok := cc.fullName(name)
	if !ok {
		return cc.r.getInner().List(ctx, name)
	}
	v, err := cc.r.cachedOp(ctx, opKey('L', full, ""), full,
		func(inner core.Context) (any, error) {
			return inner.List(ctx, full.String())
		})
	if err != nil {
		return nil, err
	}
	pairs := v.([]core.NameClassPair)
	out := make([]core.NameClassPair, len(pairs))
	copy(out, pairs)
	return out, nil
}

// ListBindings implements core.Context with read-through caching.
func (cc *CachedContext) ListBindings(ctx context.Context, name string) ([]core.Binding, error) {
	full, ok := cc.fullName(name)
	if !ok {
		return cc.r.getInner().ListBindings(ctx, name)
	}
	v, err := cc.r.cachedOp(ctx, opKey('B', full, ""), full,
		func(inner core.Context) (any, error) {
			return inner.ListBindings(ctx, full.String())
		})
	if err != nil {
		return nil, err
	}
	bs := v.([]core.Binding)
	out := make([]core.Binding, len(bs))
	copy(out, bs)
	return out, nil
}

// GetAttributes implements core.DirContext with read-through caching,
// keyed per requested attribute-ID set.
func (cc *CachedContext) GetAttributes(ctx context.Context, name string, attrIDs ...string) (*core.Attributes, error) {
	d, full, ok := cc.dirInner("getAttributes", name)
	if !ok {
		return nil, core.Errf("getAttributes", name, core.ErrNotSupported)
	}
	if full.IsEmpty() && core.IsURLName(name) {
		return d.GetAttributes(ctx, name, attrIDs...)
	}
	v, err := cc.r.cachedOp(ctx, opKey('a', full, strings.Join(attrIDs, "\x1f")), full,
		func(inner core.Context) (any, error) {
			di, ok := inner.(core.DirContext)
			if !ok {
				return nil, core.Errf("getAttributes", name, core.ErrNotSupported)
			}
			return di.GetAttributes(ctx, full.String(), attrIDs...)
		})
	if err != nil {
		return nil, err
	}
	return v.(*core.Attributes).Clone(), nil
}

// Search implements core.DirContext with read-through caching, keyed per
// (base, filter, controls).
func (cc *CachedContext) Search(ctx context.Context, name, filterStr string, controls *core.SearchControls) ([]core.SearchResult, error) {
	d, full, ok := cc.dirInner("search", name)
	if !ok {
		return nil, core.Errf("search", name, core.ErrNotSupported)
	}
	if full.IsEmpty() && core.IsURLName(name) {
		return d.Search(ctx, name, filterStr, controls)
	}
	v, err := cc.r.cachedOp(ctx, opKey('s', full, filterStr+"\x1f"+controlsKey(controls)), full,
		func(inner core.Context) (any, error) {
			di, ok := inner.(core.DirContext)
			if !ok {
				return nil, core.Errf("search", name, core.ErrNotSupported)
			}
			return di.Search(ctx, full.String(), filterStr, controls)
		})
	if err != nil {
		return nil, err
	}
	rs := v.([]core.SearchResult)
	out := make([]core.SearchResult, len(rs))
	copy(out, rs)
	for i := range out {
		out[i].Attributes = out[i].Attributes.Clone()
	}
	return out, nil
}

// controlsKey serializes the cache-relevant fields of SearchControls.
func controlsKey(c *core.SearchControls) string {
	if c == nil {
		return "-"
	}
	return fmt.Sprintf("%d|%d|%d|%v|%v", c.Scope, c.CountLimit, c.TimeLimit, c.ReturnAttrs, c.ReturnObject)
}

// --- write path: pass through, then invalidate -------------------------

// Bind implements core.Context; the provider's atomic test-and-set runs
// untouched, then overlapping entries (including a cached ErrNotFound for
// this name) are evicted.
func (cc *CachedContext) Bind(ctx context.Context, name string, obj any) error {
	full, ok := cc.fullName(name)
	if !ok {
		return cc.r.getInner().Bind(ctx, name, obj)
	}
	if err := cc.r.getInner().Bind(ctx, full.String(), obj); err != nil {
		return err
	}
	cc.r.invalidate(full.String())
	return nil
}

// BindAttrs implements core.DirContext.
func (cc *CachedContext) BindAttrs(ctx context.Context, name string, obj any, attrs *core.Attributes) error {
	d, full, ok := cc.dirInner("bind", name)
	if !ok {
		return core.Errf("bind", name, core.ErrNotSupported)
	}
	target := name
	if !(full.IsEmpty() && core.IsURLName(name)) {
		target = full.String()
	}
	if err := d.BindAttrs(ctx, target, obj, attrs); err != nil {
		return err
	}
	cc.r.invalidate(target)
	return nil
}

// Rebind implements core.Context.
func (cc *CachedContext) Rebind(ctx context.Context, name string, obj any) error {
	full, ok := cc.fullName(name)
	if !ok {
		return cc.r.getInner().Rebind(ctx, name, obj)
	}
	if err := cc.r.getInner().Rebind(ctx, full.String(), obj); err != nil {
		return err
	}
	cc.r.invalidate(full.String())
	return nil
}

// RebindAttrs implements core.DirContext.
func (cc *CachedContext) RebindAttrs(ctx context.Context, name string, obj any, attrs *core.Attributes) error {
	d, full, ok := cc.dirInner("rebind", name)
	if !ok {
		return core.Errf("rebind", name, core.ErrNotSupported)
	}
	target := name
	if !(full.IsEmpty() && core.IsURLName(name)) {
		target = full.String()
	}
	if err := d.RebindAttrs(ctx, target, obj, attrs); err != nil {
		return err
	}
	cc.r.invalidate(target)
	return nil
}

// Unbind implements core.Context.
func (cc *CachedContext) Unbind(ctx context.Context, name string) error {
	full, ok := cc.fullName(name)
	if !ok {
		return cc.r.getInner().Unbind(ctx, name)
	}
	if err := cc.r.getInner().Unbind(ctx, full.String()); err != nil {
		return err
	}
	cc.r.invalidate(full.String())
	return nil
}

// Rename implements core.Context; both the old and new names invalidate.
func (cc *CachedContext) Rename(ctx context.Context, oldName, newName string) error {
	oldFull, ok1 := cc.fullName(oldName)
	newFull, ok2 := cc.fullName(newName)
	if !ok1 || !ok2 {
		return cc.r.getInner().Rename(ctx, oldName, newName)
	}
	if err := cc.r.getInner().Rename(ctx, oldFull.String(), newFull.String()); err != nil {
		return err
	}
	cc.r.invalidate(oldFull.String(), newFull.String())
	return nil
}

// CreateSubcontext implements core.Context. The created context is
// returned unwrapped-equivalent: a cached view of the new subtree.
func (cc *CachedContext) CreateSubcontext(ctx context.Context, name string) (core.Context, error) {
	full, ok := cc.fullName(name)
	if !ok {
		return cc.r.getInner().CreateSubcontext(ctx, name)
	}
	if _, err := cc.r.getInner().CreateSubcontext(ctx, full.String()); err != nil {
		return nil, err
	}
	cc.r.invalidate(full.String())
	return &CachedContext{r: cc.r, base: full}, nil
}

// CreateSubcontextAttrs implements core.DirContext.
func (cc *CachedContext) CreateSubcontextAttrs(ctx context.Context, name string, attrs *core.Attributes) (core.DirContext, error) {
	d, full, ok := cc.dirInner("createSubcontext", name)
	if !ok {
		return nil, core.Errf("createSubcontext", name, core.ErrNotSupported)
	}
	if full.IsEmpty() && core.IsURLName(name) {
		return d.CreateSubcontextAttrs(ctx, name, attrs)
	}
	if _, err := d.CreateSubcontextAttrs(ctx, full.String(), attrs); err != nil {
		return nil, err
	}
	cc.r.invalidate(full.String())
	return &CachedContext{r: cc.r, base: full}, nil
}

// DestroySubcontext implements core.Context.
func (cc *CachedContext) DestroySubcontext(ctx context.Context, name string) error {
	full, ok := cc.fullName(name)
	if !ok {
		return cc.r.getInner().DestroySubcontext(ctx, name)
	}
	if err := cc.r.getInner().DestroySubcontext(ctx, full.String()); err != nil {
		return err
	}
	cc.r.invalidate(full.String())
	return nil
}

// ModifyAttributes implements core.DirContext.
func (cc *CachedContext) ModifyAttributes(ctx context.Context, name string, mods []core.AttributeMod) error {
	d, full, ok := cc.dirInner("modifyAttributes", name)
	if !ok {
		return core.Errf("modifyAttributes", name, core.ErrNotSupported)
	}
	target := name
	if !(full.IsEmpty() && core.IsURLName(name)) {
		target = full.String()
	}
	if err := d.ModifyAttributes(ctx, target, mods); err != nil {
		return err
	}
	cc.r.invalidate(target)
	return nil
}

// dirInner resolves the provider as a DirContext plus the full name for
// name. ok is false only when the provider has no directory support; a
// name the cache cannot key comes back with an empty full name (callers
// detect that via full.IsEmpty() && IsURLName and pass name through raw).
func (cc *CachedContext) dirInner(op, name string) (core.DirContext, core.Name, bool) {
	d, ok := cc.r.getInner().(core.DirContext)
	if !ok {
		return nil, core.Name{}, false
	}
	full, keyable := cc.fullName(name)
	if !keyable {
		return d, core.Name{}, true
	}
	return d, full, true
}

// Watch implements core.EventContext by delegating to the provider when it
// supports events: the caller gets live provider events for the subtree,
// independent of the cache's own invalidation watch.
func (cc *CachedContext) Watch(ctx context.Context, target string, scope core.SearchScope, l core.Listener) (func(), error) {
	ec, ok := cc.r.getInner().(core.EventContext)
	if !ok {
		return nil, core.Errf("watch", target, core.ErrNotSupported)
	}
	full, keyable := cc.fullName(target)
	if keyable {
		target = full.String()
	}
	return ec.Watch(ctx, target, scope, l)
}

// Reference implements core.Referenceable when the provider does, so a
// cached context can still be bound into another naming system.
func (cc *CachedContext) Reference() (*core.Reference, error) {
	if rf, ok := cc.r.getInner().(core.Referenceable); ok {
		return rf.Reference()
	}
	return nil, core.ErrNotSupported
}

// NameInNamespace reports the provider root's name extended by the view
// base.
func (cc *CachedContext) NameInNamespace() (string, error) {
	nin, err := cc.r.getInner().NameInNamespace()
	if err != nil {
		return "", err
	}
	if cc.base.IsEmpty() {
		return nin, nil
	}
	n, err := core.ParseName(nin)
	if err != nil {
		return cc.base.String(), nil
	}
	return n.Concat(cc.base).String(), nil
}

// Environment returns the provider's environment.
func (cc *CachedContext) Environment() map[string]any {
	return cc.r.getInner().Environment()
}

// Close tears the root down when called on the root wrapper itself;
// closing a subtree view is a no-op, since views share the root's
// connection and entry table.
func (cc *CachedContext) Close() error {
	if !cc.base.IsEmpty() {
		return nil
	}
	return cc.r.close()
}

// Stats exposes the owning cache's counters (handy in tests and tools).
func (cc *CachedContext) Stats() Stats { return cc.r.c.Stats() }
