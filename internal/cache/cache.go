// Package cache is the read-through, invalidation-aware caching layer for
// the federated name space. It wraps provider contexts opened during
// InitialContext resolution so that repeated Lookup/List/GetAttributes/
// Search operations — including the CannotProceedError continuations that
// stitch federation hops together — are served locally instead of costing
// a wire RPC per operation.
//
// Coherence is per provider root:
//
//   - Event mode: where the provider implements core.EventContext (Jini
//     natively, HDNS via pluglet events, the in-memory provider), the cache
//     registers one subtree Watch at the root and evicts entries as
//     added/removed/changed/renamed events arrive. This is safe exactly
//     where the paper's §5.1 lease/event machinery exists: the provider
//     guarantees event delivery for the lifetime of the registration, and
//     reports the registration's death (core.EventWatchLost) when the
//     connection is torn.
//   - TTL mode: providers without events (DNS, LDAP, filesystem) get
//     time-based expiry. A provider may advise per-name TTLs by
//     implementing TTLAdvisor (the DNS provider reports record TTLs).
//   - Degradation: when a watch dies the affected root is flushed and
//     flipped to TTL mode, and a background goroutine re-registers the
//     watch with capped exponential backoff (internal/retry), re-dialing
//     the root if the old connection is gone (each attempt gated by the
//     endpoint's circuit breaker). On success the root is flushed once
//     more and returns to event mode.
//   - Serve-stale: when a refill fails with a transport-class error (the
//     backend is unreachable or its breaker is open) and an expired entry
//     is still within its stale window (Config.StaleTTL), the cache serves
//     the stale value instead of the error, extends its freshness briefly,
//     and marks the serve in metrics and traces. Disable with
//     Config.DisableServeStale.
//
// Negative results (core.ErrNotFound) are cached briefly, and concurrent
// misses for one key are collapsed into a single provider call
// (singleflight), so a thundering herd costs one RPC.
//
// The cache also memoizes resolution itself: one wire client per
// (scheme, authority), so OpenURL stops re-dialing per operation.
//
// Write operations are never cached: they pass straight through to the
// provider (preserving atomic Bind semantics) and then invalidate every
// entry whose name overlaps the written name.
package cache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gondi/internal/core"
	"gondi/internal/obs"
	"gondi/internal/retry"
)

// Process-wide cache metrics (every Cache instance records into the same
// family; per-instance numbers remain available via Stats).
var (
	mHits = obs.Default.Counter("gondi_cache_hits_total",
		"Positive cache hits.")
	mNegHits = obs.Default.Counter("gondi_cache_negative_hits_total",
		"Cached ErrNotFound answers served.")
	mMisses = obs.Default.Counter("gondi_cache_misses_total",
		"Cache fills that went to the provider.")
	mCollapsed = obs.Default.Counter("gondi_cache_collapsed_total",
		"Calls that piggybacked on an in-flight fill (singleflight).")
	mEvictions = obs.Default.Counter("gondi_cache_evictions_total",
		"Invalidation-driven entry removals (writes, events, flushes, LRU).")
	mExpirations = obs.Default.Counter("gondi_cache_expirations_total",
		"Entries whose TTL lapsed (removed, or retained for serve-stale).")
	mWatchLosses = obs.Default.Counter("gondi_cache_watch_losses_total",
		"Invalidation watches lost (root degraded to TTL mode).")
	mRewatches = obs.Default.Counter("gondi_cache_rewatches_total",
		"Invalidation watches successfully re-registered after a loss.")
	mStaleServes = obs.Default.Counter("gondi_cache_stale_serves_total",
		"Expired entries served because the refill hit a transport failure.")
)

// Config is the cache configuration. It aliases core.CacheConfig so that
// core.Open's WithCache option and this package share one type without an
// import cycle.
type Config = core.CacheConfig

// Defaults applied for zero Config fields.
const (
	// DefaultTTL bounds positive-entry staleness in TTL mode.
	DefaultTTL = 30 * time.Second
	// DefaultNegativeTTL bounds how long ErrNotFound is remembered.
	DefaultNegativeTTL = 5 * time.Second
	// DefaultMaxEntries bounds each root's entry count (LRU beyond it).
	DefaultMaxEntries = 4096
	// DefaultStaleTTL bounds how long past expiry a positive entry remains
	// eligible for degraded serve-stale when the backend is unreachable.
	DefaultStaleTTL = 2 * time.Minute
	// backstopTTL bounds event-mode entries: events keep them fresh, so
	// expiry exists only to cap memory held for names never touched again.
	backstopTTL = time.Hour
	// staleExtension is the freshness a stale serve grants the entry: long
	// enough that a burst during an outage is absorbed by the ordinary hit
	// path instead of re-probing per call, short enough that recovery is
	// noticed quickly once the endpoint heals.
	staleExtension = time.Second
)

// rewatchPolicy drives watch re-registration after a loss: effectively
// unbounded attempts (the cache's Close cancels the loop), capped backoff.
var rewatchPolicy = retry.Policy{
	MaxAttempts: 1 << 30,
	BaseDelay:   50 * time.Millisecond,
	MaxDelay:    5 * time.Second,
}

// TTLAdvisor is implemented by provider contexts that know how long a
// name's data may be cached (the DNS provider reports the minimum record
// TTL it saw for the name; the LDAP provider an operator-configured value).
// Structural: providers implement it without importing this package.
type TTLAdvisor interface {
	AdviseTTL(name string) (time.Duration, bool)
}

// Register installs this package as the middleware behind
// core.Open(core.WithCache(...)). Call it once alongside the provider
// Register calls.
func Register() {
	core.RegisterCacheFactory(func(cfg core.CacheConfig, env map[string]any) core.Middleware {
		return New(cfg, env)
	})
}

// Stats is a point-in-time snapshot of cache counters.
type Stats struct {
	// Hits counts positive cache hits, NegativeHits cached ErrNotFound
	// answers, Misses fills that went to the provider.
	Hits, NegativeHits, Misses int64
	// Collapsed counts calls that piggybacked on another caller's
	// in-flight fill instead of issuing their own RPC.
	Collapsed int64
	// Evictions counts invalidation-driven removals (writes, events,
	// flushes, LRU); Expirations counts TTL-driven removals.
	Evictions, Expirations int64
	// WatchLosses counts event-channel failures; Rewatches counts
	// successful re-registrations after a loss.
	WatchLosses, Rewatches int64
	// StaleServes counts expired entries served in degraded mode because
	// the refill failed with a transport-class error.
	StaleServes int64
}

// Cache implements core.Middleware. One Cache serves one InitialContext
// (one environment); roots — one per (scheme, authority) plus one per
// wrapped default context — each hold their own entry table and watch.
type Cache struct {
	cfg Config
	env map[string]any

	closeCtx    context.Context
	closeCancel context.CancelFunc
	wg          sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	roots   map[string]*root
	opening map[string]*rootCall
	wrapSeq int

	hits, negHits, misses, collapsed atomic.Int64
	evictions, expirations           atomic.Int64
	watchLosses, rewatches           atomic.Int64
	staleServes                      atomic.Int64
}

var _ core.Middleware = (*Cache)(nil)

// New builds a cache middleware with the given configuration and
// environment (the environment is used to open and re-open provider
// roots). Zero Config fields take the package defaults.
func New(cfg Config, env map[string]any) *Cache {
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.NegativeTTL <= 0 {
		cfg.NegativeTTL = DefaultNegativeTTL
	}
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if cfg.StaleTTL <= 0 {
		cfg.StaleTTL = DefaultStaleTTL
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Cache{
		cfg:         cfg,
		env:         env,
		closeCtx:    ctx,
		closeCancel: cancel,
		roots:       map[string]*root{},
		opening:     map[string]*rootCall{},
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:         c.hits.Load(),
		NegativeHits: c.negHits.Load(),
		Misses:       c.misses.Load(),
		Collapsed:    c.collapsed.Load(),
		Evictions:    c.evictions.Load(),
		Expirations:  c.expirations.Load(),
		WatchLosses:  c.watchLosses.Load(),
		Rewatches:    c.rewatches.Load(),
		StaleServes:  c.staleServes.Load(),
	}
}

// Config returns the effective configuration (defaults filled in).
func (c *Cache) Config() Config { return c.cfg }

// rootCall collapses concurrent dials for the same root.
type rootCall struct {
	done chan struct{}
}

// OpenURL implements core.Middleware: it resolves rawURL's scheme and
// authority to a cached provider root — dialing at most once per root,
// with concurrent first-opens collapsed — and returns the caching wrapper
// plus the URL's path as the remaining name.
func (c *Cache) OpenURL(ctx context.Context, rawURL string, env map[string]any) (core.Context, core.Name, error) {
	if err := core.CtxErr(ctx); err != nil {
		return nil, core.Name{}, err
	}
	u, err := core.ParseURLName(rawURL)
	if err != nil {
		return nil, core.Name{}, err
	}
	key := u.Scheme + "://" + u.Authority
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, core.Name{}, core.ErrClosed
		}
		if r, ok := c.roots[key]; ok {
			c.mu.Unlock()
			return r.wrapper, u.Path, nil
		}
		if cl, ok := c.opening[key]; ok {
			c.mu.Unlock()
			select {
			case <-cl.done:
				continue // either cached now, or the leader failed: retry
			case <-ctx.Done():
				return nil, core.Name{}, ctx.Err()
			}
		}
		cl := &rootCall{done: make(chan struct{})}
		c.opening[key] = cl
		c.mu.Unlock()

		inner, _, err := core.OpenURL(ctx, key, env)
		c.mu.Lock()
		delete(c.opening, key)
		if err != nil {
			c.mu.Unlock()
			close(cl.done)
			return nil, core.Name{}, err
		}
		if c.closed {
			c.mu.Unlock()
			close(cl.done)
			_ = inner.Close()
			return nil, core.Name{}, core.ErrClosed
		}
		c.mu.Unlock()
		r := c.newRoot(ctx, key, key, inner)
		c.mu.Lock()
		c.roots[key] = r
		c.mu.Unlock()
		close(cl.done)
		return r.wrapper, u.Path, nil
	}
}

// WrapContext implements core.Middleware: it gives an already-open context
// (the InitialContext's default context) its own cache root.
func (c *Cache) WrapContext(inner core.Context) core.Context {
	c.mu.Lock()
	c.wrapSeq++
	key := fmt.Sprintf("wrapped:%d", c.wrapSeq)
	c.mu.Unlock()
	r := c.newRoot(context.Background(), key, "", inner)
	c.mu.Lock()
	c.roots[key] = r
	c.mu.Unlock()
	return r.wrapper
}

// Wrap is WrapContext typed for tests and direct embedding: it returns the
// concrete caching wrapper around an existing context.
func (c *Cache) Wrap(inner core.Context) *CachedContext {
	return c.WrapContext(inner).(*CachedContext)
}

// Close implements core.Middleware: it cancels background re-registration,
// deregisters every watch, and closes every cached provider root.
func (c *Cache) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	roots := make([]*root, 0, len(c.roots))
	for _, r := range c.roots {
		roots = append(roots, r)
	}
	c.roots = map[string]*root{}
	c.mu.Unlock()
	c.closeCancel()
	var err error
	for _, r := range roots {
		if e := r.close(); e != nil && err == nil {
			err = e
		}
	}
	c.wg.Wait()
	return err
}

// dropRoot detaches a root closed via its wrapper.
func (c *Cache) dropRoot(key string) {
	c.mu.Lock()
	delete(c.roots, key)
	c.mu.Unlock()
}
