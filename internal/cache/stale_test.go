package cache

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"gondi/internal/core"
)

// failCtx wraps fakeCtx so reads can be switched to fail with an arbitrary
// error, simulating a backend that stopped answering.
type failCtx struct {
	*fakeCtx
	mu  sync.Mutex
	err error
}

func (f *failCtx) setErr(err error) {
	f.mu.Lock()
	f.err = err
	f.mu.Unlock()
}

func (f *failCtx) Lookup(ctx context.Context, name string) (any, error) {
	f.mu.Lock()
	err := f.err
	f.mu.Unlock()
	if err != nil {
		f.fakeCtx.mu.Lock()
		f.fakeCtx.lookups++
		f.fakeCtx.mu.Unlock()
		return nil, err
	}
	return f.fakeCtx.Lookup(ctx, name)
}

func transportErr() error {
	return &core.CommunicationError{Endpoint: "backend:1", Err: errors.New("connection refused")}
}

func TestServeStaleOnTransportFailure(t *testing.T) {
	f := &failCtx{fakeCtx: newFakeCtx()}
	f.bound["svc"] = "v1"
	c := New(Config{TTL: 20 * time.Millisecond, DisableEvents: true}, nil)
	defer c.Close()
	w := c.Wrap(f)
	ctx := context.Background()

	if _, err := w.Lookup(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	f.setErr(transportErr())
	got, err := w.Lookup(ctx, "svc")
	if err != nil {
		t.Fatalf("degraded lookup failed: %v (want stale value)", err)
	}
	if got != "v1" {
		t.Fatalf("degraded lookup = %v, want stale v1", got)
	}
	if s := c.Stats(); s.StaleServes != 1 {
		t.Errorf("stale serves = %d, want 1", s.StaleServes)
	}
}

func TestServeStaleExtendsFreshness(t *testing.T) {
	f := &failCtx{fakeCtx: newFakeCtx()}
	f.bound["svc"] = "v1"
	c := New(Config{TTL: 20 * time.Millisecond, DisableEvents: true}, nil)
	defer c.Close()
	w := c.Wrap(f)
	ctx := context.Background()

	if _, err := w.Lookup(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	f.setErr(transportErr())
	if _, err := w.Lookup(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	fills := f.lookupCount()
	// The stale serve granted a short freshness extension: an immediate
	// retry must ride the hit path, not re-probe the dead backend.
	if _, err := w.Lookup(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	if got := f.lookupCount(); got != fills {
		t.Errorf("provider lookups = %d, want %d (extension should absorb the burst)", got, fills)
	}
}

func TestServeStaleRecovers(t *testing.T) {
	f := &failCtx{fakeCtx: newFakeCtx()}
	f.bound["svc"] = "v1"
	c := New(Config{TTL: 20 * time.Millisecond, DisableEvents: true}, nil)
	defer c.Close()
	w := c.Wrap(f)
	ctx := context.Background()

	if _, err := w.Lookup(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	f.setErr(transportErr())
	if _, err := w.Lookup(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	// Backend heals and the data changed meanwhile; once the extension
	// lapses the next fill must return the fresh value.
	f.setErr(nil)
	f.fakeCtx.mu.Lock()
	f.fakeCtx.bound["svc"] = "v2"
	f.fakeCtx.mu.Unlock()
	time.Sleep(staleExtension + 50*time.Millisecond)
	got, err := w.Lookup(ctx, "svc")
	if err != nil {
		t.Fatal(err)
	}
	if got != "v2" {
		t.Errorf("post-recovery lookup = %v, want v2", got)
	}
}

func TestServeStaleOnlyForTransportErrors(t *testing.T) {
	f := &failCtx{fakeCtx: newFakeCtx()}
	f.bound["svc"] = "v1"
	c := New(Config{TTL: 20 * time.Millisecond, DisableEvents: true}, nil)
	defer c.Close()
	w := c.Wrap(f)
	ctx := context.Background()

	if _, err := w.Lookup(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	semantic := errors.New("schema violation")
	f.setErr(semantic)
	if _, err := w.Lookup(ctx, "svc"); !errors.Is(err, semantic) {
		t.Fatalf("semantic failure returned %v, want it surfaced (no stale serve)", err)
	}
	if s := c.Stats(); s.StaleServes != 0 {
		t.Errorf("stale serves = %d, want 0", s.StaleServes)
	}
}

func TestServeStaleWindowBounded(t *testing.T) {
	f := &failCtx{fakeCtx: newFakeCtx()}
	f.bound["svc"] = "v1"
	c := New(Config{TTL: 20 * time.Millisecond, StaleTTL: 30 * time.Millisecond, DisableEvents: true}, nil)
	defer c.Close()
	w := c.Wrap(f)
	ctx := context.Background()

	if _, err := w.Lookup(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond) // past TTL + StaleTTL
	f.setErr(transportErr())
	var ce *core.CommunicationError
	if _, err := w.Lookup(ctx, "svc"); !errors.As(err, &ce) {
		t.Fatalf("lookup past the stale window returned %v, want the transport error", err)
	}
}

func TestServeStaleDisabled(t *testing.T) {
	f := &failCtx{fakeCtx: newFakeCtx()}
	f.bound["svc"] = "v1"
	c := New(Config{TTL: 20 * time.Millisecond, DisableServeStale: true, DisableEvents: true}, nil)
	defer c.Close()
	w := c.Wrap(f)
	ctx := context.Background()

	if _, err := w.Lookup(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	f.setErr(transportErr())
	var ce *core.CommunicationError
	if _, err := w.Lookup(ctx, "svc"); !errors.As(err, &ce) {
		t.Fatalf("lookup with serve-stale disabled returned %v, want the transport error", err)
	}
}

func TestNegativeEntriesNeverServedStale(t *testing.T) {
	f := &failCtx{fakeCtx: newFakeCtx()}
	c := New(Config{NegativeTTL: 20 * time.Millisecond, DisableEvents: true}, nil)
	defer c.Close()
	w := c.Wrap(f)
	ctx := context.Background()

	if _, err := w.Lookup(ctx, "ghost"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("lookup = %v, want ErrNotFound", err)
	}
	time.Sleep(40 * time.Millisecond)
	f.setErr(transportErr())
	// A stale "does not exist" would be an invented answer: the transport
	// failure must surface instead.
	var ce *core.CommunicationError
	if _, err := w.Lookup(ctx, "ghost"); !errors.As(err, &ce) {
		t.Fatalf("lookup = %v, want the transport error, not a stale ErrNotFound", err)
	}
	if s := c.Stats(); s.StaleServes != 0 {
		t.Errorf("stale serves = %d, want 0", s.StaleServes)
	}
}

func TestWriteInvalidatesStaleCandidate(t *testing.T) {
	f := &failCtx{fakeCtx: newFakeCtx()}
	f.bound["svc"] = "v1"
	c := New(Config{TTL: 20 * time.Millisecond, DisableEvents: true}, nil)
	defer c.Close()
	w := c.Wrap(f)
	ctx := context.Background()

	if _, err := w.Lookup(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	// The write removes the expired entry outright: a later degraded read
	// must not resurrect the pre-write value.
	if err := w.Unbind(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	f.setErr(transportErr())
	var ce *core.CommunicationError
	if _, err := w.Lookup(ctx, "svc"); !errors.As(err, &ce) {
		t.Fatalf("post-write degraded lookup = %v, want the transport error", err)
	}
	if s := c.Stats(); s.StaleServes != 0 {
		t.Errorf("stale serves = %d, want 0", s.StaleServes)
	}
}
