package cache

import (
	"context"
	"errors"
	"time"

	"gondi/internal/core"
	"gondi/internal/obs"
)

var _ core.BatchContext = (*CachedContext)(nil)

// batchPlan is the per-item outcome of classifying a batch against the
// entry table under one lock acquisition.
type batchPlan struct {
	// lead positions fill from the provider in one batched call; join
	// positions piggyback on another caller's in-flight fill.
	lead, join []int
	calls      map[int]*call // join position -> flight to wait on
	leadCalls  map[int]*call // lead position -> flight we own
	gen        uint64
	inner      core.Context
	closed     bool
}

// classify walks the entry table once for a whole batch: hits are written
// straight into out, everything else becomes a lead (we fill) or a join
// (someone else is filling the same key right now).
func (r *root) classify(ctx context.Context, keys []string, out []core.BatchResult, skip []bool) batchPlan {
	p := batchPlan{calls: map[int]*call{}, leadCalls: map[int]*call{}}
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	p.gen = r.gen
	p.inner = r.inner
	if r.closed {
		p.closed = true
		for i := range keys {
			if !skip[i] {
				p.lead = append(p.lead, i)
			}
		}
		return p
	}
	for i, key := range keys {
		if skip[i] {
			continue
		}
		if key == "" { // unkeyable: always filled, never cached
			p.lead = append(p.lead, i)
			continue
		}
		if e, ok := r.entries[key]; ok && now.Before(e.expires) {
			r.lru.MoveToFront(e.elem)
			out[i] = core.BatchResult{Value: e.val, Err: e.err}
			skip[i] = true
			if e.err != nil && errors.Is(e.err, core.ErrNotFound) {
				r.c.negHits.Add(1)
				mNegHits.Inc()
				obs.CacheEvent(ctx, "negative-hit")
			} else {
				r.c.hits.Add(1)
				mHits.Inc()
				obs.CacheEvent(ctx, "hit")
			}
			continue
		}
		// Expired entries inside their stale window are left in place (the
		// unary path's serve-stale can still use them if our fill fails);
		// a successful fill below overwrites them.
		if cl, ok := r.flight[key]; ok {
			p.join = append(p.join, i)
			p.calls[i] = cl
			continue
		}
		cl := &call{done: make(chan struct{})}
		r.flight[key] = cl
		p.lead = append(p.lead, i)
		p.leadCalls[i] = cl
	}
	return p
}

// settle publishes one lead position's result: the flight completes, and
// cacheable results enter the entry table unless an invalidation fenced
// this fill's generation.
func (r *root) settle(p batchPlan, i int, key string, base core.Name, res core.BatchResult, ferr error) {
	cl := p.leadCalls[i]
	if cl == nil {
		return
	}
	cl.val, cl.err = res.Value, res.Err
	if ferr != nil {
		cl.val, cl.err = nil, ferr
	}
	r.mu.Lock()
	delete(r.flight, key)
	if ferr == nil && !r.closed && r.gen == p.gen {
		if exp, ok := r.cacheable(base, res.Value, res.Err); ok {
			e := &entry{key: key, base: base, val: res.Value, err: res.Err, expires: exp, staleUntil: exp}
			if r.staleEligible(res.Err) {
				e.staleUntil = exp.Add(r.c.cfg.StaleTTL)
			}
			r.insertLocked(e)
		}
	}
	r.mu.Unlock()
	close(cl.done)
}

// abortLeads completes every owned flight with err (used when the whole
// batched fill failed before producing per-item results).
func (r *root) abortLeads(p batchPlan, keys []string, err error) {
	for i, cl := range p.leadCalls {
		cl.err = err
		r.mu.Lock()
		delete(r.flight, keys[i])
		r.mu.Unlock()
		close(cl.done)
	}
}

// cachedBatch is the shared read path for LookupMany/GetAttributesMany:
// hits serve from the table, concurrent misses collapse into in-flight
// unary fills, and the remaining misses go to the provider as ONE batched
// call (core.LookupMany-style helper passed as fill).
func (r *root) cachedBatch(
	ctx context.Context,
	keys []string, bases []core.Name, out []core.BatchResult, skip []bool,
	fill func(inner core.Context, idxs []int) ([]core.BatchResult, error),
	refill func(inner core.Context, i int) core.BatchResult,
) ([]core.BatchResult, error) {
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	p := r.classify(ctx, keys, out, skip)
	if len(p.lead) > 0 {
		for range p.lead {
			r.c.misses.Add(1)
			mMisses.Inc()
		}
		obs.CacheEvent(ctx, "miss")
		res, err := fill(p.inner, p.lead)
		if err != nil {
			if !p.closed {
				r.abortLeads(p, keys, err)
			}
			return nil, err
		}
		for k, i := range p.lead {
			out[i] = res[k]
			if !p.closed {
				r.settle(p, i, keys[i], bases[i], res[k], nil)
			}
		}
	}
	for _, i := range p.join {
		cl := p.calls[i]
		r.c.collapsed.Add(1)
		mCollapsed.Inc()
		obs.CacheEvent(ctx, "collapsed")
		select {
		case <-cl.done:
			// A leader aborted by its own context leaves its error behind;
			// it is not ours to inherit while our context is still alive.
			if cl.err != nil && ctx.Err() == nil &&
				(errors.Is(cl.err, context.Canceled) || errors.Is(cl.err, context.DeadlineExceeded)) {
				out[i] = refill(p.inner, i)
				continue
			}
			out[i] = core.BatchResult{Value: cl.val, Err: cl.err}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// LookupMany implements core.BatchContext: cache hits are served locally,
// and every miss rides one batched provider call (native batch frames
// when the provider supports them, a loop otherwise), each miss settling
// its own singleflight entry.
func (cc *CachedContext) LookupMany(ctx context.Context, names []string) ([]core.BatchResult, error) {
	out := make([]core.BatchResult, len(names))
	skip := make([]bool, len(names))
	keys := make([]string, len(names))
	bases := make([]core.Name, len(names))
	wire := make([]string, len(names)) // the name the provider sees
	for i, name := range names {
		full, ok := cc.fullName(name)
		if !ok {
			wire[i] = name // unkeyable: pass through raw, uncached
			continue
		}
		if name == "" {
			out[i] = core.BatchResult{Value: &CachedContext{r: cc.r, base: cc.base}}
			skip[i] = true
			continue
		}
		keys[i] = opKey('l', full, "")
		bases[i] = full
		wire[i] = full.String()
	}
	return cc.r.cachedBatch(ctx, keys, bases, out, skip,
		func(inner core.Context, idxs []int) ([]core.BatchResult, error) {
			sub := make([]string, len(idxs))
			for k, i := range idxs {
				sub[k] = wire[i]
			}
			return core.LookupMany(ctx, inner, sub)
		},
		func(inner core.Context, i int) core.BatchResult {
			v, err := inner.Lookup(ctx, wire[i])
			return core.BatchResult{Value: v, Err: err}
		})
}

// GetAttributesMany implements core.BatchContext with the same hit/join/
// batched-fill split, keyed per requested attribute-ID set. Served
// attribute sets are cloned, exactly as the unary path clones.
func (cc *CachedContext) GetAttributesMany(ctx context.Context, names []string, attrIDs ...string) ([]core.BatchResult, error) {
	if _, ok := cc.r.getInner().(core.DirContext); !ok {
		return nil, core.Errf("getAttributesMany", "", core.ErrNotSupported)
	}
	out := make([]core.BatchResult, len(names))
	skip := make([]bool, len(names))
	keys := make([]string, len(names))
	bases := make([]core.Name, len(names))
	wire := make([]string, len(names))
	extra := joinIDs(attrIDs)
	for i, name := range names {
		full, ok := cc.fullName(name)
		if !ok {
			wire[i] = name
			continue
		}
		keys[i] = opKey('a', full, extra)
		bases[i] = full
		wire[i] = full.String()
	}
	res, err := cc.r.cachedBatch(ctx, keys, bases, out, skip,
		func(inner core.Context, idxs []int) ([]core.BatchResult, error) {
			sub := make([]string, len(idxs))
			for k, i := range idxs {
				sub[k] = wire[i]
			}
			return core.GetAttributesMany(ctx, inner, sub, attrIDs...)
		},
		func(inner core.Context, i int) core.BatchResult {
			di, ok := inner.(core.DirContext)
			if !ok {
				return core.BatchResult{Err: core.Errf("getAttributes", names[i], core.ErrNotSupported)}
			}
			v, err := di.GetAttributes(ctx, wire[i], attrIDs...)
			return core.BatchResult{Value: v, Err: err}
		})
	if err != nil {
		return nil, err
	}
	for i := range res {
		if a, ok := res[i].Value.(*core.Attributes); ok {
			res[i].Value = a.Clone()
		}
	}
	return res, nil
}

// joinIDs mirrors the unary GetAttributes cache key's attr-ID component.
func joinIDs(ids []string) string {
	s := ""
	for k, id := range ids {
		if k > 0 {
			s += "\x1f"
		}
		s += id
	}
	return s
}

// BindMany implements core.BatchContext: writes pass through to the
// provider in one batched call, then every successfully bound name
// invalidates overlapping entries (one table sweep for the whole batch).
func (cc *CachedContext) BindMany(ctx context.Context, reqs []core.BindRequest) ([]core.BatchResult, error) {
	resolved := make([]core.BindRequest, len(reqs))
	targets := make([]string, len(reqs))
	for i, r := range reqs {
		resolved[i] = r
		targets[i] = r.Name
		if full, ok := cc.fullName(r.Name); ok {
			resolved[i].Name = full.String()
			targets[i] = full.String()
		}
	}
	out, err := core.BindMany(ctx, cc.r.getInner(), resolved)
	if err != nil {
		return nil, err
	}
	var written []string
	for i := range out {
		if out[i].Err == nil {
			written = append(written, targets[i])
		}
	}
	if len(written) > 0 {
		cc.r.invalidate(written...)
	}
	return out, nil
}
