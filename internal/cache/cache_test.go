package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gondi/internal/core"
)

// fakeCtx is an in-package event-capable DirContext with call counting.
type fakeCtx struct {
	mu         sync.Mutex
	bound      map[string]any
	attrs      map[string]*core.Attributes
	lookups    int
	lists      int
	getAttrs   int
	searches   int
	listeners  map[int]core.Listener
	listenSeq  int
	watchErr   error
	lookupGate chan struct{} // when non-nil, Lookup blocks on it
	closed     bool
}

func newFakeCtx() *fakeCtx {
	return &fakeCtx{
		bound:     map[string]any{},
		attrs:     map[string]*core.Attributes{},
		listeners: map[int]core.Listener{},
	}
}

func (f *fakeCtx) lookupCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lookups
}

func (f *fakeCtx) fire(ev core.NamingEvent) {
	f.mu.Lock()
	ls := make([]core.Listener, 0, len(f.listeners))
	for _, l := range f.listeners {
		ls = append(ls, l)
	}
	f.mu.Unlock()
	for _, l := range ls {
		l(ev)
	}
}

// breakWatch drops every registered listener (after telling them), and
// optionally makes future Watch calls fail.
func (f *fakeCtx) breakWatch(futureErr error) {
	f.mu.Lock()
	ls := make([]core.Listener, 0, len(f.listeners))
	for _, l := range f.listeners {
		ls = append(ls, l)
	}
	f.listeners = map[int]core.Listener{}
	f.watchErr = futureErr
	f.mu.Unlock()
	for _, l := range ls {
		l(core.NamingEvent{Type: core.EventWatchLost})
	}
}

func (f *fakeCtx) allowWatch() {
	f.mu.Lock()
	f.watchErr = nil
	f.mu.Unlock()
}

func (f *fakeCtx) Lookup(_ context.Context, name string) (any, error) {
	f.mu.Lock()
	f.lookups++
	gate := f.lookupGate
	f.mu.Unlock()
	if gate != nil {
		<-gate
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if obj, ok := f.bound[name]; ok {
		return obj, nil
	}
	return nil, core.Errf("lookup", name, core.ErrNotFound)
}

func (f *fakeCtx) Bind(_ context.Context, name string, obj any) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.bound[name]; ok {
		return core.Errf("bind", name, core.ErrAlreadyBound)
	}
	f.bound[name] = obj
	return nil
}

func (f *fakeCtx) Rebind(_ context.Context, name string, obj any) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.bound[name] = obj
	return nil
}

func (f *fakeCtx) Unbind(_ context.Context, name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.bound, name)
	return nil
}

func (f *fakeCtx) Rename(_ context.Context, oldName, newName string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.bound[newName] = f.bound[oldName]
	delete(f.bound, oldName)
	return nil
}

func (f *fakeCtx) List(_ context.Context, name string) ([]core.NameClassPair, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lists++
	var out []core.NameClassPair
	for k := range f.bound {
		out = append(out, core.NameClassPair{Name: k, Class: "any"})
	}
	return out, nil
}

func (f *fakeCtx) ListBindings(_ context.Context, name string) ([]core.Binding, error) {
	return nil, nil
}

func (f *fakeCtx) CreateSubcontext(_ context.Context, name string) (core.Context, error) {
	return f, nil
}

func (f *fakeCtx) DestroySubcontext(_ context.Context, name string) error { return nil }

func (f *fakeCtx) LookupLink(ctx context.Context, name string) (any, error) {
	return f.Lookup(ctx, name)
}

func (f *fakeCtx) BindAttrs(ctx context.Context, name string, obj any, attrs *core.Attributes) error {
	if err := f.Bind(ctx, name, obj); err != nil {
		return err
	}
	f.mu.Lock()
	f.attrs[name] = attrs.Clone()
	f.mu.Unlock()
	return nil
}

func (f *fakeCtx) RebindAttrs(ctx context.Context, name string, obj any, attrs *core.Attributes) error {
	if err := f.Rebind(ctx, name, obj); err != nil {
		return err
	}
	f.mu.Lock()
	if attrs != nil {
		f.attrs[name] = attrs.Clone()
	}
	f.mu.Unlock()
	return nil
}

func (f *fakeCtx) GetAttributes(_ context.Context, name string, attrIDs ...string) (*core.Attributes, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.getAttrs++
	if a, ok := f.attrs[name]; ok {
		return a.Clone(), nil
	}
	return &core.Attributes{}, nil
}

func (f *fakeCtx) ModifyAttributes(_ context.Context, _ string, _ []core.AttributeMod) error {
	return core.ErrNotSupported
}

func (f *fakeCtx) Search(_ context.Context, _, _ string, _ *core.SearchControls) ([]core.SearchResult, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.searches++
	return []core.SearchResult{{Name: "hit"}}, nil
}

func (f *fakeCtx) CreateSubcontextAttrs(_ context.Context, _ string, _ *core.Attributes) (core.DirContext, error) {
	return f, nil
}

func (f *fakeCtx) NameInNamespace() (string, error) { return "", nil }
func (f *fakeCtx) Environment() map[string]any      { return nil }

func (f *fakeCtx) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}

func (f *fakeCtx) Watch(_ context.Context, target string, scope core.SearchScope, l core.Listener) (func(), error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.watchErr != nil {
		return nil, f.watchErr
	}
	f.listenSeq++
	id := f.listenSeq
	f.listeners[id] = l
	return func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		delete(f.listeners, id)
	}, nil
}

var _ core.DirContext = (*fakeCtx)(nil)
var _ core.EventContext = (*fakeCtx)(nil)

func TestReadThroughHit(t *testing.T) {
	f := newFakeCtx()
	f.bound["svc"] = "v1"
	c := New(Config{}, nil)
	defer c.Close()
	w := c.Wrap(f)
	ctx := context.Background()

	for i := 0; i < 5; i++ {
		v, err := w.Lookup(ctx, "svc")
		if err != nil || v != "v1" {
			t.Fatalf("lookup %d: %v %v", i, v, err)
		}
	}
	if got := f.lookupCount(); got != 1 {
		t.Errorf("provider lookups = %d, want 1", got)
	}
	if s := c.Stats(); s.Hits != 4 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 4 hits / 1 miss", s)
	}
}

func TestViewsShareEntryTable(t *testing.T) {
	f := newFakeCtx()
	f.bound["a/b/c"] = "deep"
	c := New(Config{}, nil)
	defer c.Close()
	w := c.Wrap(f)
	ctx := context.Background()

	if _, err := w.Lookup(ctx, "a/b/c"); err != nil {
		t.Fatal(err)
	}
	sub, err := core.ParseName("a/b")
	if err != nil {
		t.Fatal(err)
	}
	view := w.View(sub).(*CachedContext)
	if v, err := view.Lookup(ctx, "c"); err != nil || v != "deep" {
		t.Fatalf("view lookup: %v %v", v, err)
	}
	if got := f.lookupCount(); got != 1 {
		t.Errorf("provider lookups = %d, want 1 (view must hit the shared table)", got)
	}
}

func TestNegativeCaching(t *testing.T) {
	f := newFakeCtx()
	c := New(Config{}, nil)
	defer c.Close()
	w := c.Wrap(f)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := w.Lookup(ctx, "ghost"); !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("want ErrNotFound, got %v", err)
		}
	}
	if got := f.lookupCount(); got != 1 {
		t.Errorf("provider lookups = %d, want 1 (negative cached)", got)
	}
	if s := c.Stats(); s.NegativeHits != 2 {
		t.Errorf("negative hits = %d, want 2", s.NegativeHits)
	}

	// A successful Bind through the wrapper must evict the negative entry.
	if err := w.Bind(ctx, "ghost", "now-real"); err != nil {
		t.Fatal(err)
	}
	if v, err := w.Lookup(ctx, "ghost"); err != nil || v != "now-real" {
		t.Fatalf("post-bind lookup: %v %v", v, err)
	}
}

func TestNegativeCachingDisabled(t *testing.T) {
	f := newFakeCtx()
	c := New(Config{DisableNegative: true}, nil)
	defer c.Close()
	w := c.Wrap(f)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := w.Lookup(ctx, "ghost"); !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("want ErrNotFound, got %v", err)
		}
	}
	if got := f.lookupCount(); got != 3 {
		t.Errorf("provider lookups = %d, want 3 (negative caching off)", got)
	}
}

func TestSingleflightCollapse(t *testing.T) {
	f := newFakeCtx()
	f.bound["svc"] = "v1"
	gate := make(chan struct{})
	f.lookupGate = gate
	c := New(Config{}, nil)
	defer c.Close()
	w := c.Wrap(f)
	ctx := context.Background()

	const workers = 8
	var wg sync.WaitGroup
	var bad atomic.Int64
	start := make(chan struct{})
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if v, err := w.Lookup(ctx, "svc"); err != nil || v != "v1" {
				bad.Add(1)
			}
		}()
	}
	close(start)
	time.Sleep(20 * time.Millisecond) // let the herd pile onto the in-flight fill
	close(gate)
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d workers failed", bad.Load())
	}
	if got := f.lookupCount(); got != 1 {
		t.Errorf("provider lookups = %d, want 1 (herd collapsed)", got)
	}
	if s := c.Stats(); s.Collapsed != workers-1 {
		t.Errorf("collapsed = %d, want %d", s.Collapsed, workers-1)
	}
}

func TestLRUBound(t *testing.T) {
	f := newFakeCtx()
	for i := 0; i < 4; i++ {
		f.bound[fmt.Sprintf("n%d", i)] = i
	}
	c := New(Config{MaxEntries: 2}, nil)
	defer c.Close()
	w := c.Wrap(f)
	ctx := context.Background()

	for i := 0; i < 4; i++ {
		if _, err := w.Lookup(ctx, fmt.Sprintf("n%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Evictions < 2 {
		t.Errorf("evictions = %d, want >= 2", s.Evictions)
	}
	// n0 was evicted: a re-read must miss.
	before := f.lookupCount()
	if _, err := w.Lookup(ctx, "n0"); err != nil {
		t.Fatal(err)
	}
	if f.lookupCount() != before+1 {
		t.Error("expected provider re-read after LRU eviction")
	}
}

func TestTTLExpiry(t *testing.T) {
	f := newFakeCtx()
	f.bound["svc"] = "v1"
	c := New(Config{TTL: 30 * time.Millisecond, DisableEvents: true}, nil)
	defer c.Close()
	w := c.Wrap(f)
	ctx := context.Background()

	if _, err := w.Lookup(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Lookup(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	if got := f.lookupCount(); got != 1 {
		t.Fatalf("provider lookups = %d, want 1 before expiry", got)
	}
	time.Sleep(50 * time.Millisecond)
	if _, err := w.Lookup(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	if got := f.lookupCount(); got != 2 {
		t.Errorf("provider lookups = %d, want 2 after TTL expiry", got)
	}
	if s := c.Stats(); s.Expirations != 1 {
		t.Errorf("expirations = %d, want 1", s.Expirations)
	}
}

// ttlAdvised wraps fakeCtx with a per-name TTL advice.
type ttlAdvised struct {
	*fakeCtx
	ttl time.Duration
}

func (a *ttlAdvised) AdviseTTL(string) (time.Duration, bool) { return a.ttl, true }

func TestTTLAdvisorOverridesDefault(t *testing.T) {
	f := newFakeCtx()
	f.bound["svc"] = "v1"
	adv := &ttlAdvised{fakeCtx: f, ttl: 25 * time.Millisecond}
	// Default TTL is 30s; the advisor must shorten it.
	c := New(Config{DisableEvents: true}, nil)
	defer c.Close()
	w := c.Wrap(adv)
	ctx := context.Background()

	if _, err := w.Lookup(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if _, err := w.Lookup(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	if got := f.lookupCount(); got != 2 {
		t.Errorf("provider lookups = %d, want 2 (advised TTL expired)", got)
	}
}

func TestEventInvalidation(t *testing.T) {
	f := newFakeCtx()
	f.bound["svc"] = "v1"
	c := New(Config{TTL: time.Hour}, nil)
	defer c.Close()
	w := c.Wrap(f)
	ctx := context.Background()

	if _, err := w.Lookup(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	// Out-of-band change plus the provider's event.
	f.mu.Lock()
	f.bound["svc"] = "v2"
	f.mu.Unlock()
	f.fire(core.NamingEvent{Type: core.EventObjectChanged, Name: "svc"})

	v, err := w.Lookup(ctx, "svc")
	if err != nil || v != "v2" {
		t.Fatalf("post-event lookup = %v %v, want v2", v, err)
	}
}

func TestEventInvalidationIsHierarchical(t *testing.T) {
	f := newFakeCtx()
	f.bound["a/b"] = "v1"
	c := New(Config{TTL: time.Hour}, nil)
	defer c.Close()
	w := c.Wrap(f)
	ctx := context.Background()

	if _, err := w.Lookup(ctx, "a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.List(ctx, ""); err != nil {
		t.Fatal(err)
	}
	// An event under "a" must drop both the deep entry and the root List.
	f.fire(core.NamingEvent{Type: core.EventObjectAdded, Name: "a/b/c"})
	before := f.lookupCount()
	if _, err := w.Lookup(ctx, "a/b"); err != nil {
		t.Fatal(err)
	}
	if f.lookupCount() != before+1 {
		t.Error("descendant event must evict ancestor-path entries")
	}
}

func TestWatchLossDegradesToTTLAndRecovers(t *testing.T) {
	f := newFakeCtx()
	f.bound["svc"] = "v1"
	c := New(Config{TTL: 40 * time.Millisecond}, nil)
	defer c.Close()
	w := c.Wrap(f)
	ctx := context.Background()

	if _, err := w.Lookup(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	// Kill the watch; keep re-registration failing for now.
	f.breakWatch(errors.New("watch transport down"))
	if s := c.Stats(); s.WatchLosses != 1 {
		t.Fatalf("watch losses = %d, want 1", s.WatchLosses)
	}

	// Degraded mode: entries now live only TTL-long.
	if _, err := w.Lookup(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	after := f.lookupCount()
	time.Sleep(80 * time.Millisecond)
	if _, err := w.Lookup(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	if f.lookupCount() != after+1 {
		t.Error("entry outlived the TTL while degraded")
	}

	// Let re-registration succeed; the backoff loop must reconnect.
	f.allowWatch()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Stats().Rewatches >= 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if c.Stats().Rewatches < 1 {
		t.Fatal("watch never re-registered")
	}
	// Back in event mode: entries survive past the TTL again.
	if _, err := w.Lookup(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	before := f.lookupCount()
	time.Sleep(80 * time.Millisecond)
	if _, err := w.Lookup(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	if f.lookupCount() != before {
		t.Error("entry expired by TTL even though event mode is restored")
	}
}

func TestWriteInvalidatesThroughWrapper(t *testing.T) {
	f := newFakeCtx()
	f.bound["svc"] = "v1"
	c := New(Config{TTL: time.Hour, DisableEvents: true}, nil)
	defer c.Close()
	w := c.Wrap(f)
	ctx := context.Background()

	if _, err := w.Lookup(ctx, "svc"); err != nil {
		t.Fatal(err)
	}
	if err := w.Rebind(ctx, "svc", "v2"); err != nil {
		t.Fatal(err)
	}
	v, err := w.Lookup(ctx, "svc")
	if err != nil || v != "v2" {
		t.Fatalf("post-rebind lookup = %v %v, want v2", v, err)
	}
}

func TestGetAttributesAndSearchCached(t *testing.T) {
	f := newFakeCtx()
	f.bound["svc"] = "v1"
	f.attrs["svc"] = core.NewAttributes("kind", "test")
	c := New(Config{}, nil)
	defer c.Close()
	w := c.Wrap(f)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		a, err := w.GetAttributes(ctx, "svc")
		if err != nil || a.GetFirst("kind") != "test" {
			t.Fatalf("getAttributes: %v %v", a, err)
		}
		// Mutating the returned copy must not poison the cache.
		a.Put("kind", "mutated")
	}
	f.mu.Lock()
	ga := f.getAttrs
	f.mu.Unlock()
	if ga != 1 {
		t.Errorf("provider GetAttributes calls = %d, want 1", ga)
	}

	for i := 0; i < 3; i++ {
		rs, err := w.Search(ctx, "", "(kind=test)", &core.SearchControls{Scope: core.ScopeSubtree})
		if err != nil || len(rs) != 1 {
			t.Fatalf("search: %v %v", rs, err)
		}
	}
	f.mu.Lock()
	sc := f.searches
	f.mu.Unlock()
	if sc != 1 {
		t.Errorf("provider Search calls = %d, want 1", sc)
	}
}

func TestCPECachingInertOnly(t *testing.T) {
	cpeString := &core.CannotProceedError{Resolved: "hdns://next/host"}
	var calls atomic.Int64
	c := New(Config{}, nil)
	defer c.Close()
	r := c.Wrap(newFakeCtx()).r

	n, _ := core.ParseName("x")
	fill := func(core.Context) (any, error) {
		calls.Add(1)
		return nil, cpeString
	}
	for i := 0; i < 3; i++ {
		_, err := r.cachedOp(context.Background(), "k1", n, fill)
		var got *core.CannotProceedError
		if !errors.As(err, &got) {
			t.Fatalf("want CPE, got %v", err)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("string-resolved CPE fills = %d, want 1 (cacheable)", calls.Load())
	}

	// A CPE carrying a live Context must never be cached.
	cpeLive := &core.CannotProceedError{Resolved: newFakeCtx()}
	var liveCalls atomic.Int64
	liveFill := func(core.Context) (any, error) {
		liveCalls.Add(1)
		return nil, cpeLive
	}
	for i := 0; i < 3; i++ {
		_, _ = r.cachedOp(context.Background(), "k2", n, liveFill)
	}
	if liveCalls.Load() != 3 {
		t.Errorf("live-resolved CPE fills = %d, want 3 (uncacheable)", liveCalls.Load())
	}
}

func TestOpenURLMemoizesRoots(t *testing.T) {
	var dials atomic.Int64
	f := newFakeCtx()
	f.bound["a"] = 1
	core.RegisterProvider("cachetest", core.ProviderFunc(
		func(_ context.Context, rawURL string, _ map[string]any) (core.Context, core.Name, error) {
			dials.Add(1)
			u, err := core.ParseURLName(rawURL)
			if err != nil {
				return nil, core.Name{}, err
			}
			return f, u.Path, nil
		}))

	c := New(Config{}, nil)
	defer c.Close()
	ctx := context.Background()

	c1, rest1, err := c.OpenURL(ctx, "cachetest://h1/a", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rest1.String() != "a" {
		t.Errorf("rest = %q, want a", rest1.String())
	}
	c2, _, err := c.OpenURL(ctx, "cachetest://h1/b", nil)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("same authority must share one root")
	}
	if dials.Load() != 1 {
		t.Errorf("dials = %d, want 1", dials.Load())
	}
	if _, _, err := c.OpenURL(ctx, "cachetest://h2/a", nil); err != nil {
		t.Fatal(err)
	}
	if dials.Load() != 2 {
		t.Errorf("dials = %d, want 2 (distinct authority)", dials.Load())
	}
}

func TestCloseStopsEverything(t *testing.T) {
	f := newFakeCtx()
	f.bound["svc"] = "v1"
	c := New(Config{}, nil)
	w := c.Wrap(f)
	if _, err := w.Lookup(context.Background(), "svc"); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	closed, listeners := f.closed, len(f.listeners)
	f.mu.Unlock()
	if !closed {
		t.Error("provider context not closed")
	}
	if listeners != 0 {
		t.Errorf("%d listeners still registered after Close", listeners)
	}
	if err := c.Close(); err != nil {
		t.Error("second Close must be a no-op:", err)
	}
}
