package cache

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"

	"gondi/internal/breaker"
	"gondi/internal/core"
	"gondi/internal/obs"
	"gondi/internal/retry"
)

// root is the per-(scheme, authority) cache state: one provider context,
// one entry table, one invalidation watch.
type root struct {
	c       *Cache
	key     string
	url     string // re-open target; "" for wrapped (caller-owned) roots
	wrapper *CachedContext

	mu         sync.Mutex
	inner      core.Context
	entries    map[string]*entry
	lru        *list.List // of *entry; front = most recently used
	flight     map[string]*call
	gen        uint64 // bumped by every invalidation; fills from an older gen are dropped
	eventMode  bool
	unwatch    func()
	rewatching bool
	closed     bool
}

// entry is one cached operation result. err is non-nil for cached
// negative (ErrNotFound) and continuation (*CannotProceedError) results.
type entry struct {
	key     string
	base    core.Name // the name the result depends on, for overlap eviction
	val     any
	err     error
	expires time.Time
	// staleUntil bounds degraded serve-stale: past expires but before
	// staleUntil the entry may still be served when a refill fails with a
	// transport-class error. Equal to expires for entries never eligible
	// (negative results).
	staleUntil time.Time
	elem       *list.Element
}

// call is an in-flight fill other callers wait on (singleflight).
type call struct {
	done chan struct{}
	val  any
	err  error
}

// newRoot wraps inner, registering the invalidation watch when the
// provider supports events; ctx bounds the watch registration only.
func (c *Cache) newRoot(ctx context.Context, key, url string, inner core.Context) *root {
	r := &root{
		c:       c,
		key:     key,
		url:     url,
		inner:   inner,
		entries: map[string]*entry{},
		lru:     list.New(),
		flight:  map[string]*call{},
	}
	r.wrapper = &CachedContext{r: r}
	if !c.cfg.DisableEvents {
		if ec, ok := inner.(core.EventContext); ok {
			if unwatch, err := ec.Watch(ctx, "", core.ScopeSubtree, r.onEvent); err == nil {
				r.eventMode = true
				r.unwatch = unwatch
			}
		}
	}
	return r
}

func (r *root) getInner() core.Context {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inner
}

// cachedOp is the read path: serve from the entry table, else collapse
// into any in-flight fill for the same key, else fill from the provider
// and (when the result is cacheable) remember it.
func (r *root) cachedOp(ctx context.Context, key string, base core.Name, fill func(inner core.Context) (any, error)) (any, error) {
	if err := core.CtxErr(ctx); err != nil {
		return nil, err
	}
	now := time.Now()
	hasStale := false
	r.mu.Lock()
	if r.closed {
		inner := r.inner
		r.mu.Unlock()
		return fill(inner)
	}
	if e, ok := r.entries[key]; ok {
		if now.Before(e.expires) {
			r.lru.MoveToFront(e.elem)
			val, err := e.val, e.err
			r.mu.Unlock()
			if err != nil {
				if errors.Is(err, core.ErrNotFound) {
					r.c.negHits.Add(1)
					mNegHits.Inc()
					obs.CacheEvent(ctx, "negative-hit")
				} else {
					r.c.hits.Add(1)
					mHits.Inc()
					obs.CacheEvent(ctx, "hit")
				}
				return nil, err
			}
			r.c.hits.Add(1)
			mHits.Inc()
			obs.CacheEvent(ctx, "hit")
			return val, nil
		}
		r.c.expirations.Add(1)
		mExpirations.Inc()
		if !r.c.cfg.DisableServeStale && now.Before(e.staleUntil) {
			// Expired but inside the stale window: keep it as the degraded-
			// mode fallback. A successful fill below replaces it; a
			// transport failure serves it (serveStale).
			hasStale = true
		} else {
			r.removeLocked(e)
		}
	}
	if cl, ok := r.flight[key]; ok {
		inner := r.inner
		r.mu.Unlock()
		r.c.collapsed.Add(1)
		mCollapsed.Inc()
		obs.CacheEvent(ctx, "collapsed")
		select {
		case <-cl.done:
			// If the leader was aborted by its own context while ours is
			// still alive, its error is not ours to inherit: fill directly.
			if cl.err != nil && ctx.Err() == nil &&
				(errors.Is(cl.err, context.Canceled) || errors.Is(cl.err, context.DeadlineExceeded)) {
				return fill(inner)
			}
			return cl.val, cl.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	r.flight[key] = cl
	inner := r.inner
	gen := r.gen
	r.mu.Unlock()

	r.c.misses.Add(1)
	mMisses.Inc()
	obs.CacheEvent(ctx, "miss")
	val, err := fill(inner)
	staleServed := false
	if err != nil && hasStale {
		if sv, serr, ok := r.serveStale(key, err); ok {
			obs.CacheEvent(ctx, "stale")
			val, err, staleServed = sv, serr, true
		}
	}
	cl.val, cl.err = val, err

	r.mu.Lock()
	delete(r.flight, key)
	if !r.closed && r.gen == gen && !staleServed {
		if exp, ok := r.cacheable(base, val, err); ok {
			e := &entry{key: key, base: base, val: val, err: err, expires: exp, staleUntil: exp}
			if r.staleEligible(err) {
				e.staleUntil = exp.Add(r.c.cfg.StaleTTL)
			}
			r.insertLocked(e)
		}
	}
	r.mu.Unlock()
	close(cl.done)
	return val, err
}

// staleEligible reports whether an entry with this result error may later
// be served stale: positive results and inert federation continuations
// yes, cached ErrNotFound no (a stale "does not exist" is an invented
// answer, not a degraded one).
func (r *root) staleEligible(err error) bool {
	if err == nil {
		return true
	}
	var cpe *core.CannotProceedError
	return errors.As(err, &cpe)
}

// serveStale serves an expired entry after a failed refill, provided the
// failure was transport-class and the entry is still inside its stale
// window. The entry's freshness is extended briefly (capped by the window)
// so a burst during the outage rides the ordinary hit path instead of
// re-probing the dead backend per call.
func (r *root) serveStale(key string, fillErr error) (any, error, bool) {
	if !transportClass(fillErr) {
		return nil, nil, false
	}
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[key]
	if !ok || r.closed || !now.Before(e.staleUntil) {
		return nil, nil, false
	}
	exp := now.Add(staleExtension)
	if exp.After(e.staleUntil) {
		exp = e.staleUntil
	}
	e.expires = exp
	r.lru.MoveToFront(e.elem)
	r.c.staleServes.Add(1)
	mStaleServes.Inc()
	return e.val, e.err, true
}

// transportClass reports whether err means "the backend did not answer"
// (dial/connection failure, breaker open, busy shed, transient net error)
// as opposed to a semantic answer from a live backend or the caller's own
// context expiring. Only transport-class failures trigger serve-stale: an
// admission shed in particular is exactly the moment a slightly stale
// answer beats piling more load onto the saturated server.
func transportClass(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ce *core.CommunicationError
	var sue *core.ServiceUnavailableError
	var sbe *core.ServerBusyError
	return errors.As(err, &ce) || errors.As(err, &sue) || errors.As(err, &sbe) ||
		errors.Is(err, breaker.ErrOpen) || retry.Transient(err)
}

// cacheable decides whether a fill result may be remembered and until
// when. Positive results and federation continuations get the mode TTL;
// ErrNotFound gets the negative TTL; other errors are never cached.
func (r *root) cacheable(base core.Name, val any, err error) (time.Time, bool) {
	now := time.Now()
	if err == nil {
		return now.Add(r.entryTTLLocked(base.String())), true
	}
	if errors.Is(err, core.ErrNotFound) {
		if r.c.cfg.DisableNegative {
			return time.Time{}, false
		}
		return now.Add(r.c.cfg.NegativeTTL), true
	}
	var cpe *core.CannotProceedError
	if errors.As(err, &cpe) {
		// Continuations are cacheable only when the boundary object is
		// inert data (a URL string or a Reference); a live Context would
		// pin one specific connection into the cache.
		switch cpe.Resolved.(type) {
		case string, *core.Reference:
			return now.Add(r.entryTTLLocked(base.String())), true
		}
	}
	return time.Time{}, false
}

// entryTTLLocked returns the positive-entry lifetime. In event mode the
// watch keeps entries coherent, so only the backstop applies; in TTL mode
// the provider may advise per-name freshness (DNS record TTLs), else the
// configured default applies. Caller holds r.mu.
func (r *root) entryTTLLocked(name string) time.Duration {
	if r.eventMode {
		return backstopTTL
	}
	if adv, ok := r.inner.(TTLAdvisor); ok {
		if d, ok := adv.AdviseTTL(name); ok && d > 0 {
			return d
		}
	}
	return r.c.cfg.TTL
}

func (r *root) insertLocked(e *entry) {
	if old, ok := r.entries[e.key]; ok {
		r.removeLocked(old)
	}
	e.elem = r.lru.PushFront(e)
	r.entries[e.key] = e
	for r.lru.Len() > r.c.cfg.MaxEntries {
		back := r.lru.Back()
		r.removeLocked(back.Value.(*entry))
		r.c.evictions.Add(1)
		mEvictions.Inc()
	}
}

func (r *root) removeLocked(e *entry) {
	delete(r.entries, e.key)
	r.lru.Remove(e.elem)
}

// invalidate drops every entry whose base name overlaps one of the given
// names (ancestor or descendant — a write at "a/b" stales both a cached
// List("a") and a cached Lookup("a/b/c")) and fences in-flight fills.
func (r *root) invalidate(names ...string) {
	parsed := make([]core.Name, 0, len(names))
	for _, s := range names {
		n, err := core.ParseName(s)
		if err != nil {
			r.flushAll()
			return
		}
		parsed = append(parsed, n)
	}
	r.mu.Lock()
	r.gen++
	var victims []*entry
	for _, e := range r.entries {
		for _, n := range parsed {
			if e.base.StartsWith(n) || n.StartsWith(e.base) {
				victims = append(victims, e)
				break
			}
		}
	}
	for _, e := range victims {
		r.removeLocked(e)
	}
	r.mu.Unlock()
	r.c.evictions.Add(int64(len(victims)))
	mEvictions.Add(int64(len(victims)))
}

// flushAll empties the root's entry table and fences in-flight fills.
func (r *root) flushAll() {
	r.mu.Lock()
	r.gen++
	n := len(r.entries)
	r.entries = map[string]*entry{}
	r.lru.Init()
	r.mu.Unlock()
	r.c.evictions.Add(int64(n))
	mEvictions.Add(int64(n))
}

// onEvent is the invalidation listener registered on the provider root.
func (r *root) onEvent(ev core.NamingEvent) {
	switch ev.Type {
	case core.EventWatchLost:
		r.watchLost()
	case core.EventObjectRenamed:
		// Rename events carry only one of the two affected names; drop
		// everything rather than risk serving the other side stale.
		r.flushAll()
	default:
		r.invalidate(ev.Name)
	}
}

// watchLost flips the root to TTL mode, flushes it (nothing cached under
// the dead watch can be trusted), and starts backoff re-registration.
func (r *root) watchLost() {
	r.mu.Lock()
	if r.closed || !r.eventMode {
		r.mu.Unlock()
		return
	}
	r.eventMode = false
	r.unwatch = nil
	startLoop := !r.rewatching
	r.rewatching = true
	r.mu.Unlock()
	r.c.watchLosses.Add(1)
	mWatchLosses.Inc()
	r.flushAll()
	if !startLoop {
		return
	}
	r.c.wg.Add(1)
	go r.rewatchLoop()
}

// rewatchLoop re-registers the invalidation watch with capped exponential
// backoff until it succeeds or the cache closes. Every error is treated as
// transient — including breaker.ErrOpen, so the loop keeps backing off
// through an open circuit instead of dying: it exists precisely to outlast
// partitions and restarts. The breaker (shared per root key) keeps the
// actual re-dial attempts from hammering a dead endpoint: while it is
// open, iterations fail fast without touching the wire.
func (r *root) rewatchLoop() {
	defer r.c.wg.Done()
	br := breaker.For("cache:" + r.key)
	err := retry.DoClassify(r.c.closeCtx, rewatchPolicy,
		func(error) bool { return true },
		func() error {
			if err := br.Allow(); err != nil {
				return err
			}
			err := r.tryRewatch(r.c.closeCtx)
			if r.c.closeCtx.Err() != nil {
				// Cache shutdown is not backend health: release the
				// probe slot without moving the breaker.
				br.Cancel()
			} else {
				br.Record(err != nil)
			}
			return err
		})
	r.mu.Lock()
	r.rewatching = false
	r.mu.Unlock()
	if err != nil {
		return // cache closed (or root closed) before the watch came back
	}
	// Anything cached while degraded may predate the new watch: flush so
	// event mode starts from a provider-fresh table.
	r.flushAll()
	r.c.rewatches.Add(1)
	mRewatches.Inc()
}

// tryRewatch attempts one watch registration, re-opening the provider
// root first when the old connection is dead.
func (r *root) tryRewatch(ctx context.Context) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil // treated as success; loop exits, flush is harmless
	}
	inner := r.inner
	r.mu.Unlock()

	ec, ok := inner.(core.EventContext)
	if ok {
		if unwatch, err := ec.Watch(ctx, "", core.ScopeSubtree, r.onEvent); err == nil {
			r.adoptWatch(inner, unwatch)
			return nil
		}
	}
	if r.url == "" {
		// A wrapped (caller-owned) context cannot be re-dialed; keep
		// retrying the watch itself in case the substrate recovers.
		return errors.New("cache: watch re-registration failed")
	}
	fresh, _, err := core.OpenURL(ctx, r.url, r.c.env)
	if err != nil {
		return err
	}
	fec, ok := fresh.(core.EventContext)
	if !ok {
		_ = fresh.Close()
		return errors.New("cache: reopened root lost event support")
	}
	unwatch, err := fec.Watch(ctx, "", core.ScopeSubtree, r.onEvent)
	if err != nil {
		_ = fresh.Close()
		return err
	}
	old := r.adoptWatchSwap(fresh, unwatch)
	if old != nil {
		_ = old.Close()
	}
	return nil
}

// adoptWatch records a successful re-registration on the existing inner.
func (r *root) adoptWatch(inner core.Context, unwatch func()) {
	r.mu.Lock()
	if r.closed || r.inner != inner {
		r.mu.Unlock()
		unwatch()
		return
	}
	r.eventMode = true
	r.unwatch = unwatch
	r.mu.Unlock()
}

// adoptWatchSwap installs a freshly dialed inner plus its watch and
// returns the replaced context (nil if the root closed meanwhile, in
// which case the fresh context is closed instead).
func (r *root) adoptWatchSwap(fresh core.Context, unwatch func()) core.Context {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		unwatch()
		_ = fresh.Close()
		return nil
	}
	old := r.inner
	r.inner = fresh
	r.eventMode = true
	r.unwatch = unwatch
	r.mu.Unlock()
	return old
}

// close tears the root down: watch, entries, and — since the cache opened
// it or adopted it — the provider context.
func (r *root) close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	unwatch := r.unwatch
	r.unwatch = nil
	inner := r.inner
	r.entries = map[string]*entry{}
	r.lru.Init()
	r.mu.Unlock()
	r.c.dropRoot(r.key)
	if unwatch != nil {
		unwatch()
	}
	if inner != nil {
		return inner.Close()
	}
	return nil
}
