package jgroups

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"gondi/internal/obs"
)

// Channel errors.
var (
	ErrNotConnected = errors.New("jgroups: channel not connected")
	ErrChanClosed   = errors.New("jgroups: channel closed")
	ErrJoinTimeout  = errors.New("jgroups: join timed out")
	// ErrSendWindowFull reports that Send blocked on the credit window
	// longer than JoinTimeout — the group is not draining.
	ErrSendWindowFull = errors.New("jgroups: send window full")
)

var (
	mSendStalls = obs.Default.Counter("gondi_jgroups_send_stalls_total",
		"Sends that blocked on the credit window.")
	mPendingDrops = obs.Default.Counter("gondi_jgroups_pending_dropped_total",
		"Out-of-order packets dropped by the bounded delivery buffer (recovered by repair).")
)

// bimodalStoreMax bounds the per-sender gossip repair store.
const bimodalStoreMax = 4096

type chanState int

const (
	stateIdle chanState = iota
	stateConnected
	stateClosed
)

// senderState tracks per-sender FIFO delivery (bimodal mode).
type senderState struct {
	delivered uint64
	pending   map[uint64]*Packet
	store     map[uint64]*Packet // delivered messages kept for gossip repair
	storeMin  uint64
}

func newSenderState() *senderState {
	return &senderState{pending: map[uint64]*Packet{}, store: map[uint64]*Packet{}}
}

// pendingFlush is the coordinator's in-progress view change.
type pendingFlush struct {
	newView  *View
	waiting  map[Address]bool // members whose ack is pending
	digests  map[Address]uint64
	deadline time.Time
}

// Channel is a group communication endpoint, the JChannel analog.
type Channel struct {
	cfg Config
	tr  Transport

	mu       sync.Mutex
	state    chanState
	group    string
	recv     Receiver
	view     *View
	flushing bool
	flushC   *sync.Cond

	// Virtual-synchrony data path.
	nextSeq   uint64             // coordinator: next global seq to assign
	delivered uint64             // highest contiguously delivered global seq
	pending   map[uint64]*Packet // out-of-order buffer
	msgStore  map[uint64]*Packet // coordinator: for retransmission
	storeLow  uint64             // below this the store is pruned
	ackSeq    map[Address]uint64 // coordinator: member delivery acks
	coordSeq  uint64             // member: coordinator's delivered seq (from heartbeats)
	gapSince  time.Time

	// Bimodal data path.
	sendSeqB uint64
	senders  map[Address]*senderState
	// peerAckB tracks, per view member, the highest of our own bimodal
	// seqs it has acknowledged delivering (monotonic; learned from
	// heartbeat/gossip/flush digests). The minimum across members is the
	// sender credit window's floor.
	peerAckB map[Address]uint64

	// Membership machinery.
	lastSeen map[Address]time.Time
	flush    *pendingFlush
	joiners  []Address // queued while a flush is in progress

	// Connect/state-transfer rendezvous.
	discoverC chan Address
	viewC     chan *View
	stateC    chan []byte

	done chan struct{}
	wg   sync.WaitGroup
	rng  *rand.Rand
}

// NewChannel builds a channel over the given transport.
func NewChannel(tr Transport, cfg Config) *Channel {
	if cfg.MaxPending == 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	if cfg.SendWindow == 0 {
		cfg.SendWindow = DefaultSendWindow
	}
	c := &Channel{
		cfg:      cfg,
		tr:       tr,
		pending:  map[uint64]*Packet{},
		msgStore: map[uint64]*Packet{},
		ackSeq:   map[Address]uint64{},
		senders:  map[Address]*senderState{},
		peerAckB: map[Address]uint64{},
		lastSeen: map[Address]time.Time{},
		done:     make(chan struct{}),
		rng:      rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(len(tr.Addr())))),
	}
	c.flushC = sync.NewCond(&c.mu)
	return c
}

// Addr returns this member's address.
func (c *Channel) Addr() Address { return c.tr.Addr() }

// View returns the current view (a copy).
func (c *Channel) View() *View {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.view.Clone()
}

// IsCoordinator reports whether this member coordinates the group.
func (c *Channel) IsCoordinator() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.view.Coord() == c.Addr()
}

// Connect discovers the group coordinator (or founds the group), joins,
// and — when r.SetState is set and another member already coordinates —
// pulls the application state.
func (c *Channel) Connect(group string, r Receiver) error {
	c.mu.Lock()
	if c.state != stateIdle {
		c.mu.Unlock()
		return fmt.Errorf("jgroups: Connect on %v channel", c.state)
	}
	c.group = group
	c.recv = r
	c.discoverC = make(chan Address, 8)
	c.viewC = make(chan *View, 1)
	c.stateC = make(chan []byte, 1)
	c.mu.Unlock()

	c.wg.Add(1)
	go c.run()

	deadline := time.Now().Add(c.cfg.JoinTimeout)
	coord := c.discover(deadline)
	if coord == "" {
		// Found the group.
		c.mu.Lock()
		c.view = &View{ID: 1, Members: []Address{c.Addr()}}
		c.state = stateConnected
		view := c.view.Clone()
		cb := c.recv.ViewChange
		c.mu.Unlock()
		if cb != nil {
			cb(view)
		}
		return nil
	}
	// Join via the coordinator.
	if err := c.tr.Send(coord, &Packet{Kind: kJoinReq, Group: group}); err != nil {
		return err
	}
	select {
	case v := <-c.viewC:
		c.mu.Lock()
		c.state = stateConnected
		cb := c.recv.ViewChange
		view := v.Clone()
		c.mu.Unlock()
		if cb != nil {
			cb(view)
		}
	case <-time.After(time.Until(deadline)):
		return ErrJoinTimeout
	case <-c.done:
		return ErrChanClosed
	}
	// State transfer.
	if r.SetState != nil {
		if err := c.pullState(deadline); err != nil {
			return err
		}
	}
	return nil
}

// discover broadcasts discovery probes until a coordinator answers or the
// probe budget expires; it returns "" when the group seems empty.
func (c *Channel) discover(deadline time.Time) Address {
	probes := 3
	for i := 0; i < probes; i++ {
		_ = c.tr.Broadcast(&Packet{Kind: kDiscover, Group: c.group})
		wait := 150 * time.Millisecond
		if rem := time.Until(deadline); rem < wait {
			wait = rem
		}
		select {
		case coord := <-c.discoverC:
			return coord
		case <-time.After(wait):
		case <-c.done:
			return ""
		}
	}
	return ""
}

func (c *Channel) pullState(deadline time.Time) error {
	c.mu.Lock()
	coord := c.view.Coord()
	c.mu.Unlock()
	if coord == c.Addr() {
		return nil
	}
	if err := c.tr.Send(coord, &Packet{Kind: kStateReq, Group: c.group}); err != nil {
		return err
	}
	select {
	case st := <-c.stateC:
		c.recv.SetState(st)
		return nil
	case <-time.After(time.Until(deadline)):
		return fmt.Errorf("jgroups: state transfer timed out")
	case <-c.done:
		return ErrChanClosed
	}
}

// Send multicasts payload to the group; the sender receives its own
// message through Deliver as well. In virtual-synchrony mode messages are
// totally ordered; in bimodal mode they are FIFO per sender.
func (c *Channel) Send(payload []byte) error {
	c.mu.Lock()
	if c.state != stateConnected {
		c.mu.Unlock()
		return ErrNotConnected
	}
	// Block while a flush quiesces the group (VS semantics) or while the
	// sender credit window is exhausted (the slowest member is
	// SendWindow messages behind on our own traffic). Backpressure here
	// is the anti-collapse mechanism: instead of burying a lagging
	// receiver under an unbounded queue, the sender runs at the group's
	// drain rate. Acks advance via heartbeat/gossip digests, each of
	// which broadcasts flushC.
	waited := time.Now()
	stalled := false
	for c.state == stateConnected && (c.flushing || c.sendStalledLocked()) {
		if !c.flushing && !stalled {
			stalled = true
			mSendStalls.Inc()
		}
		c.flushC.Wait()
		if time.Since(waited) > c.cfg.JoinTimeout {
			c.mu.Unlock()
			if stalled {
				return ErrSendWindowFull
			}
			return fmt.Errorf("jgroups: send blocked by flush for too long")
		}
	}
	if c.state != stateConnected {
		c.mu.Unlock()
		return ErrChanClosed
	}

	if c.cfg.Mode == ModeBimodal {
		c.sendSeqB++
		p := &Packet{Kind: kDataBimodal, Group: c.group, From: c.Addr(), Seq: c.sendSeqB, Payload: payload}
		members := c.view.Members
		var deliver []delivery
		c.handleBimodalDataLocked(p, &deliver)
		for _, m := range members {
			if m != c.Addr() {
				_ = c.tr.Send(m, p)
			}
		}
		c.mu.Unlock()
		c.fire(deliver)
		return nil
	}

	// Virtual synchrony: the coordinator sequences.
	if c.view.Coord() == c.Addr() {
		var deliver []delivery
		c.sequenceLocked(&Packet{Kind: kData, Group: c.group, From: c.Addr(), Payload: payload}, &deliver)
		c.mu.Unlock()
		c.fire(deliver)
		return nil
	}
	coord := c.view.Coord()
	c.mu.Unlock()
	return c.tr.Send(coord, &Packet{Kind: kDataFwd, Group: c.group, From: c.Addr(), Payload: payload})
}

// delivery is a deferred application callback.
type delivery struct {
	src     Address
	payload []byte
}

func (c *Channel) fire(ds []delivery) {
	for _, d := range ds {
		if c.recv.Deliver != nil {
			c.recv.Deliver(d.src, d.payload)
		}
	}
}

// sequenceLocked (coordinator) assigns the next global seq and multicasts.
func (c *Channel) sequenceLocked(p *Packet, deliver *[]delivery) {
	c.nextSeq++
	p.Seq = c.nextSeq
	p.Kind = kData
	stored := *p
	c.msgStore[p.Seq] = &stored
	for _, m := range c.view.Members {
		if m != c.Addr() {
			_ = c.tr.Send(m, p)
		}
	}
	c.handleDataLocked(p, deliver)
}

// handleDataLocked performs in-order global-seq delivery (VS mode).
func (c *Channel) handleDataLocked(p *Packet, deliver *[]delivery) {
	if p.Seq <= c.delivered {
		return // duplicate
	}
	cp := *p
	c.pending[p.Seq] = &cp
	for {
		next, ok := c.pending[c.delivered+1]
		if !ok {
			break
		}
		delete(c.pending, c.delivered+1)
		c.delivered++
		*deliver = append(*deliver, delivery{src: next.From, payload: next.Payload})
	}
	if mp := c.cfg.MaxPending; mp > 0 && len(c.pending) > mp {
		dropNewestPending(c.pending)
	}
	if len(c.pending) > 0 {
		if c.gapSince.IsZero() {
			c.gapSince = time.Now()
		}
	} else {
		c.gapSince = time.Time{}
	}
}

// handleBimodalDataLocked performs per-sender FIFO delivery and stores
// messages for gossip repair.
func (c *Channel) handleBimodalDataLocked(p *Packet, deliver *[]delivery) {
	ss := c.senders[p.From]
	if ss == nil {
		ss = newSenderState()
		c.senders[p.From] = ss
	}
	if p.Seq <= ss.delivered {
		return
	}
	if _, dup := ss.pending[p.Seq]; dup {
		return
	}
	cp := *p
	ss.pending[p.Seq] = &cp
	for {
		next, ok := ss.pending[ss.delivered+1]
		if !ok {
			break
		}
		delete(ss.pending, ss.delivered+1)
		ss.delivered++
		ss.store[next.Seq] = next
		*deliver = append(*deliver, delivery{src: next.From, payload: next.Payload})
	}
	// Bound the out-of-order buffer: shed the newest buffered packet —
	// the gap blocking delivery is older, and gossip repair re-fetches
	// whatever is dropped once the gap closes. Memory stays bounded
	// through a retransmit storm.
	if mp := c.cfg.MaxPending; mp > 0 && len(ss.pending) > mp {
		dropNewestPending(ss.pending)
	}
	// Prune the repair store.
	for len(ss.store) > bimodalStoreMax {
		ss.storeMin++
		delete(ss.store, ss.storeMin)
	}
}

// dropNewestPending removes the highest-seq packet from a full pending
// buffer (LIFO shed: newest work is cheapest to lose — retransmission
// recovers it after the older gap heals).
func dropNewestPending(pending map[uint64]*Packet) {
	var maxSeq uint64
	for s := range pending {
		if s > maxSeq {
			maxSeq = s
		}
	}
	delete(pending, maxSeq)
	mPendingDrops.Inc()
}

// run is the protocol main loop.
func (c *Channel) run() {
	defer c.wg.Done()
	heartbeat := time.NewTicker(c.cfg.HeartbeatInterval)
	defer heartbeat.Stop()
	gossip := time.NewTicker(c.cfg.GossipInterval)
	defer gossip.Stop()
	merge := time.NewTicker(c.cfg.MergeInterval)
	defer merge.Stop()
	retrans := time.NewTicker(c.cfg.RetransmitTimeout)
	defer retrans.Stop()

	for {
		select {
		case <-c.done:
			return
		case p, ok := <-c.tr.Recv():
			if !ok {
				return
			}
			c.handlePacket(p)
		case <-heartbeat.C:
			c.tickHeartbeat()
		case <-gossip.C:
			c.tickGossip()
		case <-merge.C:
			c.tickMerge()
		case <-retrans.C:
			c.tickRetransmit()
		}
	}
}

func (c *Channel) handlePacket(p *Packet) {
	if p.Group != c.group {
		return
	}
	var deliver []delivery
	var viewCB *View
	var mergeCB *MergeEvent

	c.mu.Lock()
	if c.state == stateClosed {
		c.mu.Unlock()
		return
	}
	c.lastSeen[p.Src] = time.Now()
	switch p.Kind {
	case kDiscover:
		if c.state == stateConnected && c.view.Coord() == c.Addr() && p.Src != c.Addr() {
			_ = c.tr.Send(p.Src, &Packet{Kind: kDiscoverRsp, Group: c.group})
		}
	case kDiscoverRsp:
		select {
		case c.discoverC <- p.Src:
		default:
		}
	case kJoinReq:
		c.handleJoinLocked(p.Src)
	case kLeave:
		if c.state == stateConnected && c.view.Coord() == c.Addr() && c.view.Contains(p.Src) {
			c.startFlushLocked(c.removeMemberView(p.Src))
		}
	case kData:
		if c.state == stateConnected {
			c.handleDataLocked(p, &deliver)
		}
	case kDataFwd:
		if c.state == stateConnected && c.view.Coord() == c.Addr() && !c.flushing {
			c.sequenceLocked(p, &deliver)
		}
	case kDataBimodal:
		if c.state == stateConnected {
			c.handleBimodalDataLocked(p, &deliver)
		}
	case kNakReq:
		for _, seq := range p.Seqs {
			if m, ok := c.msgStore[seq]; ok {
				_ = c.tr.Send(p.Src, m)
			}
		}
	case kFlushStart:
		c.flushing = true
		_ = c.tr.Send(p.Src, &Packet{Kind: kFlushAck, Group: c.group, Seq: c.delivered, Digest: c.bimodalDigestLocked()})
	case kFlushAck:
		c.handleFlushAckLocked(p)
	case kView:
		viewCB = c.installViewLocked(p)
	case kHeartbeat:
		c.handleHeartbeatLocked(p)
	case kGossip:
		c.handleGossipLocked(p)
	case kGossipRsp:
		for _, m := range p.Packets {
			c.handleBimodalDataLocked(m, &deliver)
		}
	case kStateReq:
		if c.recv.GetState != nil {
			st := c.recv.GetState()
			_ = c.tr.Send(p.Src, &Packet{Kind: kStateRsp, Group: c.group, Payload: st})
		}
	case kStateRsp:
		select {
		case c.stateC <- p.Payload:
		default:
		}
	case kMergeAnnounce:
		c.handleMergeAnnounceLocked(p)
	case kMergeView:
		viewCB, mergeCB = c.handleMergeViewLocked(p)
	}
	c.mu.Unlock()

	c.fire(deliver)
	if viewCB != nil && c.recv.ViewChange != nil {
		c.recv.ViewChange(viewCB)
	}
	if mergeCB != nil {
		// Resynchronize off the protocol loop: resyncState waits for a
		// kStateRsp that this loop must keep running to receive.
		go c.completeMerge(*mergeCB)
	}
}

// completeMerge pulls authoritative state on non-primary members, then
// fires the application Merge callback.
func (c *Channel) completeMerge(e MergeEvent) {
	if !e.Primary && c.recv.SetState != nil {
		c.resyncState()
	}
	if c.recv.Merge != nil {
		c.recv.Merge(e)
	}
}

func (c *Channel) resyncState() {
	c.mu.Lock()
	coord := c.view.Coord()
	c.mu.Unlock()
	if coord == c.Addr() {
		return
	}
	// Drop any stale buffered state from an earlier transfer.
	select {
	case <-c.stateC:
	default:
	}
	_ = c.tr.Send(coord, &Packet{Kind: kStateReq, Group: c.group})
	select {
	case st := <-c.stateC:
		c.recv.SetState(st)
	case <-time.After(c.cfg.JoinTimeout):
	case <-c.done:
	}
}

// handleJoinLocked (coordinator) starts a flush to admit a joiner.
func (c *Channel) handleJoinLocked(joiner Address) {
	if c.state != stateConnected || c.view.Coord() != c.Addr() {
		return
	}
	if c.view.Contains(joiner) {
		// Re-join after restart: just resend the current view.
		_ = c.tr.Send(joiner, &Packet{Kind: kView, Group: c.group, View: c.view, Seq: c.nextSeq})
		return
	}
	if c.flush != nil {
		c.joiners = append(c.joiners, joiner)
		return
	}
	nv := c.view.Clone()
	nv.ID++
	nv.Members = append(nv.Members, joiner)
	c.startFlushLocked(nv)
}

func (c *Channel) removeMemberView(gone ...Address) *View {
	nv := &View{ID: c.view.ID + 1}
	for _, m := range c.view.Members {
		dead := false
		for _, g := range gone {
			if m == g {
				dead = true
			}
		}
		if !dead {
			nv.Members = append(nv.Members, m)
		}
	}
	return nv
}

// startFlushLocked (coordinator) quiesces the group before installing nv.
func (c *Channel) startFlushLocked(nv *View) {
	c.flushing = true
	waiting := map[Address]bool{}
	for _, m := range c.view.Members {
		if m != c.Addr() && nv.Contains(m) {
			waiting[m] = true
			_ = c.tr.Send(m, &Packet{Kind: kFlushStart, Group: c.group, ViewID: nv.ID})
		}
	}
	c.flush = &pendingFlush{
		newView:  nv,
		waiting:  waiting,
		digests:  map[Address]uint64{},
		deadline: time.Now().Add(c.cfg.SuspectAfter),
	}
	if len(waiting) == 0 {
		c.finishFlushLocked()
	}
}

func (c *Channel) handleFlushAckLocked(p *Packet) {
	c.recordPeerAckLocked(p.Src, p.Digest)
	if c.flush == nil || !c.flush.waiting[p.Src] {
		return
	}
	delete(c.flush.waiting, p.Src)
	c.flush.digests[p.Src] = p.Seq
	if len(c.flush.waiting) == 0 {
		c.finishFlushLocked()
	}
}

// finishFlushLocked (coordinator) retransmits what stragglers miss, then
// installs the new view everywhere.
func (c *Channel) finishFlushLocked() {
	f := c.flush
	c.flush = nil
	if c.cfg.Mode == ModeVirtualSynchrony {
		for m, got := range f.digests {
			for seq := got + 1; seq <= c.nextSeq; seq++ {
				if msg, ok := c.msgStore[seq]; ok {
					_ = c.tr.Send(m, msg)
				}
			}
		}
	}
	for _, m := range f.newView.Members {
		if m != c.Addr() {
			_ = c.tr.Send(m, &Packet{Kind: kView, Group: c.group, View: f.newView, Seq: c.nextSeq})
		}
	}
	c.view = f.newView.Clone()
	c.syncPeerAckLocked()
	c.flushing = false
	c.flushC.Broadcast()
	for _, m := range c.view.Members {
		c.lastSeen[m] = time.Now()
	}
	view := c.view.Clone()
	cb := c.recv.ViewChange
	// Queued joiners start the next flush.
	if len(c.joiners) > 0 {
		next := c.joiners[0]
		c.joiners = c.joiners[1:]
		c.handleJoinLocked(next)
	}
	if cb != nil {
		go cb(view)
	}
}

// installViewLocked (member) applies a kView from the coordinator.
func (c *Channel) installViewLocked(p *Packet) *View {
	if p.View == nil {
		return nil
	}
	if c.view != nil && p.View.ID <= c.view.ID && c.state == stateConnected {
		return nil // stale
	}
	if !p.View.Contains(c.Addr()) {
		return nil // excluded (false suspicion); we'll re-merge later
	}
	c.view = p.View.Clone()
	c.syncPeerAckLocked()
	c.flushing = false
	c.flushC.Broadcast()
	for _, m := range c.view.Members {
		c.lastSeen[m] = time.Now()
	}
	if c.state != stateConnected {
		// Joining: adopt the coordinator's sequence position.
		c.delivered = p.Seq
		c.nextSeq = p.Seq
		select {
		case c.viewC <- c.view.Clone():
		default:
		}
		return nil
	}
	return c.view.Clone()
}

func (c *Channel) bimodalDigestLocked() map[Address]uint64 {
	d := map[Address]uint64{}
	for a, ss := range c.senders {
		d[a] = ss.delivered
	}
	if c.cfg.Mode == ModeBimodal {
		d[c.Addr()] = c.sendSeqB
	}
	return d
}

// recordPeerAckLocked folds a peer's digest of OUR messages into the
// credit-window floor. Acks are monotonic: a joiner's backfill digest
// never retracts credit already granted.
func (c *Channel) recordPeerAckLocked(src Address, digest map[Address]uint64) {
	if c.cfg.Mode != ModeBimodal || digest == nil || src == c.Addr() {
		return
	}
	if n := digest[c.Addr()]; n > c.peerAckB[src] {
		c.peerAckB[src] = n
		c.flushC.Broadcast()
	}
}

// syncPeerAckLocked reconciles the ack table with a newly installed
// view: departed members stop holding the window down, and joiners are
// granted credit from the current send position (they backfill history
// via gossip, which must not stall new sends).
func (c *Channel) syncPeerAckLocked() {
	if c.cfg.Mode != ModeBimodal {
		return
	}
	alive := map[Address]bool{}
	for _, m := range c.view.Members {
		alive[m] = true
	}
	for a := range c.peerAckB {
		if !alive[a] {
			delete(c.peerAckB, a)
		}
	}
	for _, m := range c.view.Members {
		if m != c.Addr() {
			if _, ok := c.peerAckB[m]; !ok {
				c.peerAckB[m] = c.sendSeqB
			}
		}
	}
	c.flushC.Broadcast()
}

// sendStalledLocked reports whether the sender credit window is
// exhausted: the slowest member is SendWindow of our own messages
// behind. In virtual synchrony only the coordinator (the sequencer, and
// the only member with the group ack floor) applies the window; member
// sends are forwarded and bounded at the coordinator.
func (c *Channel) sendStalledLocked() bool {
	w := c.cfg.SendWindow
	if w <= 0 || len(c.view.Members) < 2 {
		return false
	}
	if c.cfg.Mode == ModeBimodal {
		low := c.sendSeqB
		for _, m := range c.view.Members {
			if m == c.Addr() {
				continue
			}
			if a := c.peerAckB[m]; a < low {
				low = a
			}
		}
		return c.sendSeqB-low >= uint64(w)
	}
	if c.view.Coord() != c.Addr() {
		return false
	}
	low := c.nextSeq
	for _, m := range c.view.Members {
		if m == c.Addr() {
			continue
		}
		if a, ok := c.ackSeq[m]; !ok {
			low = 0
		} else if a < low {
			low = a
		}
	}
	return c.nextSeq-low >= uint64(w)
}

// PendingLen reports buffered out-of-order packets across all senders —
// a diagnostic for the bounded-buffer tests.
func (c *Channel) PendingLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.pending)
	for _, ss := range c.senders {
		n += len(ss.pending)
	}
	return n
}

// Outstanding reports this member's unacknowledged own messages (the
// credit window in use). Diagnostic.
func (c *Channel) Outstanding() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.view.Members) < 2 {
		return 0
	}
	if c.cfg.Mode == ModeBimodal {
		low := c.sendSeqB
		for _, m := range c.view.Members {
			if m == c.Addr() {
				continue
			}
			if a := c.peerAckB[m]; a < low {
				low = a
			}
		}
		return int(c.sendSeqB - low)
	}
	return int(c.nextSeq - c.delivered)
}

func (c *Channel) tickHeartbeat() {
	var deliver []delivery
	c.mu.Lock()
	if c.state != stateConnected {
		c.mu.Unlock()
		return
	}
	me := c.Addr()
	isCoord := c.view.Coord() == me
	hb := &Packet{Kind: kHeartbeat, Group: c.group, Seq: c.delivered}
	if c.cfg.Mode == ModeBimodal {
		// Heartbeats double as delivery acks: the digest advances every
		// peer's credit-window floor once per beat, independent of the
		// (random-peer) gossip schedule.
		hb.Digest = c.bimodalDigestLocked()
	}
	if isCoord {
		for _, m := range c.view.Members {
			if m != me {
				_ = c.tr.Send(m, hb)
			}
		}
		// Prune the retransmission store below the group-wide ack floor.
		if len(c.view.Members) > 1 {
			low := c.delivered
			for _, m := range c.view.Members {
				if m == me {
					continue
				}
				if a, ok := c.ackSeq[m]; !ok {
					low = 0
					break
				} else if a < low {
					low = a
				}
			}
			for seq := c.storeLow + 1; seq <= low; seq++ {
				delete(c.msgStore, seq)
			}
			if low > c.storeLow {
				c.storeLow = low
			}
		} else {
			c.msgStore = map[uint64]*Packet{}
			c.storeLow = c.nextSeq
		}
		// Failure detection of members.
		var gone []Address
		for _, m := range c.view.Members {
			if m == me {
				continue
			}
			if seen, ok := c.lastSeen[m]; ok && time.Since(seen) > c.cfg.SuspectAfter {
				gone = append(gone, m)
			}
		}
		if len(gone) > 0 && c.flush == nil {
			c.startFlushLocked(c.removeMemberView(gone...))
		}
	} else {
		_ = c.tr.Send(c.view.Coord(), hb)
		// Coordinator failure: the senior surviving member takes over.
		coord := c.view.Coord()
		if seen, ok := c.lastSeen[coord]; ok && time.Since(seen) > c.cfg.SuspectAfter {
			if c.flush == nil && c.seniorSurvivorLocked() == me {
				nv := c.removeMemberView(coord)
				c.startFlushLocked(nv)
			}
		}
	}
	// Flush deadline: drop unresponsive members from the pending view.
	// This must run on whichever member initiated the flush — a deposed
	// coordinator's successor is not the coordinator of the current view.
	if c.flush != nil && time.Now().After(c.flush.deadline) {
		for m := range c.flush.waiting {
			c.flush.newView.Members = removeAddr(c.flush.newView.Members, m)
			delete(c.flush.waiting, m)
		}
		if len(c.flush.waiting) == 0 {
			c.finishFlushLocked()
		}
	}
	// Wake Send waiters every beat so blocked senders re-check their
	// timeout even if no ack or flush event arrives (e.g. every peer
	// just died and failure detection hasn't resolved yet).
	c.flushC.Broadcast()
	c.mu.Unlock()
	c.fire(deliver)
}

// seniorSurvivorLocked returns the first view member not currently
// suspected.
func (c *Channel) seniorSurvivorLocked() Address {
	for _, m := range c.view.Members {
		if m == c.Addr() {
			return m
		}
		if seen, ok := c.lastSeen[m]; !ok || time.Since(seen) <= c.cfg.SuspectAfter {
			return m
		}
	}
	return ""
}

func removeAddr(in []Address, rm Address) []Address {
	out := in[:0]
	for _, a := range in {
		if a != rm {
			out = append(out, a)
		}
	}
	return out
}

func (c *Channel) handleHeartbeatLocked(p *Packet) {
	if c.state != stateConnected {
		return
	}
	c.recordPeerAckLocked(p.Src, p.Digest)
	if c.view.Coord() == c.Addr() {
		c.ackSeq[p.Src] = p.Seq
		return
	}
	if p.Src == c.view.Coord() {
		// The coordinator has sequenced messages we may have lost
		// entirely (tail loss leaves no gap to observe); remember its
		// position so tickRetransmit can NAK up to it.
		if p.Seq > c.coordSeq {
			c.coordSeq = p.Seq
		}
		if c.coordSeq > c.delivered && c.gapSince.IsZero() {
			c.gapSince = time.Now()
		}
	}
}

func (c *Channel) tickGossip() {
	c.mu.Lock()
	if c.state != stateConnected || c.cfg.Mode != ModeBimodal || len(c.view.Members) < 2 {
		c.mu.Unlock()
		return
	}
	// Pick a random peer.
	peers := make([]Address, 0, len(c.view.Members)-1)
	for _, m := range c.view.Members {
		if m != c.Addr() {
			peers = append(peers, m)
		}
	}
	peer := peers[c.rng.Intn(len(peers))]
	digest := c.bimodalDigestLocked()
	c.mu.Unlock()
	_ = c.tr.Send(peer, &Packet{Kind: kGossip, Group: c.group, Digest: digest})
}

// handleGossipLocked replies with the messages the peer's digest misses.
func (c *Channel) handleGossipLocked(p *Packet) {
	if c.cfg.Mode != ModeBimodal {
		return
	}
	c.recordPeerAckLocked(p.Src, p.Digest)
	var repair []*Packet
	for sender, ss := range c.senders {
		have := ss.delivered
		theirs := p.Digest[sender]
		for seq := theirs + 1; seq <= have && len(repair) < 256; seq++ {
			if m, ok := ss.store[seq]; ok {
				repair = append(repair, m)
			}
		}
	}
	if len(repair) > 0 {
		_ = c.tr.Send(p.Src, &Packet{Kind: kGossipRsp, Group: c.group, Packets: repair})
	}
}

func (c *Channel) tickRetransmit() {
	c.mu.Lock()
	if c.state != stateConnected || c.cfg.Mode != ModeVirtualSynchrony ||
		c.gapSince.IsZero() || time.Since(c.gapSince) < c.cfg.RetransmitTimeout {
		c.mu.Unlock()
		return
	}
	// Request every missing seq up to the highest sequence we know of:
	// the highest buffered message, or the coordinator's heartbeat
	// position (which catches tail loss).
	maxSeq := c.coordSeq
	for s := range c.pending {
		if s > maxSeq {
			maxSeq = s
		}
	}
	var missing []uint64
	for s := c.delivered + 1; s <= maxSeq && len(missing) < 512; s++ {
		if _, ok := c.pending[s]; !ok {
			missing = append(missing, s)
		}
	}
	coord := c.view.Coord()
	c.mu.Unlock()
	if len(missing) > 0 && coord != c.Addr() {
		_ = c.tr.Send(coord, &Packet{Kind: kNakReq, Group: c.group, Seqs: missing})
	}
}

func (c *Channel) tickMerge() {
	c.mu.Lock()
	if c.state != stateConnected || c.view.Coord() != c.Addr() {
		c.mu.Unlock()
		return
	}
	view := c.view.Clone()
	c.mu.Unlock()
	_ = c.tr.Broadcast(&Packet{Kind: kMergeAnnounce, Group: c.group, View: view})
}

// handleMergeAnnounceLocked runs on a coordinator that sees a foreign
// coordinator's announcement. The PRIMARY PARTITION rule picks the
// authoritative side; its coordinator leads the merge.
func (c *Channel) handleMergeAnnounceLocked(p *Packet) {
	if c.state != stateConnected || c.view.Coord() != c.Addr() || p.View == nil {
		return
	}
	if p.Src == c.Addr() || c.view.Contains(p.Src) {
		return // our own announcement or a member we already have
	}
	mine, theirs := c.view, p.View
	if !primaryOf(mine, theirs, c.Addr(), p.Src) {
		return // the other coordinator leads
	}
	// Build the merged view: primary members keep seniority.
	nv := &View{ID: maxU64(mine.ID, theirs.ID) + 1}
	nv.Members = append(nv.Members, mine.Members...)
	for _, m := range theirs.Members {
		if !nv.Contains(m) {
			nv.Members = append(nv.Members, m)
		}
	}
	primary := append([]Address(nil), mine.Members...)
	for _, m := range nv.Members {
		pkt := &Packet{Kind: kMergeView, Group: c.group, View: nv, Addrs: primary, Seq: c.nextSeq}
		if m == c.Addr() {
			// Handle our own merge view inline (can't loop back).
			viewCB, mergeCB := c.handleMergeViewLocked(pkt)
			if viewCB != nil || mergeCB != nil {
				go func() {
					if viewCB != nil && c.recv.ViewChange != nil {
						c.recv.ViewChange(viewCB)
					}
					if mergeCB != nil {
						c.completeMerge(*mergeCB)
					}
				}()
			}
			continue
		}
		_ = c.tr.Send(m, pkt)
	}
}

// primaryOf decides whether (mine, me) is the primary partition against
// (theirs, other): larger membership wins; ties go to the smaller
// coordinator address.
func primaryOf(mine, theirs *View, me, other Address) bool {
	if len(mine.Members) != len(theirs.Members) {
		return len(mine.Members) > len(theirs.Members)
	}
	return me < other
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// handleMergeViewLocked installs a merged view and resets the data path.
func (c *Channel) handleMergeViewLocked(p *Packet) (*View, *MergeEvent) {
	if c.state != stateConnected || p.View == nil || !p.View.Contains(c.Addr()) {
		return nil, nil
	}
	if c.view != nil && p.View.ID <= c.view.ID {
		return nil, nil
	}
	wasPrimary := false
	for _, a := range p.Addrs {
		if a == c.Addr() {
			wasPrimary = true
		}
	}
	c.view = p.View.Clone()
	c.flushing = false
	c.flushC.Broadcast()
	for _, m := range c.view.Members {
		c.lastSeen[m] = time.Now()
	}
	// Reset both data paths: in-flight pre-merge traffic is abandoned;
	// non-primary members resynchronize state out of band.
	c.pending = map[uint64]*Packet{}
	c.msgStore = map[uint64]*Packet{}
	c.storeLow = 0
	c.delivered = p.Seq
	c.nextSeq = p.Seq
	c.coordSeq = p.Seq
	c.gapSince = time.Time{}
	c.senders = map[Address]*senderState{}
	c.sendSeqB = 0
	// The bimodal seq space restarted: stale acks would exceed the new
	// send position, so the credit table restarts with it.
	c.peerAckB = map[Address]uint64{}
	c.syncPeerAckLocked()
	return c.view.Clone(), &MergeEvent{Primary: wasPrimary, View: c.view.Clone()}
}

// Close leaves the group and releases the transport.
func (c *Channel) Close() error {
	c.mu.Lock()
	if c.state == stateClosed {
		c.mu.Unlock()
		return nil
	}
	wasConnected := c.state == stateConnected
	var coord Address
	if wasConnected && c.view != nil {
		coord = c.view.Coord()
	}
	c.state = stateClosed
	c.flushC.Broadcast()
	c.mu.Unlock()

	if wasConnected && coord != "" && coord != c.Addr() {
		_ = c.tr.Send(coord, &Packet{Kind: kLeave, Group: c.group})
	}
	close(c.done)
	err := c.tr.Close()
	c.wg.Wait()
	return err
}
