package jgroups

import (
	"bytes"
	"encoding/gob"
	"net"
	"sync"
)

// UDPTransport carries packets over real UDP sockets for multi-process
// deployments (cmd/hdnsd). IP multicast is emulated TCPPING-style: a
// static peer list receives every Broadcast. A member's Address is its
// UDP host:port.
type UDPTransport struct {
	conn  *net.UDPConn
	addr  Address
	recv  chan *Packet
	mu    sync.Mutex
	peers map[Address]bool
	wg    sync.WaitGroup
	done  chan struct{}
}

// maxUDPPacket bounds one datagram (gossip bundles are capped well below).
const maxUDPPacket = 60 << 10

// NewUDPTransport listens on listenAddr (e.g. "127.0.0.1:0") and
// broadcasts to the given initial peers (host:port each).
func NewUDPTransport(listenAddr string, peers []string) (*UDPTransport, error) {
	uaddr, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, err
	}
	t := &UDPTransport{
		conn:  conn,
		addr:  Address(conn.LocalAddr().String()),
		recv:  make(chan *Packet, 1024),
		peers: map[Address]bool{},
		done:  make(chan struct{}),
	}
	for _, p := range peers {
		t.peers[Address(p)] = true
	}
	t.wg.Add(1)
	go t.readLoop()
	return t, nil
}

// Addr implements Transport.
func (t *UDPTransport) Addr() Address { return t.addr }

// AddPeer extends the broadcast set (new peers are also learned
// automatically from inbound packets).
func (t *UDPTransport) AddPeer(addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[Address(addr)] = true
}

func (t *UDPTransport) readLoop() {
	defer t.wg.Done()
	buf := make([]byte, maxUDPPacket)
	for {
		n, _, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			// Leave t.recv open: Channel.run exits via its own done
			// signal, and closing here would race the Broadcast
			// loopback path.
			return
		}
		var p Packet
		if err := gob.NewDecoder(bytes.NewReader(buf[:n])).Decode(&p); err != nil {
			continue
		}
		// Learn peers from traffic.
		t.mu.Lock()
		t.peers[p.Src] = true
		t.mu.Unlock()
		select {
		case t.recv <- &p:
		case <-t.done:
			return
		}
	}
}

func (t *UDPTransport) send(dest Address, p *Packet) error {
	cp := *p
	cp.Src = t.addr
	cp.Dest = dest
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&cp); err != nil {
		return err
	}
	uaddr, err := net.ResolveUDPAddr("udp", string(dest))
	if err != nil {
		return err
	}
	_, err = t.conn.WriteToUDP(buf.Bytes(), uaddr)
	return err
}

// Send implements Transport.
func (t *UDPTransport) Send(dest Address, p *Packet) error {
	return t.send(dest, p)
}

// Broadcast implements Transport.
func (t *UDPTransport) Broadcast(p *Packet) error {
	t.mu.Lock()
	peers := make([]Address, 0, len(t.peers))
	for a := range t.peers {
		peers = append(peers, a)
	}
	t.mu.Unlock()
	for _, a := range peers {
		if a == t.addr {
			// Loop back through the receive path so discovery finds
			// singletons on the same transport semantics as fabric.
			cp := *p
			cp.Src = t.addr
			cp.Dest = t.addr
			select {
			case <-t.done:
			case t.recv <- &cp:
			default:
			}
			continue
		}
		_ = t.send(a, p)
	}
	return nil
}

// Recv implements Transport.
func (t *UDPTransport) Recv() <-chan *Packet { return t.recv }

// Close implements Transport.
func (t *UDPTransport) Close() error {
	select {
	case <-t.done:
		return nil
	default:
	}
	close(t.done)
	err := t.conn.Close()
	t.wg.Wait()
	return err
}
