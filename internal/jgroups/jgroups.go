// Package jgroups is the group-communication substrate HDNS replicates
// over (§4.2 of the paper): process groups with reliable multicast,
// failure detection, coordinator-driven membership views, state transfer,
// and recovery from network partitions.
//
// Two quality-of-service suites are provided, mirroring the paper's
// discussion:
//
//   - ModeVirtualSynchrony: a coordinator-sequencer totally orders all
//     messages and a flush protocol makes delivery view-synchronous
//     (atomic broadcast); the whole group runs at the speed of its
//     slowest member.
//   - ModeBimodal: senders multicast best-effort and an anti-entropy
//     gossip protocol repairs losses probabilistically (Birman et al.'s
//     bimodal multicast); better scalability, weaker guarantees. This is
//     the HDNS default, as in the paper.
//
// After a transient partition heals, the PRIMARY PARTITION protocol
// (§4.3) selects the partition deemed to have the valid state — the
// larger side, ties broken by smallest member address — and forces the
// other side to re-synchronize via state transfer.
package jgroups

import (
	"fmt"
	"time"
)

// Address identifies a group member uniquely within a transport domain.
type Address string

// View is an installed membership view. Members are ordered by seniority;
// the first member is the coordinator.
type View struct {
	// ID increases monotonically with every installed view (across
	// merges the maximum of the merged sides plus one).
	ID uint64
	// Members in seniority order; Members[0] coordinates.
	Members []Address
}

// Coord returns the coordinator of the view.
func (v *View) Coord() Address {
	if v == nil || len(v.Members) == 0 {
		return ""
	}
	return v.Members[0]
}

// Contains reports membership of addr.
func (v *View) Contains(addr Address) bool {
	if v == nil {
		return false
	}
	for _, m := range v.Members {
		if m == addr {
			return true
		}
	}
	return false
}

// Clone deep-copies the view.
func (v *View) Clone() *View {
	if v == nil {
		return nil
	}
	m := make([]Address, len(v.Members))
	copy(m, v.Members)
	return &View{ID: v.ID, Members: m}
}

func (v *View) String() string {
	return fmt.Sprintf("view[%d|%v]", v.ID, v.Members)
}

// Mode selects the protocol suite.
type Mode int

// Protocol suites.
const (
	// ModeVirtualSynchrony totally orders messages through the
	// coordinator and flushes on view changes.
	ModeVirtualSynchrony Mode = iota
	// ModeBimodal multicasts best-effort with gossip anti-entropy.
	ModeBimodal
)

func (m Mode) String() string {
	if m == ModeBimodal {
		return "bimodal"
	}
	return "virtual-synchrony"
}

// Config tunes a channel's protocol stack, the analog of the JGroups
// protocol stack configuration string.
type Config struct {
	Mode Mode
	// HeartbeatInterval is the failure-detector beat period.
	HeartbeatInterval time.Duration
	// SuspectAfter marks a member suspected when no heartbeat arrived
	// for this long.
	SuspectAfter time.Duration
	// GossipInterval is the anti-entropy round period (bimodal only).
	GossipInterval time.Duration
	// RetransmitTimeout is how long a delivery gap may persist before a
	// NAK is sent (virtual synchrony only).
	RetransmitTimeout time.Duration
	// MergeInterval is how often a coordinator announces itself to
	// detect partitions to merge.
	MergeInterval time.Duration
	// JoinTimeout bounds Connect.
	JoinTimeout time.Duration
	// MaxPending bounds each out-of-order delivery buffer: per-sender in
	// bimodal mode, global in virtual synchrony. When full, the
	// newest buffered packet is dropped (LIFO shed) and recovered later
	// by gossip repair / NAK retransmission — bounded memory under a
	// storm instead of the Figure 5 collapse. 0 uses DefaultMaxPending;
	// negative disables the bound (the paper's unbounded behaviour, kept
	// for the benchmark's "collapse" arm).
	MaxPending int
	// SendWindow is the sender credit window: Send blocks once this many
	// of the member's own messages are unacknowledged by the slowest
	// view member (acks ride heartbeat/gossip digests). Backpressure
	// replaces unbounded receiver queues — replication writes slow to
	// the group's drain rate instead of burying a lagging member. 0 uses
	// DefaultSendWindow; negative disables backpressure.
	SendWindow int
}

// Defaults for the buffer bounds.
const (
	DefaultMaxPending = 2048
	DefaultSendWindow = 1024
)

// DefaultConfig returns the stack used by HDNS by default (bimodal, as in
// the paper).
func DefaultConfig() Config {
	return Config{
		Mode:              ModeBimodal,
		HeartbeatInterval: 150 * time.Millisecond,
		SuspectAfter:      900 * time.Millisecond,
		GossipInterval:    100 * time.Millisecond,
		RetransmitTimeout: 120 * time.Millisecond,
		MergeInterval:     300 * time.Millisecond,
		JoinTimeout:       5 * time.Second,
	}
}

// VirtualSynchronyConfig returns the atomic-broadcast stack.
func VirtualSynchronyConfig() Config {
	c := DefaultConfig()
	c.Mode = ModeVirtualSynchrony
	return c
}

// packet kinds.
type kind uint8

const (
	kData          kind = iota + 1 // sequenced multicast data (VS)
	kDataFwd                       // member -> coordinator: please sequence
	kDataBimodal                   // best-effort multicast data (bimodal)
	kJoinReq                       // joiner -> coordinator
	kJoinRsp                       // coordinator -> joiner (view)
	kLeave                         // member -> coordinator
	kView                          // coordinator -> members: install view
	kFlushStart                    // coordinator -> members
	kFlushAck                      // member -> coordinator (delivered digest)
	kHeartbeat                     // bidirectional liveness
	kNakReq                        // member -> coordinator: retransmit seqs
	kGossip                        // bimodal digest
	kGossipRsp                     // bimodal repair
	kStateReq                      // member -> coordinator
	kStateRsp                      // coordinator -> member
	kDiscover                      // broadcast: who coordinates <group>?
	kDiscoverRsp                   // coordinator -> requester
	kMergeAnnounce                 // coordinator broadcast for merge detection
	kMergeView                     // merge leader -> everyone: merged view
)

func (k kind) String() string {
	names := [...]string{"?", "data", "dataFwd", "dataBimodal", "joinReq", "joinRsp",
		"leave", "view", "flushStart", "flushAck", "heartbeat", "nakReq",
		"gossip", "gossipRsp", "stateReq", "stateRsp", "discover", "discoverRsp",
		"mergeAnnounce", "mergeView"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Packet is the single wire unit exchanged by all protocol layers. Typed
// fields replace JGroups' per-protocol headers; each layer reads only the
// fields it owns.
type Packet struct {
	Kind  kind
	Group string
	Src   Address
	Dest  Address // "" on broadcasts

	// Data path.
	Seq     uint64  // global seq (VS) or per-sender seq (bimodal)
	From    Address // original sender (survives forwarding/retransmission)
	Payload []byte

	// Membership / flush / merge.
	View    *View
	Addrs   []Address // merge: members of the primary partition
	ViewID  uint64
	Digest  map[Address]uint64 // per-sender delivered seqs (acks, gossip)
	Seqs    []uint64           // NAK requests
	Packets []*Packet          // gossip repair bundles
	Bool    bool               // generic flag (e.g. state requested)
	Err     string
}

// MergeEvent notifies the application that a partition merge completed.
type MergeEvent struct {
	// Primary is true on members whose partition was selected by the
	// PRIMARY PARTITION protocol; their state is authoritative. Members
	// of non-primary partitions must resynchronize (the channel pulls
	// fresh state automatically; SetState fires before this event on
	// non-primary members).
	Primary bool
	View    *View
}

// Receiver is the application-facing callback set.
type Receiver struct {
	// Deliver is called with each delivered group message (including
	// the member's own), in delivery order. Required.
	Deliver func(src Address, payload []byte)
	// ViewChange is called after each installed view. Optional.
	ViewChange func(v *View)
	// GetState must return a snapshot of application state for
	// transfer to joiners. Optional (nil disables state transfer).
	GetState func() []byte
	// SetState replaces application state from a transfer. Optional.
	SetState func(state []byte)
	// Merge is called after partition merges complete. Optional.
	Merge func(e MergeEvent)
}
