package jgroups

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Transport moves packets between members. Implementations: the in-process
// Fabric (with partition/loss/delay fault injection, used by tests and the
// benchmark harness) and the UDP transport (for multi-process daemons).
type Transport interface {
	// Addr returns this endpoint's address.
	Addr() Address
	// Send unicasts a packet. Delivery is best-effort; reliability is
	// the protocol stack's job.
	Send(dest Address, p *Packet) error
	// Broadcast delivers best-effort to every reachable endpoint in the
	// transport domain (the emulation of IP multicast used by
	// discovery, merge announcements, and bimodal data).
	Broadcast(p *Packet) error
	// Recv returns the inbound packet channel; it is closed when the
	// endpoint closes.
	Recv() <-chan *Packet
	// Close tears the endpoint down.
	Close() error
}

// ErrEndpointClosed is returned when sending through a closed endpoint.
var ErrEndpointClosed = errors.New("jgroups: endpoint closed")

// Fabric is an in-process transport domain. It supports fault injection:
// network partitions (endpoints in different cells cannot exchange
// packets), probabilistic message loss, and fixed delivery delay.
//
// Endpoint inboxes are unbounded, faithfully reproducing the JGroups
// buffer-management behaviour the paper diagnoses in §7: flooding a
// member grows its queues without bound.
type Fabric struct {
	mu        sync.Mutex
	endpoints map[Address]*fabricEP
	cells     map[Address]int // partition cell; default 0
	loss      float64
	delay     time.Duration
	rng       *rand.Rand
}

// NewFabric creates an empty transport domain.
func NewFabric() *Fabric {
	return &Fabric{
		endpoints: map[Address]*fabricEP{},
		cells:     map[Address]int{},
		rng:       rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// SetLoss drops each packet with probability p (0 ≤ p < 1).
func (f *Fabric) SetLoss(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.loss = p
}

// SetDelay delays each delivery by d.
func (f *Fabric) SetDelay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delay = d
}

// Partition splits the fabric into cells: groups[i] go to cell i+1,
// unlisted endpoints stay in cell 0. Packets cross cells never.
func (f *Fabric) Partition(groups ...[]Address) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cells = map[Address]int{}
	for i, g := range groups {
		for _, a := range g {
			f.cells[a] = i + 1
		}
	}
}

// Heal removes all partitions.
func (f *Fabric) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cells = map[Address]int{}
}

// Endpoint creates (or replaces) the endpoint for addr.
func (f *Fabric) Endpoint(addr Address) Transport {
	ep := &fabricEP{fabric: f, addr: addr, ch: make(chan *Packet, 64), quit: make(chan struct{})}
	ep.cond = sync.NewCond(&ep.mu)
	go ep.pump()
	f.mu.Lock()
	if old := f.endpoints[addr]; old != nil {
		old.closeLocked()
	}
	f.endpoints[addr] = ep
	f.mu.Unlock()
	return ep
}

// QueueLen reports the endpoint's pending inbound queue length (for tests
// observing the unbounded-buffer pathology).
func (f *Fabric) QueueLen(addr Address) int {
	f.mu.Lock()
	ep := f.endpoints[addr]
	f.mu.Unlock()
	if ep == nil {
		return 0
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return len(ep.queue)
}

// deliver enqueues p at the destination if reachable.
func (f *Fabric) deliver(src Address, dest *fabricEP, p *Packet) {
	f.mu.Lock()
	if f.cells[src] != f.cells[dest.addr] {
		f.mu.Unlock()
		return
	}
	if f.loss > 0 && f.rng.Float64() < f.loss {
		f.mu.Unlock()
		return
	}
	delay := f.delay
	f.mu.Unlock()
	if delay > 0 {
		time.AfterFunc(delay, func() { dest.enqueue(p) })
		return
	}
	dest.enqueue(p)
}

type fabricEP struct {
	fabric *Fabric
	addr   Address

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*Packet // unbounded inbox
	closed bool
	quit   chan struct{}

	ch chan *Packet
}

// pump moves packets from the unbounded queue to the receive channel.
func (ep *fabricEP) pump() {
	for {
		ep.mu.Lock()
		for len(ep.queue) == 0 && !ep.closed {
			ep.cond.Wait()
		}
		if ep.closed {
			ep.mu.Unlock()
			close(ep.ch)
			return
		}
		p := ep.queue[0]
		ep.queue = ep.queue[1:]
		ep.mu.Unlock()
		select {
		case ep.ch <- p:
		case <-ep.quit:
			close(ep.ch)
			return
		}
	}
}

func (ep *fabricEP) enqueue(p *Packet) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return
	}
	ep.queue = append(ep.queue, p)
	ep.cond.Signal()
}

func (ep *fabricEP) Addr() Address { return ep.addr }

func (ep *fabricEP) Send(dest Address, p *Packet) error {
	ep.mu.Lock()
	closed := ep.closed
	ep.mu.Unlock()
	if closed {
		return ErrEndpointClosed
	}
	cp := *p
	cp.Src = ep.addr
	cp.Dest = dest
	ep.fabric.mu.Lock()
	target := ep.fabric.endpoints[dest]
	ep.fabric.mu.Unlock()
	if target == nil {
		return nil // unknown peers are dropped, like UDP
	}
	ep.fabric.deliver(ep.addr, target, &cp)
	return nil
}

func (ep *fabricEP) Broadcast(p *Packet) error {
	ep.mu.Lock()
	closed := ep.closed
	ep.mu.Unlock()
	if closed {
		return ErrEndpointClosed
	}
	ep.fabric.mu.Lock()
	targets := make([]*fabricEP, 0, len(ep.fabric.endpoints))
	for _, t := range ep.fabric.endpoints {
		targets = append(targets, t)
	}
	ep.fabric.mu.Unlock()
	for _, t := range targets {
		cp := *p
		cp.Src = ep.addr
		cp.Dest = t.addr
		ep.fabric.deliver(ep.addr, t, &cp)
	}
	return nil
}

func (ep *fabricEP) Recv() <-chan *Packet { return ep.ch }

func (ep *fabricEP) Close() error {
	ep.fabric.mu.Lock()
	if ep.fabric.endpoints[ep.addr] == ep {
		delete(ep.fabric.endpoints, ep.addr)
	}
	ep.fabric.mu.Unlock()
	ep.closeLocked()
	return nil
}

func (ep *fabricEP) closeLocked() {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if !ep.closed {
		ep.closed = true
		close(ep.quit)
		ep.cond.Signal()
	}
}
