package jgroups

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testConfig(mode Mode) Config {
	return Config{
		Mode:              mode,
		HeartbeatInterval: 40 * time.Millisecond,
		SuspectAfter:      350 * time.Millisecond,
		GossipInterval:    30 * time.Millisecond,
		RetransmitTimeout: 50 * time.Millisecond,
		MergeInterval:     80 * time.Millisecond,
		JoinTimeout:       3 * time.Second,
	}
}

// node couples a channel with a recorded delivery log.
type node struct {
	ch *Channel

	mu     sync.Mutex
	log    []string // "src:payload"
	views  []*View
	merges []MergeEvent
	state  []byte
}

func (n *node) deliveries() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, len(n.log))
	copy(out, n.log)
	return out
}

func (n *node) lastView() *View {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.views) == 0 {
		return nil
	}
	return n.views[len(n.views)-1]
}

func (n *node) mergeEvents() []MergeEvent {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]MergeEvent, len(n.merges))
	copy(out, n.merges)
	return out
}

func startNode(t *testing.T, f *Fabric, name string, cfg Config, group string) *node {
	t.Helper()
	n := &node{}
	n.ch = NewChannel(f.Endpoint(Address(name)), cfg)
	r := Receiver{
		Deliver: func(src Address, payload []byte) {
			n.mu.Lock()
			n.log = append(n.log, fmt.Sprintf("%s:%s", src, payload))
			n.mu.Unlock()
		},
		ViewChange: func(v *View) {
			n.mu.Lock()
			n.views = append(n.views, v)
			n.mu.Unlock()
		},
		GetState: func() []byte {
			n.mu.Lock()
			defer n.mu.Unlock()
			return append([]byte(nil), n.state...)
		},
		SetState: func(st []byte) {
			n.mu.Lock()
			n.state = append([]byte(nil), st...)
			n.mu.Unlock()
		},
		Merge: func(e MergeEvent) {
			n.mu.Lock()
			n.merges = append(n.merges, e)
			n.mu.Unlock()
		},
	}
	if err := n.ch.Connect(group, r); err != nil {
		t.Fatalf("connect %s: %v", name, err)
	}
	t.Cleanup(func() { n.ch.Close() })
	return n
}

// waitFor polls cond until true or the deadline elapses.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestSingletonConnect(t *testing.T) {
	f := NewFabric()
	n := startNode(t, f, "a", testConfig(ModeVirtualSynchrony), "g")
	v := n.ch.View()
	if v == nil || len(v.Members) != 1 || v.Coord() != "a" {
		t.Fatalf("view = %v", v)
	}
	if !n.ch.IsCoordinator() {
		t.Error("singleton must coordinate")
	}
	// Self-delivery.
	if err := n.ch.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, "self delivery", func() bool {
		return len(n.deliveries()) == 1
	})
	if got := n.deliveries()[0]; got != "a:hello" {
		t.Errorf("delivery = %q", got)
	}
}

func TestJoinAndBroadcast(t *testing.T) {
	for _, mode := range []Mode{ModeVirtualSynchrony, ModeBimodal} {
		t.Run(mode.String(), func(t *testing.T) {
			f := NewFabric()
			a := startNode(t, f, "a", testConfig(mode), "g")
			b := startNode(t, f, "b", testConfig(mode), "g")
			c := startNode(t, f, "c", testConfig(mode), "g")
			for _, n := range []*node{a, b, c} {
				waitFor(t, 3*time.Second, "3-member view", func() bool {
					v := n.ch.View()
					return v != nil && len(v.Members) == 3
				})
			}
			if err := a.ch.Send([]byte("m1")); err != nil {
				t.Fatal(err)
			}
			if err := b.ch.Send([]byte("m2")); err != nil {
				t.Fatal(err)
			}
			if err := c.ch.Send([]byte("m3")); err != nil {
				t.Fatal(err)
			}
			for _, n := range []*node{a, b, c} {
				waitFor(t, 3*time.Second, "3 deliveries", func() bool {
					return len(n.deliveries()) == 3
				})
			}
		})
	}
}

// Virtual synchrony: all members must deliver the identical sequence.
func TestTotalOrder(t *testing.T) {
	f := NewFabric()
	cfg := testConfig(ModeVirtualSynchrony)
	nodes := []*node{
		startNode(t, f, "a", cfg, "g"),
		startNode(t, f, "b", cfg, "g"),
		startNode(t, f, "c", cfg, "g"),
	}
	for _, n := range nodes {
		waitFor(t, 3*time.Second, "view", func() bool {
			v := n.ch.View()
			return v != nil && len(v.Members) == 3
		})
	}
	const perNode = 30
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			for k := 0; k < perNode; k++ {
				if err := n.ch.Send([]byte(fmt.Sprintf("n%d-%d", i, k))); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(i, n)
	}
	wg.Wait()
	total := perNode * len(nodes)
	for _, n := range nodes {
		waitFor(t, 5*time.Second, "all deliveries", func() bool {
			return len(n.deliveries()) == total
		})
	}
	ref := nodes[0].deliveries()
	for i, n := range nodes[1:] {
		if !reflect.DeepEqual(ref, n.deliveries()) {
			t.Fatalf("node %d delivered a different order", i+1)
		}
	}
}

// Virtual synchrony with loss: NAK retransmission fills the gaps.
func TestRetransmission(t *testing.T) {
	f := NewFabric()
	cfg := testConfig(ModeVirtualSynchrony)
	a := startNode(t, f, "a", cfg, "g")
	b := startNode(t, f, "b", cfg, "g")
	waitFor(t, 3*time.Second, "view", func() bool {
		v := b.ch.View()
		return v != nil && len(v.Members) == 2
	})
	f.SetLoss(0.3)
	const msgs = 40
	for k := 0; k < msgs; k++ {
		if err := a.ch.Send([]byte(fmt.Sprintf("m%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	f.SetLoss(0) // let NAKs and repairs through reliably from here on
	waitFor(t, 8*time.Second, "lossy deliveries", func() bool {
		return len(b.deliveries()) == msgs
	})
	// Order must be intact.
	got := b.deliveries()
	for k := 0; k < msgs; k++ {
		if got[k] != fmt.Sprintf("a:m%d", k) {
			t.Fatalf("delivery %d = %q", k, got[k])
		}
	}
}

// Bimodal with loss: gossip anti-entropy repairs missing messages.
func TestBimodalGossipRepair(t *testing.T) {
	f := NewFabric()
	cfg := testConfig(ModeBimodal)
	a := startNode(t, f, "a", cfg, "g")
	b := startNode(t, f, "b", cfg, "g")
	c := startNode(t, f, "c", cfg, "g")
	for _, n := range []*node{a, b, c} {
		waitFor(t, 3*time.Second, "view", func() bool {
			v := n.ch.View()
			return v != nil && len(v.Members) == 3
		})
	}
	f.SetLoss(0.25)
	const msgs = 30
	for k := 0; k < msgs; k++ {
		if err := a.ch.Send([]byte(fmt.Sprintf("m%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	f.SetLoss(0)
	for _, n := range []*node{b, c} {
		waitFor(t, 8*time.Second, "gossip repair", func() bool {
			return len(n.deliveries()) == msgs
		})
		got := n.deliveries()
		for k := 0; k < msgs; k++ {
			if got[k] != fmt.Sprintf("a:m%d", k) {
				t.Fatalf("per-sender FIFO violated: %d = %q", k, got[k])
			}
		}
	}
}

func TestStateTransferOnJoin(t *testing.T) {
	f := NewFabric()
	cfg := testConfig(ModeBimodal)
	a := startNode(t, f, "a", cfg, "g")
	a.mu.Lock()
	a.state = []byte("golden-state")
	a.mu.Unlock()
	b := startNode(t, f, "b", cfg, "g")
	waitFor(t, 3*time.Second, "state transfer", func() bool {
		b.mu.Lock()
		defer b.mu.Unlock()
		return string(b.state) == "golden-state"
	})
}

func TestMemberCrashShrinksView(t *testing.T) {
	f := NewFabric()
	cfg := testConfig(ModeVirtualSynchrony)
	a := startNode(t, f, "a", cfg, "g")
	b := startNode(t, f, "b", cfg, "g")
	waitFor(t, 3*time.Second, "2-view", func() bool {
		v := a.ch.View()
		return v != nil && len(v.Members) == 2
	})
	// Crash b without a leave message.
	b.ch.tr.Close()
	waitFor(t, 4*time.Second, "shrunk view", func() bool {
		v := a.ch.View()
		return v != nil && len(v.Members) == 1
	})
	// The group still works.
	if err := a.ch.Send([]byte("alone")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, "post-crash delivery", func() bool {
		d := a.deliveries()
		return len(d) > 0 && d[len(d)-1] == "a:alone"
	})
}

func TestCoordinatorFailover(t *testing.T) {
	f := NewFabric()
	cfg := testConfig(ModeVirtualSynchrony)
	a := startNode(t, f, "a", cfg, "g")
	b := startNode(t, f, "b", cfg, "g")
	c := startNode(t, f, "c", cfg, "g")
	for _, n := range []*node{a, b, c} {
		waitFor(t, 3*time.Second, "view", func() bool {
			v := n.ch.View()
			return v != nil && len(v.Members) == 3
		})
	}
	if !a.ch.IsCoordinator() {
		t.Fatal("a should coordinate (first member)")
	}
	a.ch.tr.Close() // coordinator crash
	waitFor(t, 5*time.Second, "failover", func() bool {
		vb, vc := b.ch.View(), c.ch.View()
		return vb != nil && vc != nil &&
			len(vb.Members) == 2 && len(vc.Members) == 2 &&
			vb.Coord() == "b" && vc.Coord() == "b"
	})
	// Survivors still multicast.
	if err := c.ch.Send([]byte("after")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "post-failover delivery", func() bool {
		d := b.deliveries()
		return len(d) > 0 && d[len(d)-1] == "c:after"
	})
}

func TestGracefulLeave(t *testing.T) {
	f := NewFabric()
	cfg := testConfig(ModeBimodal)
	a := startNode(t, f, "a", cfg, "g")
	b := startNode(t, f, "b", cfg, "g")
	waitFor(t, 3*time.Second, "2-view", func() bool {
		v := a.ch.View()
		return v != nil && len(v.Members) == 2
	})
	if err := b.ch.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "view after leave", func() bool {
		v := a.ch.View()
		return v != nil && len(v.Members) == 1
	})
}

func TestPartitionAndPrimaryMerge(t *testing.T) {
	f := NewFabric()
	cfg := testConfig(ModeBimodal)
	a := startNode(t, f, "a", cfg, "g")
	b := startNode(t, f, "b", cfg, "g")
	c := startNode(t, f, "c", cfg, "g")
	for _, n := range []*node{a, b, c} {
		waitFor(t, 3*time.Second, "3-view", func() bool {
			v := n.ch.View()
			return v != nil && len(v.Members) == 3
		})
	}
	// Isolate c: {a,b} | {c}.
	f.Partition([]Address{"a", "b"}, []Address{"c"})
	waitFor(t, 5*time.Second, "partitioned views", func() bool {
		va, vc := a.ch.View(), c.ch.View()
		return va != nil && len(va.Members) == 2 && vc != nil && len(vc.Members) == 1 && vc.Coord() == "c"
	})
	// Diverge state: the majority side has the authoritative value.
	a.mu.Lock()
	a.state = []byte("primary-state")
	a.mu.Unlock()
	c.mu.Lock()
	c.state = []byte("stale-state")
	c.mu.Unlock()

	f.Heal()
	waitFor(t, 6*time.Second, "merged view", func() bool {
		for _, n := range []*node{a, b, c} {
			v := n.ch.View()
			if v == nil || len(v.Members) != 3 {
				return false
			}
		}
		return true
	})
	// PRIMARY PARTITION: {a,b} is larger, so c must resync and see a
	// non-primary merge event.
	waitFor(t, 5*time.Second, "c resynced", func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return string(c.state) == "primary-state"
	})
	waitFor(t, 3*time.Second, "merge events", func() bool {
		return len(c.mergeEvents()) > 0 && len(a.mergeEvents()) > 0
	})
	if e := c.mergeEvents()[0]; e.Primary {
		t.Error("c was in the minority partition but flagged primary")
	}
	if e := a.mergeEvents()[0]; !e.Primary {
		t.Error("a was in the majority partition but flagged non-primary")
	}
	// The merged group multicasts again.
	if err := c.ch.Send([]byte("rejoined")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 4*time.Second, "post-merge delivery", func() bool {
		d := a.deliveries()
		return len(d) > 0 && d[len(d)-1] == "c:rejoined"
	})
}

func TestPacketGobRoundTrip(t *testing.T) {
	p := &Packet{
		Kind: kMergeView, Group: "g", Src: "a", Dest: "b", Seq: 42, From: "c",
		Payload: []byte("x"), View: &View{ID: 7, Members: []Address{"a", "b"}},
		Addrs: []Address{"a"}, Digest: map[Address]uint64{"a": 1},
		Seqs: []uint64{1, 2}, Packets: []*Packet{{Kind: kData, Seq: 9}},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		t.Fatal(err)
	}
	var back Packet
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != p.Kind || back.View.ID != 7 || len(back.Packets) != 1 || back.Packets[0].Seq != 9 {
		t.Errorf("round trip = %+v", back)
	}
}

func TestUDPTransportPair(t *testing.T) {
	ta, err := NewUDPTransport("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewUDPTransport("127.0.0.1:0", []string{string(ta.Addr())})
	if err != nil {
		t.Fatal(err)
	}
	ta.AddPeer(string(tb.Addr()))

	cfg := testConfig(ModeBimodal)
	a := &node{ch: NewChannel(ta, cfg)}
	if err := a.ch.Connect("u", Receiver{Deliver: func(src Address, p []byte) {
		a.mu.Lock()
		a.log = append(a.log, string(p))
		a.mu.Unlock()
	}}); err != nil {
		t.Fatal(err)
	}
	defer a.ch.Close()

	b := &node{}
	b.ch = NewChannel(tb, cfg)
	if err := b.ch.Connect("u", Receiver{Deliver: func(src Address, p []byte) {
		b.mu.Lock()
		b.log = append(b.log, string(p))
		b.mu.Unlock()
	}}); err != nil {
		t.Fatal(err)
	}
	defer b.ch.Close()

	waitFor(t, 4*time.Second, "udp 2-view", func() bool {
		va, vb := a.ch.View(), b.ch.View()
		return va != nil && vb != nil && len(va.Members) == 2 && len(vb.Members) == 2
	})
	if err := a.ch.Send([]byte("over-udp")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "udp delivery", func() bool {
		return len(b.deliveries()) == 1 && b.deliveries()[0] == "over-udp"
	})
}

func TestFabricPartitionBlocksTraffic(t *testing.T) {
	f := NewFabric()
	e1 := f.Endpoint("x")
	e2 := f.Endpoint("y")
	f.Partition([]Address{"x"}, []Address{"y"})
	if err := e1.Send("y", &Packet{Kind: kData, Group: "g"}); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-e2.Recv():
		t.Fatalf("partitioned packet delivered: %+v", p)
	case <-time.After(100 * time.Millisecond):
	}
	f.Heal()
	if err := e1.Send("y", &Packet{Kind: kData, Group: "g"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-e2.Recv():
	case <-time.After(time.Second):
		t.Fatal("healed packet not delivered")
	}
}

func TestFabricQueueGrowth(t *testing.T) {
	f := NewFabric()
	e1 := f.Endpoint("src")
	f.Endpoint("sink") // nobody reads: queue must grow without bound
	for i := 0; i < 500; i++ {
		if err := e1.Send("sink", &Packet{Kind: kData}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, time.Second, "queue growth", func() bool {
		return f.QueueLen("sink") > 400
	})
}

// View change under traffic: members continuously multicast while a new
// member joins mid-stream. Virtual synchrony requires that the original
// members deliver identical total orders, and that the joiner's log is a
// contiguous suffix of that order (it must not see pre-join messages).
func TestJoinUnderTraffic(t *testing.T) {
	f := NewFabric()
	cfg := testConfig(ModeVirtualSynchrony)
	a := startNode(t, f, "a", cfg, "g")
	b := startNode(t, f, "b", cfg, "g")
	waitFor(t, 3*time.Second, "2-view", func() bool {
		v := b.ch.View()
		return v != nil && len(v.Members) == 2
	})

	stop := make(chan struct{})
	var sent atomic.Int64
	var wg sync.WaitGroup
	for _, n := range []*node{a, b} {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := n.ch.Send([]byte(fmt.Sprintf("m%d", i))); err == nil {
					sent.Add(1)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(n)
	}
	time.Sleep(150 * time.Millisecond)
	c := startNode(t, f, "c", cfg, "g") // joins mid-stream
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()

	total := int(sent.Load())
	for _, n := range []*node{a, b} {
		waitFor(t, 5*time.Second, "all deliveries", func() bool {
			return len(n.deliveries()) >= total
		})
	}
	da, db := a.deliveries(), b.deliveries()
	if !reflect.DeepEqual(da, db) {
		t.Fatal("original members delivered different orders across the view change")
	}
	dc := c.deliveries()
	if len(dc) == 0 {
		t.Fatal("joiner delivered nothing")
	}
	// The joiner's log must be a contiguous suffix of the full order.
	tail := da[len(da)-len(dc):]
	if !reflect.DeepEqual(dc, tail) {
		t.Fatalf("joiner log is not a suffix: joiner %v vs tail %v", dc[:min(3, len(dc))], tail[:min(3, len(tail))])
	}
}

// Fabric delay injection slows delivery but loses nothing.
func TestFabricDelay(t *testing.T) {
	f := NewFabric()
	f.SetDelay(30 * time.Millisecond)
	cfg := testConfig(ModeVirtualSynchrony)
	a := startNode(t, f, "a", cfg, "g")
	b := startNode(t, f, "b", cfg, "g")
	waitFor(t, 5*time.Second, "view with delay", func() bool {
		v := b.ch.View()
		return v != nil && len(v.Members) == 2
	})
	start := time.Now()
	if err := a.ch.Send([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "delayed delivery", func() bool {
		return len(b.deliveries()) == 1
	})
	if time.Since(start) < 25*time.Millisecond {
		t.Error("delay not applied")
	}
}

// The coordinator's retransmission store must be pruned once members
// acknowledge delivery (via heartbeat digests) — otherwise a long-running
// virtual-synchrony group grows without bound.
func TestMsgStorePruning(t *testing.T) {
	f := NewFabric()
	cfg := testConfig(ModeVirtualSynchrony)
	a := startNode(t, f, "a", cfg, "g")
	b := startNode(t, f, "b", cfg, "g")
	waitFor(t, 3*time.Second, "view", func() bool {
		v := b.ch.View()
		return v != nil && len(v.Members) == 2
	})
	const msgs = 200
	for i := 0; i < msgs; i++ {
		if err := a.ch.Send([]byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "deliveries", func() bool {
		return len(b.deliveries()) == msgs
	})
	// After a few heartbeat rounds the acks reach the coordinator and
	// the store shrinks far below the message count.
	waitFor(t, 3*time.Second, "store pruned", func() bool {
		a.ch.mu.Lock()
		n := len(a.ch.msgStore)
		a.ch.mu.Unlock()
		return n < msgs/4
	})
}

// Bimodal per-sender repair stores are bounded.
func TestBimodalStoreBounded(t *testing.T) {
	f := NewFabric()
	cfg := testConfig(ModeBimodal)
	a := startNode(t, f, "a", cfg, "g")
	b := startNode(t, f, "b", cfg, "g")
	waitFor(t, 3*time.Second, "view", func() bool {
		v := b.ch.View()
		return v != nil && len(v.Members) == 2
	})
	for i := 0; i < bimodalStoreMax+500; i++ {
		if err := a.ch.Send([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "deliveries", func() bool {
		return len(b.deliveries()) == bimodalStoreMax+500
	})
	b.ch.mu.Lock()
	n := len(b.ch.senders["a"].store)
	b.ch.mu.Unlock()
	if n > bimodalStoreMax {
		t.Fatalf("repair store grew to %d (cap %d)", n, bimodalStoreMax)
	}
}

// Two processes founding the same group concurrently (both miss each
// other's discovery window) end up in one merged group — the
// self-organization property the HDNS deployment story relies on.
func TestConcurrentFoundersMerge(t *testing.T) {
	f := NewFabric()
	cfg := testConfig(ModeBimodal)
	// Partition the fabric so both found singleton groups.
	f.Partition([]Address{"a"}, []Address{"b"})
	a := startNode(t, f, "a", cfg, "g")
	b := startNode(t, f, "b", cfg, "g")
	va, vb := a.ch.View(), b.ch.View()
	if len(va.Members) != 1 || len(vb.Members) != 1 {
		t.Fatalf("expected two singletons, got %v / %v", va, vb)
	}
	f.Heal()
	waitFor(t, 6*time.Second, "founders merged", func() bool {
		va, vb := a.ch.View(), b.ch.View()
		return va != nil && vb != nil && len(va.Members) == 2 && len(vb.Members) == 2 &&
			va.Coord() == vb.Coord()
	})
	// The merged group multicasts.
	if err := a.ch.Send([]byte("joined-up")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "post-merge delivery", func() bool {
		d := b.deliveries()
		return len(d) > 0 && d[len(d)-1] == "a:joined-up"
	})
}

// A fast producer multicasting to a slow consumer is the Figure 5
// storm: before the send window existed, the lagging member buffered
// without bound while service times grew, and goodput collapsed. With
// bounded buffers the sender runs at the group's drain rate instead:
// every message still arrives, the receiver's buffers stay under their
// caps, and the sender's outstanding credit never exceeds the window.
func TestBoundedBufferStormSurvives(t *testing.T) {
	const (
		storm      = 300
		window     = 16
		maxPending = 64
	)
	f := NewFabric()
	cfg := testConfig(ModeBimodal)
	cfg.SendWindow = window
	cfg.MaxPending = maxPending
	a := startNode(t, f, "a", cfg, "g")

	// The slow consumer: each delivery holds the receive path for 2ms,
	// like a replica whose apply loop has real work to do.
	var slowDelivered atomic.Int64
	b := &node{}
	b.ch = NewChannel(f.Endpoint("b"), cfg)
	if err := b.ch.Connect("g", Receiver{
		Deliver: func(src Address, payload []byte) {
			time.Sleep(2 * time.Millisecond)
			slowDelivered.Add(1)
		},
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.ch.Close() })
	waitFor(t, 3*time.Second, "2-member view", func() bool {
		v := a.ch.View()
		return v != nil && len(v.Members) == 2
	})

	// Watch the invariants while the storm runs.
	stopWatch := make(chan struct{})
	var maxOutstanding, maxBuffered atomic.Int64
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		for {
			select {
			case <-stopWatch:
				return
			case <-time.After(5 * time.Millisecond):
			}
			if n := int64(a.ch.Outstanding()); n > maxOutstanding.Load() {
				maxOutstanding.Store(n)
			}
			if n := int64(b.ch.PendingLen()); n > maxBuffered.Load() {
				maxBuffered.Store(n)
			}
		}
	}()

	for i := 0; i < storm; i++ {
		if err := a.ch.Send([]byte("x")); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	waitFor(t, 15*time.Second, "slow member absorbs the storm", func() bool {
		return slowDelivered.Load() == storm
	})
	close(stopWatch)
	<-watchDone

	if n := maxOutstanding.Load(); n > window+1 {
		t.Errorf("sender outstanding peaked at %d, window is %d", n, window)
	}
	if n := maxBuffered.Load(); n > maxPending {
		t.Errorf("slow member buffered %d packets, cap is %d", n, maxPending)
	}
	if got := len(a.deliveries()); got != storm {
		t.Errorf("sender self-delivered %d of %d", got, storm)
	}
}
