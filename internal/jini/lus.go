package jini

import (
	"bytes"
	"encoding/gob"
	"errors"
	"sync"
	"time"

	"gondi/internal/admission"
	"gondi/internal/costmodel"
	"gondi/internal/obs"
	"gondi/internal/rpc"
)

// LUSConfig configures a lookup service.
type LUSConfig struct {
	// ListenAddr is the registrar TCP address ("127.0.0.1:0").
	ListenAddr string
	// Groups are the discovery groups this LUS belongs to ("" = public).
	Groups []string
	// Costs injects calibrated service times (nil = full speed).
	Costs *costmodel.Costs
	// ReapInterval is the lease-expiry sweep period (default 250ms).
	ReapInterval time.Duration
	// Admission gates every handler; nil admits everything.
	Admission *admission.Controller
}

// LUS is the lookup service (the reggie stand-in).
type LUS struct {
	cfg LUSConfig
	srv *rpc.Server

	mu       sync.Mutex
	items    map[ServiceID]*storedItem
	watchers map[uint64]*watcher
	nextReg  uint64

	done chan struct{}
	wg   sync.WaitGroup
}

type storedItem struct {
	item   ServiceItem
	expiry time.Time
}

type watcher struct {
	id       uint64
	template ServiceTemplate
	mask     int
	expiry   time.Time
	conn     *rpc.ServerConn
}

// NewLUS starts a lookup service.
func NewLUS(cfg LUSConfig) (*LUS, error) {
	if cfg.ReapInterval <= 0 {
		cfg.ReapInterval = 250 * time.Millisecond
	}
	srv, err := rpc.NewServer(cfg.ListenAddr)
	if err != nil {
		return nil, err
	}
	l := &LUS{
		cfg:      cfg,
		srv:      srv,
		items:    map[ServiceID]*storedItem{},
		watchers: map[uint64]*watcher{},
		done:     make(chan struct{}),
	}
	l.registerHandlers()
	srv.OnConnClose(func(sc *rpc.ServerConn) {
		l.mu.Lock()
		for id, w := range l.watchers {
			if w.conn == sc {
				delete(l.watchers, id)
			}
		}
		l.mu.Unlock()
	})
	l.wg.Add(1)
	go l.reaper()
	return l, nil
}

// Addr returns the registrar address.
func (l *LUS) Addr() string { return l.srv.Addr() }

// Groups returns the discovery groups.
func (l *LUS) Groups() []string { return l.cfg.Groups }

// Close stops the service.
func (l *LUS) Close() error {
	select {
	case <-l.done:
		return nil
	default:
	}
	close(l.done)
	l.wg.Wait()
	return l.srv.Close()
}

// reaper expires leases, firing MatchNoMatch events.
func (l *LUS) reaper() {
	defer l.wg.Done()
	t := time.NewTicker(l.cfg.ReapInterval)
	defer t.Stop()
	for {
		select {
		case <-l.done:
			return
		case now := <-t.C:
			l.mu.Lock()
			var fire []func()
			for id, si := range l.items {
				if now.After(si.expiry) {
					delete(l.items, id)
					fire = append(fire, l.transitionLocked(&si.item, nil)...)
				}
			}
			for id, w := range l.watchers {
				if now.After(w.expiry) {
					delete(l.watchers, id)
				}
			}
			l.mu.Unlock()
			for _, f := range fire {
				f()
			}
		}
	}
}

// transitionLocked computes watcher notifications for an item change
// (old == nil for new registrations, new == nil for removals).
func (l *LUS) transitionLocked(old, new *ServiceItem) []func() {
	var fire []func()
	for _, w := range l.watchers {
		oldMatch := old != nil && w.template.Matches(old)
		newMatch := new != nil && w.template.Matches(new)
		var transition int
		switch {
		case oldMatch && !newMatch:
			transition = TransitionMatchNoMatch
		case !oldMatch && newMatch:
			transition = TransitionNoMatchMatch
		case oldMatch && newMatch:
			transition = TransitionMatchMatch
		default:
			continue
		}
		if w.mask&transition == 0 {
			continue
		}
		ev := ServiceEvent{RegistrationID: w.id, Transition: transition}
		if new != nil {
			item := new.Clone()
			ev.Item = &item
			ev.ID = new.ID
		} else if old != nil {
			ev.ID = old.ID
		}
		conn := w.conn
		fire = append(fire, func() {
			var buf bytes.Buffer
			if gob.NewEncoder(&buf).Encode(&ev) == nil {
				_ = conn.Push(mJiniEvent, buf.Bytes())
			}
		})
	}
	return fire
}

func clampLease(ms int64) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 {
		d = DefaultLease
	}
	if d > MaxLease {
		d = MaxLease
	}
	return d
}

// register implements the overwrite-only Jini registration.
func (l *LUS) register(item ServiceItem, leaseMs int64) Registration {
	if item.ID == "" {
		item.ID = NewServiceID()
	}
	expiry := time.Now().Add(clampLease(leaseMs))
	l.mu.Lock()
	var oldItem *ServiceItem
	if prev, ok := l.items[item.ID]; ok {
		o := prev.item.Clone()
		oldItem = &o
	}
	stored := item.Clone()
	l.items[item.ID] = &storedItem{item: stored, expiry: expiry}
	fire := l.transitionLocked(oldItem, &stored)
	l.mu.Unlock()
	for _, f := range fire {
		f()
	}
	return Registration{ID: item.ID, Expiry: expiry}
}

// lookup returns matching items, bounded by max (0 = all).
func (l *LUS) lookup(t ServiceTemplate, max int) []ServiceItem {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []ServiceItem
	for _, si := range l.items {
		if t.Matches(&si.item) {
			out = append(out, si.item.Clone())
			if max > 0 && len(out) >= max {
				break
			}
		}
	}
	return out
}

var errNoSuchLease = errors.New("jini: unknown or expired lease")

func (l *LUS) renew(id ServiceID, leaseMs int64) (time.Time, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	si, ok := l.items[id]
	if !ok {
		return time.Time{}, errNoSuchLease
	}
	si.expiry = time.Now().Add(clampLease(leaseMs))
	return si.expiry, nil
}

func (l *LUS) cancel(id ServiceID) error {
	l.mu.Lock()
	si, ok := l.items[id]
	var fire []func()
	if ok {
		delete(l.items, id)
		fire = l.transitionLocked(&si.item, nil)
	}
	l.mu.Unlock()
	for _, f := range fire {
		f()
	}
	if !ok {
		return errNoSuchLease
	}
	return nil
}

// ItemCount reports the number of live registrations (diagnostics).
func (l *LUS) ItemCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.items)
}

// --- wire protocol ---

const (
	mRegister  = "jini.register"
	mLookup    = "jini.lookup"
	mRenew     = "jini.renew"
	mCancel    = "jini.cancel"
	mNotify    = "jini.notify"
	mUnnotify  = "jini.unnotify"
	mGroups    = "jini.groups"
	mJiniEvent = "jini.event" // push
)

type wireReq struct {
	Item     ServiceItem
	Template ServiceTemplate
	LeaseMs  int64
	ID       ServiceID
	Max      int
	Mask     int
	RegID    uint64
}

type wireRsp struct {
	Reg    Registration
	Items  []ServiceItem
	Expiry time.Time
	RegID  uint64
	Groups []string
}

func (l *LUS) registerHandlers() {
	h := func(name string, class admission.Class, fn func(sc *rpc.ServerConn, req *wireReq) (*wireRsp, error)) {
		reqs := obs.Default.Counter("gondi_server_requests_total",
			"Server-side requests handled, by protocol.",
			obs.Label{K: "proto", V: "jini"}, obs.Label{K: "method", V: name})
		lat := obs.Default.Histogram("gondi_server_request_seconds",
			"Server-side request handling latency, by protocol.",
			obs.Label{K: "proto", V: "jini"}, obs.Label{K: "method", V: name})
		l.srv.Handle(name, func(sc *rpc.ServerConn, body []byte) ([]byte, error) {
			release, aerr := l.cfg.Admission.Admit(class, l.Addr(), name)
			if aerr != nil {
				return nil, aerr
			}
			defer release()
			start := time.Now()
			var req wireReq
			if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&req); err != nil {
				return nil, err
			}
			rsp, err := fn(sc, &req)
			reqs.Inc()
			lat.Since(start)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(rsp); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		})
	}

	h(mRegister, admission.Write, func(sc *rpc.ServerConn, req *wireReq) (*wireRsp, error) {
		// Payload size matters: the provider layer's wrapped stubs are
		// bigger and genuinely cost more to process (Figure 2's SPI
		// penalty).
		l.cfg.Costs.WriteCost(len(req.Item.Service))
		return &wireRsp{Reg: l.register(req.Item, req.LeaseMs)}, nil
	})
	h(mLookup, admission.Search, func(sc *rpc.ServerConn, req *wireReq) (*wireRsp, error) {
		items := l.lookup(req.Template, req.Max)
		// The serialization work is proportional to what goes back on
		// the wire: the provider layer's wrapped stubs are bigger than
		// bare proxies, which is the ≈25% SPI lookup penalty of
		// Figure 2.
		size := 0
		for i := range items {
			size += len(items[i].Service)
			for _, e := range items[i].Entries {
				size += len(e.Type)
				for k, v := range e.Fields {
					size += len(k) + len(v)
				}
			}
		}
		l.cfg.Costs.ReadCost(size)
		return &wireRsp{Items: items}, nil
	})
	h(mRenew, admission.Write, func(sc *rpc.ServerConn, req *wireReq) (*wireRsp, error) {
		exp, err := l.renew(req.ID, req.LeaseMs)
		if err != nil {
			return nil, err
		}
		return &wireRsp{Expiry: exp}, nil
	})
	h(mCancel, admission.Write, func(sc *rpc.ServerConn, req *wireReq) (*wireRsp, error) {
		l.cfg.Costs.WriteCost(0)
		if err := l.cancel(req.ID); err != nil {
			return nil, err
		}
		return &wireRsp{}, nil
	})
	h(mNotify, admission.Read, func(sc *rpc.ServerConn, req *wireReq) (*wireRsp, error) {
		l.mu.Lock()
		l.nextReg++
		id := l.nextReg
		l.watchers[id] = &watcher{
			id: id, template: req.Template, mask: req.Mask,
			expiry: time.Now().Add(clampLease(req.LeaseMs)), conn: sc,
		}
		l.mu.Unlock()
		return &wireRsp{RegID: id}, nil
	})
	h(mUnnotify, admission.Read, func(sc *rpc.ServerConn, req *wireReq) (*wireRsp, error) {
		l.mu.Lock()
		delete(l.watchers, req.RegID)
		l.mu.Unlock()
		return &wireRsp{}, nil
	})
	h(mGroups, admission.Read, func(sc *rpc.ServerConn, req *wireReq) (*wireRsp, error) {
		return &wireRsp{Groups: l.cfg.Groups}, nil
	})
}
