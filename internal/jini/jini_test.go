package jini

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestEntryMatching(t *testing.T) {
	e := NewEntry("Name", "name", "printer-3", "floor", "2")
	tests := []struct {
		tmpl Entry
		want bool
	}{
		{NewEntry("Name", "name", "printer-3"), true},
		{NewEntry("Name", "name", "printer-4"), false},
		{NewEntry("Name"), true},                  // type only
		{NewEntry(""), true},                      // full wildcard
		{NewEntry("Location"), false},             // wrong type
		{NewEntry("Name", "floor", ""), true},     // empty field = wildcard
		{NewEntry("Name", "missing", "x"), false}, // absent field
		{NewEntry("Name", "name", "printer-3", "floor", "2"), true},
	}
	for i, tc := range tests {
		if got := e.MatchesTemplate(tc.tmpl); got != tc.want {
			t.Errorf("case %d: %v matches %v = %v, want %v", i, e, tc.tmpl, got, tc.want)
		}
	}
}

func TestTemplateMatching(t *testing.T) {
	si := &ServiceItem{
		ID:      "svc-1",
		Types:   []string{"compute.Scheduler", "core.Service"},
		Entries: []Entry{NewEntry("Name", "name", "sched"), NewEntry("Location", "site", "emory")},
	}
	tests := []struct {
		tmpl ServiceTemplate
		want bool
	}{
		{ServiceTemplate{}, true},
		{ServiceTemplate{ID: "svc-1"}, true},
		{ServiceTemplate{ID: "other"}, false},
		{ServiceTemplate{Types: []string{"core.Service"}}, true},
		{ServiceTemplate{Types: []string{"core.Service", "compute.Scheduler"}}, true},
		{ServiceTemplate{Types: []string{"storage.Block"}}, false},
		{ServiceTemplate{Entries: []Entry{NewEntry("Name", "name", "sched")}}, true},
		{ServiceTemplate{Entries: []Entry{NewEntry("Name", "name", "x")}}, false},
		{ServiceTemplate{
			Types:   []string{"core.Service"},
			Entries: []Entry{NewEntry("Location", "site", "emory")},
		}, true},
	}
	for i, tc := range tests {
		if got := tc.tmpl.Matches(si); got != tc.want {
			t.Errorf("case %d: %v, want %v", i, got, tc.want)
		}
	}
}

func newTestLUS(t *testing.T) (*LUS, *Registrar) {
	t.Helper()
	l, err := NewLUS(LUSConfig{ListenAddr: "127.0.0.1:0", ReapInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	r, err := DialRegistrar(l.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return l, r
}

func TestRegisterLookup(t *testing.T) {
	ctx := context.Background()
	_, r := newTestLUS(t)
	reg, err := r.Register(ctx, ServiceItem{
		Types:   []string{"printer.Service"},
		Service: []byte("stub"),
		Entries: []Entry{NewEntry("Name", "name", "p1")},
	}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if reg.ID == "" || time.Until(reg.Expiry) <= 0 {
		t.Fatalf("registration = %+v", reg)
	}
	items, err := r.Lookup(ctx, ServiceTemplate{Types: []string{"printer.Service"}}, 0)
	if err != nil || len(items) != 1 || string(items[0].Service) != "stub" {
		t.Fatalf("lookup = %+v, %v", items, err)
	}
	// ID lookup.
	item, ok, err := r.LookupOne(ctx, ServiceTemplate{ID: reg.ID})
	if err != nil || !ok || item.ID != reg.ID {
		t.Fatalf("id lookup = %+v %v %v", item, ok, err)
	}
}

// Register is overwrite-only: same ID replaces unconditionally. This is
// the §5.1 property that forces distributed locking for atomic bind.
func TestRegisterOverwrites(t *testing.T) {
	ctx := context.Background()
	_, r := newTestLUS(t)
	reg, err := r.Register(ctx, ServiceItem{ID: "fixed", Service: []byte("v1")}, time.Minute)
	if err != nil || reg.ID != "fixed" {
		t.Fatal(err)
	}
	if _, err := r.Register(ctx, ServiceItem{ID: "fixed", Service: []byte("v2")}, time.Minute); err != nil {
		t.Fatalf("overwrite register must succeed (idempotency): %v", err)
	}
	item, ok, _ := r.LookupOne(ctx, ServiceTemplate{ID: "fixed"})
	if !ok || string(item.Service) != "v2" {
		t.Fatalf("item = %+v %v", item, ok)
	}
}

func TestLeaseExpiryAndRenewal(t *testing.T) {
	ctx := context.Background()
	_, r := newTestLUS(t)
	reg, err := r.Register(ctx, ServiceItem{ID: "leased"}, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Renew before expiry.
	time.Sleep(120 * time.Millisecond)
	if _, err := r.Renew(ctx, reg.ID, 200*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	if _, ok, _ := r.LookupOne(ctx, ServiceTemplate{ID: "leased"}); !ok {
		t.Fatal("renewed lease expired")
	}
	// Let it lapse.
	deadline := time.Now().Add(3 * time.Second)
	for {
		_, ok, err := r.LookupOne(ctx, ServiceTemplate{ID: "leased"})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(25 * time.Millisecond)
	}
	// Renew after expiry fails.
	if _, err := r.Renew(ctx, reg.ID, time.Minute); err == nil {
		t.Fatal("renew of expired lease succeeded")
	}
}

func TestCancel(t *testing.T) {
	ctx := context.Background()
	_, r := newTestLUS(t)
	reg, _ := r.Register(ctx, ServiceItem{ID: "c"}, time.Minute)
	if err := r.Cancel(ctx, reg.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := r.LookupOne(ctx, ServiceTemplate{ID: "c"}); ok {
		t.Fatal("cancelled item still present")
	}
	if err := r.Cancel(ctx, reg.ID); err == nil {
		t.Fatal("double cancel succeeded")
	}
}

func TestNotifyTransitions(t *testing.T) {
	ctx := context.Background()
	_, r := newTestLUS(t)
	var mu sync.Mutex
	var got []ServiceEvent
	tmpl := ServiceTemplate{Types: []string{"watched.Type"}}
	_, err := r.Notify(ctx, tmpl,
		TransitionNoMatchMatch|TransitionMatchNoMatch|TransitionMatchMatch,
		time.Minute, func(ev ServiceEvent) {
			mu.Lock()
			got = append(got, ev)
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	item := ServiceItem{ID: "w", Types: []string{"watched.Type"}, Service: []byte("1")}
	if _, err := r.Register(ctx, item, time.Minute); err != nil {
		t.Fatal(err)
	}
	item.Service = []byte("2")
	if _, err := r.Register(ctx, item, time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := r.Cancel(ctx, "w"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("got %d events, want 3", n)
		}
		time.Sleep(20 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if got[0].Transition != TransitionNoMatchMatch || got[0].Item == nil {
		t.Errorf("event 0 = %+v", got[0])
	}
	if got[1].Transition != TransitionMatchMatch || string(got[1].Item.Service) != "2" {
		t.Errorf("event 1 = %+v", got[1])
	}
	if got[2].Transition != TransitionMatchNoMatch || got[2].Item != nil {
		t.Errorf("event 2 = %+v", got[2])
	}
}

func TestNotifyMaskFiltering(t *testing.T) {
	ctx := context.Background()
	_, r := newTestLUS(t)
	var mu sync.Mutex
	count := 0
	_, err := r.Notify(ctx, ServiceTemplate{}, TransitionMatchNoMatch, time.Minute, func(ServiceEvent) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(ctx, ServiceItem{ID: "x"}, time.Minute); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	mu.Lock()
	if count != 0 {
		t.Errorf("masked transition delivered (%d)", count)
	}
	mu.Unlock()
	if err := r.Cancel(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := count
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("count = %d, want 1", n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestLeaseExpiryFiresMatchNoMatch(t *testing.T) {
	ctx := context.Background()
	_, r := newTestLUS(t)
	fired := make(chan ServiceEvent, 1)
	if _, err := r.Notify(ctx, ServiceTemplate{}, TransitionMatchNoMatch, time.Minute, func(ev ServiceEvent) {
		select {
		case fired <- ev:
		default:
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(ctx, ServiceItem{ID: "fleeting"}, 150*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-fired:
		if ev.ID != "fleeting" {
			t.Errorf("event = %+v", ev)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("expiry event not delivered")
	}
}

func TestLeaseRenewalManager(t *testing.T) {
	ctx := context.Background()
	_, r := newTestLUS(t)
	reg, err := r.Register(ctx, ServiceItem{ID: "managed"}, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	m := NewLeaseRenewalManager()
	defer m.Stop()
	m.Manage(r, reg.ID, 200*time.Millisecond)
	// Far beyond the original lease, the item must still exist.
	time.Sleep(700 * time.Millisecond)
	if _, ok, _ := r.LookupOne(ctx, ServiceTemplate{ID: "managed"}); !ok {
		t.Fatal("managed lease expired")
	}
	if m.Count() != 1 {
		t.Errorf("Count = %d", m.Count())
	}
	// Forget, then the lease lapses.
	m.Forget(reg.ID)
	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, ok, _ := r.LookupOne(ctx, ServiceTemplate{ID: "managed"}); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("forgotten lease never expired")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func TestLocatorParsing(t *testing.T) {
	cases := map[string]string{
		"jini://host:1234": "host:1234",
		"jini://host":      "host:4160",
		"host:99":          "host:99",
		"host":             "host:4160",
		"jini://:7000":     "127.0.0.1:7000",
	}
	for in, want := range cases {
		l, err := ParseLocator(in)
		if err != nil || l.Addr() != want {
			t.Errorf("ParseLocator(%q) = %q, %v; want %q", in, l.Addr(), err, want)
		}
	}
	if _, err := ParseLocator("jini://"); err == nil {
		t.Error("empty locator parsed")
	}
}

func TestDiscovery(t *testing.T) {
	ResetAnnouncements()
	defer ResetAnnouncements()
	l, err := NewLUS(LUSConfig{ListenAddr: "127.0.0.1:0", Groups: []string{"lab"}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	Announce(l)
	regs, err := DiscoverGroup("lab", time.Second)
	if err != nil || len(regs) != 1 {
		t.Fatalf("discover = %d, %v", len(regs), err)
	}
	defer regs[0].Close()
	groups, err := regs[0].ServiceGroups(context.Background())
	if err != nil || len(groups) != 1 || groups[0] != "lab" {
		t.Errorf("groups = %v, %v", groups, err)
	}
	if _, err := DiscoverGroup("nope", time.Second); err == nil {
		t.Error("empty group discovered")
	}
	Withdraw(l)
	if _, err := DiscoverGroup("lab", time.Second); err == nil {
		t.Error("withdrawn LUS still discoverable")
	}
}

func TestConcurrentRegistrations(t *testing.T) {
	ctx := context.Background()
	l, _ := newTestLUS(t)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r, err := DialRegistrar(l.Addr(), 2*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer r.Close()
			for i := 0; i < 20; i++ {
				if _, err := r.Register(ctx, ServiceItem{
					Types: []string{"load.Test"},
				}, time.Minute); err != nil {
					t.Errorf("register: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := l.ItemCount(); n != 120 {
		t.Errorf("ItemCount = %d, want 120", n)
	}
}
