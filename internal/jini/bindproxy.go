package jini

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"sync"
	"time"

	"gondi/internal/rpc"
)

// BindProxy implements the optimization §7 of the paper proposes for
// strict bind semantics: "a proxy-based solution should be adopted so
// that the necessary locking is performed locally (near the Jini LUS,
// e.g. on the same host), exposing the atomic interface to the client."
//
// The proxy runs next to the lookup service and serializes test-and-set
// registrations under a local mutex, so clients get atomic bind at the
// cost of one extra round trip instead of the Eisenberg–McGuire 3-read/
// 5-write distributed critical section.
type BindProxy struct {
	srv *rpc.Server
	reg *Registrar

	// mu serializes the check-then-register sequence; because every
	// strict write funnels through this one process, the local lock is
	// sufficient (the insight behind the paper's proposal).
	mu sync.Mutex
}

// ErrProxyBound is the proxy's already-bound failure.
var ErrProxyBound = errors.New("jini: already bound")

// NewBindProxy starts a proxy on listenAddr serving atomic registrations
// against the LUS at lusAddr.
func NewBindProxy(lusAddr, listenAddr string) (*BindProxy, error) {
	reg, err := DialRegistrar(lusAddr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	srv, err := rpc.NewServer(listenAddr)
	if err != nil {
		reg.Close()
		return nil, err
	}
	p := &BindProxy{srv: srv, reg: reg}
	p.handlers()
	return p, nil
}

// Addr returns the proxy's address.
func (p *BindProxy) Addr() string { return p.srv.Addr() }

// Close stops the proxy.
func (p *BindProxy) Close() error {
	err := p.srv.Close()
	if cerr := p.reg.Close(); err == nil {
		err = cerr
	}
	return err
}

type proxyReq struct {
	Item    ServiceItem
	LeaseMs int64
	// OnlyNew demands atomic fail-if-bound semantics.
	OnlyNew bool
	// ExistingID, when set with OnlyNew=false, requires the item to
	// already exist (atomic read-modify-write support).
	RequireExists bool
}

type proxyRsp struct {
	Reg Registration
}

const mProxyRegister = "jini.proxy.register"

func (p *BindProxy) handlers() {
	p.srv.Handle(mProxyRegister, func(_ *rpc.ServerConn, body []byte) ([]byte, error) {
		var req proxyReq
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&req); err != nil {
			return nil, err
		}
		p.mu.Lock()
		defer p.mu.Unlock()
		ctx := context.Background()
		if req.Item.ID != "" && (req.OnlyNew || req.RequireExists) {
			_, exists, err := p.reg.LookupOne(ctx, ServiceTemplate{ID: req.Item.ID})
			if err != nil {
				return nil, err
			}
			if exists && req.OnlyNew {
				return nil, ErrProxyBound
			}
			if !exists && req.RequireExists {
				return nil, errNoSuchLease
			}
		}
		reg, err := p.reg.Register(ctx, req.Item, time.Duration(req.LeaseMs)*time.Millisecond)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(proxyRsp{Reg: reg}); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
}

// ProxyClient is the client side of a bind proxy.
type ProxyClient struct {
	rc *rpc.Client
}

// DialProxy connects to a bind proxy.
func DialProxy(addr string, timeout time.Duration) (*ProxyClient, error) {
	rc, err := rpc.Dial(addr, timeout)
	if err != nil {
		return nil, err
	}
	return &ProxyClient{rc: rc}, nil
}

// Close drops the connection.
func (c *ProxyClient) Close() error { return c.rc.Close() }

// Closed reports whether the connection has terminated.
func (c *ProxyClient) Closed() bool { return c.rc.Closed() }

// Register performs an atomic registration through the proxy. With
// onlyNew, it fails (IsAlreadyBound) when the item ID is taken.
func (c *ProxyClient) Register(ctx context.Context, item ServiceItem, lease time.Duration, onlyNew bool) (Registration, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(proxyReq{
		Item: item, LeaseMs: lease.Milliseconds(), OnlyNew: onlyNew,
	}); err != nil {
		return Registration{}, err
	}
	body, err := c.rc.Call(ctx, mProxyRegister, buf.Bytes())
	if err != nil {
		return Registration{}, err
	}
	var rsp proxyRsp
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&rsp); err != nil {
		return Registration{}, err
	}
	return rsp.Reg, nil
}

// IsAlreadyBound reports whether a proxy error is the bound-conflict.
func IsAlreadyBound(err error) bool {
	if err == nil {
		return false
	}
	var re *rpc.RemoteError
	if errors.As(err, &re) {
		return re.Msg == ErrProxyBound.Error()
	}
	return errors.Is(err, ErrProxyBound)
}
