package jini

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newProxyWorld(t *testing.T) (*LUS, *BindProxy, *ProxyClient) {
	t.Helper()
	lus, err := NewLUS(LUSConfig{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lus.Close() })
	proxy, err := NewBindProxy(lus.Addr(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	pc, err := DialProxy(proxy.Addr(), 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	return lus, proxy, pc
}

func TestProxyAtomicRegister(t *testing.T) {
	ctx := context.Background()
	lus, _, pc := newProxyWorld(t)
	item := ServiceItem{ID: "contested", Service: []byte("first")}
	if _, err := pc.Register(ctx, item, time.Minute, true); err != nil {
		t.Fatal(err)
	}
	// Second only-new registration fails atomically.
	item.Service = []byte("second")
	_, err := pc.Register(ctx, item, time.Minute, true)
	if !IsAlreadyBound(err) {
		t.Fatalf("want already-bound, got %v", err)
	}
	// The item is untouched.
	r, err := DialRegistrar(lus.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, ok, _ := r.LookupOne(ctx, ServiceTemplate{ID: "contested"})
	if !ok || string(got.Service) != "first" {
		t.Fatalf("item = %+v %v", got, ok)
	}
	// Overwrite mode succeeds.
	if _, err := pc.Register(ctx, item, time.Minute, false); err != nil {
		t.Fatal(err)
	}
	got, _, _ = r.LookupOne(ctx, ServiceTemplate{ID: "contested"})
	if string(got.Service) != "second" {
		t.Fatalf("overwrite failed: %+v", got)
	}
}

// The whole point: concurrent only-new registrations of the same ID have
// exactly one winner, with no distributed locking at the clients.
func TestProxyConcurrentAtomicity(t *testing.T) {
	ctx := context.Background()
	_, proxy, _ := newProxyWorld(t)
	const racers = 8
	var wg sync.WaitGroup
	wins := make(chan int, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pc, err := DialProxy(proxy.Addr(), 3*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer pc.Close()
			item := ServiceItem{ID: "race", Service: []byte(fmt.Sprintf("racer-%d", i))}
			if _, err := pc.Register(ctx, item, time.Minute, true); err == nil {
				wins <- i
			} else if !IsAlreadyBound(err) {
				t.Errorf("racer %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	n := 0
	for range wins {
		n++
	}
	if n != 1 {
		t.Fatalf("%d winners", n)
	}
}
