package jini

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// LookupLocator is a unicast LUS address, the jini://host:port form of
// the paper's federation URLs.
type LookupLocator struct {
	Host string
	Port string
}

// ParseLocator parses "jini://host:port", "host:port" or "host" (default
// port 4160, Jini's registered port).
func ParseLocator(s string) (LookupLocator, error) {
	s = strings.TrimPrefix(s, "jini://")
	if s == "" {
		return LookupLocator{}, fmt.Errorf("jini: empty locator")
	}
	host, port := s, "4160"
	if i := strings.LastIndexByte(s, ':'); i >= 0 {
		host, port = s[:i], s[i+1:]
	}
	if host == "" {
		host = "127.0.0.1"
	}
	return LookupLocator{Host: host, Port: port}, nil
}

// Addr returns host:port.
func (l LookupLocator) Addr() string { return l.Host + ":" + l.Port }

// String returns the jini:// URL form.
func (l LookupLocator) String() string { return "jini://" + l.Addr() }

// Discover connects via the unicast discovery protocol.
func (l LookupLocator) Discover(timeout time.Duration) (*Registrar, error) {
	return DialRegistrar(l.Addr(), timeout)
}

// The multicast announcement channel: in the original Jini, lookup
// services announce themselves on a well-known multicast group. Within a
// process (tests, benchmarks, examples) announcements go through this
// registry; across machines, unicast locators are used, exactly like
// Jini deployments behind multicast-blocking routers.
var announceMu sync.Mutex
var announced = map[string][]string{} // group -> LUS addresses

// Announce publishes a LUS's presence in its discovery groups.
func Announce(l *LUS) {
	announceMu.Lock()
	defer announceMu.Unlock()
	groups := l.Groups()
	if len(groups) == 0 {
		groups = []string{""} // public group
	}
	for _, g := range groups {
		announced[g] = append(announced[g], l.Addr())
	}
}

// Withdraw removes a LUS's announcements (on shutdown).
func Withdraw(l *LUS) {
	announceMu.Lock()
	defer announceMu.Unlock()
	for g, addrs := range announced {
		var keep []string
		for _, a := range addrs {
			if a != l.Addr() {
				keep = append(keep, a)
			}
		}
		announced[g] = keep
	}
}

// DiscoverGroup returns registrars for every announced LUS in the group
// ("" = public). Callers own the returned connections.
func DiscoverGroup(group string, timeout time.Duration) ([]*Registrar, error) {
	announceMu.Lock()
	addrs := append([]string(nil), announced[group]...)
	announceMu.Unlock()
	var out []*Registrar
	for _, a := range addrs {
		r, err := DialRegistrar(a, timeout)
		if err != nil {
			continue // stale announcement
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("jini: no lookup service in group %q", group)
	}
	return out, nil
}

// ResetAnnouncements clears the announcement registry (tests only).
func ResetAnnouncements() {
	announceMu.Lock()
	defer announceMu.Unlock()
	announced = map[string][]string{}
}
