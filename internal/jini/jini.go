// Package jini implements the Jini substrate of §5.1: a lookup service
// (LUS) holding service items with typed attribute entries, leased
// registrations with automatic expiry, template matching, remote event
// notification, discovery, and a registrar wire protocol.
//
// Faithfully to the paper's analysis, registration is idempotent and
// overwrite-only — `Register` with an existing service ID replaces the
// item unconditionally, and there is no test-and-set primitive. The
// strict JNDI provider must therefore build its atomic bind from
// Eisenberg–McGuire locking over plain read/write operations.
package jini

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"time"
)

// ServiceID uniquely identifies a registered service.
type ServiceID string

// NewServiceID generates a random service ID (the LUS does this for
// first-time registrations, as in Jini).
func NewServiceID() ServiceID {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return ServiceID(hex.EncodeToString(b[:]))
}

// Entry is a Jini attribute entry: a named type with string fields.
// Matching follows Jini semantics: a template entry matches a candidate
// entry if the types are equal and every non-empty template field equals
// the candidate's field exactly.
type Entry struct {
	Type   string
	Fields map[string]string
}

// NewEntry builds an entry from field pairs.
func NewEntry(entryType string, pairs ...string) Entry {
	if len(pairs)%2 != 0 {
		panic("jini.NewEntry: odd field pairs")
	}
	e := Entry{Type: entryType, Fields: map[string]string{}}
	for i := 0; i < len(pairs); i += 2 {
		e.Fields[pairs[i]] = pairs[i+1]
	}
	return e
}

// MatchesTemplate reports whether e satisfies the template entry.
func (e Entry) MatchesTemplate(tmpl Entry) bool {
	if tmpl.Type != "" && tmpl.Type != e.Type {
		return false
	}
	for k, v := range tmpl.Fields {
		if v == "" {
			continue // wildcard field
		}
		if e.Fields[k] != v {
			return false
		}
	}
	return true
}

// Clone deep-copies the entry.
func (e Entry) Clone() Entry {
	f := make(map[string]string, len(e.Fields))
	for k, v := range e.Fields {
		f[k] = v
	}
	return Entry{Type: e.Type, Fields: f}
}

func (e Entry) String() string {
	parts := make([]string, 0, len(e.Fields))
	for k, v := range e.Fields {
		parts = append(parts, k+"="+v)
	}
	return fmt.Sprintf("%s{%s}", e.Type, strings.Join(parts, ","))
}

// ServiceItem is one registered service: its ID, the marshalled service
// proxy ("stub"), the Java-interface-like type names it implements, and
// its attribute entries.
type ServiceItem struct {
	ID      ServiceID
	Types   []string // service interface names, most specific first
	Service []byte   // marshalled proxy object
	Entries []Entry
}

// Clone deep-copies the item.
func (si ServiceItem) Clone() ServiceItem {
	out := ServiceItem{ID: si.ID}
	out.Types = append(out.Types, si.Types...)
	out.Service = append([]byte(nil), si.Service...)
	for _, e := range si.Entries {
		out.Entries = append(out.Entries, e.Clone())
	}
	return out
}

// ServiceTemplate selects services: by ID, by required types, and by
// entry templates (all must match, Jini ServiceTemplate semantics).
type ServiceTemplate struct {
	ID      ServiceID // "" matches any
	Types   []string  // all must be implemented
	Entries []Entry   // each template must match some item entry
}

// Matches reports whether the item satisfies the template.
func (t ServiceTemplate) Matches(si *ServiceItem) bool {
	if t.ID != "" && t.ID != si.ID {
		return false
	}
	for _, want := range t.Types {
		found := false
		for _, have := range si.Types {
			if have == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	for _, tmpl := range t.Entries {
		found := false
		for _, e := range si.Entries {
			if e.MatchesTemplate(tmpl) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Event transition masks (ServiceRegistrar.TRANSITION_*).
const (
	// TransitionMatchNoMatch fires when an item stops matching
	// (deleted or modified away).
	TransitionMatchNoMatch = 1 << iota
	// TransitionNoMatchMatch fires when an item starts matching
	// (registered or modified into matching).
	TransitionNoMatchMatch
	// TransitionMatchMatch fires when a matching item changes but
	// still matches.
	TransitionMatchMatch
)

// ServiceEvent notifies a listener of a registry transition.
type ServiceEvent struct {
	RegistrationID uint64
	Transition     int
	ID             ServiceID
	Item           *ServiceItem // nil on MatchNoMatch
}

// Registration is the result of registering a service: the (possibly
// newly assigned) ID and the granted lease.
type Registration struct {
	ID     ServiceID
	Expiry time.Time
}

// Durations and limits.
const (
	// MaxLease caps granted lease durations (like Jini's 5-minute
	// default maximum for reggie).
	MaxLease = 5 * time.Minute
	// DefaultLease is granted when the requested duration is zero.
	DefaultLease = 30 * time.Second
)
