package jini

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"math/rand"
	"sync"
	"time"

	"gondi/internal/breaker"
	"gondi/internal/retry"
	"gondi/internal/rpc"
)

// Registrar is a client connection to a lookup service (the
// ServiceRegistrar proxy analog).
type Registrar struct {
	rc *rpc.Client

	mu       sync.Mutex
	handlers map[uint64]func(ServiceEvent)
}

// DialRegistrar connects to the LUS at addr.
func DialRegistrar(addr string, timeout time.Duration) (*Registrar, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return DialRegistrarContext(ctx, addr, timeout)
}

// DialRegistrarContext connects to the LUS at addr, bounded by ctx.
// defaultTimeout applies to calls made with deadline-free contexts.
func DialRegistrarContext(ctx context.Context, addr string, defaultTimeout time.Duration) (*Registrar, error) {
	rc, err := rpc.DialContext(ctx, addr, defaultTimeout)
	if err != nil {
		return nil, err
	}
	r := &Registrar{rc: rc, handlers: map[uint64]func(ServiceEvent){}}
	rc.OnPush(func(method string, body []byte) {
		if method != mJiniEvent {
			return
		}
		var ev ServiceEvent
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&ev); err != nil {
			return
		}
		r.mu.Lock()
		h := r.handlers[ev.RegistrationID]
		r.mu.Unlock()
		if h != nil {
			h(ev)
		}
	})
	// Liveness handshake: a TCP dial can complete against a dead LUS (a
	// crashed process's accept queue, a severed relay that accepts and
	// drops), so the dial ends with a no-op Groups round-trip. Failover
	// across "host1:port,host2:port" authorities then moves to the next
	// registrar at dial time instead of failing the first operation.
	if _, err := r.call(ctx, mGroups, &wireReq{}); err != nil {
		rc.Close()
		return nil, err
	}
	return r, nil
}

// Addr returns the LUS endpoint this registrar dialed.
func (r *Registrar) Addr() string { return r.rc.Addr() }

// Close drops the connection (event registrations die with it).
func (r *Registrar) Close() error { return r.rc.Close() }

// Closed reports whether the connection has terminated (e.g. LUS
// shutdown); pooled providers use it to discard dead connections.
func (r *Registrar) Closed() bool { return r.rc.Closed() }

// Done returns a channel that closes when the connection terminates.
// Event registrations die with the connection, so Notify holders select
// on it to learn that no further events will arrive.
func (r *Registrar) Done() <-chan struct{} { return r.rc.Done() }

func (r *Registrar) call(ctx context.Context, method string, req *wireReq) (*wireRsp, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		return nil, err
	}
	body, err := r.rc.Call(ctx, method, buf.Bytes())
	if err != nil {
		return nil, err
	}
	var rsp wireRsp
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&rsp); err != nil {
		return nil, err
	}
	return &rsp, nil
}

// Register registers (or overwrites — Jini has no test-and-set) a service
// item with the requested lease duration.
func (r *Registrar) Register(ctx context.Context, item ServiceItem, lease time.Duration) (Registration, error) {
	rsp, err := r.call(ctx, mRegister, &wireReq{Item: item, LeaseMs: lease.Milliseconds()})
	if err != nil {
		return Registration{}, err
	}
	return rsp.Reg, nil
}

// Lookup returns up to max items matching the template (0 = all).
func (r *Registrar) Lookup(ctx context.Context, t ServiceTemplate, max int) ([]ServiceItem, error) {
	rsp, err := r.call(ctx, mLookup, &wireReq{Template: t, Max: max})
	if err != nil {
		return nil, err
	}
	return rsp.Items, nil
}

// LookupOne returns the first matching item, or ok=false.
func (r *Registrar) LookupOne(ctx context.Context, t ServiceTemplate) (ServiceItem, bool, error) {
	items, err := r.Lookup(ctx, t, 1)
	if err != nil || len(items) == 0 {
		return ServiceItem{}, false, err
	}
	return items[0], true, nil
}

// Renew extends a registration's lease and returns the new expiry.
func (r *Registrar) Renew(ctx context.Context, id ServiceID, lease time.Duration) (time.Time, error) {
	rsp, err := r.call(ctx, mRenew, &wireReq{ID: id, LeaseMs: lease.Milliseconds()})
	if err != nil {
		return time.Time{}, err
	}
	return rsp.Expiry, nil
}

// Cancel terminates a registration immediately.
func (r *Registrar) Cancel(ctx context.Context, id ServiceID) error {
	_, err := r.call(ctx, mCancel, &wireReq{ID: id})
	return err
}

// Notify registers an event listener for template transitions; the
// returned cancel also deregisters the handler.
func (r *Registrar) Notify(ctx context.Context, t ServiceTemplate, mask int, lease time.Duration, fn func(ServiceEvent)) (cancel func(), err error) {
	rsp, err := r.call(ctx, mNotify, &wireReq{Template: t, Mask: mask, LeaseMs: lease.Milliseconds()})
	if err != nil {
		return nil, err
	}
	id := rsp.RegID
	r.mu.Lock()
	r.handlers[id] = fn
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		delete(r.handlers, id)
		r.mu.Unlock()
		_, _ = r.call(context.Background(), mUnnotify, &wireReq{RegID: id})
	}, nil
}

// ServiceGroups returns the LUS's discovery groups.
func (r *Registrar) ServiceGroups(ctx context.Context) ([]string, error) {
	rsp, err := r.call(ctx, mGroups, &wireReq{})
	if err != nil {
		return nil, err
	}
	return rsp.Groups, nil
}

// LeaseRenewalManager renews registrations automatically until cancelled
// — how the JNDI Jini provider keeps bound entries alive (§5.1 "the
// provider automatically renews leases of all entries that it has
// previously bound, until they are explicitly removed, or until the Java
// VM exits").
type LeaseRenewalManager struct {
	// OnLost, when set before the first Manage, is invoked once for each
	// lease the manager gives up on: the registration is gone at the LUS
	// (it answered "unknown") or the lease expired while the LUS was
	// unreachable. Watch holders use it to surface the loss (the JNDI
	// provider fires an EventWatchLost). Called outside the manager's
	// lock.
	OnLost func(id ServiceID, err error)

	mu      sync.Mutex
	tracked map[ServiceID]*trackedLease
	stopped bool
	rng     *rand.Rand
}

// renewPolicy retries a transiently failing renewal a few times inside
// the lease/2 window before giving the registration up for dead.
var renewPolicy = retry.Policy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 500 * time.Millisecond}

type trackedLease struct {
	reg    *Registrar
	lease  time.Duration
	cancel chan struct{}
}

// NewLeaseRenewalManager builds an empty manager.
func NewLeaseRenewalManager() *LeaseRenewalManager {
	return &LeaseRenewalManager{tracked: map[ServiceID]*trackedLease{}}
}

// interval is the jittered renewal period: lease/2 shortened by up to
// 20%, so a fleet of providers whose leases were granted together (e.g.
// after an LUS restart) doesn't renew in lockstep.
func (m *LeaseRenewalManager) interval(lease time.Duration) time.Duration {
	base := lease / 2
	m.mu.Lock()
	if m.rng == nil {
		m.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	j := time.Duration(m.rng.Int63n(int64(base/5) + 1))
	m.mu.Unlock()
	return base - j
}

// Manage renews id's lease through reg on a jittered half-lease period
// until Forget or Stop. Renewals are gated by the LUS endpoint's circuit
// breaker: while it is open the manager skips the wire entirely and
// re-checks shortly, giving the lease up (via OnLost) only once its
// granted duration has actually expired. An LUS that answers "unknown
// registration" loses the lease immediately.
func (m *LeaseRenewalManager) Manage(reg *Registrar, id ServiceID, lease time.Duration) {
	if lease <= 0 {
		lease = DefaultLease
	}
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	if old, ok := m.tracked[id]; ok {
		close(old.cancel)
	}
	tl := &trackedLease{reg: reg, lease: lease, cancel: make(chan struct{})}
	m.tracked[id] = tl
	m.mu.Unlock()
	go func() {
		// The renewal loop's context dies with the tracked lease, so
		// Stop/Forget abort an in-flight renewal instead of waiting it
		// out.
		ctx, cancelCtx := context.WithCancel(context.Background())
		defer cancelCtx()
		go func() {
			<-tl.cancel
			cancelCtx()
		}()
		expiry := time.Now().Add(lease)
		t := time.NewTimer(m.interval(lease))
		defer t.Stop()
		for {
			select {
			case <-tl.cancel:
				return
			case <-t.C:
			}
			var err error
			if addr := reg.Addr(); addr != "" && !breaker.For(addr).Ready() {
				// The LUS endpoint's breaker is rejecting traffic; skip
				// the wire entirely. Only read the state here — the rpc
				// dial layer owns the Allow/Record pair, so a renewal
				// that times out (ctx.Done with no response frame) cannot
				// strand the single half-open probe slot and wedge the
				// breaker permanently.
				err = breaker.ErrOpen
			} else {
				// Bound each renewal round (including retries) to the
				// half-lease window it must fit inside.
				rctx, cancel := context.WithTimeout(ctx, lease/2)
				err = retry.Do(rctx, renewPolicy, func() error {
					_, rerr := reg.Renew(rctx, id, lease)
					return rerr
				})
				cancel()
			}
			if err == nil {
				expiry = time.Now().Add(lease)
				t.Reset(m.interval(lease))
				continue
			}
			var re *rpc.RemoteError
			if errors.As(err, &re) || time.Now().After(expiry) {
				m.lost(id, err)
				return
			}
			// The LUS may return before the lease actually runs out;
			// re-check on a short period without burning the breaker.
			short := lease / 8
			if short > 500*time.Millisecond {
				short = 500 * time.Millisecond
			}
			t.Reset(short)
		}
	}()
}

// lost drops the lease and reports it, exactly once, to OnLost.
func (m *LeaseRenewalManager) lost(id ServiceID, err error) {
	m.mu.Lock()
	tl, ok := m.tracked[id]
	onLost := m.OnLost
	if ok {
		close(tl.cancel)
		delete(m.tracked, id)
	}
	m.mu.Unlock()
	if ok && onLost != nil {
		onLost(id, err)
	}
}

// Forget stops renewing id (without cancelling the registration).
func (m *LeaseRenewalManager) Forget(id ServiceID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if tl, ok := m.tracked[id]; ok {
		close(tl.cancel)
		delete(m.tracked, id)
	}
}

// Stop ends all renewals (provider close / "VM exit").
func (m *LeaseRenewalManager) Stop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stopped = true
	for id, tl := range m.tracked {
		close(tl.cancel)
		delete(m.tracked, id)
	}
}

// Count reports managed leases (diagnostics).
func (m *LeaseRenewalManager) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.tracked)
}

// BatchOp is one operation in a CallMany batch against the LUS.
type BatchOp struct {
	Method string
	Req    *wireReq
}

// BatchRsp is one operation's outcome from CallMany.
type BatchRsp struct {
	Rsp *wireRsp
	Err error
}

// CallMany sends every operation in one batch frame over the shared rpc
// connection; the LUS executes items sequentially in submission order and
// each item fails independently.
func (r *Registrar) CallMany(ctx context.Context, ops []BatchOp) ([]BatchRsp, error) {
	items := make([]rpc.BatchItem, len(ops))
	for i, op := range ops {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(op.Req); err != nil {
			return nil, err
		}
		items[i] = rpc.BatchItem{Method: op.Method, Body: buf.Bytes()}
	}
	results, err := r.rc.CallBatch(ctx, items)
	if err != nil {
		return nil, err
	}
	out := make([]BatchRsp, len(results))
	for i, res := range results {
		if res.Err != nil {
			out[i].Err = res.Err
			continue
		}
		var rsp wireRsp
		if err := gob.NewDecoder(bytes.NewReader(res.Body)).Decode(&rsp); err != nil {
			out[i].Err = err
			continue
		}
		out[i].Rsp = &rsp
	}
	return out, nil
}

// LookupMany matches many templates in one round trip (one BatchRsp per
// template, in order; each capped at max items, 0 = all).
func (r *Registrar) LookupMany(ctx context.Context, ts []ServiceTemplate, max int) ([][]ServiceItem, []error, error) {
	ops := make([]BatchOp, len(ts))
	for i, t := range ts {
		ops[i] = BatchOp{Method: mLookup, Req: &wireReq{Template: t, Max: max}}
	}
	rsps, err := r.CallMany(ctx, ops)
	if err != nil {
		return nil, nil, err
	}
	items := make([][]ServiceItem, len(rsps))
	errs := make([]error, len(rsps))
	for i, br := range rsps {
		if br.Err != nil {
			errs[i] = br.Err
			continue
		}
		items[i] = br.Rsp.Items
	}
	return items, errs, nil
}

// RegisterMany registers many service items in one round trip; items
// apply sequentially server-side and fail independently.
func (r *Registrar) RegisterMany(ctx context.Context, regs []ServiceItem, lease time.Duration) ([]Registration, []error, error) {
	ops := make([]BatchOp, len(regs))
	for i, item := range regs {
		ops[i] = BatchOp{Method: mRegister, Req: &wireReq{Item: item, LeaseMs: lease.Milliseconds()}}
	}
	rsps, err := r.CallMany(ctx, ops)
	if err != nil {
		return nil, nil, err
	}
	out := make([]Registration, len(rsps))
	errs := make([]error, len(rsps))
	for i, br := range rsps {
		if br.Err != nil {
			errs[i] = br.Err
			continue
		}
		out[i] = br.Rsp.Reg
	}
	return out, errs, nil
}
