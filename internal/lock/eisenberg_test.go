package lock

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSingleProcess(t *testing.T) {
	s := NewMapStore()
	m, err := New(s, "l", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := m.Unlock(); err != nil {
		t.Fatal(err)
	}
	// Re-acquire after release.
	if err := m.Lock(time.Second); err != nil {
		t.Fatal(err)
	}
	_ = m.Unlock()
}

func TestInvalidConstruction(t *testing.T) {
	s := NewMapStore()
	for _, c := range []struct{ n, me int }{{0, 0}, {2, 2}, {2, -1}} {
		if _, err := New(s, "l", c.n, c.me); err == nil {
			t.Errorf("New(%d,%d) succeeded", c.n, c.me)
		}
	}
}

// Mutual exclusion: N goroutines hammer a critical section; a plain
// counter incremented non-atomically inside the section must equal the
// total iteration count (data races would lose increments), and an
// "inside" gauge must never exceed 1.
func TestMutualExclusion(t *testing.T) {
	const n = 4
	const iters = 25
	s := NewMapStore()
	var inside atomic.Int32
	var counter int // intentionally unsynchronized; the mutex is the lock
	var maxInside atomic.Int32

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := New(s, "cs", n, i)
			if err != nil {
				t.Error(err)
				return
			}
			m.Backoff = 200 * time.Microsecond
			for k := 0; k < iters; k++ {
				if err := m.Lock(20 * time.Second); err != nil {
					t.Errorf("p%d lock: %v", i, err)
					return
				}
				v := inside.Add(1)
				if v > maxInside.Load() {
					maxInside.Store(v)
				}
				counter++
				time.Sleep(time.Duration(rand.Intn(200)) * time.Microsecond)
				inside.Add(-1)
				if err := m.Unlock(); err != nil {
					t.Errorf("p%d unlock: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if got := maxInside.Load(); got > 1 {
		t.Fatalf("mutual exclusion violated: %d processes inside", got)
	}
	if counter != n*iters {
		t.Fatalf("lost increments: %d != %d", counter, n*iters)
	}
}

// The same property over slow (remote-like) registers.
func TestMutualExclusionWithLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("slow registers")
	}
	const n = 3
	const iters = 5
	s := NewMapStore()
	s.Delay = 300 * time.Microsecond
	var inside atomic.Int32
	violated := atomic.Bool{}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, _ := New(s, "cs", n, i)
			for k := 0; k < iters; k++ {
				if err := m.WithLock(20*time.Second, func() error {
					if inside.Add(1) > 1 {
						violated.Store(true)
					}
					time.Sleep(time.Millisecond)
					inside.Add(-1)
					return nil
				}); err != nil {
					t.Errorf("p%d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if violated.Load() {
		t.Fatal("mutual exclusion violated over slow registers")
	}
}

func TestTimeout(t *testing.T) {
	s := NewMapStore()
	a, _ := New(s, "l", 2, 0)
	b, _ := New(s, "l", 2, 1)
	if err := a.Lock(time.Second); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := b.Lock(150 * time.Millisecond)
	if err != ErrTimeout {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("timeout overshot")
	}
	// After a releases, b can acquire (timeout left flags clean).
	if err := a.Unlock(); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(2 * time.Second); err != nil {
		t.Fatalf("b after release: %v", err)
	}
	_ = b.Unlock()
}

// Uncontended cost: the paper quotes 3 reads and 5 writes to enter and
// leave an uncontended critical section; allow small slack but fail if
// the implementation gets materially more expensive.
func TestUncontendedOperationCount(t *testing.T) {
	s := NewMapStore()
	cs := &countingStore{inner: s}
	m, _ := New(cs, "l", 4, 1)
	if err := m.Lock(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := m.Unlock(); err != nil {
		t.Fatal(err)
	}
	reads, writes := cs.reads.Load(), cs.writes.Load()
	if writes != 5 {
		t.Errorf("uncontended writes = %d, want 5", writes)
	}
	// Reads: turn + entry scan + conflict scan + exit scan; the scan
	// cost is O(N) (the paper's "3 reads" counts only the non-scan
	// register accesses), so allow up to 4N.
	if reads < 3 || reads > 16 {
		t.Errorf("uncontended reads = %d, want 3..16", reads)
	}
}

type countingStore struct {
	inner  RegisterStore
	reads  atomic.Int64
	writes atomic.Int64
}

func (c *countingStore) Read(name string) (string, error) {
	c.reads.Add(1)
	return c.inner.Read(name)
}

func (c *countingStore) Write(name, value string) error {
	c.writes.Add(1)
	return c.inner.Write(name, value)
}
