// Package lock implements Eisenberg & McGuire's N-process mutual
// exclusion algorithm (CACM 15(11), 1972) over remote read/write
// registers.
//
// The paper's strict Jini provider needs an atomic JNDI bind on top of a
// registry that only offers idempotent read and write (overwrite)
// primitives. Eisenberg–McGuire requires exactly that — plain shared
// registers — at the cost of 3 reads and 5 writes per uncontended
// critical section (§5.1), which is what makes strict bind ≈7× slower in
// Figure 3.
//
// The textbook algorithm assumes processes never die inside the
// protocol: a participant that crashes with its flag at "waiting" or
// "active" wedges every other process forever. Because these registers
// live in a remote registry and participants are short-lived JNDI
// clients, this implementation bounds ownership with leases: every
// non-idle flag write carries an expiry ("state@unixMilli"), and an
// expired non-idle flag reads as idle — the crashed participant is
// evicted and the lock heals. The lease (default 15s) must comfortably
// exceed the longest critical section plus clock skew between
// participants; a live waiter re-stamps its flag at half-lease so it is
// never evicted while healthy.
package lock

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// RegisterStore is the shared-register abstraction: named string cells
// with atomic read and overwrite-write. The Jini provider backs it with
// lookup-service entries; tests use an in-memory map.
type RegisterStore interface {
	// Read returns the register's value; absent registers read as "".
	Read(name string) (string, error)
	// Write overwrites the register.
	Write(name string, value string) error
}

// Process states stored in the flag registers.
const (
	stateIdle    = "idle"
	stateWaiting = "waiting"
	stateActive  = "active"
)

// ErrTimeout is returned when the lock cannot be acquired in time.
var ErrTimeout = errors.New("lock: acquisition timed out")

// DefaultLease bounds flag ownership when Mutex.Lease is zero.
const DefaultLease = 15 * time.Second

// Mutex is one process's handle on an Eisenberg–McGuire mutex. All
// handles sharing a store and name, with distinct Me in [0, N), exclude
// each other.
type Mutex struct {
	store RegisterStore
	name  string // lock instance name (register prefix)
	n     int    // number of processes
	me    int    // this process's index
	// Backoff is the poll interval while spinning on remote registers
	// (remote registers make busy-spinning expensive; default 2ms).
	Backoff time.Duration
	// Lease bounds how long this process's non-idle flag stays valid
	// without a re-stamp (default DefaultLease). Peers read an expired
	// waiting/active flag as idle, evicting a crashed participant. It
	// must exceed the longest critical section plus clock skew.
	Lease time.Duration
}

// New creates a handle for process me of n on the named lock.
func New(store RegisterStore, name string, n, me int) (*Mutex, error) {
	if n < 1 || me < 0 || me >= n {
		return nil, fmt.Errorf("lock: invalid process %d of %d", me, n)
	}
	return &Mutex{store: store, name: name, n: n, me: me, Backoff: 2 * time.Millisecond}, nil
}

func (m *Mutex) flagReg(i int) string { return fmt.Sprintf("%s/flag/%d", m.name, i) }
func (m *Mutex) turnReg() string      { return m.name + "/turn" }

func (m *Mutex) lease() time.Duration {
	if m.Lease > 0 {
		return m.Lease
	}
	return DefaultLease
}

// encodeFlag stamps a state with its expiry.
func encodeFlag(state string, deadline time.Time) string {
	return state + "@" + strconv.FormatInt(deadline.UnixMilli(), 10)
}

// decodeFlag recovers the state, evicting expired non-idle flags. A bare
// legacy value (no stamp) never expires.
func decodeFlag(v string, now time.Time) string {
	if v == "" {
		return stateIdle
	}
	i := strings.LastIndexByte(v, '@')
	if i < 0 {
		return v
	}
	state := v[:i]
	ms, err := strconv.ParseInt(v[i+1:], 10, 64)
	if err != nil {
		return state
	}
	if state != stateIdle && now.UnixMilli() > ms {
		return stateIdle
	}
	return state
}

// writeFlag stamps and writes this process's flag.
func (m *Mutex) writeFlag(state string) error {
	return m.store.Write(m.flagReg(m.me), encodeFlag(state, time.Now().Add(m.lease())))
}

func (m *Mutex) readFlag(i int) (string, error) {
	v, err := m.store.Read(m.flagReg(i))
	if err != nil {
		return "", err
	}
	return decodeFlag(v, time.Now()), nil
}

func (m *Mutex) readTurn() (int, error) {
	v, err := m.store.Read(m.turnReg())
	if err != nil {
		return 0, err
	}
	if v == "" {
		return 0, nil
	}
	t, err := strconv.Atoi(v)
	if err != nil || t < 0 || t >= m.n {
		return 0, nil // corrupt register degrades to turn 0
	}
	return t, nil
}

func (m *Mutex) pause() { time.Sleep(m.Backoff) }

// Lock acquires the critical section, waiting at most timeout (≤ 0 means
// a generous 30s). On ErrTimeout the flag register is restored to idle.
func (m *Mutex) Lock(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)
	bail := func() error {
		_ = m.writeFlag(stateIdle)
		return ErrTimeout
	}
	// restamp renews our waiting flag at half-lease so a healthy waiter
	// is never evicted by its peers.
	stamped := time.Now()
	restamp := func() error {
		if time.Since(stamped) < m.lease()/2 {
			return nil
		}
		stamped = time.Now()
		return m.writeFlag(stateWaiting)
	}
	for {
		// flags[me] = waiting; scan from turn to me: wait until all
		// processes between turn and me are idle.
		if err := m.writeFlag(stateWaiting); err != nil {
			return err
		}
		stamped = time.Now()
		j, err := m.readTurn()
		if err != nil {
			return err
		}
		for j != m.me {
			if time.Now().After(deadline) {
				return bail()
			}
			if err := restamp(); err != nil {
				return err
			}
			fj, err := m.readFlag(j)
			if err != nil {
				return err
			}
			if fj != stateIdle {
				m.pause()
				j, err = m.readTurn()
				if err != nil {
					return err
				}
			} else {
				j = (j + 1) % m.n
			}
		}
		// Tentatively claim. The active stamp starts the ownership lease:
		// the critical section must complete within it.
		if err := m.writeFlag(stateActive); err != nil {
			return err
		}
		// Verify no other process claimed simultaneously.
		conflict := false
		for k := 0; k < m.n; k++ {
			if k == m.me {
				continue
			}
			fk, err := m.readFlag(k)
			if err != nil {
				return err
			}
			if fk == stateActive {
				conflict = true
				break
			}
		}
		if !conflict {
			t, err := m.readTurn()
			if err != nil {
				return err
			}
			var ft string
			if t == m.me {
				ft = stateActive
			} else {
				ft, err = m.readFlag(t)
				if err != nil {
					return err
				}
			}
			if t == m.me || ft == stateIdle {
				// Acquired: fix the turn on ourselves.
				if err := m.store.Write(m.turnReg(), strconv.Itoa(m.me)); err != nil {
					return err
				}
				return nil
			}
		}
		if time.Now().After(deadline) {
			return bail()
		}
		m.pause()
	}
}

// Unlock releases the critical section: the turn passes to the next
// non-idle process (or stays) and our flag returns to idle.
func (m *Mutex) Unlock() error {
	t, err := m.readTurn()
	if err != nil {
		return err
	}
	// Canonical exit: pass the turn to the next non-idle process. Our
	// own flag is still active, so the scan terminates at us at worst.
	next := m.me
	for k := 1; k <= m.n; k++ {
		j := (t + k) % m.n
		if j == m.me {
			next = j
			break
		}
		fj, err := m.readFlag(j)
		if err != nil {
			return err
		}
		if fj != stateIdle {
			next = j
			break
		}
	}
	if err := m.store.Write(m.turnReg(), strconv.Itoa(next)); err != nil {
		return err
	}
	return m.writeFlag(stateIdle)
}

// WithLock runs fn inside the critical section. fn must finish within
// the lease, or peers may evict this holder and enter concurrently.
func (m *Mutex) WithLock(timeout time.Duration, fn func() error) error {
	if err := m.Lock(timeout); err != nil {
		return err
	}
	defer func() { _ = m.Unlock() }()
	return fn()
}

// MapStore is an in-memory RegisterStore for tests and single-process use.
type MapStore struct {
	mu sync.Mutex
	m  map[string]string
	// Delay simulates remote register latency.
	Delay time.Duration
}

// NewMapStore builds an empty in-memory store.
func NewMapStore() *MapStore { return &MapStore{m: map[string]string{}} }

// Read implements RegisterStore.
func (s *MapStore) Read(name string) (string, error) {
	if s.Delay > 0 {
		time.Sleep(s.Delay)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[name], nil
}

// Write implements RegisterStore.
func (s *MapStore) Write(name, value string) error {
	if s.Delay > 0 {
		time.Sleep(s.Delay)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[name] = value
	return nil
}
