package lock

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDecodeFlag(t *testing.T) {
	now := time.Now()
	cases := []struct {
		v    string
		want string
	}{
		{"", stateIdle},
		{"active", stateActive}, // legacy unstamped: never expires
		{encodeFlag(stateActive, now.Add(time.Second)), stateActive},
		{encodeFlag(stateActive, now.Add(-time.Second)), stateIdle}, // expired → evicted
		{encodeFlag(stateWaiting, now.Add(-time.Second)), stateIdle},
		{encodeFlag(stateIdle, now.Add(-time.Second)), stateIdle},
		{"active@garbage", stateActive}, // corrupt stamp degrades to the state
	}
	for _, c := range cases {
		if got := decodeFlag(c.v, now); got != c.want {
			t.Errorf("decodeFlag(%q) = %q, want %q", c.v, got, c.want)
		}
	}
}

// A holder that crashes mid-critical-section (its active flag never
// returns to idle) no longer wedges the lock: once its lease expires,
// the flag reads as idle and a peer acquires.
func TestCrashedHolderEvicted(t *testing.T) {
	s := NewMapStore()
	holder, _ := New(s, "l", 2, 0)
	holder.Lease = 200 * time.Millisecond
	if err := holder.Lock(time.Second); err != nil {
		t.Fatal(err)
	}
	// The holder crashes here: no Unlock, flag stays "active" with a
	// 200ms lease.
	peer, _ := New(s, "l", 2, 1)
	peer.Lease = 200 * time.Millisecond
	start := time.Now()
	if err := peer.Lock(5 * time.Second); err != nil {
		t.Fatalf("peer wedged behind a crashed holder: %v", err)
	}
	if time.Since(start) < 100*time.Millisecond {
		t.Fatal("peer acquired before the crashed holder's lease expired")
	}
	_ = peer.Unlock()
}

// A crashed waiter (flag stuck at "waiting") is likewise evicted.
func TestCrashedWaiterEvicted(t *testing.T) {
	s := NewMapStore()
	// Simulate a participant that died right after writing its waiting
	// flag: the stamp is already expired.
	if err := s.Write("l/flag/0", encodeFlag(stateWaiting, time.Now().Add(-time.Second))); err != nil {
		t.Fatal(err)
	}
	// Point the turn at the corpse so the live process must scan past it.
	if err := s.Write("l/turn", "0"); err != nil {
		t.Fatal(err)
	}
	m, _ := New(s, "l", 2, 1)
	if err := m.Lock(time.Second); err != nil {
		t.Fatalf("live process wedged behind a dead waiter: %v", err)
	}
	_ = m.Unlock()
}

// A healthy waiter re-stamps its flag while spinning and is never
// evicted, even when the wait exceeds its lease.
func TestHealthyWaiterOutlivesItsLease(t *testing.T) {
	s := NewMapStore()
	a, _ := New(s, "l", 2, 0)
	b, _ := New(s, "l", 2, 1)
	b.Lease = 150 * time.Millisecond
	if err := a.Lock(time.Second); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- b.Lock(5 * time.Second) }()
	// Hold across two full lease periods of b, then release.
	time.Sleep(400 * time.Millisecond)
	if err := a.Unlock(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("waiter evicted despite re-stamping: %v", err)
	}
	_ = b.Unlock()
}

// N-way contention with one participant crashing mid-hold: mutual
// exclusion holds for the survivors and the lock keeps making progress.
// (CI runs this under -race as well; see .github/workflows/ci.yml.)
func TestNWayContentionWithCrashedParticipant(t *testing.T) {
	const n = 4
	const iters = 8
	const lease = 250 * time.Millisecond
	s := NewMapStore()

	// Participant 0 acquires and crashes while holding.
	crash, _ := New(s, "cs", n, 0)
	crash.Lease = lease
	if err := crash.Lock(time.Second); err != nil {
		t.Fatal(err)
	}

	var inside atomic.Int32
	var violated atomic.Bool
	var acquired atomic.Int32
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := New(s, "cs", n, i)
			if err != nil {
				t.Error(err)
				return
			}
			m.Backoff = 500 * time.Microsecond
			m.Lease = lease
			for k := 0; k < iters; k++ {
				if err := m.WithLock(10*time.Second, func() error {
					if inside.Add(1) > 1 {
						violated.Store(true)
					}
					acquired.Add(1)
					time.Sleep(time.Millisecond)
					inside.Add(-1)
					return nil
				}); err != nil {
					t.Errorf("p%d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if violated.Load() {
		t.Fatal("mutual exclusion violated among survivors")
	}
	if got := acquired.Load(); got != (n-1)*iters {
		t.Fatalf("survivors completed %d sections, want %d", got, (n-1)*iters)
	}
}

// A store whose writes start failing surfaces the error instead of
// spinning.
func TestStoreErrorsPropagate(t *testing.T) {
	boom := errors.New("registry down")
	s := &failingStore{err: boom}
	m, _ := New(s, "l", 2, 0)
	if err := m.Lock(time.Second); !errors.Is(err, boom) {
		t.Fatalf("Lock = %v, want %v", err, boom)
	}
}

type failingStore struct{ err error }

func (f *failingStore) Read(name string) (string, error) { return "", f.err }
func (f *failingStore) Write(name, value string) error {
	return fmt.Errorf("write %s: %w", name, f.err)
}
