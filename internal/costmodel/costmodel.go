// Package costmodel injects calibrated, 2005-era per-operation service
// costs into the substrate servers so that the paper's throughput figures
// can be regenerated on modern hardware.
//
// The paper's testbed (Pentium 4 2.4 GHz servers on gigabit Ethernet,
// §7) saturates at a few hundred to ~2000 operations per second depending
// on the service. A loopback Go server is several orders of magnitude
// faster, so without calibration every curve would sit on the ideal 20·N
// line and the figures would be unreadable. The *mechanisms* that shape
// the curves — extra serialization work in the provider layer, the 3-read/
// 5-write Eisenberg–McGuire critical section, write replication, unbounded
// queue growth — are implemented for real; this package only scales the
// base service times. Every experiment in EXPERIMENTS.md records which
// station parameters it used.
//
// A Station is a k-server queueing station: each operation must occupy one
// of k workers for its service time, so saturation throughput is
// k/serviceTime and response time grows under overload, as in the paper's
// closed-loop experiments. The optional DegradePerQueued models the
// JGroups buffer-management pathology behind Figure 5: service time grows
// with the backlog, so overload *collapses* throughput instead of
// plateauing it.
package costmodel

import (
	"sync"
	"sync/atomic"
	"time"
)

// Station is a k-server queueing station with a fixed base service time,
// simulated in virtual time: each operation is assigned a departure
// instant on the earliest-free simulated worker and its goroutine sleeps
// until then. Throughput under saturation is exactly workers/service
// regardless of OS sleep granularity, and no CPU is burned spinning —
// important on small machines.
//
// The zero value (or a nil *Station) is a no-op station that admits every
// operation instantly — substrates run full speed in unit tests.
type Station struct {
	workers int
	service time.Duration
	// degradePerQueued lengthens service by this much per queued
	// operation at admission time (unbounded-buffer pathology).
	degradePerQueued time.Duration
	// queueCap, if positive, bounds the queue; operations beyond it are
	// rejected (bounded-buffer ablation).
	queueCap int

	queued atomic.Int64

	mu        sync.Mutex
	nextFree  []time.Time // per simulated worker
	completed int64
}

// Option configures a Station.
type Option func(*Station)

// WithDegradePerQueued makes service time grow by d per operation waiting
// at admission; this is the Figure 5 overload-collapse mechanism.
func WithDegradePerQueued(d time.Duration) Option {
	return func(s *Station) { s.degradePerQueued = d }
}

// WithQueueCap bounds the admission queue; excess operations fail fast.
func WithQueueCap(n int) Option {
	return func(s *Station) { s.queueCap = n }
}

// NewStation builds a station with k workers and the given base service
// time per operation.
func NewStation(workers int, service time.Duration, opts ...Option) *Station {
	if workers < 1 {
		workers = 1
	}
	s := &Station{workers: workers, service: service}
	for _, o := range opts {
		o(s)
	}
	s.nextFree = make([]time.Time, workers)
	return s
}

// Do passes an operation through the station: it occupies the earliest-
// free simulated worker for the base service time plus extra, blocking
// the caller until the operation's departure instant. It returns false
// if the station's queue cap rejected the operation. A nil station
// admits immediately.
func (s *Station) Do(extra time.Duration) bool {
	if s == nil || s.nextFree == nil {
		return true
	}
	now := time.Now()
	q := s.queued.Add(1)
	if s.queueCap > 0 && int(q) > s.queueCap+s.workers {
		s.queued.Add(-1)
		return false
	}
	hold := s.service + extra
	if s.degradePerQueued > 0 {
		backlog := q - int64(s.workers)
		if backlog > 0 {
			hold += time.Duration(backlog) * s.degradePerQueued
		}
	}
	s.mu.Lock()
	idx := 0
	for i := 1; i < len(s.nextFree); i++ {
		if s.nextFree[i].Before(s.nextFree[idx]) {
			idx = i
		}
	}
	start := s.nextFree[idx]
	if start.Before(now) {
		start = now
	}
	depart := start.Add(hold)
	s.nextFree[idx] = depart
	s.mu.Unlock()

	// Sleep granularity only adds latency beyond the departure instant;
	// the virtual clock already advanced by exactly `hold`, so
	// saturation throughput is unaffected.
	if d := time.Until(depart); d > 0 {
		time.Sleep(d)
	}
	s.queued.Add(-1)
	s.mu.Lock()
	s.completed++
	s.mu.Unlock()
	return true
}

// QueueLen returns the number of operations currently admitted or waiting.
func (s *Station) QueueLen() int {
	if s == nil {
		return 0
	}
	return int(s.queued.Load())
}

// Completed returns the number of operations that finished service.
func (s *Station) Completed() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completed
}

// RateLimiter is a token bucket, used to reproduce the OpenLDAP read
// plateau the paper observed ("some automatic slowdown mechanism, such as
// a countermeasure against Denial-of-Service attacks", §7). A nil limiter
// admits everything.
type RateLimiter struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// NewRateLimiter builds a limiter admitting rate operations per second
// with the given burst.
func NewRateLimiter(rate float64, burst int) *RateLimiter {
	return &RateLimiter{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

// Wait blocks until a token is available.
func (r *RateLimiter) Wait() {
	if r == nil {
		return
	}
	for {
		r.mu.Lock()
		now := time.Now()
		r.tokens += now.Sub(r.last).Seconds() * r.rate
		r.last = now
		if r.tokens > r.burst {
			r.tokens = r.burst
		}
		if r.tokens >= 1 {
			r.tokens--
			r.mu.Unlock()
			return
		}
		need := (1 - r.tokens) / r.rate
		r.mu.Unlock()
		time.Sleep(time.Duration(need * float64(time.Second)))
	}
}

// Costs bundles the read and write stations a server charges per
// operation, plus a per-byte unmarshalling cost that makes bulkier
// payloads (e.g. the Jini provider's wrapped stubs) genuinely more
// expensive server-side.
type Costs struct {
	Read    *Station
	Write   *Station
	PerByte time.Duration // extra service time per payload byte
}

// ReadCost charges a read of n payload bytes; it reports admission.
func (c *Costs) ReadCost(n int) bool {
	if c == nil {
		return true
	}
	return c.Read.Do(time.Duration(n) * c.PerByte)
}

// WriteCost charges a write of n payload bytes; it reports admission.
func (c *Costs) WriteCost(n int) bool {
	if c == nil {
		return true
	}
	return c.Write.Do(time.Duration(n) * c.PerByte)
}

// Calibration constants for the 2005 testbed, chosen so that saturation
// points land where the paper's figures put them (see EXPERIMENTS.md for
// the paper-vs-measured comparison):
//
//   - raw Jini lookups peak ≈400 op/s  → 2.4 ms service
//   - raw Jini rebinds peak ≈140 op/s  → 7.0 ms service
//   - HDNS lookups exceed 1800 op/s    → 0.5 ms service
//   - HDNS rebinds peak ≈200 op/s      → 4.6 ms service, degrading
//   - DNS lookups exceed 1800 op/s     → 0.5 ms service
//   - LDAP reads plateau ≈800 op/s     → throttle, 1.1 ms service
//   - LDAP writes scale well           → 0.7 ms service
const (
	JiniReadService  = 2400 * time.Microsecond
	JiniWriteService = 7 * time.Millisecond
	HDNSReadService  = 500 * time.Microsecond
	HDNSWriteService = 3200 * time.Microsecond
	DNSReadService   = 500 * time.Microsecond
	LDAPReadService  = 1100 * time.Microsecond
	LDAPWriteService = 350 * time.Microsecond

	// JiniPerByte makes the provider layer's bulkier marshalled stubs
	// cost real server time, yielding the ≈25% SPI penalty of Figure 2.
	JiniPerByte = 4000 * time.Nanosecond

	// HDNSDegrade reproduces the Figure 5 collapse: every queued write
	// inflates service time (JGroups unbounded message queues).
	HDNSDegrade = 220 * time.Microsecond

	// LDAPReadRate is the OpenLDAP read plateau.
	LDAPReadRate = 800.0
)

// JiniCosts returns the calibrated station set for a Jini LUS.
func JiniCosts() *Costs {
	return &Costs{
		Read:    NewStation(1, JiniReadService, WithDegradePerQueued(8*time.Microsecond)),
		Write:   NewStation(1, JiniWriteService, WithDegradePerQueued(20*time.Microsecond)),
		PerByte: JiniPerByte,
	}
}

// HDNSCosts returns the calibrated station set for one HDNS node.
func HDNSCosts() *Costs {
	return &Costs{
		Read:  NewStation(1, HDNSReadService),
		Write: NewStation(1, HDNSWriteService, WithDegradePerQueued(HDNSDegrade)),
	}
}

// HDNSBoundedCosts is the ablation variant with a bounded write queue
// (the fix the paper says it is "currently investigating").
func HDNSBoundedCosts() *Costs {
	return &Costs{
		Read:  NewStation(1, HDNSReadService),
		Write: NewStation(1, HDNSWriteService, WithQueueCap(32)),
	}
}

// DNSCosts returns the calibrated station set for the DNS server.
func DNSCosts() *Costs {
	return &Costs{Read: NewStation(1, DNSReadService), Write: NewStation(1, DNSReadService)}
}

// LDAPCosts returns the calibrated station set for the LDAP server; the
// read throttle is returned separately because it applies before service.
func LDAPCosts() (*Costs, *RateLimiter) {
	return &Costs{
		Read:  NewStation(2, LDAPReadService),
		Write: NewStation(1, LDAPWriteService),
	}, NewRateLimiter(LDAPReadRate, 16)
}
