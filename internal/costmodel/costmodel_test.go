package costmodel

import (
	"sync"
	"testing"
	"time"
)

func TestNilStationNoop(t *testing.T) {
	var s *Station
	if !s.Do(0) {
		t.Error("nil station must admit")
	}
	if s.QueueLen() != 0 || s.Completed() != 0 {
		t.Error("nil station counters must be zero")
	}
}

func TestStationSaturation(t *testing.T) {
	// 1 worker, 5ms service => capacity 200/s. 16 hot loops for 250ms
	// must complete close to 50 ops, far below the unconstrained rate.
	s := NewStation(1, 5*time.Millisecond)
	stop := time.Now().Add(250 * time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				s.Do(0)
			}
		}()
	}
	wg.Wait()
	got := s.Completed()
	if got < 30 || got > 80 {
		t.Errorf("completed %d ops in 250ms, want ~50 (capacity 200/s)", got)
	}
}

func TestStationDegrade(t *testing.T) {
	// With heavy degradation, backlog inflates service time: throughput
	// under 16-way load must fall well below nominal capacity.
	plain := NewStation(1, 2*time.Millisecond)
	degraded := NewStation(1, 2*time.Millisecond, WithDegradePerQueued(2*time.Millisecond))
	run := func(s *Station) int64 {
		stop := time.Now().Add(250 * time.Millisecond)
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(stop) {
					s.Do(0)
				}
			}()
		}
		wg.Wait()
		return s.Completed()
	}
	p, d := run(plain), run(degraded)
	if d*2 >= p {
		t.Errorf("degraded station did %d vs plain %d; want < half", d, p)
	}
}

func TestStationQueueCap(t *testing.T) {
	s := NewStation(1, 20*time.Millisecond, WithQueueCap(2))
	var wg sync.WaitGroup
	var mu sync.Mutex
	rejected := 0
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !s.Do(0) {
				mu.Lock()
				rejected++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if rejected == 0 {
		t.Error("queue cap never rejected under 10-way burst")
	}
	if rejected >= 10 {
		t.Error("all operations rejected")
	}
}

func TestRateLimiter(t *testing.T) {
	r := NewRateLimiter(100, 1) // 100/s
	start := time.Now()
	for i := 0; i < 20; i++ {
		r.Wait()
	}
	elapsed := time.Since(start)
	// 20 ops at 100/s with burst 1 needs >= ~150ms (tolerant bounds).
	if elapsed < 120*time.Millisecond {
		t.Errorf("20 ops took %v, limiter too permissive", elapsed)
	}
	var nilR *RateLimiter
	nilR.Wait() // must not block or panic
}

func TestCostsPerByte(t *testing.T) {
	c := &Costs{Read: NewStation(1, time.Millisecond), PerByte: time.Microsecond}
	start := time.Now()
	c.ReadCost(5000) // 1ms + 5ms
	if e := time.Since(start); e < 4*time.Millisecond {
		t.Errorf("per-byte cost not charged: %v", e)
	}
	var nilC *Costs
	if !nilC.ReadCost(10) || !nilC.WriteCost(10) {
		t.Error("nil costs must admit")
	}
}

func TestCalibrationConstructors(t *testing.T) {
	if c := JiniCosts(); c.Read == nil || c.Write == nil || c.PerByte == 0 {
		t.Error("JiniCosts incomplete")
	}
	if c := HDNSCosts(); c.Read == nil || c.Write == nil {
		t.Error("HDNSCosts incomplete")
	}
	if c := HDNSBoundedCosts(); c.Write.queueCap == 0 {
		t.Error("bounded variant must cap the queue")
	}
	if c := DNSCosts(); c.Read == nil {
		t.Error("DNSCosts incomplete")
	}
	c, rl := LDAPCosts()
	if c.Read == nil || rl == nil {
		t.Error("LDAPCosts incomplete")
	}
}
