package hdns

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Snapshot file container: the store's gob snapshot wrapped in a
// checksummed, chunked frame so at-rest corruption — a flipped bit, a
// torn page, a truncated file — is detected at load instead of being
// gob-decoded into a silently wrong tree. The layout follows the wal
// framing discipline (big-endian, reject-exactly):
//
//	magic    "GSNAP1\n"
//	version  uint64    lineage header: store version at snapshot time,
//	                   cross-checked against the decoded tree
//	hcrc     uint32    CRC-32C of the version field (the chunk CRCs do
//	                   not cover the header, so it carries its own)
//	chunks   until EOF, each:
//	  length uint32    chunk payload byte count
//	  crc    uint32    CRC-32C (Castagnoli) of the chunk payload
//	  payload
//
// A file without the magic is a legacy (pre-issue-10) raw gob snapshot
// and is accepted as-is, so existing replicas upgrade in place.

const snapMagic = "GSNAP1\n"

// snapChunk is the encoder's chunk size: large enough that CRC overhead
// vanishes, small enough that the damage a single bad chunk localizes
// to is reportable.
const snapChunk = 256 << 10

// snapMaxChunk bounds a decoded chunk length, guarding load against a
// corrupt length field allocating unbounded buffers.
const snapMaxChunk = 4 << 20

// ErrSnapshotCorrupt marks a snapshot file that failed integrity
// verification: bad chunk CRC, torn framing, or a lineage mismatch.
var ErrSnapshotCorrupt = errors.New("hdns: snapshot corrupt")

var snapCRCTable = crc32.MakeTable(crc32.Castagnoli)

// encodeSnapshotFile wraps a raw store snapshot in the checksummed
// container.
func encodeSnapshotFile(version uint64, raw []byte) []byte {
	// magic + version + per-chunk header overhead, sized exactly.
	chunks := (len(raw) + snapChunk - 1) / snapChunk
	if chunks == 0 {
		chunks = 1
	}
	out := make([]byte, 0, len(snapMagic)+12+len(raw)+8*chunks)
	out = append(out, snapMagic...)
	out = binary.BigEndian.AppendUint64(out, version)
	out = binary.BigEndian.AppendUint32(out, crc32.Checksum(out[len(snapMagic):], snapCRCTable))
	for len(raw) > 0 {
		n := len(raw)
		if n > snapChunk {
			n = snapChunk
		}
		out = binary.BigEndian.AppendUint32(out, uint32(n))
		out = binary.BigEndian.AppendUint32(out, crc32.Checksum(raw[:n], snapCRCTable))
		out = append(out, raw[:n]...)
		raw = raw[n:]
	}
	return out
}

// decodeSnapshotFile verifies and unwraps a snapshot file. legacy
// reports a pre-container raw gob snapshot (returned as-is, version 0 —
// the gob carries its own). Verification failure returns an error
// matching ErrSnapshotCorrupt; the caller quarantines, never restores.
func decodeSnapshotFile(b []byte) (version uint64, raw []byte, legacy bool, err error) {
	if len(b) < len(snapMagic) || string(b[:len(snapMagic)]) != snapMagic {
		return 0, b, true, nil
	}
	b = b[len(snapMagic):]
	if len(b) < 12 {
		return 0, nil, false, fmt.Errorf("%w: truncated lineage header", ErrSnapshotCorrupt)
	}
	version = binary.BigEndian.Uint64(b[:8])
	if crc32.Checksum(b[:8], snapCRCTable) != binary.BigEndian.Uint32(b[8:12]) {
		return 0, nil, false, fmt.Errorf("%w: lineage header crc mismatch", ErrSnapshotCorrupt)
	}
	b = b[12:]
	raw = make([]byte, 0, len(b))
	for len(b) > 0 {
		if len(b) < 8 {
			return 0, nil, false, fmt.Errorf("%w: torn chunk header", ErrSnapshotCorrupt)
		}
		n := binary.BigEndian.Uint32(b[:4])
		if n > snapMaxChunk {
			return 0, nil, false, fmt.Errorf("%w: chunk length %d exceeds limit", ErrSnapshotCorrupt, n)
		}
		want := binary.BigEndian.Uint32(b[4:8])
		body := b[8:]
		if uint32(len(body)) < n {
			return 0, nil, false, fmt.Errorf("%w: torn chunk (%d of %d bytes)", ErrSnapshotCorrupt, len(body), n)
		}
		chunk := body[:n]
		if crc32.Checksum(chunk, snapCRCTable) != want {
			return 0, nil, false, fmt.Errorf("%w: chunk crc mismatch at offset %d", ErrSnapshotCorrupt, len(raw))
		}
		raw = append(raw, chunk...)
		b = body[n:]
	}
	return version, raw, false, nil
}
