package hdns

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"gondi/internal/filter"
	"gondi/internal/jgroups"
)

func apply(t *testing.T, s *Store, op *Op) []Change {
	t.Helper()
	ch, errStr := s.Apply(op)
	if errStr != "" {
		t.Fatalf("apply %v %v: %s", op.Kind, op.Name, errStr)
	}
	return ch
}

func TestStoreBindLookup(t *testing.T) {
	s := NewStore()
	apply(t, s, &Op{Kind: OpBind, Name: []string{"a"}, Obj: []byte("v"), Attrs: map[string][]string{"Type": {"x"}}})
	v := s.Lookup([]string{"a"})
	if !v.Exists || v.IsCtx || string(v.Obj) != "v" || v.Attrs["type"][0] != "x" {
		t.Fatalf("view = %+v", v)
	}
	// Atomic bind.
	if _, errStr := s.Apply(&Op{Kind: OpBind, Name: []string{"a"}}); errStr != errBound {
		t.Errorf("dup bind: %q", errStr)
	}
	// Rebind preserves attrs by default.
	apply(t, s, &Op{Kind: OpRebind, Name: []string{"a"}, Obj: []byte("w")})
	v = s.Lookup([]string{"a"})
	if string(v.Obj) != "w" || v.Attrs["type"][0] != "x" {
		t.Errorf("rebind: %+v", v)
	}
	// Rebind with ReplaceAttrs clears.
	apply(t, s, &Op{Kind: OpRebind, Name: []string{"a"}, Obj: []byte("z"), ReplaceAttrs: true})
	v = s.Lookup([]string{"a"})
	if len(v.Attrs) != 0 {
		t.Errorf("replace attrs: %+v", v)
	}
	// Missing lookup.
	if v := s.Lookup([]string{"ghost"}); v.Exists {
		t.Error("ghost exists")
	}
	// Root lookup.
	if v := s.Lookup(nil); !v.Exists || !v.IsCtx {
		t.Error("root lookup")
	}
}

func TestStoreContexts(t *testing.T) {
	s := NewStore()
	apply(t, s, &Op{Kind: OpCreateCtx, Name: []string{"dir"}})
	apply(t, s, &Op{Kind: OpBind, Name: []string{"dir", "x"}, Obj: []byte("1")})
	if _, errStr := s.Apply(&Op{Kind: OpDestroyCtx, Name: []string{"dir"}}); errStr != errCtxNotEmpty {
		t.Errorf("destroy non-empty: %q", errStr)
	}
	apply(t, s, &Op{Kind: OpUnbind, Name: []string{"dir", "x"}})
	apply(t, s, &Op{Kind: OpDestroyCtx, Name: []string{"dir"}})
	if v := s.Lookup([]string{"dir"}); v.Exists {
		t.Error("dir survived destroy")
	}
	// Intermediate non-context.
	apply(t, s, &Op{Kind: OpBind, Name: []string{"leaf"}})
	if _, errStr := s.Apply(&Op{Kind: OpBind, Name: []string{"leaf", "deep"}}); errStr != errNotCtx {
		t.Errorf("bind under leaf: %q", errStr)
	}
	// Unbind of absent succeeds; missing intermediate fails.
	if _, errStr := s.Apply(&Op{Kind: OpUnbind, Name: []string{"nope"}}); errStr != "" {
		t.Errorf("unbind absent: %q", errStr)
	}
	if _, errStr := s.Apply(&Op{Kind: OpUnbind, Name: []string{"no", "such"}}); errStr != errNotFound {
		t.Errorf("unbind deep absent: %q", errStr)
	}
}

func TestStoreRenameAndMods(t *testing.T) {
	s := NewStore()
	apply(t, s, &Op{Kind: OpBind, Name: []string{"a"}, Obj: []byte("v"), Attrs: map[string][]string{"k": {"1"}}})
	apply(t, s, &Op{Kind: OpRename, Name: []string{"a"}, Name2: []string{"b"}})
	if s.Lookup([]string{"a"}).Exists || !s.Lookup([]string{"b"}).Exists {
		t.Fatal("rename failed")
	}
	apply(t, s, &Op{Kind: OpModAttrs, Name: []string{"b"}, Mods: []ModRec{
		{Op: 0, ID: "new", Vals: []string{"x"}},
		{Op: 1, ID: "k", Vals: []string{"2"}},
	}})
	v := s.Lookup([]string{"b"})
	if v.Attrs["new"][0] != "x" || v.Attrs["k"][0] != "2" {
		t.Errorf("mods: %+v", v.Attrs)
	}
	apply(t, s, &Op{Kind: OpModAttrs, Name: []string{"b"}, Mods: []ModRec{{Op: 2, ID: "k"}}})
	if _, ok := s.Lookup([]string{"b"}).Attrs["k"]; ok {
		t.Error("remove failed")
	}
}

func TestStoreListAndSearch(t *testing.T) {
	s := NewStore()
	apply(t, s, &Op{Kind: OpCreateCtx, Name: []string{"c"}})
	for i := 0; i < 3; i++ {
		apply(t, s, &Op{Kind: OpBind, Name: []string{"c", fmt.Sprintf("n%d", i)},
			Obj: []byte{byte(i)}, Attrs: map[string][]string{"rank": {fmt.Sprint(i)}}})
	}
	list, errStr := s.List([]string{"c"})
	if errStr != "" || len(list) != 3 || list[0].Name != "n0" {
		t.Fatalf("list: %+v %q", list, errStr)
	}
	f := filter.MustParse("(rank>=1)")
	hits, errStr := s.Search(nil, f, 2, 0)
	if errStr != "" || len(hits) != 2 {
		t.Fatalf("search: %+v %q", hits, errStr)
	}
	// One-level from root misses nested entries.
	hits, _ = s.Search(nil, f, 1, 0)
	if len(hits) != 0 {
		t.Errorf("one-level: %+v", hits)
	}
	// Limit.
	hits, _ = s.Search(nil, filter.MustParse("(rank=*)"), 2, 2)
	if len(hits) != 2 {
		t.Errorf("limit: %d", len(hits))
	}
}

func TestStoreSnapshotRoundTrip(t *testing.T) {
	s := NewStore()
	apply(t, s, &Op{Kind: OpCreateCtx, Name: []string{"c"}})
	apply(t, s, &Op{Kind: OpBind, Name: []string{"c", "x"}, Obj: []byte("payload"),
		Attrs: map[string][]string{"a": {"1", "2"}}, LeaseMillis: 60000, Now: 1000})
	b, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.Restore(b); err != nil {
		t.Fatal(err)
	}
	v := s2.Lookup([]string{"c", "x"})
	if !v.Exists || string(v.Obj) != "payload" || !reflect.DeepEqual(v.Attrs["a"], []string{"1", "2"}) {
		t.Fatalf("restored = %+v", v)
	}
	if exp, ok := s2.LeaseExpiry([]string{"c", "x"}); !ok || exp != 61000 {
		t.Errorf("lease expiry = %d %v", exp, ok)
	}
	if s2.Version() != s.Version() || s2.Len() != s.Len() {
		t.Error("metadata mismatch")
	}
	if err := s2.Restore([]byte("garbage")); err == nil {
		t.Error("garbage restore succeeded")
	}
}

// Property: two stores applying the same op sequence converge to identical
// snapshots (replica determinism — the invariant HDNS replication needs).
func TestStoreDeterminism(t *testing.T) {
	ops := []*Op{
		{Kind: OpCreateCtx, Name: []string{"a"}},
		{Kind: OpBind, Name: []string{"a", "x"}, Obj: []byte("1"), Attrs: map[string][]string{"k": {"v"}}},
		{Kind: OpBind, Name: []string{"a", "y"}, Obj: []byte("2")},
		{Kind: OpRebind, Name: []string{"a", "x"}, Obj: []byte("3")},
		{Kind: OpBind, Name: []string{"a", "x"}}, // fails on both
		{Kind: OpRename, Name: []string{"a", "y"}, Name2: []string{"a", "z"}},
		{Kind: OpModAttrs, Name: []string{"a", "x"}, Mods: []ModRec{{Op: 0, ID: "m", Vals: []string{"1"}}}},
		{Kind: OpUnbind, Name: []string{"a", "z"}},
	}
	s1, s2 := NewStore(), NewStore()
	for _, op := range ops {
		_, e1 := s1.Apply(op)
		_, e2 := s2.Apply(op)
		if e1 != e2 {
			t.Fatalf("divergent error for %v: %q vs %q", op.Kind, e1, e2)
		}
	}
	if !storesEqual(t, s1, s2, nil) {
		t.Fatal("replicas diverged")
	}
	if s1.Version() != s2.Version() {
		t.Fatal("version diverged")
	}
}

// storesEqual compares two stores semantically (gob snapshots encode maps
// in nondeterministic order, so byte comparison is too strict).
func storesEqual(t *testing.T, a, b *Store, path []string) bool {
	t.Helper()
	la, ea := a.List(path)
	lb, eb := b.List(path)
	if ea != eb || !reflect.DeepEqual(la, lb) {
		return false
	}
	for _, ent := range la {
		child := append(append([]string(nil), path...), ent.Name)
		va, vb := a.Lookup(child), b.Lookup(child)
		if !reflect.DeepEqual(va, vb) {
			return false
		}
		if ent.IsCtx && !storesEqual(t, a, b, child) {
			return false
		}
	}
	return true
}

// --- Node / replication tests ---

func testStack() jgroups.Config {
	c := jgroups.DefaultConfig()
	c.HeartbeatInterval = 40 * time.Millisecond
	c.SuspectAfter = 400 * time.Millisecond
	c.GossipInterval = 30 * time.Millisecond
	c.MergeInterval = 80 * time.Millisecond
	return c
}

func startTestNode(t *testing.T, f *jgroups.Fabric, name, group string, snapshotPath string) *Node {
	t.Helper()
	n, err := NewNode(NodeConfig{
		Group:            group,
		Transport:        f.Endpoint(jgroups.Address(name)),
		Stack:            testStack(),
		ListenAddr:       "127.0.0.1:0",
		SnapshotPath:     snapshotPath,
		SnapshotInterval: 200 * time.Millisecond,
		WriteTimeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatalf("node %s: %v", name, err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func dialNode(t *testing.T, n *Node) *Client {
	t.Helper()
	c, err := Dial(n.Addr(), "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(15 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestNodeSingleBasicOps(t *testing.T) {
	ctx := context.Background()
	f := jgroups.NewFabric()
	n := startTestNode(t, f, "n1", "g1", "")
	c := dialNode(t, n)

	if err := c.Bind(ctx, []string{"svc"}, []byte("obj"), map[string][]string{"type": {"db"}}, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Bind(ctx, []string{"svc"}, nil, nil, 0); !IsAlreadyBound(err) {
		t.Errorf("dup bind: %v", err)
	}
	v, err := c.Lookup(ctx, []string{"svc"})
	if err != nil || !v.Exists || string(v.Obj) != "obj" {
		t.Fatalf("lookup: %+v %v", v, err)
	}
	if err := c.CreateCtx(ctx, []string{"dir"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Bind(ctx, []string{"dir", "inner"}, []byte("x"), nil, 0); err != nil {
		t.Fatal(err)
	}
	list, err := c.List(ctx, nil)
	if err != nil || len(list) != 2 {
		t.Fatalf("list: %+v %v", list, err)
	}
	hits, err := c.Search(ctx, nil, "(type=db)", 2, 0)
	if err != nil || len(hits) != 1 || hits[0].Name[0] != "svc" {
		t.Fatalf("search: %+v %v", hits, err)
	}
	if err := c.Rename(ctx, []string{"svc"}, []string{"svc2"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Unbind(ctx, []string{"svc2"}); err != nil {
		t.Fatal(err)
	}
	if err := c.ModAttrs(ctx, []string{"dir", "inner"}, []ModRec{{Op: 0, ID: "k", Vals: []string{"v"}}}); err != nil {
		t.Fatal(err)
	}
	v, _ = c.Lookup(ctx, []string{"dir", "inner"})
	if v.Attrs["k"][0] != "v" {
		t.Errorf("attrs: %+v", v.Attrs)
	}
	info, err := c.Info(ctx)
	if err != nil || !info.Coordinator || len(info.Members) != 1 {
		t.Errorf("info: %+v %v", info, err)
	}
}

func TestReplicationReadAnyWriteAll(t *testing.T) {
	ctx := context.Background()
	f := jgroups.NewFabric()
	n1 := startTestNode(t, f, "n1", "g2", "")
	n2 := startTestNode(t, f, "n2", "g2", "")
	waitFor(t, 4*time.Second, "2-node group", func() bool {
		v := n1.Channel().View()
		return v != nil && len(v.Members) == 2
	})
	c1 := dialNode(t, n1)
	c2 := dialNode(t, n2)
	// Write through node 1, read from node 2 (the §4.1 design point).
	if err := c1.Bind(ctx, []string{"replicated"}, []byte("data"), nil, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "replica convergence", func() bool {
		v, err := c2.Lookup(ctx, []string{"replicated"})
		return err == nil && v.Exists && string(v.Obj) == "data"
	})
	// Write through node 2, observe on node 1.
	if err := c2.Rebind(ctx, []string{"replicated"}, []byte("v2"), nil, false, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "reverse convergence", func() bool {
		v, err := c1.Lookup(ctx, []string{"replicated"})
		return err == nil && string(v.Obj) == "v2"
	})
	// Atomic bind races: exactly one of two concurrent binds wins. The
	// winner is decided by gossip convergence outrunning the second
	// node's existence check — reliable on non-instrumented builds, but
	// the race detector's slowdown lets both checks pass first.
	if raceEnabled {
		return
	}
	errs := make(chan error, 2)
	for _, c := range []*Client{c1, c2} {
		go func(c *Client) { errs <- c.Bind(ctx, []string{"contested"}, []byte("x"), nil, 0) }(c)
	}
	e1, e2 := <-errs, <-errs
	wins := 0
	for _, e := range []error{e1, e2} {
		if e == nil {
			wins++
		} else if !IsAlreadyBound(e) {
			t.Errorf("unexpected bind error: %v", e)
		}
	}
	if wins != 1 {
		t.Errorf("atomic bind: %d winners (errs: %v / %v)", wins, e1, e2)
	}
}

func TestJoinerPullsState(t *testing.T) {
	ctx := context.Background()
	f := jgroups.NewFabric()
	n1 := startTestNode(t, f, "n1", "g3", "")
	c1 := dialNode(t, n1)
	for i := 0; i < 5; i++ {
		if err := c1.Bind(ctx, []string{fmt.Sprintf("e%d", i)}, []byte("v"), nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	n2 := startTestNode(t, f, "n2", "g3", "")
	waitFor(t, 4*time.Second, "state transfer", func() bool {
		return n2.Store().Len() == 5
	})
}

func TestPersistenceAcrossRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	snap := filepath.Join(dir, "replica.snap")
	f := jgroups.NewFabric()
	n := startTestNode(t, f, "n1", "g4", snap)
	c := dialNode(t, n)
	if err := c.Bind(ctx, []string{"durable"}, []byte("gold"), nil, 0); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	// Complete shutdown/restart (§4.1): a fresh node on the same
	// snapshot file recovers the data.
	n2 := startTestNode(t, f, "n1b", "g4", snap)
	c2 := dialNode(t, n2)
	v, err := c2.Lookup(ctx, []string{"durable"})
	if err != nil || !v.Exists || string(v.Obj) != "gold" {
		t.Fatalf("recovered = %+v, %v", v, err)
	}
}

func TestCrashedNodeRejoinsAndResyncs(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	f := jgroups.NewFabric()
	n1 := startTestNode(t, f, "n1", "g5", "")
	n2 := startTestNode(t, f, "n2", "g5", filepath.Join(dir, "n2.snap"))
	waitFor(t, 4*time.Second, "group of 2", func() bool {
		v := n1.Channel().View()
		return v != nil && len(v.Members) == 2
	})
	c1 := dialNode(t, n1)
	if err := c1.Bind(ctx, []string{"before"}, []byte("1"), nil, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "replicated", func() bool { return n2.Store().Len() == 1 })
	// Crash n2, write more, restart n2: it must catch up via state
	// transfer even though its snapshot is stale.
	n2.Close()
	waitFor(t, 4*time.Second, "view shrinks", func() bool {
		v := n1.Channel().View()
		return v != nil && len(v.Members) == 1
	})
	if err := c1.Bind(ctx, []string{"during"}, []byte("2"), nil, 0); err != nil {
		t.Fatal(err)
	}
	n2b := startTestNode(t, f, "n2b", "g5", filepath.Join(dir, "n2.snap"))
	waitFor(t, 5*time.Second, "rejoin resync", func() bool {
		return n2b.Store().Len() == 2
	})
}

func TestPartitionPrimaryResync(t *testing.T) {
	ctx := context.Background()
	f := jgroups.NewFabric()
	n1 := startTestNode(t, f, "n1", "g6", "")
	n2 := startTestNode(t, f, "n2", "g6", "")
	n3 := startTestNode(t, f, "n3", "g6", "")
	waitFor(t, 5*time.Second, "group of 3", func() bool {
		v := n1.Channel().View()
		return v != nil && len(v.Members) == 3
	})
	c1 := dialNode(t, n1)
	c3 := dialNode(t, n3)
	if err := c1.Bind(ctx, []string{"shared"}, []byte("base"), nil, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "pre-partition sync", func() bool {
		return n3.Store().Len() == 1
	})
	// Partition {n1,n2} | {n3}; both sides keep writing.
	f.Partition([]jgroups.Address{"n1", "n2"}, []jgroups.Address{"n3"})
	waitFor(t, 5*time.Second, "split views", func() bool {
		v1, v3 := n1.Channel().View(), n3.Channel().View()
		return v1 != nil && len(v1.Members) == 2 && v3 != nil && len(v3.Members) == 1
	})
	if err := c1.Bind(ctx, []string{"majority-write"}, []byte("keep"), nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := c3.Bind(ctx, []string{"minority-write"}, []byte("lose"), nil, 0); err != nil {
		t.Fatal(err)
	}
	// Heal: PRIMARY PARTITION keeps the majority's state; n3 resyncs.
	f.Heal()
	waitFor(t, 8*time.Second, "merged group", func() bool {
		for _, n := range []*Node{n1, n2, n3} {
			v := n.Channel().View()
			if v == nil || len(v.Members) != 3 {
				return false
			}
		}
		return true
	})
	waitFor(t, 5*time.Second, "n3 resynced to primary state", func() bool {
		v := n3.Store().Lookup([]string{"majority-write"})
		lost := n3.Store().Lookup([]string{"minority-write"})
		return v.Exists && !lost.Exists
	})
	// Post-merge writes flow everywhere.
	if err := c3.Bind(ctx, []string{"after-merge"}, []byte("ok"), nil, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 4*time.Second, "post-merge replication", func() bool {
		return n1.Store().Lookup([]string{"after-merge"}).Exists
	})
}

func TestLeaseExpiry(t *testing.T) {
	ctx := context.Background()
	f := jgroups.NewFabric()
	n := startTestNode(t, f, "n1", "g7", "")
	c := dialNode(t, n)
	if err := c.Bind(ctx, []string{"leased"}, []byte("x"), nil, 600); err != nil {
		t.Fatal(err)
	}
	// Renew keeps it alive past the original expiry.
	time.Sleep(300 * time.Millisecond)
	if _, err := c.RenewLease(ctx, []string{"leased"}, 600); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)
	if v, _ := c.Lookup(ctx, []string{"leased"}); !v.Exists {
		t.Fatal("lease expired despite renewal")
	}
	// Stop renewing: the coordinator reaps it.
	waitFor(t, 4*time.Second, "lease reaped", func() bool {
		v, err := c.Lookup(ctx, []string{"leased"})
		return err == nil && !v.Exists
	})
}

func TestWatchEvents(t *testing.T) {
	ctx := context.Background()
	f := jgroups.NewFabric()
	n := startTestNode(t, f, "n1", "g8", "")
	c := dialNode(t, n)
	var mu sync.Mutex
	var got []EventMsg
	cancel, err := c.Watch(ctx, nil, 2, func(e EventMsg) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Bind(ctx, []string{"w"}, []byte("1"), nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Rebind(ctx, []string{"w"}, []byte("2"), nil, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Unbind(ctx, []string{"w"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "3 events", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 3
	})
	mu.Lock()
	if got[0].Kind != OpBind || got[1].Kind != OpRebind || got[2].Kind != OpUnbind {
		t.Errorf("events = %+v", got)
	}
	if string(got[1].Old) != "1" || string(got[1].Obj) != "2" {
		t.Errorf("rebind event = %+v", got[1])
	}
	mu.Unlock()
	cancel()
	if err := c.Bind(ctx, []string{"w2"}, nil, nil, 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	mu.Lock()
	if len(got) != 3 {
		t.Errorf("event after cancel: %d", len(got))
	}
	mu.Unlock()
}

func TestNodeAuth(t *testing.T) {
	ctx := context.Background()
	f := jgroups.NewFabric()
	n, err := NewNode(NodeConfig{
		Group:      "g9",
		Transport:  f.Endpoint("n1"),
		Stack:      testStack(),
		ListenAddr: "127.0.0.1:0",
		Secret:     "s3cret",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	// Wrong secret: connection refused at auth.
	if _, err := Dial(n.Addr(), "wrong", time.Second); err == nil {
		t.Fatal("bad secret accepted")
	}
	// No secret: reads work, writes denied.
	c, err := Dial(n.Addr(), "", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Lookup(ctx, []string{"x"}); err != nil {
		t.Fatalf("anonymous read: %v", err)
	}
	if err := c.Bind(ctx, []string{"x"}, nil, nil, 0); err == nil {
		t.Fatal("anonymous write accepted")
	}
	// Correct secret: writes work.
	c2, err := Dial(n.Addr(), "s3cret", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Bind(ctx, []string{"x"}, []byte("v"), nil, 0); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentWritesConverge(t *testing.T) {
	ctx := context.Background()
	f := jgroups.NewFabric()
	n1 := startTestNode(t, f, "n1", "g10", "")
	n2 := startTestNode(t, f, "n2", "g10", "")
	waitFor(t, 4*time.Second, "group", func() bool {
		v := n1.Channel().View()
		return v != nil && len(v.Members) == 2
	})
	c1 := dialNode(t, n1)
	c2 := dialNode(t, n2)
	var wg sync.WaitGroup
	const per = 25
	for i, c := range []*Client{c1, c2} {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				name := []string{fmt.Sprintf("w%d-%d", i, k)}
				if err := c.Bind(ctx, name, []byte("v"), nil, 0); err != nil {
					t.Errorf("bind %v: %v", name, err)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	waitFor(t, 6*time.Second, "convergence", func() bool {
		return n1.Store().Len() == 2*per && n2.Store().Len() == 2*per
	})
}
