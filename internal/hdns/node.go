package hdns

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gondi/internal/admission"
	"gondi/internal/core"
	"gondi/internal/costmodel"
	"gondi/internal/filter"
	"gondi/internal/h2o"
	"gondi/internal/jgroups"
	"gondi/internal/obs"
	"gondi/internal/rpc"
	"gondi/internal/shard"
	"gondi/internal/wal"
)

// NodeConfig configures an HDNS node.
type NodeConfig struct {
	// Group is the replication group name.
	Group string
	// Transport is the jgroups transport the node replicates over.
	Transport jgroups.Transport
	// Stack tunes the group protocol (DefaultConfig = bimodal, as in
	// the paper).
	Stack jgroups.Config
	// ListenAddr is the client-facing TCP address ("127.0.0.1:0").
	ListenAddr string
	// SnapshotPath persists the replica ("" disables persistence).
	SnapshotPath string
	// SnapshotInterval is the periodic sync period (§4.1: "synchronized
	// in fixed time intervals and upon process exit"); 0 means 5s. With a
	// WALDir it becomes the WAL fsync + compaction-check cadence — the
	// log, not the snapshot, is then the unit of durability.
	SnapshotInterval time.Duration
	// WALDir enables the per-shard write-ahead log: every applied op is
	// appended there and restart replays snapshot + WAL tail, so large
	// shards restart from their last compaction point instead of their
	// last whole-table snapshot. "" keeps snapshot-only persistence.
	WALDir string
	// CompactBytes triggers background snapshot compaction once the WAL
	// outgrows it; 0 means 8 MiB.
	CompactBytes int64
	// Shard names this group's slice of the namespace. The zero value
	// (unsharded) owns everything; a sharded node rejects ops for names
	// the ring routes elsewhere so a misconfigured client can't split a
	// prefix across groups.
	Shard shard.Assignment
	// Secret, when non-empty, must be presented by clients before
	// writes are accepted (the H2O-inherited security hook).
	Secret string
	// Costs injects calibrated service times (nil = full speed).
	Costs *costmodel.Costs
	// WriteTimeout bounds how long a write waits for its own replicated
	// delivery; 0 means 10s.
	WriteTimeout time.Duration
	// Kernel, when set, receives HDNS change events on its bus under
	// the "hdns/" topic prefix.
	Kernel *h2o.Kernel
	// Admission gates every handler; nil admits everything.
	Admission *admission.Controller
	// ReplBatch caps how many concurrently submitted writes coalesce
	// into one replicated group frame (PR 6's batch frames carried
	// across the node boundary); 0 means 64.
	ReplBatch int
	// FS is the filesystem durable state is written through; nil means
	// the real one. The durability drills slide a fault injector here.
	FS wal.FS
}

// Node is one HDNS replica.
type Node struct {
	cfg   NodeConfig
	store *Store
	pers  *persister
	ch    *jgroups.Channel
	srv   *rpc.Server

	mu        sync.Mutex
	pending   map[string]chan string // opID -> apply error string
	watches   map[*rpc.ServerConn]map[uint64]watchSpec
	nextOp    uint64
	nextWatch uint64
	closed    bool

	// replC queues writes awaiting replication. Whichever submitter
	// finds no sender active becomes the sender and drains the queue
	// into coalesced group frames (see maybeDrain); the bound
	// propagates jgroups send-window backpressure to later submitters.
	replC       chan *Op
	replSending bool

	applied atomic.Uint64

	// damage is what scrub-on-start found; needsRepair stays true from a
	// corrupt boot until a state transfer or forced resync re-anchors the
	// store (tracked so the repair is counted exactly once).
	damage      *DamageReport
	needsRepair atomic.Bool
	repairs     atomic.Uint64

	wg   sync.WaitGroup
	done chan struct{}
}

type watchSpec struct {
	target []string
	scope  int // 0 object, 1 one-level, 2 subtree
}

// NewNode starts an HDNS node: it restores the persisted replica if any,
// joins the replication group (pulling state from the coordinator when
// one exists), and serves clients over TCP.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Group == "" {
		cfg.Group = "hdns"
	}
	if cfg.SnapshotInterval <= 0 {
		cfg.SnapshotInterval = 5 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.Stack.HeartbeatInterval == 0 {
		cfg.Stack = jgroups.DefaultConfig()
	}
	if cfg.ReplBatch <= 0 {
		cfg.ReplBatch = 64
	}
	// Crash recovery (§4.1 "the service can thus recover the state after
	// a complete shutdown/restart"): restore the snapshot, then replay
	// the WAL tail past it when a WALDir is configured. A boot whose
	// clean-shutdown marker is missing scrubs instead of replaying:
	// verified damage is quarantined and the node starts degraded,
	// repairing from the group rather than refusing to start.
	pers, store, damage, err := openPersistence(cfg.FS, cfg.SnapshotPath, cfg.WALDir, cfg.CompactBytes)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:     cfg,
		store:   store,
		pers:    pers,
		damage:  damage,
		pending: map[string]chan string{},
		watches: map[*rpc.ServerConn]map[uint64]watchSpec{},
		replC:   make(chan *Op, 2*cfg.ReplBatch),
		done:    make(chan struct{}),
	}
	if damage.Corrupt() {
		// Arm the repair before Connect: joining an existing group pulls
		// state via SetState, which is the repair itself.
		n.needsRepair.Store(true)
		gQuarantined.Add(int64(len(damage.WALQuarantined)))
		if damage.SnapshotQuarantined != "" {
			gQuarantined.Add(1)
		}
	}
	n.ch = jgroups.NewChannel(cfg.Transport, cfg.Stack)
	recv := jgroups.Receiver{
		Deliver:  n.deliver,
		GetState: n.snapshotState,
		// Partial-failure recovery: a restarted node joining an
		// existing group replaces its (possibly stale) local state
		// with the group's.
		SetState: n.restoreState,
		Merge:    n.onMerge,
	}
	if err := n.ch.Connect(cfg.Group, recv); err != nil {
		return nil, err
	}
	srv, err := rpc.NewServer(cfg.ListenAddr)
	if err != nil {
		n.ch.Close()
		return nil, err
	}
	n.srv = srv
	n.registerHandlers()
	srv.OnConnClose(func(sc *rpc.ServerConn) {
		n.mu.Lock()
		delete(n.watches, sc)
		n.mu.Unlock()
	})
	n.wg.Add(1)
	go n.housekeeping()
	return n, nil
}

// Addr returns the client-facing TCP address.
func (n *Node) Addr() string { return n.srv.Addr() }

// Store exposes the local replica (tests and diagnostics).
func (n *Node) Store() *Store { return n.store }

// Channel exposes the group channel (tests and diagnostics).
func (n *Node) Channel() *jgroups.Channel { return n.ch }

// snapshotState serves jgroups state transfer.
func (n *Node) snapshotState() []byte {
	// A node still pending repair must never donate state: its store is
	// known-incomplete, and a merge that elects it primary (membership
	// tie, smaller address) would otherwise overwrite healthy replicas
	// with the quarantine survivors. Refusing (nil state) makes the
	// requester keep what it has.
	if n.needsRepair.Load() {
		return nil
	}
	b, err := n.store.Snapshot()
	if err != nil {
		return nil
	}
	return b
}

func (n *Node) restoreState(b []byte) {
	if len(b) == 0 {
		return
	}
	_ = n.store.Restore(b)
	// The transferred tree replaces local history wholesale, so the
	// local WAL now describes an abandoned lineage; snapshot the new
	// state and drop the old log before any new record is appended.
	n.pers.resetAfterStateTransfer(n.store)
	// If this boot quarantined corrupt state, the transfer is its
	// repair: the store is now anchored to the group's history again.
	n.markRepaired("state-transfer")
}

func (n *Node) onMerge(e jgroups.MergeEvent) {
	// Non-primary members were already resynchronized via SetState by
	// the channel (PRIMARY PARTITION, §4.3). Publish for observability.
	if n.cfg.Kernel != nil {
		n.cfg.Kernel.Publish("hdns/merge", e)
	}
}

// opEnvelope is the replication wire unit: one group frame carrying one
// or more ops. Coalescing concurrently submitted writes into a single
// multicast is PR 6's batch-frame discipline extended across the node
// boundary — N queued writes cost one send (and one credit against the
// jgroups window) instead of N.
type opEnvelope struct {
	Ops []Op
}

var mReplBatch = obs.Default.Histogram("gondi_hdns_repl_batch_ops",
	"Ops coalesced per replicated HDNS group frame (count encoded as µs).")

// gQuarantined tracks durable files quarantined by scrub-on-start and
// not yet superseded by a repair — non-zero means some node in this
// process is serving from incomplete local state.
var gQuarantined = obs.Default.Gauge("gondi_store_quarantined_files",
	"Durable files quarantined by scrub-on-start, pending repair.")

// markRepaired counts one completed durable-state repair and retires the
// node's quarantine contribution from the gauge. source is
// "state-transfer" (re-anchored from a healthy replica) or "resync"
// (mirror destination rebuilt from its sync source).
func (n *Node) markRepaired(source string) {
	if !n.needsRepair.CompareAndSwap(true, false) {
		return
	}
	n.repairs.Add(1)
	obs.Default.Counter("gondi_store_repairs_total",
		"Durable-state repairs completed after corruption quarantine.",
		obs.Label{K: "source", V: source}).Inc()
	q := int64(len(n.damage.WALQuarantined))
	if n.damage.SnapshotQuarantined != "" {
		q++
	}
	gQuarantined.Add(-q)
}

// NeedsRepair reports whether scrub-on-start quarantined state that no
// repair has yet superseded.
func (n *Node) NeedsRepair() bool { return n.needsRepair.Load() }

// Damage returns what scrub-on-start found (never nil; check Corrupt).
func (n *Node) Damage() *DamageReport { return n.damage }

// Repairs reports completed durable-state repairs on this node.
func (n *Node) Repairs() uint64 { return n.repairs.Load() }

// MarkResynced records that a forced mirror resync rebuilt this node's
// state — the mirror-destination repair path, driven by hdnsd when the
// node boots corrupt and has a sync source instead of replicas. The
// resynced tree is snapshotted and the abandoned WAL lineage dropped,
// exactly as after a state transfer.
func (n *Node) MarkResynced() {
	if !n.needsRepair.Load() {
		return
	}
	n.pers.resetAfterStateTransfer(n.store)
	n.markRepaired("resync")
}

// deliver applies a replicated frame on this replica, acking each op.
func (n *Node) deliver(src jgroups.Address, payload []byte) {
	var env opEnvelope
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&env); err != nil {
		return
	}
	for i := range env.Ops {
		op := &env.Ops[i]
		changes, version, errStr := n.store.ApplyVersioned(op)
		// Log failures too: they consumed a version, and replay must
		// reproduce the exact version stream to detect real gaps. A
		// sealed log (ENOSPC, failed fsync) turns the ack into storage
		// unavailability: the op is applied in memory and on the other
		// replicas, but this node cannot promise it durable, and a client
		// told "ok" must never lose the write to a local power cut.
		if aerr := n.pers.appendOp(version, op); aerr != nil && errors.Is(aerr, wal.ErrSealed) && errStr == "" {
			errStr = errStorageUnavailable
		}
		n.applied.Add(1)
		n.mu.Lock()
		if ch, ok := n.pending[op.ID]; ok {
			delete(n.pending, op.ID)
			ch <- errStr
		}
		n.mu.Unlock()
		for _, c := range changes {
			n.fanOut(c)
		}
	}
}

// replBatchBytes bounds a coalesced frame's payload so it stays well
// inside one UDP datagram on the multi-process transport.
const replBatchBytes = 32 << 10

// maybeDrain elects the calling submitter as the replication sender if
// none is active and drains replC into coalesced multicast frames.
// Submitters that lose the election return immediately — their op rides
// the active sender's next frame, so an uncontended write pays no extra
// goroutine hop while concurrent writes batch. When the jgroups send
// window is exhausted, Send blocks the sender here, replC fills, and
// later submitters block in turn: replica backpressure reaches the
// client instead of growing a queue.
func (n *Node) maybeDrain() {
	n.mu.Lock()
	if n.replSending {
		n.mu.Unlock()
		return
	}
	n.replSending = true
	n.mu.Unlock()
	for {
		var ops []Op
		size := 0
	collect:
		for len(ops) < n.cfg.ReplBatch && size < replBatchBytes {
			select {
			case op := <-n.replC:
				ops = append(ops, *op)
				size += len(op.Obj)
			default:
				break collect
			}
		}
		if len(ops) == 0 {
			n.mu.Lock()
			n.replSending = false
			// An op enqueued between the empty read above and clearing
			// the flag would otherwise strand (its submitter saw an
			// active sender and returned).
			if len(n.replC) == 0 {
				n.mu.Unlock()
				return
			}
			n.replSending = true
			n.mu.Unlock()
			continue
		}
		mReplBatch.Observe(time.Duration(len(ops)) * time.Microsecond)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&opEnvelope{Ops: ops}); err != nil {
			n.failOps(ops, err.Error())
			continue
		}
		if err := n.ch.Send(buf.Bytes()); err != nil {
			n.failOps(ops, err.Error())
		}
	}
}

// failOps settles every submitter in a frame that never made it out.
func (n *Node) failOps(ops []Op, errStr string) {
	n.mu.Lock()
	for i := range ops {
		if ch, ok := n.pending[ops[i].ID]; ok {
			delete(n.pending, ops[i].ID)
			ch <- errStr
		}
	}
	n.mu.Unlock()
}

// fanOut pushes a change to matching client watches and the kernel bus.
func (n *Node) fanOut(c Change) {
	if n.cfg.Kernel != nil {
		n.cfg.Kernel.Publish("hdns/"+c.Kind.String(), c)
	}
	type target struct {
		conn *rpc.ServerConn
		id   uint64
	}
	var targets []target
	n.mu.Lock()
	for conn, ws := range n.watches {
		for id, w := range ws {
			if watchMatches(w, c.Name) {
				targets = append(targets, target{conn, id})
			}
		}
	}
	n.mu.Unlock()
	if len(targets) == 0 {
		return
	}
	for _, t := range targets {
		msg := EventMsg{WatchID: t.id, Kind: c.Kind, Name: c.Name, Obj: c.Obj, Old: c.Old}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&msg); err != nil {
			continue
		}
		_ = t.conn.Push(mEvent, buf.Bytes())
	}
}

func watchMatches(w watchSpec, name []string) bool {
	if len(name) < len(w.target) {
		return false
	}
	for i, c := range w.target {
		if name[i] != c {
			return false
		}
	}
	extra := len(name) - len(w.target)
	switch w.scope {
	case 0:
		return extra == 0
	case 1:
		return extra == 1
	default:
		return true
	}
}

// submit replicates a write and waits for its local delivery.
func (n *Node) submit(op *Op) string {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return "node closed"
	}
	n.nextOp++
	op.ID = fmt.Sprintf("%s-%d", n.ch.Addr(), n.nextOp)
	op.Now = time.Now().UnixMilli()
	ack := make(chan string, 1)
	n.pending[op.ID] = ack
	n.mu.Unlock()

	// Queue the op for coalescing. The queue is bounded: when
	// replication stalls (send window full), this blocks until
	// WriteTimeout rather than queueing without limit.
	select {
	case n.replC <- op:
	case <-time.After(n.cfg.WriteTimeout):
		n.mu.Lock()
		delete(n.pending, op.ID)
		n.mu.Unlock()
		return "write timed out"
	case <-n.done:
		n.mu.Lock()
		delete(n.pending, op.ID)
		n.mu.Unlock()
		return "node closed"
	}
	n.maybeDrain()
	select {
	case errStr := <-ack:
		return errStr
	case <-time.After(n.cfg.WriteTimeout):
		n.mu.Lock()
		delete(n.pending, op.ID)
		n.mu.Unlock()
		return "write timed out"
	case <-n.done:
		return "node closed"
	}
}

// housekeeping runs snapshots and the lease reaper.
func (n *Node) housekeeping() {
	defer n.wg.Done()
	snap := time.NewTicker(n.cfg.SnapshotInterval)
	defer snap.Stop()
	leases := time.NewTicker(500 * time.Millisecond)
	defer leases.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-snap.C:
			_ = n.persist()
			n.pers.maybeCompact(n.store)
		case <-leases.C:
			// The coordinator reaps expired leases for the whole
			// group so that exactly one replica issues the unbind.
			if !n.ch.IsCoordinator() {
				continue
			}
			for _, name := range n.store.ExpiredLeases(time.Now().UnixMilli()) {
				op := &Op{Kind: OpUnbind, Name: name}
				go n.submit(op)
			}
		}
	}
}

// persist syncs durable state on the housekeeping tick. Without a WAL
// this is the paper's periodic whole-table snapshot; with one, the far
// cheaper fsync of appended records (the snapshot then only advances at
// compaction and exit).
func (n *Node) persist() error {
	if n.pers.log != nil {
		n.pers.sync()
		return nil
	}
	return n.pers.writeSnapshot(n.store)
}

// SyncDurable forces the housekeeping durability pass now: an fsync of
// the WAL tail (or, without a WAL, a full snapshot). After it returns,
// every previously acked write survives power loss.
func (n *Node) SyncDurable() error { return n.persist() }

// Kill stops the node abruptly — no exit-time snapshot, no WAL rotate,
// no clean-shutdown marker — leaving the durable state exactly as the
// last synced append wrote it, the way a power cut would. Crash-drill
// and conformance-test surface.
func (n *Node) Kill() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	close(n.done)
	n.wg.Wait()
	if n.pers.log != nil {
		_ = n.pers.log.Close()
	}
	n.srv.Close()
	_ = n.ch.Close()
}

// Close persists the replica (§4.1: "upon process exit"), leaves the
// group, and stops serving.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	close(n.done)
	n.wg.Wait()
	err := n.pers.close(n.store)
	n.srv.Close()
	if cerr := n.ch.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- RPC handlers ---

func decodeReq(body []byte) (*Req, error) {
	var r Req
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

func encodeRsp(r *Rsp) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (n *Node) authed(sc *rpc.ServerConn) bool {
	if n.cfg.Secret == "" {
		return true
	}
	v, _ := sc.Get("authed")
	ok, _ := v.(bool)
	return ok
}

var errDenied = errors.New("hdns: authentication required")

// errWrongShard is the guard against split prefixes: a sharded node
// refuses ops for names the ring routes to another group, so a client
// with a stale or hand-rolled routing table fails loudly instead of
// scattering one prefix across groups. Clients detect it via
// IsWrongShard and re-route.
const errWrongShard = "hdns: wrong shard"

// errStorageUnavailable is acked for a write this replica applied in
// memory but could not append to its sealed WAL (ENOSPC, failed fsync):
// the node will not promise durability it cannot deliver. Clients detect
// it via IsStorageUnavailable; the provider maps it to
// core.ServiceUnavailableError so callers fail over or back off instead
// of treating it as a semantic naming error.
const errStorageUnavailable = "hdns: storage unavailable (wal sealed)"

func (n *Node) guardShard(name []string) error {
	if n.cfg.Shard.Owns(name) {
		return nil
	}
	return errors.New(errWrongShard)
}

// stationBusyRetryAfter is the hint attached when a calibrated cost
// station's queue cap rejects work (the station has no drain estimate of
// its own; admission-controller sheds carry a measured one).
const stationBusyRetryAfter = 25 * time.Millisecond

func (n *Node) busy(op string) error {
	return &core.ServerBusyError{Endpoint: n.Addr(), Op: op, RetryAfter: stationBusyRetryAfter}
}

func (n *Node) registerHandlers() {
	h := func(name string, class admission.Class, fn func(sc *rpc.ServerConn, req *Req) (*Rsp, error)) {
		reqs := obs.Default.Counter("gondi_server_requests_total",
			"Server-side requests handled, by protocol.",
			obs.Label{K: "proto", V: "hdns"}, obs.Label{K: "method", V: name})
		lat := obs.Default.Histogram("gondi_server_request_seconds",
			"Server-side request handling latency, by protocol.",
			obs.Label{K: "proto", V: "hdns"}, obs.Label{K: "method", V: name})
		n.srv.Handle(name, func(sc *rpc.ServerConn, body []byte) ([]byte, error) {
			release, aerr := n.cfg.Admission.Admit(class, n.Addr(), name)
			if aerr != nil {
				return nil, aerr
			}
			defer release()
			start := time.Now()
			req, err := decodeReq(body)
			if err != nil {
				return nil, err
			}
			rsp, err := fn(sc, req)
			reqs.Inc()
			lat.Since(start)
			if err != nil {
				return nil, err
			}
			return encodeRsp(rsp)
		})
	}

	h(mAuth, admission.Read, func(sc *rpc.ServerConn, req *Req) (*Rsp, error) {
		if n.cfg.Secret != "" && req.Secret != n.cfg.Secret {
			return nil, errors.New("hdns: bad secret")
		}
		sc.Set("authed", true)
		return &Rsp{}, nil
	})

	h(mLookup, admission.Read, func(sc *rpc.ServerConn, req *Req) (*Rsp, error) {
		if err := n.guardShard(req.Name); err != nil {
			return nil, err
		}
		if !n.cfg.Costs.ReadCost(0) {
			return nil, n.busy(mLookup)
		}
		return &Rsp{View: n.store.Lookup(req.Name)}, nil
	})

	write := func(name string, kind OpKind) func(sc *rpc.ServerConn, req *Req) (*Rsp, error) {
		return func(sc *rpc.ServerConn, req *Req) (*Rsp, error) {
			if !n.authed(sc) {
				return nil, errDenied
			}
			if err := n.guardShard(req.Name); err != nil {
				return nil, err
			}
			// Rename must stay within one shard; the router emulates the
			// cross-group case as lookup+bind+unbind.
			if kind == OpRename {
				if err := n.guardShard(req.Name2); err != nil {
					return nil, err
				}
			}
			if !n.cfg.Costs.WriteCost(len(req.Obj)) {
				return nil, n.busy(name)
			}
			op := &Op{
				Kind: kind, Name: req.Name, Name2: req.Name2, Obj: req.Obj,
				Attrs: req.Attrs, ReplaceAttrs: req.ReplaceAttrs,
				Mods: req.Mods, LeaseMillis: req.LeaseMillis,
			}
			if errStr := n.submit(op); errStr != "" {
				return nil, errors.New(errStr)
			}
			rsp := &Rsp{}
			if req.LeaseMillis > 0 {
				rsp.Expiry = time.Now().UnixMilli() + req.LeaseMillis
			}
			return rsp, nil
		}
	}
	h(mBind, admission.Write, write(mBind, OpBind))
	h(mRebind, admission.Write, write(mRebind, OpRebind))
	h(mUnbind, admission.Write, write(mUnbind, OpUnbind))
	h(mRename, admission.Write, write(mRename, OpRename))
	h(mCreateCtx, admission.Write, write(mCreateCtx, OpCreateCtx))
	h(mDestroyCtx, admission.Write, write(mDestroyCtx, OpDestroyCtx))
	h(mModAttrs, admission.Write, write(mModAttrs, OpModAttrs))
	h(mLease, admission.Write, write(mLease, OpLeaseRenew))

	h(mList, admission.Read, func(sc *rpc.ServerConn, req *Req) (*Rsp, error) {
		if err := n.guardShard(req.Name); err != nil {
			return nil, err
		}
		if !n.cfg.Costs.ReadCost(0) {
			return nil, n.busy(mList)
		}
		list, errStr := n.store.List(req.Name)
		if errStr != "" {
			return nil, errors.New(errStr)
		}
		return &Rsp{List: list}, nil
	})

	h(mSearch, admission.Search, func(sc *rpc.ServerConn, req *Req) (*Rsp, error) {
		if err := n.guardShard(req.Name); err != nil {
			return nil, err
		}
		if !n.cfg.Costs.ReadCost(0) {
			return nil, n.busy(mSearch)
		}
		f, err := filter.Parse(req.Filter)
		if err != nil {
			return nil, err
		}
		hits, errStr := n.store.Search(req.Name, f, req.Scope, req.Limit)
		if errStr != "" {
			return nil, errors.New(errStr)
		}
		return &Rsp{Hits: hits}, nil
	})

	h(mWatch, admission.Read, func(sc *rpc.ServerConn, req *Req) (*Rsp, error) {
		n.mu.Lock()
		defer n.mu.Unlock()
		n.nextWatch++
		id := n.nextWatch
		ws := n.watches[sc]
		if ws == nil {
			ws = map[uint64]watchSpec{}
			n.watches[sc] = ws
		}
		ws[id] = watchSpec{target: req.Name, scope: req.Scope}
		return &Rsp{WatchID: id}, nil
	})

	h(mUnwatch, admission.Read, func(sc *rpc.ServerConn, req *Req) (*Rsp, error) {
		n.mu.Lock()
		defer n.mu.Unlock()
		if ws := n.watches[sc]; ws != nil {
			delete(ws, req.WatchID)
		}
		return &Rsp{}, nil
	})

	h(mInfo, admission.Read, func(sc *rpc.ServerConn, req *Req) (*Rsp, error) {
		view := n.ch.View()
		info := NodeInfo{
			Addr:        n.Addr(),
			Group:       n.cfg.Group,
			Coordinator: n.ch.IsCoordinator(),
			Entries:     n.store.Len(),
			Version:     n.store.Version(),
			Mode:        n.cfg.Stack.Mode.String(),
			ShardGroups: n.cfg.Shard.Groups,
			ShardIndex:  n.cfg.Shard.Index,
			WALBytes:    n.pers.walBytes(),
			NeedsRepair: n.needsRepair.Load(),
			Repairs:     n.repairs.Load(),
		}
		if n.damage.Corrupt() {
			info.Quarantined = len(n.damage.WALQuarantined)
			if n.damage.SnapshotQuarantined != "" {
				info.Quarantined++
			}
		}
		if view != nil {
			for _, m := range view.Members {
				info.Members = append(info.Members, string(m))
			}
		}
		return &Rsp{Info: info}, nil
	})
}
