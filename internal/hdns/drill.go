package hdns

import "fmt"

// BuildShardState fabricates a shard's on-disk durable state for
// restart drills: entries flat bindings of which the last walTail live
// only in the WAL, everything earlier covered by the snapshot. The
// layout matches a crash mid-epoch — the last compaction snapshotted
// at version entries-walTail and the node died with a synced tail —
// which is exactly what RestoreStore must rebuild.
func BuildShardState(snapshotPath, walDir string, entries, walTail int) error {
	if walTail < 0 || walTail > entries {
		return fmt.Errorf("hdns: walTail %d out of range for %d entries", walTail, entries)
	}
	p, st, _, err := openPersistence(nil, snapshotPath, walDir, 0)
	if err != nil {
		return err
	}
	obj := []byte("10.0.0.1:9000")
	apply := func(i int, logged bool) error {
		op := &Op{Kind: OpBind, Name: []string{fmt.Sprintf("e%07d", i)}, Obj: obj}
		_, ver, errStr := st.ApplyVersioned(op)
		if errStr != "" {
			return fmt.Errorf("hdns: drill apply %d: %s", i, errStr)
		}
		if logged {
			if err := p.appendOp(ver, op); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < entries-walTail; i++ {
		if err := apply(i, false); err != nil {
			return err
		}
	}
	if err := p.writeSnapshot(st); err != nil {
		return err
	}
	for i := entries - walTail; i < entries; i++ {
		if err := apply(i, true); err != nil {
			return err
		}
	}
	p.sync()
	if p.log != nil {
		return p.log.Close()
	}
	return nil
}
