package hdns

import (
	"bytes"
	"errors"
	"testing"
)

func TestSnapshotContainerRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 100, snapChunk, snapChunk + 1, 3*snapChunk + 17} {
		raw := make([]byte, n)
		for i := range raw {
			raw[i] = byte(i * 31)
		}
		enc := encodeSnapshotFile(42, raw)
		ver, got, legacy, err := decodeSnapshotFile(enc)
		if err != nil || legacy {
			t.Fatalf("n=%d: decode err=%v legacy=%v", n, err, legacy)
		}
		if ver != 42 || !bytes.Equal(got, raw) {
			t.Fatalf("n=%d: round trip mismatch (ver=%d, %d bytes)", n, ver, len(got))
		}
	}
}

func TestSnapshotContainerDetectsDamage(t *testing.T) {
	raw := bytes.Repeat([]byte("durable"), 1000)
	enc := encodeSnapshotFile(7, raw)
	// Every single-bit flip past the magic must be caught (a flip inside
	// the magic demotes the file to legacy, which the gob decode then
	// rejects — covered by the persister test).
	for _, off := range []int{len(snapMagic), len(snapMagic) + 3, len(snapMagic) + 8, len(snapMagic) + 12, len(snapMagic) + 16, len(enc) / 2, len(enc) - 1} {
		bad := append([]byte(nil), enc...)
		bad[off] ^= 0x10
		if _, _, legacy, err := decodeSnapshotFile(bad); err == nil && !legacy {
			t.Fatalf("flip at %d accepted", off)
		} else if err != nil && !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("flip at %d: untyped error %v", off, err)
		}
	}
	// Truncation at any point must be caught.
	for _, cut := range []int{len(enc) - 1, len(enc) - 9, len(snapMagic) + 4, len(snapMagic) + 10} {
		if _, _, _, err := decodeSnapshotFile(enc[:cut]); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("truncation to %d: %v", cut, err)
		}
	}
}

// FuzzSnapshotDecode hammers the container decoder: it must never
// panic, never allocate unboundedly, and anything it accepts must
// re-encode to the same logical content.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(snapMagic))
	f.Add(encodeSnapshotFile(1, []byte("hello")))
	f.Add(encodeSnapshotFile(0, nil))
	f.Add(encodeSnapshotFile(9, bytes.Repeat([]byte{0xab}, 4096)))
	long := encodeSnapshotFile(3, bytes.Repeat([]byte("x"), 2*snapChunk+5))
	f.Add(long)
	f.Add(long[:len(long)-3])
	f.Fuzz(func(t *testing.T, b []byte) {
		ver, raw, legacy, err := decodeSnapshotFile(b)
		if err != nil {
			if !errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if legacy {
			return // raw passthrough; the gob layer judges it
		}
		enc := encodeSnapshotFile(ver, raw)
		ver2, raw2, legacy2, err2 := decodeSnapshotFile(enc)
		if err2 != nil || legacy2 || ver2 != ver || !bytes.Equal(raw2, raw) {
			t.Fatalf("accepted input does not round trip: ver=%d/%d err=%v", ver, ver2, err2)
		}
	})
}
