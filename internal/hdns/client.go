package hdns

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"sync"
	"time"

	"gondi/internal/retry"
	"gondi/internal/rpc"
)

// dialPolicy bounds reconnection attempts against a node that is
// restarting behind a stable address.
var dialPolicy = retry.Policy{MaxAttempts: 3, BaseDelay: 25 * time.Millisecond, MaxDelay: 250 * time.Millisecond}

// Client is a connection to one HDNS node. Reads are served by that node
// alone (read-any); writes propagate to the whole replication group
// before the call returns.
type Client struct {
	rc *rpc.Client

	mu       sync.Mutex
	handlers map[uint64]func(EventMsg)
}

// Dial connects to an HDNS node; secret may be empty for open nodes.
func Dial(addr, secret string, timeout time.Duration) (*Client, error) {
	return DialContext(context.Background(), addr, secret, timeout)
}

// DialContext is Dial bounded by ctx; the handshake (auth) inherits the
// caller's deadline and transient dial failures are retried with backoff.
func DialContext(ctx context.Context, addr, secret string, timeout time.Duration) (*Client, error) {
	var rc *rpc.Client
	err := retry.Do(ctx, dialPolicy, func() error {
		var derr error
		rc, derr = rpc.DialContext(ctx, addr, timeout)
		return derr
	})
	if err != nil {
		return nil, err
	}
	c := &Client{rc: rc, handlers: map[uint64]func(EventMsg){}}
	rc.OnPush(func(method string, body []byte) {
		if method != mEvent {
			return
		}
		var msg EventMsg
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&msg); err != nil {
			return
		}
		c.mu.Lock()
		h := c.handlers[msg.WatchID]
		c.mu.Unlock()
		if h != nil {
			h(msg)
		}
	})
	// A TCP dial can complete against a dead peer — a crashed node's
	// accept queue, or a severed relay that accepts and drops — so the
	// handshake always round-trips: auth when a secret is set, a no-op
	// Info probe otherwise. Multi-endpoint failover then skips to the
	// next replica at dial time instead of failing the first operation.
	hello := &Req{Secret: secret}
	method := mAuth
	if secret == "" {
		method = mInfo
	}
	if _, err := c.call(ctx, method, hello); err != nil {
		rc.Close()
		return nil, err
	}
	return c, nil
}

// Close releases the connection (server-side watches die with it).
func (c *Client) Close() error { return c.rc.Close() }

// Closed reports whether the connection has terminated (e.g. node
// shutdown); pooled providers use it to discard dead connections.
func (c *Client) Closed() bool { return c.rc.Closed() }

// Done returns a channel that closes when the connection terminates.
// Watch holders select on it to learn that their registrations are dead
// (server-side watches die with the connection).
func (c *Client) Done() <-chan struct{} { return c.rc.Done() }

func (c *Client) call(ctx context.Context, method string, req *Req) (*Rsp, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		return nil, err
	}
	body, err := c.rc.Call(ctx, method, buf.Bytes())
	if err != nil {
		return nil, err
	}
	var rsp Rsp
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&rsp); err != nil {
		return nil, err
	}
	return &rsp, nil
}

// Lookup reads the entry at name.
func (c *Client) Lookup(ctx context.Context, name []string) (NodeView, error) {
	rsp, err := c.call(ctx, mLookup, &Req{Name: name})
	if err != nil {
		return NodeView{}, err
	}
	return rsp.View, nil
}

// Bind binds atomically (fails if bound). leaseMillis > 0 grants a lease.
func (c *Client) Bind(ctx context.Context, name []string, obj []byte, attrs map[string][]string, leaseMillis int64) error {
	_, err := c.call(ctx, mBind, &Req{Name: name, Obj: obj, Attrs: attrs, LeaseMillis: leaseMillis})
	return err
}

// Rebind overwrites; replaceAttrs selects attribute semantics.
func (c *Client) Rebind(ctx context.Context, name []string, obj []byte, attrs map[string][]string, replaceAttrs bool, leaseMillis int64) error {
	_, err := c.call(ctx, mRebind, &Req{Name: name, Obj: obj, Attrs: attrs, ReplaceAttrs: replaceAttrs, LeaseMillis: leaseMillis})
	return err
}

// Unbind removes a binding (absent names succeed).
func (c *Client) Unbind(ctx context.Context, name []string) error {
	_, err := c.call(ctx, mUnbind, &Req{Name: name})
	return err
}

// Rename moves a binding.
func (c *Client) Rename(ctx context.Context, oldName, newName []string) error {
	_, err := c.call(ctx, mRename, &Req{Name: oldName, Name2: newName})
	return err
}

// List enumerates a context.
func (c *Client) List(ctx context.Context, name []string) ([]ListEntry, error) {
	rsp, err := c.call(ctx, mList, &Req{Name: name})
	if err != nil {
		return nil, err
	}
	return rsp.List, nil
}

// CreateCtx creates a subcontext.
func (c *Client) CreateCtx(ctx context.Context, name []string, attrs map[string][]string) error {
	_, err := c.call(ctx, mCreateCtx, &Req{Name: name, Attrs: attrs})
	return err
}

// DestroyCtx removes an empty subcontext.
func (c *Client) DestroyCtx(ctx context.Context, name []string) error {
	_, err := c.call(ctx, mDestroyCtx, &Req{Name: name})
	return err
}

// ModAttrs applies attribute modifications.
func (c *Client) ModAttrs(ctx context.Context, name []string, mods []ModRec) error {
	_, err := c.call(ctx, mModAttrs, &Req{Name: name, Mods: mods})
	return err
}

// Search evaluates an RFC 4515 filter (scope: 0 object, 1 one-level,
// 2 subtree).
func (c *Client) Search(ctx context.Context, name []string, filterStr string, scope, limit int) ([]SearchHit, error) {
	rsp, err := c.call(ctx, mSearch, &Req{Name: name, Filter: filterStr, Scope: scope, Limit: limit})
	if err != nil {
		return nil, err
	}
	return rsp.Hits, nil
}

// RenewLease extends (or with leaseMillis == 0 cancels) a lease.
func (c *Client) RenewLease(ctx context.Context, name []string, leaseMillis int64) (expiry int64, err error) {
	rsp, err := c.call(ctx, mLease, &Req{Name: name, LeaseMillis: leaseMillis})
	if err != nil {
		return 0, err
	}
	return rsp.Expiry, nil
}

// Watch subscribes to changes under target; events arrive on fn until
// cancel is called or the connection closes.
func (c *Client) Watch(ctx context.Context, target []string, scope int, fn func(EventMsg)) (cancel func(), err error) {
	rsp, err := c.call(ctx, mWatch, &Req{Name: target, Scope: scope})
	if err != nil {
		return nil, err
	}
	id := rsp.WatchID
	c.mu.Lock()
	c.handlers[id] = fn
	c.mu.Unlock()
	return func() {
		c.mu.Lock()
		delete(c.handlers, id)
		c.mu.Unlock()
		_, _ = c.call(context.Background(), mUnwatch, &Req{WatchID: id})
	}, nil
}

// Info describes the node and its group.
func (c *Client) Info(ctx context.Context) (NodeInfo, error) {
	rsp, err := c.call(ctx, mInfo, &Req{})
	if err != nil {
		return NodeInfo{}, err
	}
	return rsp.Info, nil
}

// IsNotFound reports whether an HDNS error is the not-found condition.
func IsNotFound(err error) bool { return hasMsg(err, errNotFound) }

// IsAlreadyBound reports whether an HDNS error is the already-bound
// condition (the atomic-bind failure).
func IsAlreadyBound(err error) bool { return hasMsg(err, errBound) }

// IsNotContext reports whether an HDNS error is the not-a-context
// condition.
func IsNotContext(err error) bool { return hasMsg(err, errNotCtx) }

// IsContextNotEmpty reports whether an HDNS error is the non-empty
// context condition.
func IsContextNotEmpty(err error) bool { return hasMsg(err, errCtxNotEmpty) }

// IsWrongShard reports whether a sharded node refused the op because
// the ring routes its name to a different replica group.
func IsWrongShard(err error) bool { return hasMsg(err, errWrongShard) }

// IsStorageUnavailable reports whether a write was refused because the
// replica's WAL is sealed after a storage failure (ENOSPC, failed
// fsync): the op may be applied on other replicas but this node will not
// promise durability. Callers should fail over or back off.
func IsStorageUnavailable(err error) bool { return hasMsg(err, errStorageUnavailable) }

func hasMsg(err error, msg string) bool {
	if err == nil {
		return false
	}
	var re *rpc.RemoteError
	if errors.As(err, &re) {
		return re.Msg == msg
	}
	return err.Error() == msg
}

// BatchOp is one operation in a CallMany batch.
type BatchOp struct {
	Method string
	Req    *Req
}

// BatchRsp is one operation's outcome from CallMany: the decoded response
// or that item's error, mirroring what the unary call would have produced.
type BatchRsp struct {
	Rsp *Rsp
	Err error
}

// CallMany sends every operation in one batch frame over the shared rpc
// connection. The node executes items sequentially in submission order
// and each item fails independently; the call-level error is reserved for
// transport failures and whole-batch shedding.
func (c *Client) CallMany(ctx context.Context, ops []BatchOp) ([]BatchRsp, error) {
	items := make([]rpc.BatchItem, len(ops))
	for i, op := range ops {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(op.Req); err != nil {
			return nil, err
		}
		items[i] = rpc.BatchItem{Method: op.Method, Body: buf.Bytes()}
	}
	results, err := c.rc.CallBatch(ctx, items)
	if err != nil {
		return nil, err
	}
	out := make([]BatchRsp, len(results))
	for i, res := range results {
		if res.Err != nil {
			out[i].Err = res.Err
			continue
		}
		var rsp Rsp
		if err := gob.NewDecoder(bytes.NewReader(res.Body)).Decode(&rsp); err != nil {
			out[i].Err = err
			continue
		}
		out[i].Rsp = &rsp
	}
	return out, nil
}

// LookupMany reads many entries in one round trip (one BatchRsp per name,
// in order).
func (c *Client) LookupMany(ctx context.Context, names [][]string) ([]BatchRsp, error) {
	ops := make([]BatchOp, len(names))
	for i, name := range names {
		ops[i] = BatchOp{Method: mLookup, Req: &Req{Name: name}}
	}
	return c.CallMany(ctx, ops)
}

// BindManyOp describes one bind for BindMany.
type BindManyOp struct {
	Name        []string
	Obj         []byte
	Attrs       map[string][]string
	LeaseMillis int64
}

// BindMany binds many entries in one round trip; items apply sequentially
// server-side and fail independently.
func (c *Client) BindMany(ctx context.Context, binds []BindManyOp) ([]BatchRsp, error) {
	ops := make([]BatchOp, len(binds))
	for i, b := range binds {
		ops[i] = BatchOp{Method: mBind, Req: &Req{
			Name: b.Name, Obj: b.Obj, Attrs: b.Attrs, LeaseMillis: b.LeaseMillis,
		}}
	}
	return c.CallMany(ctx, ops)
}
