package hdns

// Rejoin-after-crash under scripted partitions: the fault package's
// FabricSchedule drives the jgroups fabric through degrade → split →
// heal while one replica crashes mid-partition and restarts from its
// snapshot. The restarted node must converge to the primary partition's
// state — including discarding a stale minority write that survived in
// its snapshot file.

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"gondi/internal/fault"
	"gondi/internal/jgroups"
)

func TestChaosPartitionCrashRejoin(t *testing.T) {
	ctx := context.Background()
	snap := filepath.Join(t.TempDir(), "n3.snap")
	f := jgroups.NewFabric()
	n1 := startTestNode(t, f, "n1", "gchaos", "")
	startTestNode(t, f, "n2", "gchaos", "")
	n3 := startTestNode(t, f, "n3", "gchaos", snap)
	waitFor(t, 5*time.Second, "group of 3", func() bool {
		v := n1.Channel().View()
		return v != nil && len(v.Members) == 3
	})
	c1 := dialNode(t, n1)
	c3 := dialNode(t, n3)
	if err := c1.Bind(ctx, []string{"base"}, []byte("v0"), nil, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, "pre-fault sync", func() bool {
		return n3.Store().Lookup([]string{"base"}).Exists
	})

	// Scripted fault: degrade delivery, then split {n1,n2} | {n3}.
	lag := 5 * time.Millisecond
	split := &fault.FabricSchedule{Fabric: f, Steps: []fault.FabricStep{
		{Delay: &lag},
		{After: 100 * time.Millisecond, Partition: [][]jgroups.Address{{"n1", "n2"}, {"n3"}}},
	}}
	if err := split.Run(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "split views", func() bool {
		v1, v3 := n1.Channel().View(), n3.Channel().View()
		return v1 != nil && len(v1.Members) == 2 && v3 != nil && len(v3.Members) == 1
	})

	// Both sides write; then the minority node crashes, taking its
	// (doomed) write into the snapshot file.
	if err := c1.Bind(ctx, []string{"majority-write"}, []byte("keep"), nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := c3.Bind(ctx, []string{"minority-write"}, []byte("lose"), nil, 0); err != nil {
		t.Fatal(err)
	}
	c3.Close()
	if err := n3.Close(); err != nil {
		t.Fatal(err)
	}
	// The majority keeps serving writes while n3 is down.
	if err := c1.Bind(ctx, []string{"during-crash"}, []byte("v1"), nil, 0); err != nil {
		t.Fatal(err)
	}

	// Heal the fabric (scripted), then restart the crashed node from its
	// snapshot. It boots with stale state and must resync via transfer.
	noLag := time.Duration(0)
	heal := &fault.FabricSchedule{Fabric: f, Steps: []fault.FabricStep{
		{Delay: &noLag, Heal: true},
	}}
	wait := heal.RunAsync(ctx)
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	n3b := startTestNode(t, f, "n3b", "gchaos", snap)
	waitFor(t, 8*time.Second, "rejoined group of 3", func() bool {
		v := n3b.Channel().View()
		return v != nil && len(v.Members) == 3
	})
	waitFor(t, 5*time.Second, "rejoin resync to primary state", func() bool {
		s := n3b.Store()
		return s.Lookup([]string{"base"}).Exists &&
			s.Lookup([]string{"majority-write"}).Exists &&
			s.Lookup([]string{"during-crash"}).Exists &&
			!s.Lookup([]string{"minority-write"}).Exists
	})
	waitFor(t, 3*time.Second, "full store convergence", func() bool {
		return storesEqual(t, n1.Store(), n3b.Store(), nil)
	})

	// Post-rejoin writes flow both ways again.
	c3b := dialNode(t, n3b)
	if err := c3b.Bind(ctx, []string{"after-rejoin"}, []byte("ok"), nil, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 4*time.Second, "post-rejoin replication", func() bool {
		return n1.Store().Lookup([]string{"after-rejoin"}).Exists
	})
}
