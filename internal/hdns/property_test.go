package hdns

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"gondi/internal/jgroups"
)

// Property: two live replicas driven by interleaved random writes from
// both sides converge to semantically identical stores once traffic
// quiesces — the §4.1 consistency claim under a realistic mixed workload.
func TestRandomOpsReplicaConvergence(t *testing.T) {
	ctx := context.Background()
	f := jgroups.NewFabric()
	n1 := startTestNode(t, f, "rc-n1", "rc", "")
	n2 := startTestNode(t, f, "rc-n2", "rc", "")
	waitFor(t, 4*time.Second, "group", func() bool {
		v := n1.Channel().View()
		return v != nil && len(v.Members) == 2
	})
	c1 := dialNode(t, n1)
	c2 := dialNode(t, n2)
	clients := []*Client{c1, c2}

	r := rand.New(rand.NewSource(20060101))
	names := make([][]string, 12)
	for i := range names {
		names[i] = []string{fmt.Sprintf("k%d", i)}
	}
	ctxNames := [][]string{{"d0"}, {"d1"}}
	for _, cn := range ctxNames {
		_ = c1.CreateCtx(ctx, cn, nil)
	}
	for i := 0; i < 12; i++ {
		names = append(names, []string{ctxNames[i%2][0], fmt.Sprintf("n%d", i)})
	}

	const ops = 300
	for i := 0; i < ops; i++ {
		c := clients[r.Intn(2)]
		name := names[r.Intn(len(names))]
		switch r.Intn(5) {
		case 0:
			_ = c.Bind(ctx, name, []byte(fmt.Sprintf("v%d", i)), map[string][]string{"seq": {fmt.Sprint(i)}}, 0)
		case 1:
			_ = c.Rebind(ctx, name, []byte(fmt.Sprintf("r%d", i)), nil, false, 0)
		case 2:
			_ = c.Unbind(ctx, name)
		case 3:
			_ = c.ModAttrs(ctx, name, []ModRec{{Op: 0, ID: "touched", Vals: []string{fmt.Sprint(i)}}})
		case 4:
			_, _ = c.Search(ctx, nil, "(seq=*)", 2, 0)
		}
	}

	// Quiesce, then compare the replicas structurally.
	waitFor(t, 6*time.Second, "replica convergence", func() bool {
		return storesEqual(t, n1.Store(), n2.Store(), nil)
	})
	if n1.Store().Len() == 0 {
		t.Fatal("degenerate run: store empty")
	}
	t.Logf("converged with %d entries after %d random ops", n1.Store().Len(), ops)
}

// Property: a replica that joins mid-workload ends up identical to the
// replicas that saw all traffic (state transfer + tail replication).
func TestLateJoinerConvergence(t *testing.T) {
	ctx := context.Background()
	f := jgroups.NewFabric()
	n1 := startTestNode(t, f, "lj-n1", "lj", "")
	c1 := dialNode(t, n1)
	for i := 0; i < 40; i++ {
		if err := c1.Bind(ctx, []string{fmt.Sprintf("pre%d", i)}, []byte("x"), nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	n2 := startTestNode(t, f, "lj-n2", "lj", "")
	// Keep writing while the joiner synchronizes.
	for i := 0; i < 40; i++ {
		if err := c1.Bind(ctx, []string{fmt.Sprintf("post%d", i)}, []byte("y"), nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 6*time.Second, "late joiner catches up", func() bool {
		return n2.Store().Len() == 80 && storesEqual(t, n1.Store(), n2.Store(), nil)
	})
}
