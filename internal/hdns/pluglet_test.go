package hdns

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gondi/internal/h2o"
)

// The §4.3 hosting story: HDNS deployed into an H2O kernel, secured by
// kernel policy, publishing change events on the kernel bus.
func TestPlugletLifecycle(t *testing.T) {
	ctx := context.Background()
	k := h2o.NewKernel()
	RegisterPluglet(k)

	snap := filepath.Join(t.TempDir(), "replica.snap")
	if err := k.Deploy("", "naming", PlugletType, map[string]string{
		"group":    "pluglet-test",
		"snapshot": snap,
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Start("", "naming"); err != nil {
		t.Fatal(err)
	}

	// The kernel bus carries HDNS change events.
	var mu sync.Mutex
	var topics []string
	cancel := k.Subscribe("hdns/*", func(e h2o.Event) {
		mu.Lock()
		topics = append(topics, e.Topic)
		mu.Unlock()
	})
	defer cancel()

	infos := k.List()
	if len(infos) != 1 || infos[0].State != h2o.StateRunning {
		t.Fatalf("deployments = %+v", infos)
	}

	// Reach the running node by dialing the address it publishes on the
	// "started" event.
	addrC := make(chan string, 1)
	cancel2 := k.Subscribe("naming/started", func(e h2o.Event) {
		if s, ok := e.Payload.(string); ok {
			select {
			case addrC <- s:
			default:
			}
		}
	})
	defer cancel2()
	// The started event fired before we subscribed; restart to re-fire.
	if err := k.Stop("", "naming"); err != nil {
		t.Fatal(err)
	}
	if err := k.Start("", "naming"); err != nil {
		t.Fatal(err)
	}
	var addr string
	select {
	case addr = <-addrC:
	case <-time.After(3 * time.Second):
		t.Fatal("no started event")
	}

	c, err := Dial(addr, "", 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Bind(ctx, []string{"hosted"}, []byte("v"), nil, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(topics)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no hdns/* event on the kernel bus")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Undeploy stops the node and persists the replica.
	if err := k.Undeploy("", "naming"); err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(addr, "", 300*time.Millisecond); err == nil {
		t.Fatal("node still serving after undeploy")
	}
}

// Kernel security gates deployment, per the paper's "control access via
// user-defined security policies".
func TestPlugletDeploymentRequiresPolicy(t *testing.T) {
	k := h2o.NewKernel()
	RegisterPluglet(k)
	k.AddPrincipal("operator", "pw")
	k.Policy().Grant("operator", h2o.ActionDeploy, h2o.ActionStart, h2o.ActionStop, h2o.ActionUndeploy)
	k.AddPrincipal("guest", "guest")

	// Guests may not deploy the naming service.
	gtok, err := k.Authenticate("guest", "guest")
	if err != nil {
		t.Fatal(err)
	}
	err = k.Deploy(gtok, "naming", PlugletType, map[string]string{"group": "sec-test"})
	if !errors.Is(err, h2o.ErrDenied) {
		t.Fatalf("guest deploy: %v", err)
	}
	// Operators may.
	otok, err := k.Authenticate("operator", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Deploy(otok, "naming", PlugletType, map[string]string{"group": "sec-test"}); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(otok, "naming"); err != nil {
		t.Fatal(err)
	}
	if err := k.Undeploy(otok, "naming"); err != nil {
		t.Fatal(err)
	}
}
