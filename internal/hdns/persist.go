package hdns

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"gondi/internal/core"
	"gondi/internal/obs"
	"gondi/internal/wal"
)

// persister owns one node's durable state: an optional whole-tree
// snapshot file plus an optional per-shard WAL. With a WAL, the
// snapshot stops being the unit of durability (the paper's §4.1
// whole-table sync) and becomes a compaction artifact: every applied op
// is appended to the log, and a restart replays snapshot + WAL tail, so
// a shard holding millions of entries restarts from its last compaction
// point instead of its last full dump.
//
// Compaction never blocks appliers for the duration of a snapshot. The
// order is Rotate (fast, starts a fresh segment), then snapshot (slow,
// concurrent ops keep appending to the new segment), then Prune: the
// snapshot is taken after the rotation, so it covers every record below
// the boundary, and records landing during the snapshot survive in the
// new segment. Replay skips records at or below the snapshot's version.
//
// Durability faults are first-class. Snapshots are written in the
// checksummed container (snapfile.go) and verified at load; the WAL is
// scrubbed on any boot a clean-shutdown marker does not vouch for. A
// pure crash signature (torn tail) is healed by truncation; anything
// else — a CRC mismatch mid-log, a snapshot that fails verification, a
// hole in the version chain — is quarantined aside and reported in a
// DamageReport so the node can repair from a healthy replica instead of
// refusing to start or silently un-acking history.
type persister struct {
	fs           wal.FS
	snapshotPath string
	walDir       string
	compactBytes int64
	log          *wal.Log // nil = WAL disabled (legacy snapshot-only mode)
	replayed     int      // records applied during open (restart diagnostics)

	compacting atomic.Bool
	mu         sync.Mutex // serializes snapshot writes
}

var (
	mWALAppendErrs = obs.Default.Counter("gondi_hdns_wal_append_errors_total",
		"WAL append failures (log sealed; writes surface storage unavailability).")
	mCompactions = obs.Default.Counter("gondi_hdns_wal_compactions_total",
		"Background WAL snapshot compactions completed.")
	mScrubErrs = obs.Default.Counter("gondi_wal_scrub_errors_total",
		"Durable-state verification failures found by scrub-on-start (snapshot or WAL quarantined).")
)

// defaultCompactBytes triggers compaction once the WAL outgrows this.
const defaultCompactBytes = 8 << 20

// cleanMarkerName is the clean-shutdown marker file, written next to the
// WAL segments after a fully successful close (final snapshot, prune,
// sync, close). Its presence lets the next boot take the fast Replay
// path; it is consumed — removed — at open, so the marker vouches for
// exactly one boot and any crash afterwards forces a scrub.
const cleanMarkerName = "CLEAN"

// errChainBroken marks a WAL record stream whose version chain cannot
// continue: a hole (acked history missing) or an undecodable op inside an
// intact CRC frame. Everything from the break on is unanchored.
var errChainBroken = errors.New("hdns: wal version chain broken")

// DamageReport says what scrub-on-start found wrong with a node's
// durable state and what it moved aside. A zero report (no quarantines)
// is a healthy boot — TornTail alone is the benign crash signature, not
// damage.
type DamageReport struct {
	// SnapshotQuarantined is where the snapshot file was moved when it
	// failed verification ("" = snapshot intact or absent).
	SnapshotQuarantined string
	// WALQuarantined lists segment files moved aside.
	WALQuarantined []string
	// TornTail reports the last segment ended mid-record and was healed
	// by truncation (benign: the crash interrupted an un-acked append).
	TornTail bool
	// Err is the typed corruption error describing the damage; non-nil
	// exactly when something was quarantined.
	Err *core.DataCorruptionError
}

// Corrupt reports whether anything was quarantined — the node's local
// state is incomplete and it should repair from a replica.
func (d *DamageReport) Corrupt() bool {
	return d != nil && (d.SnapshotQuarantined != "" || len(d.WALQuarantined) > 0)
}

// openPersistence restores durable state into a fresh store and returns
// the persister managing it plus the damage scrub-on-start found (never
// nil; check Corrupt). Either path may be empty; with both empty the
// node is memory-only (the persister is still returned, inert). fsys nil
// means the real filesystem.
func openPersistence(fsys wal.FS, snapshotPath, walDir string, compactBytes int64) (*persister, *Store, *DamageReport, error) {
	if fsys == nil {
		fsys = wal.OS
	}
	if compactBytes <= 0 {
		compactBytes = defaultCompactBytes
	}
	p := &persister{fs: fsys, snapshotPath: snapshotPath, walDir: walDir, compactBytes: compactBytes}
	damage := &DamageReport{}
	store := NewStore()
	if snapshotPath != "" {
		if b, err := fsys.ReadFile(snapshotPath); err == nil {
			ver, raw, legacy, derr := decodeSnapshotFile(b)
			if derr == nil {
				if rerr := store.Restore(raw); rerr != nil {
					derr = fmt.Errorf("%w: tree decode: %v", ErrSnapshotCorrupt, rerr)
				} else if !legacy && ver != store.Version() {
					derr = fmt.Errorf("%w: lineage header says version %d, tree decodes to %d",
						ErrSnapshotCorrupt, ver, store.Version())
				}
			}
			if derr != nil {
				qp := snapshotPath + wal.QuarantineSuffix
				if rerr := fsys.Rename(snapshotPath, qp); rerr != nil {
					return nil, nil, nil, fmt.Errorf("hdns: quarantine snapshot: %v (while handling: %w)", rerr, derr)
				}
				damage.SnapshotQuarantined = qp
				damage.Err = &core.DataCorruptionError{Path: snapshotPath, Detail: "snapshot failed verification", Err: derr}
				mScrubErrs.Inc()
				store = NewStore() // a partial Restore must not leak
			}
		}
	}
	if walDir != "" {
		l, err := wal.OpenFS(fsys, walDir)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("hdns: wal: %w", err)
		}
		p.log = l
		clean := p.consumeCleanMarker()
		switch {
		case damage.SnapshotQuarantined != "":
			// The log's lineage anchor is gone: every record's version is
			// relative to a snapshot that failed verification, so replaying
			// would hit a gap at the first record. Preserve it all aside.
			q, qerr := l.QuarantineAll()
			if qerr != nil {
				l.Close()
				return nil, nil, nil, fmt.Errorf("hdns: wal quarantine: %w", qerr)
			}
			damage.WALQuarantined = q
		case clean:
			// Clean shutdown vouched for the log: fast replay, no
			// re-verification beyond the per-record CRC. If the marker
			// turns out to have lied (at-rest damage since), fall back to
			// the scrub — records already applied are version-skipped.
			n, rerr := replayInto(store, l)
			p.replayed += n
			if rerr != nil {
				if serr := p.scrubInto(store, l, damage); serr != nil {
					l.Close()
					return nil, nil, nil, serr
				}
			}
		default:
			if serr := p.scrubInto(store, l, damage); serr != nil {
				l.Close()
				return nil, nil, nil, serr
			}
		}
	}
	return p, store, damage, nil
}

// scrubInto is the dirty-boot load path: verify + replay with damage
// classification, quarantining what cannot be proven. Returns an error
// only for I/O failures that prevent even the scrub.
func (p *persister) scrubInto(store *Store, l *wal.Log, damage *DamageReport) error {
	res, serr := l.Scrub(func(payload []byte) error {
		ver, op, err := decodeWALOp(payload)
		if err != nil {
			return fmt.Errorf("%w: record undecodable: %v", errChainBroken, err)
		}
		have := store.Version()
		if ver <= have {
			return nil // snapshot already covers it
		}
		if ver != have+1 {
			return fmt.Errorf("%w: store at %d, next record %d", errChainBroken, have, ver)
		}
		// Failed ops were logged too (they consumed a version); they
		// re-fail identically here, keeping the version stream exact.
		_, _, _ = store.ApplyVersioned(op)
		p.replayed++
		return nil
	})
	damage.TornTail = damage.TornTail || res.TornTail
	if len(res.Quarantined) > 0 {
		damage.WALQuarantined = append(damage.WALQuarantined, res.Quarantined...)
		damage.Err = &core.DataCorruptionError{Path: res.Quarantined[0], Detail: "wal segment failed verification", Err: res.Corruption}
		mScrubErrs.Inc()
	}
	if serr != nil {
		if errors.Is(serr, errChainBroken) {
			// The break is inside CRC-intact records, so Scrub could not
			// see it; everything left is unanchored. Move it all aside.
			q, qerr := l.QuarantineAll()
			if qerr != nil {
				return fmt.Errorf("hdns: wal quarantine: %w", qerr)
			}
			damage.WALQuarantined = append(damage.WALQuarantined, q...)
			if damage.Err == nil {
				path := p.walDir
				if len(q) > 0 {
					path = q[0]
				}
				damage.Err = &core.DataCorruptionError{Path: path, Detail: "wal version chain broken", Err: serr}
			}
			mScrubErrs.Inc()
			return nil
		}
		return fmt.Errorf("hdns: wal scrub: %w", serr)
	}
	return nil
}

// consumeCleanMarker reports whether the previous shutdown was clean,
// removing the marker so it vouches for this boot only.
func (p *persister) consumeCleanMarker() bool {
	if p.walDir == "" {
		return false
	}
	mp := filepath.Join(p.walDir, cleanMarkerName)
	if _, err := p.fs.Stat(mp); err != nil {
		return false
	}
	return p.fs.Remove(mp) == nil
}

// writeCleanMarker records a fully successful shutdown so the next boot
// may skip the scrub.
func (p *persister) writeCleanMarker() error {
	if p.walDir == "" {
		return nil
	}
	f, err := p.fs.OpenFile(filepath.Join(p.walDir, cleanMarkerName), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("clean\n")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// replayInto applies every WAL record newer than the store's version.
// Records are version-stamped at append time, so records the snapshot
// already covers are skipped and a version gap — acked history missing
// from both snapshot and log — is an error, never silence.
func replayInto(store *Store, l *wal.Log) (int, error) {
	applied := 0
	_, err := l.Replay(func(payload []byte) error {
		ver, op, err := decodeWALOp(payload)
		if err != nil {
			return err
		}
		have := store.Version()
		if ver <= have {
			return nil // snapshot already covers it
		}
		if ver != have+1 {
			return fmt.Errorf("version gap: store at %d, next record %d", have, ver)
		}
		// Failed ops were logged too (they consumed a version); they
		// re-fail identically here, keeping the version stream exact.
		_, _, _ = store.ApplyVersioned(op)
		applied++
		return nil
	})
	return applied, err
}

// RestoreInfo reports what rebuilding a store from durable state found.
type RestoreInfo struct {
	// Replayed is the number of WAL records applied on top of the
	// snapshot.
	Replayed int
	// Damage is the scrub's report (never nil; check Corrupt).
	Damage *DamageReport
}

// RestoreStoreFS rebuilds a shard's store from its durable state through
// an explicit filesystem — snapshot verification plus WAL scrub with
// torn-tail healing and corruption quarantine. This is exactly the
// restart path NewNode runs; the crash-point harness and the issue-8
// restart drill both drive it.
func RestoreStoreFS(fsys wal.FS, snapshotPath, walDir string) (*Store, *RestoreInfo, error) {
	p, store, damage, err := openPersistence(fsys, snapshotPath, walDir, 0)
	if err != nil {
		return nil, nil, err
	}
	if p.log != nil {
		_ = p.log.Close()
	}
	return store, &RestoreInfo{Replayed: p.replayed, Damage: damage}, nil
}

// RestoreStore is RestoreStoreFS on the real filesystem, returning the
// replayed-record count. It preserves the pre-scrub contract: damage
// that forced a quarantine is an error, because callers using this
// entry point (timing drills) expect an intact state.
func RestoreStore(snapshotPath, walDir string) (*Store, int, error) {
	store, info, err := RestoreStoreFS(nil, snapshotPath, walDir)
	if err != nil {
		return nil, 0, err
	}
	if info.Damage.Corrupt() {
		return nil, info.Replayed, info.Damage.Err
	}
	return store, info.Replayed, nil
}

// appendOp logs one applied op. A storage failure seals the log — the
// error (matching wal.ErrSealed) propagates so the applier can ack
// storage unavailability instead of silently dropping durability; the
// next compaction attempt rotates onto fresh space and unseals.
func (p *persister) appendOp(version uint64, op *Op) error {
	if p.log == nil {
		return nil
	}
	buf := walBufPool.Get().(*[]byte)
	b := appendWALOp((*buf)[:0], version, op)
	err := p.log.Append(b)
	if err != nil {
		mWALAppendErrs.Inc()
	}
	*buf = b
	walBufPool.Put(buf)
	return err
}

var walBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

// maybeCompact kicks a background compaction when the WAL has outgrown
// the threshold — or when a storage failure sealed it, since compaction
// begins with the Rotate that unseals (recovery retries ride the
// housekeeping cadence). Single-flight: an in-progress compaction
// absorbs later triggers.
func (p *persister) maybeCompact(store *Store) {
	if p.log == nil || p.snapshotPath == "" {
		return
	}
	if p.log.Size() < p.compactBytes && p.log.Sealed() == nil {
		return
	}
	if !p.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer p.compacting.Store(false)
		_ = p.compact(store)
	}()
}

// compact rotates, snapshots, prunes. Safe to run concurrently with
// appliers; p.mu keeps snapshot writers from interleaving.
func (p *persister) compact(store *Store) error {
	if p.log == nil || p.snapshotPath == "" {
		return nil
	}
	boundary, err := p.log.Rotate()
	if err != nil {
		return err
	}
	if err := p.writeSnapshot(store); err != nil {
		return err
	}
	if err := p.log.Prune(boundary); err != nil {
		return err
	}
	mCompactions.Inc()
	return nil
}

// resetAfterStateTransfer re-anchors durable state after the store was
// wholesale replaced by a jgroups state transfer (crash-rejoin pull,
// PRIMARY PARTITION resync, or corruption repair). The local WAL
// describes the abandoned lineage — its versions are unrelated to the
// transferred tree — so the transferred state is snapshotted and the old
// log dropped before any new op is appended.
func (p *persister) resetAfterStateTransfer(store *Store) {
	if p.log == nil {
		return
	}
	boundary, err := p.log.Rotate()
	if err != nil {
		return
	}
	if p.snapshotPath != "" {
		if err := p.writeSnapshot(store); err != nil {
			return
		}
	}
	_ = p.log.Prune(boundary)
}

// writeSnapshot persists the tree atomically (tmp + fsync + rename) in
// the checksummed container.
func (p *persister) writeSnapshot(store *Store) error {
	if p.snapshotPath == "" {
		return nil
	}
	ver, raw, err := store.SnapshotVersioned()
	if err != nil {
		return err
	}
	b := encodeSnapshotFile(ver, raw)
	p.mu.Lock()
	defer p.mu.Unlock()
	dir := filepath.Dir(p.snapshotPath)
	tmp, err := p.fs.CreateTemp(dir, ".hdns-snap-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		p.fs.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		p.fs.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		p.fs.Remove(tmp.Name())
		return err
	}
	return p.fs.Rename(tmp.Name(), p.snapshotPath)
}

// sync flushes appended records to stable storage (periodic, from
// housekeeping — the durability analog of the paper's snapshot cadence).
func (p *persister) sync() {
	if p.log != nil {
		_ = p.log.Sync()
	}
}

// walBytes reports the log's on-disk footprint (NodeInfo diagnostics).
func (p *persister) walBytes() int64 {
	if p.log == nil {
		return 0
	}
	return p.log.Size()
}

// close performs the §4.1 exit persistence — a final snapshot — then
// prunes the now-covered log, closes it, and, when every step succeeded,
// writes the clean-shutdown marker so the next boot may skip the scrub.
func (p *persister) close(store *Store) error {
	err := p.writeSnapshot(store)
	if p.log != nil {
		if err == nil && p.snapshotPath != "" {
			if boundary, rerr := p.log.Rotate(); rerr == nil {
				_ = p.log.Prune(boundary)
			}
		}
		if cerr := p.log.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = p.writeCleanMarker()
		}
	}
	return err
}
