package hdns

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"gondi/internal/obs"
	"gondi/internal/wal"
)

// persister owns one node's durable state: an optional whole-tree
// snapshot file plus an optional per-shard WAL. With a WAL, the
// snapshot stops being the unit of durability (the paper's §4.1
// whole-table sync) and becomes a compaction artifact: every applied op
// is appended to the log, and a restart replays snapshot + WAL tail, so
// a shard holding millions of entries restarts from its last compaction
// point instead of its last full dump.
//
// Compaction never blocks appliers for the duration of a snapshot. The
// order is Rotate (fast, starts a fresh segment), then snapshot (slow,
// concurrent ops keep appending to the new segment), then Prune: the
// snapshot is taken after the rotation, so it covers every record below
// the boundary, and records landing during the snapshot survive in the
// new segment. Replay skips records at or below the snapshot's version.
type persister struct {
	snapshotPath string
	compactBytes int64
	log          *wal.Log // nil = WAL disabled (legacy snapshot-only mode)

	compacting atomic.Bool
	mu         sync.Mutex // serializes snapshot writes
}

var (
	mWALAppendErrs = obs.Default.Counter("gondi_hdns_wal_append_errors_total",
		"WAL append failures (persistence degraded to the last snapshot).")
	mCompactions = obs.Default.Counter("gondi_hdns_wal_compactions_total",
		"Background WAL snapshot compactions completed.")
)

// defaultCompactBytes triggers compaction once the WAL outgrows this.
const defaultCompactBytes = 8 << 20

// openPersistence restores durable state into a fresh store and returns
// the persister managing it. Either path may be empty; with both empty
// the node is memory-only (the persister is still returned, inert).
func openPersistence(snapshotPath, walDir string, compactBytes int64) (*persister, *Store, error) {
	if compactBytes <= 0 {
		compactBytes = defaultCompactBytes
	}
	p := &persister{snapshotPath: snapshotPath, compactBytes: compactBytes}
	store := NewStore()
	if snapshotPath != "" {
		if b, err := os.ReadFile(snapshotPath); err == nil {
			if err := store.Restore(b); err != nil {
				return nil, nil, fmt.Errorf("hdns: corrupt snapshot %s: %w", snapshotPath, err)
			}
		}
	}
	if walDir != "" {
		l, err := wal.Open(walDir)
		if err != nil {
			return nil, nil, fmt.Errorf("hdns: wal: %w", err)
		}
		if _, err := replayInto(store, l); err != nil {
			l.Close()
			return nil, nil, fmt.Errorf("hdns: wal replay: %w", err)
		}
		p.log = l
	}
	return p, store, nil
}

// replayInto applies every WAL record newer than the store's version.
// Records are version-stamped at append time, so records the snapshot
// already covers are skipped and a version gap — acked history missing
// from both snapshot and log — is an error, never silence.
func replayInto(store *Store, l *wal.Log) (int, error) {
	applied := 0
	_, err := l.Replay(func(payload []byte) error {
		ver, op, err := decodeWALOp(payload)
		if err != nil {
			return err
		}
		have := store.Version()
		if ver <= have {
			return nil // snapshot already covers it
		}
		if ver != have+1 {
			return fmt.Errorf("version gap: store at %d, next record %d", have, ver)
		}
		// Failed ops were logged too (they consumed a version); they
		// re-fail identically here, keeping the version stream exact.
		_, _, _ = store.ApplyVersioned(op)
		applied++
		return nil
	})
	return applied, err
}

// RestoreStore rebuilds a shard's store from its durable state —
// snapshot load plus WAL replay with torn-tail recovery — and returns
// the store and the number of replayed records. This is exactly the
// restart path NewNode runs; the issue-8 crash-restart drill times it.
func RestoreStore(snapshotPath, walDir string) (*Store, int, error) {
	store := NewStore()
	if snapshotPath != "" {
		if b, err := os.ReadFile(snapshotPath); err == nil {
			if err := store.Restore(b); err != nil {
				return nil, 0, err
			}
		}
	}
	if walDir == "" {
		return store, 0, nil
	}
	l, err := wal.Open(walDir)
	if err != nil {
		return nil, 0, err
	}
	defer l.Close()
	n, err := replayInto(store, l)
	if err != nil {
		return nil, n, err
	}
	return store, n, nil
}

// appendOp logs one applied op. Append failure degrades durability to
// the last snapshot (counted, not fatal): replication — not the disk —
// is the availability story, exactly as with the paper's periodic sync.
func (p *persister) appendOp(version uint64, op *Op) {
	if p.log == nil {
		return
	}
	buf := walBufPool.Get().(*[]byte)
	b := appendWALOp((*buf)[:0], version, op)
	if err := p.log.Append(b); err != nil {
		mWALAppendErrs.Inc()
	}
	*buf = b
	walBufPool.Put(buf)
}

var walBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

// maybeCompact kicks a background compaction when the WAL has outgrown
// the threshold. Single-flight: an in-progress compaction absorbs later
// triggers.
func (p *persister) maybeCompact(store *Store) {
	if p.log == nil || p.snapshotPath == "" || p.log.Size() < p.compactBytes {
		return
	}
	if !p.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer p.compacting.Store(false)
		_ = p.compact(store)
	}()
}

// compact rotates, snapshots, prunes. Safe to run concurrently with
// appliers; p.mu keeps snapshot writers from interleaving.
func (p *persister) compact(store *Store) error {
	if p.log == nil || p.snapshotPath == "" {
		return nil
	}
	boundary, err := p.log.Rotate()
	if err != nil {
		return err
	}
	if err := p.writeSnapshot(store); err != nil {
		return err
	}
	if err := p.log.Prune(boundary); err != nil {
		return err
	}
	mCompactions.Inc()
	return nil
}

// resetAfterStateTransfer re-anchors durable state after the store was
// wholesale replaced by a jgroups state transfer (crash-rejoin pull or
// PRIMARY PARTITION resync). The local WAL describes the abandoned
// lineage — its versions are unrelated to the transferred tree — so the
// transferred state is snapshotted and the old log dropped before any
// new op is appended.
func (p *persister) resetAfterStateTransfer(store *Store) {
	if p.log == nil {
		return
	}
	boundary, err := p.log.Rotate()
	if err != nil {
		return
	}
	if p.snapshotPath != "" {
		if err := p.writeSnapshot(store); err != nil {
			return
		}
	}
	_ = p.log.Prune(boundary)
}

// writeSnapshot persists the tree atomically (tmp + rename).
func (p *persister) writeSnapshot(store *Store) error {
	if p.snapshotPath == "" {
		return nil
	}
	b, err := store.Snapshot()
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	dir := filepath.Dir(p.snapshotPath)
	tmp, err := os.CreateTemp(dir, ".hdns-snap-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), p.snapshotPath)
}

// sync flushes appended records to stable storage (periodic, from
// housekeeping — the durability analog of the paper's snapshot cadence).
func (p *persister) sync() {
	if p.log != nil {
		_ = p.log.Sync()
	}
}

// walBytes reports the log's on-disk footprint (NodeInfo diagnostics).
func (p *persister) walBytes() int64 {
	if p.log == nil {
		return 0
	}
	return p.log.Size()
}

// close performs the §4.1 exit persistence — a final snapshot — then
// prunes the now-covered log and closes it.
func (p *persister) close(store *Store) error {
	err := p.writeSnapshot(store)
	if p.log != nil {
		if err == nil && p.snapshotPath != "" {
			if boundary, rerr := p.log.Rotate(); rerr == nil {
				_ = p.log.Prune(boundary)
			}
		}
		if cerr := p.log.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
