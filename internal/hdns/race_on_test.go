//go:build race

package hdns

// raceEnabled reports that the race detector is active; timing-calibrated
// assertions are skipped under its several-fold slowdown.
const raceEnabled = true
