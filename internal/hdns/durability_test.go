package hdns

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gondi/internal/core"
	"gondi/internal/fault"
	"gondi/internal/jgroups"
	"gondi/internal/wal"
)

// The full crash-point matrix: power loss at every durability boundary
// of append/rotate/snapshot/prune, each followed by a restart that must
// lose no acked write, keep the version chain consecutive, and never
// mistake a pure crash for corruption.
func TestCrashPointMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix is O(boundaries) restarts")
	}
	res, err := RunCrashPointDrill(t.TempDir(), CrashDrillConfig{
		Entries:   24,
		CompactAt: []int{8, 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != res.Boundaries || res.Boundaries == 0 {
		t.Fatalf("matrix incomplete: %+v", res)
	}
	if res.LostAcked > 0 {
		t.Fatalf("%d acked writes lost across the matrix: %+v", res.LostAcked, res)
	}
	if res.Quarantines > 0 {
		t.Fatalf("a pure crash was classified as corruption %d times: %+v", res.Quarantines, res)
	}
	if res.BrokenChains > 0 {
		t.Fatalf("%d restarts restored a broken version chain: %+v", res.BrokenChains, res)
	}
	if res.TornTails == 0 {
		t.Fatalf("no crash point tore the WAL tail; the matrix is not hitting append writes: %+v", res)
	}
}

// seedState builds a closed, clean durable state of n entries under dir
// and returns (snapshotPath, walDir). tail entries live only in the WAL.
func seedState(t *testing.T, dir string, n, tail int) (string, string) {
	t.Helper()
	snap := filepath.Join(dir, "replica.snap")
	walDir := filepath.Join(dir, "wal")
	if err := BuildShardState(snap, walDir, n, tail); err != nil {
		t.Fatal(err)
	}
	return snap, walDir
}

// Mid-log WAL corruption on a dirty boot must quarantine — typed, never
// a refusal to start — and keep the records before the damage.
func TestOpenQuarantinesCorruptWAL(t *testing.T) {
	dir := t.TempDir()
	snap, walDir := seedState(t, dir, 40, 30)
	// No clean marker was written (BuildShardState closes the log
	// directly), so this boot scrubs. Corrupt an early WAL record.
	segs, err := filepath.Glob(filepath.Join(walDir, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	b[12] ^= 0x01
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	p, st, damage, err := openPersistence(nil, snap, walDir, 0)
	if err != nil {
		t.Fatalf("open refused to start: %v", err)
	}
	defer p.log.Close()
	if !damage.Corrupt() || len(damage.WALQuarantined) == 0 {
		t.Fatalf("damage not reported: %+v", damage)
	}
	var dce *core.DataCorruptionError
	if damage.Err == nil || !errors.As(damage.Err, &dce) {
		t.Fatalf("damage error not typed: %v", damage.Err)
	}
	// Snapshot-covered entries survive; the store serves what the disk
	// could prove.
	if st.Len() < 10 {
		t.Fatalf("snapshot-covered entries lost: len=%d", st.Len())
	}
	for _, q := range damage.WALQuarantined {
		if _, err := os.Stat(q); err != nil {
			t.Fatalf("quarantined file missing: %v", err)
		}
	}
}

// A snapshot that fails verification must be quarantined together with
// the whole WAL (its lineage anchor is gone), booting empty + degraded.
func TestOpenQuarantinesCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	snap, walDir := seedState(t, dir, 30, 10)
	b, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x08
	if err := os.WriteFile(snap, b, 0o644); err != nil {
		t.Fatal(err)
	}

	p, st, damage, err := openPersistence(nil, snap, walDir, 0)
	if err != nil {
		t.Fatalf("open refused to start: %v", err)
	}
	defer p.log.Close()
	if damage.SnapshotQuarantined == "" || len(damage.WALQuarantined) == 0 {
		t.Fatalf("anchor loss not fully quarantined: %+v", damage)
	}
	if st.Len() != 0 || st.Version() != 0 {
		t.Fatalf("store not empty after anchor loss: len=%d ver=%d", st.Len(), st.Version())
	}
	if _, err := os.Stat(damage.SnapshotQuarantined); err != nil {
		t.Fatalf("quarantined snapshot missing: %v", err)
	}
}

// A clean shutdown writes the marker; the next boot consumes it (one
// boot per voucher) and restores everything.
func TestCleanShutdownMarkerRoundTrip(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	snap := filepath.Join(dir, "replica.snap")
	walDir := filepath.Join(dir, "wal")
	f := jgroups.NewFabric()
	n, err := NewNode(NodeConfig{
		Group: "gmark", Transport: f.Endpoint("n1"), Stack: testStack(),
		ListenAddr: "127.0.0.1:0", SnapshotPath: snap, WALDir: walDir,
		SnapshotInterval: time.Hour, WriteTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := dialNode(t, n)
	for i := 0; i < 10; i++ {
		if err := c.Bind(ctx, []string{fmt.Sprintf("svc%d", i)}, []byte("obj"), nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	wantVer := n.store.Version()
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	marker := filepath.Join(walDir, cleanMarkerName)
	if _, err := os.Stat(marker); err != nil {
		t.Fatalf("clean close left no marker: %v", err)
	}

	st, info, err := RestoreStoreFS(nil, snap, walDir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Damage.Corrupt() || info.Damage.TornTail {
		t.Fatalf("clean boot reported damage: %+v", info.Damage)
	}
	if st.Version() != wantVer || st.Len() != 10 {
		t.Fatalf("restored ver=%d len=%d, want ver=%d len=10", st.Version(), st.Len(), wantVer)
	}
	if _, err := os.Stat(marker); !os.IsNotExist(err) {
		t.Fatalf("marker not consumed: %v", err)
	}
}

// A node booting from corrupt local state must join the group degraded,
// repair via state transfer, and end up serving the group's data — the
// replica-driven auto-repair loop.
func TestCorruptNodeRepairsViaStateTransfer(t *testing.T) {
	ctx := context.Background()
	f := jgroups.NewFabric()
	dir := t.TempDir()
	snapA := filepath.Join(dir, "a.snap")
	walA := filepath.Join(dir, "wal-a")

	// Healthy replica B accumulates the group's state.
	b := startTestNode(t, f, "b", "grep", "")
	cb := dialNode(t, b)
	for i := 0; i < 20; i++ {
		if err := cb.Bind(ctx, []string{fmt.Sprintf("svc%d", i)}, []byte("obj"), nil, 0); err != nil {
			t.Fatal(err)
		}
	}

	// A's local durable state is damaged (unrelated lineage + bad CRC).
	if err := BuildShardState(snapA, walA, 15, 5); err != nil {
		t.Fatal(err)
	}
	sb, err := os.ReadFile(snapA)
	if err != nil {
		t.Fatal(err)
	}
	sb[len(sb)-2] ^= 0x20
	if err := os.WriteFile(snapA, sb, 0o644); err != nil {
		t.Fatal(err)
	}

	a, err := NewNode(NodeConfig{
		Group: "grep", Transport: f.Endpoint("a"), Stack: testStack(),
		ListenAddr: "127.0.0.1:0", SnapshotPath: snapA, WALDir: walA,
		SnapshotInterval: time.Hour, WriteTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("corrupt node refused to start: %v", err)
	}
	defer a.Close()
	if !a.Damage().Corrupt() {
		t.Fatal("damage not detected")
	}
	// Joining the existing group pulled state from B — that transfer IS
	// the repair.
	waitFor(t, 5*time.Second, "repair via state transfer", func() bool {
		return !a.NeedsRepair() && a.Repairs() == 1
	})
	waitFor(t, 5*time.Second, "stores converge", func() bool {
		return storesEqual(t, a.Store(), b.Store(), nil)
	})
	// The repaired state must be durable: restart A alone and find it.
	if err := a.Close(); err != nil {
		t.Fatalf("close repaired node: %v", err)
	}
	st, info, err := RestoreStoreFS(nil, snapA, walA)
	if err != nil {
		t.Fatal(err)
	}
	if info.Damage.Corrupt() {
		t.Fatalf("repaired state still damaged: %+v", info.Damage)
	}
	if st.Len() != 20 {
		t.Fatalf("repaired durable state has %d entries, want 20", st.Len())
	}
}

// An ENOSPC'd WAL must seal; writes then ack storage-unavailable (typed
// through the client), and a successful compaction recovers.
func TestSealedWALSurfacesStorageUnavailable(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	ffs := fault.NewFS(wal.OS, fault.FSConfig{Seed: 1, WriteErrProb: 1})
	ffs.SetEnabled(false)
	f := jgroups.NewFabric()
	n, err := NewNode(NodeConfig{
		Group: "gseal", Transport: f.Endpoint("n1"), Stack: testStack(),
		ListenAddr: "127.0.0.1:0", SnapshotPath: filepath.Join(dir, "replica.snap"),
		WALDir: filepath.Join(dir, "wal"), SnapshotInterval: time.Hour,
		WriteTimeout: 5 * time.Second, FS: ffs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	c := dialNode(t, n)
	if err := c.Bind(ctx, []string{"before"}, []byte("x"), nil, 0); err != nil {
		t.Fatal(err)
	}

	ffs.SetEnabled(true) // every write now fails: the disk is full
	err = c.Bind(ctx, []string{"doomed"}, []byte("x"), nil, 0)
	if !IsStorageUnavailable(err) {
		t.Fatalf("write on sealed WAL: err=%v, want storage-unavailable", err)
	}
	if n.pers.log.Sealed() == nil {
		t.Fatal("log not sealed after write failure")
	}

	ffs.SetEnabled(false) // space freed; compaction rotates and unseals
	if err := n.pers.compact(n.store); err != nil {
		t.Fatalf("recovery compaction: %v", err)
	}
	if err := c.Bind(ctx, []string{"after"}, []byte("x"), nil, 0); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}
