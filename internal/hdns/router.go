package hdns

import (
	"context"
	"errors"
	"sort"
	"sync"

	"gondi/internal/shard"
)

// Conn is the client-side HDNS surface: what a provider needs from "a
// connection to the namespace", whether that is one replication group
// (*Client) or several behind a consistent-hashing router (*Router).
// Code written against Conn is shard-oblivious — the paper's service
// integration story extended one level: the namespace's own storage
// becomes a set of federated groups behind the same interface.
type Conn interface {
	Lookup(ctx context.Context, name []string) (NodeView, error)
	Bind(ctx context.Context, name []string, obj []byte, attrs map[string][]string, leaseMillis int64) error
	Rebind(ctx context.Context, name []string, obj []byte, attrs map[string][]string, replaceAttrs bool, leaseMillis int64) error
	Unbind(ctx context.Context, name []string) error
	Rename(ctx context.Context, oldName, newName []string) error
	List(ctx context.Context, name []string) ([]ListEntry, error)
	CreateCtx(ctx context.Context, name []string, attrs map[string][]string) error
	DestroyCtx(ctx context.Context, name []string) error
	ModAttrs(ctx context.Context, name []string, mods []ModRec) error
	Search(ctx context.Context, name []string, filterStr string, scope, limit int) ([]SearchHit, error)
	RenewLease(ctx context.Context, name []string, leaseMillis int64) (int64, error)
	Watch(ctx context.Context, target []string, scope int, fn func(EventMsg)) (cancel func(), err error)
	Info(ctx context.Context) (NodeInfo, error)
	CallMany(ctx context.Context, ops []BatchOp) ([]BatchRsp, error)
	LookupMany(ctx context.Context, names [][]string) ([]BatchRsp, error)
	BindMany(ctx context.Context, binds []BindManyOp) ([]BatchRsp, error)
	Close() error
	Closed() bool
	Done() <-chan struct{}
}

var _ Conn = (*Client)(nil)

// Router routes HDNS operations across a sharded deployment: one Conn
// per replica group, names mapped to groups by the canonical consistent
// hash ring. Single-name ops go to exactly one group; root-scoped reads
// and batches fan out and merge. The Router adds no consistency of its
// own — each group keeps its PRIMARY_PARTITION guarantees, and the only
// cross-group composite (Rename across groups) is emulated and
// documented as non-atomic.
type Router struct {
	ring  *shard.Ring
	conns []Conn

	closeOnce sync.Once
	done      chan struct{}
}

// NewRouter wraps one Conn per replica group (index = shard index). A
// single conn collapses to pass-through routing; zero conns is an error.
func NewRouter(conns []Conn) (*Router, error) {
	if len(conns) == 0 {
		return nil, errors.New("hdns: router needs at least one group")
	}
	r := &Router{ring: shard.Cached(len(conns)), conns: conns, done: make(chan struct{})}
	// Server-side watch registrations die with their group connection, so
	// the router's Done mirrors the first group loss: holders re-Watch
	// through the provider's failover path just as with a single client.
	for _, c := range conns {
		go func(c Conn) {
			select {
			case <-c.Done():
				r.closeOnce.Do(func() { close(r.done) })
			case <-r.done:
			}
		}(c)
	}
	return r, nil
}

// Groups returns the number of replica groups behind the router.
func (r *Router) Groups() int { return len(r.conns) }

// GroupConn exposes one group's connection (diagnostics and tests).
func (r *Router) GroupConn(i int) Conn { return r.conns[i] }

// RouteName reports which group index serves name (tests, fedctl).
func (r *Router) RouteName(name []string) int { return r.ring.RouteName(name) }

func (r *Router) pick(name []string) Conn { return r.conns[r.ring.RouteName(name)] }

func (r *Router) Lookup(ctx context.Context, name []string) (NodeView, error) {
	return r.pick(name).Lookup(ctx, name)
}

func (r *Router) Bind(ctx context.Context, name []string, obj []byte, attrs map[string][]string, leaseMillis int64) error {
	return r.pick(name).Bind(ctx, name, obj, attrs, leaseMillis)
}

func (r *Router) Rebind(ctx context.Context, name []string, obj []byte, attrs map[string][]string, replaceAttrs bool, leaseMillis int64) error {
	return r.pick(name).Rebind(ctx, name, obj, attrs, replaceAttrs, leaseMillis)
}

func (r *Router) Unbind(ctx context.Context, name []string) error {
	return r.pick(name).Unbind(ctx, name)
}

// errCrossShardRename marks the one cross-group composite the router
// refuses: renaming a context across groups. The string is the wire/
// client-side contract — IsCrossShardRename classifies it, and the
// provider maps it onto the typed core.CrossShardRenameError so
// federation callers can branch on the refusal.
const errCrossShardRename = "hdns: cross-shard rename of a context"

// IsCrossShardRename reports whether err is the router's typed refusal
// to move a context between shard groups.
func IsCrossShardRename(err error) bool { return hasMsg(err, errCrossShardRename) }

// Rename within one group is the group's atomic rename. Across groups
// it is emulated as lookup + atomic bind + unbind: the destination bind
// keeps the "fail if bound" contract, but a crash between bind and
// unbind can leave the object visible under both names (resolved by
// retrying the rename or unbinding the source).
func (r *Router) Rename(ctx context.Context, oldName, newName []string) error {
	src, dst := r.ring.RouteName(oldName), r.ring.RouteName(newName)
	if src == dst {
		return r.conns[src].Rename(ctx, oldName, newName)
	}
	view, err := r.conns[src].Lookup(ctx, oldName)
	if err != nil {
		return err
	}
	if !view.Exists {
		return errors.New(errNotFound)
	}
	if view.IsCtx {
		// Moving a whole subtree between groups is a rebalance, not a
		// rename; refuse typed rather than half-copy a context.
		return errors.New(errCrossShardRename)
	}
	if err := r.conns[dst].Bind(ctx, newName, view.Obj, view.Attrs, 0); err != nil {
		return err
	}
	return r.conns[src].Unbind(ctx, oldName)
}

func (r *Router) List(ctx context.Context, name []string) ([]ListEntry, error) {
	if len(name) > 0 {
		return r.pick(name).List(ctx, name)
	}
	// Root: every group holds its own top-level entries; merge them.
	merged := make([][]ListEntry, len(r.conns))
	err := r.eachGroup(func(i int, c Conn) error {
		list, e := c.List(ctx, name)
		merged[i] = list
		return e
	})
	if err != nil {
		return nil, err
	}
	var out []ListEntry
	for _, l := range merged {
		out = append(out, l...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func (r *Router) CreateCtx(ctx context.Context, name []string, attrs map[string][]string) error {
	return r.pick(name).CreateCtx(ctx, name, attrs)
}

func (r *Router) DestroyCtx(ctx context.Context, name []string) error {
	return r.pick(name).DestroyCtx(ctx, name)
}

func (r *Router) ModAttrs(ctx context.Context, name []string, mods []ModRec) error {
	return r.pick(name).ModAttrs(ctx, name, mods)
}

func (r *Router) Search(ctx context.Context, name []string, filterStr string, scope, limit int) ([]SearchHit, error) {
	if len(name) > 0 {
		return r.pick(name).Search(ctx, name, filterStr, scope, limit)
	}
	merged := make([][]SearchHit, len(r.conns))
	err := r.eachGroup(func(i int, c Conn) error {
		hits, e := c.Search(ctx, name, filterStr, scope, limit)
		merged[i] = hits
		return e
	})
	if err != nil {
		return nil, err
	}
	var out []SearchHit
	for _, h := range merged {
		out = append(out, h...)
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

func (r *Router) RenewLease(ctx context.Context, name []string, leaseMillis int64) (int64, error) {
	return r.pick(name).RenewLease(ctx, name, leaseMillis)
}

// Watch on a non-root target registers with the owning group. A root
// watch fans out to every group; cancel tears all registrations down.
func (r *Router) Watch(ctx context.Context, target []string, scope int, fn func(EventMsg)) (func(), error) {
	if len(target) > 0 {
		return r.pick(target).Watch(ctx, target, scope, fn)
	}
	cancels := make([]func(), 0, len(r.conns))
	for _, c := range r.conns {
		cancel, err := c.Watch(ctx, target, scope, fn)
		if err != nil {
			for _, u := range cancels {
				u()
			}
			return nil, err
		}
		cancels = append(cancels, cancel)
	}
	return func() {
		for _, u := range cancels {
			u()
		}
	}, nil
}

// Info aggregates the deployment: group 0's identity fields, entry and
// version counts summed across groups, and the shard arity.
func (r *Router) Info(ctx context.Context) (NodeInfo, error) {
	infos, err := r.groupInfos(ctx)
	if err != nil {
		return NodeInfo{}, err
	}
	agg := infos[0]
	agg.ShardGroups = len(r.conns)
	agg.ShardIndex = 0
	for _, in := range infos[1:] {
		agg.Entries += in.Entries
		agg.Version += in.Version
		agg.WALBytes += in.WALBytes
	}
	return agg, nil
}

// View assembles the per-group membership picture (fedctl diagnostics).
func (r *Router) View(ctx context.Context) (shard.View, error) {
	infos, err := r.groupInfos(ctx)
	if err != nil {
		return shard.View{}, err
	}
	v := shard.View{Groups: make([]shard.GroupView, len(infos))}
	for i, in := range infos {
		v.Groups[i] = shard.GroupView{Index: i, Authority: in.Addr, Members: in.Members, Entries: in.Entries}
	}
	return v, nil
}

func (r *Router) groupInfos(ctx context.Context) ([]NodeInfo, error) {
	infos := make([]NodeInfo, len(r.conns))
	err := r.eachGroup(func(i int, c Conn) error {
		in, e := c.Info(ctx)
		infos[i] = in
		return e
	})
	if err != nil {
		return nil, err
	}
	return infos, nil
}

// eachGroup runs fn once per group concurrently, returning the first
// error (fan-out reads want all-or-error; batches use CallMany's
// per-item semantics instead).
func (r *Router) eachGroup(fn func(i int, c Conn) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(r.conns))
	for i, c := range r.conns {
		wg.Add(1)
		go func(i int, c Conn) {
			defer wg.Done()
			errs[i] = fn(i, c)
		}(i, c)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// CallMany splits a batch by each item's routed group, issues one
// sub-batch per group concurrently (each riding PR 6's batch frames on
// that group's connection), and reassembles results in submission
// order. Partial failure is typed per item: a group-level transport
// failure surfaces as that group's items' errors while the other
// groups' results return normally — exactly the per-item contract a
// single node gives for an op that fails mid-batch.
func (r *Router) CallMany(ctx context.Context, ops []BatchOp) ([]BatchRsp, error) {
	if len(r.conns) == 1 {
		return r.conns[0].CallMany(ctx, ops)
	}
	type subBatch struct {
		ops []BatchOp
		idx []int // position of each sub-op in the original batch
	}
	subs := make([]subBatch, len(r.conns))
	for i, op := range ops {
		g := 0
		if op.Req != nil {
			g = r.ring.RouteName(op.Req.Name)
		}
		subs[g].ops = append(subs[g].ops, op)
		subs[g].idx = append(subs[g].idx, i)
	}
	out := make([]BatchRsp, len(ops))
	var wg sync.WaitGroup
	for g := range subs {
		if len(subs[g].ops) == 0 {
			continue
		}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rsps, err := r.conns[g].CallMany(ctx, subs[g].ops)
			for j, orig := range subs[g].idx {
				if err != nil {
					out[orig] = BatchRsp{Err: err}
					continue
				}
				out[orig] = rsps[j]
			}
		}(g)
	}
	wg.Wait()
	return out, nil
}

func (r *Router) LookupMany(ctx context.Context, names [][]string) ([]BatchRsp, error) {
	ops := make([]BatchOp, len(names))
	for i, name := range names {
		ops[i] = BatchOp{Method: mLookup, Req: &Req{Name: name}}
	}
	return r.CallMany(ctx, ops)
}

func (r *Router) BindMany(ctx context.Context, binds []BindManyOp) ([]BatchRsp, error) {
	ops := make([]BatchOp, len(binds))
	for i, b := range binds {
		ops[i] = BatchOp{Method: mBind, Req: &Req{
			Name: b.Name, Obj: b.Obj, Attrs: b.Attrs, LeaseMillis: b.LeaseMillis,
		}}
	}
	return r.CallMany(ctx, ops)
}

// Close closes every group connection, returning the first error.
func (r *Router) Close() error {
	r.closeOnce.Do(func() { close(r.done) })
	var first error
	for _, c := range r.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Closed reports whether any group connection has terminated (pooled
// providers then discard and redial the whole router, re-ranking each
// group's endpoints through the breaker as usual).
func (r *Router) Closed() bool {
	select {
	case <-r.done:
		return true
	default:
	}
	for _, c := range r.conns {
		if c.Closed() {
			return true
		}
	}
	return false
}

func (r *Router) Done() <-chan struct{} { return r.done }

var _ Conn = (*Router)(nil)
