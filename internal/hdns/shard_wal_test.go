package hdns

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"gondi/internal/jgroups"
	"gondi/internal/shard"
)

// --- WAL persistence on the node restart path ---

func TestWALOpCodecRoundTrip(t *testing.T) {
	ops := []*Op{
		{Kind: OpBind, Name: []string{"dcl", "mokey"}, Obj: []byte("printer"),
			Attrs: map[string][]string{"type": {"lpr", "duplex"}}, LeaseMillis: 5000, Now: 1234567},
		{Kind: OpRename, ID: "n1-17", Name: []string{"a"}, Name2: []string{"b", "c"}},
		{Kind: OpModAttrs, Name: []string{"x"}, Mods: []ModRec{
			{Op: 0, ID: "k", Vals: []string{"v1", "v2"}}, {Op: 2, ID: "gone"}}},
		{Kind: OpRebind, Name: []string{"y"}, ReplaceAttrs: true},
		{Kind: OpUnbind, Name: nil},
	}
	for i, op := range ops {
		b := appendWALOp(nil, uint64(i+1), op)
		ver, got, err := decodeWALOp(b)
		if err != nil {
			t.Fatalf("op %d: decode: %v", i, err)
		}
		if ver != uint64(i+1) {
			t.Fatalf("op %d: version %d, want %d", i, ver, i+1)
		}
		if got.Kind != op.Kind || got.ID != op.ID || len(got.Name) != len(op.Name) ||
			len(got.Name2) != len(op.Name2) || string(got.Obj) != string(op.Obj) ||
			got.ReplaceAttrs != op.ReplaceAttrs || got.LeaseMillis != op.LeaseMillis ||
			got.Now != op.Now || len(got.Attrs) != len(op.Attrs) || len(got.Mods) != len(op.Mods) {
			t.Fatalf("op %d: round trip mismatch:\n got %+v\nwant %+v", i, got, op)
		}
		// Strict decode: any trailing byte is an error.
		if _, _, err := decodeWALOp(append(b, 0)); err == nil {
			t.Fatalf("op %d: trailing byte accepted", i)
		}
	}
}

// A node with a WAL must be restorable from disk *without* a clean
// shutdown: RestoreStore(snapshot, wal) is the crash path and must see
// every synced write even though no snapshot was ever taken.
func TestWALCrashRestartReplay(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	snap := filepath.Join(dir, "replica.snap")
	walDir := filepath.Join(dir, "wal")
	f := jgroups.NewFabric()
	n, err := NewNode(NodeConfig{
		Group: "gwal", Transport: f.Endpoint("n1"), Stack: testStack(),
		ListenAddr: "127.0.0.1:0", SnapshotPath: snap, WALDir: walDir,
		SnapshotInterval: time.Hour, // housekeeping never syncs in this test
		WriteTimeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	c := dialNode(t, n)
	for i := 0; i < 50; i++ {
		if err := c.Bind(ctx, []string{fmt.Sprintf("svc%d", i)}, []byte("obj"), nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	// A failed op consumes a version too; replay must reproduce it.
	if err := c.Bind(ctx, []string{"svc0"}, nil, nil, 0); !IsAlreadyBound(err) {
		t.Fatalf("dup bind: %v", err)
	}
	n.pers.sync()

	st, replayed, err := RestoreStore(snap, walDir)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if replayed == 0 {
		t.Fatal("restore replayed nothing; WAL is not being written")
	}
	if st.Len() != n.store.Len() {
		t.Fatalf("restored %d entries, live store has %d", st.Len(), n.store.Len())
	}
	if st.Version() != n.store.Version() {
		t.Fatalf("restored version %d, live %d", st.Version(), n.store.Version())
	}
	if v := st.Lookup([]string{"svc49"}); !v.Exists || string(v.Obj) != "obj" {
		t.Fatalf("restored lookup: %+v", v)
	}
}

// Compaction must not lose the tail: ops applied after Rotate live in
// the new segment, the snapshot covers everything before it, and a
// restart replays only the post-compaction records.
func TestWALCompactionKeepsTail(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "replica.snap")
	p, st, _, err := openPersistence(nil, snap, filepath.Join(dir, "wal"), 1)
	if err != nil {
		t.Fatal(err)
	}
	apply := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			op := &Op{Kind: OpBind, Name: []string{fmt.Sprintf("e%d", i)}, Obj: []byte("v")}
			_, ver, errStr := st.ApplyVersioned(op)
			if errStr != "" {
				t.Fatalf("apply %d: %s", i, errStr)
			}
			if err := p.appendOp(ver, op); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
		}
	}
	apply(0, 100)
	if err := p.compact(st); err != nil {
		t.Fatalf("compact: %v", err)
	}
	apply(100, 130)
	p.sync()

	st2, replayed, err := RestoreStore(snap, filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if replayed != 30 {
		t.Fatalf("replayed %d records, want just the 30 post-compaction ones", replayed)
	}
	if st2.Len() != st.Len() || st2.Version() != st.Version() {
		t.Fatalf("restored len=%d ver=%d, want len=%d ver=%d", st2.Len(), st2.Version(), st.Len(), st.Version())
	}
	if err := p.close(st); err != nil {
		t.Fatal(err)
	}
}

// --- Sharded routing ---

// twoShardWorld builds a 2-group sharded deployment (one node per
// group) and a Router over direct clients.
func twoShardWorld(t *testing.T) (*Router, [2]*Node) {
	t.Helper()
	f := jgroups.NewFabric()
	var nodes [2]*Node
	conns := make([]Conn, 2)
	for i := 0; i < 2; i++ {
		n, err := NewNode(NodeConfig{
			Group:     fmt.Sprintf("gs-%d", i),
			Transport: f.Endpoint(jgroups.Address(fmt.Sprintf("s%d", i))),
			Stack:     testStack(), ListenAddr: "127.0.0.1:0",
			Shard:        shard.Assignment{Groups: 2, Index: i},
			WriteTimeout: 5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		nodes[i] = n
		conns[i] = dialNode(t, n)
	}
	r, err := NewRouter(conns)
	if err != nil {
		t.Fatal(err)
	}
	return r, nodes
}

func TestRouterShardsWritesAndMergesRoot(t *testing.T) {
	ctx := context.Background()
	r, nodes := twoShardWorld(t)
	ring := shard.Cached(2)
	perGroup := [2]int{}
	for i := 0; i < 40; i++ {
		name := []string{fmt.Sprintf("svc%d", i)}
		if err := r.Bind(ctx, name, []byte("x"), nil, 0); err != nil {
			t.Fatalf("bind %v: %v", name, err)
		}
		perGroup[ring.RouteName(name)]++
	}
	if perGroup[0] == 0 || perGroup[1] == 0 {
		t.Fatalf("degenerate routing split %v; ring is not spreading prefixes", perGroup)
	}
	for g, n := range nodes {
		if got := n.Store().Len(); got != perGroup[g] {
			t.Fatalf("group %d holds %d entries, ring says %d", g, got, perGroup[g])
		}
	}
	// Root list merges both groups.
	list, err := r.List(ctx, nil)
	if err != nil || len(list) != 40 {
		t.Fatalf("root list: %d entries, err=%v", len(list), err)
	}
	// Reads route to the owner.
	for i := 0; i < 40; i++ {
		name := []string{fmt.Sprintf("svc%d", i)}
		v, err := r.Lookup(ctx, name)
		if err != nil || !v.Exists {
			t.Fatalf("lookup %v: %+v %v", name, v, err)
		}
	}
}

func TestNodeRejectsWrongShard(t *testing.T) {
	ctx := context.Background()
	r, nodes := twoShardWorld(t)
	ring := shard.Cached(2)
	// Find a prefix owned by group 1 and offer it to group 0 directly.
	var name []string
	for i := 0; ; i++ {
		name = []string{fmt.Sprintf("svc%d", i)}
		if ring.RouteName(name) == 1 {
			break
		}
	}
	c := dialNode(t, nodes[0])
	if err := c.Bind(ctx, name, []byte("x"), nil, 0); !IsWrongShard(err) {
		t.Fatalf("misrouted bind: err=%v, want wrong-shard", err)
	}
	if _, err := c.Lookup(ctx, name); !IsWrongShard(err) {
		t.Fatalf("misrouted lookup: err=%v, want wrong-shard", err)
	}
	// The router, by construction, never misroutes.
	if err := r.Bind(ctx, name, []byte("x"), nil, 0); err != nil {
		t.Fatalf("routed bind: %v", err)
	}
}

func TestRouterCrossGroupRename(t *testing.T) {
	ctx := context.Background()
	r, _ := twoShardWorld(t)
	ring := shard.Cached(2)
	// Pick a source owned by group 0 and a destination owned by group 1.
	var src, dst []string
	for i := 0; src == nil || dst == nil; i++ {
		n := []string{fmt.Sprintf("svc%d", i)}
		if src == nil && ring.RouteName(n) == 0 {
			src = n
		} else if dst == nil && ring.RouteName(n) == 1 {
			dst = n
		}
	}
	if err := r.Bind(ctx, src, []byte("payload"), map[string][]string{"k": {"v"}}, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Rename(ctx, src, dst); err != nil {
		t.Fatalf("cross-group rename: %v", err)
	}
	if v, _ := r.Lookup(ctx, src); v.Exists {
		t.Fatal("source still bound after rename")
	}
	v, err := r.Lookup(ctx, dst)
	if err != nil || !v.Exists || string(v.Obj) != "payload" || v.Attrs["k"][0] != "v" {
		t.Fatalf("destination after rename: %+v %v", v, err)
	}
}

// A cross-group rename whose subject is a context must be refused with
// the typed cross-shard error — not the generic not-a-context string —
// so callers can branch on the refusal (issue-9 satellite).
func TestRouterCrossShardContextRenameTyped(t *testing.T) {
	ctx := context.Background()
	r, _ := twoShardWorld(t)
	ring := shard.Cached(2)
	// Pick a source owned by group 0 and a destination owned by group 1.
	var src, dst []string
	for i := 0; src == nil || dst == nil; i++ {
		n := []string{fmt.Sprintf("sub%d", i)}
		if src == nil && ring.RouteName(n) == 0 {
			src = n
		} else if dst == nil && ring.RouteName(n) == 1 {
			dst = n
		}
	}
	if err := r.CreateCtx(ctx, src, nil); err != nil {
		t.Fatal(err)
	}
	err := r.Rename(ctx, src, dst)
	if !IsCrossShardRename(err) {
		t.Fatalf("cross-group context rename: err=%v, want cross-shard-rename", err)
	}
	if IsNotContext(err) {
		t.Fatalf("refusal still reads as not-a-context: %v", err)
	}
	// The context must be untouched by the refusal.
	if v, lerr := r.Lookup(ctx, src); lerr != nil || !v.Exists || !v.IsCtx {
		t.Fatalf("source context after refusal: %+v %v", v, lerr)
	}
}

// A dead group must fail only its own batch items, typed per item; the
// other groups' items still succeed (the issue-8 partial-failure gate).
func TestRouterBatchPartialFailureTypedPerItem(t *testing.T) {
	ctx := context.Background()
	r, nodes := twoShardWorld(t)
	ring := shard.Cached(2)
	nodes[1].Close() // kill group 1

	var binds []BindManyOp
	for i := 0; i < 30; i++ {
		binds = append(binds, BindManyOp{Name: []string{fmt.Sprintf("svc%d", i)}, Obj: []byte("x")})
	}
	rsps, err := r.BindMany(ctx, binds)
	if err != nil {
		t.Fatalf("BindMany returned a call-level error %v; partial failure must be per item", err)
	}
	if len(rsps) != len(binds) {
		t.Fatalf("%d responses for %d items", len(rsps), len(binds))
	}
	for i, b := range binds {
		g := ring.RouteName(b.Name)
		switch {
		case g == 0 && rsps[i].Err != nil:
			t.Fatalf("item %d (live group): %v", i, rsps[i].Err)
		case g == 1 && rsps[i].Err == nil:
			t.Fatalf("item %d (dead group): no error", i)
		}
	}
}
