package hdns

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// WAL record payload codec: one applied replicated op plus the store
// version it produced, hand-rolled in the rpc codec style (append-only
// encode into the caller's buffer, strict reject-exactly decode). gob
// would cost a type description per record and an order of magnitude in
// replay speed — at millions of entries per shard the restart drill
// lives or dies on this loop.
//
// Payload layout (inside one wal.AppendRecord frame):
//
//	version  uvarint     store version after applying the op
//	kind     uint8
//	replace  uint8       (ReplaceAttrs)
//	lease    uvarint     (LeaseMillis, non-negative by construction)
//	now      uvarint     (issuer clock, unix millis)
//	id       str         (uvarint len + bytes)
//	name     strs        (uvarint count, then str each)
//	name2    strs
//	obj      str
//	attrs    uvarint count, then per entry: key str, vals strs
//	mods     uvarint count, then per entry: op uint8, id str, vals strs
var errWALRecTrailing = errors.New("hdns: trailing bytes after wal record")

// appendWALOp appends the record payload for (version, op) to dst.
func appendWALOp(dst []byte, version uint64, op *Op) []byte {
	dst = binary.AppendUvarint(dst, version)
	dst = append(dst, byte(op.Kind), boolByte(op.ReplaceAttrs))
	dst = binary.AppendUvarint(dst, uint64(op.LeaseMillis))
	dst = binary.AppendUvarint(dst, uint64(op.Now))
	dst = appendWALString(dst, op.ID)
	dst = appendWALStrings(dst, op.Name)
	dst = appendWALStrings(dst, op.Name2)
	dst = appendWALString(dst, string(op.Obj))
	dst = binary.AppendUvarint(dst, uint64(len(op.Attrs)))
	for k, vals := range op.Attrs {
		dst = appendWALString(dst, k)
		dst = appendWALStrings(dst, vals)
	}
	dst = binary.AppendUvarint(dst, uint64(len(op.Mods)))
	for _, m := range op.Mods {
		dst = append(dst, byte(m.Op))
		dst = appendWALString(dst, m.ID)
		dst = appendWALStrings(dst, m.Vals)
	}
	return dst
}

// decodeWALOp parses a record payload. The op's byte fields are copied
// (the wal buffer is reused across records).
func decodeWALOp(b []byte) (version uint64, op *Op, err error) {
	version, b, err = takeUvarint(b)
	if err != nil {
		return 0, nil, err
	}
	if len(b) < 2 {
		return 0, nil, errWALRecTruncated
	}
	op = &Op{Kind: OpKind(b[0]), ReplaceAttrs: b[1] != 0}
	b = b[2:]
	var u uint64
	if u, b, err = takeUvarint(b); err != nil {
		return 0, nil, err
	}
	op.LeaseMillis = int64(u)
	if u, b, err = takeUvarint(b); err != nil {
		return 0, nil, err
	}
	op.Now = int64(u)
	if op.ID, b, err = takeWALString(b); err != nil {
		return 0, nil, err
	}
	if op.Name, b, err = takeWALStrings(b); err != nil {
		return 0, nil, err
	}
	if op.Name2, b, err = takeWALStrings(b); err != nil {
		return 0, nil, err
	}
	var obj string
	if obj, b, err = takeWALString(b); err != nil {
		return 0, nil, err
	}
	if obj != "" {
		op.Obj = []byte(obj)
	}
	if u, b, err = takeUvarint(b); err != nil {
		return 0, nil, err
	}
	if u > uint64(len(b)) { // each entry needs ≥1 byte; cheap bound check
		return 0, nil, errWALRecTruncated
	}
	if u > 0 {
		op.Attrs = make(map[string][]string, u)
		for i := uint64(0); i < u; i++ {
			var k string
			var vals []string
			if k, b, err = takeWALString(b); err != nil {
				return 0, nil, err
			}
			if vals, b, err = takeWALStrings(b); err != nil {
				return 0, nil, err
			}
			op.Attrs[k] = vals
		}
	}
	if u, b, err = takeUvarint(b); err != nil {
		return 0, nil, err
	}
	if u > uint64(len(b)) {
		return 0, nil, errWALRecTruncated
	}
	for i := uint64(0); i < u; i++ {
		if len(b) < 1 {
			return 0, nil, errWALRecTruncated
		}
		m := ModRec{Op: int(b[0])}
		b = b[1:]
		if m.ID, b, err = takeWALString(b); err != nil {
			return 0, nil, err
		}
		if m.Vals, b, err = takeWALStrings(b); err != nil {
			return 0, nil, err
		}
		op.Mods = append(op.Mods, m)
	}
	if len(b) != 0 {
		return 0, nil, errWALRecTrailing
	}
	return version, op, nil
}

var errWALRecTruncated = errors.New("hdns: truncated wal record")

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

func appendWALString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendWALStrings(dst []byte, ss []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = appendWALString(dst, s)
	}
	return dst
}

func takeUvarint(b []byte) (uint64, []byte, error) {
	v, used := binary.Uvarint(b)
	if used <= 0 {
		return 0, nil, errWALRecTruncated
	}
	return v, b[used:], nil
}

func takeWALString(b []byte) (string, []byte, error) {
	n, b, err := takeUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(b)) {
		return "", nil, errWALRecTruncated
	}
	return string(b[:n]), b[n:], nil
}

func takeWALStrings(b []byte) ([]string, []byte, error) {
	n, b, err := takeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(b)) {
		return nil, nil, fmt.Errorf("%w: %d strings in %d bytes", errWALRecTruncated, n, len(b))
	}
	if n == 0 {
		return nil, b, nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		var s string
		if s, b, err = takeWALString(b); err != nil {
			return nil, nil, err
		}
		out = append(out, s)
	}
	return out, b, nil
}
