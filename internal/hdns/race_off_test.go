//go:build !race

package hdns

const raceEnabled = false
