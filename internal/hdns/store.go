// Package hdns implements the Harness Distributed Naming Service (§4 of
// the paper): a fault-tolerant, persistent, replicated naming service. A
// group of nodes maintains consistent replicas of the registration data
// over the jgroups substrate: reads are served entirely locally by any
// node, writes are multicast to every member. Each node persists its
// replica to disk periodically and on exit, crashed nodes rejoin and pull
// state, and the PRIMARY PARTITION protocol resynchronizes after network
// partitions.
package hdns

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"strings"
	"sync"

	"gondi/internal/filter"
)

// OpKind identifies a replicated write operation.
type OpKind uint8

// Replicated operations.
const (
	OpBind OpKind = iota + 1
	OpRebind
	OpUnbind
	OpRename
	OpCreateCtx
	OpDestroyCtx
	OpModAttrs
	OpLeaseRenew
)

func (k OpKind) String() string {
	names := [...]string{"?", "bind", "rebind", "unbind", "rename",
		"createCtx", "destroyCtx", "modAttrs", "leaseRenew"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// ModRec is one attribute modification (mirrors core.AttributeMod without
// importing core, keeping the substrate dependency-free).
type ModRec struct {
	Op   int // 0 add, 1 replace, 2 remove
	ID   string
	Vals []string
}

// Op is a replicated write, applied deterministically on every replica in
// delivery order.
type Op struct {
	ID    string // issuing node + sequence, for client ack matching
	Kind  OpKind
	Name  []string
	Name2 []string // rename destination
	Obj   []byte   // marshalled bound object
	Attrs map[string][]string
	// ReplaceAttrs selects rebind attribute semantics: true replaces the
	// attribute set, false preserves the existing one.
	ReplaceAttrs bool
	Mods         []ModRec
	// LeaseMillis > 0 grants/renews a lease of that duration.
	LeaseMillis int64
	// Now is the issuer's clock (unix millis); lease expiries derive
	// from it deterministically on every replica.
	Now int64
}

// Change describes an applied mutation for event distribution.
type Change struct {
	Kind OpKind
	Name []string
	Obj  []byte
	Old  []byte
}

// Store errors mirror the core sentinel names; the provider maps the
// strings back onto core errors.
const (
	errNotFound     = "not found"
	errBound        = "already bound"
	errNotCtx       = "not a context"
	errCtxNotEmpty  = "context not empty"
	errEmptyName    = "empty name"
	errUnsupportedK = "unsupported op"
)

type entry struct {
	Obj      []byte
	Attrs    map[string][]string
	Children map[string]*entry // non-nil => context
	// LeaseExpiry is unix millis; 0 = no lease.
	LeaseExpiry int64
}

func newCtxEntry() *entry {
	return &entry{Children: map[string]*entry{}, Attrs: map[string][]string{}}
}

func (e *entry) isCtx() bool { return e.Children != nil }

// Store is the replicated name tree. All writes go through Apply so every
// replica transitions identically; reads are local.
type Store struct {
	mu   sync.RWMutex
	root *entry
	// version counts applied ops (diagnostics, snapshot naming).
	version uint64
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{root: newCtxEntry()}
}

// Version returns the number of applied operations.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

func (s *Store) resolveParent(name []string) (*entry, string, string) {
	if len(name) == 0 {
		return nil, "", errEmptyName
	}
	cur := s.root
	for i := 0; i < len(name)-1; i++ {
		next, ok := cur.Children[name[i]]
		if !ok {
			return nil, "", errNotFound
		}
		if !next.isCtx() {
			return nil, "", errNotCtx
		}
		cur = next
	}
	return cur, name[len(name)-1], ""
}

func (s *Store) find(name []string) (*entry, string) {
	cur := s.root
	for i := 0; i < len(name); i++ {
		next, ok := cur.Children[name[i]]
		if !ok {
			return nil, errNotFound
		}
		if i < len(name)-1 && !next.isCtx() {
			return nil, errNotCtx
		}
		cur = next
	}
	return cur, ""
}

// Apply executes a replicated op. The returned error string is "" on
// success; changes describe mutations for event fan-out.
func (s *Store) Apply(op *Op) (changes []Change, errStr string) {
	changes, _, errStr = s.ApplyVersioned(op)
	return
}

// ApplyVersioned executes a replicated op and additionally reports the
// store version the op produced. Every op — success or failure —
// consumes exactly one version, so the versions stamped onto WAL
// records stay consecutive and replay can detect gaps.
func (s *Store) ApplyVersioned(op *Op) (changes []Change, version uint64, errStr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	version = s.version
	changes, errStr = s.applyLocked(op)
	return
}

func (s *Store) applyLocked(op *Op) (changes []Change, errStr string) {
	switch op.Kind {
	case OpBind, OpRebind:
		parent, last, e := s.resolveParent(op.Name)
		if e != "" {
			return nil, e
		}
		old, exists := parent.Children[last]
		if exists && op.Kind == OpBind {
			return nil, errBound
		}
		if exists && old.isCtx() {
			return nil, errNotCtx
		}
		ne := &entry{Obj: op.Obj}
		switch {
		case op.Kind == OpBind || op.ReplaceAttrs || !exists:
			ne.Attrs = copyAttrs(op.Attrs)
		default:
			ne.Attrs = old.Attrs
		}
		if op.LeaseMillis > 0 {
			ne.LeaseExpiry = op.Now + op.LeaseMillis
		}
		parent.Children[last] = ne
		ch := Change{Kind: OpBind, Name: op.Name, Obj: op.Obj}
		if exists {
			ch.Kind = OpRebind
			ch.Old = old.Obj
		}
		return []Change{ch}, ""
	case OpUnbind:
		parent, last, e := s.resolveParent(op.Name)
		if e != "" {
			return nil, e
		}
		old, exists := parent.Children[last]
		if !exists {
			return nil, "" // JNDI: unbind of absent name succeeds
		}
		delete(parent.Children, last)
		return []Change{{Kind: OpUnbind, Name: op.Name, Old: old.Obj}}, ""
	case OpRename:
		oldParent, oldLast, e := s.resolveParent(op.Name)
		if e != "" {
			return nil, e
		}
		newParent, newLast, e := s.resolveParent(op.Name2)
		if e != "" {
			return nil, e
		}
		ent, ok := oldParent.Children[oldLast]
		if !ok {
			return nil, errNotFound
		}
		if _, exists := newParent.Children[newLast]; exists {
			return nil, errBound
		}
		delete(oldParent.Children, oldLast)
		newParent.Children[newLast] = ent
		return []Change{{Kind: OpRename, Name: op.Name, Obj: ent.Obj}}, ""
	case OpCreateCtx:
		parent, last, e := s.resolveParent(op.Name)
		if e != "" {
			return nil, e
		}
		if _, exists := parent.Children[last]; exists {
			return nil, errBound
		}
		ne := newCtxEntry()
		ne.Attrs = copyAttrs(op.Attrs)
		parent.Children[last] = ne
		return []Change{{Kind: OpCreateCtx, Name: op.Name}}, ""
	case OpDestroyCtx:
		parent, last, e := s.resolveParent(op.Name)
		if e != "" {
			return nil, e
		}
		ent, ok := parent.Children[last]
		if !ok {
			return nil, "" // destroying a missing subcontext succeeds
		}
		if !ent.isCtx() {
			return nil, errNotCtx
		}
		if len(ent.Children) > 0 {
			return nil, errCtxNotEmpty
		}
		delete(parent.Children, last)
		return []Change{{Kind: OpDestroyCtx, Name: op.Name}}, ""
	case OpModAttrs:
		ent, e := s.find(op.Name)
		if e != "" {
			return nil, e
		}
		attrs := copyAttrs(ent.Attrs)
		for _, m := range op.Mods {
			key := strings.ToLower(m.ID)
			switch m.Op {
			case 0: // add
				attrs[key] = appendUnique(attrs[key], m.Vals)
			case 1: // replace
				if len(m.Vals) == 0 {
					delete(attrs, key)
				} else {
					attrs[key] = append([]string(nil), m.Vals...)
				}
			case 2: // remove
				if len(m.Vals) == 0 {
					delete(attrs, key)
					break
				}
				var keep []string
				for _, v := range attrs[key] {
					drop := false
					for _, rm := range m.Vals {
						if strings.EqualFold(v, rm) {
							drop = true
						}
					}
					if !drop {
						keep = append(keep, v)
					}
				}
				if len(keep) == 0 {
					delete(attrs, key)
				} else {
					attrs[key] = keep
				}
			default:
				return nil, "bad attribute mod"
			}
		}
		ent.Attrs = attrs
		return []Change{{Kind: OpModAttrs, Name: op.Name, Obj: ent.Obj}}, ""
	case OpLeaseRenew:
		ent, e := s.find(op.Name)
		if e != "" {
			return nil, e
		}
		if op.LeaseMillis > 0 {
			ent.LeaseExpiry = op.Now + op.LeaseMillis
		} else {
			ent.LeaseExpiry = 0
		}
		return nil, ""
	default:
		return nil, errUnsupportedK
	}
}

func copyAttrs(in map[string][]string) map[string][]string {
	out := make(map[string][]string, len(in))
	for k, v := range in {
		out[strings.ToLower(k)] = append([]string(nil), v...)
	}
	return out
}

func appendUnique(have, add []string) []string {
	for _, v := range add {
		dup := false
		for _, h := range have {
			if strings.EqualFold(h, v) {
				dup = true
			}
		}
		if !dup {
			have = append(have, v)
		}
	}
	return have
}

// NodeView is a read result.
type NodeView struct {
	Exists bool
	IsCtx  bool
	Obj    []byte
	Attrs  map[string][]string
}

// Lookup reads the entry at name; reads are purely local (the load-
// balancing property of §4.1).
func (s *Store) Lookup(name []string) NodeView {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(name) == 0 {
		return NodeView{Exists: true, IsCtx: true}
	}
	ent, e := s.find(name)
	if e != "" {
		return NodeView{}
	}
	return NodeView{Exists: true, IsCtx: ent.isCtx(), Obj: ent.Obj, Attrs: copyAttrs(ent.Attrs)}
}

// ListEntry is one List result.
type ListEntry struct {
	Name  string
	IsCtx bool
	Obj   []byte
}

// List enumerates the children of a context, sorted by name.
func (s *Store) List(name []string) ([]ListEntry, string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ent := s.root
	if len(name) > 0 {
		var e string
		ent, e = s.find(name)
		if e != "" {
			return nil, e
		}
	}
	if !ent.isCtx() {
		return nil, errNotCtx
	}
	out := make([]ListEntry, 0, len(ent.Children))
	for n, c := range ent.Children {
		out = append(out, ListEntry{Name: n, IsCtx: c.isCtx(), Obj: c.Obj})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, ""
}

// SearchHit is one Search result.
type SearchHit struct {
	Name  []string
	IsCtx bool
	Obj   []byte
	Attrs map[string][]string
}

// Search evaluates a filter under name. scope: 0 object, 1 one-level,
// 2 subtree.
func (s *Store) Search(name []string, f *filter.Node, scope int, limit int) ([]SearchHit, string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	base := s.root
	if len(name) > 0 {
		var e string
		base, e = s.find(name)
		if e != "" {
			return nil, e
		}
	}
	var hits []SearchHit
	var walk func(ent *entry, rel []string, depth int)
	walk = func(ent *entry, rel []string, depth int) {
		if limit > 0 && len(hits) >= limit {
			return
		}
		inScope := scope == 2 || (scope == 0 && depth == 0) || (scope == 1 && depth == 1)
		if inScope && f.Matches(filter.MapValues(ent.Attrs)) {
			hits = append(hits, SearchHit{
				Name:  append([]string(nil), rel...),
				IsCtx: ent.isCtx(),
				Obj:   ent.Obj,
				Attrs: copyAttrs(ent.Attrs),
			})
		}
		if (scope == 0 && depth == 0) || (scope == 1 && depth >= 1) {
			return
		}
		if ent.isCtx() {
			names := make([]string, 0, len(ent.Children))
			for n := range ent.Children {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				walk(ent.Children[n], append(rel, n), depth+1)
			}
		}
	}
	walk(base, nil, 0)
	return hits, ""
}

// ExpiredLeases returns names whose lease expiry precedes nowMillis.
func (s *Store) ExpiredLeases(nowMillis int64) [][]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out [][]string
	var walk func(ent *entry, path []string)
	walk = func(ent *entry, path []string) {
		for n, c := range ent.Children {
			p := append(append([]string(nil), path...), n)
			if c.LeaseExpiry > 0 && c.LeaseExpiry < nowMillis {
				out = append(out, p)
			}
			if c.isCtx() {
				walk(c, p)
			}
		}
	}
	walk(s.root, nil)
	return out
}

// LeaseExpiry returns the expiry of name's lease (0 = none) and whether
// the entry exists.
func (s *Store) LeaseExpiry(name []string) (int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ent, e := s.find(name)
	if e != "" {
		return 0, false
	}
	return ent.LeaseExpiry, true
}

// Snapshot serializes the full tree (persistence and state transfer).
func (s *Store) Snapshot() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snapshotV1{Version: s.version, Root: s.root}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SnapshotVersioned is Snapshot plus the version it captures, read under
// one lock so the pair is consistent for the checksummed snapshot
// container's lineage header.
func (s *Store) SnapshotVersioned() (uint64, []byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snapshotV1{Version: s.version, Root: s.root}); err != nil {
		return 0, nil, err
	}
	return s.version, buf.Bytes(), nil
}

// Restore replaces the tree from a snapshot.
func (s *Store) Restore(b []byte) error {
	var snap snapshotV1
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&snap); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if snap.Root == nil {
		snap.Root = newCtxEntry()
	}
	s.root = snap.Root
	s.version = snap.Version
	return nil
}

type snapshotV1 struct {
	Version uint64
	Root    *entry
}

// Len returns the total number of entries (excluding the root).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	var walk func(e *entry)
	walk = func(e *entry) {
		n += len(e.Children)
		for _, c := range e.Children {
			if c.isCtx() {
				walk(c)
			}
		}
	}
	walk(s.root)
	return n
}
