package hdns

import (
	"fmt"
	"path/filepath"
	"sync/atomic"

	"gondi/internal/fault"
	"gondi/internal/wal"
)

// Crash-point drill: simulate power loss at *every* durability boundary
// of the persistence pipeline — append writes, fsyncs, segment create /
// close, snapshot temp-file write / fsync / rename, prune removes — and
// prove that a restart after each one loses no acknowledged write and
// restores a consecutive version chain. A write counts as acknowledged
// only once its fsync returned success, matching what the node promises
// a client.
//
// The drill is deterministic: the same workload crosses the same
// boundaries in the same order every run, so crash point k means the
// same torn operation every time and a failure reproduces exactly.

// CrashDrillConfig shapes the drill's workload.
type CrashDrillConfig struct {
	// Entries is the number of synced binds the workload performs.
	Entries int
	// CompactAt lists op indices after which a full compaction (rotate,
	// snapshot, prune) runs, putting its write boundaries into the
	// matrix. Indices outside [0, Entries) are ignored.
	CompactAt []int
}

// CrashPointResult summarizes a crash-point matrix run.
type CrashPointResult struct {
	// Boundaries is the number of durability boundaries the intact
	// workload crosses — the size of the matrix.
	Boundaries int
	// Crashes is how many crash points were exercised (== Boundaries).
	Crashes int
	// TornTails counts restarts that healed a torn WAL tail by
	// truncation — the expected signature when the crash interrupted an
	// append.
	TornTails int
	// Quarantines counts restarts that quarantined state. A pure crash
	// must never look like corruption, so any non-zero value fails the
	// durability gate.
	Quarantines int
	// LostAcked counts acknowledged writes missing after a restart.
	// Must be zero: fsync'd means promised.
	LostAcked int
	// BrokenChains counts restarts whose restored version chain had a
	// hole or whose restore failed outright. Must be zero.
	BrokenChains int
}

// Failed reports whether the matrix found a durability violation.
func (r *CrashPointResult) Failed() bool {
	return r.LostAcked > 0 || r.Quarantines > 0 || r.BrokenChains > 0
}

func crashDrillEntry(i int) []string { return []string{fmt.Sprintf("e%05d", i)} }

// crashWorkload runs the drill's serialized workload through fsys:
// synced binds with compactions at the configured indices, then a clean
// close. acked tracks the highest version whose fsync succeeded. The
// returned error is expected (ErrCrashed) on crash runs; the caller
// inspects the disk, not the error.
func crashWorkload(fsys wal.FS, dir string, cfg CrashDrillConfig, acked *uint64) error {
	compact := make(map[int]bool, len(cfg.CompactAt))
	for _, i := range cfg.CompactAt {
		compact[i] = true
	}
	snap := filepath.Join(dir, "replica.snap")
	walDir := filepath.Join(dir, "wal")
	p, st, _, err := openPersistence(fsys, snap, walDir, 0)
	if err != nil {
		return err
	}
	// Whatever happens, release the underlying file handle; a crashed
	// close is a no-op on the "disk" but must not leak the descriptor.
	defer func() { _ = p.log.Close() }()
	for i := 0; i < cfg.Entries; i++ {
		op := &Op{Kind: OpBind, Name: crashDrillEntry(i), Obj: []byte("10.0.0.1:9000")}
		_, ver, errStr := st.ApplyVersioned(op)
		if errStr != "" {
			return fmt.Errorf("hdns: crash drill apply %d: %s", i, errStr)
		}
		if err := p.appendOp(ver, op); err != nil {
			return err
		}
		if err := p.log.Sync(); err != nil {
			return err
		}
		atomic.StoreUint64(acked, ver)
		if compact[i] {
			if err := p.compact(st); err != nil {
				return err
			}
		}
	}
	return p.close(st)
}

// RunCrashPointDrill sizes the matrix with an intact dry run, then
// replays the identical workload once per boundary with power loss
// injected exactly there, restarting from the survived files each time
// and checking the durability contract. root must be an empty scratch
// directory; each crash point works in its own subdirectory.
func RunCrashPointDrill(root string, cfg CrashDrillConfig) (*CrashPointResult, error) {
	if cfg.Entries <= 0 {
		cfg.Entries = 48
	}
	dry := fault.NewFS(wal.OS, fault.FSConfig{})
	var acked uint64
	if err := crashWorkload(dry, filepath.Join(root, "dry"), cfg, &acked); err != nil {
		return nil, fmt.Errorf("hdns: crash drill dry run: %w", err)
	}
	res := &CrashPointResult{Boundaries: int(dry.Boundaries())}
	for k := 1; k <= res.Boundaries; k++ {
		ffs := fault.NewFS(wal.OS, fault.FSConfig{})
		ffs.SetCrashPoint(uint64(k))
		kdir := filepath.Join(root, fmt.Sprintf("k%05d", k))
		var kacked uint64
		// The workload dies at the crash point by construction; the
		// verdict comes from what the next boot can prove from the disk.
		_ = crashWorkload(ffs, kdir, cfg, &kacked)
		res.Crashes++
		st, info, err := RestoreStoreFS(nil, filepath.Join(kdir, "replica.snap"), filepath.Join(kdir, "wal"))
		if err != nil {
			res.BrokenChains++
			continue
		}
		if info.Damage.TornTail {
			res.TornTails++
		}
		if info.Damage.Corrupt() {
			res.Quarantines++
		}
		if st.Version() < kacked {
			res.BrokenChains++
		}
		for i := uint64(0); i < kacked; i++ {
			if v := st.Lookup(crashDrillEntry(int(i))); !v.Exists {
				res.LostAcked++
			}
		}
	}
	return res, nil
}
