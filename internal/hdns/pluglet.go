package hdns

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"gondi/internal/h2o"
	"gondi/internal/jgroups"
)

// PlugletType is the repository type name under which the HDNS pluglet
// registers with an H2O kernel.
const PlugletType = "hdns.Node"

// RegisterPluglet adds the HDNS node factory to an H2O kernel's
// repository, enabling the paper's §4.3 deployment story: "owing to
// dynamic deployment features of H2O, HDNS service can be dynamically
// deployed on participating nodes", with the kernel supplying the
// security infrastructure and the event-distribution mechanism.
//
// Deployment configuration keys:
//
//	group     replication group name (default "hdns")
//	listen    client TCP address (default "127.0.0.1:0")
//	bind      transport UDP address (default "127.0.0.1:0")
//	peers     comma-separated transport peers
//	snapshot  replica snapshot path ("" disables persistence)
//	secret    client write secret
//	mode      "bimodal" (default) or "vsync"
//
// The running node publishes change events on the kernel bus under
// "<deployment-name>/…" topics via NodeConfig.Kernel.
func RegisterPluglet(k *h2o.Kernel) {
	k.RegisterType(PlugletType, func(config map[string]string) (h2o.Pluglet, error) {
		return &nodePluglet{config: config, kernel: k}, nil
	})
}

type nodePluglet struct {
	config map[string]string
	kernel *h2o.Kernel

	mu   sync.Mutex
	node *Node
}

// Node returns the running node (nil while stopped).
func (p *nodePluglet) Node() *Node {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.node
}

// Start implements h2o.Pluglet.
func (p *nodePluglet) Start(ctx *h2o.PlugletContext) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.node != nil {
		return fmt.Errorf("hdns: pluglet %q already running", ctx.Name)
	}
	get := func(key, def string) string {
		if v := p.config[key]; v != "" {
			return v
		}
		return def
	}
	var peers []string
	if s := p.config["peers"]; s != "" {
		peers = strings.Split(s, ",")
	}
	tr, err := jgroups.NewUDPTransport(get("bind", "127.0.0.1:0"), peers)
	if err != nil {
		return err
	}
	stack := jgroups.DefaultConfig()
	if get("mode", "bimodal") == "vsync" {
		stack = jgroups.VirtualSynchronyConfig()
	}
	snapshotInterval := 5 * time.Second
	if s := p.config["snapshot-interval-ms"]; s != "" {
		if ms, err := strconv.Atoi(s); err == nil && ms > 0 {
			snapshotInterval = time.Duration(ms) * time.Millisecond
		}
	}
	node, err := NewNode(NodeConfig{
		Group:            get("group", "hdns"),
		Transport:        tr,
		Stack:            stack,
		ListenAddr:       get("listen", "127.0.0.1:0"),
		SnapshotPath:     p.config["snapshot"],
		SnapshotInterval: snapshotInterval,
		Secret:           p.config["secret"],
		Kernel:           p.kernel,
	})
	if err != nil {
		tr.Close()
		return err
	}
	p.node = node
	ctx.Publish("started", node.Addr())
	return nil
}

// Stop implements h2o.Pluglet: the node persists its replica and leaves
// the group.
func (p *nodePluglet) Stop() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.node == nil {
		return nil
	}
	err := p.node.Close()
	p.node = nil
	return err
}
