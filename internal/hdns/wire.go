package hdns

// Wire types exchanged between HDNS clients and nodes over the rpc
// substrate (gob-encoded).

// Req is the universal request body.
type Req struct {
	Name         []string
	Name2        []string
	Obj          []byte
	Attrs        map[string][]string
	ReplaceAttrs bool
	Mods         []ModRec
	Filter       string
	Scope        int
	Limit        int
	LeaseMillis  int64
	WatchID      uint64
	Secret       string
}

// Rsp is the universal response body.
type Rsp struct {
	View    NodeView
	List    []ListEntry
	Hits    []SearchHit
	WatchID uint64
	Expiry  int64
	Info    NodeInfo
}

// EventMsg is pushed to watching clients.
type EventMsg struct {
	WatchID uint64
	Kind    OpKind
	Name    []string
	Obj     []byte
	Old     []byte
}

// NodeInfo describes a node and its replication group.
type NodeInfo struct {
	Addr        string
	Group       string
	Members     []string
	Coordinator bool
	Entries     int
	Version     uint64
	Mode        string
	ShardGroups int   // ring size the node was configured with (0/1 = unsharded)
	ShardIndex  int   // which shard of ShardGroups this group serves
	WALBytes    int64 // on-disk WAL footprint (0 when WAL disabled)
	NeedsRepair bool  // scrub-on-start quarantined state; repair pending
	Quarantined int   // durable files this boot moved aside
	Repairs     uint64
}

// RPC method names.
const (
	mAuth       = "hdns.auth"
	mLookup     = "hdns.lookup"
	mBind       = "hdns.bind"
	mRebind     = "hdns.rebind"
	mUnbind     = "hdns.unbind"
	mRename     = "hdns.rename"
	mList       = "hdns.list"
	mCreateCtx  = "hdns.createCtx"
	mDestroyCtx = "hdns.destroyCtx"
	mModAttrs   = "hdns.modAttrs"
	mSearch     = "hdns.search"
	mWatch      = "hdns.watch"
	mUnwatch    = "hdns.unwatch"
	mLease      = "hdns.lease"
	mInfo       = "hdns.info"
	mEvent      = "hdns.event" // push
)
