// Package fault is the deterministic fault-injection layer used by the
// chaos tests (ptest.RunFaultConformance), the self-healing integration
// tests, and the -issue5 availability benchmark. It injects failures at
// the stack's transport seams:
//
//   - Conn / Listener wrap net connections and inject latency, dropped
//     writes, connection resets, short writes, and one-way partitions,
//     according to a seedable schedule (Injector).
//   - Proxy / UDPProxy stand between a wire client and a real server
//     (rpc, LDAP, DNS), applying an Injector to the forwarded traffic and
//     supporting hard cuts — the way tests fault servers whose listeners
//     they do not own.
//   - FabricSchedule drives a jgroups.Fabric through a scripted sequence
//     of view partitions and merges (the HDNS PRIMARY PARTITION tests).
//   - Harness crash-stops and restarts a server behind a stable proxy
//     address (the five daemons in tests).
//
// Determinism: an Injector's fault decisions are a pure function of its
// seed and the I/O operation sequence number, so a test that serializes
// its operations replays the identical fault schedule on every run.
package fault

import (
	"math/rand"
	"sync"
	"time"
)

// Config tunes an Injector. Probabilities are per I/O operation in
// [0, 1); zero fields inject nothing.
type Config struct {
	// Seed makes the schedule reproducible; 0 is a valid seed.
	Seed int64
	// Latency is added to an operation when a latency fault fires.
	Latency time.Duration
	// LatencyProb is the probability a read or write is delayed.
	LatencyProb float64
	// DropProb is the probability a write is silently discarded (the
	// caller sees success; the peer sees nothing and times out).
	DropProb float64
	// ResetProb is the probability an operation tears the connection
	// down (the peer observes a reset).
	ResetProb float64
	// ShortWriteProb is the probability a write is truncated mid-frame
	// (torn protocol framing; the peer's decoder fails).
	ShortWriteProb float64
}

// Injector decides, per I/O operation, which fault (if any) to inject.
// One Injector may feed any number of Conns/Proxies; decisions are made
// under a lock from one seeded stream, so a fixed seed and a fixed
// operation order reproduce a fixed schedule.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand
	ops uint64

	// enabled gates all probabilistic faults (cuts below are separate).
	enabled bool
	// cutIn / cutOut are one-way partitions: inbound (server→client)
	// and outbound (client→server) bytes stop flowing while set.
	cutIn  bool
	cutOut bool
}

// NewInjector builds an injector for the given schedule, initially
// enabled.
func NewInjector(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), enabled: true}
}

// decision is the fault chosen for one operation.
type decision struct {
	latency    time.Duration
	drop       bool
	reset      bool
	shortWrite bool
}

// next draws the next operation's fault decision.
func (i *Injector) next(isWrite bool) decision {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.ops++
	var d decision
	if !i.enabled {
		return d
	}
	// One draw per fault class keeps the stream's consumption pattern
	// fixed per operation, so adding ops elsewhere cannot shift which
	// fault a given draw produces.
	pl, pd, pr, ps := i.rng.Float64(), i.rng.Float64(), i.rng.Float64(), i.rng.Float64()
	if i.cfg.LatencyProb > 0 && pl < i.cfg.LatencyProb {
		d.latency = i.cfg.Latency
	}
	if isWrite && i.cfg.DropProb > 0 && pd < i.cfg.DropProb {
		d.drop = true
	}
	if i.cfg.ResetProb > 0 && pr < i.cfg.ResetProb {
		d.reset = true
	}
	if isWrite && i.cfg.ShortWriteProb > 0 && ps < i.cfg.ShortWriteProb {
		d.shortWrite = true
	}
	return d
}

// Ops reports how many I/O operations have consulted the schedule.
func (i *Injector) Ops() uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.ops
}

// SetEnabled gates the probabilistic faults (latency, drops, resets,
// short writes); one-way cuts are controlled separately.
func (i *Injector) SetEnabled(on bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.enabled = on
}

// CutInbound starts (or ends) a one-way partition of server→client
// traffic: reads stall as if the path went dark.
func (i *Injector) CutInbound(cut bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.cutIn = cut
}

// CutOutbound starts (or ends) a one-way partition of client→server
// traffic: writes are swallowed.
func (i *Injector) CutOutbound(cut bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.cutOut = cut
}

// Restore ends all one-way partitions.
func (i *Injector) Restore() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.cutIn, i.cutOut = false, false
}

func (i *Injector) inCut() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.cutIn
}

func (i *Injector) outCut() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.cutOut
}
