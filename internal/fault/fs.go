package fault

import (
	"errors"
	"io/fs"
	"math/rand"
	"os"
	"sync"

	"gondi/internal/wal"
)

// Injected storage-fault errors. They are distinct sentinels so tests can
// assert exactly which fault a failure came from; production code must
// treat them like their real counterparts (ENOSPC, EIO, power loss).
var (
	// ErrNoSpace is an injected write failure: the device refused the
	// bytes and nothing of this write persisted (ENOSPC, quota, EIO).
	ErrNoSpace = errors.New("fault: injected write failure (no space)")
	// ErrSyncFailed is an injected fsync failure: the OS accepted the
	// write but could not promise it reached stable storage.
	ErrSyncFailed = errors.New("fault: injected fsync failure")
	// ErrTornWrite is an injected short write: a prefix of the bytes
	// persisted before the failure (the mid-write power-loss signature).
	ErrTornWrite = errors.New("fault: injected torn write")
	// ErrCrashed marks every operation at and after a crash point: the
	// process is "dead" — the write in flight tore and nothing later
	// reaches the disk.
	ErrCrashed = errors.New("fault: crashed at injected crash point")
)

// FSConfig tunes a filesystem injector. Probabilities are per operation
// in [0, 1); zero fields inject nothing. Crash points are armed
// separately with SetCrashPoint.
type FSConfig struct {
	// Seed makes the fault schedule reproducible; 0 is a valid seed.
	Seed int64
	// WriteErrProb is the probability a file write fails wholesale with
	// ErrNoSpace (no bytes persisted).
	WriteErrProb float64
	// TornWriteProb is the probability a file write persists only a
	// prefix and fails with ErrTornWrite.
	TornWriteProb float64
	// SyncErrProb is the probability an fsync fails with ErrSyncFailed.
	SyncErrProb float64
	// BitFlipProb is the probability a ReadFile returns the file's
	// contents with one bit flipped (read-side corruption; the file on
	// disk is untouched, so retries may see clean data — exactly like a
	// marginal read path).
	BitFlipProb float64
}

// FS wraps a wal.FS and injects storage faults deterministically: fault
// decisions are a pure function of the seed and the operation sequence,
// so a serialized workload replays the identical fault schedule every
// run. Beyond the probabilistic faults, FS counts every durability
// boundary — file create, write, sync, close, rename, remove, truncate —
// and SetCrashPoint(k) simulates power loss at exactly the k-th one: that
// operation tears (a write persists only a prefix; anything else does not
// happen) and every later operation fails with ErrCrashed. Walking k
// across Boundaries() is the crash-point matrix.
type FS struct {
	base wal.FS
	cfg  FSConfig

	mu      sync.Mutex
	rng     *rand.Rand
	ops     uint64 // durability boundaries consumed
	crashAt uint64 // 0 = no crash point armed
	crashed bool
	enabled bool
}

var _ wal.FS = (*FS)(nil)

// NewFS builds an injector over base (wal.OS for real disks), initially
// enabled.
func NewFS(base wal.FS, cfg FSConfig) *FS {
	if base == nil {
		base = wal.OS
	}
	return &FS{base: base, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), enabled: true}
}

// SetEnabled gates the probabilistic faults; an armed crash point fires
// regardless.
func (f *FS) SetEnabled(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.enabled = on
}

// SetCrashPoint arms power loss at the k-th durability boundary from now
// (1-based, counting from the current operation count). 0 disarms.
func (f *FS) SetCrashPoint(k uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if k == 0 {
		f.crashAt = 0
		return
	}
	f.crashAt = f.ops + k
}

// Crashed reports whether the armed crash point has fired.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Boundaries reports how many durability boundaries the workload has
// crossed — the size of its crash-point matrix.
func (f *FS) Boundaries() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// fsDecision is the fault chosen for one durability boundary.
type fsDecision struct {
	crash    bool // this op is the crash point (tears, then dead)
	dead     bool // a crash already happened; nothing reaches the disk
	writeErr bool
	torn     bool
	syncErr  bool
}

// boundary consumes one durability-boundary slot and draws its faults.
// One draw per fault class keeps the stream's consumption fixed per
// operation (the Injector discipline).
func (f *FS) boundary() fsDecision {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return fsDecision{dead: true}
	}
	f.ops++
	if f.crashAt != 0 && f.ops >= f.crashAt {
		f.crashed = true
		return fsDecision{crash: true}
	}
	var d fsDecision
	pw, pt, ps := f.rng.Float64(), f.rng.Float64(), f.rng.Float64()
	if !f.enabled {
		return d
	}
	if f.cfg.WriteErrProb > 0 && pw < f.cfg.WriteErrProb {
		d.writeErr = true
	}
	if f.cfg.TornWriteProb > 0 && pt < f.cfg.TornWriteProb {
		d.torn = true
	}
	if f.cfg.SyncErrProb > 0 && ps < f.cfg.SyncErrProb {
		d.syncErr = true
	}
	return d
}

// dead reports whether the crash point has fired (reads fail too: the
// process is gone).
func (f *FS) dead() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// --- read-side surface ---

func (f *FS) MkdirAll(dir string, perm os.FileMode) error {
	if f.dead() {
		return ErrCrashed
	}
	return f.base.MkdirAll(dir, perm)
}

func (f *FS) ReadDir(dir string) ([]fs.DirEntry, error) {
	if f.dead() {
		return nil, ErrCrashed
	}
	return f.base.ReadDir(dir)
}

func (f *FS) Stat(name string) (fs.FileInfo, error) {
	if f.dead() {
		return nil, ErrCrashed
	}
	return f.base.Stat(name)
}

func (f *FS) ReadFile(name string) ([]byte, error) {
	if f.dead() {
		return nil, ErrCrashed
	}
	b, err := f.base.ReadFile(name)
	if err != nil {
		return b, err
	}
	f.mu.Lock()
	flip := -1
	if f.enabled && f.cfg.BitFlipProb > 0 && len(b) > 0 && f.rng.Float64() < f.cfg.BitFlipProb {
		flip = f.rng.Intn(len(b) * 8)
	}
	f.mu.Unlock()
	if flip >= 0 {
		// Corrupt a copy: the disk is clean, the read path is not.
		c := append([]byte(nil), b...)
		c[flip/8] ^= 1 << (flip % 8)
		return c, nil
	}
	return b, nil
}

// --- durability boundaries ---

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	d := f.boundary()
	if d.crash || d.dead {
		return nil, ErrCrashed
	}
	if d.writeErr {
		return nil, ErrNoSpace
	}
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *FS) CreateTemp(dir, pattern string) (wal.File, error) {
	d := f.boundary()
	if d.crash || d.dead {
		return nil, ErrCrashed
	}
	if d.writeErr {
		return nil, ErrNoSpace
	}
	file, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	d := f.boundary()
	switch {
	case d.crash, d.dead:
		return ErrCrashed
	case d.writeErr:
		return ErrNoSpace
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error {
	d := f.boundary()
	switch {
	case d.crash, d.dead:
		return ErrCrashed
	case d.writeErr:
		return ErrNoSpace
	}
	return f.base.Remove(name)
}

func (f *FS) Truncate(name string, size int64) error {
	d := f.boundary()
	switch {
	case d.crash, d.dead:
		return ErrCrashed
	case d.writeErr:
		return ErrNoSpace
	}
	return f.base.Truncate(name, size)
}

// faultFile applies per-operation fault decisions to one open file. All
// files handed out by FS are write-path files (reads go through
// ReadFile), so every method is a durability boundary.
type faultFile struct {
	fs *FS
	f  wal.File
}

func (ff *faultFile) Name() string { return ff.f.Name() }

func (ff *faultFile) Write(p []byte) (int, error) {
	d := ff.fs.boundary()
	switch {
	case d.dead:
		return 0, ErrCrashed
	case d.crash:
		// Power loss mid-write: a prefix reaches the disk, the caller
		// never hears back. Half the buffer keeps the tear mid-record
		// for any record longer than two bytes.
		if len(p) > 1 {
			_, _ = ff.f.Write(p[:len(p)/2])
		}
		return 0, ErrCrashed
	case d.writeErr:
		return 0, ErrNoSpace
	case d.torn:
		n := len(p) / 2
		if n > 0 {
			_, _ = ff.f.Write(p[:n])
		}
		return n, ErrTornWrite
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	d := ff.fs.boundary()
	switch {
	case d.crash, d.dead:
		return ErrCrashed
	case d.syncErr:
		return ErrSyncFailed
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error {
	d := ff.fs.boundary()
	if d.crash || d.dead {
		// The OS file is abandoned, exactly like a killed process; close
		// the real handle so tests do not leak descriptors.
		_ = ff.f.Close()
		return ErrCrashed
	}
	return ff.f.Close()
}
