package fault

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"gondi/internal/jgroups"
)

// echoServer accepts connections and echoes every byte back.
func echoServer(t *testing.T) (addr string, closeFn func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}()
		}
	}()
	return lis.Addr().String(), func() { lis.Close(); wg.Wait() }
}

func roundTrip(t *testing.T, addr string, payload string, timeout time.Duration) error {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return err
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(timeout))
	if _, err := c.Write([]byte(payload)); err != nil {
		return err
	}
	buf := make([]byte, len(payload))
	if _, err := c.Read(buf); err != nil {
		return err
	}
	return nil
}

func TestScheduleIsDeterministic(t *testing.T) {
	draw := func(seed int64) []decision {
		inj := NewInjector(Config{Seed: seed, DropProb: 0.3, ResetProb: 0.2, ShortWriteProb: 0.1, LatencyProb: 0.4, Latency: time.Millisecond})
		out := make([]decision, 100)
		for i := range out {
			out[i] = inj.next(true)
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across runs with one seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct seeds produced identical schedules")
	}
}

func TestProxyPassThrough(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr, NewInjector(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := roundTrip(t, p.Addr(), "hello", time.Second); err != nil {
		t.Fatalf("clean round trip through proxy: %v", err)
	}
}

func TestProxyCutSeversAndRestores(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr, NewInjector(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Cut()
	if err := roundTrip(t, p.Addr(), "x", 300*time.Millisecond); err == nil {
		t.Fatal("round trip succeeded through a cut proxy")
	}
	p.Restore()
	if err := roundTrip(t, p.Addr(), "x", time.Second); err != nil {
		t.Fatalf("round trip after restore: %v", err)
	}
}

func TestProxyInjectsResets(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr, NewInjector(Config{Seed: 7, ResetProb: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := roundTrip(t, p.Addr(), "x", time.Second); err == nil {
		t.Fatal("round trip survived a certain reset")
	}
}

func TestOneWayPartitionStallsReads(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	inj := NewInjector(Config{})
	p, err := NewProxy(addr, inj)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	inj.CutInbound(true)
	// The write goes through; the echo never arrives: read must time out.
	err = roundTrip(t, p.Addr(), "x", 300*time.Millisecond)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("expected a read timeout, got %v", err)
	}
	inj.Restore()
	if err := roundTrip(t, p.Addr(), "x", time.Second); err != nil {
		t.Fatalf("round trip after restore: %v", err)
	}
}

func TestHarnessCrashRestart(t *testing.T) {
	h, err := NewHarness(func(gen int) (string, func() error, error) {
		addr, stop := echoServer(t)
		return addr, func() error { stop(); return nil }, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	stable := h.Addr()
	if err := roundTrip(t, stable, "x", time.Second); err != nil {
		t.Fatalf("before crash: %v", err)
	}
	if err := h.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := roundTrip(t, stable, "x", 300*time.Millisecond); err == nil {
		t.Fatal("round trip succeeded against a crashed backend")
	}
	if err := h.Restart(); err != nil {
		t.Fatal(err)
	}
	if h.Gen() != 1 {
		t.Fatalf("gen = %d", h.Gen())
	}
	if err := roundTrip(t, stable, "x", time.Second); err != nil {
		t.Fatalf("after restart at the same address: %v", err)
	}
}

func TestFabricScheduleDrivesPartitions(t *testing.T) {
	f := jgroups.NewFabric()
	a := f.Endpoint("a")
	b := f.Endpoint("b")
	defer a.Close()
	defer b.Close()
	send := func() bool {
		_ = a.Send("b", &jgroups.Packet{})
		select {
		case <-b.Recv():
			return true
		case <-time.After(200 * time.Millisecond):
			return false
		}
	}
	if !send() {
		t.Fatal("packet lost on a healthy fabric")
	}
	sched := &FabricSchedule{Fabric: f, Steps: []FabricStep{
		{Partition: [][]jgroups.Address{{"a"}, {"b"}}},
	}}
	if err := sched.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if send() {
		t.Fatal("packet crossed a partition")
	}
	heal := &FabricSchedule{Fabric: f, Steps: []FabricStep{{Heal: true}}}
	if err := heal.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !send() {
		t.Fatal("packet lost after heal")
	}
}
