package fault

import (
	"errors"
	"fmt"
	"sync"
)

// StartFunc boots one server instance and returns its listen address plus
// a stop function. gen counts restarts (0 for the first boot), letting
// factories reuse persistent state (snapshot paths) across crashes.
type StartFunc func(gen int) (addr string, stop func() error, err error)

// Harness crash-stops and restarts a server behind a stable Proxy
// address: clients keep dialing one address while the backend dies and
// comes back on a fresh port. This is the crash/restart seam the chaos
// tests use for the five daemons (LUS, HDNS, DNS, LDAP, JXTA).
type Harness struct {
	start StartFunc
	proxy *Proxy

	mu      sync.Mutex
	stop    func() error
	gen     int
	crashed bool
	closed  bool
}

// NewHarness boots the first instance and fronts it with a faulting
// proxy driven by inj (nil means a pass-through schedule).
func NewHarness(start StartFunc, inj *Injector) (*Harness, error) {
	if inj == nil {
		inj = NewInjector(Config{})
	}
	addr, stop, err := start(0)
	if err != nil {
		return nil, err
	}
	proxy, err := NewProxy(addr, inj)
	if err != nil {
		_ = stop()
		return nil, err
	}
	return &Harness{start: start, proxy: proxy, stop: stop}, nil
}

// Addr returns the stable client-facing address (the proxy's).
func (h *Harness) Addr() string { return h.proxy.Addr() }

// Proxy exposes the fronting proxy for fine-grained fault control.
func (h *Harness) Proxy() *Proxy { return h.proxy }

// Crash kills the backend: connections sever, new dials are refused.
func (h *Harness) Crash() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return errors.New("fault: harness closed")
	}
	if h.crashed {
		return nil
	}
	h.crashed = true
	stop := h.stop
	h.stop = nil
	h.proxy.Cut()
	if stop != nil {
		return stop()
	}
	return nil
}

// Restart boots a fresh instance (generation +1) and reconnects the
// stable address to it.
func (h *Harness) Restart() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return errors.New("fault: harness closed")
	}
	if !h.crashed {
		return fmt.Errorf("fault: restart without crash")
	}
	h.gen++
	addr, stop, err := h.start(h.gen)
	if err != nil {
		return err
	}
	h.stop = stop
	h.crashed = false
	h.proxy.SetTarget(addr)
	h.proxy.Restore()
	return nil
}

// Gen reports how many times the backend has been restarted.
func (h *Harness) Gen() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.gen
}

// Close stops the backend and the proxy.
func (h *Harness) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	stop := h.stop
	h.stop = nil
	h.mu.Unlock()
	err := h.proxy.Close()
	if stop != nil {
		if serr := stop(); err == nil {
			err = serr
		}
	}
	return err
}
