package fault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gondi/internal/wal"
)

// workloadFS runs a fixed write workload and returns the per-op error
// signature (for determinism comparisons).
func workloadFS(f *FS, dir string) []string {
	var sig []string
	rec := func(err error) {
		if err == nil {
			sig = append(sig, "ok")
		} else {
			sig = append(sig, err.Error())
		}
	}
	for i := 0; i < 20; i++ {
		file, err := f.OpenFile(filepath.Join(dir, "f"), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		rec(err)
		if err != nil {
			continue
		}
		_, werr := file.Write([]byte("0123456789abcdef"))
		rec(werr)
		rec(file.Sync())
		rec(file.Close())
	}
	return sig
}

// The fault schedule must be a pure function of seed and op sequence.
func TestFSScheduleIsDeterministic(t *testing.T) {
	cfg := FSConfig{Seed: 7, WriteErrProb: 0.2, TornWriteProb: 0.2, SyncErrProb: 0.2}
	a := workloadFS(NewFS(wal.OS, cfg), t.TempDir())
	b := workloadFS(NewFS(wal.OS, cfg), t.TempDir())
	if len(a) != len(b) {
		t.Fatalf("signature lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d: %q vs %q", i, a[i], b[i])
		}
	}
	c := workloadFS(NewFS(wal.OS, FSConfig{Seed: 8, WriteErrProb: 0.2, TornWriteProb: 0.2, SyncErrProb: 0.2}), t.TempDir())
	same := true
	for i := range a {
		if i >= len(c) || a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// A crash point must tear the in-flight write (a prefix persists) and
// kill everything after it, reads included.
func TestFSCrashPointTearsAndDies(t *testing.T) {
	dir := t.TempDir()
	f := NewFS(wal.OS, FSConfig{})
	file, err := f.OpenFile(filepath.Join(dir, "f"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := file.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	f.SetCrashPoint(1) // next boundary: the write below
	if _, err := file.Write([]byte("abcdefghij")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write at crash point: %v", err)
	}
	if !f.Crashed() {
		t.Fatal("crash point did not fire")
	}
	if err := file.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after crash: %v", err)
	}
	if _, err := f.ReadFile(filepath.Join(dir, "f")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read after crash: %v", err)
	}
	// The "disk" has the first write plus a prefix of the torn one.
	b, err := os.ReadFile(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "0123456789abcde" {
		t.Fatalf("disk after tear: %q", b)
	}
}

// Boundaries must count identically across runs so a crash-point matrix
// derived from a dry run lines up with the real runs.
func TestFSBoundariesStable(t *testing.T) {
	f1 := NewFS(wal.OS, FSConfig{})
	workloadFS(f1, t.TempDir())
	f2 := NewFS(wal.OS, FSConfig{})
	workloadFS(f2, t.TempDir())
	if f1.Boundaries() != f2.Boundaries() {
		t.Fatalf("boundary counts differ: %d vs %d", f1.Boundaries(), f2.Boundaries())
	}
	if f1.Boundaries() == 0 {
		t.Fatal("no boundaries counted")
	}
}

// Read-side bit flips corrupt the returned copy, never the disk.
func TestFSBitFlipLeavesDiskClean(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	want := []byte("the quick brown fox jumps over the lazy dog")
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	f := NewFS(wal.OS, FSConfig{Seed: 3, BitFlipProb: 1})
	got, err := f.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) == string(want) {
		t.Fatal("bit flip did not fire at probability 1")
	}
	disk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(disk) != string(want) {
		t.Fatal("bit flip reached the disk")
	}
	f.SetEnabled(false)
	clean, err := f.ReadFile(path)
	if err != nil || string(clean) != string(want) {
		t.Fatalf("disabled injector still corrupts: %q %v", clean, err)
	}
}

// Torn writes persist a prefix and report the short count.
func TestFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	f := NewFS(wal.OS, FSConfig{Seed: 1, TornWriteProb: 1})
	file, err := f.OpenFile(filepath.Join(dir, "f"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := file.Write([]byte("0123456789"))
	if !errors.Is(err, ErrTornWrite) {
		t.Fatalf("torn write: n=%d err=%v", n, err)
	}
	if n != 5 {
		t.Fatalf("torn write persisted %d bytes, want 5", n)
	}
	b, err := os.ReadFile(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "01234" {
		t.Fatalf("disk after torn write: %q", b)
	}
}
