package fault

import (
	"errors"
	"net"
	"syscall"
	"time"
)

// ErrInjectedReset marks a connection torn down by the schedule. It wraps
// syscall.ECONNRESET so retry.Transient classifies it exactly like a real
// peer reset.
var ErrInjectedReset = &net.OpError{Op: "fault", Err: syscall.ECONNRESET}

// cutPoll is how often a stalled (partitioned) operation re-checks the
// schedule.
const cutPoll = 5 * time.Millisecond

// Conn wraps a net.Conn, injecting the Injector's schedule into its
// Read/Write path. The zero value is not usable; use WrapConn.
type Conn struct {
	net.Conn
	inj *Injector
}

// WrapConn applies inj's schedule to c.
func WrapConn(c net.Conn, inj *Injector) *Conn {
	return &Conn{Conn: c, inj: inj}
}

// Read implements net.Conn. A one-way inbound cut stalls the read — the
// bytes simply stop arriving, exactly like a half-open network path — and
// resumes (or fails with the connection's fate) once the cut lifts.
func (c *Conn) Read(p []byte) (int, error) {
	for c.inj.inCut() {
		time.Sleep(cutPoll)
	}
	d := c.inj.next(false)
	if d.latency > 0 {
		time.Sleep(d.latency)
	}
	if d.reset {
		c.Conn.Close()
		return 0, ErrInjectedReset
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn. Dropped writes report success without
// touching the wire; short writes tear protocol framing; an outbound cut
// swallows everything while it lasts.
func (c *Conn) Write(p []byte) (int, error) {
	if c.inj.outCut() {
		return len(p), nil
	}
	d := c.inj.next(true)
	if d.latency > 0 {
		time.Sleep(d.latency)
	}
	if d.reset {
		c.Conn.Close()
		return 0, ErrInjectedReset
	}
	if d.drop {
		return len(p), nil
	}
	if d.shortWrite && len(p) > 1 {
		n, err := c.Conn.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		// Tear the rest of the frame off the wire: the peer's decoder
		// sees a truncated frame and fails the connection.
		c.Conn.Close()
		return n, errors.New("fault: injected short write")
	}
	return c.Conn.Write(p)
}

// Listener wraps a net.Listener so every accepted connection carries the
// Injector's schedule.
type Listener struct {
	net.Listener
	inj *Injector
}

// WrapListener applies inj's schedule to every connection lis accepts.
func WrapListener(lis net.Listener, inj *Injector) *Listener {
	return &Listener{Listener: lis, inj: inj}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(c, l.inj), nil
}
