package fault

import (
	"context"
	"time"

	"gondi/internal/jgroups"
)

// FabricStep is one step of a deterministic partition/merge script
// against an in-process jgroups fabric. Steps execute in order; each
// waits After, then applies whichever actions are set.
type FabricStep struct {
	// After is the pause before this step applies (relative to the
	// previous step).
	After time.Duration
	// Partition, when non-nil, splits the fabric (see Fabric.Partition).
	Partition [][]jgroups.Address
	// Heal, when true, removes all partitions (triggering view merge).
	Heal bool
	// Loss, when non-nil, sets the per-packet drop probability.
	Loss *float64
	// Delay, when non-nil, sets the fixed delivery delay.
	Delay *time.Duration
}

// FabricSchedule drives a jgroups.Fabric through a scripted fault
// sequence — the transport hook the HDNS partition/rejoin tests use to
// exercise the PRIMARY PARTITION protocol deterministically.
type FabricSchedule struct {
	Fabric *jgroups.Fabric
	Steps  []FabricStep
}

// Run executes the script; ctx aborts between steps. It returns ctx's
// error if cancelled, else nil after the last step.
func (s *FabricSchedule) Run(ctx context.Context) error {
	for _, st := range s.Steps {
		if st.After > 0 {
			t := time.NewTimer(st.After)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
		if st.Partition != nil {
			s.Fabric.Partition(st.Partition...)
		}
		if st.Heal {
			s.Fabric.Heal()
		}
		if st.Loss != nil {
			s.Fabric.SetLoss(*st.Loss)
		}
		if st.Delay != nil {
			s.Fabric.SetDelay(*st.Delay)
		}
	}
	return nil
}

// RunAsync starts the script in the background and returns a wait
// function.
func (s *FabricSchedule) RunAsync(ctx context.Context) (wait func() error) {
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	return func() error { return <-done }
}
