package fault

import (
	"io"
	"net"
	"sync"
	"time"
)

// Proxy is a faulting TCP relay: clients dial the proxy's stable address,
// the proxy forwards to the (retargetable) backend, and the Injector's
// schedule is applied to the forwarded stream. Cut/Restore model a hard
// partition or crash from the client's point of view; SetTarget keeps the
// client-facing address stable across backend restarts (see Harness).
type Proxy struct {
	lis net.Listener
	inj *Injector

	mu     sync.Mutex
	target string
	conns  map[net.Conn]struct{}
	cut    bool
	closed bool

	wg sync.WaitGroup
}

// NewProxy starts a TCP proxy on an ephemeral local port forwarding to
// target. A nil Injector means a pass-through schedule (Cut/Restore still
// work).
func NewProxy(target string, inj *Injector) (*Proxy, error) {
	if inj == nil {
		inj = NewInjector(Config{})
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return newProxyFrom(lis, target, inj), nil
}

func newProxyFrom(lis net.Listener, target string, inj *Injector) *Proxy {
	p := &Proxy{lis: lis, inj: inj, target: target, conns: map[net.Conn]struct{}{}}
	p.wg.Add(1)
	go p.acceptLoop()
	return p
}

// Addr returns the stable client-facing address.
func (p *Proxy) Addr() string { return p.lis.Addr().String() }

// SetTarget points the proxy at a (re)started backend.
func (p *Proxy) SetTarget(target string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.target = target
}

// Cut severs every relayed connection and refuses new ones: a crash or
// full partition as observed by clients. The injector's one-way cuts are
// orthogonal (traffic stalls instead of failing).
func (p *Proxy) Cut() {
	p.mu.Lock()
	p.cut = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Restore lifts a Cut.
func (p *Proxy) Restore() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cut = false
}

// Close stops the proxy and severs all relayed connections.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.lis.Close()
	p.Cut()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.lis.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		refuse := p.cut || p.closed
		target := p.target
		if !refuse {
			p.conns[client] = struct{}{}
		}
		p.mu.Unlock()
		if refuse {
			client.Close()
			continue
		}
		p.wg.Add(1)
		go p.relay(client, target)
	}
}

func (p *Proxy) relay(client net.Conn, target string) {
	defer p.wg.Done()
	defer func() {
		client.Close()
		p.mu.Lock()
		delete(p.conns, client)
		p.mu.Unlock()
	}()
	backend, err := net.DialTimeout("tcp", target, 5*time.Second)
	if err != nil {
		return
	}
	p.mu.Lock()
	if p.cut || p.closed {
		p.mu.Unlock()
		backend.Close()
		return
	}
	p.conns[backend] = struct{}{}
	p.mu.Unlock()
	defer func() {
		backend.Close()
		p.mu.Lock()
		delete(p.conns, backend)
		p.mu.Unlock()
	}()
	// The faulted side is the backend conn: writes to it are outbound
	// (client→server), reads from it inbound (server→client).
	fb := WrapConn(backend, p.inj)
	done := make(chan struct{}, 2)
	go func() { _, _ = io.Copy(fb, client); backend.Close(); done <- struct{}{} }()
	go func() { _, _ = io.Copy(client, fb); client.Close(); done <- struct{}{} }()
	<-done
	<-done
}

// UDPProxy is the datagram analog of Proxy, used to fault the DNS
// provider: client datagrams are relayed to the backend and answers
// relayed back, with drops, latency and cuts from the Injector's
// schedule (resets and short writes do not apply to datagrams).
type UDPProxy struct {
	pc  net.PacketConn
	inj *Injector

	mu      sync.Mutex
	target  string
	clients map[string]*udpSession
	cut     bool
	closed  bool

	wg sync.WaitGroup
}

type udpSession struct {
	conn net.Conn // connected UDP socket to the backend
}

// NewUDPProxy starts a UDP relay on an ephemeral local port forwarding to
// target. A nil Injector means a pass-through schedule.
func NewUDPProxy(target string, inj *Injector) (*UDPProxy, error) {
	if inj == nil {
		inj = NewInjector(Config{})
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return newUDPProxyFrom(pc, target, inj), nil
}

func newUDPProxyFrom(pc net.PacketConn, target string, inj *Injector) *UDPProxy {
	p := &UDPProxy{pc: pc, inj: inj, target: target, clients: map[string]*udpSession{}}
	p.wg.Add(1)
	go p.readLoop()
	return p
}

// DualProxy fronts a backend that serves TCP and UDP on one port (the
// DNS server: queries over UDP, zone transfers and truncation fallback
// over TCP). It binds both protocols on one local port so a single
// client-facing address covers both paths, and cuts and heals them
// together.
type DualProxy struct {
	tcp *Proxy
	udp *UDPProxy
}

// NewDualProxy starts TCP and UDP relays sharing one ephemeral local
// port, both forwarding to target with inj's schedule (nil means
// pass-through).
func NewDualProxy(target string, inj *Injector) (*DualProxy, error) {
	if inj == nil {
		inj = NewInjector(Config{})
	}
	var lastErr error
	// The TCP bind picks the port; the UDP bind on the same port can
	// collide with an unrelated socket, so retry with fresh ports.
	for attempt := 0; attempt < 16; attempt++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		pc, err := net.ListenPacket("udp", lis.Addr().String())
		if err != nil {
			lastErr = err
			lis.Close()
			continue
		}
		return &DualProxy{
			tcp: newProxyFrom(lis, target, inj),
			udp: newUDPProxyFrom(pc, target, inj),
		}, nil
	}
	return nil, lastErr
}

// Addr returns the stable client-facing address (same port for both
// protocols).
func (p *DualProxy) Addr() string { return p.tcp.Addr() }

// SetTarget points both relays at a (re)started backend.
func (p *DualProxy) SetTarget(target string) {
	p.tcp.SetTarget(target)
	p.udp.SetTarget(target)
}

// Cut severs both protocols; Restore heals both.
func (p *DualProxy) Cut() {
	p.tcp.Cut()
	p.udp.Cut()
}

// Restore lifts a Cut on both protocols.
func (p *DualProxy) Restore() {
	p.tcp.Restore()
	p.udp.Restore()
}

// Close stops both relays.
func (p *DualProxy) Close() error {
	err := p.tcp.Close()
	if e := p.udp.Close(); err == nil {
		err = e
	}
	return err
}

// Addr returns the stable client-facing address.
func (p *UDPProxy) Addr() string { return p.pc.LocalAddr().String() }

// SetTarget points the proxy at a (re)started backend.
func (p *UDPProxy) SetTarget(target string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.target = target
}

// Cut makes the proxy a black hole (datagrams vanish in both directions).
func (p *UDPProxy) Cut() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cut = true
}

// Restore lifts a Cut.
func (p *UDPProxy) Restore() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cut = false
}

// Close stops the relay.
func (p *UDPProxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	sessions := make([]*udpSession, 0, len(p.clients))
	for _, s := range p.clients {
		sessions = append(sessions, s)
	}
	p.mu.Unlock()
	err := p.pc.Close()
	for _, s := range sessions {
		s.conn.Close()
	}
	p.wg.Wait()
	return err
}

func (p *UDPProxy) readLoop() {
	defer p.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, from, err := p.pc.ReadFrom(buf)
		if err != nil {
			return
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		p.mu.Lock()
		cut, target := p.cut, p.target
		sess := p.clients[from.String()]
		p.mu.Unlock()
		if cut {
			continue
		}
		d := p.inj.next(true)
		if d.drop || p.inj.outCut() {
			continue
		}
		if sess == nil {
			bc, err := net.Dial("udp", target)
			if err != nil {
				continue
			}
			sess = &udpSession{conn: bc}
			p.mu.Lock()
			if p.closed {
				p.mu.Unlock()
				bc.Close()
				return
			}
			p.clients[from.String()] = sess
			p.mu.Unlock()
			p.wg.Add(1)
			go p.backendLoop(sess, from)
		}
		if d.latency > 0 {
			time.AfterFunc(d.latency, func() { _, _ = sess.conn.Write(pkt) })
			continue
		}
		_, _ = sess.conn.Write(pkt)
	}
}

func (p *UDPProxy) backendLoop(sess *udpSession, client net.Addr) {
	defer p.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, err := sess.conn.Read(buf)
		if err != nil {
			return
		}
		p.mu.Lock()
		cut := p.cut
		p.mu.Unlock()
		if cut || p.inj.inCut() {
			continue
		}
		d := p.inj.next(false)
		if d.drop {
			continue
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		if d.latency > 0 {
			time.AfterFunc(d.latency, func() { _, _ = p.pc.WriteTo(pkt, client) })
			continue
		}
		_, _ = p.pc.WriteTo(pkt, client)
	}
}
