package sync_test

// The origin-outage chaos drill from the issue: a mirror follows an
// HDNS origin through a fault proxy; the proxy is cut mid-update-stream
// and the reader — an ordinary InitialContext with WithMirrorFallback —
// must keep resolving every name the mirror had converged on, typed and
// counted, until the origin heals and the backlog drains. The schedule
// is scripted (fixed cut point, fixed heal point), so a failure is a
// robustness regression, not flake.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"gondi/internal/core"
	"gondi/internal/fault"
	"gondi/internal/hdns"
	"gondi/internal/jgroups"
	"gondi/internal/provider/hdnssp"
	"gondi/internal/retry"
	"gondi/internal/sync"
)

func TestChaosOriginCutMidStreamMirrorKeepsServing(t *testing.T) {
	hdnssp.Register()
	sync.Register()
	ctx := context.Background()

	stack := jgroups.DefaultConfig()
	stack.HeartbeatInterval = 50 * time.Millisecond
	newNode := func(group, ep string) *hdns.Node {
		n, err := hdns.NewNode(hdns.NodeConfig{
			Group:      group + "-" + t.Name(),
			Transport:  jgroups.NewFabric().Endpoint(jgroups.Address(ep)),
			Stack:      stack,
			ListenAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return n
	}
	origin := newNode("chaos-origin", "co")
	replica := newNode("chaos-replica", "cr")

	proxy, err := fault.NewProxy(origin.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	// The writer dials the origin directly — it lives on the healthy
	// side of the partition and keeps publishing through the outage.
	writer, err := hdnssp.Open(ctx, origin.Addr(), map[string]any{core.EnvPoolID: t.Name() + "-writer"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { writer.Close() })
	const keys = 5
	for i := 0; i < keys; i++ {
		if err := writer.Rebind(ctx, fmt.Sprintf("svc%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	m, err := sync.New(ctx, sync.Config{
		Name:      t.Name(),
		SourceURL: "hdns://" + proxy.Addr(),
		DestURL:   "hdns://" + replica.Addr() + "/m",
		Interval:  50 * time.Millisecond,
		Retry:     retry.Policy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Stop() })

	// Converge on the replica itself before pulling the plug.
	dst, err := hdnssp.Open(ctx, replica.Addr(), map[string]any{core.EnvPoolID: t.Name() + "-verify"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dst.Close() })
	waitFor := func(c core.Context, name, want string) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for {
			if v, err := c.Lookup(ctx, name); err == nil && v == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never reached %q: %+v", name, want, m.Status())
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	for i := 0; i < keys; i++ {
		waitFor(dst, fmt.Sprintf("m/svc%d", i), fmt.Sprintf("v%d", i))
	}

	reader, err := core.Open(ctx, core.WithMirrorFallback())
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	url := func(i int) string { return fmt.Sprintf("hdns://%s/svc%d", proxy.Addr(), i) }
	for i := 0; i < keys; i++ {
		if v, err := reader.Lookup(ctx, url(i)); err != nil || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("healthy read %d = %v, %v", i, v, err)
		}
	}

	// Cut mid-stream: half the update burst lands before the outage,
	// half during it.
	for i := 0; i < keys; i++ {
		if i == 2 {
			proxy.Cut()
		}
		if err := writer.Rebind(ctx, fmt.Sprintf("svc%d", i), fmt.Sprintf("v%d-new", i)); err != nil {
			t.Fatal(err)
		}
	}

	// FULL origin outage: every converged name still resolves through
	// the reader, for the entire cut. Values may be one update behind —
	// that is the documented staleness trade — but reads never fail.
	servedBefore := m.Status().Serves
	for round := 0; round < 3; round++ {
		for i := 0; i < keys; i++ {
			v, err := reader.Lookup(ctx, url(i))
			if err != nil {
				t.Fatalf("read %d during outage: %v (status %+v)", i, err, m.Status())
			}
			old, fresh := fmt.Sprintf("v%d", i), fmt.Sprintf("v%d-new", i)
			if v != old && v != fresh {
				t.Fatalf("read %d during outage = %v, want %q or %q", i, v, old, fresh)
			}
		}
	}
	if served := m.Status().Serves; served <= servedBefore {
		t.Fatalf("outage reads were not mirror-served (serves %d -> %d)", servedBefore, served)
	}

	// Heal. The mirror must resubscribe, resync, and drain the backlog;
	// the reader then sees every post-cut value.
	proxy.Restore()
	deadline := time.Now().Add(20 * time.Second)
	for i := 0; i < keys; i++ {
		want := fmt.Sprintf("v%d-new", i)
		for {
			if v, err := reader.Lookup(ctx, url(i)); err == nil && v == want {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("post-heal read %d never reached %q: %+v", i, want, m.Status())
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	if s := m.Status(); s.WatchLost == 0 {
		t.Errorf("cut did not register as a lost watch: %+v", s)
	}
}
