// Package sync is the cross-registry synchronization engine: it
// incrementally mirrors a subtree of any source provider (an LDAP DIT,
// a DNS zone, a Jini LUS, another HDNS deployment) into a local
// provider — canonically a sharded HDNS group — so the federation keeps
// serving reads through a full origin outage.
//
// This is the maturity step beyond query federation: the paper's
// InitialContext dispatches every operation to the live backend, so an
// origin's subtree vanishes with the origin (the cache's serve-stale
// window is a seconds-scale bridge). A Mirror materializes the subtree
// locally and keeps it converged:
//
//   - Event-driven where the source supports core.EventContext: a
//     subtree watch is registered before the initial snapshot, and every
//     event is applied by re-reading the source at the event's path, so
//     event/snapshot races resolve to the source's current state
//     (source-wins) regardless of delivery order.
//   - Delta pulls where it doesn't: each cycle asks the source for a
//     change cursor (CursorSource — the DNS SOA serial, the HDNS store
//     version) and skips the walk when the cursor is unchanged.
//
// Every loop is crash-safe and self-healing: the cursor and deletion
// tombstones are persisted through internal/wal and replayed on restart,
// failed cycles back off through internal/retry (honoring RetryAfter
// sheds), and EventWatchLost triggers resubscribe-and-resync. Reads
// fall back to the mirror when the origin is unreachable — see
// Register and core.WithMirrorFallback.
package sync

import (
	"context"
	"errors"
	"fmt"
	"sort"
	stdsync "sync"
	"sync/atomic"
	"time"

	"gondi/internal/core"
	"gondi/internal/obs"
	"gondi/internal/retry"
)

// Environment knob: a Mirror tags its provider connections with this
// pool ID suffix so mirror traffic never shares a wire connection with
// (and never inherits breaker state tangled up by) foreground traffic.
const poolSuffix = "sync-mirror"

// CursorSource is the structural capability a source context may expose
// for cheap change detection: an opaque cursor that moves whenever the
// subtree at name may have changed. ok=false means the source cannot
// cursor that name (the Mirror then walks unconditionally each cycle).
// dnssp (SOA serial) and hdnssp (store version) implement it; the obs
// instrumentation wrapper forwards it.
type CursorSource interface {
	SyncCursor(ctx context.Context, name string) (cursor string, ok bool, err error)
}

// Config describes one mirror.
type Config struct {
	// Name identifies the mirror in metrics, status and logs. Defaults
	// to the source URL.
	Name string
	// SourceURL is the subtree to mirror, as a provider URL
	// ("dns://ns1/global/emory", "hdns://n1:7001|n2:7001/services").
	SourceURL string
	// DestURL is where the replica materializes. The path is created if
	// missing. The destination provider must support writes (DirContext).
	DestURL string
	// Env is the environment for both provider opens (secrets, leases).
	// The Mirror adds its own pool ID so mirror connections are never
	// shared with foreground traffic.
	Env map[string]any
	// Interval paces delta-pull cycles (and watch-mode anti-entropy
	// checks). <=0 defaults to 2s.
	Interval time.Duration
	// WALDir persists the sync cursor and tombstones for crash-safe
	// resume. Empty keeps them in memory only.
	WALDir string
	// Retry backs failed sync cycles off; the zero value uses the retry
	// package defaults. RetryAfter hints from source sheds are honored.
	Retry retry.Policy
}

// Status is a point-in-time view of one mirror, JSON-shaped for
// /debug/vars and `fedctl sync`.
type Status struct {
	Name      string    `json:"name"`
	Source    string    `json:"source"`
	Dest      string    `json:"dest"`
	Mode      string    `json:"mode"` // "watch" or "poll"
	Cursor    string    `json:"cursor,omitempty"`
	Cycles    uint64    `json:"cycles"`
	Skipped   uint64    `json:"skipped"` // cycles skipped on an unchanged cursor
	Applied   uint64    `json:"applied"` // entries written to the dest
	Deleted   uint64    `json:"deleted"` // entries removed from the dest
	Resyncs   uint64    `json:"resyncs"` // full snapshot/diff walks
	WatchLost uint64    `json:"watch_lost"`
	Serves    uint64    `json:"mirror_serves"` // reads answered by this mirror
	Tombs     int       `json:"tombstones"`
	LastSync  time.Time `json:"last_sync"`
	LagMs     int64     `json:"lag_ms"` // now - last successful sync
	LastError string    `json:"last_error,omitempty"`
}

// Mirror is one running synchronization loop plus the materialized
// replica it maintains.
type Mirror struct {
	cfg  Config
	name string

	srcScheme    string
	srcAuthority string
	srcBase      core.Name

	destRoot core.Context
	destDir  core.DirContext
	destBase core.Name

	mu       stdsync.Mutex
	src      core.Context // current source root, nil when unreachable
	cursor   string
	tombs    map[string]time.Time
	lastSync time.Time
	lastErr  string
	mode     string
	journal  *journal

	cycles, skipped, applied, deleted atomic.Uint64
	resyncs, watchLost, serves        atomic.Uint64

	resyncReq chan chan error
	cancel    context.CancelFunc
	done      chan struct{}
	started   bool
	stopped   bool

	mCycles, mCycleErrs, mApplied, mDeleted *obs.Counter
	mResyncs, mWatchLost, mSkipped          *obs.Counter
	gLagMs                                  *obs.Gauge
}

// New validates cfg, restores persisted cursor/tombstone state from the
// WAL (if any), and opens the destination, creating the target path.
// The sync loop starts with Start.
func New(ctx context.Context, cfg Config) (*Mirror, error) {
	if cfg.SourceURL == "" || cfg.DestURL == "" {
		return nil, fmt.Errorf("sync: both SourceURL and DestURL are required")
	}
	su, err := core.ParseURLName(cfg.SourceURL)
	if err != nil {
		return nil, fmt.Errorf("sync: source: %w", err)
	}
	if cfg.Name == "" {
		cfg.Name = cfg.SourceURL
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	m := &Mirror{
		cfg:          cfg,
		name:         cfg.Name,
		srcScheme:    su.Scheme,
		srcAuthority: su.Authority,
		srcBase:      su.Path,
		tombs:        map[string]time.Time{},
		resyncReq:    make(chan chan error, 1),
	}
	lbl := obs.Label{K: "mirror", V: m.name}
	m.mCycles = obs.Default.Counter("gondi_sync_cycles_total", "Sync cycles run, by mirror.", lbl)
	m.mCycleErrs = obs.Default.Counter("gondi_sync_cycle_errors_total", "Sync cycles that failed, by mirror.", lbl)
	m.mApplied = obs.Default.Counter("gondi_sync_applied_total", "Entries written to the mirror destination.", lbl)
	m.mDeleted = obs.Default.Counter("gondi_sync_deleted_total", "Entries removed from the mirror destination.", lbl)
	m.mResyncs = obs.Default.Counter("gondi_sync_resyncs_total", "Full snapshot/diff resync walks.", lbl)
	m.mWatchLost = obs.Default.Counter("gondi_sync_watch_lost_total", "Source watch registrations lost and re-established.", lbl)
	m.mSkipped = obs.Default.Counter("gondi_sync_skipped_total", "Cycles skipped on an unchanged source cursor.", lbl)
	m.gLagMs = obs.Default.Gauge("gondi_sync_lag_ms", "Milliseconds since the mirror last converged with its source.", lbl)

	if cfg.WALDir != "" {
		j, err := openJournal(cfg.WALDir)
		if err != nil {
			return nil, fmt.Errorf("sync: journal: %w", err)
		}
		m.journal = j
		cur, tombs, err := j.replay()
		if err != nil {
			j.close()
			return nil, fmt.Errorf("sync: journal replay: %w", err)
		}
		m.cursor, m.tombs = cur, tombs
	}

	env := m.env()
	destRoot, destBase, err := core.OpenURL(ctx, cfg.DestURL, env)
	if err != nil {
		m.closeJournal()
		return nil, fmt.Errorf("sync: open dest %s: %w", cfg.DestURL, err)
	}
	dd, ok := destRoot.(core.DirContext)
	if !ok {
		destRoot.Close()
		m.closeJournal()
		return nil, fmt.Errorf("sync: dest %s does not support directory writes", cfg.DestURL)
	}
	m.destRoot, m.destDir, m.destBase = destRoot, dd, destBase
	if err := m.ensureDestBase(ctx); err != nil {
		destRoot.Close()
		m.closeJournal()
		return nil, fmt.Errorf("sync: create dest path: %w", err)
	}
	return m, nil
}

// env returns the provider environment for this mirror's connections:
// the caller's Env plus a mirror-owned pool ID, so mirror wire traffic
// is isolated from foreground connections.
func (m *Mirror) env() map[string]any {
	env := make(map[string]any, len(m.cfg.Env)+1)
	for k, v := range m.cfg.Env {
		env[k] = v
	}
	pool := poolSuffix + "/" + m.name
	if p, ok := env[core.EnvPoolID]; ok {
		pool = fmt.Sprintf("%v/%s", p, pool)
	}
	env[core.EnvPoolID] = pool
	return env
}

// ensureDestBase creates the destination path, component by component.
func (m *Mirror) ensureDestBase(ctx context.Context) error {
	for i := 1; i <= m.destBase.Size(); i++ {
		_, err := m.destDir.CreateSubcontext(ctx, m.destBase.Prefix(i).String())
		if err != nil && !errors.Is(err, core.ErrAlreadyBound) {
			return err
		}
	}
	return nil
}

// Start launches the sync loop and registers the mirror for fallback
// serving. The loop runs until Stop (or ctx cancellation).
func (m *Mirror) Start(ctx context.Context) error {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return fmt.Errorf("sync: mirror %s already started", m.name)
	}
	m.started = true
	m.mu.Unlock()
	lctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	m.cancel = cancel
	m.done = make(chan struct{})
	registerMirror(m)
	publishStatus()
	go m.run(lctx)
	return nil
}

// Stop halts the loop, unregisters the mirror from fallback serving,
// flushes the journal, and closes the provider connections. The
// materialized replica stays in the destination. Idempotent.
func (m *Mirror) Stop() error {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return nil
	}
	m.stopped = true
	started := m.started
	m.started = false
	m.mu.Unlock()
	if started && m.cancel != nil {
		m.cancel()
		<-m.done
	}
	unregisterMirror(m)
	m.mu.Lock()
	if m.src != nil {
		m.src.Close()
		m.src = nil
	}
	m.mu.Unlock()
	m.closeJournal()
	return m.destRoot.Close()
}

func (m *Mirror) closeJournal() {
	m.mu.Lock()
	j := m.journal
	m.journal = nil
	m.mu.Unlock()
	if j != nil {
		j.close()
	}
}

// Status reports the mirror's current state.
func (m *Mirror) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Status{
		Name:      m.name,
		Source:    m.cfg.SourceURL,
		Dest:      m.cfg.DestURL,
		Mode:      m.mode,
		Cursor:    m.cursor,
		Cycles:    m.cycles.Load(),
		Skipped:   m.skipped.Load(),
		Applied:   m.applied.Load(),
		Deleted:   m.deleted.Load(),
		Resyncs:   m.resyncs.Load(),
		WatchLost: m.watchLost.Load(),
		Serves:    m.serves.Load(),
		Tombs:     len(m.tombs),
		LastSync:  m.lastSync,
		LastError: m.lastErr,
	}
	if !m.lastSync.IsZero() {
		s.LagMs = time.Since(m.lastSync).Milliseconds()
	} else {
		s.LagMs = -1 // never synced
	}
	return s
}

// Resync forces one full snapshot/diff cycle through the sync loop and
// waits for it (tests, fedctl, post-outage drills).
func (m *Mirror) Resync(ctx context.Context) error {
	done := make(chan error, 1)
	select {
	case m.resyncReq <- done:
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// --- the sync loop ------------------------------------------------------

// event is one queued source notification.
type event struct {
	typ  core.EventType
	name string
}

const eventBuffer = 4096

// run is the mirror's single loop: all source reads and destination
// writes happen here, serially, so conflict resolution is a total order.
func (m *Mirror) run(ctx context.Context) {
	defer close(m.done)
	events := make(chan event, eventBuffer)
	var overflow atomic.Bool
	var unwatch func()
	defer func() {
		if unwatch != nil {
			unwatch()
		}
	}()

	// establish (re)opens the source, prefers watch mode, and runs the
	// initial full resync. Retried with backoff until ctx ends.
	// Re-establishing over a live prior registration means that watch
	// died with its transport — however the loop noticed (an explicit
	// EventWatchLost, a failed liveness probe, or a transport error on
	// an event apply) — so the lost-watch accounting lives here, once
	// per re-establishment.
	establish := func() {
		if unwatch != nil {
			m.watchLost.Add(1)
			m.mWatchLost.Inc()
		}
		attempt := func() error {
			src, err := m.ensureSource(ctx)
			if err != nil {
				return err
			}
			if unwatch != nil {
				unwatch()
				unwatch = nil
			}
			// Watch BEFORE the snapshot: events racing the walk are
			// applied by re-reading the source, so the order resolves
			// to the source's current state either way.
			if ec, ok := src.(core.EventContext); ok {
				cancel, werr := ec.Watch(ctx, m.srcBase.String(), core.ScopeSubtree, func(e core.NamingEvent) {
					select {
					case events <- event{typ: e.Type, name: e.Name}:
					default:
						overflow.Store(true)
					}
				})
				if werr == nil {
					unwatch = cancel
					m.setMode("watch")
				} else if errors.Is(werr, core.ErrNotSupported) {
					m.setMode("poll")
				} else {
					return werr
				}
			} else {
				m.setMode("poll")
			}
			return m.resync(ctx)
		}
		for ctx.Err() == nil {
			err := retry.DoClassify(ctx, m.cfg.Retry, transportClass, func() error {
				err := attempt()
				m.noteCycle(err)
				return err
			})
			if err == nil {
				return
			}
			m.dropSource()
			// Out of retry budget: pause one interval, then re-dial.
			if !sleepCtx(ctx, m.cfg.Interval) {
				return
			}
		}
	}

	establish()
	tick := time.NewTicker(m.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case ev := <-events:
			if ev.typ == core.EventWatchLost {
				drainEvents(events)
				overflow.Store(false)
				m.dropSource()
				establish()
				continue
			}
			if err := m.applyEvent(ctx, ev); err != nil {
				m.noteCycle(err)
				if transportClass(err) {
					m.dropSource()
					establish()
				}
			} else {
				m.noteCycle(nil)
			}
		case done := <-m.resyncReq:
			err := m.cycle(ctx, true)
			m.noteCycle(err)
			done <- err
			if err != nil && transportClass(err) {
				m.dropSource()
			}
		case <-tick.C:
			if overflow.Swap(false) {
				// The event buffer overflowed: some updates were dropped,
				// so only a full walk restores convergence.
				if err := m.resync(ctx); err != nil {
					m.noteCycle(err)
					if transportClass(err) {
						m.dropSource()
						establish()
					}
					continue
				}
				m.noteCycle(nil)
				continue
			}
			if m.getMode() == "watch" {
				// Watch mode: the tick is a liveness probe, not a walk.
				// A healthy watch already keeps the mirror converged; if
				// the source died without delivering a watch-lost event
				// (or the probe noticed before the event did), the dead
				// connection took the registration with it — count it as
				// a lost watch and re-establish.
				if m.probe(ctx) {
					m.noteCycle(nil)
				} else {
					m.dropSource()
					establish()
				}
				continue
			}
			err := m.cycle(ctx, false)
			m.noteCycle(err)
			if err != nil && transportClass(err) {
				m.dropSource()
				establish()
			}
		}
	}
}

// sleepCtx waits d or until ctx ends; reports whether the wait elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func drainEvents(events chan event) {
	for {
		select {
		case <-events:
		default:
			return
		}
	}
}

// ensureSource returns the current source root, dialing if needed.
func (m *Mirror) ensureSource(ctx context.Context) (core.Context, error) {
	m.mu.Lock()
	src := m.src
	m.mu.Unlock()
	if src != nil {
		return src, nil
	}
	// srcBase is deliberately NOT refreshed here: it is fixed at New from
	// the URL (OpenURL returns the same path), and the fallback registry
	// reads it without a lock.
	src, _, err := core.OpenURL(ctx, m.cfg.SourceURL, m.env())
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.src = src
	m.mu.Unlock()
	return src, nil
}

func (m *Mirror) dropSource() {
	m.mu.Lock()
	src := m.src
	m.src = nil
	m.mu.Unlock()
	if src != nil {
		src.Close()
	}
}

// probe is watch mode's liveness check: one cheap source read. True
// means the source (and therefore the watch connection, which shares
// its wire) is answering.
func (m *Mirror) probe(ctx context.Context) bool {
	m.mu.Lock()
	src := m.src
	m.mu.Unlock()
	if src == nil {
		return false
	}
	pctx, cancel := context.WithTimeout(ctx, m.cfg.Interval)
	defer cancel()
	if cs, ok := src.(CursorSource); ok {
		if _, _, err := cs.SyncCursor(pctx, m.srcBase.String()); err == nil {
			return true
		} else {
			return !transportClass(err)
		}
	}
	_, err := src.Lookup(pctx, m.srcBase.String())
	return err == nil || !transportClass(err)
}

// cycle runs one delta-pull cycle: consult the source cursor, skip the
// walk when it is unchanged, resync otherwise. force walks regardless.
func (m *Mirror) cycle(ctx context.Context, force bool) error {
	src, err := m.ensureSource(ctx)
	if err != nil {
		return err
	}
	var cur string
	var curOK bool
	if cs, ok := src.(CursorSource); ok {
		cur, curOK, err = cs.SyncCursor(ctx, m.srcBase.String())
		if err != nil {
			return err
		}
	}
	m.mu.Lock()
	unchanged := curOK && cur != "" && cur == m.cursor && !m.lastSync.IsZero()
	m.mu.Unlock()
	if unchanged && !force {
		m.skipped.Add(1)
		m.mSkipped.Inc()
		return nil
	}
	// Read the cursor before the walk: changes landing mid-walk keep the
	// next cycle's cursor comparison unequal, so nothing is missed.
	if err := m.resync(ctx); err != nil {
		return err
	}
	if curOK {
		m.setCursor(cur)
	}
	return nil
}

func (m *Mirror) setCursor(cur string) {
	m.mu.Lock()
	changed := m.cursor != cur
	m.cursor = cur
	j := m.journal
	m.mu.Unlock()
	if changed && j != nil {
		j.cursor(cur)
	}
}

func (m *Mirror) setMode(mode string) {
	m.mu.Lock()
	m.mode = mode
	m.mu.Unlock()
}

func (m *Mirror) getMode() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.mode
}

// noteCycle records a cycle outcome in counters, status and the lag
// gauge.
func (m *Mirror) noteCycle(err error) {
	m.cycles.Add(1)
	m.mCycles.Inc()
	m.mu.Lock()
	if err != nil {
		m.lastErr = err.Error()
	} else {
		m.lastErr = ""
		m.lastSync = time.Now()
	}
	last := m.lastSync
	m.mu.Unlock()
	if err != nil {
		m.mCycleErrs.Inc()
	}
	if !last.IsZero() {
		m.gLagMs.Set(time.Since(last).Milliseconds())
	}
}

// --- snapshot / diff / apply -------------------------------------------

// entry is one mirrored binding: a subcontext (IsCtx) or a leaf value.
type entry struct {
	isCtx bool
	obj   any
	fp    []byte // marshalled leaf value, for comparison
	attrs *core.Attributes
}

func (e *entry) equal(o *entry) bool {
	if e.isCtx != o.isCtx {
		return false
	}
	if !attrsOf(e).Equal(attrsOf(o)) {
		return false
	}
	return e.isCtx || string(e.fp) == string(o.fp)
}

func attrsOf(e *entry) *core.Attributes {
	if e.attrs == nil {
		return &core.Attributes{}
	}
	return e.attrs
}

// resync runs one full snapshot/diff/apply walk: deterministic
// convergence regardless of what events were lost. Unchanged entries
// are never rewritten, so a converged resync is write-free (this is
// what makes "no duplicated updates" testable: apply counters stand
// still across an idle resync).
func (m *Mirror) resync(ctx context.Context) error {
	m.resyncs.Add(1)
	m.mResyncs.Inc()
	src, err := m.ensureSource(ctx)
	if err != nil {
		return err
	}
	srcSnap, err := m.walk(ctx, src, m.srcBase)
	if err != nil {
		return fmt.Errorf("sync %s: source walk: %w", m.name, err)
	}
	dstSnap, err := m.walk(ctx, m.destRoot, m.destBase)
	if err != nil {
		return fmt.Errorf("sync %s: dest walk: %w", m.name, err)
	}

	// Deletions first, deepest first: entries gone from the source, and
	// entries whose kind flipped (their replacement lands in the upsert
	// pass below).
	var dels []string
	for p, de := range dstSnap {
		se, ok := srcSnap[p]
		if !ok || se.isCtx != de.isCtx {
			dels = append(dels, p)
		}
	}
	sort.Slice(dels, func(i, j int) bool { return depth(dels[i]) > depth(dels[j]) })
	for _, p := range dels {
		if err := m.deleteDest(ctx, p, dstSnap[p].isCtx); err != nil {
			return fmt.Errorf("sync %s: delete %q: %w", m.name, p, err)
		}
		delete(dstSnap, p)
	}

	// Upserts, shallowest first so parents exist before children.
	var ups []string
	for p, se := range srcSnap {
		if de, ok := dstSnap[p]; !ok || !se.equal(de) {
			ups = append(ups, p)
		}
	}
	sort.Slice(ups, func(i, j int) bool { return depth(ups[i]) < depth(ups[j]) })
	for _, p := range ups {
		if err := m.upsertDest(ctx, p, srcSnap[p], dstSnap[p]); err != nil {
			return fmt.Errorf("sync %s: apply %q: %w", m.name, p, err)
		}
	}
	return nil
}

func depth(p string) int {
	n, err := core.ParseName(p)
	if err != nil {
		return 0
	}
	return n.Size()
}

// walk snapshots the subtree under base in root as relative-path →
// entry. A child that turns out to be a federation boundary (listing it
// raises CannotProceedError) is captured as a context-Reference leaf,
// so the mirror preserves federation anchors instead of crossing them.
func (m *Mirror) walk(ctx context.Context, root core.Context, base core.Name) (map[string]*entry, error) {
	out := map[string]*entry{}
	dir, _ := root.(core.DirContext)
	var rec func(rel core.Name) error
	rec = func(rel core.Name) error {
		if err := core.CtxErr(ctx); err != nil {
			return err
		}
		full := base.Concat(rel)
		bindings, err := root.ListBindings(ctx, full.String())
		if err != nil {
			return err
		}
		for _, b := range bindings {
			childRel := rel.Append(b.Name)
			key := childRel.String()
			e := &entry{}
			if dir != nil {
				attrs, aerr := dir.GetAttributes(ctx, base.Concat(childRel).String())
				if aerr == nil {
					e.attrs = attrs
				} else if isTransportOrCtx(aerr) {
					return aerr
				}
			}
			if _, isCtx := b.Object.(core.Context); isCtx || b.Class == core.ContextReferenceClass {
				e.isCtx = true
				out[key] = e
				if err := rec(childRel); err != nil {
					var cpe *core.CannotProceedError
					if errors.As(err, &cpe) {
						// Federation boundary: mirror the anchor itself.
						if url, ok := cpe.Resolved.(string); ok {
							e.isCtx = false
							e.obj = core.NewContextReference(url)
							if fp, ferr := core.Marshal(e.obj); ferr == nil {
								e.fp = fp
							}
							continue
						}
						delete(out, key)
						continue
					}
					return err
				}
				continue
			}
			fp, ferr := core.Marshal(b.Object)
			if ferr != nil {
				// Unmarshallable value (unregistered type): skip rather
				// than wedge the whole mirror on one entry.
				delete(out, key)
				continue
			}
			e.obj, e.fp = b.Object, fp
			out[key] = e
		}
		return nil
	}
	if err := rec(core.Name{}); err != nil {
		var cpe *core.CannotProceedError
		if errors.As(err, &cpe) {
			return nil, fmt.Errorf("sync: source base is a federation boundary toward %v", cpe.Resolved)
		}
		return nil, err
	}
	return out, nil
}

// isTransportOrCtx reports errors that must abort a walk (as opposed to
// per-entry semantic errors like not-supported attributes).
func isTransportOrCtx(err error) bool {
	return transportClass(err) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// upsertDest writes one entry at the relative path p, given what the
// destination currently holds (existing may be nil).
func (m *Mirror) upsertDest(ctx context.Context, p string, e, existing *entry) error {
	rel, err := core.ParseName(p)
	if err != nil {
		return err
	}
	name := m.destBase.Concat(rel).String()
	switch {
	case e.isCtx && existing != nil && existing.isCtx:
		// Attribute drift on an existing context: replace wholesale.
		if err := m.reconcileAttrs(ctx, name, attrsOf(e), attrsOf(existing)); err != nil {
			return err
		}
	case e.isCtx:
		if existing != nil {
			if err := m.destDir.Unbind(ctx, name); err != nil && !errors.Is(err, core.ErrNotFound) {
				return err
			}
		}
		if _, err := m.destDir.CreateSubcontextAttrs(ctx, name, attrsOf(e)); err != nil && !errors.Is(err, core.ErrAlreadyBound) {
			return err
		}
	default:
		if existing != nil && existing.isCtx {
			if err := m.destDir.DestroySubcontext(ctx, name); err != nil && !errors.Is(err, core.ErrNotFound) {
				return err
			}
		}
		// RebindAttrs with non-nil attrs replaces both value and
		// attributes atomically — idempotent upsert.
		if err := m.destDir.RebindAttrs(ctx, name, e.obj, attrsOf(e)); err != nil {
			return err
		}
	}
	m.applied.Add(1)
	m.mApplied.Inc()
	m.clearTomb(p)
	return nil
}

// reconcileAttrs drives the destination context's attributes to want.
func (m *Mirror) reconcileAttrs(ctx context.Context, name string, want, have *core.Attributes) error {
	var mods []core.AttributeMod
	for _, a := range want.All() {
		mods = append(mods, core.AttributeMod{Op: core.ModReplace, Attr: a})
	}
	for _, id := range have.IDs() {
		if _, ok := want.Get(id); !ok {
			mods = append(mods, core.AttributeMod{Op: core.ModRemove, Attr: core.Attribute{ID: id}})
		}
	}
	if len(mods) == 0 {
		return nil
	}
	return m.destDir.ModifyAttributes(ctx, name, mods)
}

// deleteDest removes one entry and records its tombstone.
func (m *Mirror) deleteDest(ctx context.Context, p string, isCtx bool) error {
	rel, err := core.ParseName(p)
	if err != nil {
		return err
	}
	name := m.destBase.Concat(rel).String()
	if isCtx {
		err = m.destDir.DestroySubcontext(ctx, name)
	} else {
		err = m.destDir.Unbind(ctx, name)
	}
	if err != nil && !errors.Is(err, core.ErrNotFound) {
		return err
	}
	m.deleted.Add(1)
	m.mDeleted.Inc()
	m.setTomb(p)
	return nil
}

func (m *Mirror) setTomb(p string) {
	now := time.Now()
	m.mu.Lock()
	m.tombs[p] = now
	j := m.journal
	m.mu.Unlock()
	if j != nil {
		j.tomb(p, now)
	}
}

func (m *Mirror) clearTomb(p string) {
	m.mu.Lock()
	_, had := m.tombs[p]
	delete(m.tombs, p)
	j := m.journal
	m.mu.Unlock()
	if had && j != nil {
		j.untomb(p)
	}
}

// applyEvent reconciles one watched path by re-reading the source —
// the deterministic source-wins rule. The event's payload is
// deliberately ignored: events can arrive out of order relative to the
// snapshot walk (registration happens before the walk), and re-reading
// makes every interleaving converge on the source's current state.
// Renames arrive as two paths, so they fall back to a full resync.
func (m *Mirror) applyEvent(ctx context.Context, ev event) error {
	if ev.typ == core.EventObjectRenamed {
		return m.resync(ctx)
	}
	src, err := m.ensureSource(ctx)
	if err != nil {
		return err
	}
	rel, err := core.ParseName(ev.name)
	if err != nil || rel.IsEmpty() {
		return m.resync(ctx)
	}
	full := m.srcBase.Concat(rel)
	obj, err := src.Lookup(ctx, full.String())
	switch {
	case errors.Is(err, core.ErrNotFound):
		// Deleted at the source. The subtree under it (if it was a
		// context) produces its own removal events; a full resync
		// backstops any that were dropped.
		m.mu.Lock()
		dead := m.tombs[ev.name]
		m.mu.Unlock()
		if !dead.IsZero() {
			return nil // already dead; stale event
		}
		return m.deleteEventTarget(ctx, rel)
	case err != nil:
		var cpe *core.CannotProceedError
		if errors.As(err, &cpe) {
			if url, ok := cpe.Resolved.(string); ok && cpe.RemainingName.IsEmpty() {
				ref := core.NewContextReference(url)
				fp, _ := core.Marshal(ref)
				return m.upsertDest(ctx, ev.name, &entry{obj: ref, fp: fp}, nil)
			}
			return m.resync(ctx)
		}
		return err
	}
	e := &entry{}
	if _, isCtx := obj.(core.Context); isCtx {
		e.isCtx = true
	} else {
		fp, ferr := core.Marshal(obj)
		if ferr != nil {
			return nil // unmirrorable value; skip
		}
		e.obj, e.fp = obj, fp
	}
	if dir, ok := src.(core.DirContext); ok {
		if attrs, aerr := dir.GetAttributes(ctx, full.String()); aerr == nil {
			e.attrs = attrs
		} else if isTransportOrCtx(aerr) {
			return aerr
		}
	}
	existing, err := m.destEntry(ctx, rel)
	if err != nil {
		return err
	}
	if existing != nil && e.equal(existing) {
		return nil // converged already; duplicate delivery is a no-op
	}
	return m.upsertDest(ctx, ev.name, e, existing)
}

// deleteEventTarget removes rel from the destination, clearing any
// subtree under it (event-driven deletes can observe the parent's
// removal before every child event has been delivered).
func (m *Mirror) deleteEventTarget(ctx context.Context, rel core.Name) error {
	name := m.destBase.Concat(rel).String()
	obj, err := m.destRoot.Lookup(ctx, name)
	if errors.Is(err, core.ErrNotFound) {
		return nil
	}
	if err != nil {
		return err
	}
	if _, isCtx := obj.(core.Context); isCtx {
		if err := m.clearDestSubtree(ctx, rel); err != nil {
			return err
		}
		return m.deleteDest(ctx, rel.String(), true)
	}
	return m.deleteDest(ctx, rel.String(), false)
}

func (m *Mirror) clearDestSubtree(ctx context.Context, rel core.Name) error {
	name := m.destBase.Concat(rel).String()
	bindings, err := m.destRoot.ListBindings(ctx, name)
	if err != nil {
		return err
	}
	for _, b := range bindings {
		childRel := rel.Append(b.Name)
		if _, isCtx := b.Object.(core.Context); isCtx || b.Class == core.ContextReferenceClass {
			if err := m.clearDestSubtree(ctx, childRel); err != nil {
				return err
			}
			if err := m.deleteDest(ctx, childRel.String(), true); err != nil {
				return err
			}
		} else if err := m.deleteDest(ctx, childRel.String(), false); err != nil {
			return err
		}
	}
	return nil
}

// destEntry reads the destination's current entry at rel, nil if absent.
func (m *Mirror) destEntry(ctx context.Context, rel core.Name) (*entry, error) {
	name := m.destBase.Concat(rel).String()
	obj, err := m.destRoot.Lookup(ctx, name)
	if errors.Is(err, core.ErrNotFound) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	e := &entry{}
	if _, isCtx := obj.(core.Context); isCtx {
		e.isCtx = true
	} else {
		fp, ferr := core.Marshal(obj)
		if ferr != nil {
			return nil, nil
		}
		e.obj, e.fp = obj, fp
	}
	if attrs, aerr := m.destDir.GetAttributes(ctx, name); aerr == nil {
		e.attrs = attrs
	}
	return e, nil
}
