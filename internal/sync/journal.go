package sync

import (
	"encoding/json"
	stdsync "sync"
	"time"

	"gondi/internal/wal"
)

// journal persists a mirror's resume state — the delta-pull cursor and
// the deletion tombstones — through the write-ahead log, so a restarted
// mirror picks up where it stopped instead of re-applying deletions or
// re-walking from a blank cursor. Records are small JSON frames:
//
//	{"t":"cursor","c":"soa:42"}
//	{"t":"tomb","p":"printers/lw2","at":"2026-08-08T..."}
//	{"t":"untomb","p":"printers/lw2"}
//
// The log compacts itself once the append count passes a threshold:
// rotate, write one snapshot of the live state, prune the old segments.
type journal struct {
	mu      stdsync.Mutex
	log     *wal.Log
	appends int

	// live state, mirrored here so compaction can snapshot without
	// reaching back into the Mirror.
	cur   string
	tombs map[string]time.Time
}

// compactEvery bounds journal growth: after this many appends the log
// is rewritten as one snapshot.
const compactEvery = 4096

type jrec struct {
	T  string    `json:"t"`
	C  string    `json:"c,omitempty"`
	P  string    `json:"p,omitempty"`
	At time.Time `json:"at,omitempty"`
}

func openJournal(dir string) (*journal, error) {
	log, err := wal.Open(dir)
	if err != nil {
		return nil, err
	}
	return &journal{log: log, tombs: map[string]time.Time{}}, nil
}

// replay restores the persisted cursor and tombstones.
func (j *journal) replay() (cursor string, tombs map[string]time.Time, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err = j.log.Replay(func(payload []byte) error {
		var r jrec
		if err := json.Unmarshal(payload, &r); err != nil {
			return err
		}
		switch r.T {
		case "cursor":
			j.cur = r.C
		case "tomb":
			j.tombs[r.P] = r.At
		case "untomb":
			delete(j.tombs, r.P)
		}
		return nil
	})
	if err != nil {
		return "", nil, err
	}
	tombs = make(map[string]time.Time, len(j.tombs))
	for k, v := range j.tombs {
		tombs[k] = v
	}
	return j.cur, tombs, nil
}

func (j *journal) cursor(c string) {
	j.append(jrec{T: "cursor", C: c}, func() { j.cur = c })
}

func (j *journal) tomb(p string, at time.Time) {
	j.append(jrec{T: "tomb", P: p, At: at}, func() { j.tombs[p] = at })
}

func (j *journal) untomb(p string) {
	j.append(jrec{T: "untomb", P: p}, func() { delete(j.tombs, p) })
}

// append writes one record, applies it to the live state, syncs, and
// compacts when due. Journal write failures are deliberately swallowed:
// the journal is an optimization (resume state), not correctness — a
// mirror with no journal simply does one extra full resync on restart.
func (j *journal) append(r jrec, apply func()) {
	payload, err := json.Marshal(r)
	if err != nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.log == nil {
		return
	}
	apply()
	if err := j.log.Append(payload); err != nil {
		return
	}
	j.log.Sync()
	j.appends++
	if j.appends >= compactEvery {
		j.compactLocked()
	}
}

// compactLocked rewrites the log as one snapshot of the live state.
func (j *journal) compactLocked() {
	boundary, err := j.log.Rotate()
	if err != nil {
		return
	}
	ok := true
	write := func(r jrec) {
		if !ok {
			return
		}
		payload, err := json.Marshal(r)
		if err != nil {
			ok = false
			return
		}
		if err := j.log.Append(payload); err != nil {
			ok = false
		}
	}
	if j.cur != "" {
		write(jrec{T: "cursor", C: j.cur})
	}
	for p, at := range j.tombs {
		write(jrec{T: "tomb", P: p, At: at})
	}
	if !ok {
		return // keep the pre-rotation segments; nothing is lost
	}
	if err := j.log.Sync(); err != nil {
		return
	}
	j.log.Prune(boundary)
	j.appends = 0
}

func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.log != nil {
		j.log.Sync()
		j.log.Close()
		j.log = nil
	}
}
