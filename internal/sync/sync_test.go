package sync_test

// Unit tests for the sync engine's degraded-read path: the fallback
// middleware must serve mirrored reads while the origin is down, stay
// typed when the mirror is down too, and never divert writes. The
// "flk" provider built here is a mem-backed registry with two kill
// switches — one failing opens, one failing operations — so each
// divert path is reachable deterministically.

import (
	"context"
	"errors"
	stdsync "sync"
	"sync/atomic"
	"testing"
	"time"

	"gondi/internal/core"
	"gondi/internal/provider/memsp"
	"gondi/internal/retry"
	"gondi/internal/sync"
)

// flaky is the per-space kill-switch state.
type flaky struct {
	openDown atomic.Bool // fail OpenURL with a transport error
	opDown   atomic.Bool // fail every operation with a transport error
}

var (
	flakyMu     stdsync.Mutex
	flakySpaces = map[string]*flaky{}
)

func flakySpace(name string) *flaky {
	flakyMu.Lock()
	defer flakyMu.Unlock()
	f, ok := flakySpaces[name]
	if !ok {
		f = &flaky{}
		flakySpaces[name] = f
	}
	return f
}

func commErr(space string) error {
	return &core.CommunicationError{Endpoint: "flk://" + space, Err: errors.New("flk: injected outage")}
}

// failCtx wraps a memsp context; when the space's opDown switch is on,
// every operation fails as the wire would.
type failCtx struct {
	core.DirContext
	space string
	f     *flaky
}

func (c *failCtx) err() error {
	if c.f.opDown.Load() {
		return commErr(c.space)
	}
	return nil
}

func (c *failCtx) Lookup(ctx context.Context, name string) (any, error) {
	if err := c.err(); err != nil {
		return nil, err
	}
	return c.DirContext.Lookup(ctx, name)
}

func (c *failCtx) List(ctx context.Context, name string) ([]core.NameClassPair, error) {
	if err := c.err(); err != nil {
		return nil, err
	}
	return c.DirContext.List(ctx, name)
}

func (c *failCtx) ListBindings(ctx context.Context, name string) ([]core.Binding, error) {
	if err := c.err(); err != nil {
		return nil, err
	}
	return c.DirContext.ListBindings(ctx, name)
}

func (c *failCtx) GetAttributes(ctx context.Context, name string, attrIDs ...string) (*core.Attributes, error) {
	if err := c.err(); err != nil {
		return nil, err
	}
	return c.DirContext.GetAttributes(ctx, name, attrIDs...)
}

func (c *failCtx) Search(ctx context.Context, name, filter string, controls *core.SearchControls) ([]core.SearchResult, error) {
	if err := c.err(); err != nil {
		return nil, err
	}
	return c.DirContext.Search(ctx, name, filter, controls)
}

func (c *failCtx) Bind(ctx context.Context, name string, obj any) error {
	if err := c.err(); err != nil {
		return err
	}
	return c.DirContext.Bind(ctx, name, obj)
}

func (c *failCtx) Rebind(ctx context.Context, name string, obj any) error {
	if err := c.err(); err != nil {
		return err
	}
	return c.DirContext.Rebind(ctx, name, obj)
}

func (c *failCtx) RebindAttrs(ctx context.Context, name string, obj any, attrs *core.Attributes) error {
	if err := c.err(); err != nil {
		return err
	}
	return c.DirContext.RebindAttrs(ctx, name, obj, attrs)
}

func (c *failCtx) Unbind(ctx context.Context, name string) error {
	if err := c.err(); err != nil {
		return err
	}
	return c.DirContext.Unbind(ctx, name)
}

func (c *failCtx) CreateSubcontext(ctx context.Context, name string) (core.Context, error) {
	if err := c.err(); err != nil {
		return nil, err
	}
	return c.DirContext.CreateSubcontext(ctx, name)
}

func (c *failCtx) CreateSubcontextAttrs(ctx context.Context, name string, attrs *core.Attributes) (core.DirContext, error) {
	if err := c.err(); err != nil {
		return nil, err
	}
	return c.DirContext.CreateSubcontextAttrs(ctx, name, attrs)
}

func (c *failCtx) DestroySubcontext(ctx context.Context, name string) error {
	if err := c.err(); err != nil {
		return err
	}
	return c.DirContext.DestroySubcontext(ctx, name)
}

func (c *failCtx) Watch(ctx context.Context, target string, scope core.SearchScope, l core.Listener) (func(), error) {
	if err := c.err(); err != nil {
		return nil, err
	}
	ec, ok := c.DirContext.(core.EventContext)
	if !ok {
		return nil, core.Errf("watch", target, core.ErrNotSupported)
	}
	return ec.Watch(ctx, target, scope, l)
}

func registerTestProviders() {
	memsp.Register()
	sync.Register()
	core.RegisterProvider("flk", core.ProviderFunc(func(ctx context.Context, rawURL string, env map[string]any) (core.Context, core.Name, error) {
		u, err := core.ParseURLName(rawURL)
		if err != nil {
			return nil, core.Name{}, err
		}
		f := flakySpace(u.Authority)
		if f.openDown.Load() {
			return nil, core.Name{}, commErr(u.Authority)
		}
		inner := memsp.NewContext(memsp.Space("flk-"+u.Authority), env, rawURL)
		return &failCtx{DirContext: inner, space: u.Authority, f: f}, u.Path, nil
	}))
}

// backdoor returns a direct handle on a flk space's tree, bypassing the
// kill switches.
func backdoor(space string) core.DirContext {
	return memsp.NewContext(memsp.Space("flk-"+space), map[string]any{}, "mem://flk-"+space)
}

func testRetry() retry.Policy {
	return retry.Policy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
}

// startMirror seeds the source space, starts a mirror over it, and
// waits for convergence of the seeded names.
func startMirror(t *testing.T, space string, seed map[string]string) *sync.Mirror {
	t.Helper()
	ctx := context.Background()
	bd := backdoor(space)
	if _, err := bd.CreateSubcontext(ctx, "data"); err != nil && !errors.Is(err, core.ErrAlreadyBound) {
		t.Fatal(err)
	}
	for rel, val := range seed {
		if err := bd.Rebind(ctx, "data/"+rel, val); err != nil {
			t.Fatal(err)
		}
	}
	m, err := sync.New(ctx, sync.Config{
		Name:      t.Name(),
		SourceURL: "flk://" + space + "/data",
		DestURL:   "mem://" + space + "-mirror/m",
		Interval:  25 * time.Millisecond,
		Retry:     testRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Stop(); memsp.ResetSpaces() })

	verify, base, err := core.OpenURL(ctx, "mem://"+space+"-mirror/m", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer verify.Close()
	deadline := time.Now().Add(10 * time.Second)
	for rel := range seed {
		name := base.Concat(core.MustParseName(rel)).String()
		for {
			if _, err := verify.Lookup(ctx, name); err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("mirror never converged on %s: %+v", rel, m.Status())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return m
}

func TestFallbackServesReadsThroughOriginOutage(t *testing.T) {
	registerTestProviders()
	space := "outage-a"
	m := startMirror(t, space, map[string]string{"svc0": "v0", "svc1": "v1"})

	ctx := context.Background()
	ic, err := core.Open(ctx, core.WithMirrorFallback())
	if err != nil {
		t.Fatal(err)
	}
	defer ic.Close()

	url := "flk://" + space + "/data/svc0"
	if v, err := ic.Lookup(ctx, url); err != nil || v != "v0" {
		t.Fatalf("healthy lookup = %v, %v", v, err)
	}

	// Operations fail while the open still succeeds: the fbCtx wrapper's
	// per-read divert path.
	f := flakySpace(space)
	f.opDown.Store(true)
	t.Cleanup(func() { f.opDown.Store(false); f.openDown.Store(false) })
	if v, err := ic.Lookup(ctx, url); err != nil || v != "v0" {
		t.Fatalf("mirror-served lookup (op outage) = %v, %v", v, err)
	}

	// Opens fail too: the mirrorRoot divert path.
	f.openDown.Store(true)
	if v, err := ic.Lookup(ctx, url); err != nil || v != "v0" {
		t.Fatalf("mirror-served lookup (open outage) = %v, %v", v, err)
	}
	// List through the mirror.
	if pairs, err := ic.List(ctx, "flk://"+space+"/data"); err != nil || len(pairs) != 2 {
		t.Fatalf("mirror-served list = %v, %v", pairs, err)
	}
	// The mirror never silently absorbs a miss: an uncovered name under
	// the same authority fails with the origin's typed error.
	var comm *core.CommunicationError
	if _, err := ic.Lookup(ctx, "flk://"+space+"/elsewhere/x"); !errors.As(err, &comm) {
		t.Fatalf("uncovered name during outage: %v, want *core.CommunicationError", err)
	}
	// A name the mirror covers but the source never held is a legitimate
	// NotFound from the replica.
	if _, err := ic.Lookup(ctx, "flk://"+space+"/data/ghost"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("covered-but-absent name: %v, want ErrNotFound", err)
	}
	// Every mirror answer was counted — degradation is never silent.
	if s := m.Status(); s.Serves == 0 {
		t.Fatalf("mirror served reads without counting them: %+v", s)
	}

	// Writes never divert: the mirror is read-only degradation.
	if err := ic.Bind(ctx, "flk://"+space+"/data/new", "x"); !errors.As(err, &comm) {
		t.Fatalf("write during outage = %v, want the origin's *core.CommunicationError", err)
	}
	// And the replica did not absorb the write.
	if _, err := ic.Lookup(ctx, "flk://"+space+"/data/new"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("diverted write reached the mirror: %v", err)
	}
}

func TestFallbackStaysTypedWhenMirrorAlsoDown(t *testing.T) {
	registerTestProviders()
	space := "outage-b"
	// The mirror's destination lives on its own flaky space, so both
	// sides of the degradation can be severed.
	ctx := context.Background()
	bd := backdoor(space)
	if _, err := bd.CreateSubcontext(ctx, "data"); err != nil {
		t.Fatal(err)
	}
	if err := bd.Rebind(ctx, "data/svc", "v"); err != nil {
		t.Fatal(err)
	}
	m, err := sync.New(ctx, sync.Config{
		Name:      t.Name(),
		SourceURL: "flk://" + space + "/data",
		DestURL:   "flk://" + space + "-dst/m",
		Interval:  25 * time.Millisecond,
		Retry:     testRetry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Stop(); memsp.ResetSpaces() })

	ic, err := core.Open(ctx, core.WithMirrorFallback())
	if err != nil {
		t.Fatal(err)
	}
	defer ic.Close()
	url := "flk://" + space + "/data/svc"
	// Converge on the destination itself (a fallback read would be
	// satisfied by the still-healthy origin and prove nothing).
	dstTree := backdoor(space + "-dst")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v, _ := dstTree.Lookup(ctx, "m/svc"); v == "v" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mirror never converged: %+v", m.Status())
		}
		time.Sleep(10 * time.Millisecond)
	}

	src, dst := flakySpace(space), flakySpace(space+"-dst")
	src.opDown.Store(true)
	t.Cleanup(func() { src.opDown.Store(false); dst.opDown.Store(false) })

	// Origin down, mirror up: served.
	if v, err := ic.Lookup(ctx, url); err != nil || v != "v" {
		t.Fatalf("mirror-served lookup = %v, %v", v, err)
	}

	// Both down: the caller gets the ORIGIN's typed transport error —
	// not the mirror's, not a nil, not a hang.
	dst.opDown.Store(true)
	var comm *core.CommunicationError
	_, err = ic.Lookup(ctx, url)
	if !errors.As(err, &comm) {
		t.Fatalf("both-down lookup = %v, want *core.CommunicationError", err)
	}
	if comm.Endpoint != "flk://"+space {
		t.Fatalf("both-down error names %q, want the origin %q", comm.Endpoint, "flk://"+space)
	}
}
