package sync

import (
	"context"
	"errors"
	stdsync "sync"
	"time"

	"gondi/internal/breaker"
	"gondi/internal/core"
	"gondi/internal/obs"
	"gondi/internal/retry"
)

// The mirror-fallback middleware: graceful degradation for reads. It
// sits innermost in the InitialContext middleware stack (inside the
// cache — see core.WithMirrorFallback), so when resolution or a read
// against an origin fails with a transport-class error and an active
// mirror covers the name, the answer comes from the mirror's
// materialized replica. Never silently: every diverted open and served
// read is counted (gondi_sync_mirror_serves_total) and annotated on the
// federation trace (mirror=open / mirror=serve), and writes never
// divert — a mirror is a read-only degraded mode, not a second master.

// Register installs the sync package's hooks into core and obs:
// the FallbackFactory behind core.WithMirrorFallback, and the
// /debug/vars "sync" section listing every mirror's Status. Call it
// alongside the provider Register calls.
func Register() {
	core.RegisterFallbackFactory(func(env map[string]any) core.Middleware {
		return &middleware{}
	})
	publishStatus()
}

var publishOnce stdsync.Once

// publishStatus exposes mirror statuses at /debug/vars under "sync".
// Idempotent; called from Register and from the first Mirror.Start so
// statuses are visible even when no context opted into the fallback.
func publishStatus() {
	publishOnce.Do(func() {
		obs.RegisterVarsSection("sync", func() any { return Statuses() })
	})
}

// transportClass mirrors the cache's classification: failures that mean
// "the backend is unreachable", as opposed to semantic naming errors.
// Context cancellation is the caller's choice, never grounds to divert.
func transportClass(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ce *core.CommunicationError
	var sue *core.ServiceUnavailableError
	var sbe *core.ServerBusyError
	return errors.As(err, &ce) || errors.As(err, &sue) || errors.As(err, &sbe) ||
		errors.Is(err, breaker.ErrOpen) || retry.Transient(err)
}

// middleware implements core.Middleware + core.ChainedMiddleware.
type middleware struct{}

// WrapContext leaves the default context alone: the fallback applies to
// URL-resolved origins, which is where mirrors point.
func (m *middleware) WrapContext(c core.Context) core.Context { return c }

func (m *middleware) Close() error { return nil }

// OpenURL terminates the chain when the middleware runs standalone.
func (m *middleware) OpenURL(ctx context.Context, rawURL string, env map[string]any) (core.Context, core.Name, error) {
	return m.OpenURLNext(ctx, rawURL, env, core.OpenURL)
}

// OpenURLNext resolves through the next layer. On success against a
// mirrored origin it wraps the context so per-read failures can divert
// later; on transport-class failure against a mirrored origin it
// returns a mirror-backed root instead of the error.
func (m *middleware) OpenURLNext(ctx context.Context, rawURL string, env map[string]any, next core.OpenURLFunc) (core.Context, core.Name, error) {
	c, rest, err := next(ctx, rawURL, env)
	u, perr := core.ParseURLName(rawURL)
	if perr != nil {
		return c, rest, err
	}
	if err == nil {
		if coversAuthority(u.Scheme, u.Authority) {
			return &fbCtx{inner: c, scheme: u.Scheme, authority: u.Authority}, rest, nil
		}
		return c, rest, nil
	}
	if !transportClass(err) || !coversAuthority(u.Scheme, u.Authority) {
		return c, rest, err
	}
	obs.MirrorEvent(ctx, "open")
	return &mirrorRoot{scheme: u.Scheme, authority: u.Authority, origErr: err}, u.Path, nil
}

// serve answers one read op from the mirror covering full, if any.
// Returns (result, true) when the mirror answered — including with a
// legitimate semantic error like ErrNotFound — and (_, false) when no
// mirror covers the name or the mirror itself is unreachable (the
// caller then surfaces the origin's error, not the mirror's).
func serve[T any](ctx context.Context, scheme, authority, op string, full core.Name,
	read func(m *Mirror, dest core.Name) (T, error)) (T, error, bool) {
	var zero T
	m, rel, ok := lookupMirror(scheme, authority, full)
	if !ok {
		return zero, nil, false
	}
	v, err := read(m, m.destBase.Concat(rel))
	if err != nil && transportClass(err) {
		return zero, nil, false
	}
	m.serves.Add(1)
	obs.Default.Counter("gondi_sync_mirror_serves_total",
		"Reads answered from a mirror because the origin was unreachable.",
		obs.Label{K: "mirror", V: m.name}, obs.Label{K: "op", V: op}).Inc()
	obs.MirrorEvent(ctx, "serve")
	return v, err, true
}

// fbCtx wraps an origin context opened while its authority is mirrored:
// reads that fail transport-class divert to the mirror; writes, watches
// and everything else pass straight through. base tracks how deep this
// wrapper sits below the provider root, so relative names map into the
// mirror registry's provider-root-relative namespace.
type fbCtx struct {
	inner     core.Context
	scheme    string
	authority string
	base      core.Name
}

var _ core.DirContext = (*fbCtx)(nil)
var _ core.EventContext = (*fbCtx)(nil)

// Unwrap lets obs.Uninstrument strip the wrapper.
func (f *fbCtx) Unwrap() core.Context { return f.inner }

func (f *fbCtx) full(name string) (core.Name, bool) {
	n, err := core.ParseName(name)
	if err != nil {
		return core.Name{}, false
	}
	return f.base.Concat(n), true
}

func (f *fbCtx) wrapChild(name string, v any) any {
	c, ok := v.(core.Context)
	if !ok {
		return v
	}
	full, ok := f.full(name)
	if !ok {
		return v
	}
	return &fbCtx{inner: c, scheme: f.scheme, authority: f.authority, base: full}
}

func (f *fbCtx) Lookup(ctx context.Context, name string) (any, error) {
	v, err := f.inner.Lookup(ctx, name)
	if err == nil {
		return f.wrapChild(name, v), nil
	}
	if !transportClass(err) {
		return v, err
	}
	full, ok := f.full(name)
	if !ok {
		return v, err
	}
	if mv, merr, served := serve(ctx, f.scheme, f.authority, "lookup", full,
		func(m *Mirror, dest core.Name) (any, error) { return m.destRoot.Lookup(ctx, dest.String()) }); served {
		return mv, merr
	}
	return v, err
}

func (f *fbCtx) LookupLink(ctx context.Context, name string) (any, error) {
	v, err := f.inner.LookupLink(ctx, name)
	if err == nil || !transportClass(err) {
		return v, err
	}
	full, ok := f.full(name)
	if !ok {
		return v, err
	}
	if mv, merr, served := serve(ctx, f.scheme, f.authority, "lookupLink", full,
		func(m *Mirror, dest core.Name) (any, error) { return m.destRoot.LookupLink(ctx, dest.String()) }); served {
		return mv, merr
	}
	return v, err
}

func (f *fbCtx) List(ctx context.Context, name string) ([]core.NameClassPair, error) {
	v, err := f.inner.List(ctx, name)
	if err == nil || !transportClass(err) {
		return v, err
	}
	full, ok := f.full(name)
	if !ok {
		return v, err
	}
	if mv, merr, served := serve(ctx, f.scheme, f.authority, "list", full,
		func(m *Mirror, dest core.Name) ([]core.NameClassPair, error) {
			return m.destRoot.List(ctx, dest.String())
		}); served {
		return mv, merr
	}
	return v, err
}

func (f *fbCtx) ListBindings(ctx context.Context, name string) ([]core.Binding, error) {
	v, err := f.inner.ListBindings(ctx, name)
	if err == nil || !transportClass(err) {
		return v, err
	}
	full, ok := f.full(name)
	if !ok {
		return v, err
	}
	if mv, merr, served := serve(ctx, f.scheme, f.authority, "listBindings", full,
		func(m *Mirror, dest core.Name) ([]core.Binding, error) {
			return m.destRoot.ListBindings(ctx, dest.String())
		}); served {
		return mv, merr
	}
	return v, err
}

func (f *fbCtx) GetAttributes(ctx context.Context, name string, attrIDs ...string) (*core.Attributes, error) {
	d, ok := f.inner.(core.DirContext)
	if !ok {
		return nil, core.Errf("getAttributes", name, core.ErrNotSupported)
	}
	v, err := d.GetAttributes(ctx, name, attrIDs...)
	if err == nil || !transportClass(err) {
		return v, err
	}
	full, fok := f.full(name)
	if !fok {
		return v, err
	}
	if mv, merr, served := serve(ctx, f.scheme, f.authority, "getAttributes", full,
		func(m *Mirror, dest core.Name) (*core.Attributes, error) {
			return m.destDir.GetAttributes(ctx, dest.String(), attrIDs...)
		}); served {
		return mv, merr
	}
	return v, err
}

func (f *fbCtx) Search(ctx context.Context, name, filterStr string, controls *core.SearchControls) ([]core.SearchResult, error) {
	d, ok := f.inner.(core.DirContext)
	if !ok {
		return nil, core.Errf("search", name, core.ErrNotSupported)
	}
	v, err := d.Search(ctx, name, filterStr, controls)
	if err == nil || !transportClass(err) {
		return v, err
	}
	full, fok := f.full(name)
	if !fok {
		return v, err
	}
	if mv, merr, served := serve(ctx, f.scheme, f.authority, "search", full,
		func(m *Mirror, dest core.Name) ([]core.SearchResult, error) {
			return m.destDir.Search(ctx, dest.String(), filterStr, controls)
		}); served {
		return mv, merr
	}
	return v, err
}

// Writes pass through untouched: a mirror never accepts writes on the
// origin's behalf (that would fork the namespace — the origin heals and
// the divergence has no merge rule).

func (f *fbCtx) Bind(ctx context.Context, name string, obj any) error {
	return f.inner.Bind(ctx, name, obj)
}
func (f *fbCtx) Rebind(ctx context.Context, name string, obj any) error {
	return f.inner.Rebind(ctx, name, obj)
}
func (f *fbCtx) Unbind(ctx context.Context, name string) error { return f.inner.Unbind(ctx, name) }
func (f *fbCtx) Rename(ctx context.Context, oldName, newName string) error {
	return f.inner.Rename(ctx, oldName, newName)
}
func (f *fbCtx) CreateSubcontext(ctx context.Context, name string) (core.Context, error) {
	c, err := f.inner.CreateSubcontext(ctx, name)
	if err != nil {
		return nil, err
	}
	return f.wrapChild(name, c).(core.Context), nil
}
func (f *fbCtx) DestroySubcontext(ctx context.Context, name string) error {
	return f.inner.DestroySubcontext(ctx, name)
}
func (f *fbCtx) BindAttrs(ctx context.Context, name string, obj any, attrs *core.Attributes) error {
	if d, ok := f.inner.(core.DirContext); ok {
		return d.BindAttrs(ctx, name, obj, attrs)
	}
	return core.Errf("bind", name, core.ErrNotSupported)
}
func (f *fbCtx) RebindAttrs(ctx context.Context, name string, obj any, attrs *core.Attributes) error {
	if d, ok := f.inner.(core.DirContext); ok {
		return d.RebindAttrs(ctx, name, obj, attrs)
	}
	return core.Errf("rebind", name, core.ErrNotSupported)
}
func (f *fbCtx) ModifyAttributes(ctx context.Context, name string, mods []core.AttributeMod) error {
	if d, ok := f.inner.(core.DirContext); ok {
		return d.ModifyAttributes(ctx, name, mods)
	}
	return core.Errf("modifyAttributes", name, core.ErrNotSupported)
}
func (f *fbCtx) CreateSubcontextAttrs(ctx context.Context, name string, attrs *core.Attributes) (core.DirContext, error) {
	d, ok := f.inner.(core.DirContext)
	if !ok {
		return nil, core.Errf("createSubcontext", name, core.ErrNotSupported)
	}
	c, err := d.CreateSubcontextAttrs(ctx, name, attrs)
	if err != nil {
		return nil, err
	}
	return f.wrapChild(name, c).(core.DirContext), nil
}

// Watch never diverts: a mirror cannot observe origin changes the
// origin is too dead to emit.
func (f *fbCtx) Watch(ctx context.Context, target string, scope core.SearchScope, l core.Listener) (func(), error) {
	if ec, ok := f.inner.(core.EventContext); ok {
		return ec.Watch(ctx, target, scope, l)
	}
	return nil, core.Errf("watch", target, core.ErrNotSupported)
}

// AdviseTTL and SyncCursor forward structurally (the cache sits outside
// this wrapper and asks through it).
func (f *fbCtx) AdviseTTL(name string) (time.Duration, bool) {
	type ttlAdvisor interface {
		AdviseTTL(name string) (time.Duration, bool)
	}
	if a, ok := f.inner.(ttlAdvisor); ok {
		return a.AdviseTTL(name)
	}
	return 0, false
}

func (f *fbCtx) SyncCursor(ctx context.Context, name string) (string, bool, error) {
	if cs, ok := f.inner.(CursorSource); ok {
		return cs.SyncCursor(ctx, name)
	}
	return "", false, nil
}

func (f *fbCtx) NameInNamespace() (string, error) { return f.inner.NameInNamespace() }
func (f *fbCtx) Environment() map[string]any      { return f.inner.Environment() }
func (f *fbCtx) Close() error                     { return f.inner.Close() }

// mirrorRoot stands in for an origin whose OPEN already failed: every
// read is answered from whichever mirror covers the name; everything
// else — writes, watches, uncovered names — fails with the ORIGIN's
// typed error, so callers see exactly what is degraded and why.
type mirrorRoot struct {
	scheme    string
	authority string
	origErr   error
}

var _ core.DirContext = (*mirrorRoot)(nil)

func (r *mirrorRoot) full(name string) (core.Name, bool) {
	n, err := core.ParseName(name)
	if err != nil {
		return core.Name{}, false
	}
	return n, true
}

func (r *mirrorRoot) Lookup(ctx context.Context, name string) (any, error) {
	if full, ok := r.full(name); ok {
		if v, err, served := serve(ctx, r.scheme, r.authority, "lookup", full,
			func(m *Mirror, dest core.Name) (any, error) { return m.destRoot.Lookup(ctx, dest.String()) }); served {
			return v, err
		}
	}
	return nil, r.origErr
}

func (r *mirrorRoot) LookupLink(ctx context.Context, name string) (any, error) {
	if full, ok := r.full(name); ok {
		if v, err, served := serve(ctx, r.scheme, r.authority, "lookupLink", full,
			func(m *Mirror, dest core.Name) (any, error) { return m.destRoot.LookupLink(ctx, dest.String()) }); served {
			return v, err
		}
	}
	return nil, r.origErr
}

func (r *mirrorRoot) List(ctx context.Context, name string) ([]core.NameClassPair, error) {
	if full, ok := r.full(name); ok {
		if v, err, served := serve(ctx, r.scheme, r.authority, "list", full,
			func(m *Mirror, dest core.Name) ([]core.NameClassPair, error) {
				return m.destRoot.List(ctx, dest.String())
			}); served {
			return v, err
		}
	}
	return nil, r.origErr
}

func (r *mirrorRoot) ListBindings(ctx context.Context, name string) ([]core.Binding, error) {
	if full, ok := r.full(name); ok {
		if v, err, served := serve(ctx, r.scheme, r.authority, "listBindings", full,
			func(m *Mirror, dest core.Name) ([]core.Binding, error) {
				return m.destRoot.ListBindings(ctx, dest.String())
			}); served {
			return v, err
		}
	}
	return nil, r.origErr
}

func (r *mirrorRoot) GetAttributes(ctx context.Context, name string, attrIDs ...string) (*core.Attributes, error) {
	if full, ok := r.full(name); ok {
		if v, err, served := serve(ctx, r.scheme, r.authority, "getAttributes", full,
			func(m *Mirror, dest core.Name) (*core.Attributes, error) {
				return m.destDir.GetAttributes(ctx, dest.String(), attrIDs...)
			}); served {
			return v, err
		}
	}
	return nil, r.origErr
}

func (r *mirrorRoot) Search(ctx context.Context, name, filterStr string, controls *core.SearchControls) ([]core.SearchResult, error) {
	if full, ok := r.full(name); ok {
		if v, err, served := serve(ctx, r.scheme, r.authority, "search", full,
			func(m *Mirror, dest core.Name) ([]core.SearchResult, error) {
				return m.destDir.Search(ctx, dest.String(), filterStr, controls)
			}); served {
			return v, err
		}
	}
	return nil, r.origErr
}

func (r *mirrorRoot) Bind(ctx context.Context, name string, obj any) error   { return r.origErr }
func (r *mirrorRoot) Rebind(ctx context.Context, name string, obj any) error { return r.origErr }
func (r *mirrorRoot) Unbind(ctx context.Context, name string) error          { return r.origErr }
func (r *mirrorRoot) Rename(ctx context.Context, oldName, newName string) error {
	return r.origErr
}
func (r *mirrorRoot) CreateSubcontext(ctx context.Context, name string) (core.Context, error) {
	return nil, r.origErr
}
func (r *mirrorRoot) DestroySubcontext(ctx context.Context, name string) error { return r.origErr }
func (r *mirrorRoot) BindAttrs(ctx context.Context, name string, obj any, attrs *core.Attributes) error {
	return r.origErr
}
func (r *mirrorRoot) RebindAttrs(ctx context.Context, name string, obj any, attrs *core.Attributes) error {
	return r.origErr
}
func (r *mirrorRoot) ModifyAttributes(ctx context.Context, name string, mods []core.AttributeMod) error {
	return r.origErr
}
func (r *mirrorRoot) CreateSubcontextAttrs(ctx context.Context, name string, attrs *core.Attributes) (core.DirContext, error) {
	return nil, r.origErr
}
func (r *mirrorRoot) Watch(ctx context.Context, target string, scope core.SearchScope, l core.Listener) (func(), error) {
	return nil, r.origErr
}
func (r *mirrorRoot) NameInNamespace() (string, error) { return "", r.origErr }
func (r *mirrorRoot) Environment() map[string]any      { return nil }
func (r *mirrorRoot) Close() error                     { return nil }
