package sync

// White-box tests for the resume journal, the -mirror flag grammar, and
// the registry's deepest-base-wins coverage rule.

import (
	"testing"
	"time"

	"gondi/internal/core"
)

func TestJournalReplayRestoresCursorAndTombs(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	j.cursor("soa:41")
	j.cursor("soa:42") // later cursor supersedes
	j.tomb("printers/lw2", at)
	j.tomb("printers/lw3", at)
	j.untomb("printers/lw3") // resurrection clears the tombstone
	j.close()

	j2, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	cur, tombs, err := j2.replay()
	if err != nil {
		t.Fatal(err)
	}
	if cur != "soa:42" {
		t.Fatalf("cursor = %q, want soa:42", cur)
	}
	if len(tombs) != 1 || !tombs["printers/lw2"].Equal(at) {
		t.Fatalf("tombs = %v, want only printers/lw2 @ %v", tombs, at)
	}
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Unix(100, 0).UTC()
	j.tomb("keep", at)
	// Drive past the compaction threshold with cursor churn; the
	// snapshot must retain the live state and drop the history.
	for i := 0; i <= compactEvery; i++ {
		j.cursor("soa:" + time.Duration(i).String())
	}
	if j.appends >= compactEvery {
		t.Fatalf("journal did not compact: %d appends on the books", j.appends)
	}
	last := "soa:" + time.Duration(compactEvery).String()
	j.close()

	j2, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	cur, tombs, err := j2.replay()
	if err != nil {
		t.Fatal(err)
	}
	if cur != last {
		t.Fatalf("cursor after compaction = %q, want %q", cur, last)
	}
	if len(tombs) != 1 || tombs["keep"].IsZero() {
		t.Fatalf("tombs after compaction = %v, want keep", tombs)
	}
}

func TestParseMirrorFlag(t *testing.T) {
	cfg, err := ParseMirrorFlag("dns://ns1:53/global/emory hdns://n1:7001/mirrors/emory 5s")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SourceURL != "dns://ns1:53/global/emory" || cfg.DestURL != "hdns://n1:7001/mirrors/emory" || cfg.Interval != 5*time.Second {
		t.Fatalf("parsed %+v", cfg)
	}
	// Interval is optional.
	cfg, err = ParseMirrorFlag("mem://a/x mem://b/y")
	if err != nil || cfg.Interval != 0 {
		t.Fatalf("two-field form: %+v, %v", cfg, err)
	}
	// Sharded authorities with commas and pipes survive whitespace
	// splitting — the reason the grammar is not comma-separated.
	cfg, err = ParseMirrorFlag("hdns://a:1,b:1|c:1/x mem://b/y")
	if err != nil || cfg.SourceURL != "hdns://a:1,b:1|c:1/x" {
		t.Fatalf("sharded authority: %+v, %v", cfg, err)
	}
	for _, bad := range []string{"", "one", "a b c d", "mem://a/x mem://b/y notaduration"} {
		if _, err := ParseMirrorFlag(bad); err == nil {
			t.Errorf("ParseMirrorFlag(%q) accepted", bad)
		}
	}
}

func TestLookupMirrorDeepestBaseWins(t *testing.T) {
	wide := &Mirror{name: "wide", srcScheme: "dns", srcAuthority: "ns1:53", srcBase: core.MustParseName("global")}
	deep := &Mirror{name: "deep", srcScheme: "dns", srcAuthority: "ns1:53", srcBase: core.MustParseName("global/emory")}
	other := &Mirror{name: "other", srcScheme: "dns", srcAuthority: "ns2:53", srcBase: core.MustParseName("global")}
	for _, m := range []*Mirror{wide, deep, other} {
		registerMirror(m)
	}
	t.Cleanup(func() {
		for _, m := range []*Mirror{wide, deep, other} {
			unregisterMirror(m)
		}
	})

	m, rel, ok := lookupMirror("dns", "ns1:53", core.MustParseName("global/emory/printers/lw2"))
	if !ok || m != deep || rel.String() != "printers/lw2" {
		t.Fatalf("nested name -> %v, %q, %v; want the deep mirror", m, rel.String(), ok)
	}
	m, rel, ok = lookupMirror("dns", "ns1:53", core.MustParseName("global/cs/www"))
	if !ok || m != wide || rel.String() != "cs/www" {
		t.Fatalf("wide-only name -> %v, %q, %v; want the wide mirror", m, rel.String(), ok)
	}
	if _, _, ok := lookupMirror("dns", "ns1:53", core.MustParseName("local/x")); ok {
		t.Fatal("uncovered base matched")
	}
	if _, _, ok := lookupMirror("hdns", "ns1:53", core.MustParseName("global/x")); ok {
		t.Fatal("wrong scheme matched")
	}
	if !coversAuthority("dns", "ns2:53") {
		t.Fatal("coversAuthority missed a registered mirror")
	}
	if coversAuthority("dns", "ns3:53") {
		t.Fatal("coversAuthority invented a mirror")
	}
}
