package sync

import (
	"sort"
	stdsync "sync"

	"gondi/internal/core"
)

// The mirror registry is process-global, like the provider registry in
// core: a Mirror registers its coverage (source scheme + authority +
// base path) on Start, and the fallback middleware consults it when an
// origin fails. Process-global is deliberate — mirrors are operational
// infrastructure (started by the daemon), while InitialContexts are
// per-caller; any context that opts into WithMirrorFallback should see
// every running mirror.
var reg struct {
	mu      stdsync.RWMutex
	mirrors []*Mirror
}

func registerMirror(m *Mirror) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for _, have := range reg.mirrors {
		if have == m {
			return
		}
	}
	reg.mirrors = append(reg.mirrors, m)
}

func unregisterMirror(m *Mirror) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for i, have := range reg.mirrors {
		if have == m {
			reg.mirrors = append(reg.mirrors[:i], reg.mirrors[i+1:]...)
			return
		}
	}
}

// lookupMirror finds a mirror covering the given source-relative name:
// same scheme, same authority (exact string — the caller dials what the
// mirror dials), and name under the mirrored base. It returns the
// matching mirror and the name relative to the mirrored subtree. The
// deepest covering base wins when mirrors nest.
func lookupMirror(scheme, authority string, name core.Name) (*Mirror, core.Name, bool) {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	var best *Mirror
	bestDepth := -1
	for _, m := range reg.mirrors {
		if m.srcScheme != scheme || m.srcAuthority != authority {
			continue
		}
		if !name.StartsWith(m.srcBase) {
			continue
		}
		if d := m.srcBase.Size(); d > bestDepth {
			best, bestDepth = m, d
		}
	}
	if best == nil {
		return nil, core.Name{}, false
	}
	return best, name.Suffix(bestDepth), true
}

// coversAuthority reports whether any mirror watches the given origin
// at all — the cheap pre-check the middleware runs on every successful
// open, to decide whether wrapping for read-fallback is worthwhile.
func coversAuthority(scheme, authority string) bool {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	for _, m := range reg.mirrors {
		if m.srcScheme == scheme && m.srcAuthority == authority {
			return true
		}
	}
	return false
}

// Statuses returns a snapshot of every registered mirror, sorted by
// name — the payload behind /debug/vars's "sync" section and
// `fedctl sync`.
func Statuses() []Status {
	reg.mu.RLock()
	mirrors := append([]*Mirror(nil), reg.mirrors...)
	reg.mu.RUnlock()
	out := make([]Status, 0, len(mirrors))
	for _, m := range mirrors {
		out = append(out, m.Status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
