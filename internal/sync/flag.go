package sync

import (
	"fmt"
	"strings"
	"time"
)

// ParseMirrorFlag parses one daemon -mirror flag value:
//
//	"SRC_URL DST_URL [interval]"
//
// e.g. "dns://ns1:53/global/emory hdns://n1:7001/mirrors/emory 5s".
// Fields are whitespace-separated because both commas and pipes appear
// inside sharded HDNS authorities ("hdns://a:1,b:1|c:1/x").
func ParseMirrorFlag(v string) (Config, error) {
	fields := strings.Fields(v)
	if len(fields) < 2 || len(fields) > 3 {
		return Config{}, fmt.Errorf("sync: -mirror wants \"SRC_URL DST_URL [interval]\", got %q", v)
	}
	cfg := Config{SourceURL: fields[0], DestURL: fields[1]}
	if len(fields) == 3 {
		d, err := time.ParseDuration(fields[2])
		if err != nil {
			return Config{}, fmt.Errorf("sync: -mirror interval: %w", err)
		}
		cfg.Interval = d
	}
	return cfg, nil
}
