package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gondi/internal/core"
)

// newWindowPair builds a server advertising a tiny in-flight window and a
// connected client that has already applied the credit frame.
func newWindowPair(t *testing.T, window int) (*Server, *Client) {
	t.Helper()
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	s.SetWindow(window)
	s.Handle("ping", func(*ServerConn, []byte) ([]byte, error) { return nil, nil })
	c, err := Dial(s.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	// A round trip guarantees the credit frame (written before any
	// response) has been applied.
	if _, err := c.Call(context.Background(), "ping", nil); err != nil {
		t.Fatal(err)
	}
	if got := c.creditLimit(); got != window {
		t.Fatalf("credit limit = %d, want advertised %d", got, window)
	}
	return s, c
}

// creditLimit exposes the gate's current window to in-package tests.
func (c *Client) creditLimit() int {
	c.credits.mu.Lock()
	defer c.credits.mu.Unlock()
	return c.credits.limit
}

func (c *Client) pendingLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

func (c *Client) creditsUsed() int {
	c.credits.mu.Lock()
	defer c.credits.mu.Unlock()
	return c.credits.used
}

// TestCreditWindowBoundsInflight proves callers beyond the advertised
// window block until a credit frees, instead of piling onto the wire.
func TestCreditWindowBoundsInflight(t *testing.T) {
	s, c := newWindowPair(t, 2)
	release := make(chan struct{})
	var mu sync.Mutex
	inflight, peak := 0, 0
	s.Handle("block", func(*ServerConn, []byte) ([]byte, error) {
		mu.Lock()
		inflight++
		if inflight > peak {
			peak = inflight
		}
		mu.Unlock()
		<-release
		mu.Lock()
		inflight--
		mu.Unlock()
		return nil, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = c.Call(context.Background(), "block", nil)
		}()
	}
	time.Sleep(100 * time.Millisecond)
	mu.Lock()
	got := inflight
	mu.Unlock()
	if got != 2 {
		t.Fatalf("handler inflight = %d, want window 2", got)
	}
	close(release)
	wg.Wait()
	if peak > 2 {
		t.Fatalf("peak inflight = %d exceeded window 2", peak)
	}
	if used := c.creditsUsed(); used != 0 {
		t.Fatalf("credits still held after drain: %d", used)
	}
}

// TestCanceledCallReleasesEntryAndCredit is the pending-map leak
// regression test: a ctx-canceled call must remove its pending entry and
// return its credit immediately, not wait for the straggling response.
func TestCanceledCallReleasesEntryAndCredit(t *testing.T) {
	s, c := newWindowPair(t, 1)
	release := make(chan struct{})
	s.Handle("block", func(*ServerConn, []byte) ([]byte, error) {
		<-release
		return nil, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(ctx, "block", nil)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond) // call in flight, holding the only credit
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := c.pendingLen(); n != 0 {
		t.Fatalf("pending map holds %d abandoned entries", n)
	}
	if used := c.creditsUsed(); used != 0 {
		t.Fatalf("abandoned call still holds %d credits", used)
	}
	// The freed credit admits the next call without waiting for the
	// abandoned op's response (which never comes until release closes).
	quick := make(chan error, 1)
	go func() {
		ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
		defer cancel2()
		_, err := c.Call(ctx2, "ping", nil)
		quick <- err
	}()
	select {
	case err := <-quick:
		if err != nil {
			t.Fatalf("follow-up call: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("follow-up call starved: credit not returned on cancel")
	}
	close(release)
}

// TestServerShedsBeyondHardCap proves the server answers (not hangs, not
// kills the conn) with a typed busy error once its enforcement cap is
// exceeded by a client that ignores credits.
func TestServerShedsBeyondHardCap(t *testing.T) {
	s, c := newWindowPair(t, 1) // hard cap = 2
	release := make(chan struct{})
	s.Handle("block", func(*ServerConn, []byte) ([]byte, error) {
		<-release
		return nil, nil
	})
	// Bypass the client gate to emulate a misbehaving sender.
	c.credits.setLimit(64)
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_, err := c.Call(ctx, "block", nil)
			errs <- err
		}()
		time.Sleep(20 * time.Millisecond) // order arrivals so the third trips the cap
	}
	var busy *core.ServerBusyError
	if err := <-errs; !errors.As(err, &busy) {
		t.Fatalf("third call err = %v, want *core.ServerBusyError", err)
	}
	// Drain the two admitted calls, then prove the connection survived
	// the shed.
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("admitted call failed: %v", err)
		}
	}
	if _, err := c.Call(context.Background(), "ping", nil); err != nil {
		t.Fatalf("conn unusable after busy shed: %v", err)
	}
}

func TestCallBatchRoundTrip(t *testing.T) {
	s, c := newWindowPair(t, 4)
	s.Handle("echo", func(_ *ServerConn, body []byte) ([]byte, error) {
		return body, nil
	})
	s.Handle("fail", func(*ServerConn, []byte) ([]byte, error) {
		return nil, errors.New("boom")
	})
	items := []BatchItem{
		{Method: "echo", Body: []byte("a")},
		{Method: "fail", Body: nil},
		{Method: "echo", Body: []byte("c")},
		{Method: "nope", Body: nil},
	}
	out, err := c.CallBatch(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("got %d results", len(out))
	}
	if !bytes.Equal(out[0].Body, []byte("a")) || !bytes.Equal(out[2].Body, []byte("c")) {
		t.Fatalf("order not preserved: %q, %q", out[0].Body, out[2].Body)
	}
	var re *RemoteError
	if !errors.As(out[1].Err, &re) || re.Method != "fail" || re.Msg != "boom" {
		t.Fatalf("item 1 err = %v", out[1].Err)
	}
	if !errors.As(out[3].Err, &re) || re.Method != "nope" {
		t.Fatalf("item 3 err = %v", out[3].Err)
	}
	// One batch = one credit: all four ops fit a window of 4 trivially,
	// and the gate is drained afterwards.
	if used := c.creditsUsed(); used != 0 {
		t.Fatalf("credits after batch: %d", used)
	}
}

// TestCallBatchOrderAcrossWrites proves batch items execute sequentially:
// a later item observes the earlier item's server-side effect.
func TestCallBatchOrderAcrossWrites(t *testing.T) {
	s, c := newWindowPair(t, 4)
	s.Handle("set", func(sc *ServerConn, body []byte) ([]byte, error) {
		sc.Set("k", string(body))
		return nil, nil
	})
	s.Handle("get", func(sc *ServerConn, _ []byte) ([]byte, error) {
		v, _ := sc.Get("k")
		str, _ := v.(string)
		return []byte(str), nil
	})
	out, err := c.CallBatch(context.Background(), []BatchItem{
		{Method: "set", Body: []byte("first")},
		{Method: "get"},
		{Method: "set", Body: []byte("second")},
		{Method: "get"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(out[1].Body) != "first" || string(out[3].Body) != "second" {
		t.Fatalf("sequential order broken: %q, %q", out[1].Body, out[3].Body)
	}
}

// TestBatchSeveredConnFailsTyped proves in-flight batches fail with a
// typed error — never hang — when the connection dies under them.
func TestBatchSeveredConnFailsTyped(t *testing.T) {
	s, c := newWindowPair(t, 4)
	block := make(chan struct{})
	defer close(block)
	s.Handle("block", func(*ServerConn, []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	done := make(chan error, 1)
	go func() {
		_, err := c.CallBatch(context.Background(), []BatchItem{{Method: "block"}})
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	// Sever the server side of the conn without Server.Close (which would
	// wait for the blocked handler); the cleanup-ordered close(block)
	// releases it before the registered s.Close cleanup runs.
	s.mu.Lock()
	for sc := range s.conns {
		sc.conn.Close()
	}
	s.mu.Unlock()
	select {
	case err := <-done:
		if !errors.Is(err, ErrConnClosed) {
			t.Fatalf("err = %v, want ErrConnClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight batch hung on severed conn")
	}
}

// TestCreditStallThenProceed proves stalled callers proceed as credits
// free (no lost wakeups in the gate): with a window of 1, twenty
// concurrent calls serialize and all complete.
func TestCreditStallThenProceed(t *testing.T) {
	_, c := newWindowPair(t, 1)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if _, err := c.Call(ctx, "ping", nil); err != nil {
				t.Errorf("serialized call %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if used := c.creditsUsed(); used != 0 {
		t.Fatalf("credits leaked under contention: %d", used)
	}
}

// TestLargeBatch pushes a batch near the item cap through one frame.
func TestLargeBatch(t *testing.T) {
	s, c := newWindowPair(t, 4)
	s.Handle("echo", func(_ *ServerConn, body []byte) ([]byte, error) {
		return body, nil
	})
	n := 1000
	items := make([]BatchItem, n)
	for i := range items {
		items[i] = BatchItem{Method: "echo", Body: []byte(fmt.Sprintf("item-%d", i))}
	}
	out, err := c.CallBatch(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i].Err != nil || string(out[i].Body) != fmt.Sprintf("item-%d", i) {
			t.Fatalf("item %d = %q, %v", i, out[i].Body, out[i].Err)
		}
	}
}
