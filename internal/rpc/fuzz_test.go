package rpc

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"testing"
)

// sampleFrames covers every kind the codec accepts, for mutation seeds.
func sampleFrames() []*frame {
	return []*frame{
		{Kind: kindRequest, ID: 1, Method: []byte("hdns.lookup"), Body: []byte("body")},
		{Kind: kindResponse, ID: 2, Code: codeErr, Err: []byte("not found")},
		{Kind: kindPush, Method: []byte("event"), Body: []byte("data")},
		{Kind: kindCredit, ID: 256},
		{Kind: kindBatchRequest, ID: 3, Items: []frameItem{
			{Method: []byte("a"), Body: []byte("1")},
			{Method: []byte("b"), Body: []byte("2")},
		}},
		{Kind: kindBatchResponse, ID: 4, Code: codeBusy, Items: []frameItem{
			{Code: codeOK, Body: []byte("x")},
			{Code: codeErr, Err: []byte("boom")},
		}},
	}
}

// wireBytes renders f with its outer length prefix, as sent on a conn.
func wireBytes(f *frame) []byte {
	payload := appendFrame(nil, f)
	out := make([]byte, 4, 4+len(payload))
	binary.BigEndian.PutUint32(out, uint32(len(payload)))
	return append(out, payload...)
}

// readOne runs a frameReader over raw bytes, the exact path a server
// exposes to the network.
func readOne(raw []byte) (*frame, error) {
	fr := frameReader{r: bytes.NewReader(raw)}
	return fr.next()
}

// Random bytes must never panic the frame reader — servers read frames
// straight off accepted TCP conns.
func TestReadFrameRandomBytesNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		buf := make([]byte, r.Intn(256))
		r.Read(buf)
		_, _ = readOne(buf) // errors fine, panics not
	}
}

// Mutations of valid frames — flipped bytes, torn length prefixes,
// truncations — must never panic the reader or the decoder.
func TestReadFrameMutatedNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, f := range sampleFrames() {
		wire := wireBytes(f)
		for i := 0; i < 2000; i++ {
			mut := append([]byte(nil), wire...)
			for k := 0; k < 1+r.Intn(4); k++ {
				mut[r.Intn(len(mut))] = byte(r.Intn(256))
			}
			if r.Intn(3) == 0 {
				mut = mut[:r.Intn(len(mut)+1)] // torn prefix or torn payload
			}
			_, _ = readOne(mut)
		}
	}
}

// A length prefix above maxFrame must be rejected before any allocation
// of that size is attempted.
func TestReadFrameOversizedPrefix(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	if _, err := readOne(hdr[:]); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Exactly at the limit the reader proceeds to read the payload (and
	// then fails on truncation, not on the limit).
	binary.BigEndian.PutUint32(hdr[:], maxFrame)
	if _, err := readOne(hdr[:]); err == nil || err == io.EOF {
		// io.ErrUnexpectedEOF expected; the point is no panic and no
		// "exceeds limit" false positive. Reaching here is fine either way.
		_ = err
	}
}

// Unknown frame kinds are a decode error, not a silent skip: the wire
// protocol is versioned by rejection.
func TestReadFrameUnknownKind(t *testing.T) {
	f := &frame{Kind: kindRequest, ID: 9, Method: []byte("m")}
	wire := wireBytes(f)
	for _, k := range []byte{0, 7, 0x7F, 0xFF} {
		mut := append([]byte(nil), wire...)
		mut[4] = k // first payload byte is the kind
		if _, err := readOne(mut); err == nil {
			t.Fatalf("kind %d accepted", k)
		}
	}
}

// FuzzReadFrame is the native-fuzzing entry point mirroring the
// deterministic tests above; go test runs the seed corpus, `go test
// -fuzz=FuzzReadFrame ./internal/rpc` explores further.
func FuzzReadFrame(f *testing.F) {
	for _, sf := range sampleFrames() {
		f.Add(wireBytes(sf))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := frameReader{r: bytes.NewReader(data)}
		for {
			g, err := fr.next()
			if err != nil {
				return
			}
			// A frame that decodes must re-encode decodable (round-trip
			// closure keeps the codec self-consistent).
			cp := frame{
				Kind: g.Kind, ID: g.ID, Code: g.Code,
				Method: g.Method, Err: g.Err, Body: g.Body, Items: g.Items,
			}
			var h frame
			if err := decodeFrame(&h, appendFrame(nil, &cp)); err != nil {
				t.Fatalf("decoded frame failed re-decode: %v", err)
			}
		}
	})
}
