package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// The wire format is a hand-rolled binary encoding chosen over gob for
// the hot path: encoding is a single append into a pooled buffer and
// decoding is a zero-copy walk over the read buffer (field slices alias
// the payload), so a steady-state encode or decode performs no heap
// allocations (enforced by TestFrameCodecZeroAlloc and the check.sh
// allocations gate).
//
// Outer framing: 4-byte big-endian payload length, then the payload.
// Payload layout:
//
//	kind    uint8
//	id      uint64 big-endian   (kindCredit: the advertised window)
//	code    uint8               (codeOK | codeErr | codeBusy)
//	method  uvarint len + bytes
//	err     uvarint len + bytes
//	body    uvarint len + bytes
//	items   (batch kinds only) uvarint count, then per item:
//	        code uint8, method uvarint len + bytes,
//	        err uvarint len + bytes, body uvarint len + bytes
//
// Trailing bytes after the last field are a decode error: a frame either
// parses exactly or is rejected, so corruption cannot smuggle state
// between frames.

// Response codes.
const (
	codeOK   = 0
	codeErr  = 1 // Err carries the handler's error message
	codeBusy = 2 // shed by the server's in-flight window; no handler ran
)

// maxBatchItems bounds the item count in one batch frame, guarding the
// decoder against a corrupt count allocating unbounded item slices.
const maxBatchItems = 4096

// frameItem is one operation inside a batch frame.
type frameItem struct {
	Code   uint8
	Method []byte
	Err    []byte
	Body   []byte
}

var (
	errFrameTruncated = errors.New("rpc: truncated frame")
	errFrameTrailing  = errors.New("rpc: trailing bytes after frame")
)

// appendFrame appends f's payload encoding to dst and returns the
// extended slice. It never fails: every frame value has an encoding.
func appendFrame(dst []byte, f *frame) []byte {
	dst = append(dst, f.Kind)
	dst = binary.BigEndian.AppendUint64(dst, f.ID)
	dst = append(dst, f.Code)
	dst = appendBytes(dst, f.Method)
	dst = appendBytes(dst, f.Err)
	dst = appendBytes(dst, f.Body)
	if f.Kind == kindBatchRequest || f.Kind == kindBatchResponse {
		dst = binary.AppendUvarint(dst, uint64(len(f.Items)))
		for i := range f.Items {
			it := &f.Items[i]
			dst = append(dst, it.Code)
			dst = appendBytes(dst, it.Method)
			dst = appendBytes(dst, it.Err)
			dst = appendBytes(dst, it.Body)
		}
	}
	return dst
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// decodeFrame parses payload into f. Field slices alias payload — the
// caller owns payload and must copy anything that outlives the next read.
// f's Items slice is reused across calls when capacity allows.
func decodeFrame(f *frame, payload []byte) error {
	if len(payload) < 10 {
		return errFrameTruncated
	}
	f.Kind = payload[0]
	f.ID = binary.BigEndian.Uint64(payload[1:9])
	f.Code = payload[9]
	rest := payload[10:]
	var err error
	if f.Method, rest, err = takeBytes(rest); err != nil {
		return err
	}
	if f.Err, rest, err = takeBytes(rest); err != nil {
		return err
	}
	if f.Body, rest, err = takeBytes(rest); err != nil {
		return err
	}
	f.Items = f.Items[:0]
	switch f.Kind {
	case kindRequest, kindResponse, kindPush, kindCredit:
	case kindBatchRequest, kindBatchResponse:
		n, used := binary.Uvarint(rest)
		if used <= 0 {
			return errFrameTruncated
		}
		rest = rest[used:]
		if n > maxBatchItems {
			return fmt.Errorf("rpc: batch of %d items exceeds limit", n)
		}
		for i := uint64(0); i < n; i++ {
			var it frameItem
			if len(rest) < 1 {
				return errFrameTruncated
			}
			it.Code = rest[0]
			rest = rest[1:]
			if it.Method, rest, err = takeBytes(rest); err != nil {
				return err
			}
			if it.Err, rest, err = takeBytes(rest); err != nil {
				return err
			}
			if it.Body, rest, err = takeBytes(rest); err != nil {
				return err
			}
			f.Items = append(f.Items, it)
		}
	default:
		return fmt.Errorf("rpc: unknown frame kind %d", f.Kind)
	}
	if len(rest) != 0 {
		return errFrameTrailing
	}
	return nil
}

// takeBytes consumes one uvarint-length-prefixed field. The returned
// slice aliases b; a zero-length field yields nil.
func takeBytes(b []byte) (field, rest []byte, err error) {
	n, used := binary.Uvarint(b)
	if used <= 0 {
		return nil, nil, errFrameTruncated
	}
	b = b[used:]
	if n > uint64(len(b)) {
		return nil, nil, errFrameTruncated
	}
	if n == 0 {
		return nil, b, nil
	}
	return b[:n], b[n:], nil
}

// bufPool recycles write-path buffers. Stored as *[]byte so Put does not
// allocate an interface box per cycle.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// writeFrame encodes f into a pooled buffer — length prefix and payload
// in one slice, one conn.Write — serialized by mu.
func writeFrame(w io.Writer, mu *sync.Mutex, f *frame) error {
	bp := bufPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, 0, 0, 0, 0) // length prefix placeholder
	b = appendFrame(b, f)
	if len(b)-4 > maxFrame {
		*bp = b
		bufPool.Put(bp)
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", len(b)-4)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	mu.Lock()
	_, err := w.Write(b)
	mu.Unlock()
	*bp = b
	bufPool.Put(bp)
	return err
}

// frameReader reads frames from one connection, reusing its buffer and
// frame across reads. Not safe for concurrent use; each read invalidates
// the previous frame's field slices.
type frameReader struct {
	r   io.Reader
	buf []byte
	f   frame
}

// next reads and decodes one frame. The returned frame (and everything it
// references) is valid only until the following next call.
func (fr *frameReader) next() (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	if uint32(cap(fr.buf)) < n {
		fr.buf = make([]byte, n)
	}
	payload := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, err
	}
	if err := decodeFrame(&fr.f, payload); err != nil {
		return nil, err
	}
	return &fr.f, nil
}
