package rpc

import (
	"bytes"
	"testing"
)

func roundTripFrame(t *testing.T, f *frame) *frame {
	t.Helper()
	payload := appendFrame(nil, f)
	var g frame
	if err := decodeFrame(&g, payload); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return &g
}

func TestCodecRoundTrip(t *testing.T) {
	f := &frame{
		Kind:   kindRequest,
		ID:     0xdeadbeefcafe,
		Code:   codeOK,
		Method: []byte("hdns.lookup"),
		Body:   []byte("payload bytes"),
	}
	g := roundTripFrame(t, f)
	if g.Kind != f.Kind || g.ID != f.ID || g.Code != f.Code ||
		!bytes.Equal(g.Method, f.Method) || !bytes.Equal(g.Body, f.Body) {
		t.Fatalf("round trip: %+v -> %+v", f, g)
	}
	if len(g.Items) != 0 {
		t.Fatalf("unary frame grew items: %+v", g.Items)
	}
}

func TestCodecBatchRoundTrip(t *testing.T) {
	f := &frame{
		Kind: kindBatchResponse,
		ID:   42,
		Items: []frameItem{
			{Code: codeOK, Body: []byte("one")},
			{Code: codeErr, Err: []byte("not found")},
			{Code: codeOK, Method: []byte("m"), Body: nil},
		},
	}
	g := roundTripFrame(t, f)
	if len(g.Items) != 3 {
		t.Fatalf("items = %d", len(g.Items))
	}
	if !bytes.Equal(g.Items[0].Body, []byte("one")) ||
		g.Items[1].Code != codeErr || string(g.Items[1].Err) != "not found" ||
		string(g.Items[2].Method) != "m" {
		t.Fatalf("batch round trip: %+v", g.Items)
	}
}

// TestFrameCodecZeroAlloc is the allocations gate cited by check.sh:
// steady-state encode and decode of a frame must not allocate. Encoding
// appends into a caller-owned buffer; decoding aliases the payload.
func TestFrameCodecZeroAlloc(t *testing.T) {
	f := &frame{
		Kind:   kindRequest,
		ID:     77,
		Method: []byte("jini.lookup"),
		Body:   make([]byte, 256),
	}
	dst := make([]byte, 0, 1024)
	if n := testing.AllocsPerRun(200, func() {
		dst = appendFrame(dst[:0], f)
	}); n != 0 {
		t.Fatalf("encode allocates %.1f per op, want 0", n)
	}
	payload := appendFrame(nil, f)
	var g frame
	if n := testing.AllocsPerRun(200, func() {
		if err := decodeFrame(&g, payload); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("decode allocates %.1f per op, want 0", n)
	}

	// Batch frames reach zero allocations once the decoder's item slice
	// has grown to capacity (first decode warms it).
	bf := &frame{Kind: kindBatchRequest, ID: 1, Items: []frameItem{
		{Method: []byte("a"), Body: []byte("1")},
		{Method: []byte("b"), Body: []byte("2")},
	}}
	bpayload := appendFrame(nil, bf)
	var bg frame
	if err := decodeFrame(&bg, bpayload); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := decodeFrame(&bg, bpayload); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("batch decode allocates %.1f per op steady-state, want 0", n)
	}
}

func TestDecodeRejectsUnknownKind(t *testing.T) {
	f := &frame{Kind: kindRequest, ID: 1, Method: []byte("m")}
	payload := appendFrame(nil, f)
	payload[0] = 99 // unknown kind
	var g frame
	if err := decodeFrame(&g, payload); err == nil {
		t.Fatal("unknown kind accepted")
	}
	payload[0] = 0 // zero kind
	if err := decodeFrame(&g, payload); err == nil {
		t.Fatal("zero kind accepted")
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	payload := appendFrame(nil, &frame{Kind: kindResponse, ID: 1})
	payload = append(payload, 0xFF)
	var g frame
	if err := decodeFrame(&g, payload); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	full := appendFrame(nil, &frame{
		Kind:   kindRequest,
		ID:     7,
		Method: []byte("method"),
		Err:    []byte("err"),
		Body:   []byte("body"),
	})
	var g frame
	// Every proper prefix must be rejected, not mis-parsed.
	for n := 0; n < len(full); n++ {
		if err := decodeFrame(&g, full[:n]); err == nil {
			t.Fatalf("truncated frame of %d/%d bytes accepted", n, len(full))
		}
	}
}

func TestDecodeRejectsOversizedBatchCount(t *testing.T) {
	// Hand-build a batch frame claiming 1<<40 items.
	payload := []byte{kindBatchRequest}
	payload = append(payload, 0, 0, 0, 0, 0, 0, 0, 1) // id
	payload = append(payload, codeOK)
	payload = append(payload, 0, 0, 0) // empty method/err/body
	// uvarint(1<<40)
	payload = append(payload, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80)
	var g frame
	if err := decodeFrame(&g, payload); err == nil {
		t.Fatal("absurd batch count accepted")
	}
}
