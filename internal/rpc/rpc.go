// Package rpc is the wire substrate shared by the Jini registrar and HDNS
// protocols: length-delimited gob frames over TCP, with request/response
// multiplexing, per-connection state, and server-initiated push frames
// (used for remote event delivery).
package rpc

import (
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"gondi/internal/breaker"
	"gondi/internal/obs"
	"gondi/internal/retry"
)

// Wire-level metrics, shared by every protocol built on this substrate
// (Jini registrar, HDNS). Latency is observed per method so slow RPCs are
// distinguishable from chatty ones.
var (
	mDials = obs.Default.Counter("gondi_rpc_dials_total",
		"RPC connections established.")
	mDialErrs = obs.Default.Counter("gondi_rpc_dial_errors_total",
		"RPC connection attempts that failed after retries.")
	mConns = obs.Default.Gauge("gondi_rpc_conns_open",
		"RPC client connections currently open.")
	mConnLost = obs.Default.Counter("gondi_rpc_conns_lost_total",
		"RPC connections terminated by the peer or the network.")
)

// Frame kinds.
const (
	kindRequest  = 1
	kindResponse = 2
	kindPush     = 3
)

// maxFrame bounds a single frame to guard against corrupt length prefixes.
const maxFrame = 64 << 20

// frame is the unit of transmission.
type frame struct {
	Kind   uint8
	ID     uint64
	Method string
	Err    string
	Body   []byte
}

// ErrConnClosed is returned by calls whose connection the peer (or the
// network) terminated.
var ErrConnClosed = errors.New("rpc: connection closed")

// ErrClientClosed is returned by calls — including calls already in
// flight — when the local side called Close. It is distinct from
// ErrConnClosed so callers can tell an orderly local shutdown from a torn
// connection.
var ErrClientClosed = errors.New("rpc: client closed")

// RemoteError carries an error string produced by a server handler.
type RemoteError struct {
	Method string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote %s: %s", e.Method, e.Msg)
}

func writeFrame(w io.Writer, mu *sync.Mutex, f *frame) error {
	mu.Lock()
	defer mu.Unlock()
	var hdr [4]byte
	payload, err := encodeFrame(f)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

func encodeFrame(f *frame) ([]byte, error) {
	var buf frameBuffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, err
	}
	return buf.b, nil
}

type frameBuffer struct{ b []byte }

func (fb *frameBuffer) Write(p []byte) (int, error) {
	fb.b = append(fb.b, p...)
	return len(p), nil
}

func readFrame(r io.Reader) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	var f frame
	if err := gob.NewDecoder(byteReader{payload, new(int)}).Decode(&f); err != nil {
		return nil, err
	}
	return &f, nil
}

type byteReader struct {
	b   []byte
	pos *int
}

func (br byteReader) Read(p []byte) (int, error) {
	if *br.pos >= len(br.b) {
		return 0, io.EOF
	}
	n := copy(p, br.b[*br.pos:])
	*br.pos += n
	return n, nil
}

// Handler processes one request on a server. conn identifies the calling
// connection and supports Push for event delivery; body is the request
// payload, and the returned bytes are the response payload.
type Handler func(conn *ServerConn, body []byte) ([]byte, error)

// Server accepts connections and dispatches method handlers.
type Server struct {
	lis      net.Listener
	mu       sync.Mutex
	handlers map[string]Handler
	conns    map[*ServerConn]struct{}
	onClose  []func(*ServerConn)
	closed   bool
	wg       sync.WaitGroup
}

// NewServer creates a server listening on addr ("127.0.0.1:0" for an
// ephemeral port).
func NewServer(addr string) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		lis:      lis,
		handlers: map[string]Handler{},
		conns:    map[*ServerConn]struct{}{},
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Handle registers a method handler. Must be called before clients invoke
// the method; registration is safe at any time.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// OnConnClose registers a callback invoked when a client connection ends
// (used to drop event subscriptions and expire session state).
func (s *Server) OnConnClose(f func(*ServerConn)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onClose = append(s.onClose, f)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		sc := &ServerConn{srv: s, conn: conn, vals: map[string]any{}}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(sc)
	}
}

func (s *Server) serveConn(sc *ServerConn) {
	defer s.wg.Done()
	defer func() {
		sc.conn.Close()
		s.mu.Lock()
		delete(s.conns, sc)
		hooks := make([]func(*ServerConn), len(s.onClose))
		copy(hooks, s.onClose)
		s.mu.Unlock()
		for _, h := range hooks {
			h(sc)
		}
	}()
	for {
		f, err := readFrame(sc.conn)
		if err != nil {
			return
		}
		if f.Kind != kindRequest {
			continue
		}
		s.mu.Lock()
		h := s.handlers[f.Method]
		s.mu.Unlock()
		s.wg.Add(1)
		go func(f *frame) {
			defer s.wg.Done()
			resp := &frame{Kind: kindResponse, ID: f.ID, Method: f.Method}
			if h == nil {
				resp.Err = "unknown method " + f.Method
			} else {
				body, err := h(sc, f.Body)
				if err != nil {
					resp.Err = err.Error()
				} else {
					resp.Body = body
				}
			}
			_ = writeFrame(sc.conn, &sc.writeMu, resp)
		}(f)
	}
}

// Close stops the listener and closes all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*ServerConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.lis.Close()
	for _, c := range conns {
		c.conn.Close()
	}
	s.wg.Wait()
	return err
}

// ServerConn is the server's view of one client connection.
type ServerConn struct {
	srv     *Server
	conn    net.Conn
	writeMu sync.Mutex
	valsMu  sync.Mutex
	vals    map[string]any
}

// Push sends an unsolicited frame to the client (event delivery).
func (sc *ServerConn) Push(method string, body []byte) error {
	return writeFrame(sc.conn, &sc.writeMu, &frame{Kind: kindPush, Method: method, Body: body})
}

// RemoteAddr returns the peer address.
func (sc *ServerConn) RemoteAddr() string { return sc.conn.RemoteAddr().String() }

// Set stores connection-scoped state (e.g. authentication principal,
// subscription registry).
func (sc *ServerConn) Set(key string, v any) {
	sc.valsMu.Lock()
	defer sc.valsMu.Unlock()
	sc.vals[key] = v
}

// Get retrieves connection-scoped state.
func (sc *ServerConn) Get(key string) (any, bool) {
	sc.valsMu.Lock()
	defer sc.valsMu.Unlock()
	v, ok := sc.vals[key]
	return v, ok
}

// Client is a multiplexing RPC client. Calls are context-first: the ctx
// deadline becomes a real write deadline on the connection and bounds the
// wait for the response; cancellation aborts an in-flight call
// immediately with ctx.Err().
type Client struct {
	addr     string
	br       *breaker.Breaker
	conn     net.Conn
	writeMu  sync.Mutex
	mu       sync.Mutex
	pending  map[uint64]chan *frame
	nextID   uint64
	onPush   func(method string, body []byte)
	closed   bool
	closeErr error         // ErrClientClosed or ErrConnClosed once closed
	done     chan struct{} // closed when the readLoop has torn down
	timeout  time.Duration
}

// dialPolicy retries transient connect failures (a registrar restarting
// behind a stable address) with capped exponential backoff.
var dialPolicy = retry.Policy{MaxAttempts: 3, BaseDelay: 25 * time.Millisecond, MaxDelay: 250 * time.Millisecond}

// Dial connects to a server. timeout applies to connect and, for calls
// whose ctx carries no deadline, to each call (0 means 10s).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return DialContext(ctx, addr, timeout)
}

// DialContext connects to a server, bounded by ctx. defaultTimeout (0 =
// 10s) applies to calls whose own ctx has no deadline. Transient connect
// errors are retried with backoff within ctx's budget.
//
// Dials are gated by the endpoint's process-wide circuit breaker: once an
// endpoint has failed repeatedly, DialContext fast-fails with
// breaker.ErrOpen (no network activity) until the cooldown admits a
// probe. Transport failures on established clients feed the same breaker,
// so a mid-flight connection loss also counts against the endpoint.
func DialContext(ctx context.Context, addr string, defaultTimeout time.Duration) (*Client, error) {
	if defaultTimeout <= 0 {
		defaultTimeout = 10 * time.Second
	}
	br := breaker.For(addr)
	if err := br.Allow(); err != nil {
		mDialErrs.Inc()
		return nil, err
	}
	var conn net.Conn
	err := retry.Do(ctx, dialPolicy, func() error {
		var d net.Dialer
		var derr error
		conn, derr = d.DialContext(ctx, "tcp", addr)
		return derr
	})
	if err != nil {
		mDialErrs.Inc()
		// Caller cancellation is not endpoint health: settle the Allow
		// without moving the breaker either way.
		if ctx.Err() != nil {
			br.Cancel()
		} else {
			br.Record(true)
		}
		return nil, err
	}
	br.Record(false)
	mDials.Inc()
	mConns.Add(1)
	c := &Client{
		addr:    addr,
		br:      br,
		conn:    conn,
		pending: map[uint64]chan *frame{},
		timeout: defaultTimeout,
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Addr returns the endpoint this client dialed ("" for clients made by
// tests around raw conns).
func (c *Client) Addr() string { return c.addr }

// OnPush installs the handler for server push frames. Install before
// issuing calls that create subscriptions.
func (c *Client) OnPush(f func(method string, body []byte)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onPush = f
}

// readLoop drains response and push frames until the connection dies,
// then fails every pending call and closes c.done. It exits on any read
// error, including the conn.Close issued by Close, so it can never leak.
func (c *Client) readLoop() {
	for {
		f, err := readFrame(c.conn)
		if err != nil {
			c.mu.Lock()
			if !c.closed {
				// The peer (or network) ended the connection.
				c.closed = true
				c.closeErr = ErrConnClosed
				mConnLost.Inc()
				if c.br != nil {
					c.br.Record(true)
				}
			}
			c.pending = nil // waiters wake via c.done
			c.mu.Unlock()
			mConns.Add(-1) // readLoop runs once per dialed conn
			close(c.done)
			return
		}
		switch f.Kind {
		case kindResponse:
			c.mu.Lock()
			ch := c.pending[f.ID]
			delete(c.pending, f.ID)
			c.mu.Unlock()
			if ch != nil {
				ch <- f
			}
		case kindPush:
			c.mu.Lock()
			h := c.onPush
			c.mu.Unlock()
			if h != nil {
				h(f.Method, f.Body)
			}
		}
	}
}

// Call sends a request and waits for the response, ctx's end, or client
// shutdown, whichever comes first. A ctx without a deadline gets the
// client's default timeout.
func (c *Client) Call(ctx context.Context, method string, body []byte) (_ []byte, rerr error) {
	if obs.On() {
		start := time.Now()
		obs.AddWireRT(ctx)
		defer func() {
			obs.Default.Counter("gondi_rpc_calls_total",
				"RPC round-trips issued, by method.", obs.Label{K: "method", V: method}).Inc()
			obs.Default.Histogram("gondi_rpc_call_seconds",
				"RPC round-trip latency, by method.", obs.Label{K: "method", V: method}).Since(start)
			if rerr != nil {
				obs.Default.Counter("gondi_rpc_call_errors_total",
					"RPC round-trips that failed, by method.", obs.Label{K: "method", V: method}).Inc()
			}
		}()
	}
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	c.mu.Lock()
	if c.closed {
		err := c.closeErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return nil, err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan *frame, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	// The ctx deadline is a real I/O deadline for the request write: a
	// peer that has stopped reading cannot wedge the sender past it.
	if dl, ok := ctx.Deadline(); ok {
		_ = c.conn.SetWriteDeadline(dl)
	}
	err := writeFrame(c.conn, &c.writeMu, &frame{Kind: kindRequest, ID: id, Method: method, Body: body})
	_ = c.conn.SetWriteDeadline(time.Time{})
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		closeErr := c.closeErr
		c.mu.Unlock()
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("rpc: %s: %w", method, cerr)
		}
		// The write deadline mirrors ctx's; the net poller can see the
		// expiry before ctx's own timer fires.
		if _, hasDL := ctx.Deadline(); hasDL && errors.Is(err, os.ErrDeadlineExceeded) {
			return nil, fmt.Errorf("rpc: %s: %w", method, context.DeadlineExceeded)
		}
		if closeErr != nil {
			return nil, closeErr
		}
		return nil, err
	}
	select {
	case f := <-ch:
		// Any response — even a handler error — proves the endpoint is
		// alive.
		if c.br != nil {
			c.br.Record(false)
		}
		if f.Err != "" {
			return nil, &RemoteError{Method: method, Msg: f.Err}
		}
		return f.Body, nil
	case <-c.done:
		c.mu.Lock()
		err := c.closeErr
		c.mu.Unlock()
		// A response may have raced with teardown.
		select {
		case f := <-ch:
			if f.Err != "" {
				return nil, &RemoteError{Method: method, Msg: f.Err}
			}
			return f.Body, nil
		default:
		}
		if err == nil {
			err = ErrConnClosed
		}
		return nil, err
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("rpc: %s: %w", method, ctx.Err())
	}
}

// Close shuts the connection down. Pending calls fail with
// ErrClientClosed; the read loop exits once the kernel aborts its blocked
// read.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.closeErr = ErrClientClosed
	c.mu.Unlock()
	return c.conn.Close()
}

// Closed reports whether the connection has terminated.
func (c *Client) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Done returns a channel closed when the client's read loop has fully
// torn down (tests use it to prove the goroutine exits).
func (c *Client) Done() <-chan struct{} { return c.done }
