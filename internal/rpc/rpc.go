// Package rpc is the wire substrate shared by the Jini registrar and HDNS
// protocols: length-delimited binary frames over TCP, with request/response
// multiplexing, credit-based flow control, native batch frames, per-connection
// state, and server-initiated push frames (used for remote event delivery).
package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gondi/internal/breaker"
	"gondi/internal/core"
	"gondi/internal/obs"
	"gondi/internal/retry"
)

// Wire-level metrics, shared by every protocol built on this substrate
// (Jini registrar, HDNS). Latency is observed per method so slow RPCs are
// distinguishable from chatty ones.
var (
	mDials = obs.Default.Counter("gondi_rpc_dials_total",
		"RPC connections established.")
	mDialErrs = obs.Default.Counter("gondi_rpc_dial_errors_total",
		"RPC connection attempts that failed after retries.")
	mConns = obs.Default.Gauge("gondi_rpc_conns_open",
		"RPC client connections currently open.")
	mConnLost = obs.Default.Counter("gondi_rpc_conns_lost_total",
		"RPC connections terminated by the peer or the network.")
	mInflight = obs.Default.Gauge("gondi_rpc_inflight",
		"RPC calls currently in flight (credits held) across all clients.")
	mCreditStalls = obs.Default.Counter("gondi_rpc_credit_stalls_total",
		"RPC calls that had to wait for a flow-control credit.")
	mBusy = obs.Default.Counter("gondi_rpc_busy_total",
		"RPC calls shed by a server's in-flight window.")
	mBatchSize = obs.Default.Histogram("gondi_rpc_batch_size_items",
		"RPC batch sizes; recorded as 1µs per item, so p50 in µs is the median batch size.")
)

// Frame kinds.
const (
	kindRequest       = 1
	kindResponse      = 2
	kindPush          = 3
	kindCredit        = 4 // server→client: ID carries the advertised window
	kindBatchRequest  = 5
	kindBatchResponse = 6
)

// maxFrame bounds a single frame to guard against corrupt length prefixes.
const maxFrame = 64 << 20

// hardCapRetryAfter is the backoff hint attached to hard-cap sheds. The
// hard cap only trips when a client overruns twice its advertised window
// (misbehaving or abandoning calls wholesale), so a flat hint suffices;
// admission-control sheds carry a measured drain estimate instead.
const hardCapRetryAfter = 50 * time.Millisecond

// busyErrBytes renders a RetryAfter hint as the busy frame's Err payload:
// decimal milliseconds. Reusing the Err field keeps the frame layout —
// and the zero-alloc codec — untouched.
func busyErrBytes(d time.Duration) []byte {
	ms := d.Milliseconds()
	if ms <= 0 {
		return nil
	}
	return strconv.AppendInt(nil, ms, 10)
}

// parseBusyHint inverts busyErrBytes; malformed or absent payloads mean
// "no hint" (zero).
func parseBusyHint(s string) time.Duration {
	ms, err := strconv.ParseInt(s, 10, 64)
	if err != nil || ms <= 0 {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}

// asBusy extracts a *core.ServerBusyError from a handler error so the
// server can answer codeBusy (with the hint on the wire) instead of a
// generic codeErr — the admission controller's sheds stay typed across
// the connection.
func asBusy(err error) (*core.ServerBusyError, bool) {
	var sbe *core.ServerBusyError
	ok := errors.As(err, &sbe)
	return sbe, ok
}

// Flow-control windows. The server advertises its window in a credit
// frame at accept time; until that arrives the client restrains itself to
// the conservative default. The server enforces twice what it advertises:
// the slack absorbs calls whose callers abandoned them (their credit went
// back to the client immediately, but the server is still finishing the
// op), so well-behaved clients never see codeBusy.
const (
	defaultClientWindow = 64
	defaultServerWindow = 256
)

// frame is the unit of transmission. Method/Err/Body are byte slices so a
// decoded frame can alias the read buffer (zero-copy); see codec.go.
type frame struct {
	Kind   uint8
	ID     uint64
	Code   uint8
	Method []byte
	Err    []byte
	Body   []byte
	Items  []frameItem // batch kinds only
}

// ErrConnClosed is returned by calls whose connection the peer (or the
// network) terminated.
var ErrConnClosed = errors.New("rpc: connection closed")

// ErrClientClosed is returned by calls — including calls already in
// flight — when the local side called Close. It is distinct from
// ErrConnClosed so callers can tell an orderly local shutdown from a torn
// connection.
var ErrClientClosed = errors.New("rpc: client closed")

// RemoteError carries an error string produced by a server handler.
type RemoteError struct {
	Method string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote %s: %s", e.Method, e.Msg)
}

// Handler processes one request on a server. conn identifies the calling
// connection and supports Push for event delivery; body is the request
// payload, and the returned bytes are the response payload.
type Handler func(conn *ServerConn, body []byte) ([]byte, error)

// Server accepts connections and dispatches method handlers.
type Server struct {
	lis      net.Listener
	mu       sync.Mutex
	handlers map[string]Handler
	conns    map[*ServerConn]struct{}
	onClose  []func(*ServerConn)
	window   int
	closed   bool
	wg       sync.WaitGroup
}

// NewServer creates a server listening on addr ("127.0.0.1:0" for an
// ephemeral port).
func NewServer(addr string) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		lis:      lis,
		handlers: map[string]Handler{},
		conns:    map[*ServerConn]struct{}{},
		window:   defaultServerWindow,
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// SetWindow changes the per-connection in-flight window advertised to
// clients that connect after the call (tests and overload tuning).
func (s *Server) SetWindow(n int) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	s.window = n
	s.mu.Unlock()
}

// Handle registers a method handler. Must be called before clients invoke
// the method; registration is safe at any time.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// OnConnClose registers a callback invoked when a client connection ends
// (used to drop event subscriptions and expire session state).
func (s *Server) OnConnClose(f func(*ServerConn)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onClose = append(s.onClose, f)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		window := s.window
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		sc := &ServerConn{srv: s, conn: conn, vals: map[string]any{}, window: window}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(sc)
	}
}

func (s *Server) handler(method []byte) Handler {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.handlers[string(method)]
}

func (s *Server) serveConn(sc *ServerConn) {
	defer s.wg.Done()
	defer func() {
		sc.conn.Close()
		s.mu.Lock()
		delete(s.conns, sc)
		hooks := make([]func(*ServerConn), len(s.onClose))
		copy(hooks, s.onClose)
		s.mu.Unlock()
		for _, h := range hooks {
			h(sc)
		}
	}()
	// Advertise the flow-control window before any responses.
	if err := writeFrame(sc.conn, &sc.writeMu, &frame{Kind: kindCredit, ID: uint64(sc.window)}); err != nil {
		return
	}
	hardCap := int64(2 * sc.window)
	fr := frameReader{r: sc.conn}
	for {
		f, err := fr.next()
		if err != nil {
			return
		}
		switch f.Kind {
		case kindRequest:
			if sc.inflight.Load() >= hardCap {
				mBusy.Inc()
				_ = writeFrame(sc.conn, &sc.writeMu, &frame{Kind: kindResponse, ID: f.ID, Code: codeBusy,
					Err: busyErrBytes(hardCapRetryAfter)})
				continue
			}
			// The decode buffer is reused by the next read: copy what the
			// handler goroutine keeps.
			h := s.handler(f.Method)
			id := f.ID
			method := string(f.Method)
			body := append([]byte(nil), f.Body...)
			sc.inflight.Add(1)
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer sc.inflight.Add(-1)
				resp := &frame{Kind: kindResponse, ID: id}
				if h == nil {
					resp.Code = codeErr
					resp.Err = []byte("unknown method " + method)
				} else {
					out, herr := h(sc, body)
					switch sbe, busy := asBusy(herr); {
					case busy:
						mBusy.Inc()
						resp.Code = codeBusy
						resp.Err = busyErrBytes(sbe.RetryAfter)
					case herr != nil:
						resp.Code = codeErr
						resp.Err = []byte(herr.Error())
					default:
						resp.Body = out
					}
				}
				_ = writeFrame(sc.conn, &sc.writeMu, resp)
			}()
		case kindBatchRequest:
			// A batch holds one credit and runs as one unit; items execute
			// sequentially so responses preserve submission order.
			if sc.inflight.Load() >= hardCap {
				mBusy.Inc()
				_ = writeFrame(sc.conn, &sc.writeMu, &frame{Kind: kindBatchResponse, ID: f.ID, Code: codeBusy,
					Err: busyErrBytes(hardCapRetryAfter)})
				continue
			}
			mBatchSize.Observe(time.Duration(len(f.Items)) * time.Microsecond)
			id := f.ID
			items := make([]frameItem, len(f.Items))
			for i, it := range f.Items {
				items[i] = frameItem{
					Method: append([]byte(nil), it.Method...),
					Body:   append([]byte(nil), it.Body...),
				}
			}
			sc.inflight.Add(1)
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer sc.inflight.Add(-1)
				resp := &frame{Kind: kindBatchResponse, ID: id, Items: make([]frameItem, len(items))}
				for i := range items {
					h := s.handler(items[i].Method)
					out := &resp.Items[i]
					if h == nil {
						out.Code = codeErr
						out.Err = []byte("unknown method " + string(items[i].Method))
						continue
					}
					body, herr := h(sc, items[i].Body)
					if sbe, busy := asBusy(herr); busy {
						mBusy.Inc()
						out.Code = codeBusy
						out.Err = busyErrBytes(sbe.RetryAfter)
						continue
					}
					if herr != nil {
						out.Code = codeErr
						out.Err = []byte(herr.Error())
						continue
					}
					out.Body = body
				}
				_ = writeFrame(sc.conn, &sc.writeMu, resp)
			}()
		default:
			// Credit/push frames are client-bound; ignore strays.
		}
	}
}

// Close stops the listener and closes all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*ServerConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.lis.Close()
	for _, c := range conns {
		c.conn.Close()
	}
	s.wg.Wait()
	return err
}

// ServerConn is the server's view of one client connection.
type ServerConn struct {
	srv      *Server
	conn     net.Conn
	writeMu  sync.Mutex
	valsMu   sync.Mutex
	vals     map[string]any
	window   int
	inflight atomic.Int64
}

// Push sends an unsolicited frame to the client (event delivery).
func (sc *ServerConn) Push(method string, body []byte) error {
	return writeFrame(sc.conn, &sc.writeMu, &frame{Kind: kindPush, Method: []byte(method), Body: body})
}

// RemoteAddr returns the peer address.
func (sc *ServerConn) RemoteAddr() string { return sc.conn.RemoteAddr().String() }

// Set stores connection-scoped state (e.g. authentication principal,
// subscription registry).
func (sc *ServerConn) Set(key string, v any) {
	sc.valsMu.Lock()
	defer sc.valsMu.Unlock()
	sc.vals[key] = v
}

// Get retrieves connection-scoped state.
func (sc *ServerConn) Get(key string) (any, bool) {
	sc.valsMu.Lock()
	defer sc.valsMu.Unlock()
	v, ok := sc.vals[key]
	return v, ok
}

// creditGate bounds the calls a client may have in flight on one
// connection. Credits are acquired before the request is written and
// returned when its pending entry is removed — by the response, by ctx
// cancellation, or by a failed write — so exactly one release follows
// every successful acquire.
type creditGate struct {
	mu      sync.Mutex
	limit   int
	used    int
	waiters int
	waitCh  chan struct{}
	closed  bool
	err     error
}

func newCreditGate(limit int) *creditGate {
	return &creditGate{limit: limit, waitCh: make(chan struct{})}
}

// acquire blocks until a credit is free, ctx ends, or the gate closes.
func (g *creditGate) acquire(ctx context.Context) error {
	stalled := false
	g.mu.Lock()
	for {
		if g.closed {
			err := g.err
			g.mu.Unlock()
			return err
		}
		if g.used < g.limit {
			g.used++
			g.mu.Unlock()
			mInflight.Add(1)
			return nil
		}
		if !stalled {
			stalled = true
			mCreditStalls.Inc()
		}
		ch := g.waitCh
		g.waiters++
		g.mu.Unlock()
		select {
		case <-ctx.Done():
			g.mu.Lock()
			g.waiters--
			g.mu.Unlock()
			return ctx.Err()
		case <-ch:
			g.mu.Lock()
			g.waiters--
		}
	}
}

// release returns one credit and wakes waiters.
func (g *creditGate) release() {
	g.mu.Lock()
	if g.used > 0 {
		g.used--
	}
	g.broadcastLocked()
	g.mu.Unlock()
	mInflight.Add(-1)
}

// setLimit applies a server-advertised window.
func (g *creditGate) setLimit(n int) {
	if n < 1 {
		n = 1
	}
	g.mu.Lock()
	g.limit = n
	g.broadcastLocked()
	g.mu.Unlock()
}

// closeGate fails current and future acquirers with err.
func (g *creditGate) closeGate(err error) {
	g.mu.Lock()
	g.closed = true
	g.err = err
	g.broadcastLocked()
	g.mu.Unlock()
}

func (g *creditGate) broadcastLocked() {
	if g.waiters == 0 {
		return
	}
	close(g.waitCh)
	g.waitCh = make(chan struct{})
}

// result is a response delivered to a waiting call, with every field
// copied out of the read buffer.
type result struct {
	code  uint8
	err   string
	body  []byte
	items []itemResult // batch responses
}

type itemResult struct {
	code uint8
	err  string
	body []byte
}

// Client is a multiplexing RPC client. Calls are context-first: the ctx
// deadline becomes a real write deadline on the connection and bounds the
// wait for the response; cancellation aborts an in-flight call
// immediately with ctx.Err() and returns its flow-control credit.
type Client struct {
	addr     string
	br       *breaker.Breaker
	conn     net.Conn
	credits  *creditGate
	writeMu  sync.Mutex
	mu       sync.Mutex
	pending  map[uint64]chan result
	nextID   uint64
	onPush   func(method string, body []byte)
	closed   bool
	closeErr error         // ErrClientClosed or ErrConnClosed once closed
	done     chan struct{} // closed when the readLoop has torn down
	timeout  time.Duration
}

// dialPolicy retries transient connect failures (a registrar restarting
// behind a stable address) with capped exponential backoff.
var dialPolicy = retry.Policy{MaxAttempts: 3, BaseDelay: 25 * time.Millisecond, MaxDelay: 250 * time.Millisecond}

// Dial connects to a server. timeout applies to connect and, for calls
// whose ctx carries no deadline, to each call (0 means 10s).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return DialContext(ctx, addr, timeout)
}

// DialContext connects to a server, bounded by ctx. defaultTimeout (0 =
// 10s) applies to calls whose own ctx has no deadline. Transient connect
// errors are retried with backoff within ctx's budget.
//
// Dials are gated by the endpoint's process-wide circuit breaker: once an
// endpoint has failed repeatedly, DialContext fast-fails with
// breaker.ErrOpen (no network activity) until the cooldown admits a
// probe. Transport failures on established clients feed the same breaker,
// so a mid-flight connection loss also counts against the endpoint.
func DialContext(ctx context.Context, addr string, defaultTimeout time.Duration) (*Client, error) {
	if defaultTimeout <= 0 {
		defaultTimeout = 10 * time.Second
	}
	br := breaker.For(addr)
	if err := br.Allow(); err != nil {
		mDialErrs.Inc()
		return nil, err
	}
	var conn net.Conn
	err := retry.Do(ctx, dialPolicy, func() error {
		var d net.Dialer
		var derr error
		conn, derr = d.DialContext(ctx, "tcp", addr)
		return derr
	})
	if err != nil {
		mDialErrs.Inc()
		// Caller cancellation is not endpoint health: settle the Allow
		// without moving the breaker either way.
		if ctx.Err() != nil {
			br.Cancel()
		} else {
			br.Record(true)
		}
		return nil, err
	}
	br.Record(false)
	mDials.Inc()
	mConns.Add(1)
	c := &Client{
		addr:    addr,
		br:      br,
		conn:    conn,
		credits: newCreditGate(defaultClientWindow),
		pending: map[uint64]chan result{},
		timeout: defaultTimeout,
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Addr returns the endpoint this client dialed ("" for clients made by
// tests around raw conns).
func (c *Client) Addr() string { return c.addr }

// OnPush installs the handler for server push frames. Install before
// issuing calls that create subscriptions.
func (c *Client) OnPush(f func(method string, body []byte)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onPush = f
}

// deliver hands a decoded response to its waiting call. Removing the
// pending entry transfers the call's credit back: the remover releases.
func (c *Client) deliver(id uint64, res result) {
	c.mu.Lock()
	ch, ok := c.pending[id]
	if ok {
		delete(c.pending, id)
	}
	c.mu.Unlock()
	if !ok {
		// The caller abandoned the call and already took its credit back.
		return
	}
	c.credits.release()
	ch <- res
}

// readLoop drains response, push, and credit frames until the connection
// dies, then fails every pending call and closes c.done. It exits on any
// read error, including the conn.Close issued by Close, so it can never
// leak.
func (c *Client) readLoop() {
	fr := frameReader{r: c.conn}
	for {
		f, err := fr.next()
		if err != nil {
			c.mu.Lock()
			if !c.closed {
				// The peer (or network) ended the connection.
				c.closed = true
				c.closeErr = ErrConnClosed
				mConnLost.Inc()
				if c.br != nil {
					c.br.Record(true)
				}
			}
			closeErr := c.closeErr
			n := len(c.pending)
			c.pending = nil // waiters wake via c.done
			c.mu.Unlock()
			// Pending calls held credits that will never be released
			// through deliver; square the gauge before poisoning the gate.
			if n > 0 {
				mInflight.Add(int64(-n))
			}
			c.credits.closeGate(closeErr)
			mConns.Add(-1) // readLoop runs once per dialed conn
			close(c.done)
			return
		}
		switch f.Kind {
		case kindResponse:
			res := result{code: f.Code, err: string(f.Err)}
			if len(f.Body) > 0 {
				res.body = append([]byte(nil), f.Body...)
			}
			c.deliver(f.ID, res)
		case kindBatchResponse:
			res := result{code: f.Code, err: string(f.Err), items: make([]itemResult, len(f.Items))}
			for i, it := range f.Items {
				res.items[i] = itemResult{code: it.Code, err: string(it.Err)}
				if len(it.Body) > 0 {
					res.items[i].body = append([]byte(nil), it.Body...)
				}
			}
			c.deliver(f.ID, res)
		case kindCredit:
			c.credits.setLimit(int(f.ID))
		case kindPush:
			c.mu.Lock()
			h := c.onPush
			c.mu.Unlock()
			if h != nil {
				h(string(f.Method), append([]byte(nil), f.Body...))
			}
		}
	}
}

// abandon removes a call's pending entry, returning its credit if the
// entry was still present (a racing response may have taken it first).
func (c *Client) abandon(id uint64) {
	c.mu.Lock()
	_, ok := c.pending[id]
	if ok {
		delete(c.pending, id)
	}
	c.mu.Unlock()
	if ok {
		c.credits.release()
	}
}

// register assigns an ID and pending channel for one call. The caller
// must hold a credit.
func (c *Client) register() (uint64, chan result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		err := c.closeErr
		if err == nil {
			err = ErrClientClosed
		}
		return 0, nil, err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan result, 1)
	c.pending[id] = ch
	return id, ch, nil
}

// Call sends a request and waits for the response, ctx's end, or client
// shutdown, whichever comes first. A ctx without a deadline gets the
// client's default timeout. Calls beyond the connection's credit window
// block until a credit frees (credit stalls are counted in
// gondi_rpc_credit_stalls_total); a server that sheds the request returns
// *core.ServerBusyError.
func (c *Client) Call(ctx context.Context, method string, body []byte) (_ []byte, rerr error) {
	if obs.On() {
		start := time.Now()
		obs.AddWireRT(ctx)
		defer func() {
			obs.Default.Counter("gondi_rpc_calls_total",
				"RPC round-trips issued, by method.", obs.Label{K: "method", V: method}).Inc()
			obs.Default.Histogram("gondi_rpc_call_seconds",
				"RPC round-trip latency, by method.", obs.Label{K: "method", V: method}).Since(start)
			if rerr != nil {
				obs.Default.Counter("gondi_rpc_call_errors_total",
					"RPC round-trips that failed, by method.", obs.Label{K: "method", V: method}).Inc()
			}
		}()
	}
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	req := frame{Kind: kindRequest, Method: []byte(method), Body: body}
	res, err := c.roundTrip(ctx, method, &req)
	if err != nil {
		return nil, err
	}
	switch res.code {
	case codeBusy:
		return nil, &core.ServerBusyError{Endpoint: c.addr, Op: method, RetryAfter: parseBusyHint(res.err)}
	case codeErr:
		return nil, &RemoteError{Method: method, Msg: res.err}
	}
	return res.body, nil
}

// BatchItem is one operation in a CallBatch.
type BatchItem struct {
	Method string
	Body   []byte
}

// BatchResult is one operation's outcome from CallBatch.
type BatchResult struct {
	Body []byte
	Err  error
}

// CallBatch sends every item in one batch frame, holding one flow-control
// credit, and returns one result per item in submission order. The server
// runs the items sequentially, so batched writes observe the same
// ordering a pipelined caller would. Per-item failures come back in each
// BatchResult; the call-level error is reserved for transport failures,
// ctx expiry, and whole-batch shedding (*core.ServerBusyError).
func (c *Client) CallBatch(ctx context.Context, items []BatchItem) (_ []BatchResult, rerr error) {
	if len(items) == 0 {
		return nil, nil
	}
	if obs.On() {
		start := time.Now()
		obs.AddWireRT(ctx)
		obs.AddBatch(ctx, len(items))
		mBatchSize.Observe(time.Duration(len(items)) * time.Microsecond)
		defer func() {
			obs.Default.Counter("gondi_rpc_batch_calls_total",
				"RPC batch round-trips issued.").Inc()
			obs.Default.Histogram("gondi_rpc_batch_seconds",
				"RPC batch round-trip latency.").Since(start)
			if rerr != nil {
				obs.Default.Counter("gondi_rpc_batch_errors_total",
					"RPC batch round-trips that failed.").Inc()
			}
		}()
	}
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	req := frame{Kind: kindBatchRequest, Items: make([]frameItem, len(items))}
	for i, it := range items {
		req.Items[i] = frameItem{Method: []byte(it.Method), Body: it.Body}
	}
	res, err := c.roundTrip(ctx, "batch", &req)
	if err != nil {
		return nil, err
	}
	if res.code == codeBusy {
		return nil, &core.ServerBusyError{Endpoint: c.addr, Op: "batch", RetryAfter: parseBusyHint(res.err)}
	}
	if res.code == codeErr {
		return nil, &RemoteError{Method: "batch", Msg: res.err}
	}
	if len(res.items) != len(items) {
		return nil, fmt.Errorf("rpc: batch answered %d of %d items", len(res.items), len(items))
	}
	out := make([]BatchResult, len(items))
	for i, it := range res.items {
		if it.code == codeBusy {
			out[i].Err = &core.ServerBusyError{Endpoint: c.addr, Op: items[i].Method, RetryAfter: parseBusyHint(it.err)}
			continue
		}
		if it.code != codeOK {
			out[i].Err = &RemoteError{Method: items[i].Method, Msg: it.err}
			continue
		}
		out[i].Body = it.body
	}
	return out, nil
}

// roundTrip runs the shared wire exchange: acquire a credit, register a
// pending entry, stamp the frame ID, write, and wait. Exactly one of the
// response path (deliver) and the abandonment paths releases the credit.
func (c *Client) roundTrip(ctx context.Context, method string, req *frame) (result, error) {
	if err := c.credits.acquire(ctx); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return result{}, fmt.Errorf("rpc: %s: %w", method, err)
		}
		return result{}, err
	}
	id, ch, err := c.register()
	if err != nil {
		c.credits.release()
		return result{}, err
	}
	req.ID = id

	// The ctx deadline is a real I/O deadline for the request write: a
	// peer that has stopped reading cannot wedge the sender past it.
	if dl, ok := ctx.Deadline(); ok {
		_ = c.conn.SetWriteDeadline(dl)
	}
	err = writeFrame(c.conn, &c.writeMu, req)
	_ = c.conn.SetWriteDeadline(time.Time{})
	if err != nil {
		c.abandon(id)
		c.mu.Lock()
		closeErr := c.closeErr
		c.mu.Unlock()
		if cerr := ctx.Err(); cerr != nil {
			return result{}, fmt.Errorf("rpc: %s: %w", method, cerr)
		}
		// The write deadline mirrors ctx's; the net poller can see the
		// expiry before ctx's own timer fires.
		if _, hasDL := ctx.Deadline(); hasDL && errors.Is(err, os.ErrDeadlineExceeded) {
			return result{}, fmt.Errorf("rpc: %s: %w", method, context.DeadlineExceeded)
		}
		if closeErr != nil {
			return result{}, closeErr
		}
		return result{}, err
	}
	select {
	case res := <-ch:
		// Any response — even a handler error or busy shed — proves the
		// endpoint is alive. This settles the call's breaker outcome
		// exactly once.
		if c.br != nil {
			c.br.Record(false)
		}
		return res, nil
	case <-c.done:
		c.mu.Lock()
		err := c.closeErr
		c.mu.Unlock()
		// A response may have raced with teardown.
		select {
		case res := <-ch:
			return res, nil
		default:
		}
		if err == nil {
			err = ErrConnClosed
		}
		return result{}, err
	case <-ctx.Done():
		// Remove the pending entry and return the credit immediately: an
		// abandoned call must not pin the window until its response
		// straggles in (or never does).
		c.abandon(id)
		return result{}, fmt.Errorf("rpc: %s: %w", method, ctx.Err())
	}
}

// Close shuts the connection down. Pending calls fail with
// ErrClientClosed; the read loop exits once the kernel aborts its blocked
// read.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.closeErr = ErrClientClosed
	c.mu.Unlock()
	return c.conn.Close()
}

// Closed reports whether the connection has terminated.
func (c *Client) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Done returns a channel closed when the client's read loop has fully
// torn down (tests use it to prove the goroutine exits).
func (c *Client) Done() <-chan struct{} { return c.done }
