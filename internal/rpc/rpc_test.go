package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c, err := Dial(s.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return s, c
}

func TestCallRoundTrip(t *testing.T) {
	s, c := newPair(t)
	s.Handle("echo", func(_ *ServerConn, body []byte) ([]byte, error) {
		return body, nil
	})
	out, err := c.Call(context.Background(), "echo", []byte("hello"))
	if err != nil || !bytes.Equal(out, []byte("hello")) {
		t.Fatalf("Call = %q, %v", out, err)
	}
}

func TestRemoteError(t *testing.T) {
	s, c := newPair(t)
	s.Handle("fail", func(_ *ServerConn, _ []byte) ([]byte, error) {
		return nil, errors.New("boom")
	})
	_, err := c.Call(context.Background(), "fail", nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "boom" {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	_, c := newPair(t)
	if _, err := c.Call(context.Background(), "nope", nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestConcurrentCalls(t *testing.T) {
	s, c := newPair(t)
	s.Handle("id", func(_ *ServerConn, body []byte) ([]byte, error) {
		return body, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("msg-%d", i))
			out, err := c.Call(context.Background(), "id", msg)
			if err != nil || !bytes.Equal(out, msg) {
				t.Errorf("call %d: %q, %v", i, out, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestPush(t *testing.T) {
	s, c := newPair(t)
	got := make(chan string, 1)
	c.OnPush(func(method string, body []byte) {
		got <- method + ":" + string(body)
	})
	s.Handle("subscribe", func(sc *ServerConn, _ []byte) ([]byte, error) {
		go sc.Push("event", []byte("data"))
		return nil, nil
	})
	if _, err := c.Call(context.Background(), "subscribe", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != "event:data" {
			t.Errorf("push = %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no push received")
	}
}

func TestConnState(t *testing.T) {
	s, c := newPair(t)
	s.Handle("set", func(sc *ServerConn, body []byte) ([]byte, error) {
		sc.Set("k", string(body))
		return nil, nil
	})
	s.Handle("get", func(sc *ServerConn, _ []byte) ([]byte, error) {
		v, _ := sc.Get("k")
		str, _ := v.(string)
		return []byte(str), nil
	})
	if _, err := c.Call(context.Background(), "set", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	out, err := c.Call(context.Background(), "get", nil)
	if err != nil || string(out) != "v1" {
		t.Fatalf("get = %q, %v", out, err)
	}
}

func TestOnConnClose(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	closed := make(chan struct{})
	s.OnConnClose(func(*ServerConn) { close(closed) })
	c, err := Dial(s.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Ensure the connection is established server-side first.
	s.Handle("ping", func(*ServerConn, []byte) ([]byte, error) { return nil, nil })
	if _, err := c.Call(context.Background(), "ping", nil); err != nil {
		t.Fatal(err)
	}
	c.Close()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("OnConnClose not fired")
	}
}

func TestCallAfterServerClose(t *testing.T) {
	s, c := newPair(t)
	s.Handle("ping", func(*ServerConn, []byte) ([]byte, error) { return nil, nil })
	if _, err := c.Call(context.Background(), "ping", nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Wait for the client to observe the close.
	deadline := time.Now().Add(2 * time.Second)
	for !c.Closed() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Call(context.Background(), "ping", nil); err == nil {
		t.Fatal("call after close should fail")
	}
}

func TestLargePayload(t *testing.T) {
	s, c := newPair(t)
	s.Handle("echo", func(_ *ServerConn, body []byte) ([]byte, error) {
		return body, nil
	})
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	out, err := c.Call(context.Background(), "echo", big)
	if err != nil || !bytes.Equal(out, big) {
		t.Fatalf("1MB echo failed: len=%d err=%v", len(out), err)
	}
}

func TestSlowHandlerTimeout(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Handle("slow", func(*ServerConn, []byte) ([]byte, error) {
		time.Sleep(500 * time.Millisecond)
		return nil, nil
	})
	c, err := Dial(s.Addr(), 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(context.Background(), "slow", nil); err == nil {
		t.Fatal("expected timeout")
	}
}

func TestCallHonorsContextCancel(t *testing.T) {
	s, c := newPair(t)
	release := make(chan struct{})
	s.Handle("block", func(*ServerConn, []byte) ([]byte, error) {
		<-release
		return nil, nil
	})
	defer close(release)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(ctx, "block", nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight call did not abort on cancel")
	}
}

func TestCallHonorsContextDeadline(t *testing.T) {
	s, c := newPair(t)
	release := make(chan struct{})
	s.Handle("block", func(*ServerConn, []byte) ([]byte, error) {
		<-release
		return nil, nil
	})
	defer close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Call(ctx, "block", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("deadline ignored: call took %v", elapsed)
	}
}

func TestClosePendingCallsGetErrClientClosed(t *testing.T) {
	s, c := newPair(t)
	release := make(chan struct{})
	s.Handle("block", func(*ServerConn, []byte) ([]byte, error) {
		<-release
		return nil, nil
	})
	defer close(release)
	const n = 5
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := c.Call(context.Background(), "block", nil)
			errs <- err
		}()
	}
	time.Sleep(30 * time.Millisecond) // let the calls get in flight
	c.Close()
	for i := 0; i < n; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrClientClosed) {
				t.Fatalf("pending call err = %v, want ErrClientClosed", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("pending call hung after Close")
		}
	}
	// New calls fail the same way.
	if _, err := c.Call(context.Background(), "block", nil); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("post-close call err = %v, want ErrClientClosed", err)
	}
}

func TestPeerCloseYieldsErrConnClosed(t *testing.T) {
	s, c := newPair(t)
	s.Handle("ping", func(*ServerConn, []byte) ([]byte, error) { return nil, nil })
	if _, err := c.Call(context.Background(), "ping", nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	select {
	case <-c.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("client did not observe server close")
	}
	if _, err := c.Call(context.Background(), "ping", nil); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("err = %v, want ErrConnClosed", err)
	}
}

// TestReadLoopExitsOnClose proves the readLoop goroutine terminates after
// Close — both with an idle connection and with calls in flight.
func TestReadLoopExitsOnClose(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	block := make(chan struct{})
	defer close(block)
	s.Handle("block", func(*ServerConn, []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	for _, inflight := range []bool{false, true} {
		c, err := Dial(s.Addr(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if inflight {
			go func() { _, _ = c.Call(context.Background(), "block", nil) }()
			time.Sleep(10 * time.Millisecond)
		}
		c.Close()
		select {
		case <-c.Done():
		case <-time.After(2 * time.Second):
			t.Fatalf("readLoop leaked (inflight=%v)", inflight)
		}
	}
}
