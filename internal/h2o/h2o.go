// Package h2o is the hosting environment HDNS runs in (§4.3 of the
// paper): a lightweight kernel that hosts named pluglets (deployable
// components), authenticates principals, enforces user-defined security
// policies on kernel actions, and distributes events — the capabilities
// the paper says HDNS inherits from H2O (dynamic deployment, security
// infrastructure, and distributed event notification).
package h2o

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Errors returned by the kernel.
var (
	ErrNotDeployed    = errors.New("h2o: pluglet not deployed")
	ErrAlreadyExists  = errors.New("h2o: pluglet already deployed")
	ErrNotRunning     = errors.New("h2o: pluglet not running")
	ErrAlreadyRunning = errors.New("h2o: pluglet already running")
	ErrUnknownType    = errors.New("h2o: pluglet type not in repository")
	ErrBadCredentials = errors.New("h2o: authentication failed")
	ErrDenied         = errors.New("h2o: permission denied")
	ErrBadSession     = errors.New("h2o: invalid session")
)

// Pluglet is a deployable kernel component.
type Pluglet interface {
	// Start activates the pluglet with access to its kernel context.
	Start(ctx *PlugletContext) error
	// Stop deactivates the pluglet and releases its resources.
	Stop() error
}

// PlugletFactory creates pluglet instances; config is deployment-specific.
type PlugletFactory func(config map[string]string) (Pluglet, error)

// PlugletContext gives a running pluglet access to kernel services.
type PlugletContext struct {
	// Name is the deployment name.
	Name string
	// Config is the deployment configuration.
	Config map[string]string
	kernel *Kernel
}

// Publish emits an event on the kernel bus on behalf of the pluglet.
func (pc *PlugletContext) Publish(topic string, payload any) {
	pc.kernel.Publish(pc.Name+"/"+topic, payload)
}

// Subscribe registers for events on the kernel bus.
func (pc *PlugletContext) Subscribe(topic string, fn func(Event)) (cancel func()) {
	return pc.kernel.Subscribe(topic, fn)
}

// PlugletState is a deployment's lifecycle state.
type PlugletState int

// Lifecycle states.
const (
	StateDeployed PlugletState = iota
	StateRunning
	StateStopped
)

func (s PlugletState) String() string {
	switch s {
	case StateDeployed:
		return "deployed"
	case StateRunning:
		return "running"
	case StateStopped:
		return "stopped"
	default:
		return "?"
	}
}

// PlugletInfo describes a deployment.
type PlugletInfo struct {
	Name  string
	Type  string
	State PlugletState
}

type deployment struct {
	info    PlugletInfo
	pluglet Pluglet
	config  map[string]string
}

// Event is a kernel bus event.
type Event struct {
	Topic   string
	Payload any
}

// Permission actions understood by the default policy.
const (
	ActionDeploy    = "deploy"
	ActionStart     = "start"
	ActionStop      = "stop"
	ActionUndeploy  = "undeploy"
	ActionSubscribe = "subscribe"
	ActionPublish   = "publish"
)

// Policy decides whether a principal may perform an action. Actions are
// matched against granted patterns; a grant of "*" allows everything, and
// a trailing "*" matches prefixes ("start*" allows "start").
type Policy struct {
	mu     sync.RWMutex
	grants map[string][]string // principal -> action patterns
}

// NewPolicy builds an empty (deny-all) policy.
func NewPolicy() *Policy {
	return &Policy{grants: map[string][]string{}}
}

// Grant allows the principal the given action patterns.
func (p *Policy) Grant(principal string, actions ...string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.grants[principal] = append(p.grants[principal], actions...)
}

// Allows reports whether principal may perform action.
func (p *Policy) Allows(principal, action string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, pat := range p.grants[principal] {
		if pat == "*" || pat == action {
			return true
		}
		if strings.HasSuffix(pat, "*") && strings.HasPrefix(action, pat[:len(pat)-1]) {
			return true
		}
	}
	return false
}

// Kernel is the H2O hosting kernel.
type Kernel struct {
	mu          sync.Mutex
	repository  map[string]PlugletFactory
	deployments map[string]*deployment
	principals  map[string]string // name -> hex(sha256(secret))
	sessions    map[string]string // token -> principal
	policy      *Policy

	subMu  sync.Mutex
	subs   map[int]*subscription
	nextID int
}

type subscription struct {
	topic string
	fn    func(Event)
}

// NewKernel builds a kernel with a deny-all policy and no principals;
// grant permissions via Policy().Grant. Kernels without registered
// principals skip authentication (open mode), matching H2O's pluggable
// authentication configurations.
func NewKernel() *Kernel {
	return &Kernel{
		repository:  map[string]PlugletFactory{},
		deployments: map[string]*deployment{},
		principals:  map[string]string{},
		sessions:    map[string]string{},
		policy:      NewPolicy(),
		subs:        map[int]*subscription{},
	}
}

// Policy returns the kernel's security policy for configuration.
func (k *Kernel) Policy() *Policy { return k.policy }

// RegisterType adds a pluglet type to the repository ("remote network
// repository" in the paper; here an in-process registry).
func (k *Kernel) RegisterType(typeName string, f PlugletFactory) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.repository[typeName] = f
}

// AddPrincipal registers a principal with a shared secret. Once any
// principal exists, sessions are required for kernel actions.
func (k *Kernel) AddPrincipal(name, secret string) {
	sum := sha256.Sum256([]byte(secret))
	k.mu.Lock()
	defer k.mu.Unlock()
	k.principals[name] = hex.EncodeToString(sum[:])
}

// Authenticate verifies a principal's secret and opens a session.
func (k *Kernel) Authenticate(name, secret string) (token string, err error) {
	sum := sha256.Sum256([]byte(secret))
	digest := hex.EncodeToString(sum[:])
	k.mu.Lock()
	defer k.mu.Unlock()
	want, ok := k.principals[name]
	if !ok || subtle.ConstantTimeCompare([]byte(want), []byte(digest)) != 1 {
		return "", ErrBadCredentials
	}
	var raw [16]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return "", err
	}
	token = hex.EncodeToString(raw[:])
	k.sessions[token] = name
	return token, nil
}

// Logout closes a session.
func (k *Kernel) Logout(token string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.sessions, token)
}

// authorize maps a session token to a principal and checks the policy.
// Open-mode kernels (no principals) allow everything.
func (k *Kernel) authorizeLocked(token, action string) error {
	if len(k.principals) == 0 {
		return nil
	}
	principal, ok := k.sessions[token]
	if !ok {
		return ErrBadSession
	}
	if !k.policy.Allows(principal, action) {
		return fmt.Errorf("%w: %s may not %s", ErrDenied, principal, action)
	}
	return nil
}

// Deploy instantiates a repository type under a deployment name.
func (k *Kernel) Deploy(token, name, typeName string, config map[string]string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if err := k.authorizeLocked(token, ActionDeploy); err != nil {
		return err
	}
	if _, exists := k.deployments[name]; exists {
		return ErrAlreadyExists
	}
	f, ok := k.repository[typeName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownType, typeName)
	}
	p, err := f(config)
	if err != nil {
		return err
	}
	k.deployments[name] = &deployment{
		info:    PlugletInfo{Name: name, Type: typeName, State: StateDeployed},
		pluglet: p,
		config:  config,
	}
	return nil
}

// Start activates a deployed pluglet.
func (k *Kernel) Start(token, name string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if err := k.authorizeLocked(token, ActionStart); err != nil {
		return err
	}
	d, ok := k.deployments[name]
	if !ok {
		return ErrNotDeployed
	}
	if d.info.State == StateRunning {
		return ErrAlreadyRunning
	}
	ctx := &PlugletContext{Name: name, Config: d.config, kernel: k}
	if err := d.pluglet.Start(ctx); err != nil {
		return err
	}
	d.info.State = StateRunning
	return nil
}

// Stop deactivates a running pluglet.
func (k *Kernel) Stop(token, name string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if err := k.authorizeLocked(token, ActionStop); err != nil {
		return err
	}
	d, ok := k.deployments[name]
	if !ok {
		return ErrNotDeployed
	}
	if d.info.State != StateRunning {
		return ErrNotRunning
	}
	if err := d.pluglet.Stop(); err != nil {
		return err
	}
	d.info.State = StateStopped
	return nil
}

// Undeploy removes a deployment (stopping it first if needed).
func (k *Kernel) Undeploy(token, name string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if err := k.authorizeLocked(token, ActionUndeploy); err != nil {
		return err
	}
	d, ok := k.deployments[name]
	if !ok {
		return ErrNotDeployed
	}
	if d.info.State == StateRunning {
		if err := d.pluglet.Stop(); err != nil {
			return err
		}
	}
	delete(k.deployments, name)
	return nil
}

// List describes all deployments, sorted by name.
func (k *Kernel) List() []PlugletInfo {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]PlugletInfo, 0, len(k.deployments))
	for _, d := range k.deployments {
		out = append(out, d.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Publish emits an event to all subscribers whose topic pattern matches
// (exact match, or a trailing "*" prefix pattern).
func (k *Kernel) Publish(topic string, payload any) {
	k.subMu.Lock()
	var fire []func(Event)
	for _, s := range k.subs {
		if topicMatches(s.topic, topic) {
			fire = append(fire, s.fn)
		}
	}
	k.subMu.Unlock()
	e := Event{Topic: topic, Payload: payload}
	for _, fn := range fire {
		fn(e)
	}
}

// Subscribe registers a handler for a topic pattern; the returned cancel
// function removes it.
func (k *Kernel) Subscribe(topicPattern string, fn func(Event)) (cancel func()) {
	k.subMu.Lock()
	id := k.nextID
	k.nextID++
	k.subs[id] = &subscription{topic: topicPattern, fn: fn}
	k.subMu.Unlock()
	return func() {
		k.subMu.Lock()
		delete(k.subs, id)
		k.subMu.Unlock()
	}
}

func topicMatches(pattern, topic string) bool {
	if pattern == topic || pattern == "*" {
		return true
	}
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(topic, pattern[:len(pattern)-1])
	}
	return false
}
