package h2o

import (
	"errors"
	"sync"
	"testing"
)

type testPluglet struct {
	mu      sync.Mutex
	started int
	stopped int
	ctx     *PlugletContext
	failOn  string
}

func (p *testPluglet) Start(ctx *PlugletContext) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failOn == "start" {
		return errors.New("boom")
	}
	p.started++
	p.ctx = ctx
	return nil
}

func (p *testPluglet) Stop() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failOn == "stop" {
		return errors.New("boom")
	}
	p.stopped++
	return nil
}

func newTestKernel(p *testPluglet) *Kernel {
	k := NewKernel()
	k.RegisterType("test", func(config map[string]string) (Pluglet, error) {
		return p, nil
	})
	return k
}

func TestLifecycle(t *testing.T) {
	p := &testPluglet{}
	k := newTestKernel(p)
	if err := k.Deploy("", "svc", "test", map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	if err := k.Deploy("", "svc", "test", nil); !errors.Is(err, ErrAlreadyExists) {
		t.Errorf("dup deploy: %v", err)
	}
	if err := k.Deploy("", "x", "ghost", nil); !errors.Is(err, ErrUnknownType) {
		t.Errorf("unknown type: %v", err)
	}
	if err := k.Start("", "svc"); err != nil {
		t.Fatal(err)
	}
	if err := k.Start("", "svc"); !errors.Is(err, ErrAlreadyRunning) {
		t.Errorf("double start: %v", err)
	}
	if p.ctx == nil || p.ctx.Config["k"] != "v" || p.ctx.Name != "svc" {
		t.Errorf("context = %+v", p.ctx)
	}
	infos := k.List()
	if len(infos) != 1 || infos[0].State != StateRunning || infos[0].Type != "test" {
		t.Errorf("List = %+v", infos)
	}
	if err := k.Stop("", "svc"); err != nil {
		t.Fatal(err)
	}
	if err := k.Stop("", "svc"); !errors.Is(err, ErrNotRunning) {
		t.Errorf("double stop: %v", err)
	}
	if err := k.Undeploy("", "svc"); err != nil {
		t.Fatal(err)
	}
	if err := k.Start("", "svc"); !errors.Is(err, ErrNotDeployed) {
		t.Errorf("start after undeploy: %v", err)
	}
	if p.started != 1 || p.stopped != 1 {
		t.Errorf("start/stop counts = %d/%d", p.started, p.stopped)
	}
}

func TestUndeployStopsRunning(t *testing.T) {
	p := &testPluglet{}
	k := newTestKernel(p)
	_ = k.Deploy("", "svc", "test", nil)
	_ = k.Start("", "svc")
	if err := k.Undeploy("", "svc"); err != nil {
		t.Fatal(err)
	}
	if p.stopped != 1 {
		t.Error("undeploy did not stop")
	}
}

func TestStartFailure(t *testing.T) {
	p := &testPluglet{failOn: "start"}
	k := newTestKernel(p)
	_ = k.Deploy("", "svc", "test", nil)
	if err := k.Start("", "svc"); err == nil {
		t.Fatal("expected start failure")
	}
	if k.List()[0].State != StateDeployed {
		t.Error("failed start changed state")
	}
}

func TestAuthenticationAndPolicy(t *testing.T) {
	p := &testPluglet{}
	k := newTestKernel(p)
	k.AddPrincipal("admin", "s3cret")
	k.AddPrincipal("viewer", "view")
	k.Policy().Grant("admin", "*")
	k.Policy().Grant("viewer", ActionSubscribe)

	// No session: denied (closed mode).
	if err := k.Deploy("", "svc", "test", nil); !errors.Is(err, ErrBadSession) {
		t.Errorf("no session: %v", err)
	}
	// Bad credentials.
	if _, err := k.Authenticate("admin", "wrong"); !errors.Is(err, ErrBadCredentials) {
		t.Errorf("bad creds: %v", err)
	}
	if _, err := k.Authenticate("ghost", "x"); !errors.Is(err, ErrBadCredentials) {
		t.Errorf("unknown principal: %v", err)
	}
	// Viewer cannot deploy.
	vtok, err := k.Authenticate("viewer", "view")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Deploy(vtok, "svc", "test", nil); !errors.Is(err, ErrDenied) {
		t.Errorf("viewer deploy: %v", err)
	}
	// Admin can.
	atok, err := k.Authenticate("admin", "s3cret")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Deploy(atok, "svc", "test", nil); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(atok, "svc"); err != nil {
		t.Fatal(err)
	}
	// Logout invalidates.
	k.Logout(atok)
	if err := k.Stop(atok, "svc"); !errors.Is(err, ErrBadSession) {
		t.Errorf("after logout: %v", err)
	}
}

func TestPolicyPatterns(t *testing.T) {
	p := NewPolicy()
	p.Grant("u", "start*", ActionSubscribe)
	if !p.Allows("u", "start") || !p.Allows("u", "startFoo") {
		t.Error("prefix grant failed")
	}
	if p.Allows("u", ActionDeploy) || p.Allows("other", "start") {
		t.Error("over-permissive")
	}
	p.Grant("root", "*")
	if !p.Allows("root", "anything") {
		t.Error("wildcard grant failed")
	}
}

func TestEventBus(t *testing.T) {
	k := NewKernel()
	var mu sync.Mutex
	var got []string
	cancel := k.Subscribe("hdns/*", func(e Event) {
		mu.Lock()
		got = append(got, e.Topic)
		mu.Unlock()
	})
	k.Publish("hdns/bind", 1)
	k.Publish("other/x", 2)
	k.Publish("hdns/unbind", 3)
	mu.Lock()
	if len(got) != 2 || got[0] != "hdns/bind" || got[1] != "hdns/unbind" {
		t.Errorf("got %v", got)
	}
	mu.Unlock()
	cancel()
	k.Publish("hdns/more", 4)
	mu.Lock()
	if len(got) != 2 {
		t.Error("event after cancel")
	}
	mu.Unlock()
}

func TestPlugletContextBus(t *testing.T) {
	p := &testPluglet{}
	k := newTestKernel(p)
	_ = k.Deploy("", "svc", "test", nil)
	_ = k.Start("", "svc")
	var mu sync.Mutex
	var got []Event
	p.ctx.Subscribe("svc/*", func(e Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	})
	p.ctx.Publish("changed", "payload")
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].Topic != "svc/changed" || got[0].Payload != "payload" {
		t.Errorf("got %+v", got)
	}
}
