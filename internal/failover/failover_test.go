package failover

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"gondi/internal/breaker"
	"gondi/internal/core"
)

func TestEndpointsSplitsAndTrims(t *testing.T) {
	got := Endpoints(" a:1 ,b:2,,c:3 ")
	want := []string{"a:1", "b:2", "c:3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Endpoints = %v, want %v", got, want)
	}
}

func TestOpenFailsOverToHealthyEndpoint(t *testing.T) {
	breaker.ResetAll()
	var tried []string
	v, err := Open(context.Background(), "dead:1,live:2", func(ctx context.Context, ep string) (string, error) {
		tried = append(tried, ep)
		if ep == "dead:1" {
			return "", errors.New("connection refused")
		}
		return "ctx@" + ep, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != "ctx@live:2" {
		t.Fatalf("v = %q", v)
	}
	if !reflect.DeepEqual(tried, []string{"dead:1", "live:2"}) {
		t.Fatalf("tried = %v", tried)
	}
}

func TestOpenSkipsBreakerOpenEndpoints(t *testing.T) {
	breaker.ResetAll()
	// Trip dead:1's breaker.
	br := breaker.For("dead:1")
	for i := 0; i < 10; i++ {
		br.Record(true)
	}
	var tried []string
	_, err := Open(context.Background(), "dead:1,live:2", func(ctx context.Context, ep string) (string, error) {
		tried = append(tried, ep)
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tried, []string{"live:2"}) {
		t.Fatalf("tried = %v, want only the healthy endpoint", tried)
	}
}

func TestOpenAllDownIsServiceUnavailable(t *testing.T) {
	breaker.ResetAll()
	boom := errors.New("boom")
	_, err := Open(context.Background(), "a:1,b:2", func(ctx context.Context, ep string) (string, error) {
		return "", fmt.Errorf("dial %s: %w", ep, boom)
	})
	var sue *core.ServiceUnavailableError
	if !errors.As(err, &sue) {
		t.Fatalf("err = %v, want ServiceUnavailableError", err)
	}
	if sue.Endpoint != "b:2" {
		t.Fatalf("Endpoint = %q", sue.Endpoint)
	}
	if !errors.Is(err, boom) {
		t.Fatal("underlying cause not preserved")
	}
}

func TestOpenAllBreakersOpen(t *testing.T) {
	breaker.ResetAll()
	for _, ep := range []string{"a:1", "b:2"} {
		br := breaker.For(ep)
		for i := 0; i < 10; i++ {
			br.Record(true)
		}
	}
	_, err := Open(context.Background(), "a:1,b:2", func(ctx context.Context, ep string) (string, error) {
		t.Fatalf("dial reached %s through an open breaker", ep)
		return "", nil
	})
	var sue *core.ServiceUnavailableError
	if !errors.As(err, &sue) {
		t.Fatalf("err = %v, want ServiceUnavailableError", err)
	}
	if !errors.Is(err, breaker.ErrOpen) {
		t.Fatalf("err = %v, want to wrap breaker.ErrOpen", err)
	}
}

func TestOpenRepeatedFailuresTripBreaker(t *testing.T) {
	breaker.ResetAll()
	calls := 0
	for i := 0; i < 10; i++ {
		_, _ = Open(context.Background(), "flaky:9", func(ctx context.Context, ep string) (string, error) {
			calls++
			return "", errors.New("reset by peer")
		})
	}
	if calls >= 10 {
		t.Fatalf("breaker never opened: %d dials for 10 opens", calls)
	}
	if breaker.For("flaky:9").State() != breaker.Open {
		t.Fatalf("breaker state = %v", breaker.For("flaky:9").State())
	}
}

func TestOpenCtxErrNotChargedToBreaker(t *testing.T) {
	breaker.ResetAll()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 20; i++ {
		_, err := Open(context.Background(), "slow:1", func(c context.Context, ep string) (string, error) {
			return "", ctx.Err()
		})
		if err == nil {
			t.Fatal("expected error")
		}
	}
	if st := breaker.For("slow:1").State(); st != breaker.Closed {
		t.Fatalf("cancellations tripped the breaker: state = %v", st)
	}
}

func TestOpenEmptyAuthority(t *testing.T) {
	_, err := Open(context.Background(), " , ", func(ctx context.Context, ep string) (string, error) {
		return "", nil
	})
	var sue *core.ServiceUnavailableError
	if !errors.As(err, &sue) {
		t.Fatalf("err = %v", err)
	}
}
