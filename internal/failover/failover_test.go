package failover

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"gondi/internal/breaker"
	"gondi/internal/core"
)

func TestEndpointsSplitsAndTrims(t *testing.T) {
	got := Endpoints(" a:1 ,b:2,,c:3 ")
	want := []string{"a:1", "b:2", "c:3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Endpoints = %v, want %v", got, want)
	}
}

func TestOpenFailsOverToHealthyEndpoint(t *testing.T) {
	breaker.ResetAll()
	var tried []string
	v, err := Open(context.Background(), "dead:1,live:2", func(ctx context.Context, ep string) (string, error) {
		tried = append(tried, ep)
		if ep == "dead:1" {
			return "", errors.New("connection refused")
		}
		return "ctx@" + ep, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != "ctx@live:2" {
		t.Fatalf("v = %q", v)
	}
	if !reflect.DeepEqual(tried, []string{"dead:1", "live:2"}) {
		t.Fatalf("tried = %v", tried)
	}
}

func TestOpenSkipsBreakerOpenEndpoints(t *testing.T) {
	breaker.ResetAll()
	// Trip dead:1's breaker.
	br := breaker.For("dead:1")
	for i := 0; i < 10; i++ {
		br.Record(true)
	}
	var tried []string
	_, err := Open(context.Background(), "dead:1,live:2", func(ctx context.Context, ep string) (string, error) {
		tried = append(tried, ep)
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tried, []string{"live:2"}) {
		t.Fatalf("tried = %v, want only the healthy endpoint", tried)
	}
}

func TestOpenAllDownIsServiceUnavailable(t *testing.T) {
	breaker.ResetAll()
	boom := errors.New("boom")
	_, err := Open(context.Background(), "a:1,b:2", func(ctx context.Context, ep string) (string, error) {
		return "", fmt.Errorf("dial %s: %w", ep, boom)
	})
	var sue *core.ServiceUnavailableError
	if !errors.As(err, &sue) {
		t.Fatalf("err = %v, want ServiceUnavailableError", err)
	}
	if sue.Endpoint != "b:2" {
		t.Fatalf("Endpoint = %q", sue.Endpoint)
	}
	if !errors.Is(err, boom) {
		t.Fatal("underlying cause not preserved")
	}
}

func TestOpenAllBreakersOpen(t *testing.T) {
	breaker.ResetAll()
	for _, ep := range []string{"a:1", "b:2"} {
		br := breaker.For(ep)
		for i := 0; i < 10; i++ {
			br.Record(true)
		}
	}
	_, err := Open(context.Background(), "a:1,b:2", func(ctx context.Context, ep string) (string, error) {
		t.Fatalf("dial reached %s through an open breaker", ep)
		return "", nil
	})
	var sue *core.ServiceUnavailableError
	if !errors.As(err, &sue) {
		t.Fatalf("err = %v, want ServiceUnavailableError", err)
	}
	if !errors.Is(err, breaker.ErrOpen) {
		t.Fatalf("err = %v, want to wrap breaker.ErrOpen", err)
	}
}

// instrumented wraps a dial result in the breaker accounting every real
// dial layer (rpc/ldapsrv/dnssrv DialContext) performs: Allow before the
// wire, Record after.
func instrumented(ep string, err error) error {
	br := breaker.For(ep)
	if aerr := br.Allow(); aerr != nil {
		return aerr
	}
	br.Record(err != nil)
	return err
}

func TestOpenRepeatedFailuresTripBreaker(t *testing.T) {
	breaker.ResetAll()
	calls := 0
	for i := 0; i < 10; i++ {
		_, _ = Open(context.Background(), "flaky:9", func(ctx context.Context, ep string) (string, error) {
			calls++
			return "", instrumented(ep, errors.New("reset by peer"))
		})
	}
	// The dial layer is the only accountant, so the breaker trips after
	// exactly DefaultThreshold wire attempts — not half that from failover
	// double-recording the same failures.
	if calls != breaker.DefaultThreshold {
		t.Fatalf("dial attempts = %d for 10 opens, want exactly %d (the trip threshold)", calls, breaker.DefaultThreshold)
	}
	if breaker.For("flaky:9").State() != breaker.Open {
		t.Fatalf("breaker state = %v", breaker.For("flaky:9").State())
	}
}

func TestOpenRecordsNothingItself(t *testing.T) {
	breaker.ResetAll()
	for i := 0; i < 20; i++ {
		_, err := Open(context.Background(), "slow:1", func(c context.Context, ep string) (string, error) {
			return "", errors.New("boom")
		})
		if err == nil {
			t.Fatal("expected error")
		}
	}
	// The dial func above does no breaker accounting, and failover must
	// not either: breaker state is owned by exactly one layer.
	if st := breaker.For("slow:1").State(); st != breaker.Closed {
		t.Fatalf("failover charged the breaker itself: state = %v", st)
	}
}

func TestOpenHalfOpenProbeReachesTheWire(t *testing.T) {
	breaker.ResetAll()
	const ep = "heal:1"
	br := breaker.Configure(ep, breaker.Config{Threshold: 1, Cooldown: 30 * time.Millisecond})
	dead := true
	dials := 0
	dial := func(ctx context.Context, e string) (string, error) {
		dials++
		if dead {
			return "", instrumented(e, errors.New("connection refused"))
		}
		return "ctx@" + e, instrumented(e, nil)
	}
	if _, err := Open(context.Background(), ep, dial); err == nil {
		t.Fatal("expected the dead endpoint to fail")
	}
	if br.State() != breaker.Open {
		t.Fatalf("state after failure = %v, want open", br.State())
	}
	// While open, failover must skip the endpoint without touching it.
	if _, err := Open(context.Background(), ep, dial); !errors.Is(err, breaker.ErrOpen) {
		t.Fatalf("err while open = %v, want to wrap breaker.ErrOpen", err)
	}
	if dials != 1 {
		t.Fatalf("dials = %d, want 1: the open-state attempt must be skipped", dials)
	}
	// Once the endpoint heals and the cooldown elapses, the half-open
	// probe must flow through failover to the dial layer and close the
	// circuit — with no operator Reset.
	dead = false
	time.Sleep(50 * time.Millisecond)
	v, err := Open(context.Background(), ep, dial)
	if err != nil {
		t.Fatalf("half-open probe did not re-admit the healed endpoint: %v", err)
	}
	if v != "ctx@"+ep {
		t.Fatalf("v = %q", v)
	}
	if br.State() != breaker.Closed {
		t.Fatalf("state after successful probe = %v, want closed", br.State())
	}
}

func TestOpenEmptyAuthority(t *testing.T) {
	_, err := Open(context.Background(), " , ", func(ctx context.Context, ep string) (string, error) {
		return "", nil
	})
	var sue *core.ServiceUnavailableError
	if !errors.As(err, &sue) {
		t.Fatalf("err = %v", err)
	}
}
