// Package failover opens a provider context against a multi-endpoint
// authority: "host1:port1,host2:port2,…". Endpoints are tried in order,
// each gated by its process-wide circuit breaker, so a dead replica is
// skipped in O(1) once its breaker opens and re-probed only after the
// cooldown. All providers that dial a remote server route their Open
// through this package, which is what makes `gondi://a:1,b:2/path` URLs
// heal around a crashed replica.
//
// The package sits above core (it returns core errors) and beside the
// providers; core itself stays transport-agnostic.
package failover

import (
	"context"
	"errors"
	"strings"

	"gondi/internal/breaker"
	"gondi/internal/core"
)

// DialFunc opens a context against one concrete endpoint.
type DialFunc[T any] func(ctx context.Context, endpoint string) (T, error)

// Endpoints splits a (possibly comma-separated) authority into its
// endpoint list, dropping empty entries.
func Endpoints(authority string) []string {
	parts := strings.Split(authority, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Open tries dial against each endpoint of authority in order. Endpoints
// whose breaker is open are skipped (their turn comes back after the
// cooldown via half-open probes). Each attempt's outcome is recorded with
// the endpoint's breaker. When every endpoint fails — or every breaker
// refused to admit an attempt — the error is a
// *core.ServiceUnavailableError wrapping the last failure.
func Open[T any](ctx context.Context, authority string, dial DialFunc[T]) (T, error) {
	var zero T
	eps := Endpoints(authority)
	if len(eps) == 0 {
		return zero, &core.ServiceUnavailableError{Endpoint: authority, Err: errors.New("no endpoints in authority")}
	}
	var lastErr error
	lastEp := eps[len(eps)-1]
	for _, ep := range eps {
		if err := core.CtxErr(ctx); err != nil {
			return zero, err
		}
		br := breaker.For(ep)
		if err := br.Allow(); err != nil {
			if lastErr == nil {
				lastErr, lastEp = err, ep
			}
			continue
		}
		v, err := dial(ctx, ep)
		if err == nil {
			br.Record(false)
			return v, nil
		}
		// Context cancellation is the caller giving up, not endpoint
		// health; don't charge it to the breaker.
		br.Record(!isCtxErr(err))
		lastErr, lastEp = err, ep
	}
	return zero, &core.ServiceUnavailableError{Endpoint: lastEp, Err: lastErr}
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
