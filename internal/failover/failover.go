// Package failover opens a provider context against a multi-endpoint
// authority: "host1:port1,host2:port2,…". Endpoints are tried in order,
// each gated by its process-wide circuit breaker, so a dead replica is
// skipped in O(1) once its breaker opens and re-probed only after the
// cooldown. All providers that dial a remote server route their Open
// through this package, which is what makes `gondi://a:1,b:2/path` URLs
// heal around a crashed replica.
//
// The package sits above core (it returns core errors) and beside the
// providers; core itself stays transport-agnostic.
package failover

import (
	"context"
	"errors"
	"strings"

	"gondi/internal/breaker"
	"gondi/internal/core"
)

// DialFunc opens a context against one concrete endpoint. A DialFunc is
// expected to own its endpoint's breaker accounting — gate the wire
// attempt with Allow and settle it with Record/Cancel, as rpc.DialContext
// and ldapsrv.DialContext do. Open only *reads* breaker state (Ready) to
// order and skip endpoints; it never consumes the half-open probe slot
// itself, so a probe admitted after the cooldown always reaches the wire.
type DialFunc[T any] func(ctx context.Context, endpoint string) (T, error)

// Endpoints splits a (possibly comma-separated) authority into its
// endpoint list, dropping empty entries.
func Endpoints(authority string) []string {
	parts := strings.Split(authority, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Open tries dial against each endpoint of authority in order. Endpoints
// whose breaker is not ready are skipped (their turn comes back after the
// cooldown via half-open probes). Breaker accounting — the Allow/Record
// pair, and Cancel on caller cancellation — is owned by the dial layer,
// exactly once per endpoint; Open itself records nothing, so a dial
// failure counts once against the trip threshold and the single half-open
// probe slot is consumed only by the attempt that touches the wire. When
// every endpoint fails — or every breaker refused to admit an attempt —
// the error is a *core.ServiceUnavailableError wrapping the last failure.
func Open[T any](ctx context.Context, authority string, dial DialFunc[T]) (T, error) {
	var zero T
	eps := Endpoints(authority)
	if len(eps) == 0 {
		return zero, &core.ServiceUnavailableError{Endpoint: authority, Err: errors.New("no endpoints in authority")}
	}
	var lastErr error
	lastEp := eps[len(eps)-1]
	for _, ep := range eps {
		if err := core.CtxErr(ctx); err != nil {
			return zero, err
		}
		if !breaker.For(ep).Ready() {
			if lastErr == nil {
				lastErr, lastEp = breaker.ErrOpen, ep
			}
			continue
		}
		v, err := dial(ctx, ep)
		if err == nil {
			return v, nil
		}
		lastErr, lastEp = err, ep
	}
	return zero, &core.ServiceUnavailableError{Endpoint: lastEp, Err: lastErr}
}
