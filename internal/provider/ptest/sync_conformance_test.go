package ptest_test

// Sync-engine conformance: three source substrates, one convergence
// contract. The in-memory world exercises watch mode with a listener
// massacre (DropWatches -> EventWatchLost -> resubscribe + resync), the
// HDNS world exercises watch mode over a real wire with a mid-stream
// partition, and the DNS world exercises delta-pull mode against a
// read-only source with an SOA-serial cursor.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"gondi/internal/core"
	"gondi/internal/dnssrv"
	"gondi/internal/fault"
	"gondi/internal/hdns"
	"gondi/internal/jgroups"
	"gondi/internal/provider/dnssp"
	"gondi/internal/provider/hdnssp"
	"gondi/internal/provider/memsp"
	"gondi/internal/provider/ptest"
	"gondi/internal/sync"
)

// ensurePath creates every intermediate context of rel (ignoring
// already-bound parents) and rebinds val at the leaf.
func ensurePath(t *testing.T, c core.Context, base, rel, val string) {
	t.Helper()
	ctx := context.Background()
	full := rel
	if base != "" {
		full = base + "/" + rel
	}
	comps := strings.Split(full, "/")
	for i := 1; i < len(comps); i++ {
		parent := strings.Join(comps[:i], "/")
		if _, err := c.CreateSubcontext(ctx, parent); err != nil && !errors.Is(err, core.ErrAlreadyBound) {
			t.Fatalf("create %s: %v", parent, err)
		}
	}
	if err := c.Rebind(ctx, full, val); err != nil {
		t.Fatalf("rebind %s: %v", full, err)
	}
}

func TestMemSyncConformance(t *testing.T) {
	ptest.RunSyncConformance(t, func(t *testing.T) *ptest.SyncWorld {
		memsp.Register()
		srcSpace, dstSpace := "syncconf-mem-src", "syncconf-mem-dst"
		tree := memsp.Space(srcSpace)
		src := memsp.NewContext(tree, map[string]any{}, "mem://"+srcSpace)
		t.Cleanup(func() { src.Close(); memsp.ResetSpaces() })
		ctx := context.Background()
		if _, err := src.CreateSubcontext(ctx, "data"); err != nil {
			t.Fatal(err)
		}
		return &ptest.SyncWorld{
			Source: "mem://" + srcSpace + "/data",
			Dest:   "mem://" + dstSpace + "/mirror",
			Set: func(t *testing.T, rel, val string) {
				ensurePath(t, src, "data", rel, val)
			},
			Del: func(t *testing.T, rel string) {
				if err := src.Unbind(ctx, "data/"+rel); err != nil && !errors.Is(err, core.ErrNotFound) {
					t.Fatal(err)
				}
			},
			// DropWatches is the watch-loss seam: every registration dies
			// with an EventWatchLost, exactly as if the event transport
			// fell over, and the engine must resubscribe and resync.
			RestartSource:   func(t *testing.T) { tree.DropWatches() },
			ExpectWatchLost: true,
		}
	})
}

func TestHDNSSyncConformance(t *testing.T) {
	ptest.RunSyncConformance(t, func(t *testing.T) *ptest.SyncWorld {
		hdnssp.Register()
		stack := jgroups.DefaultConfig()
		stack.HeartbeatInterval = 50 * time.Millisecond
		newNode := func(group, ep string) *hdns.Node {
			n, err := hdns.NewNode(hdns.NodeConfig{
				Group:      group + "-" + t.Name(),
				Transport:  jgroups.NewFabric().Endpoint(jgroups.Address(ep)),
				Stack:      stack,
				ListenAddr: "127.0.0.1:0",
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { n.Close() })
			return n
		}
		srcNode := newNode("syncconf-src", "sc-src")
		dstNode := newNode("syncconf-dst", "sc-dst")
		// The mirror reaches the source through a fault proxy so the
		// restart subtest can sever it mid-stream; the writer goes
		// straight to the node, like a client on the healthy side of
		// the partition.
		proxy, err := fault.NewProxy(srcNode.Addr(), nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { proxy.Close() })
		writer, err := hdnssp.Open(context.Background(), srcNode.Addr(), map[string]any{
			core.EnvPoolID: t.Name() + "-writer",
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { writer.Close() })
		ctx := context.Background()
		return &ptest.SyncWorld{
			Source: "hdns://" + proxy.Addr(),
			Dest:   "hdns://" + dstNode.Addr(),
			Set: func(t *testing.T, rel, val string) {
				ensurePath(t, writer, "", rel, val)
			},
			Del: func(t *testing.T, rel string) {
				if err := writer.Unbind(ctx, rel); err != nil && !errors.Is(err, core.ErrNotFound) {
					t.Fatal(err)
				}
			},
			RestartSource: func(t *testing.T) {
				proxy.Cut()
				time.Sleep(150 * time.Millisecond)
				proxy.Restore()
			},
			ExpectWatchLost: true,
		}
	})
}

func TestDNSSyncConformance(t *testing.T) {
	ptest.RunSyncConformance(t, func(t *testing.T) *ptest.SyncWorld {
		dnssp.Register()
		memsp.Register()
		s, err := dnssrv.NewServer("127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		z := dnssrv.NewZone("global")
		s.AddZone(z)
		t.Cleanup(memsp.ResetSpaces)
		domain := func(rel string) string {
			comps := strings.Split(rel, "/")
			for i, j := 0, len(comps)-1; i < j; i, j = i+1, j-1 {
				comps[i], comps[j] = comps[j], comps[i]
			}
			return strings.Join(comps, ".") + ".global"
		}
		return &ptest.SyncWorld{
			Source: "dns://" + s.Addr() + "/global",
			Dest:   "mem://syncconf-dns-dst/zone",
			// DNS entries carry their value as a TXT record; the suite
			// verifies through the mirrored TXT attribute.
			AttrValues: true,
			Set: func(t *testing.T, rel, val string) {
				z.Replace(domain(rel), dnssrv.TypeTXT, dnssrv.RR{Txt: []string{val}})
			},
			Del: func(t *testing.T, rel string) {
				z.Remove(domain(rel), dnssrv.TypeANY)
			},
		}
	})
}

// The DNS world's cursor contract end to end: an idle zone must produce
// skipped cycles (one cheap SOA probe, no AXFR walk), which is the
// whole point of the soa-serial attribute.
func TestDNSSyncCursorSkipsIdleCycles(t *testing.T) {
	dnssp.Register()
	memsp.Register()
	s, err := dnssrv.NewServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	z := dnssrv.NewZone("global")
	z.Add(dnssrv.RR{Name: "svc.global", Type: dnssrv.TypeTXT, Txt: []string{"v"}})
	s.AddZone(z)
	t.Cleanup(memsp.ResetSpaces)

	ctx := context.Background()
	m, err := sync.New(ctx, sync.Config{
		Name:      t.Name(),
		SourceURL: "dns://" + s.Addr() + "/global",
		DestURL:   "mem://synccursor-dst/zone",
		Interval:  30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Stop() })

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := m.Status()
		if st.Skipped >= 3 {
			if st.Cursor == "" {
				t.Fatalf("skipping without a cursor: %+v", st)
			}
			if !strings.HasPrefix(st.Cursor, "soa:") {
				t.Fatalf("cursor %q is not SOA-serial based", st.Cursor)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no skipped cycles on an idle zone: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// A zone change must break the skip streak and converge.
	z.Add(dnssrv.RR{Name: "late.global", Type: dnssrv.TypeTXT, Txt: []string{"l"}})
	verify, base, err := core.OpenURL(ctx, "mem://synccursor-dst/zone", map[string]any{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { verify.Close() })
	name := base.Concat(core.MustParseName("late")).String()
	for {
		if _, err := verify.Lookup(ctx, name); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("zone change never propagated: %+v", m.Status())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
