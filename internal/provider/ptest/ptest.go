// Package ptest is a reusable conformance suite for core.DirContext
// implementations. Every provider in this repository runs it, so the
// JNDI-analog semantics — atomic Bind, Rebind overwrite, idempotent
// Unbind, attribute modification batches, filter search scopes — are
// enforced uniformly across radically different substrates, which is the
// paper's access-homogeneity claim turned into an executable contract.
package ptest

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"gondi/internal/core"
)

// Caps declares which optional capabilities a provider supports, so the
// suite can skip what a substrate legitimately cannot do.
type Caps struct {
	// Rename indicates Rename support.
	Rename bool
	// Subcontexts indicates CreateSubcontext/DestroySubcontext support.
	Subcontexts bool
	// PreservesAttrsOnRebind indicates Rebind keeps existing attributes
	// when none are supplied (JNDI semantics).
	PreservesAttrsOnRebind bool
	// IntermediateContextsRequired indicates binds under missing
	// intermediate contexts fail (rather than creating virtual ones).
	IntermediateContextsRequired bool
	// LeavesAreContexts indicates every bound entry can also hold
	// children (LDAP's model, where any entry is a container).
	LeavesAreContexts bool
}

// Factory builds a fresh, empty DirContext for each subtest.
type Factory func(t *testing.T) core.DirContext

// Run executes the conformance suite.
func Run(t *testing.T, caps Caps, factory Factory) {
	CheckGoroutines(t)
	ctx := context.Background()
	t.Run("BindLookupRoundTrip", func(t *testing.T) {
		c := factory(t)
		if err := c.Bind(ctx, "a", "v1"); err != nil {
			t.Fatal(err)
		}
		got, err := c.Lookup(ctx, "a")
		if err != nil || got != "v1" {
			t.Fatalf("Lookup = %v, %v", got, err)
		}
	})

	t.Run("BindIsAtomic", func(t *testing.T) {
		c := factory(t)
		if err := c.Bind(ctx, "a", 1); err != nil {
			t.Fatal(err)
		}
		if err := c.Bind(ctx, "a", 2); !errors.Is(err, core.ErrAlreadyBound) {
			t.Fatalf("second bind: %v", err)
		}
		// The original value survives the failed bind.
		if got, _ := c.Lookup(ctx, "a"); got != 1 {
			t.Fatalf("value after failed bind = %v", got)
		}
	})

	t.Run("RebindOverwrites", func(t *testing.T) {
		c := factory(t)
		if err := c.Rebind(ctx, "a", "old"); err != nil {
			t.Fatal(err)
		}
		if err := c.Rebind(ctx, "a", "new"); err != nil {
			t.Fatal(err)
		}
		if got, _ := c.Lookup(ctx, "a"); got != "new" {
			t.Fatalf("got %v", got)
		}
	})

	t.Run("LookupMissingIsNotFound", func(t *testing.T) {
		c := factory(t)
		if _, err := c.Lookup(ctx, "ghost"); !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("got %v", err)
		}
	})

	t.Run("UnbindIsIdempotent", func(t *testing.T) {
		c := factory(t)
		if err := c.Bind(ctx, "a", 1); err != nil {
			t.Fatal(err)
		}
		if err := c.Unbind(ctx, "a"); err != nil {
			t.Fatal(err)
		}
		if err := c.Unbind(ctx, "a"); err != nil {
			t.Fatalf("second unbind: %v", err)
		}
		if _, err := c.Lookup(ctx, "a"); !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("after unbind: %v", err)
		}
	})

	t.Run("EmptyNameLookupYieldsContext", func(t *testing.T) {
		c := factory(t)
		obj, err := c.Lookup(ctx, "")
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := obj.(core.Context); !ok {
			t.Fatalf("Lookup(\"\") = %T", obj)
		}
	})

	t.Run("ListEnumeratesBindings", func(t *testing.T) {
		c := factory(t)
		for i := 0; i < 3; i++ {
			if err := c.Bind(ctx, fmt.Sprintf("e%d", i), i); err != nil {
				t.Fatal(err)
			}
		}
		pairs, err := c.List(ctx, "")
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) != 3 {
			t.Fatalf("List = %+v", pairs)
		}
		bindings, err := c.ListBindings(ctx, "")
		if err != nil || len(bindings) != 3 {
			t.Fatalf("ListBindings = %+v, %v", bindings, err)
		}
		seen := map[string]bool{}
		for _, b := range bindings {
			seen[b.Name] = true
		}
		for i := 0; i < 3; i++ {
			if !seen[fmt.Sprintf("e%d", i)] {
				t.Fatalf("missing e%d in %v", i, seen)
			}
		}
	})

	t.Run("AttributesRoundTrip", func(t *testing.T) {
		c := factory(t)
		if err := c.BindAttrs(ctx, "a", "v", core.NewAttributes("color", "red", "size", "9")); err != nil {
			t.Fatal(err)
		}
		attrs, err := c.GetAttributes(ctx, "a")
		if err != nil {
			t.Fatal(err)
		}
		if attrs.GetFirst("color") != "red" || attrs.GetFirst("size") != "9" {
			t.Fatalf("attrs = %v", attrs)
		}
		sel, err := c.GetAttributes(ctx, "a", "color")
		if err != nil || sel.Size() != 1 || sel.GetFirst("color") != "red" {
			t.Fatalf("selected = %v, %v", sel, err)
		}
	})

	t.Run("ModifyAttributes", func(t *testing.T) {
		c := factory(t)
		if err := c.BindAttrs(ctx, "a", "v", core.NewAttributes("k", "1")); err != nil {
			t.Fatal(err)
		}
		if err := c.ModifyAttributes(ctx, "a", []core.AttributeMod{
			{Op: core.ModReplace, Attr: core.Attribute{ID: "k", Values: []string{"2"}}},
			{Op: core.ModAdd, Attr: core.Attribute{ID: "extra", Values: []string{"x"}}},
		}); err != nil {
			t.Fatal(err)
		}
		attrs, _ := c.GetAttributes(ctx, "a")
		if attrs.GetFirst("k") != "2" || attrs.GetFirst("extra") != "x" {
			t.Fatalf("after modify: %v", attrs)
		}
		if err := c.ModifyAttributes(ctx, "a", []core.AttributeMod{
			{Op: core.ModRemove, Attr: core.Attribute{ID: "extra"}},
		}); err != nil {
			t.Fatal(err)
		}
		attrs, _ = c.GetAttributes(ctx, "a")
		if _, ok := attrs.Get("extra"); ok {
			t.Fatalf("remove failed: %v", attrs)
		}
		// The bound object is untouched by attribute modification.
		if got, _ := c.Lookup(ctx, "a"); got != "v" {
			t.Fatalf("object after modify = %v", got)
		}
	})

	t.Run("SearchFiltersAndScopes", func(t *testing.T) {
		c := factory(t)
		if err := c.BindAttrs(ctx, "n1", "o1", core.NewAttributes("type", "compute", "rank", "1")); err != nil {
			t.Fatal(err)
		}
		if err := c.BindAttrs(ctx, "n2", "o2", core.NewAttributes("type", "compute", "rank", "5")); err != nil {
			t.Fatal(err)
		}
		if err := c.BindAttrs(ctx, "gw", "o3", core.NewAttributes("type", "gateway")); err != nil {
			t.Fatal(err)
		}
		res, err := c.Search(ctx, "", "(type=compute)", &core.SearchControls{Scope: core.ScopeSubtree})
		if err != nil || len(res) != 2 {
			t.Fatalf("compute search = %+v, %v", res, err)
		}
		res, err = c.Search(ctx, "", "(&(type=compute)(rank>=5))",
			&core.SearchControls{Scope: core.ScopeSubtree, ReturnObject: true})
		if err != nil || len(res) != 1 || res[0].Name != "n2" {
			t.Fatalf("combined search = %+v, %v", res, err)
		}
		if res[0].Object != "o2" {
			t.Fatalf("ReturnObject = %v", res[0].Object)
		}
		res, err = c.Search(ctx, "", "(type=*)", &core.SearchControls{Scope: core.ScopeObject})
		if err != nil || len(res) != 0 {
			t.Fatalf("object-scope from root = %+v, %v", res, err)
		}
		if _, err := c.Search(ctx, "", "not a filter", nil); err == nil {
			t.Fatal("bad filter accepted")
		}
	})

	t.Run("RebindAttrSemantics", func(t *testing.T) {
		if !caps.PreservesAttrsOnRebind {
			t.Skip("provider does not preserve attributes on rebind")
		}
		c := factory(t)
		if err := c.BindAttrs(ctx, "a", "v1", core.NewAttributes("keep", "me")); err != nil {
			t.Fatal(err)
		}
		if err := c.Rebind(ctx, "a", "v2"); err != nil {
			t.Fatal(err)
		}
		attrs, _ := c.GetAttributes(ctx, "a")
		if attrs.GetFirst("keep") != "me" {
			t.Fatalf("attrs dropped: %v", attrs)
		}
		dc, ok := interface{}(c).(core.DirContext)
		if !ok {
			t.Fatal("not a DirContext")
		}
		if err := dc.RebindAttrs(ctx, "a", "v3", &core.Attributes{}); err != nil {
			t.Fatal(err)
		}
		attrs, _ = c.GetAttributes(ctx, "a")
		if _, present := attrs.Get("keep"); present {
			t.Fatalf("explicit empty attrs did not clear: %v", attrs)
		}
	})

	t.Run("Subcontexts", func(t *testing.T) {
		if !caps.Subcontexts {
			t.Skip("provider does not support subcontexts")
		}
		c := factory(t)
		sub, err := c.CreateSubcontext(ctx, "dir")
		if err != nil {
			t.Fatal(err)
		}
		if err := sub.Bind(ctx, "x", 7); err != nil {
			t.Fatal(err)
		}
		got, err := c.Lookup(ctx, "dir/x")
		if err != nil || got != 7 {
			t.Fatalf("composite lookup = %v, %v", got, err)
		}
		if _, err := c.CreateSubcontext(ctx, "dir"); !errors.Is(err, core.ErrAlreadyBound) {
			t.Fatalf("dup subcontext: %v", err)
		}
		if err := c.DestroySubcontext(ctx, "dir"); !errors.Is(err, core.ErrContextNotEmpty) {
			t.Fatalf("destroy non-empty: %v", err)
		}
		if err := sub.Unbind(ctx, "x"); err != nil {
			t.Fatal(err)
		}
		if err := c.DestroySubcontext(ctx, "dir"); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Lookup(ctx, "dir"); !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("destroyed dir still resolves: %v", err)
		}
	})

	t.Run("IntermediateContexts", func(t *testing.T) {
		if !caps.Subcontexts {
			t.Skip("provider does not support subcontexts")
		}
		c := factory(t)
		if caps.IntermediateContextsRequired {
			if err := c.Bind(ctx, "no/such/path", 1); err == nil {
				t.Fatal("bind under missing context succeeded")
			}
		}
		if _, err := c.CreateSubcontext(ctx, "a"); err != nil {
			t.Fatal(err)
		}
		if err := c.Bind(ctx, "a/leaf", 1); err != nil {
			t.Fatal(err)
		}
		// Binding under a value (not a context) must not succeed —
		// except in models where every entry is a container.
		if !caps.LeavesAreContexts {
			if err := c.Bind(ctx, "a/leaf/deep", 2); err == nil {
				t.Fatal("bind under leaf succeeded")
			}
		}
	})

	t.Run("Rename", func(t *testing.T) {
		if !caps.Rename {
			t.Skip("provider does not support rename")
		}
		c := factory(t)
		if err := c.Bind(ctx, "old", "v"); err != nil {
			t.Fatal(err)
		}
		if err := c.Rename(ctx, "old", "new"); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Lookup(ctx, "old"); !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("old name survives: %v", err)
		}
		if got, _ := c.Lookup(ctx, "new"); got != "v" {
			t.Fatalf("renamed = %v", got)
		}
		if err := c.Bind(ctx, "taken", 1); err != nil {
			t.Fatal(err)
		}
		if err := c.Rename(ctx, "new", "taken"); !errors.Is(err, core.ErrAlreadyBound) {
			t.Fatalf("rename onto taken: %v", err)
		}
	})

	t.Run("FederationBoundary", func(t *testing.T) {
		c := factory(t)
		if err := c.Bind(ctx, "gw", core.NewContextReference("mem://elsewhere")); err != nil {
			t.Fatal(err)
		}
		_, err := c.Lookup(ctx, "gw/deep/name")
		var cpe *core.CannotProceedError
		if !errors.As(err, &cpe) {
			t.Fatalf("want CannotProceedError, got %v", err)
		}
		if cpe.RemainingName.String() != "deep/name" {
			t.Fatalf("remaining = %q", cpe.RemainingName.String())
		}
	})

	t.Run("ReferenceableForFederation", func(t *testing.T) {
		c := factory(t)
		r, ok := interface{}(c).(core.Referenceable)
		if !ok {
			t.Skip("provider context is not Referenceable")
		}
		ref, err := r.Reference()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := ref.Get(core.AddrURL); !ok {
			t.Fatalf("reference without URL: %v", ref)
		}
	})

	t.Run("NameInNamespace", func(t *testing.T) {
		c := factory(t)
		if _, err := c.NameInNamespace(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("CanceledContextAborts", func(t *testing.T) {
		c := factory(t)
		if err := c.Bind(ctx, "a", "v"); err != nil {
			t.Fatal(err)
		}
		canceled, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := c.Lookup(canceled, "a"); !errors.Is(err, context.Canceled) {
			t.Fatalf("Lookup under canceled ctx: %v", err)
		}
		if err := c.Bind(canceled, "b", 1); !errors.Is(err, context.Canceled) {
			t.Fatalf("Bind under canceled ctx: %v", err)
		}
		if _, err := c.List(canceled, ""); !errors.Is(err, context.Canceled) {
			t.Fatalf("List under canceled ctx: %v", err)
		}
		if _, err := c.Search(canceled, "", "(a=*)", nil); !errors.Is(err, context.Canceled) {
			t.Fatalf("Search under canceled ctx: %v", err)
		}
		// The cancellation did not disturb existing state.
		if got, err := c.Lookup(ctx, "a"); err != nil || got != "v" {
			t.Fatalf("state after cancel = %v, %v", got, err)
		}
	})

	t.Run("DeadlineExceededSurfaces", func(t *testing.T) {
		c := factory(t)
		expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		if _, err := c.Lookup(expired, "anything"); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Lookup under expired deadline: %v", err)
		}
		if err := c.Rebind(expired, "a", 1); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Rebind under expired deadline: %v", err)
		}
		if err := c.Unbind(expired, "a"); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Unbind under expired deadline: %v", err)
		}
		if _, err := c.GetAttributes(expired, "a"); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("GetAttributes under expired deadline: %v", err)
		}
	})

	runBatchSuite(t, factory)
}
