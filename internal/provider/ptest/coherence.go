package ptest

import (
	"context"
	"errors"
	"testing"
	"time"

	"gondi/internal/cache"
	"gondi/internal/core"
)

// CoherenceWorld is one provider instance seen through two channels: Main
// is the context the cache under test wraps; Side is an independent,
// uncached path to the same store (a second connection, or a second view
// of the same tree) used to make out-of-band changes behind the cache's
// back. BreakWatch, when non-nil, kills the event transport under Main's
// registrations so the watch-loss degradation path can be exercised;
// providers whose transport cannot be broken in-process leave it nil.
type CoherenceWorld struct {
	Main       core.DirContext
	Side       core.DirContext
	BreakWatch func()
}

// CoherenceFactory builds a fresh world per subtest.
type CoherenceFactory func(t *testing.T) *CoherenceWorld

// pollUntil retries fn every few milliseconds until it returns true or the
// deadline passes.
func pollUntil(d time.Duration, fn func() bool) bool {
	deadline := time.Now().Add(d)
	for {
		if fn() {
			return true
		}
		if !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// RunCacheCoherence verifies that the read-through cache stays coherent
// with a provider under out-of-band writes: event-driven invalidation
// where the provider supports Watch, TTL-bounded staleness where it does
// not, negative-entry eviction on successful writes, and the watch-loss →
// TTL degradation contract.
func RunCacheCoherence(t *testing.T, mk CoherenceFactory) {
	CheckGoroutines(t)
	ctx := context.Background()

	wrap := func(t *testing.T, w *CoherenceWorld, cfg cache.Config) *cache.CachedContext {
		c := cache.New(cfg, nil)
		t.Cleanup(func() { c.Close() })
		// The world owns Main's lifecycle (t.Cleanup in its factory); the
		// cache must not double-close it, so the root wrapper is closed via
		// the cache's own Close only.
		return c.Wrap(w.Main)
	}

	t.Run("ReadThroughHit", func(t *testing.T) {
		w := mk(t)
		cc := wrap(t, w, cache.Config{TTL: time.Hour})
		if err := cc.Bind(ctx, "coh-hit", "v1"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			v, err := cc.Lookup(ctx, "coh-hit")
			if err != nil || v != "v1" {
				t.Fatalf("lookup %d = %v, %v", i, v, err)
			}
		}
		if s := cc.Stats(); s.Hits < 2 {
			t.Errorf("hits = %d, want >= 2 (repeated lookups must be served locally)", s.Hits)
		}
	})

	t.Run("StaleReadBoundedByTTL", func(t *testing.T) {
		w := mk(t)
		const ttl = 150 * time.Millisecond
		cc := wrap(t, w, cache.Config{TTL: ttl, DisableEvents: true})
		if err := w.Side.Bind(ctx, "coh-ttl", "old"); err != nil {
			t.Fatal(err)
		}
		if v, err := cc.Lookup(ctx, "coh-ttl"); err != nil || v != "old" {
			t.Fatalf("prime lookup = %v, %v", v, err)
		}
		// Change behind the cache's back: with events disabled the cache
		// may serve "old", but only for at most the TTL.
		if err := w.Side.Rebind(ctx, "coh-ttl", "new"); err != nil {
			t.Fatal(err)
		}
		fresh := pollUntil(10*ttl, func() bool {
			v, err := cc.Lookup(ctx, "coh-ttl")
			return err == nil && v == "new"
		})
		if !fresh {
			t.Fatal("cached value outlived the configured TTL")
		}
	})

	t.Run("EventEvictedFresh", func(t *testing.T) {
		w := mk(t)
		if _, ok := w.Main.(core.EventContext); !ok {
			t.Skip("provider has no event support")
		}
		// TTL far beyond the test: only event invalidation can freshen.
		cc := wrap(t, w, cache.Config{TTL: time.Hour})
		if err := w.Side.Bind(ctx, "coh-ev", "old"); err != nil {
			t.Fatal(err)
		}
		if v, err := cc.Lookup(ctx, "coh-ev"); err != nil || v != "old" {
			t.Fatalf("prime lookup = %v, %v", v, err)
		}
		if err := w.Side.Rebind(ctx, "coh-ev", "new"); err != nil {
			t.Fatal(err)
		}
		fresh := pollUntil(5*time.Second, func() bool {
			v, err := cc.Lookup(ctx, "coh-ev")
			return err == nil && v == "new"
		})
		if !fresh {
			t.Fatal("out-of-band write never reached the cache via events")
		}
	})

	t.Run("NegativeEvictedOnBind", func(t *testing.T) {
		w := mk(t)
		cc := wrap(t, w, cache.Config{TTL: time.Hour, NegativeTTL: time.Hour})
		for i := 0; i < 2; i++ {
			if _, err := cc.Lookup(ctx, "coh-neg"); !errors.Is(err, core.ErrNotFound) {
				t.Fatalf("lookup %d: want ErrNotFound, got %v", i, err)
			}
		}
		if s := cc.Stats(); s.NegativeHits < 1 {
			t.Errorf("negative hits = %d, want >= 1", s.NegativeHits)
		}
		// A successful Bind through the cache must evict the negative
		// entry immediately — not after NegativeTTL.
		if err := cc.Bind(ctx, "coh-neg", "born"); err != nil {
			t.Fatal(err)
		}
		if v, err := cc.Lookup(ctx, "coh-neg"); err != nil || v != "born" {
			t.Fatalf("post-bind lookup = %v, %v", v, err)
		}
	})

	t.Run("WatchLossDegradesToTTL", func(t *testing.T) {
		w := mk(t)
		if _, ok := w.Main.(core.EventContext); !ok {
			t.Skip("provider has no event support")
		}
		if w.BreakWatch == nil {
			t.Skip("world cannot break the event transport")
		}
		const ttl = 200 * time.Millisecond
		cc := wrap(t, w, cache.Config{TTL: ttl})
		if err := w.Side.Bind(ctx, "coh-loss", "old"); err != nil {
			t.Fatal(err)
		}
		if v, err := cc.Lookup(ctx, "coh-loss"); err != nil || v != "old" {
			t.Fatalf("prime lookup = %v, %v", v, err)
		}
		w.BreakWatch()
		if !pollUntil(2*time.Second, func() bool { return cc.Stats().WatchLosses >= 1 }) {
			t.Fatal("cache never observed the watch loss")
		}
		// Degraded: no events will arrive, but staleness must still be
		// bounded by the TTL.
		if err := w.Side.Rebind(ctx, "coh-loss", "new"); err != nil {
			t.Fatal(err)
		}
		fresh := pollUntil(10*ttl, func() bool {
			v, err := cc.Lookup(ctx, "coh-loss")
			return err == nil && v == "new"
		})
		if !fresh {
			t.Fatal("degraded cache served stale data beyond the TTL")
		}
	})
}
