package ptest

import (
	"context"
	"fmt"
	"testing"
	"time"

	"gondi/internal/core"
)

// DurabilityWorld is a replicated naming deployment with durable state
// under test: several replica groups behind one routed context, each
// group anchored by a replica that persists to disk. The callbacks let
// the suite cut power, damage disks, and watch repair without knowing
// the substrate.
type DurabilityWorld struct {
	// Groups is the number of replica groups in the deployment.
	Groups int
	// Open dials a fresh routed context spanning every group, resolving
	// the groups' CURRENT addresses (restarts move ports). id isolates
	// connection pools between the suite's phases.
	Open func(t *testing.T, id string) (core.DirContext, error)
	// Route reports which group the deployment assigns a top-level
	// prefix to, so the suite can prove its name set is non-degenerate.
	Route func(prefix string) int
	// SyncGroup forces group g's durable state to disk — the fsync /
	// snapshot pass a housekeeping tick would eventually run. After it
	// returns, every write acked before the call must survive power loss.
	SyncGroup func(t *testing.T, g int)
	// CrashGroup cuts power to group g's durable replica: no exit-time
	// persistence, no clean-shutdown marker. Redundant in-memory
	// replicas of the group (started via AddReplica) stay up.
	CrashGroup func(t *testing.T, g int)
	// RestartGroup boots group g's durable replica again from whatever
	// its disk holds. It must return once the replica serves — a boot
	// that refuses to start on damaged state fails the suite here.
	RestartGroup func(t *testing.T, g int)
	// CorruptGroup flips bits in group g's at-rest durable state while
	// the replica is down (mid-log WAL damage, not a torn tail).
	CorruptGroup func(t *testing.T, g int)
	// AddReplica starts one more (memory-only) replica in group g and
	// returns once it has joined and pulled state — the redundancy the
	// repair phase recovers from.
	AddReplica func(t *testing.T, g int)
	// Damaged reports whether group g's durable replica booted with
	// quarantined state (sticky across the boot, even after repair).
	Damaged func(g int) bool
	// Repaired reports whether that replica has completed auto-repair
	// since booting damaged.
	Repaired func(g int) bool
}

// RunDurabilityConformance executes the storage-fault contract against
// one live deployment:
//
//   - Crash safety: after a power cut on every group, a restart serves
//     every write acked before the last durable sync — and classifies
//     the crash as a crash, never as corruption.
//   - Corruption handling: mid-log damage on a downed replica's disk
//     makes the restart quarantine and boot degraded — typed damage, a
//     serving process, never a refusal to start — while the other
//     groups keep answering.
//   - Auto-repair: the damaged replica pulls state from its group's
//     surviving replica and returns to serving the full name set.
func RunDurabilityConformance(t *testing.T, factory func(t *testing.T) *DurabilityWorld) {
	CheckGoroutines(t)
	w := factory(t)
	if w.Groups < 2 {
		t.Fatalf("durability conformance needs ≥2 groups, got %d", w.Groups)
	}
	ctx := context.Background()

	const names = 40
	name := func(i int) string { return fmt.Sprintf("dur%d", i) }
	perGroup := make([]int, w.Groups)
	for i := 0; i < names; i++ {
		perGroup[w.Route(name(i))]++
	}
	for g, c := range perGroup {
		if c == 0 {
			t.Fatalf("degenerate name set: no names route to group %d; widen it", g)
		}
	}

	t.Run("AckedWritesSurviveCrash", func(t *testing.T) {
		c, err := w.Open(t, "dur-crash")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < names; i++ {
			if err := c.Bind(ctx, name(i), i); err != nil {
				t.Fatalf("bind %s: %v", name(i), err)
			}
		}
		for g := 0; g < w.Groups; g++ {
			w.SyncGroup(t, g)
			w.CrashGroup(t, g)
		}
		for g := 0; g < w.Groups; g++ {
			w.RestartGroup(t, g)
			if w.Damaged(g) {
				t.Fatalf("group %d classified a pure crash as corruption", g)
			}
		}
		c2, err := w.Open(t, "dur-crash-after")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < names; i++ {
			if _, err := c2.Lookup(ctx, name(i)); err != nil {
				t.Fatalf("acked write lost across crash: %s: %v", name(i), err)
			}
		}
	})

	t.Run("CorruptionQuarantinesAndRepairs", func(t *testing.T) {
		const victim = 0
		// Give the victim group a healthy in-memory peer: it inherits the
		// full state now and is the donor the repair pulls from later.
		w.AddReplica(t, victim)
		w.SyncGroup(t, victim)
		w.CrashGroup(t, victim)
		w.CorruptGroup(t, victim)
		w.RestartGroup(t, victim)
		if !w.Damaged(victim) {
			t.Fatalf("group %d booted from damaged disk without quarantining", victim)
		}
		// Degraded is not down: the other groups answer throughout.
		c, err := w.Open(t, "dur-degraded")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < names; i++ {
			if w.Route(name(i)) == victim {
				continue
			}
			if _, err := c.Lookup(ctx, name(i)); err != nil {
				t.Fatalf("healthy group stopped serving during group %d's repair: %s: %v", victim, name(i), err)
			}
		}
		deadline := time.Now().Add(10 * time.Second)
		for !w.Repaired(victim) {
			if time.Now().After(deadline) {
				t.Fatalf("group %d never auto-repaired from its surviving replica", victim)
			}
			time.Sleep(15 * time.Millisecond)
		}
		// Repair restores the full name set, victim-group names included.
		c2, err := w.Open(t, "dur-repaired")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < names; i++ {
			if _, err := c2.Lookup(ctx, name(i)); err != nil {
				t.Fatalf("name lost to corruption despite repair: %s: %v", name(i), err)
			}
		}
	})
}
