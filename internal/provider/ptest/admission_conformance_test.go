package ptest_test

// The admission conformance suite run against every daemon: each world
// builds its server with a deliberately tiny admission queue (and a
// slow read station where the server takes cost injection) so a
// 32-client storm saturates it. One contract everywhere: saturated
// servers shed typed ServerBusyError with a RetryAfter hint, never
// hang, never trip the breaker on sheds, and drain once load drops.

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"gondi/internal/admission"
	"gondi/internal/core"
	"gondi/internal/costmodel"
	"gondi/internal/dnssrv"
	"gondi/internal/hdns"
	"gondi/internal/jgroups"
	"gondi/internal/jini"
	"gondi/internal/jxta"
	"gondi/internal/ldapsrv"
	"gondi/internal/provider/dnssp"
	"gondi/internal/provider/hdnssp"
	"gondi/internal/provider/jinisp"
	"gondi/internal/provider/jxtasp"
	"gondi/internal/provider/ldapsp"
	"gondi/internal/provider/ptest"
)

// saturableController returns an admission controller whose queue bound
// is small enough for the suite's storm to overrun.
func saturableController(server string, bound int) *admission.Controller {
	return admission.NewController(admission.NewOptions(
		admission.WithServer(server),
		admission.WithQueueBound(bound),
	))
}

// slowReads makes each read hold its admission slot for a visible
// service time, so slots are occupied when the storm piles in.
func slowReads() *costmodel.Costs {
	return &costmodel.Costs{Read: costmodel.NewStation(1, 2*time.Millisecond)}
}

func TestHDNSAdmissionConformance(t *testing.T) {
	ptest.RunAdmissionConformance(t, func(t *testing.T) *ptest.AdmissionWorld {
		n, err := hdns.NewNode(hdns.NodeConfig{
			Group:      "adm-" + t.Name(),
			Transport:  jgroups.NewFabric().Endpoint("adm-node"),
			Stack:      jgroups.DefaultConfig(),
			ListenAddr: "127.0.0.1:0",
			Costs:      slowReads(),
			Admission:  saturableController("ptest-hdns", 2),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return &ptest.AdmissionWorld{
			Open: func(t *testing.T, id string) (core.DirContext, error) {
				pc, err := hdnssp.Open(context.Background(), n.Addr(), map[string]any{
					core.EnvPoolID: t.Name() + "-" + id,
				})
				if err != nil {
					return nil, err
				}
				t.Cleanup(func() { pc.Close() })
				return pc, nil
			},
		}
	})
}

func TestJiniAdmissionConformance(t *testing.T) {
	ptest.RunAdmissionConformance(t, func(t *testing.T) *ptest.AdmissionWorld {
		lus, err := jini.NewLUS(jini.LUSConfig{
			ListenAddr: "127.0.0.1:0",
			Costs:      slowReads(),
			Admission:  saturableController("ptest-jini", 2),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lus.Close() })
		return &ptest.AdmissionWorld{
			Open: func(t *testing.T, id string) (core.DirContext, error) {
				pc, err := jinisp.Open(context.Background(), lus.Addr(), map[string]any{
					core.EnvPoolID: t.Name() + "-" + id,
				})
				if err != nil {
					return nil, err
				}
				t.Cleanup(func() { pc.Close() })
				return pc, nil
			},
		}
	})
}

func TestJXTAAdmissionConformance(t *testing.T) {
	ptest.RunAdmissionConformance(t, func(t *testing.T) *ptest.AdmissionWorld {
		// The rendezvous takes no cost injection, so its handlers never
		// hold queue slots long; saturate the token buckets instead —
		// the storm runs well past 500 ops/sec per class.
		adm := admission.NewController(admission.NewOptions(
			admission.WithServer("ptest-jxta"),
			admission.WithRate(admission.Read, 500, 50),
			admission.WithRate(admission.Write, 500, 50),
			admission.WithRate(admission.Search, 500, 50),
		))
		rdv, err := jxta.NewRendezvous("127.0.0.1:0", jxta.WithAdmission(adm))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rdv.Close() })
		return &ptest.AdmissionWorld{
			Open: func(t *testing.T, id string) (core.DirContext, error) {
				pc, err := jxtasp.Open(context.Background(), rdv.Addr(), map[string]any{
					core.EnvPoolID: t.Name() + "-" + id,
				})
				if err != nil {
					return nil, err
				}
				t.Cleanup(func() { pc.Close() })
				return pc, nil
			},
		}
	})
}

func TestLDAPAdmissionConformance(t *testing.T) {
	ptest.RunAdmissionConformance(t, func(t *testing.T) *ptest.AdmissionWorld {
		srv, err := ldapsrv.NewServer("127.0.0.1:0", ldapsrv.ServerConfig{
			BaseDN:    "dc=adm",
			Costs:     slowReads(),
			Admission: saturableController("ptest-ldap", 2),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return &ptest.AdmissionWorld{
			Open: func(t *testing.T, id string) (core.DirContext, error) {
				pc, err := ldapsp.Open(context.Background(), srv.Addr(), "dc=adm", map[string]any{
					core.EnvPoolID: t.Name() + "-" + id,
				})
				if err != nil {
					return nil, err
				}
				t.Cleanup(func() { pc.Close() })
				return pc, nil
			},
		}
	})
}

func TestDNSAdmissionConformance(t *testing.T) {
	ptest.RunAdmissionConformance(t, func(t *testing.T) *ptest.AdmissionWorld {
		srv, err := dnssrv.NewServer("127.0.0.1:0", slowReads(),
			dnssrv.WithAdmission(saturableController("ptest-dns", 2)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		z := dnssrv.NewZone("global")
		z.Add(dnssrv.RR{Name: "emory.global", Type: dnssrv.TypeA, A: netip.MustParseAddr("170.140.0.1")})
		z.Add(dnssrv.RR{Name: "emory.global", Type: dnssrv.TypeTXT, Txt: []string{"Emory University"}})
		srv.AddZone(z)
		dnssp.Register()
		return &ptest.AdmissionWorld{
			Open: func(t *testing.T, id string) (core.DirContext, error) {
				nc, rest, err := core.OpenURL(context.Background(), "dns://"+srv.Addr(), nil)
				if err != nil {
					return nil, err
				}
				if rest.String() != "" {
					t.Fatalf("unexpected remaining name %q", rest.String())
				}
				t.Cleanup(func() { nc.Close() })
				dc, ok := nc.(core.DirContext)
				if !ok {
					t.Fatalf("dns root is %T, not a DirContext", nc)
				}
				return dc, nil
			},
			ReadOnly: true,
			Seed:     "global",
		}
	})
}
