package ptest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gondi/internal/core"
	"gondi/internal/shard"
)

// ShardWorld is a sharded naming deployment under test: several replica
// groups behind one routed context. Build one per RunShardConformance
// call; the callbacks let the suite change group membership and kill
// groups without knowing the substrate.
type ShardWorld struct {
	// Groups is the number of replica groups in the deployment.
	Groups int
	// Open dials a fresh routed context spanning every group. id
	// isolates connection pools between the suite's phases.
	Open func(t *testing.T, id string) (core.DirContext, error)
	// Route reports which group the deployment's ring assigns a
	// top-level prefix to (the suite cross-checks it against the
	// canonical shard.Cached ring).
	Route func(prefix string) int
	// GroupHolds reports whether group g's replicas store the top-level
	// prefix — read directly from a replica, bypassing routing, so the
	// suite can prove a name lives in exactly one group.
	GroupHolds func(g int, prefix string) bool
	// AddReplica starts one more replica in group g and returns once it
	// has joined and pulled state (the membership-change/rebalance seam).
	AddReplica func(t *testing.T, g int)
	// KillGroup makes every replica of group g unreachable.
	KillGroup func(t *testing.T, g int)
}

// RunShardConformance executes the sharding contract against one
// deployment:
//
//   - Placement: every name lands in exactly the group the canonical
//     ring routes it to, and in no other group.
//   - Routing stability: group-internal membership change (a replica
//     joining mid-stream, with state transfer) never remaps a prefix,
//     and a concurrent write stream across the change loses and
//     duplicates nothing.
//   - Ring math: growing the ring by one group moves ≈1/(g+1) of the
//     keyspace — never more than twice the ideal, never zero.
//   - Partial failure: with one group dead, a cross-group batch fails
//     typed per item — dead-group items error, live-group items apply.
func RunShardConformance(t *testing.T, factory func(t *testing.T) *ShardWorld) {
	CheckGoroutines(t)
	w := factory(t)
	if w.Groups < 2 {
		t.Fatalf("shard conformance needs ≥2 groups, got %d", w.Groups)
	}
	ctx := context.Background()
	ring := shard.Cached(w.Groups)

	t.Run("PlacementMatchesCanonicalRing", func(t *testing.T) {
		c, err := w.Open(t, "shard-placement")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 24; i++ {
			name := fmt.Sprintf("place%d", i)
			if err := c.Bind(ctx, name, i); err != nil {
				t.Fatalf("bind %s: %v", name, err)
			}
			want := ring.Route(name)
			if got := w.Route(name); got != want {
				t.Fatalf("deployment routes %s to %d, canonical ring says %d", name, got, want)
			}
			for g := 0; g < w.Groups; g++ {
				holds := w.GroupHolds(g, name)
				if holds != (g == want) {
					t.Fatalf("%s: group %d holds=%v, owner is %d — name stored in the wrong group(s)", name, g, holds, want)
				}
			}
		}
	})

	t.Run("MembershipChangeLosesNothing", func(t *testing.T) {
		c, err := w.Open(t, "shard-member")
		if err != nil {
			t.Fatal(err)
		}
		routesBefore := map[string]int{}
		for i := 0; i < 200; i++ {
			routesBefore[fmt.Sprintf("mc%d", i)] = w.Route(fmt.Sprintf("mc%d", i))
		}

		// Write continuously while a replica joins group 0 (jgroups
		// state transfer runs under the stream).
		var wg sync.WaitGroup
		written := make([]string, 0, 120)
		var werr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 120; i++ {
				name := fmt.Sprintf("mc%d", i)
				if err := c.Bind(ctx, name, i); err != nil {
					werr = fmt.Errorf("bind %s: %w", name, err)
					return
				}
				written = append(written, name)
				time.Sleep(time.Millisecond)
			}
		}()
		time.Sleep(20 * time.Millisecond)
		w.AddReplica(t, 0)
		wg.Wait()
		if werr != nil {
			t.Fatal(werr)
		}

		// Nothing lost, nothing duplicated, nothing remapped.
		for _, name := range written {
			if _, err := c.Lookup(ctx, name); err != nil {
				t.Fatalf("lost across membership change: %s: %v", name, err)
			}
			owner := routesBefore[name]
			if got := w.Route(name); got != owner {
				t.Fatalf("membership change remapped %s: %d -> %d", name, owner, got)
			}
			for g := 0; g < w.Groups; g++ {
				if g != owner && w.GroupHolds(g, name) {
					t.Fatalf("%s duplicated into group %d (owner %d)", name, g, owner)
				}
			}
		}
	})

	t.Run("RingGrowthMovesMinority", func(t *testing.T) {
		old := shard.Cached(w.Groups)
		grown := shard.Cached(w.Groups + 1)
		moved := shard.Moved(old, grown, 8000)
		ideal := 1.0 / float64(w.Groups+1)
		if moved == 0 {
			t.Fatal("adding a group moved nothing; the new group would stay empty")
		}
		if moved > 2*ideal {
			t.Fatalf("adding a group moved %.1f%% of the keyspace (ideal %.1f%%) — not consistent hashing", 100*moved, 100*ideal)
		}
	})

	t.Run("DeadGroupFailsTypedPerItem", func(t *testing.T) {
		c, err := w.Open(t, "shard-dead")
		if err != nil {
			t.Fatal(err)
		}
		victim := w.Groups - 1
		w.KillGroup(t, victim)

		reqs := make([]core.BindRequest, 30)
		for i := range reqs {
			reqs[i] = core.BindRequest{Name: fmt.Sprintf("dg%d", i), Obj: i}
		}
		out, err := core.BindMany(ctx, c, reqs)
		if err != nil {
			t.Fatalf("whole batch failed for one dead group: %v", err)
		}
		deadItems, liveItems := 0, 0
		for i, r := range out {
			g := w.Route(reqs[i].Name)
			if g == victim {
				deadItems++
				if r.Err == nil {
					t.Fatalf("item %d routed to dead group %d reported success", i, g)
				}
				var ce *core.CommunicationError
				var se *core.ServiceUnavailableError
				if !errors.As(r.Err, &ce) && !errors.As(r.Err, &se) {
					t.Fatalf("item %d: dead-group error is untyped: %v", i, r.Err)
				}
				continue
			}
			liveItems++
			if r.Err != nil {
				t.Fatalf("item %d routed to live group %d failed: %v", i, g, r.Err)
			}
		}
		if deadItems == 0 || liveItems == 0 {
			t.Fatalf("degenerate batch split dead=%d live=%d; widen the name set", deadItems, liveItems)
		}
	})
}
