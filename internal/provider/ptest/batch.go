package ptest

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"gondi/internal/core"
)

// noBatch hides any native BatchContext implementation behind a plain
// DirContext, forcing core's per-item loop fallback. Interface embedding
// promotes only DirContext's method set, so the type assertion in
// core.LookupMany and friends fails by construction.
type noBatch struct{ core.DirContext }

// runBatchSuite is the batch-semantics half of the conformance contract:
// order preservation, per-item typed failures, and equivalence between a
// provider's native batch path and the unary loop fallback. Providers
// without native batch run the fallback against itself (still proving
// order and partial-failure semantics hold).
func runBatchSuite(t *testing.T, factory Factory) {
	ctx := context.Background()

	t.Run("BatchLookupOrderPreserved", func(t *testing.T) {
		c := factory(t)
		for _, n := range []string{"ba", "bb", "bc", "bd"} {
			if err := c.Bind(ctx, n, "v-"+n); err != nil {
				t.Fatal(err)
			}
		}
		names := []string{"bc", "ba", "bd", "bb"}
		out, err := core.LookupMany(ctx, c, names)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(names) {
			t.Fatalf("got %d results for %d names", len(out), len(names))
		}
		for i, n := range names {
			if out[i].Err != nil || out[i].Value != "v-"+n {
				t.Fatalf("position %d (%s) = %v, %v — order not preserved", i, n, out[i].Value, out[i].Err)
			}
		}
	})

	t.Run("BatchLookupPartialFailure", func(t *testing.T) {
		c := factory(t)
		if err := c.Bind(ctx, "present", "here"); err != nil {
			t.Fatal(err)
		}
		out, err := core.LookupMany(ctx, c, []string{"present", "absent", "present"})
		if err != nil {
			t.Fatalf("whole batch failed for one bad item: %v", err)
		}
		if out[0].Err != nil || out[0].Value != "here" {
			t.Fatalf("item 0: %v, %v", out[0].Value, out[0].Err)
		}
		if !errors.Is(out[1].Err, core.ErrNotFound) {
			t.Fatalf("item 1 err = %v, want ErrNotFound", out[1].Err)
		}
		if out[2].Err != nil || out[2].Value != "here" {
			t.Fatalf("item 2: %v, %v", out[2].Value, out[2].Err)
		}
	})

	t.Run("BatchBindPartialFailure", func(t *testing.T) {
		c := factory(t)
		if err := c.Bind(ctx, "dup", 0); err != nil {
			t.Fatal(err)
		}
		out, err := core.BindMany(ctx, c, []core.BindRequest{
			{Name: "bx", Obj: "x"},
			{Name: "dup", Obj: "clobber"},
			{Name: "by", Obj: "y"},
		})
		if err != nil {
			t.Fatal(err)
		}
		if out[0].Err != nil || out[2].Err != nil {
			t.Fatalf("good items failed: %v, %v", out[0].Err, out[2].Err)
		}
		if !errors.Is(out[1].Err, core.ErrAlreadyBound) {
			t.Fatalf("dup err = %v, want ErrAlreadyBound", out[1].Err)
		}
		// The failed item's original value survives; the good items landed.
		if got, _ := c.Lookup(ctx, "dup"); got != 0 {
			t.Fatalf("dup clobbered: %v", got)
		}
		for _, n := range []string{"bx", "by"} {
			if _, err := c.Lookup(ctx, n); err != nil {
				t.Fatalf("batched bind of %s not visible: %v", n, err)
			}
		}
	})

	t.Run("BatchGetAttributes", func(t *testing.T) {
		c := factory(t)
		attrs := core.NewAttributes()
		attrs.Put("color", "red")
		attrs.Put("size", "xl")
		if err := c.BindAttrs(ctx, "attred", "obj", attrs); err != nil {
			t.Fatal(err)
		}
		out, err := core.GetAttributesMany(ctx, c, []string{"attred", "noattr"}, "color")
		if err != nil {
			t.Fatal(err)
		}
		got, ok := out[0].Value.(*core.Attributes)
		if out[0].Err != nil || !ok {
			t.Fatalf("item 0: %v, %v", out[0].Value, out[0].Err)
		}
		if a, aok := got.Get("color"); !aok || len(a.Values) != 1 || a.Values[0] != "red" {
			t.Fatalf("selected attrs = %+v", got)
		}
		if _, sok := got.Get("size"); sok {
			t.Fatal("unselected attribute leaked through batch projection")
		}
		if !errors.Is(out[1].Err, core.ErrNotFound) {
			t.Fatalf("missing name err = %v, want ErrNotFound", out[1].Err)
		}
	})

	t.Run("BatchFallbackEquivalence", func(t *testing.T) {
		// The same operations through the native batch path and through the
		// forced unary loop must agree on values and error classes.
		c := factory(t)
		for i := 0; i < 5; i++ {
			if err := c.Bind(ctx, fmt.Sprintf("eq%d", i), i); err != nil {
				t.Fatal(err)
			}
		}
		names := []string{"eq3", "eq0", "missing", "eq4", "eq1"}
		native, err := core.LookupMany(ctx, c, names)
		if err != nil {
			t.Fatal(err)
		}
		fallback, err := core.LookupMany(ctx, noBatch{c}, names)
		if err != nil {
			t.Fatal(err)
		}
		for i := range names {
			if (native[i].Err == nil) != (fallback[i].Err == nil) {
				t.Fatalf("item %d: native err %v, fallback err %v", i, native[i].Err, fallback[i].Err)
			}
			if native[i].Err != nil {
				if errors.Is(native[i].Err, core.ErrNotFound) != errors.Is(fallback[i].Err, core.ErrNotFound) {
					t.Fatalf("item %d error class diverged: %v vs %v", i, native[i].Err, fallback[i].Err)
				}
				continue
			}
			if native[i].Value != fallback[i].Value {
				t.Fatalf("item %d: native %v, fallback %v", i, native[i].Value, fallback[i].Value)
			}
		}
	})

	t.Run("BatchEmptyAndCanceled", func(t *testing.T) {
		c := factory(t)
		out, err := core.LookupMany(ctx, c, nil)
		if err != nil || len(out) != 0 {
			t.Fatalf("empty batch: %v, %v", out, err)
		}
		canceled, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := core.LookupMany(canceled, c, []string{"a"}); !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled batch err = %v", err)
		}
	})
}
