package ptest

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// leakSettle bounds how long CheckGoroutines waits for teardown
// goroutines (renewal loops, watch pumps, proxy relays) to drain before
// declaring them leaked.
const leakSettle = 5 * time.Second

// CheckGoroutines arms a goroutine-leak check on t: at cleanup — after
// every provider and server the test registered has been closed — any
// goroutine running this repository's code that did not exist when the
// check was armed fails the test with its stack. Every suite in this
// package arms it, so a provider that strands a renewal loop, event pump,
// or reconnect goroutine fails conformance outright instead of bleeding
// goroutines into the next test.
func CheckGoroutines(t *testing.T) {
	t.Helper()
	before := goroutineIDs()
	t.Cleanup(func() {
		if t.Failed() {
			return // don't stack a leak report on top of a real failure
		}
		deadline := time.Now().Add(leakSettle)
		var leaked []string
		for {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Errorf("ptest: %d leaked goroutine(s):\n\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// goroutineIDs snapshots the IDs of every live goroutine.
func goroutineIDs() map[string]bool {
	ids := map[string]bool{}
	for _, g := range goroutineDump() {
		ids[goroutineID(g)] = true
	}
	return ids
}

// leakedSince returns the stacks of goroutines that did not exist in
// before and are attributable to this repository's code. Filtering on the
// module path keeps runtime service goroutines (netpoller, GC workers,
// testing framework) out of the verdict: the suite polices the naming
// stack, not the Go runtime.
func leakedSince(before map[string]bool) []string {
	var leaked []string
	for _, g := range goroutineDump() {
		if before[goroutineID(g)] {
			continue
		}
		if !strings.Contains(g, "gondi/") {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}

// goroutineDump returns one stack block per live goroutine.
func goroutineDump() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	return strings.Split(strings.TrimSpace(string(buf)), "\n\n")
}

// goroutineID extracts the "goroutine N" token identifying a stack block.
func goroutineID(block string) string {
	if i := strings.Index(block, " ["); i > 0 {
		return block[:i]
	}
	return block
}
