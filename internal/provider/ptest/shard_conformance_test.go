package ptest_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"gondi/internal/core"
	"gondi/internal/hdns"
	"gondi/internal/jgroups"
	"gondi/internal/provider/hdnssp"
	"gondi/internal/provider/ptest"
	"gondi/internal/shard"
)

// TestHDNSShardConformance runs the sharding contract against a real
// 2-group HDNS deployment on the in-process fabric: one replica per
// group to start, a second replica joining group 0 mid-stream during
// the membership-change phase, and group 1 killed for the
// partial-failure phase.
func TestHDNSShardConformance(t *testing.T) {
	ptest.RunShardConformance(t, func(t *testing.T) *ptest.ShardWorld {
		const groups = 2
		f := jgroups.NewFabric()
		stack := jgroups.DefaultConfig()
		stack.HeartbeatInterval = 40 * time.Millisecond
		stack.SuspectAfter = 400 * time.Millisecond

		nodes := make([][]*hdns.Node, groups)
		start := func(g, replica int) *hdns.Node {
			n, err := hdns.NewNode(hdns.NodeConfig{
				Group:      fmt.Sprintf("shardconf-%d", g),
				Transport:  f.Endpoint(jgroups.Address(fmt.Sprintf("g%dr%d", g, replica))),
				Stack:      stack,
				ListenAddr: "127.0.0.1:0",
				Shard:      shard.Assignment{Groups: groups, Index: g},
			})
			if err != nil {
				t.Fatalf("start g%dr%d: %v", g, replica, err)
			}
			t.Cleanup(func() { n.Close() })
			nodes[g] = append(nodes[g], n)
			return n
		}
		auths := make([]string, groups)
		for g := 0; g < groups; g++ {
			auths[g] = start(g, 0).Addr()
		}
		authority := shard.JoinAuthority(auths)
		ring := shard.Cached(groups)

		return &ptest.ShardWorld{
			Groups: groups,
			Open: func(t *testing.T, id string) (core.DirContext, error) {
				c, err := hdnssp.Open(context.Background(), authority, map[string]any{core.EnvPoolID: t.Name() + id})
				if err == nil {
					t.Cleanup(func() { c.Close() })
				}
				return c, err
			},
			Route: func(prefix string) int { return ring.Route(prefix) },
			GroupHolds: func(g int, prefix string) bool {
				// Read the group's founding replica directly, bypassing
				// the router, so placement is proved at the store.
				return nodes[g][0].Store().Lookup([]string{prefix}).Exists
			},
			AddReplica: func(t *testing.T, g int) {
				n := start(g, len(nodes[g]))
				deadline := time.Now().Add(5 * time.Second)
				for time.Now().Before(deadline) {
					v := n.Channel().View()
					if v != nil && len(v.Members) == len(nodes[g]) {
						return
					}
					time.Sleep(15 * time.Millisecond)
				}
				t.Fatalf("replica %d never joined group %d", len(nodes[g])-1, g)
			},
			KillGroup: func(t *testing.T, g int) {
				for _, n := range nodes[g] {
					n.Close()
				}
			},
		}
	})
}
