package ptest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gondi/internal/breaker"
	"gondi/internal/core"
)

// AdmissionWorld is one provider wired to a server whose admission
// controller has been configured with a deliberately tiny queue bound
// (and, where the server supports cost injection, a slow read station)
// so a modest client storm saturates it. Build one per subtest in a
// RunAdmissionConformance factory.
type AdmissionWorld struct {
	// Open dials a fresh context reaching the saturable server. id
	// isolates connection pools between the suite's phases.
	Open func(t *testing.T, id string) (core.DirContext, error)
	// ReadOnly marks providers without write support (DNS): the suite
	// skips the seeding bind and reads Seed instead.
	ReadOnly bool
	// Seed is a name known to exist in a read-only world.
	Seed string
}

// admissionHang is the wall-clock bound at which the suite declares an
// op hung rather than shed: the whole point of admission control is
// that a saturated server answers fast, it does not queue you forever.
const admissionHang = 10 * time.Second

// RunAdmissionConformance executes the overload contract against one
// provider: under a client storm that saturates the server's admission
// queue, every op either succeeds or fails fast with a typed
// *core.ServerBusyError carrying a positive RetryAfter hint — never a
// hang, never an untyped error, and never a tripped breaker (shedding
// is the server working as designed, not the server being down). After
// the storm stops, the server drains and serves again on its own.
func RunAdmissionConformance(t *testing.T, factory func(t *testing.T) *AdmissionWorld) {
	CheckGoroutines(t)
	w := factory(t)
	ctx := context.Background()

	c, err := w.Open(t, "adm-main")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	seed := w.Seed
	if !w.ReadOnly {
		seed = "adm-seed"
		if err := bindRetryBusy(ctx, c, seed, "v"); err != nil {
			t.Fatalf("seed bind: %v", err)
		}
	}
	if _, err := c.Lookup(ctx, seed); err != nil {
		t.Fatalf("pre-storm lookup: %v", err)
	}

	// Dial every worker before the storm begins: some providers issue a
	// server op during Open (hdnssp probes hdns.info), which would
	// itself be shed mid-storm. Pre-storm the server is idle, so a
	// handful of busy retries absorbs any slot collision.
	const workers = 32
	ctxs := make([]core.DirContext, workers)
	for i := range ctxs {
		var cc core.DirContext
		var err error
		for attempt := 0; attempt < 20; attempt++ {
			cc, err = w.Open(t, fmt.Sprintf("adm-%d-%d", i, attempt))
			var b *core.ServerBusyError
			if !errors.As(err, &b) {
				break
			}
			time.Sleep(b.RetryAfter)
		}
		if err != nil {
			t.Fatalf("worker %d open: %v", i, err)
		}
		ctxs[i] = cc
	}

	const storm = 400 * time.Millisecond
	var success, busy, busyNoHint, other, slow atomic.Int64
	var firstOther atomic.Value
	deadline := time.Now().Add(storm)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(cc core.DirContext) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				opCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
				start := time.Now()
				_, err := cc.Lookup(opCtx, seed)
				cancel()
				if time.Since(start) > admissionHang {
					slow.Add(1)
				}
				var b *core.ServerBusyError
				switch {
				case err == nil:
					success.Add(1)
				case errors.As(err, &b):
					busy.Add(1)
					if b.RetryAfter <= 0 {
						busyNoHint.Add(1)
					}
				default:
					firstOther.CompareAndSwap(nil, err)
					other.Add(1)
				}
			}
		}(ctxs[i])
	}
	wg.Wait()

	t.Logf("storm: %d ok, %d shed, %d other", success.Load(), busy.Load(), other.Load())
	if success.Load() == 0 {
		t.Error("storm: no op succeeded — admission is starving everything")
	}
	if busy.Load() == 0 {
		t.Error("storm: server never shed — admission queue bound not enforced")
	}
	if n := busyNoHint.Load(); n > 0 {
		t.Errorf("storm: %d busy errors arrived without a RetryAfter hint", n)
	}
	if n := other.Load(); n > 0 {
		t.Errorf("storm: %d untyped errors (first: %v)", n, firstOther.Load())
	}
	if n := slow.Load(); n > 0 {
		t.Errorf("storm: %d ops exceeded the %v hang bound", n, admissionHang)
	}

	// Load has dropped: the server must drain and answer a fresh client
	// on its own, and the storm's sheds must not have tripped the
	// endpoint breaker (busy is backpressure, not failure).
	var lastErr error
	for start := time.Now(); time.Since(start) < 3*time.Second; {
		pc, err := w.Open(t, fmt.Sprintf("adm-post-%d", time.Since(start)/time.Millisecond))
		if err == nil {
			_, err = pc.Lookup(ctx, seed)
			if err == nil {
				return
			}
			if errors.Is(err, breaker.ErrOpen) {
				t.Fatalf("breaker tripped on busy shedding: %v", err)
			}
		}
		lastErr = err
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server did not drain after the storm: %v", lastErr)
}

// bindRetryBusy binds name, retrying a handful of times if the write
// slot happens to be busy (tiny queue bounds gate even the seeding op).
func bindRetryBusy(ctx context.Context, c core.DirContext, name string, v any) error {
	var err error
	for i := 0; i < 20; i++ {
		err = c.Bind(ctx, name, v)
		var b *core.ServerBusyError
		if !errors.As(err, &b) {
			return err
		}
		time.Sleep(b.RetryAfter)
	}
	return err
}
