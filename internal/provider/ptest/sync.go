package ptest

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"gondi/internal/core"
	"gondi/internal/retry"
	"gondi/internal/sync"
)

// SyncWorld is one source/destination registry pair under the sync
// engine's conformance contract. Build one per RunSyncConformance call;
// the callbacks mutate the SOURCE through the world's own backdoor (a
// memsp tree, an HDNS client, a DNS zone), so read-only providers can
// still change out from under the mirror.
type SyncWorld struct {
	// Source and Dest are the mirror's endpoints, as provider URLs. The
	// suite reads Dest directly to verify convergence.
	Source, Dest string
	// Env is passed to the mirror and to the suite's verification opens.
	Env map[string]any
	// Interval paces delta-pull cycles; <=0 uses a test-fast default.
	Interval time.Duration
	// Set upserts a string value at the source-relative path rel
	// (creating intermediate contexts as needed); Del removes rel.
	Set func(t *testing.T, rel, val string)
	Del func(t *testing.T, rel string)
	// AttrValues marks worlds whose entries carry values as a "TXT"
	// attribute instead of a leaf binding (DNS): the suite verifies
	// through GetAttributes rather than Lookup equality.
	AttrValues bool
	// RestartSource bounces the source's transport mid-stream — drops
	// watch registrations, severs and heals the wire — and returns once
	// the source is reachable again. nil skips the restart subtest.
	RestartSource func(t *testing.T)
	// ExpectWatchLost asserts the mirror actually observed (and
	// recovered from) EventWatchLost during RestartSource. Set it on
	// event-capable worlds whose restart kills registrations.
	ExpectWatchLost bool
}

// syncConvergeTimeout bounds every convergence wait. Generous because a
// restarted source sits behind breaker cooldowns before the mirror's
// redial is admitted.
const syncConvergeTimeout = 20 * time.Second

// RunSyncConformance executes the cross-registry synchronization
// contract against one world:
//
//   - The initial snapshot converges: everything present in the source
//     before the mirror started appears in the destination.
//   - Incremental changes propagate: adds, overwrites, nested entries
//     and deletions all reach the destination (deletions do not
//     resurrect — the tombstone rule).
//   - A source restart mid-update-stream loses nothing: every update
//     issued before, during, and after the outage is eventually
//     mirrored, with EventWatchLost observed and recovered from where
//     the world's transport surfaces it.
//   - A converged resync applies nothing: re-walking an in-sync pair
//     performs zero writes (no duplicated updates, ever).
func RunSyncConformance(t *testing.T, factory func(t *testing.T) *SyncWorld) {
	CheckGoroutines(t)
	w := factory(t)
	interval := w.Interval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	ctx := context.Background()

	// expected tracks what the source holds; gone tracks deletions that
	// must NOT be present downstream.
	expected := map[string]string{}
	gone := map[string]bool{}
	set := func(rel, val string) {
		w.Set(t, rel, val)
		expected[rel] = val
		delete(gone, rel)
	}
	del := func(rel string) {
		w.Del(t, rel)
		delete(expected, rel)
		gone[rel] = true
	}

	// Seed before the mirror exists: the initial snapshot must carry it.
	set("svc0", "v0")
	set("svc1", "v1")
	set("apps/web", "w0")

	m, err := sync.New(ctx, sync.Config{
		Name:      t.Name(),
		SourceURL: w.Source,
		DestURL:   w.Dest,
		Env:       w.Env,
		Interval:  interval,
		Retry:     retry.Policy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Stop() })

	// The suite verifies through its own connection, on its own pool.
	verifyEnv := make(map[string]any, len(w.Env)+1)
	for k, v := range w.Env {
		verifyEnv[k] = v
	}
	verifyEnv[core.EnvPoolID] = t.Name() + "-syncconf-verify"
	destRoot, destBase, err := core.OpenURL(ctx, w.Dest, verifyEnv)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { destRoot.Close() })
	destDir, _ := destRoot.(core.DirContext)

	check := func() error {
		for rel, val := range expected {
			name := destBase.Concat(core.MustParseName(rel)).String()
			if w.AttrValues {
				attrs, err := destDir.GetAttributes(context.Background(), name)
				if err != nil {
					return fmt.Errorf("%s: %w", rel, err)
				}
				if got := attrs.GetFirst("TXT"); got != val {
					return fmt.Errorf("%s: TXT = %q, want %q", rel, got, val)
				}
			} else {
				v, err := destRoot.Lookup(context.Background(), name)
				if err != nil {
					return fmt.Errorf("%s: %w", rel, err)
				}
				if v != val {
					return fmt.Errorf("%s = %v, want %q", rel, v, val)
				}
			}
		}
		for rel := range gone {
			name := destBase.Concat(core.MustParseName(rel)).String()
			if _, err := destRoot.Lookup(context.Background(), name); !errors.Is(err, core.ErrNotFound) {
				return fmt.Errorf("deleted %q still present in the mirror (err=%v)", rel, err)
			}
		}
		return nil
	}
	waitConverged := func(t *testing.T, what string) {
		t.Helper()
		deadline := time.Now().Add(syncConvergeTimeout)
		for {
			err := check()
			if err == nil {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: mirror did not converge within %v: %v\nstatus: %+v", what, syncConvergeTimeout, err, m.Status())
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	t.Run("InitialSnapshotConverges", func(t *testing.T) {
		waitConverged(t, "initial snapshot")
		if s := m.Status(); s.LastSync.IsZero() {
			t.Fatalf("converged but LastSync unset: %+v", s)
		}
	})

	t.Run("IncrementalChangesPropagate", func(t *testing.T) {
		set("svc0", "v0-updated") // overwrite
		set("svc9", "v9")         // add
		set("apps/api", "a0")     // nested add
		del("svc1")               // delete
		waitConverged(t, "incremental changes")
	})

	if w.RestartSource != nil {
		t.Run("SourceRestartLosesNoUpdates", func(t *testing.T) {
			for i := 0; i < 10; i++ {
				set(fmt.Sprintf("burst%d", i), fmt.Sprintf("b%d", i))
				if i == 4 {
					w.RestartSource(t)
				}
			}
			waitConverged(t, "updates across a source restart")
			if w.ExpectWatchLost {
				if s := m.Status(); s.WatchLost == 0 {
					t.Errorf("source restart did not surface EventWatchLost: %+v", s)
				}
			}
		})
	}

	t.Run("ConvergedResyncAppliesNothing", func(t *testing.T) {
		waitConverged(t, "pre-idempotence state")
		// First resync flushes any in-flight cycle; the second must be
		// write-free — the no-duplicated-updates contract.
		if err := m.Resync(ctx); err != nil {
			t.Fatalf("flush resync: %v", err)
		}
		before := m.Status()
		if err := m.Resync(ctx); err != nil {
			t.Fatalf("idempotence resync: %v", err)
		}
		after := m.Status()
		if after.Applied != before.Applied || after.Deleted != before.Deleted {
			t.Fatalf("converged resync rewrote the destination: applied %d->%d, deleted %d->%d",
				before.Applied, after.Applied, before.Deleted, after.Deleted)
		}
	})

	if err := m.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}
