package ptest_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gondi/internal/core"
	"gondi/internal/hdns"
	"gondi/internal/jgroups"
	"gondi/internal/provider/hdnssp"
	"gondi/internal/provider/ptest"
	"gondi/internal/shard"
)

// TestHDNSDurabilityConformance runs the storage-fault contract against
// a real 2-group HDNS deployment on the in-process fabric. Each group
// is anchored by one durable replica (snapshot + WAL on disk); the
// repair phase adds a memory-only peer to the victim group, cuts the
// durable replica's power, flips bits in its WAL, and expects the
// restart to quarantine and then re-anchor from the peer.
func TestHDNSDurabilityConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("crash/restart cycles are slow")
	}
	ptest.RunDurabilityConformance(t, func(rt *testing.T) *ptest.DurabilityWorld {
		const groups = 2
		dir := rt.TempDir()
		f := jgroups.NewFabric()
		stack := jgroups.DefaultConfig()
		stack.HeartbeatInterval = 40 * time.Millisecond
		stack.SuspectAfter = 400 * time.Millisecond
		stack.GossipInterval = 30 * time.Millisecond
		stack.MergeInterval = 80 * time.Millisecond

		// durable[g] is the group's disk-backed replica; peers[g] any
		// memory-only replicas added later. epoch[g] names transport
		// endpoints uniquely across restarts.
		durable := make([]*hdns.Node, groups)
		peers := make([][]*hdns.Node, groups)
		epoch := make([]int, groups)
		snapPath := func(g int) string { return filepath.Join(dir, fmt.Sprintf("g%d.snap", g)) }
		walDir := func(g int) string { return filepath.Join(dir, fmt.Sprintf("wal-g%d", g)) }

		boot := func(t *testing.T, g int) {
			epoch[g]++
			n, err := hdns.NewNode(hdns.NodeConfig{
				Group:            fmt.Sprintf("durconf-%d", g),
				Transport:        f.Endpoint(jgroups.Address(fmt.Sprintf("g%dd%d", g, epoch[g]))),
				Stack:            stack,
				ListenAddr:       "127.0.0.1:0",
				SnapshotPath:     snapPath(g),
				WALDir:           walDir(g),
				SnapshotInterval: time.Hour, // the suite syncs explicitly
				WriteTimeout:     5 * time.Second,
				Shard:            shard.Assignment{Groups: groups, Index: g},
			})
			if err != nil {
				t.Fatalf("boot durable g%d: %v", g, err)
			}
			durable[g] = n
			// Cleanups belong to the factory scope: a subtest-scoped one
			// would kill a replica restarted in phase 1 as soon as that
			// phase ends, sawing off the world under the later phases.
			rt.Cleanup(func() { n.Kill() })
		}
		for g := 0; g < groups; g++ {
			boot(rt, g)
		}
		ring := shard.Cached(groups)

		return &ptest.DurabilityWorld{
			Groups: groups,
			Open: func(t *testing.T, id string) (core.DirContext, error) {
				auths := make([]string, groups)
				for g := 0; g < groups; g++ {
					auths[g] = durable[g].Addr()
				}
				c, err := hdnssp.Open(context.Background(), shard.JoinAuthority(auths),
					map[string]any{core.EnvPoolID: t.Name() + id})
				if err == nil {
					t.Cleanup(func() { c.Close() })
				}
				return c, err
			},
			Route: func(prefix string) int { return ring.Route(prefix) },
			SyncGroup: func(t *testing.T, g int) {
				if err := durable[g].SyncDurable(); err != nil {
					t.Fatalf("sync g%d: %v", g, err)
				}
			},
			CrashGroup: func(t *testing.T, g int) {
				dead := jgroups.Address(fmt.Sprintf("g%dd%d", g, epoch[g]))
				durable[g].Kill()
				// A real restart outlives failure detection: wait for any
				// surviving peer to suspect the dead replica and take over
				// as coordinator, so the restarted node rejoins an existing
				// group (and its state transfer) instead of founding a
				// singleton next to it.
				for _, p := range peers[g] {
					deadline := time.Now().Add(5 * time.Second)
					for {
						v := p.Channel().View()
						if v != nil && !v.Contains(dead) {
							break
						}
						if time.Now().After(deadline) {
							t.Fatalf("peer never suspected crashed replica %s", dead)
						}
						time.Sleep(15 * time.Millisecond)
					}
				}
			},
			RestartGroup: boot,
			CorruptGroup: func(t *testing.T, g int) {
				segs, err := filepath.Glob(filepath.Join(walDir(g), "seg-*.wal"))
				if err != nil || len(segs) == 0 {
					t.Fatalf("no WAL segments to corrupt in g%d: %v", g, err)
				}
				b, err := os.ReadFile(segs[0])
				if err != nil {
					t.Fatal(err)
				}
				b[12] ^= 0x01 // first record's payload: CRC mismatch, not a torn tail
				if err := os.WriteFile(segs[0], b, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			AddReplica: func(t *testing.T, g int) {
				n, err := hdns.NewNode(hdns.NodeConfig{
					Group:      fmt.Sprintf("durconf-%d", g),
					Transport:  f.Endpoint(jgroups.Address(fmt.Sprintf("g%dp%d", g, len(peers[g])))),
					Stack:      stack,
					ListenAddr: "127.0.0.1:0",
					Shard:      shard.Assignment{Groups: groups, Index: g},
				})
				if err != nil {
					t.Fatalf("add replica g%d: %v", g, err)
				}
				rt.Cleanup(func() { n.Close() })
				peers[g] = append(peers[g], n)
				want := durable[g].Store().Len()
				deadline := time.Now().Add(5 * time.Second)
				for n.Store().Len() < want {
					if time.Now().After(deadline) {
						t.Fatalf("peer never pulled g%d state (%d of %d)", g, n.Store().Len(), want)
					}
					time.Sleep(15 * time.Millisecond)
				}
			},
			Damaged:  func(g int) bool { return durable[g].Damage().Corrupt() },
			Repaired: func(g int) bool { return durable[g].Repairs() > 0 },
		}
	})
}
