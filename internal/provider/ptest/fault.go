package ptest

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"gondi/internal/breaker"
	"gondi/internal/core"
)

// FaultWorld is one provider wired through a fault seam (internal/fault's
// Proxy, UDPProxy, or injector) so the chaos suite can sever and heal its
// backend. Build one per subtest in a RunFaultConformance factory.
type FaultWorld struct {
	// Open dials a fresh context that reaches the backend through the
	// fault seam. id isolates connection pools between the suite's
	// phases (pass it through core.EnvPoolID), so the healed phase gets
	// a fresh dial instead of a severed pooled connection. Dial failures
	// are returned, not t.Fatal'd: the healed phase polls Open until the
	// endpoint's breaker re-admits traffic on its own.
	Open func(t *testing.T, id string) (core.DirContext, error)
	// Cut severs connectivity to the backend; Restore heals it. Leave
	// both nil for substrates with no wire to cut (in-memory,
	// filesystem): the partition phases are skipped and the healthy
	// battery plus the goroutine-leak check still run.
	Cut     func()
	Restore func()
	// ReadOnly marks providers without write support (DNS): the battery
	// sticks to Lookup/List/Search against Seed.
	ReadOnly bool
	// Seed is a name known to exist in a read-only world.
	Seed string
	// OpTimeout bounds each operation (default 5s). Worlds whose severed
	// failure mode is a timeout rather than a refused connection (UDP)
	// should set it low so the cut phase stays fast.
	OpTimeout time.Duration
}

// faultHang is the wall-clock bound past OpTimeout at which the suite
// declares an operation hung rather than slow.
const faultHang = 15 * time.Second

// RunFaultConformance executes the chaos conformance contract against one
// provider: under a scripted sever/heal schedule, every operation either
// succeeds or fails with a typed, classifiable error — never a hang, and
// never a leaked goroutine. The schedule is three phases: healthy (ops
// must succeed), severed (ops must fail typed and fast), healed (ops must
// come back on their own — no breaker.ResetAll, no operator action — via
// the half-open probes the breakers admit once their cooldown elapses).
func RunFaultConformance(t *testing.T, factory func(t *testing.T) *FaultWorld) {
	CheckGoroutines(t)
	w := factory(t)
	if w.OpTimeout <= 0 {
		w.OpTimeout = 5 * time.Second
	}

	c, err := w.Open(t, "pre")
	if err != nil {
		t.Fatalf("open against a healthy backend: %v", err)
	}
	t.Run("HealthyOpsSucceed", func(t *testing.T) {
		for _, op := range battery(w, c, "h") {
			if err := guard(t, w, op); err != nil {
				t.Fatalf("%s under healthy backend: %v", op.name, err)
			}
		}
	})
	if w.Cut == nil {
		return
	}

	t.Run("SeveredOpsFailTypedAndFast", func(t *testing.T) {
		w.Cut()
		failures := 0
		for round := 0; round < 3; round++ {
			for _, op := range battery(w, c, fmt.Sprintf("s%d", round)) {
				err := guard(t, w, op)
				if err == nil {
					continue
				}
				failures++
				if !faultTyped(err) {
					t.Fatalf("%s under severed backend returned an unclassifiable error: %v", op.name, err)
				}
			}
		}
		if failures == 0 {
			t.Fatal("no operation failed while the backend was severed — the cut is not reaching the wire")
		}
	})

	t.Run("HealedOpsRecoverAutonomously", func(t *testing.T) {
		w.Restore()
		// Deliberately no breaker.ResetAll() here: the severed phase
		// tripped the endpoint's breakers, and the self-healing contract
		// is that a healed backend is re-admitted with no operator
		// action — the breaker's own cooldown elapses, a half-open probe
		// reaches the wire, succeeds, and closes the circuit. Poll until
		// that happens; a stack that needs a manual reset fails here.
		deadline := time.Now().Add(breaker.DefaultCooldown + 2*w.OpTimeout + 10*time.Second)
		var healed core.DirContext
		for {
			var err error
			healed, err = w.Open(t, "post")
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("open after heal did not recover autonomously: %v", err)
			}
			time.Sleep(50 * time.Millisecond)
		}
		for _, op := range battery(w, healed, "r") {
			for {
				err := guard(t, w, op)
				if err == nil {
					break
				}
				// A semantic answer proves a live backend: an earlier
				// attempt of this op got through before its error surfaced.
				if errors.Is(err, core.ErrAlreadyBound) || errors.Is(err, core.ErrNotFound) {
					break
				}
				if !faultTyped(err) {
					t.Fatalf("%s after heal returned an unclassifiable error: %v", op.name, err)
				}
				if time.Now().After(deadline) {
					t.Fatalf("%s did not recover autonomously within the breaker cooldown: %v", op.name, err)
				}
				time.Sleep(50 * time.Millisecond)
			}
		}
	})
}

// faultOp is one operation in the chaos battery.
type faultOp struct {
	name string
	run  func(ctx context.Context) error
}

// battery returns the operation set the schedule drives. prefix keeps the
// names written by different phases from colliding.
func battery(w *FaultWorld, c core.DirContext, prefix string) []faultOp {
	if w.ReadOnly {
		return []faultOp{
			{"Lookup", func(ctx context.Context) error {
				_, err := c.Lookup(ctx, w.Seed)
				return err
			}},
			{"List", func(ctx context.Context) error {
				_, err := c.List(ctx, w.Seed)
				return err
			}},
			{"Search", func(ctx context.Context) error {
				_, err := c.Search(ctx, w.Seed, "(name=*)", &core.SearchControls{Scope: core.ScopeOneLevel})
				return err
			}},
		}
	}
	name := "chaos-" + prefix
	return []faultOp{
		{"Bind", func(ctx context.Context) error {
			return c.Bind(ctx, name, "v")
		}},
		{"Lookup", func(ctx context.Context) error {
			_, err := c.Lookup(ctx, name)
			return err
		}},
		{"List", func(ctx context.Context) error {
			_, err := c.List(ctx, "")
			return err
		}},
		{"Search", func(ctx context.Context) error {
			_, err := c.Search(ctx, "", "(name=*)", &core.SearchControls{Scope: core.ScopeOneLevel})
			return err
		}},
		{"Rebind", func(ctx context.Context) error {
			return c.Rebind(ctx, name, "v2")
		}},
		{"Unbind", func(ctx context.Context) error {
			return c.Unbind(ctx, name)
		}},
	}
}

// guard runs op with the world's per-op deadline plus a hang watchdog: a
// wedged operation fails the suite instead of deadlocking `go test`.
func guard(t *testing.T, w *FaultWorld, op faultOp) error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), w.OpTimeout)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- op.run(ctx) }()
	select {
	case err := <-done:
		return err
	case <-time.After(w.OpTimeout + faultHang):
		t.Fatalf("ptest: %s hung %v past its deadline", op.name, faultHang)
		return nil
	}
}

// faultTyped reports whether err is one of the classifiable outcomes the
// self-healing contract permits under faults: the caller's own deadline,
// a typed transport failure, a fast-failed open breaker, or a coherent
// semantic answer (a Bind racing an earlier half-acknowledged Bind may
// legitimately see ErrAlreadyBound; an Unbind racing one may see
// ErrNotFound).
func faultTyped(err error) bool {
	var comm *core.CommunicationError
	var unavail *core.ServiceUnavailableError
	return errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled) ||
		errors.As(err, &comm) ||
		errors.As(err, &unavail) ||
		errors.Is(err, breaker.ErrOpen) ||
		errors.Is(err, core.ErrNotFound) ||
		errors.Is(err, core.ErrAlreadyBound) ||
		errors.Is(err, core.ErrClosed)
}
