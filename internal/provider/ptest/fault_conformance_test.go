package ptest_test

// The chaos conformance suite run against every provider: each world puts
// internal/fault's proxy between the provider and its backend (where a
// wire exists), and the suite severs and heals it on a fixed schedule.
// One contract everywhere: operations succeed or fail typed, never hang,
// never leak goroutines.

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"gondi/internal/core"
	"gondi/internal/dnssrv"
	"gondi/internal/fault"
	"gondi/internal/hdns"
	"gondi/internal/jgroups"
	"gondi/internal/jini"
	"gondi/internal/jxta"
	"gondi/internal/ldapsrv"
	"gondi/internal/provider/dnssp"
	"gondi/internal/provider/fssp"
	"gondi/internal/provider/hdnssp"
	"gondi/internal/provider/jinisp"
	"gondi/internal/provider/jxtasp"
	"gondi/internal/provider/ldapsp"
	"gondi/internal/provider/memsp"
	"gondi/internal/provider/ptest"
)

func TestMemFaultConformance(t *testing.T) {
	ptest.RunFaultConformance(t, func(t *testing.T) *ptest.FaultWorld {
		tree := memsp.NewTree()
		return &ptest.FaultWorld{
			Open: func(t *testing.T, id string) (core.DirContext, error) {
				return memsp.NewContext(tree, map[string]any{}, "mem://chaos"), nil
			},
		}
	})
}

func TestFSFaultConformance(t *testing.T) {
	ptest.RunFaultConformance(t, func(t *testing.T) *ptest.FaultWorld {
		dir := t.TempDir()
		return &ptest.FaultWorld{
			Open: func(t *testing.T, id string) (core.DirContext, error) {
				return fssp.NewContext(dir, map[string]any{}), nil
			},
		}
	})
}

func TestJiniFaultConformance(t *testing.T) {
	ptest.RunFaultConformance(t, func(t *testing.T) *ptest.FaultWorld {
		lus, err := jini.NewLUS(jini.LUSConfig{ListenAddr: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lus.Close() })
		proxy, err := fault.NewProxy(lus.Addr(), nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { proxy.Close() })
		return &ptest.FaultWorld{
			Open: func(t *testing.T, id string) (core.DirContext, error) {
				pc, err := jinisp.Open(context.Background(), proxy.Addr(), map[string]any{
					core.EnvPoolID: t.Name() + "-" + id,
				})
				if err != nil {
					return nil, err
				}
				t.Cleanup(func() { pc.Close() })
				return pc, nil
			},
			Cut:     proxy.Cut,
			Restore: proxy.Restore,
		}
	})
}

func TestHDNSFaultConformance(t *testing.T) {
	ptest.RunFaultConformance(t, func(t *testing.T) *ptest.FaultWorld {
		stack := jgroups.DefaultConfig()
		stack.HeartbeatInterval = 50 * time.Millisecond
		n, err := hdns.NewNode(hdns.NodeConfig{
			Group:      "chaos-" + t.Name(),
			Transport:  jgroups.NewFabric().Endpoint("chaos-node"),
			Stack:      stack,
			ListenAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		proxy, err := fault.NewProxy(n.Addr(), nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { proxy.Close() })
		return &ptest.FaultWorld{
			Open: func(t *testing.T, id string) (core.DirContext, error) {
				pc, err := hdnssp.Open(context.Background(), proxy.Addr(), map[string]any{
					core.EnvPoolID: t.Name() + "-" + id,
				})
				if err != nil {
					return nil, err
				}
				t.Cleanup(func() { pc.Close() })
				return pc, nil
			},
			Cut:     proxy.Cut,
			Restore: proxy.Restore,
		}
	})
}

func TestJXTAFaultConformance(t *testing.T) {
	ptest.RunFaultConformance(t, func(t *testing.T) *ptest.FaultWorld {
		rdv, err := jxta.NewRendezvous("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rdv.Close() })
		proxy, err := fault.NewProxy(rdv.Addr(), nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { proxy.Close() })
		return &ptest.FaultWorld{
			Open: func(t *testing.T, id string) (core.DirContext, error) {
				pc, err := jxtasp.Open(context.Background(), proxy.Addr(), map[string]any{
					core.EnvPoolID: t.Name() + "-" + id,
				})
				if err != nil {
					return nil, err
				}
				t.Cleanup(func() { pc.Close() })
				return pc, nil
			},
			Cut:     proxy.Cut,
			Restore: proxy.Restore,
		}
	})
}

func TestLDAPFaultConformance(t *testing.T) {
	ptest.RunFaultConformance(t, func(t *testing.T) *ptest.FaultWorld {
		srv, err := ldapsrv.NewServer("127.0.0.1:0", ldapsrv.ServerConfig{BaseDN: "dc=chaos"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		proxy, err := fault.NewProxy(srv.Addr(), nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { proxy.Close() })
		return &ptest.FaultWorld{
			Open: func(t *testing.T, id string) (core.DirContext, error) {
				pc, err := ldapsp.Open(context.Background(), proxy.Addr(), "dc=chaos", map[string]any{
					core.EnvPoolID: t.Name() + "-" + id,
				})
				if err != nil {
					return nil, err
				}
				t.Cleanup(func() { pc.Close() })
				return pc, nil
			},
			Cut:     proxy.Cut,
			Restore: proxy.Restore,
		}
	})
}

func TestDNSFaultConformance(t *testing.T) {
	ptest.RunFaultConformance(t, func(t *testing.T) *ptest.FaultWorld {
		srv, err := dnssrv.NewServer("127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		z := dnssrv.NewZone("global")
		z.Add(dnssrv.RR{Name: "emory.global", Type: dnssrv.TypeA, A: netip.MustParseAddr("170.140.0.1")})
		z.Add(dnssrv.RR{Name: "emory.global", Type: dnssrv.TypeTXT, Txt: []string{"Emory University"}})
		srv.AddZone(z)
		proxy, err := fault.NewDualProxy(srv.Addr(), nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { proxy.Close() })
		return &ptest.FaultWorld{
			Open:     dnsWorld(t, proxy.Addr()),
			Cut:      proxy.Cut,
			Restore:  proxy.Restore,
			ReadOnly: true,
			Seed:     "global",
			// A severed UDP path fails by timeout, not refusal: keep the
			// per-op budget tight so the cut phase stays fast.
			OpTimeout: 1500 * time.Millisecond,
		}
	})
}

// dnsWorld opens the DNS provider root through core.OpenURL (the provider
// has no direct Open; the scheme handler builds the context).
func dnsWorld(t *testing.T, addr string) func(t *testing.T, id string) (core.DirContext, error) {
	dnssp.Register()
	return func(t *testing.T, id string) (core.DirContext, error) {
		nc, rest, err := core.OpenURL(context.Background(), "dns://"+addr, nil)
		if err != nil {
			return nil, err
		}
		if rest.String() != "" {
			t.Fatalf("unexpected remaining name %q", rest.String())
		}
		t.Cleanup(func() { nc.Close() })
		dc, ok := nc.(core.DirContext)
		if !ok {
			t.Fatalf("dns root is %T, not a DirContext", nc)
		}
		return dc, nil
	}
}
