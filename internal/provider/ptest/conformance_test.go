package ptest_test

// The conformance suite run against every provider in the repository —
// five different substrates, one behavioural contract.

import (
	"context"
	"testing"
	"time"

	"gondi/internal/core"
	"gondi/internal/hdns"
	"gondi/internal/jgroups"
	"gondi/internal/jini"
	"gondi/internal/jxta"
	"gondi/internal/ldapsrv"
	"gondi/internal/provider/fssp"
	"gondi/internal/provider/hdnssp"
	"gondi/internal/provider/jinisp"
	"gondi/internal/provider/jxtasp"
	"gondi/internal/provider/ldapsp"
	"gondi/internal/provider/memsp"
	"gondi/internal/provider/ptest"
)

func TestMemProviderConformance(t *testing.T) {
	ptest.Run(t, ptest.Caps{
		Rename:                       true,
		Subcontexts:                  true,
		PreservesAttrsOnRebind:       true,
		IntermediateContextsRequired: true,
	}, func(t *testing.T) core.DirContext {
		return memsp.NewContext(memsp.NewTree(), map[string]any{}, "mem://conf")
	})
}

func TestFSProviderConformance(t *testing.T) {
	ptest.Run(t, ptest.Caps{
		Rename:                       true,
		Subcontexts:                  true,
		PreservesAttrsOnRebind:       true,
		IntermediateContextsRequired: true,
	}, func(t *testing.T) core.DirContext {
		return fssp.NewContext(t.TempDir(), map[string]any{})
	})
}

func TestHDNSProviderConformance(t *testing.T) {
	ptest.Run(t, ptest.Caps{
		Rename:                       true,
		Subcontexts:                  true,
		PreservesAttrsOnRebind:       true,
		IntermediateContextsRequired: true,
	}, func(t *testing.T) core.DirContext {
		stack := jgroups.DefaultConfig()
		stack.HeartbeatInterval = 50 * time.Millisecond
		n, err := hdns.NewNode(hdns.NodeConfig{
			Group:      "conf-" + t.Name(),
			Transport:  jgroups.NewFabric().Endpoint("conf-node"),
			Stack:      stack,
			ListenAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		pc, err := hdnssp.Open(context.Background(), n.Addr(), map[string]any{core.EnvPoolID: t.Name()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pc.Close() })
		return pc
	})
}

func TestJiniProviderConformance(t *testing.T) {
	for _, mode := range []string{"strict", "relaxed"} {
		t.Run(mode, func(t *testing.T) {
			ptest.Run(t, ptest.Caps{
				Rename:                 true,
				Subcontexts:            true,
				PreservesAttrsOnRebind: true,
				// Jini bindings are flat items with virtual
				// intermediate contexts, so deep binds succeed.
				IntermediateContextsRequired: false,
			}, func(t *testing.T) core.DirContext {
				lus, err := jini.NewLUS(jini.LUSConfig{ListenAddr: "127.0.0.1:0"})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { lus.Close() })
				pc, err := jinisp.Open(context.Background(), lus.Addr(), map[string]any{
					jinisp.EnvBind: mode,
					core.EnvPoolID: t.Name(),
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { pc.Close() })
				return pc
			})
		})
	}
}

func TestJXTAProviderConformance(t *testing.T) {
	ptest.Run(t, ptest.Caps{
		Rename:                 true,
		Subcontexts:            true,
		PreservesAttrsOnRebind: true,
		// Advertisements live in existing peer groups; deep binds
		// under missing groups fail.
		IntermediateContextsRequired: true,
	}, func(t *testing.T) core.DirContext {
		rdv, err := jxta.NewRendezvous("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rdv.Close() })
		pc, err := jxtasp.Open(context.Background(), rdv.Addr(), map[string]any{core.EnvPoolID: t.Name()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pc.Close() })
		return pc
	})
}

func TestLDAPProviderConformance(t *testing.T) {
	ptest.Run(t, ptest.Caps{
		Rename:                       true,
		Subcontexts:                  true,
		PreservesAttrsOnRebind:       true,
		IntermediateContextsRequired: true,
		LeavesAreContexts:            true, // any LDAP entry is a container
	}, func(t *testing.T) core.DirContext {
		srv, err := ldapsrv.NewServer("127.0.0.1:0", ldapsrv.ServerConfig{BaseDN: "dc=conf"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		pc, err := ldapsp.Open(context.Background(), srv.Addr(), "dc=conf", map[string]any{core.EnvPoolID: t.Name()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pc.Close() })
		return pc
	})
}
