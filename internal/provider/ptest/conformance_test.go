package ptest_test

// The conformance suite run against every provider in the repository —
// five different substrates, one behavioural contract.

import (
	"context"
	"testing"
	"time"

	"gondi/internal/core"
	"gondi/internal/hdns"
	"gondi/internal/jgroups"
	"gondi/internal/jini"
	"gondi/internal/jxta"
	"gondi/internal/ldapsrv"
	"gondi/internal/provider/fssp"
	"gondi/internal/provider/hdnssp"
	"gondi/internal/provider/jinisp"
	"gondi/internal/provider/jxtasp"
	"gondi/internal/provider/ldapsp"
	"gondi/internal/provider/memsp"
	"gondi/internal/provider/ptest"
)

func TestMemProviderConformance(t *testing.T) {
	ptest.Run(t, ptest.Caps{
		Rename:                       true,
		Subcontexts:                  true,
		PreservesAttrsOnRebind:       true,
		IntermediateContextsRequired: true,
	}, func(t *testing.T) core.DirContext {
		return memsp.NewContext(memsp.NewTree(), map[string]any{}, "mem://conf")
	})
}

func TestFSProviderConformance(t *testing.T) {
	ptest.Run(t, ptest.Caps{
		Rename:                       true,
		Subcontexts:                  true,
		PreservesAttrsOnRebind:       true,
		IntermediateContextsRequired: true,
	}, func(t *testing.T) core.DirContext {
		return fssp.NewContext(t.TempDir(), map[string]any{})
	})
}

func TestHDNSProviderConformance(t *testing.T) {
	ptest.Run(t, ptest.Caps{
		Rename:                       true,
		Subcontexts:                  true,
		PreservesAttrsOnRebind:       true,
		IntermediateContextsRequired: true,
	}, func(t *testing.T) core.DirContext {
		stack := jgroups.DefaultConfig()
		stack.HeartbeatInterval = 50 * time.Millisecond
		n, err := hdns.NewNode(hdns.NodeConfig{
			Group:      "conf-" + t.Name(),
			Transport:  jgroups.NewFabric().Endpoint("conf-node"),
			Stack:      stack,
			ListenAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		pc, err := hdnssp.Open(context.Background(), n.Addr(), map[string]any{core.EnvPoolID: t.Name()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pc.Close() })
		return pc
	})
}

func TestJiniProviderConformance(t *testing.T) {
	for _, mode := range []string{"strict", "relaxed"} {
		t.Run(mode, func(t *testing.T) {
			ptest.Run(t, ptest.Caps{
				Rename:                 true,
				Subcontexts:            true,
				PreservesAttrsOnRebind: true,
				// Jini bindings are flat items with virtual
				// intermediate contexts, so deep binds succeed.
				IntermediateContextsRequired: false,
			}, func(t *testing.T) core.DirContext {
				lus, err := jini.NewLUS(jini.LUSConfig{ListenAddr: "127.0.0.1:0"})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { lus.Close() })
				pc, err := jinisp.Open(context.Background(), lus.Addr(), map[string]any{
					jinisp.EnvBind: mode,
					core.EnvPoolID: t.Name(),
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { pc.Close() })
				return pc
			})
		})
	}
}

func TestJXTAProviderConformance(t *testing.T) {
	ptest.Run(t, ptest.Caps{
		Rename:                 true,
		Subcontexts:            true,
		PreservesAttrsOnRebind: true,
		// Advertisements live in existing peer groups; deep binds
		// under missing groups fail.
		IntermediateContextsRequired: true,
	}, func(t *testing.T) core.DirContext {
		rdv, err := jxta.NewRendezvous("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rdv.Close() })
		pc, err := jxtasp.Open(context.Background(), rdv.Addr(), map[string]any{core.EnvPoolID: t.Name()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pc.Close() })
		return pc
	})
}

// Cache-coherence conformance: the read-through cache layered over each
// provider must stay fresh via events where the provider has them, and
// within the TTL bound where it does not.

func TestMemCacheCoherence(t *testing.T) {
	ptest.RunCacheCoherence(t, func(t *testing.T) *ptest.CoherenceWorld {
		tree := memsp.NewTree()
		return &ptest.CoherenceWorld{
			Main:       memsp.NewContext(tree, map[string]any{}, "mem://coh"),
			Side:       memsp.NewContext(tree, map[string]any{}, "mem://coh"),
			BreakWatch: tree.DropWatches,
		}
	})
}

func TestJiniCacheCoherence(t *testing.T) {
	ptest.RunCacheCoherence(t, func(t *testing.T) *ptest.CoherenceWorld {
		lus, err := jini.NewLUS(jini.LUSConfig{ListenAddr: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lus.Close() })
		main, err := jinisp.Open(context.Background(), lus.Addr(), map[string]any{core.EnvPoolID: t.Name() + "-main"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { main.Close() })
		side, err := jinisp.Open(context.Background(), lus.Addr(), map[string]any{core.EnvPoolID: t.Name() + "-side"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { side.Close() })
		// The event transport is the pooled LUS connection Main itself
		// runs on; it cannot be severed without killing Main, so the
		// degradation subtest is exercised by the in-memory world.
		return &ptest.CoherenceWorld{Main: main, Side: side}
	})
}

func TestHDNSCacheCoherence(t *testing.T) {
	ptest.RunCacheCoherence(t, func(t *testing.T) *ptest.CoherenceWorld {
		stack := jgroups.DefaultConfig()
		stack.HeartbeatInterval = 50 * time.Millisecond
		n, err := hdns.NewNode(hdns.NodeConfig{
			Group:      "coh-" + t.Name(),
			Transport:  jgroups.NewFabric().Endpoint("coh-node"),
			Stack:      stack,
			ListenAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		main, err := hdnssp.Open(context.Background(), n.Addr(), map[string]any{core.EnvPoolID: t.Name() + "-main"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { main.Close() })
		side, err := hdnssp.Open(context.Background(), n.Addr(), map[string]any{core.EnvPoolID: t.Name() + "-side"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { side.Close() })
		return &ptest.CoherenceWorld{Main: main, Side: side}
	})
}

func TestLDAPProviderConformance(t *testing.T) {
	ptest.Run(t, ptest.Caps{
		Rename:                       true,
		Subcontexts:                  true,
		PreservesAttrsOnRebind:       true,
		IntermediateContextsRequired: true,
		LeavesAreContexts:            true, // any LDAP entry is a container
	}, func(t *testing.T) core.DirContext {
		srv, err := ldapsrv.NewServer("127.0.0.1:0", ldapsrv.ServerConfig{BaseDN: "dc=conf"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		pc, err := ldapsp.Open(context.Background(), srv.Addr(), "dc=conf", map[string]any{core.EnvPoolID: t.Name()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pc.Close() })
		return pc
	})
}

// Observability conformance: the instrumenting wrapper's metering contract
// (one op count + one latency observation per operation, errors counted,
// federation continuations excluded) holds over real providers, not just
// the obs package's fakes — in-memory, Jini and HDNS worlds.

func TestMemObsConformance(t *testing.T) {
	ptest.RunObsConformance(t, func(t *testing.T) core.DirContext {
		return memsp.NewContext(memsp.NewTree(), map[string]any{}, "mem://obsconf")
	})
}

func TestJiniObsConformance(t *testing.T) {
	ptest.RunObsConformance(t, func(t *testing.T) core.DirContext {
		lus, err := jini.NewLUS(jini.LUSConfig{ListenAddr: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lus.Close() })
		pc, err := jinisp.Open(context.Background(), lus.Addr(), map[string]any{core.EnvPoolID: t.Name()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pc.Close() })
		return pc
	})
}

func TestHDNSObsConformance(t *testing.T) {
	ptest.RunObsConformance(t, func(t *testing.T) core.DirContext {
		stack := jgroups.DefaultConfig()
		stack.HeartbeatInterval = 50 * time.Millisecond
		n, err := hdns.NewNode(hdns.NodeConfig{
			Group:      "obsconf-" + t.Name(),
			Transport:  jgroups.NewFabric().Endpoint("obsconf-node"),
			Stack:      stack,
			ListenAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		pc, err := hdnssp.Open(context.Background(), n.Addr(), map[string]any{core.EnvPoolID: t.Name()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pc.Close() })
		return pc
	})
}
