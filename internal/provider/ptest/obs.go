package ptest

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"gondi/internal/core"
	"gondi/internal/obs"
)

// RunObsConformance verifies the obs instrumenting wrapper's metering
// contract against a live provider: every operation records exactly one op
// count and one latency observation, a failed operation additionally
// records exactly one error count, and a federation continuation
// (CannotProceedError) counts as an op but never as an error. Run under
// -race this also exercises the wrapper's concurrent-recording safety.
func RunObsConformance(t *testing.T, factory Factory) {
	CheckGoroutines(t)
	ctx := context.Background()
	// The system label isolates this run's instruments in the shared
	// Default registry, so deltas below start from zero.
	system := strings.ReplaceAll(t.Name(), "/", "_")
	counters := func(op string) (ops, errs, lat int64) {
		labels := []obs.Label{{K: "system", V: system}, {K: "op", V: op}}
		return obs.Default.Counter("gondi_ptest_ops_total", "", labels...).Value(),
			obs.Default.Counter("gondi_ptest_errors_total", "", labels...).Value(),
			obs.Default.Histogram("gondi_ptest_op_seconds", "", labels...).Count()
	}
	c := obs.InstrumentDir(factory(t), "ptest", system)

	// step runs one operation and asserts the metering delta: +1 op,
	// +1 latency observation, +wantErrs errors.
	step := func(op string, wantErrs int64, do func() error) {
		t.Helper()
		ops0, errs0, lat0 := counters(op)
		err := do()
		if wantErrs == 0 {
			var cpe *core.CannotProceedError
			if err != nil && !errors.As(err, &cpe) {
				t.Fatalf("%s: unexpected error: %v", op, err)
			}
		} else if err == nil {
			t.Fatalf("%s: expected an error", op)
		}
		ops1, errs1, lat1 := counters(op)
		if ops1 != ops0+1 {
			t.Errorf("%s: ops %d -> %d, want exactly one increment", op, ops0, ops1)
		}
		if lat1 != lat0+1 {
			t.Errorf("%s: latency observations %d -> %d, want exactly one", op, lat0, lat1)
		}
		if errs1 != errs0+wantErrs {
			t.Errorf("%s: errors %d -> %d, want +%d", op, errs0, errs1, wantErrs)
		}
	}

	// The success path across the DirContext surface.
	step("bind", 0, func() error { return c.Bind(ctx, "a", "v1") })
	step("lookup", 0, func() error { _, err := c.Lookup(ctx, "a"); return err })
	step("rebind", 0, func() error { return c.Rebind(ctx, "a", "v2") })
	step("list", 0, func() error { _, err := c.List(ctx, ""); return err })
	step("listBindings", 0, func() error { _, err := c.ListBindings(ctx, ""); return err })
	step("getAttributes", 0, func() error { _, err := c.GetAttributes(ctx, "a"); return err })
	step("search", 0, func() error {
		_, err := c.Search(ctx, "", "(type=*)", &core.SearchControls{Scope: core.ScopeSubtree})
		return err
	})
	step("unbind", 0, func() error { return c.Unbind(ctx, "a") })

	// The failure path: a lookup of an unbound name is an error and must
	// be counted as one.
	step("lookup", 1, func() error {
		_, err := c.Lookup(ctx, "no-such-name")
		if err == nil {
			return errors.New("lookup of unbound name succeeded")
		}
		return err
	})

	// The federation path: resolution stopping at a foreign-system
	// boundary is a continuation, not a failure — ops and latency record,
	// the error counter must not move.
	if err := c.Bind(ctx, "gateway", core.NewContextReference("mem://other")); err != nil {
		t.Fatalf("bind gateway: %v", err)
	}
	step("lookup", 0, func() error {
		_, err := c.Lookup(ctx, "gateway/deeper/name")
		var cpe *core.CannotProceedError
		if !errors.As(err, &cpe) {
			t.Fatalf("want CannotProceedError, got %v", err)
		}
		return err
	})

	// Concurrent metering: counts must stay exact under parallel load
	// (and -race must stay quiet).
	if err := c.Bind(ctx, "hot", "x"); err != nil {
		t.Fatalf("bind hot: %v", err)
	}
	const workers, perWorker = 4, 25
	ops0, _, lat0 := counters("lookup")
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				if _, err := c.Lookup(ctx, "hot"); err != nil {
					t.Errorf("concurrent lookup: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	ops1, _, lat1 := counters("lookup")
	if ops1 != ops0+workers*perWorker || lat1 != lat0+workers*perWorker {
		t.Errorf("concurrent lookups: ops +%d lat +%d, want +%d each",
			ops1-ops0, lat1-lat0, workers*perWorker)
	}
}
