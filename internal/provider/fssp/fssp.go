// Package fssp is the JNDI service provider for local filesystem storage
// — one of the pre-existing providers the paper mentions federating with
// (§6: "DNS, LDAP, or a local filesystem storage"). Subcontexts are
// directories; bindings are files holding the codec form of the object
// plus its attributes. Bind is atomic via O_EXCL file creation.
package fssp

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"gondi/internal/core"
	"gondi/internal/filter"
	"gondi/internal/obs"
)

// bindingExt marks binding files; directories are subcontexts.
const bindingExt = ".binding"

// Register installs the "file" URL scheme provider. URLs take the form
// file:///abs/path or file://host/path (host ignored, like file URLs).
func Register() {
	core.RegisterProvider("file", core.ProviderFunc(func(ctx context.Context, rawURL string, env map[string]any) (core.Context, core.Name, error) {
		if err := core.CtxErr(ctx); err != nil {
			return nil, core.Name{}, err
		}
		u, err := core.ParseURLName(rawURL)
		if err != nil {
			return nil, core.Name{}, err
		}
		// file:///tmp/x parses to authority "" and path "tmp/x"; the
		// root is the filesystem root.
		root := "/"
		if u.Authority != "" && u.Authority != "localhost" {
			return nil, core.Name{}, fmt.Errorf("fssp: remote file URLs unsupported: %q", u.Authority)
		}
		return obs.Instrument(&Context{root: root, env: env}, "provider", "file"), u.Path, nil
	}))
}

// Context implements core.DirContext over a directory tree.
type Context struct {
	root string
	base core.Name
	env  map[string]any
}

var _ core.DirContext = (*Context)(nil)
var _ core.Referenceable = (*Context)(nil)

// NewContext roots a provider context at dir (tests, examples).
func NewContext(dir string, env map[string]any) *Context {
	return &Context{root: dir, env: env}
}

// record is the on-disk form of a binding.
type record struct {
	Obj   []byte
	Attrs map[string][]string
}

func (c *Context) parse(name string) (core.Name, error) {
	if core.IsURLName(name) {
		u, err := core.ParseURLName(name)
		if err != nil {
			return core.Name{}, err
		}
		return core.Name{}, &core.CannotProceedError{
			Resolved:      u.Scheme + "://" + u.Authority,
			RemainingName: u.Path,
			AltName:       name,
		}
	}
	n, err := core.ParseName(name)
	if err != nil {
		return core.Name{}, err
	}
	for _, comp := range n.Components() {
		if comp == "." || comp == ".." || strings.ContainsAny(comp, "/\\") {
			return core.Name{}, &core.InvalidNameError{Name: name, Reason: "path traversal component"}
		}
	}
	return n, nil
}

// full parses name and prepends the context base; it also front-checks
// ctx so every operation fails fast once the caller's budget is gone.
func (c *Context) full(ctx context.Context, name string) (core.Name, error) {
	if err := core.CtxErr(ctx); err != nil {
		return core.Name{}, err
	}
	n, err := c.parse(name)
	if err != nil {
		return core.Name{}, err
	}
	return c.base.Concat(n), nil
}

func (c *Context) dirPath(n core.Name) string {
	return filepath.Join(append([]string{c.root}, n.Components()...)...)
}

func (c *Context) filePath(n core.Name) string {
	return c.dirPath(n) + bindingExt
}

func (c *Context) child(base core.Name) *Context {
	return &Context{root: c.root, base: base, env: c.env}
}

func readRecord(path string) (*record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r record
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

func encodeRecord(obj any, attrs *core.Attributes) ([]byte, error) {
	data, err := core.Marshal(obj)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(record{Obj: data, Attrs: attrs.ToMap()}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// boundary checks path prefixes for federation references.
func (c *Context) boundary(full core.Name) error {
	for i := 1; i < full.Size(); i++ {
		prefix := full.Prefix(i)
		if r, err := readRecord(c.filePath(prefix)); err == nil {
			obj, uerr := core.Unmarshal(r.Obj)
			if uerr != nil {
				return uerr
			}
			switch obj.(type) {
			case *core.Reference, core.Context:
				return &core.CannotProceedError{
					Resolved:      obj,
					RemainingName: full.Suffix(i),
					AltName:       prefix.String(),
				}
			default:
				return core.ErrNotContext
			}
		}
	}
	return nil
}

// Lookup implements core.Context.
func (c *Context) Lookup(ctx context.Context, name string) (any, error) {
	full, err := c.full(ctx, name)
	if err != nil {
		return nil, core.Errf("lookup", name, err)
	}
	if full.Equal(c.base) {
		return c.child(c.base), nil
	}
	if r, err := readRecord(c.filePath(full)); err == nil {
		obj, uerr := core.Unmarshal(r.Obj)
		if uerr != nil {
			return nil, core.Errf("lookup", name, uerr)
		}
		return obj, nil
	}
	if fi, err := os.Stat(c.dirPath(full)); err == nil && fi.IsDir() {
		return c.child(full), nil
	}
	if err := c.boundary(full); err != nil {
		return nil, core.Errf("lookup", name, err)
	}
	return nil, core.Errf("lookup", name, core.ErrNotFound)
}

// LookupLink implements core.Context.
func (c *Context) LookupLink(ctx context.Context, name string) (any, error) {
	return c.Lookup(ctx, name)
}

// Bind implements core.Context atomically via O_EXCL.
func (c *Context) Bind(ctx context.Context, name string, obj any) error {
	return c.BindAttrs(ctx, name, obj, nil)
}

// BindAttrs implements core.DirContext.
func (c *Context) BindAttrs(ctx context.Context, name string, obj any, attrs *core.Attributes) error {
	full, err := c.full(ctx, name)
	if err != nil {
		return core.Errf("bind", name, err)
	}
	if full.IsEmpty() {
		return core.Errf("bind", name, core.ErrInvalidNameEmpty)
	}
	if err := c.boundary(full); err != nil {
		return core.Errf("bind", name, err)
	}
	data, err := encodeRecord(obj, attrs)
	if err != nil {
		return core.Errf("bind", name, err)
	}
	if _, err := os.Stat(c.dirPath(full)); err == nil {
		return core.Errf("bind", name, core.ErrAlreadyBound)
	}
	f, err := os.OpenFile(c.filePath(full), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if errors.Is(err, fs.ErrExist) {
			return core.Errf("bind", name, core.ErrAlreadyBound)
		}
		if errors.Is(err, fs.ErrNotExist) {
			return core.Errf("bind", name, core.ErrNotFound)
		}
		return core.Errf("bind", name, err)
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return core.Errf("bind", name, err)
	}
	return nil
}

// Rebind implements core.Context.
func (c *Context) Rebind(ctx context.Context, name string, obj any) error {
	return c.rebind(ctx, name, obj, nil, false)
}

// RebindAttrs implements core.DirContext.
func (c *Context) RebindAttrs(ctx context.Context, name string, obj any, attrs *core.Attributes) error {
	return c.rebind(ctx, name, obj, attrs, attrs != nil)
}

func (c *Context) rebind(ctx context.Context, name string, obj any, attrs *core.Attributes, replace bool) error {
	full, err := c.full(ctx, name)
	if err != nil {
		return core.Errf("rebind", name, err)
	}
	if full.IsEmpty() {
		return core.Errf("rebind", name, core.ErrInvalidNameEmpty)
	}
	if err := c.boundary(full); err != nil {
		return core.Errf("rebind", name, err)
	}
	if fi, err := os.Stat(c.dirPath(full)); err == nil && fi.IsDir() {
		return core.Errf("rebind", name, core.ErrNotContext)
	}
	if !replace {
		if old, err := readRecord(c.filePath(full)); err == nil {
			attrs = core.AttributesFromMap(old.Attrs)
		}
	}
	data, err := encodeRecord(obj, attrs)
	if err != nil {
		return core.Errf("rebind", name, err)
	}
	dir := filepath.Dir(c.filePath(full))
	if _, err := os.Stat(dir); err != nil {
		return core.Errf("rebind", name, core.ErrNotFound)
	}
	tmp, err := os.CreateTemp(dir, ".fssp-*")
	if err != nil {
		return core.Errf("rebind", name, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return core.Errf("rebind", name, err)
	}
	tmp.Close()
	return core.Errf("rebind", name, os.Rename(tmp.Name(), c.filePath(full)))
}

// Unbind implements core.Context.
func (c *Context) Unbind(ctx context.Context, name string) error {
	full, err := c.full(ctx, name)
	if err != nil {
		return core.Errf("unbind", name, err)
	}
	err = os.Remove(c.filePath(full))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return core.Errf("unbind", name, err)
	}
	if errors.Is(err, fs.ErrNotExist) {
		// Intermediate contexts must exist.
		parent := full.Prefix(full.Size() - 1)
		if _, serr := os.Stat(c.dirPath(parent)); serr != nil {
			return core.Errf("unbind", name, core.ErrNotFound)
		}
	}
	return nil
}

// Rename implements core.Context.
func (c *Context) Rename(ctx context.Context, oldName, newName string) error {
	oldFull, err := c.full(ctx, oldName)
	if err != nil {
		return core.Errf("rename", oldName, err)
	}
	newFull, err := c.full(ctx, newName)
	if err != nil {
		return core.Errf("rename", newName, err)
	}
	if _, err := os.Stat(c.filePath(newFull)); err == nil {
		return core.Errf("rename", newName, core.ErrAlreadyBound)
	}
	if _, err := os.Stat(c.dirPath(newFull)); err == nil {
		return core.Errf("rename", newName, core.ErrAlreadyBound)
	}
	if _, err := os.Stat(c.filePath(oldFull)); err != nil {
		// Renaming a subcontext directory.
		if fi, derr := os.Stat(c.dirPath(oldFull)); derr == nil && fi.IsDir() {
			return core.Errf("rename", oldName, os.Rename(c.dirPath(oldFull), c.dirPath(newFull)))
		}
		return core.Errf("rename", oldName, core.ErrNotFound)
	}
	return core.Errf("rename", oldName, os.Rename(c.filePath(oldFull), c.filePath(newFull)))
}

// List implements core.Context.
func (c *Context) List(ctx context.Context, name string) ([]core.NameClassPair, error) {
	bindings, err := c.ListBindings(ctx, name)
	if err != nil {
		return nil, err
	}
	out := make([]core.NameClassPair, len(bindings))
	for i, b := range bindings {
		out[i] = core.NameClassPair{Name: b.Name, Class: b.Class}
	}
	return out, nil
}

// ListBindings implements core.Context.
func (c *Context) ListBindings(ctx context.Context, name string) ([]core.Binding, error) {
	full, err := c.full(ctx, name)
	if err != nil {
		return nil, core.Errf("list", name, err)
	}
	dir := c.dirPath(full)
	fi, err := os.Stat(dir)
	if err != nil {
		if _, ferr := os.Stat(c.filePath(full)); ferr == nil {
			return nil, core.Errf("list", name, core.ErrNotContext)
		}
		return nil, core.Errf("list", name, core.ErrNotFound)
	}
	if !fi.IsDir() {
		return nil, core.Errf("list", name, core.ErrNotContext)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, core.Errf("list", name, err)
	}
	var out []core.Binding
	for _, de := range des {
		if de.IsDir() {
			out = append(out, core.Binding{
				Name:   de.Name(),
				Class:  core.ContextReferenceClass,
				Object: c.child(full.Append(de.Name())),
			})
			continue
		}
		if !strings.HasSuffix(de.Name(), bindingExt) {
			continue
		}
		bindName := strings.TrimSuffix(de.Name(), bindingExt)
		r, rerr := readRecord(filepath.Join(dir, de.Name()))
		if rerr != nil {
			continue
		}
		obj, uerr := core.Unmarshal(r.Obj)
		if uerr != nil {
			continue
		}
		out = append(out, core.Binding{Name: bindName, Class: core.ClassOf(obj), Object: obj})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// CreateSubcontext implements core.Context.
func (c *Context) CreateSubcontext(ctx context.Context, name string) (core.Context, error) {
	dc, err := c.CreateSubcontextAttrs(ctx, name, nil)
	if err != nil {
		return nil, err
	}
	return dc, nil
}

// CreateSubcontextAttrs implements core.DirContext. Attributes on
// filesystem subcontexts are not persisted (directories have no payload).
func (c *Context) CreateSubcontextAttrs(ctx context.Context, name string, attrs *core.Attributes) (core.DirContext, error) {
	full, err := c.full(ctx, name)
	if err != nil {
		return nil, core.Errf("createSubcontext", name, err)
	}
	if _, err := os.Stat(c.filePath(full)); err == nil {
		return nil, core.Errf("createSubcontext", name, core.ErrAlreadyBound)
	}
	if _, err := os.Stat(c.dirPath(full)); err == nil {
		return nil, core.Errf("createSubcontext", name, core.ErrAlreadyBound)
	}
	if err := os.Mkdir(c.dirPath(full), 0o755); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, core.Errf("createSubcontext", name, core.ErrNotFound)
		}
		return nil, core.Errf("createSubcontext", name, err)
	}
	return c.child(full), nil
}

// DestroySubcontext implements core.Context.
func (c *Context) DestroySubcontext(ctx context.Context, name string) error {
	full, err := c.full(ctx, name)
	if err != nil {
		return core.Errf("destroySubcontext", name, err)
	}
	dir := c.dirPath(full)
	fi, err := os.Stat(dir)
	if err != nil {
		return nil // destroying a missing subcontext succeeds
	}
	if !fi.IsDir() {
		return core.Errf("destroySubcontext", name, core.ErrNotContext)
	}
	err = os.Remove(dir)
	if err != nil && strings.Contains(err.Error(), "not empty") {
		return core.Errf("destroySubcontext", name, core.ErrContextNotEmpty)
	}
	return core.Errf("destroySubcontext", name, err)
}

// GetAttributes implements core.DirContext.
func (c *Context) GetAttributes(ctx context.Context, name string, attrIDs ...string) (*core.Attributes, error) {
	full, err := c.full(ctx, name)
	if err != nil {
		return nil, core.Errf("getAttributes", name, err)
	}
	if r, err := readRecord(c.filePath(full)); err == nil {
		return core.AttributesFromMap(r.Attrs).Select(attrIDs...), nil
	}
	if fi, err := os.Stat(c.dirPath(full)); err == nil && fi.IsDir() {
		return &core.Attributes{}, nil
	}
	return nil, core.Errf("getAttributes", name, core.ErrNotFound)
}

// ModifyAttributes implements core.DirContext.
func (c *Context) ModifyAttributes(ctx context.Context, name string, mods []core.AttributeMod) error {
	full, err := c.full(ctx, name)
	if err != nil {
		return core.Errf("modifyAttributes", name, err)
	}
	r, err := readRecord(c.filePath(full))
	if err != nil {
		return core.Errf("modifyAttributes", name, core.ErrNotFound)
	}
	attrs := core.AttributesFromMap(r.Attrs)
	if err := attrs.Apply(mods); err != nil {
		return core.Errf("modifyAttributes", name, err)
	}
	obj, err := core.Unmarshal(r.Obj)
	if err != nil {
		return core.Errf("modifyAttributes", name, err)
	}
	return c.rebind(ctx, name, obj, attrs, true)
}

// Search implements core.DirContext by walking the directory tree.
// SearchControls.TimeLimit bounds the walk; when it fires, the partial
// results are returned with a *core.TimeLimitExceededError. A done ctx
// aborts the walk with ctx.Err() the same way.
func (c *Context) Search(ctx context.Context, name, filterStr string, controls *core.SearchControls) ([]core.SearchResult, error) {
	full, err := c.full(ctx, name)
	if err != nil {
		return nil, core.Errf("search", name, err)
	}
	f, err := filter.Parse(filterStr)
	if err != nil {
		return nil, core.Errf("search", name, err)
	}
	if controls == nil {
		controls = &core.SearchControls{Scope: core.ScopeSubtree}
	}
	root := c.dirPath(full)
	var deadline time.Time
	if controls.TimeLimit > 0 {
		deadline = time.Now().Add(controls.TimeLimit)
	}
	var out []core.SearchResult
	var limitHit bool
	var stopErr error
	walkErr := filepath.WalkDir(root, func(path string, de fs.DirEntry, err error) error {
		if err != nil || limitHit {
			return fs.SkipAll
		}
		if cerr := core.CtxErr(ctx); cerr != nil {
			stopErr = cerr
			return fs.SkipAll
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			stopErr = &core.TimeLimitExceededError{Limit: controls.TimeLimit}
			return fs.SkipAll
		}
		if de.IsDir() || !strings.HasSuffix(path, bindingExt) {
			return nil
		}
		rel, rerr := filepath.Rel(root, strings.TrimSuffix(path, bindingExt))
		if rerr != nil {
			return nil
		}
		relName := core.NewName(strings.Split(filepath.ToSlash(rel), "/")...)
		depth := relName.Size()
		switch controls.Scope {
		case core.ScopeObject:
			if depth != 0 {
				return nil
			}
		case core.ScopeOneLevel:
			if depth != 1 {
				return nil
			}
		}
		r, rerr2 := readRecord(path)
		if rerr2 != nil {
			return nil
		}
		attrs := core.AttributesFromMap(r.Attrs)
		if !attrs.MatchesFilter(f) {
			return nil
		}
		sr := core.SearchResult{Name: relName.String(), Attributes: attrs.Select(controls.ReturnAttrs...)}
		obj, uerr := core.Unmarshal(r.Obj)
		if uerr != nil {
			return nil
		}
		sr.Class = core.ClassOf(obj)
		if controls.ReturnObject {
			sr.Object = obj
		}
		out = append(out, sr)
		if controls.CountLimit > 0 && len(out) >= controls.CountLimit {
			limitHit = true
		}
		return nil
	})
	if walkErr != nil {
		return nil, core.Errf("search", name, walkErr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	if stopErr != nil {
		return out, stopErr
	}
	if limitHit {
		return out, &core.LimitExceededError{Limit: controls.CountLimit}
	}
	return out, nil
}

// NameInNamespace implements core.Context.
func (c *Context) NameInNamespace() (string, error) { return c.base.String(), nil }

// Environment implements core.Context.
func (c *Context) Environment() map[string]any { return c.env }

// Close implements core.Context.
func (c *Context) Close() error { return nil }

// Reference implements core.Referenceable.
func (c *Context) Reference() (*core.Reference, error) {
	path := filepath.Join(append([]string{c.root}, c.base.Components()...)...)
	return core.NewContextReference("file://" + path), nil
}
