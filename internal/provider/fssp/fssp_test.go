package fssp

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"gondi/internal/core"
)

func newCtx(t *testing.T) *Context {
	t.Helper()
	return NewContext(t.TempDir(), map[string]any{})
}

func TestBindLookupUnbind(t *testing.T) {
	ctx := context.Background()
	c := newCtx(t)
	if err := c.Bind(ctx, "cfg", map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Lookup(ctx, "cfg")
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := got.(map[string]string); !ok || m["k"] != "v" {
		t.Fatalf("lookup = %#v", got)
	}
	if err := c.Bind(ctx, "cfg", 1); !errors.Is(err, core.ErrAlreadyBound) {
		t.Errorf("dup bind: %v", err)
	}
	if err := c.Rebind(ctx, "cfg", "replaced"); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Lookup(ctx, "cfg"); got != "replaced" {
		t.Errorf("rebind = %v", got)
	}
	if err := c.Unbind(ctx, "cfg"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup(ctx, "cfg"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("after unbind: %v", err)
	}
	if err := c.Unbind(ctx, "absent"); err != nil {
		t.Errorf("unbind absent: %v", err)
	}
	if err := c.Unbind(ctx, "no/such/dir"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("unbind deep absent: %v", err)
	}
}

func TestSubcontexts(t *testing.T) {
	ctx := context.Background()
	c := newCtx(t)
	sub, err := c.CreateSubcontext(ctx, "etc")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Bind(ctx, "hosts", "127.0.0.1 localhost"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Lookup(ctx, "etc/hosts")
	if err != nil || got != "127.0.0.1 localhost" {
		t.Fatalf("composite = %v, %v", got, err)
	}
	// Dup subcontext.
	if _, err := c.CreateSubcontext(ctx, "etc"); !errors.Is(err, core.ErrAlreadyBound) {
		t.Errorf("dup subctx: %v", err)
	}
	// Destroy non-empty.
	if err := c.DestroySubcontext(ctx, "etc"); !errors.Is(err, core.ErrContextNotEmpty) {
		t.Errorf("destroy non-empty: %v", err)
	}
	if err := sub.Unbind(ctx, "hosts"); err != nil {
		t.Fatal(err)
	}
	if err := c.DestroySubcontext(ctx, "etc"); err != nil {
		t.Fatal(err)
	}
	if err := c.DestroySubcontext(ctx, "etc"); err != nil {
		t.Errorf("destroy absent: %v", err)
	}
}

func TestList(t *testing.T) {
	ctx := context.Background()
	c := newCtx(t)
	must(t, c.Bind(ctx, "b", 2))
	must(t, c.Bind(ctx, "a", 1))
	if _, err := c.CreateSubcontext(ctx, "dir"); err != nil {
		t.Fatal(err)
	}
	pairs, err := c.List(ctx, "")
	if err != nil || len(pairs) != 3 {
		t.Fatalf("list = %+v, %v", pairs, err)
	}
	if pairs[0].Name != "a" || pairs[1].Name != "b" || pairs[2].Name != "dir" {
		t.Errorf("order = %+v", pairs)
	}
	if pairs[2].Class != core.ContextReferenceClass {
		t.Errorf("dir class = %q", pairs[2].Class)
	}
	if _, err := c.List(ctx, "a"); !errors.Is(err, core.ErrNotContext) {
		t.Errorf("list leaf: %v", err)
	}
	if _, err := c.List(ctx, "ghost"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("list ghost: %v", err)
	}
}

func TestAttributesAndSearch(t *testing.T) {
	ctx := context.Background()
	c := newCtx(t)
	must(t, c.BindAttrs(ctx, "j1", "job1", core.NewAttributes("state", "running", "prio", "5")))
	must(t, c.BindAttrs(ctx, "j2", "job2", core.NewAttributes("state", "queued", "prio", "9")))
	sub, _ := c.CreateSubcontext(ctx, "archive")
	must(t, sub.(*Context).BindAttrs(ctx, "j0", "job0", core.NewAttributes("state", "done")))

	attrs, err := c.GetAttributes(ctx, "j1")
	if err != nil || attrs.GetFirst("state") != "running" {
		t.Fatalf("attrs = %v, %v", attrs, err)
	}
	res, err := c.Search(ctx, "", "(state=done)", &core.SearchControls{Scope: core.ScopeSubtree})
	if err != nil || len(res) != 1 || res[0].Name != "archive/j0" {
		t.Fatalf("subtree search = %+v, %v", res, err)
	}
	res, err = c.Search(ctx, "", "(prio>=6)", &core.SearchControls{Scope: core.ScopeOneLevel, ReturnObject: true})
	if err != nil || len(res) != 1 || res[0].Object != "job2" {
		t.Fatalf("one-level = %+v, %v", res, err)
	}
	must(t, c.ModifyAttributes(ctx, "j1", []core.AttributeMod{
		{Op: core.ModReplace, Attr: core.Attribute{ID: "state", Values: []string{"done"}}},
	}))
	attrs, _ = c.GetAttributes(ctx, "j1")
	if attrs.GetFirst("state") != "done" {
		t.Errorf("after modify: %v", attrs)
	}
	if got, _ := c.Lookup(ctx, "j1"); got != "job1" {
		t.Errorf("object lost: %v", got)
	}
}

func TestRename(t *testing.T) {
	ctx := context.Background()
	c := newCtx(t)
	must(t, c.Bind(ctx, "x", "v"))
	must(t, c.Rename(ctx, "x", "y"))
	if got, _ := c.Lookup(ctx, "y"); got != "v" {
		t.Errorf("renamed = %v", got)
	}
	must(t, c.Bind(ctx, "z", "w"))
	if err := c.Rename(ctx, "y", "z"); !errors.Is(err, core.ErrAlreadyBound) {
		t.Errorf("conflict: %v", err)
	}
	// Directory rename.
	if _, err := c.CreateSubcontext(ctx, "d1"); err != nil {
		t.Fatal(err)
	}
	must(t, c.Rename(ctx, "d1", "d2"))
	if _, err := c.Lookup(ctx, "d2"); err != nil {
		t.Errorf("renamed dir: %v", err)
	}
}

func TestPathTraversalRejected(t *testing.T) {
	ctx := context.Background()
	c := newCtx(t)
	for _, bad := range []string{"..", "../x", "a/../b", "."} {
		if err := c.Bind(ctx, bad, 1); err == nil {
			t.Errorf("Bind(%q) succeeded", bad)
		}
	}
}

func TestFederationBoundary(t *testing.T) {
	ctx := context.Background()
	c := newCtx(t)
	must(t, c.Bind(ctx, "link", core.NewContextReference("mem://space")))
	_, err := c.Lookup(ctx, "link/deep")
	var cpe *core.CannotProceedError
	if !errors.As(err, &cpe) {
		t.Fatalf("want continuation, got %v", err)
	}
	if cpe.RemainingName.String() != "deep" {
		t.Errorf("remaining = %q", cpe.RemainingName.String())
	}
}

func TestProviderRegistration(t *testing.T) {
	ctx := context.Background()
	Register()
	dir := t.TempDir()
	nc, rest, err := core.OpenURL(ctx, "file://"+dir+"/sub", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// The provider roots at "/" and the path carries the directory.
	want := core.MustParseName(dir[1:] + "/sub")
	if !rest.Equal(want) {
		t.Errorf("rest = %q, want %q", rest.String(), want.String())
	}
}

func TestPersistenceAcrossContexts(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	c1 := NewContext(dir, nil)
	must(t, c1.Bind(ctx, "persisted", "data"))
	c2 := NewContext(dir, nil)
	got, err := c2.Lookup(ctx, "persisted")
	if err != nil || got != "data" {
		t.Fatalf("second context = %v, %v", got, err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestSearchTimeLimit(t *testing.T) {
	ctx := context.Background()
	c := newCtx(t)
	for i := 0; i < 5; i++ {
		must(t, c.BindAttrs(ctx, fmt.Sprintf("n%d", i), i,
			core.NewAttributes("type", "compute")))
	}
	res, err := c.Search(ctx, "", "(type=compute)",
		&core.SearchControls{Scope: core.ScopeSubtree, TimeLimit: time.Nanosecond})
	var tle *core.TimeLimitExceededError
	if !errors.As(err, &tle) {
		t.Fatalf("want TimeLimitExceededError, got %v (results %v)", err, res)
	}
	res, err = c.Search(ctx, "", "(type=compute)",
		&core.SearchControls{Scope: core.ScopeSubtree, TimeLimit: time.Minute})
	if err != nil || len(res) != 5 {
		t.Fatalf("generous limit = %d results, %v", len(res), err)
	}
}
