package fssp

import (
	"errors"
	"testing"

	"gondi/internal/core"
)

func newCtx(t *testing.T) *Context {
	t.Helper()
	return NewContext(t.TempDir(), map[string]any{})
}

func TestBindLookupUnbind(t *testing.T) {
	c := newCtx(t)
	if err := c.Bind("cfg", map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Lookup("cfg")
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := got.(map[string]string); !ok || m["k"] != "v" {
		t.Fatalf("lookup = %#v", got)
	}
	if err := c.Bind("cfg", 1); !errors.Is(err, core.ErrAlreadyBound) {
		t.Errorf("dup bind: %v", err)
	}
	if err := c.Rebind("cfg", "replaced"); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Lookup("cfg"); got != "replaced" {
		t.Errorf("rebind = %v", got)
	}
	if err := c.Unbind("cfg"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup("cfg"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("after unbind: %v", err)
	}
	if err := c.Unbind("absent"); err != nil {
		t.Errorf("unbind absent: %v", err)
	}
	if err := c.Unbind("no/such/dir"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("unbind deep absent: %v", err)
	}
}

func TestSubcontexts(t *testing.T) {
	c := newCtx(t)
	sub, err := c.CreateSubcontext("etc")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Bind("hosts", "127.0.0.1 localhost"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Lookup("etc/hosts")
	if err != nil || got != "127.0.0.1 localhost" {
		t.Fatalf("composite = %v, %v", got, err)
	}
	// Dup subcontext.
	if _, err := c.CreateSubcontext("etc"); !errors.Is(err, core.ErrAlreadyBound) {
		t.Errorf("dup subctx: %v", err)
	}
	// Destroy non-empty.
	if err := c.DestroySubcontext("etc"); !errors.Is(err, core.ErrContextNotEmpty) {
		t.Errorf("destroy non-empty: %v", err)
	}
	if err := sub.Unbind("hosts"); err != nil {
		t.Fatal(err)
	}
	if err := c.DestroySubcontext("etc"); err != nil {
		t.Fatal(err)
	}
	if err := c.DestroySubcontext("etc"); err != nil {
		t.Errorf("destroy absent: %v", err)
	}
}

func TestList(t *testing.T) {
	c := newCtx(t)
	must(t, c.Bind("b", 2))
	must(t, c.Bind("a", 1))
	if _, err := c.CreateSubcontext("dir"); err != nil {
		t.Fatal(err)
	}
	pairs, err := c.List("")
	if err != nil || len(pairs) != 3 {
		t.Fatalf("list = %+v, %v", pairs, err)
	}
	if pairs[0].Name != "a" || pairs[1].Name != "b" || pairs[2].Name != "dir" {
		t.Errorf("order = %+v", pairs)
	}
	if pairs[2].Class != core.ContextReferenceClass {
		t.Errorf("dir class = %q", pairs[2].Class)
	}
	if _, err := c.List("a"); !errors.Is(err, core.ErrNotContext) {
		t.Errorf("list leaf: %v", err)
	}
	if _, err := c.List("ghost"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("list ghost: %v", err)
	}
}

func TestAttributesAndSearch(t *testing.T) {
	c := newCtx(t)
	must(t, c.BindAttrs("j1", "job1", core.NewAttributes("state", "running", "prio", "5")))
	must(t, c.BindAttrs("j2", "job2", core.NewAttributes("state", "queued", "prio", "9")))
	sub, _ := c.CreateSubcontext("archive")
	must(t, sub.(*Context).BindAttrs("j0", "job0", core.NewAttributes("state", "done")))

	attrs, err := c.GetAttributes("j1")
	if err != nil || attrs.GetFirst("state") != "running" {
		t.Fatalf("attrs = %v, %v", attrs, err)
	}
	res, err := c.Search("", "(state=done)", &core.SearchControls{Scope: core.ScopeSubtree})
	if err != nil || len(res) != 1 || res[0].Name != "archive/j0" {
		t.Fatalf("subtree search = %+v, %v", res, err)
	}
	res, err = c.Search("", "(prio>=6)", &core.SearchControls{Scope: core.ScopeOneLevel, ReturnObject: true})
	if err != nil || len(res) != 1 || res[0].Object != "job2" {
		t.Fatalf("one-level = %+v, %v", res, err)
	}
	must(t, c.ModifyAttributes("j1", []core.AttributeMod{
		{Op: core.ModReplace, Attr: core.Attribute{ID: "state", Values: []string{"done"}}},
	}))
	attrs, _ = c.GetAttributes("j1")
	if attrs.GetFirst("state") != "done" {
		t.Errorf("after modify: %v", attrs)
	}
	if got, _ := c.Lookup("j1"); got != "job1" {
		t.Errorf("object lost: %v", got)
	}
}

func TestRename(t *testing.T) {
	c := newCtx(t)
	must(t, c.Bind("x", "v"))
	must(t, c.Rename("x", "y"))
	if got, _ := c.Lookup("y"); got != "v" {
		t.Errorf("renamed = %v", got)
	}
	must(t, c.Bind("z", "w"))
	if err := c.Rename("y", "z"); !errors.Is(err, core.ErrAlreadyBound) {
		t.Errorf("conflict: %v", err)
	}
	// Directory rename.
	if _, err := c.CreateSubcontext("d1"); err != nil {
		t.Fatal(err)
	}
	must(t, c.Rename("d1", "d2"))
	if _, err := c.Lookup("d2"); err != nil {
		t.Errorf("renamed dir: %v", err)
	}
}

func TestPathTraversalRejected(t *testing.T) {
	c := newCtx(t)
	for _, bad := range []string{"..", "../x", "a/../b", "."} {
		if err := c.Bind(bad, 1); err == nil {
			t.Errorf("Bind(%q) succeeded", bad)
		}
	}
}

func TestFederationBoundary(t *testing.T) {
	c := newCtx(t)
	must(t, c.Bind("link", core.NewContextReference("mem://space")))
	_, err := c.Lookup("link/deep")
	var cpe *core.CannotProceedError
	if !errors.As(err, &cpe) {
		t.Fatalf("want continuation, got %v", err)
	}
	if cpe.RemainingName.String() != "deep" {
		t.Errorf("remaining = %q", cpe.RemainingName.String())
	}
}

func TestProviderRegistration(t *testing.T) {
	Register()
	dir := t.TempDir()
	ctx, rest, err := core.OpenURL("file://"+dir+"/sub", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	// The provider roots at "/" and the path carries the directory.
	want := core.MustParseName(dir[1:] + "/sub")
	if !rest.Equal(want) {
		t.Errorf("rest = %q, want %q", rest.String(), want.String())
	}
}

func TestPersistenceAcrossContexts(t *testing.T) {
	dir := t.TempDir()
	c1 := NewContext(dir, nil)
	must(t, c1.Bind("persisted", "data"))
	c2 := NewContext(dir, nil)
	got, err := c2.Lookup("persisted")
	if err != nil || got != "data" {
		t.Fatalf("second context = %v, %v", got, err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
